package pugz

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/blockfind"
	"repro/internal/flate"
)

// Block describes one DEFLATE block of a gzip member.
type Block struct {
	// StartBit / EndBit are absolute bit offsets within the DEFLATE
	// payload (add 8*header length for file-absolute positions).
	StartBit int64
	EndBit   int64
	// Type is "stored", "fixed" or "dynamic".
	Type string
	// Final marks the last block of the stream.
	Final bool
	// OutStart / OutEnd are the block's byte extent in the
	// decompressed output.
	OutStart int64
	OutEnd   int64
}

// ScanBlocks fully decodes the first member of a gzip file and returns
// every block boundary. This is the exhaustive (sequential) index; use
// FindBlock to sync to a single block near an arbitrary offset without
// decoding the prefix.
func ScanBlocks(gz []byte) ([]Block, error) {
	f, err := NewFileBytes(gz, FileOptions{})
	if err != nil {
		return nil, err
	}
	return f.ScanBlocks()
}

// ScanBlocks walks the first member block by block over the File's
// byte source, without materialising the decompressed output: token
// extents are tallied, back-references are bounds-checked against the
// produced count, and for non-slice sources the compressed window
// slides forward as blocks complete, so memory stays bounded by the
// largest single block. The walk reads only the File's immutable
// snapshot through a private window, so it is safe for concurrent use
// alongside any other File method.
func (f *File) ScanBlocks() ([]Block, error) {
	w, err := f.openWindow(f.hdrLen, minWindowLoad)
	if err != nil {
		return nil, err
	}
	var blocks []Block
	var outPos int64
	bit := int64(0) // payload-relative decode position
	for {
		relBit := bit - (w.base-f.hdrLen)*8
		sink := &scanSink{outBase: outPos}
		r, err := bitio.NewReaderAt(w.data, relBit)
		if err != nil {
			return nil, err
		}
		dec := flate.GetDecoder(flate.Options{})
		final, err := dec.DecodeBlock(r, sink)
		flate.PutDecoder(dec)
		if err != nil {
			// A failed decode on a partial window is retried with more
			// data resident; at EOF the failure is real.
			if grown, gerr := w.grow(); gerr != nil {
				return nil, gerr
			} else if grown {
				continue
			}
			return nil, fmt.Errorf("pugz: scan at payload bit %d: %w", bit, err)
		}
		endBit := (w.base-f.hdrLen)*8 + sink.endBit
		blocks = append(blocks, Block{
			StartBit: bit,
			EndBit:   endBit,
			Type:     sink.ev.Type.String(),
			Final:    sink.ev.Final,
			OutStart: outPos,
			OutEnd:   outPos + sink.bytes,
		})
		outPos += sink.bytes
		bit = endBit
		if final {
			return blocks, nil
		}
		// Completed blocks are never re-read: slide the window forward
		// so residency stays bounded for long walks.
		w.discardTo(f.hdrLen + bit/8)
	}
}

// scanSink records one block's boundary and output extent without
// materialising bytes. Back-references are validated against the
// absolute produced count, which is what keeps the scan as strict as a
// real decode (a reference before the stream start is corrupt input).
type scanSink struct {
	outBase int64 // decompressed offset at block start
	bytes   int64 // produced within this block
	ev      flate.BlockEvent
	endBit  int64
}

func (s *scanSink) BlockStart(ev flate.BlockEvent) error { s.ev = ev; return nil }
func (s *scanSink) Literal(byte) error                   { s.bytes++; return nil }
func (s *scanSink) Match(length, dist int) error {
	if int64(dist) > s.outBase+s.bytes {
		return flate.ErrDanglingRef
	}
	s.bytes += int64(length)
	return nil
}
func (s *scanSink) BlockEnd(nextBit int64) error { s.endBit = nextBit; return nil }

// FindBlock locates the first confirmed DEFLATE block start at or
// after the given byte offset into the compressed file, by brute-force
// bit scanning with the stringent checks of Appendix X-A. It returns
// the block's bit offset within the DEFLATE payload.
//
// ErrNotFound is returned when no block start is confirmed before the
// end of the file (in particular, the final block of a stream is never
// a valid target).
func FindBlock(gz []byte, fromByte int64) (int64, error) {
	f, err := NewFileBytes(gz, FileOptions{})
	if err != nil {
		return 0, err
	}
	return f.FindBlockAt(fromByte)
}

// FindBlockAt is FindBlock over the File's byte source. For non-slice
// sources the scan runs over an on-demand window that grows until a
// confirmed start is found (with headroom so its confirmation blocks
// are resident) or the source is exhausted. Safe for concurrent use
// (private window over the immutable snapshot).
func (f *File) FindBlockAt(fromByte int64) (int64, error) {
	from := fromByte
	if from < f.hdrLen {
		from = f.hdrLen
	}
	if from > f.size {
		return 0, ErrNotFound
	}
	w, err := f.openWindow(from, minWindowLoad)
	if err != nil {
		return 0, err
	}
	bit, err := findInWindow(w, 0)
	if err != nil {
		return 0, err
	}
	return (w.base-f.hdrLen)*8 + bit, nil
}

// findInWindow locates a confirmed block start at or after
// window-relative bit fromBit, growing the window as needed. The
// returned bit offset is window-relative.
func findInWindow(w *srcWindow, fromBit int64) (int64, error) {
	for {
		finder := blockfind.New()
		bit, err := finder.Next(w.data, fromBit)
		switch {
		case err == nil:
			// A start confirmed close to the edge of a partial window
			// may have had its confirmation blocks cut short; re-run
			// with more data resident before trusting it.
			if !w.atEOF && int64(len(w.data))-bit/8 < confirmSlack {
				if grown, gerr := w.grow(); gerr != nil {
					return 0, gerr
				} else if grown {
					continue
				}
			}
			return bit, nil
		case errors.Is(err, blockfind.ErrNotFound):
			if grown, gerr := w.grow(); gerr != nil {
				return 0, gerr
			} else if grown {
				continue
			}
			return 0, ErrNotFound
		default:
			return 0, err
		}
	}
}

// confirmSlack is how much resident data must follow a candidate block
// start found in a partial window before it is accepted without
// growing the window (enough for the confirmation decodes).
const confirmSlack = 256 << 10

// ErrNotFound re-exports the block scanner's miss condition.
var ErrNotFound = blockfind.ErrNotFound
