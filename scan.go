package pugz

import (
	"repro/internal/blockfind"
	"repro/internal/flate"
	"repro/internal/gzipx"
)

// Block describes one DEFLATE block of a gzip member.
type Block struct {
	// StartBit / EndBit are absolute bit offsets within the DEFLATE
	// payload (add 8*header length for file-absolute positions).
	StartBit int64
	EndBit   int64
	// Type is "stored", "fixed" or "dynamic".
	Type string
	// Final marks the last block of the stream.
	Final bool
	// OutStart / OutEnd are the block's byte extent in the
	// decompressed output.
	OutStart int64
	OutEnd   int64
}

// ScanBlocks fully decodes the first member of a gzip file and returns
// every block boundary. This is the exhaustive (sequential) index; use
// FindBlock to sync to a single block near an arbitrary offset without
// decoding the prefix.
func ScanBlocks(gz []byte) ([]Block, error) {
	m, err := gzipx.ParseHeader(gz)
	if err != nil {
		return nil, err
	}
	payload := gz[m.HeaderLen:]
	_, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, len(spans))
	for i, s := range spans {
		blocks[i] = Block{
			StartBit: s.Event.StartBit,
			EndBit:   s.EndBit,
			Type:     s.Event.Type.String(),
			Final:    s.Event.Final,
			OutStart: s.OutStart,
			OutEnd:   s.OutEnd,
		}
	}
	return blocks, nil
}

// FindBlock locates the first confirmed DEFLATE block start at or
// after the given byte offset into the compressed file, by brute-force
// bit scanning with the stringent checks of Appendix X-A. It returns
// the block's bit offset within the DEFLATE payload.
//
// ErrNotFound is returned when no block start is confirmed before the
// end of the file (in particular, the final block of a stream is never
// a valid target).
func FindBlock(gz []byte, fromByte int64) (int64, error) {
	m, err := gzipx.ParseHeader(gz)
	if err != nil {
		return 0, err
	}
	payload := gz[m.HeaderLen:]
	from := fromByte - int64(m.HeaderLen)
	if from < 0 {
		from = 0
	}
	f := blockfind.New()
	return f.Next(payload, from*8)
}

// ErrNotFound re-exports the block scanner's miss condition.
var ErrNotFound = blockfind.ErrNotFound
