// Package pugz is a pure-Go reproduction of the system described in
// "Parallel decompression of gzip-compressed files and random access
// to DNA sequences" (Kerbiriou & Chikhi, 2019): exact multi-threaded
// decompression of arbitrary gzip-compressed text files, plus random
// access to DNA sequences inside gzip-compressed FASTQ files.
//
// There are two decompression APIs sharing one parallel engine:
//
//   - NewReader is the streaming API: it wraps any io.Reader — a
//     file, a pipe, a socket — in an io.ReadCloser whose output is
//     byte-identical to gunzip's across all members. A reader
//     goroutine fills a bounded compressed window, Threads workers
//     decode each batch's chunks with symbolic contexts, and batches
//     are resolved and emitted in order with back-pressure, so peak
//     memory is O(batch x threads) regardless of stream size — the
//     paper's Section VIII memory limitation, lifted in both
//     directions.
//
//     r, _ := pugz.NewReader(src, pugz.StreamOptions{Threads: 8})
//     defer r.Close()
//     io.Copy(dst, r)
//
//   - Decompress is the slice API: exact two-pass parallel
//     decompression of a whole in-memory gzip file (the pugz
//     algorithm, Section VI-C), returning per-chunk phase statistics
//     for the paper's experiments.
//
// The remaining entry points mirror the paper's other capabilities:
// FindBlock / ScanBlocks locate DEFLATE block boundaries, either by
// brute-force bit scanning from an arbitrary compressed offset
// (Section VI-A) or exhaustively during a sequential decode, and
// RandomAccess decompresses from an arbitrary compressed offset with
// an undetermined context and extracts DNA sequences from the
// partially resolved text (Sections IV and VI-B, the fqgz prototype).
//
// A Compress helper (gzip-compatible output with zlib level semantics,
// levels 0-9) is included so corpora for the paper's experiments can
// be generated without cgo or external binaries.
package pugz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/core"
	"repro/internal/gzipx"
)

// Options configures parallel decompression.
type Options struct {
	// Threads is the number of concurrent chunks; values < 1 select 1.
	Threads int
	// VerifyChecksums enables CRC-32 and ISIZE verification of every
	// gzip member. The paper's pugz skips checksums (Section VIII);
	// they are off by default to match, but available.
	VerifyChecksums bool
	// MinChunk is the minimum compressed bytes per chunk (default
	// 128 KiB). Lower it to exercise parallelism on small inputs.
	MinChunk int
	// Sequential runs each chunk's work one at a time instead of
	// concurrently (output identical). Use it for measurement on hosts
	// with fewer cores than chunks: per-chunk Stats then reflect
	// isolated cost, making SimulatedMakespan meaningful. See
	// EXPERIMENTS.md.
	Sequential bool
}

// ChunkStats describes one chunk of a parallel run.
type ChunkStats struct {
	StartBit          int64
	EndBit            int64
	OutBytes          int64
	SymbolsUnresolved int64
	Find              time.Duration
	Pass1             time.Duration
	Pass2             time.Duration
}

// Stats reports how a Decompress call spent its time.
type Stats struct {
	Chunks       []ChunkStats
	SyncWall     time.Duration
	Pass1Wall    time.Duration
	Pass2SeqWall time.Duration
	Pass2ParWall time.Duration
	TotalWall    time.Duration
	// Members is the number of gzip members processed.
	Members int
}

// WorkSeconds returns the aggregate CPU work across all chunks.
func (s *Stats) WorkSeconds() float64 {
	var d time.Duration
	for _, c := range s.Chunks {
		d += c.Find + c.Pass1 + c.Pass2
	}
	return d.Seconds()
}

// SimulatedMakespan estimates the wall time on a machine with one free
// core per chunk: max(find+pass1) + sequential resolve + max(pass2).
// See EXPERIMENTS.md for how this is used to reproduce the Figure 5
// scaling shape on hosts with few physical cores.
func (s *Stats) SimulatedMakespan() time.Duration {
	var maxP1, maxP2 time.Duration
	for _, c := range s.Chunks {
		if p := c.Find + c.Pass1; p > maxP1 {
			maxP1 = p
		}
		if c.Pass2 > maxP2 {
			maxP2 = c.Pass2
		}
	}
	return maxP1 + s.Pass2SeqWall + maxP2
}

func (s *Stats) addMember(m *core.Metrics) {
	for _, c := range m.Chunks {
		s.Chunks = append(s.Chunks, ChunkStats(c))
	}
	s.SyncWall += m.SyncWall
	s.Pass1Wall += m.Pass1Wall
	s.Pass2SeqWall += m.Pass2SeqWall
	s.Pass2ParWall += m.Pass2ParWall
	s.TotalWall += m.TotalWall
	s.Members++
}

// ErrChecksum is returned when VerifyChecksums is set and a member's
// CRC-32 or ISIZE does not match its decompressed content.
var ErrChecksum = errors.New("pugz: checksum mismatch")

// Decompress decompresses a complete gzip file (all members) in
// parallel and returns the concatenated output with run statistics.
// The output is byte-identical to gunzip's.
func Decompress(gz []byte, o Options) ([]byte, *Stats, error) {
	stats := &Stats{}
	var out []byte
	rest := gz
	for len(rest) > 0 {
		member, err := gzipx.ParseHeader(rest)
		if err != nil {
			return nil, nil, err
		}
		payload := rest[member.HeaderLen:]
		dec, m, err := core.DecompressPayload(payload, core.Options{
			Threads:    o.Threads,
			MinChunk:   o.MinChunk,
			Sequential: o.Sequential,
		})
		if err != nil {
			return nil, nil, err
		}
		endByte := int((m.PayloadEndBit + 7) / 8)
		if len(payload) < endByte+8 {
			return nil, nil, gzipx.ErrTruncated
		}
		if o.VerifyChecksums {
			wantCRC := binary.LittleEndian.Uint32(payload[endByte:])
			wantISize := binary.LittleEndian.Uint32(payload[endByte+4:])
			if crc32.ChecksumIEEE(dec) != wantCRC {
				return nil, nil, fmt.Errorf("%w: CRC-32", ErrChecksum)
			}
			if uint32(len(dec)) != wantISize {
				return nil, nil, fmt.Errorf("%w: ISIZE", ErrChecksum)
			}
		}
		out = append(out, dec...)
		stats.addMember(m)
		rest = payload[endByte+8:]
	}
	return out, stats, nil
}

// DecompressDeflate runs the parallel engine directly on a raw DEFLATE
// stream (no gzip framing).
func DecompressDeflate(payload []byte, o Options) ([]byte, *Stats, error) {
	dec, m, err := core.DecompressPayload(payload, core.Options{
		Threads:    o.Threads,
		MinChunk:   o.MinChunk,
		Sequential: o.Sequential,
	})
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	stats.addMember(m)
	return dec, stats, nil
}

// Compress produces a gzip file from data at the given level (0-9)
// with gzip/zlib level semantics: greedy parsing below level 4, lazy
// (non-greedy) parsing from level 4 up. The XFL header byte is set the
// way gzip sets it, so compression-level classification behaves like
// the UNIX file command.
func Compress(data []byte, level int) ([]byte, error) {
	return gzipx.Compress(data, level)
}

// CompressNamed is Compress with an embedded FNAME header field.
func CompressNamed(data []byte, level int, name string) ([]byte, error) {
	return gzipx.CompressOpts(data, gzipx.Options{Level: level, Name: name})
}

// CompressParallel compresses data with pigz-style chunked
// parallelism (the easy direction the paper's introduction contrasts
// with decompression): independent chunks joined by empty stored sync
// blocks into one ordinary gzip member. Output bytes are independent
// of the thread count; the ratio cost of the per-chunk window reset
// is a few percent at the default 256 KiB chunks.
func CompressParallel(data []byte, level, threads int) ([]byte, error) {
	return gzipx.CompressParallel(data, gzipx.ParallelOptions{Level: level, Threads: threads})
}

// GunzipSequential is the exact single-threaded baseline (the "gunzip
// role" in Table II): full header parsing, CRC-32 and ISIZE checks,
// multi-member support.
func GunzipSequential(gz []byte) ([]byte, error) {
	return gzipx.Decompress(gz)
}

// CompressionClass mirrors the UNIX file command's gzip level report,
// derived from the XFL header byte: "lowest" (gzip -1), "highest"
// (gzip -9), or "normal" (anything between). Table I partitions
// datasets with exactly this rule.
type CompressionClass = gzipx.CompressionClass

// The three classes.
const (
	ClassNormal  = gzipx.ClassNormal
	ClassLowest  = gzipx.ClassLowest
	ClassHighest = gzipx.ClassHighest
)

// Classify reports the compression class of a gzip file from its
// header.
func Classify(gz []byte) (CompressionClass, error) {
	m, err := gzipx.ParseHeader(gz)
	if err != nil {
		return ClassNormal, err
	}
	return gzipx.ClassifyXFL(m.XFL), nil
}
