// Package srcbuf provides a sliding byte window over an io.Reader.
//
// A background reader goroutine issues fixed-capacity reads against the
// source and hands the segments over a bounded channel, so source I/O
// overlaps with whatever the consumer does with the window and the
// channel capacity bounds how far the reader may run ahead
// (back-pressure). The consumer side — Fill, Peek, ReadByte, Discard —
// is a plain single-goroutine sliding window: bytes enter at the tail,
// are consumed from the head, and the head's absolute offset within
// the source stream is tracked so callers can address content by
// stream position even though only a bounded slice of it is resident.
//
// This is the memory-bounding piece of the streaming decompression
// pipeline: peak residency is O(high-water window) regardless of how
// large the source stream is.
package srcbuf

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// Defaults for New when the caller passes zero values.
const (
	DefaultReadSize = 512 << 10
	DefaultPrefetch = 2
)

// compactThreshold is how much dead prefix Discard tolerates before
// sliding the live window back to the start of the buffer.
const compactThreshold = 64 << 10

// ErrClosed is returned by Fill/Peek/ReadByte after Close.
var ErrClosed = errors.New("srcbuf: window closed")

type segment struct {
	data []byte
	err  error // non-nil on the source's terminal segment
}

// Window is a sliding window over an io.Reader. The consumer-facing
// methods are not safe for concurrent use; MaxBuffered and Close may be
// called from any goroutine.
type Window struct {
	segs      chan segment
	cancel    chan struct{}
	closeOnce sync.Once

	buf  []byte // buf[off:] is the live window
	off  int
	base int64 // absolute source offset of buf[off]
	eof  bool  // no further segments will arrive
	err  error // terminal source error (io.EOF is not recorded)

	maxBuf atomic.Int64
}

// New starts a reader goroutine over r issuing reads of up to readSize
// bytes, at most prefetch segments ahead of consumption. Zero values
// select DefaultReadSize / DefaultPrefetch.
func New(r io.Reader, readSize, prefetch int) *Window {
	if readSize <= 0 {
		readSize = DefaultReadSize
	}
	if prefetch < 1 {
		prefetch = DefaultPrefetch
	}
	w := &Window{
		segs:   make(chan segment, prefetch),
		cancel: make(chan struct{}),
	}
	go w.read(r, readSize)
	return w
}

// read is the source goroutine: it pulls segments from r until error,
// EOF, or cancellation.
func (w *Window) read(r io.Reader, readSize int) {
	defer close(w.segs)
	for {
		buf := make([]byte, readSize)
		n, err := r.Read(buf)
		if n == 0 && err == nil {
			continue
		}
		seg := segment{data: buf[:n], err: err}
		select {
		case w.segs <- seg:
		case <-w.cancel:
			return
		}
		if err != nil {
			return
		}
	}
}

// fillOne blocks for one more segment (or EOF/cancel); Fill observes
// EOF lazily, so a Fill satisfied exactly by the stream's last byte
// leaves EOF() false until the next fill attempt.
func (w *Window) fillOne() error {
	select {
	case seg, ok := <-w.segs:
		if !ok {
			w.eof = true
			return nil
		}
		if len(seg.data) > 0 {
			w.buf = append(w.buf, seg.data...)
			if n := int64(len(w.buf) - w.off); n > w.maxBuf.Load() {
				w.maxBuf.Store(n)
			}
		}
		if seg.err != nil {
			w.eof = true
			if seg.err != io.EOF {
				w.err = seg.err
			}
		}
		return nil
	case <-w.cancel:
		return ErrClosed
	}
}

// Fill blocks until at least n unconsumed bytes are buffered. When the
// source ends first, Fill returns the source's terminal error, or nil
// for a clean EOF (callers distinguish short data via Len).
func (w *Window) Fill(n int) error {
	for w.Len() < n && !w.eof {
		if err := w.fillOne(); err != nil {
			return err
		}
	}
	if w.Len() >= n {
		return nil
	}
	return w.err
}

// Bytes returns the live window. The slice is valid until the next
// Fill/Grow/Discard/ReadByte call.
func (w *Window) Bytes() []byte { return w.buf[w.off:] }

// Len returns the number of unconsumed bytes currently buffered.
func (w *Window) Len() int { return len(w.buf) - w.off }

// Base returns the absolute source offset of Bytes()[0].
func (w *Window) Base() int64 { return w.base }

// EOF reports whether the source is exhausted (every byte it will ever
// produce is either in the window or already consumed).
func (w *Window) EOF() bool { return w.eof }

// Err returns the source's terminal error, if any (never io.EOF).
func (w *Window) Err() error { return w.err }

// Discard consumes n bytes from the head of the window.
func (w *Window) Discard(n int) {
	if n > w.Len() {
		n = w.Len()
	}
	w.off += n
	w.base += int64(n)
	if w.off >= compactThreshold {
		w.buf = w.buf[:copy(w.buf, w.buf[w.off:])]
		w.off = 0
	}
}

// DiscardTo consumes bytes so that Base() == abs. Positions at or
// before the current base are a no-op.
func (w *Window) DiscardTo(abs int64) {
	if d := abs - w.base; d > 0 {
		w.Discard(int(d))
	}
}

// ReadByte consumes one byte, filling as needed. It returns io.EOF at
// a clean source end, or the source's terminal error.
func (w *Window) ReadByte() (byte, error) {
	if err := w.Fill(1); err != nil {
		return 0, err
	}
	if w.Len() == 0 {
		return 0, io.EOF
	}
	b := w.buf[w.off]
	w.Discard(1)
	return b, nil
}

// Peek returns the next n bytes without consuming them, filling as
// needed. It returns io.ErrUnexpectedEOF (or the source's terminal
// error) when fewer than n bytes remain in the stream.
func (w *Window) Peek(n int) ([]byte, error) {
	if err := w.Fill(n); err != nil {
		return nil, err
	}
	if w.Len() < n {
		if w.err != nil {
			return nil, w.err
		}
		return nil, io.ErrUnexpectedEOF
	}
	return w.buf[w.off : w.off+n], nil
}

// MaxBuffered returns the high-water mark of buffered-but-unconsumed
// bytes, the window's contribution to peak memory. Safe from any
// goroutine.
func (w *Window) MaxBuffered() int64 { return w.maxBuf.Load() }

// Close stops the reader goroutine and unblocks any Fill in progress.
// It is safe to call multiple times and from any goroutine. The source
// reader is not closed; a read already in flight finishes in the
// background and is dropped.
func (w *Window) Close() {
	w.closeOnce.Do(func() { close(w.cancel) })
}
