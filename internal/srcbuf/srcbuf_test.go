package srcbuf

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// chunkReader yields at most n bytes per Read.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func TestFillDiscardTracksBase(t *testing.T) {
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	w := New(&chunkReader{bytes.NewReader(data), 7}, 64, 2)
	defer w.Close()
	if err := w.Fill(100); err != nil {
		t.Fatal(err)
	}
	if w.Len() < 100 {
		t.Fatalf("Len = %d after Fill(100)", w.Len())
	}
	if !bytes.Equal(w.Bytes()[:100], data[:100]) {
		t.Fatal("window content mismatch")
	}
	w.Discard(37)
	if w.Base() != 37 {
		t.Fatalf("Base = %d, want 37", w.Base())
	}
	if w.Bytes()[0] != data[37] {
		t.Fatal("head byte wrong after Discard")
	}
	// Discard only consumes buffered bytes: fill up to the target
	// first (the pipeline always discards within decoded data).
	if err := w.Fill(1000 - 37); err != nil {
		t.Fatal(err)
	}
	w.DiscardTo(1000)
	if w.Base() != 1000 {
		t.Fatalf("Base = %d, want 1000", w.Base())
	}
	w.DiscardTo(500) // backwards is a no-op
	if w.Base() != 1000 {
		t.Fatalf("Base moved backwards to %d", w.Base())
	}
	if err := w.Fill(9000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), data[1000:]) {
		t.Fatal("tail mismatch after large fill")
	}
	// EOF is observed lazily: asking for one byte more than the stream
	// holds forces the terminal segment through.
	if err := w.Fill(w.Len() + 1); err != nil {
		t.Fatal(err)
	}
	if !w.EOF() {
		t.Fatal("EOF not reported after draining the source")
	}
}

func TestReadBytePeekAndEOF(t *testing.T) {
	w := New(bytes.NewReader([]byte("abc")), 2, 1)
	defer w.Close()
	p, err := w.Peek(2)
	if err != nil || string(p) != "ab" {
		t.Fatalf("Peek: %q, %v", p, err)
	}
	for _, want := range []byte("abc") {
		b, err := w.ReadByte()
		if err != nil || b != want {
			t.Fatalf("ReadByte: %c, %v (want %c)", b, err, want)
		}
	}
	if _, err := w.ReadByte(); err != io.EOF {
		t.Fatalf("ReadByte at end: %v", err)
	}
	if _, err := w.Peek(1); err != io.ErrUnexpectedEOF {
		t.Fatalf("Peek past end: %v", err)
	}
}

func TestSourceErrorSurfaced(t *testing.T) {
	boom := errors.New("boom")
	src := io.MultiReader(bytes.NewReader([]byte("xy")), &errReader{boom})
	w := New(src, 8, 1)
	defer w.Close()
	if err := w.Fill(2); err != nil {
		t.Fatal(err) // the two good bytes arrive error-free
	}
	if err := w.Fill(3); !errors.Is(err, boom) {
		t.Fatalf("Fill past failure: %v", err)
	}
	if !w.EOF() || !errors.Is(w.Err(), boom) {
		t.Fatal("terminal state not recorded")
	}
	if _, err := w.ReadByte(); err != nil {
		t.Fatalf("buffered bytes must stay readable, got %v", err)
	}
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }

func TestCloseUnblocksFill(t *testing.T) {
	pr, pw := io.Pipe()
	defer pw.Close()
	w := New(pr, 8, 1)
	done := make(chan error, 1)
	go func() { done <- w.Fill(10) }()
	w.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Fill after Close: %v", err)
	}
	w.Close() // idempotent
}

func TestMaxBufferedHighWater(t *testing.T) {
	data := make([]byte, 1<<20)
	w := New(bytes.NewReader(data), 64<<10, 2)
	defer w.Close()
	for {
		if err := w.Fill(128 << 10); err != nil {
			t.Fatal(err)
		}
		if w.Len() == 0 {
			break
		}
		w.Discard(w.Len())
		if w.EOF() && w.Len() == 0 {
			break
		}
	}
	if max := w.MaxBuffered(); max > 256<<10 {
		t.Fatalf("high-water %d for a bounded consumer", max)
	}
	if w.MaxBuffered() == 0 {
		t.Fatal("high-water never recorded")
	}
}

func TestCompaction(t *testing.T) {
	// Discarding far more than compactThreshold must not grow the
	// retained buffer: after compaction the live window starts at the
	// front again.
	data := make([]byte, 4*compactThreshold)
	w := New(bytes.NewReader(data), 32<<10, 2)
	defer w.Close()
	for i := 0; i < 4; i++ {
		if err := w.Fill(compactThreshold); err != nil {
			t.Fatal(err)
		}
		w.Discard(compactThreshold)
	}
	if w.off >= compactThreshold {
		t.Fatalf("dead prefix %d never compacted", w.off)
	}
	if w.Base() != int64(len(data)) {
		t.Fatalf("Base = %d, want %d", w.Base(), len(data))
	}
}
