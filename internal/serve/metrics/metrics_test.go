package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRegistrySnapshotAndJSON(t *testing.T) {
	g := New()
	g.ObserveRequest(206, 100)
	g.ObserveRequest(200, 50)
	g.ObserveRequest(416, 0)
	g.ObserveRequest(404, 0)
	g.ObserveRequest(500, 0)
	g.BytesInflated.Add(300)
	g.Blob("x.gz").CacheHits.Add(2)

	m := g.Snapshot()
	for key, want := range map[string]int64{
		"requests_total":       5,
		"status_206":           1,
		"status_2xx":           1,
		"status_416":           1,
		"status_4xx":           1,
		"status_5xx":           1,
		"bytes_served":         150,
		"bytes_inflated":       300,
		"blob.x.gz.cache_hits": 2,
	} {
		if m[key] != want {
			t.Errorf("%s = %d, want %d", key, m[key], want)
		}
	}

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, nil)
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if doc["requests_total"].(float64) != 5 {
		t.Errorf("rendered requests_total = %v", doc["requests_total"])
	}
	if _, ok := doc["qps_10s"]; !ok {
		t.Error("rendered doc missing qps_10s")
	}
	if got := doc["inflated_per_served"].(float64); got != 2 {
		t.Errorf("inflated_per_served = %v, want 2", got)
	}
}

func TestRateWindow(t *testing.T) {
	var r rateWindow
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		r.add(now.Add(time.Duration(i)*time.Second), 10)
	}
	// Observed from one second after the last add: all five buckets are
	// completed seconds inside the 10 s window.
	got := r.perSec(now.Add(5 * time.Second))
	if want := 50.0 / rateSpanSec; got != want {
		t.Errorf("perSec = %v, want %v", got, want)
	}
	// Far in the future the window is empty.
	if got := r.perSec(now.Add(100 * time.Second)); got != 0 {
		t.Errorf("perSec after idle = %v, want 0", got)
	}
}
