// Package metrics is the observability layer of the pugzd serving
// subsystem: a small, dependency-free registry of atomic counters and
// gauges in the expvar style, exported as one JSON document over HTTP
// (GET /metrics). Each serve.Server owns its own Registry — nothing is
// process-global — so tests (and multi-tenant embeddings) never
// collide on metric names the way expvar.Publish does.
package metrics

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// rateWindow tracks a recent-requests rate over a ring of per-second
// buckets, so /metrics can report a live qps figure instead of only a
// lifetime average.
type rateWindow struct {
	mu      sync.Mutex
	buckets [rateBuckets]int64 // guarded by mu
	seconds [rateBuckets]int64 // unix second each bucket counts; guarded by mu
}

const (
	rateBuckets = 16
	rateSpanSec = 10 // the window the qps figure averages over
)

func (r *rateWindow) add(now time.Time, n int64) {
	sec := now.Unix()
	i := int(sec % rateBuckets)
	r.mu.Lock()
	if r.seconds[i] != sec {
		r.seconds[i] = sec
		r.buckets[i] = 0
	}
	r.buckets[i] += n
	r.mu.Unlock()
}

// perSec averages the completed last rateSpanSec seconds.
func (r *rateWindow) perSec(now time.Time) float64 {
	sec := now.Unix()
	var sum int64
	r.mu.Lock()
	for i := 0; i < rateBuckets; i++ {
		if age := sec - r.seconds[i]; age >= 1 && age <= rateSpanSec {
			sum += r.buckets[i]
		}
	}
	r.mu.Unlock()
	return float64(sum) / rateSpanSec
}

// BlobStats is the per-blob slice of the registry: handle-cache
// traffic and serving volume for one catalog entry.
type BlobStats struct {
	Requests    Counter
	BytesServed Counter
	CacheHits   Counter
	CacheMisses Counter
	Evictions   Counter
}

// Registry holds every metric the serving subsystem exports. The zero
// value is not usable; construct with New.
type Registry struct {
	start time.Time
	rate  rateWindow

	// Request-side. The status classes are disjoint: a 206 counts in
	// Status206 only, not in Status2xx.
	Requests  Counter // every HTTP request routed to the server
	Status2xx Counter // full-body successes (200, ...)
	Status206 Counter // partial-content responses
	Status416 Counter // unsatisfiable ranges
	Status4xx Counter // other client errors (404, 405, ...)
	Status5xx Counter // server errors
	InFlight  Gauge   // requests currently being served

	// CopyErrors counts bodies cut short after the status line was
	// already written (client went away, or a decode error mid-body).
	CopyErrors Counter

	// Volume: BytesServed is response-body bytes; BytesInflated is the
	// decompressed bytes the engine decoded or skipped to produce them
	// (pugz.File.InflatedBytes deltas), so inflated/served is the
	// subsystem's read amplification.
	BytesServed   Counter
	BytesInflated Counter

	// Handle-cache totals (per-blob splits live in BlobStats).
	CacheHits      Counter
	CacheMisses    Counter
	CacheEvictions Counter
	CacheUsedBytes Gauge // current byte cost of resident handles
	CacheHandles   Gauge // resident handle count

	// Index builds (the background singleflight path).
	IndexBuilds         Counter // builds started
	IndexBuildsDone     Counter // builds completed successfully
	IndexBuildErrors    Counter
	IndexBuildNanos     Counter // total wall time of completed builds
	IndexBuildLastNanos Gauge   // wall time of the most recent build

	mu    sync.Mutex
	blobs map[string]*BlobStats // guarded by mu
}

// New returns an empty registry; the qps window starts now.
func New() *Registry {
	return &Registry{start: time.Now(), blobs: make(map[string]*BlobStats)}
}

// Blob returns (creating on first use) the per-blob stats for name.
func (g *Registry) Blob(name string) *BlobStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.blobs[name]
	if b == nil {
		b = &BlobStats{}
		g.blobs[name] = b
	}
	return b
}

// ObserveRequest records one finished request: its status class and
// body bytes, feeding both the lifetime counters and the qps window.
func (g *Registry) ObserveRequest(status int, bodyBytes int64) {
	g.Requests.Add(1)
	g.rate.add(time.Now(), 1)
	g.BytesServed.Add(bodyBytes)
	switch {
	case status == http.StatusPartialContent:
		g.Status206.Add(1)
	case status == http.StatusRequestedRangeNotSatisfiable:
		g.Status416.Add(1)
	case status >= 200 && status < 300:
		g.Status2xx.Add(1)
	case status >= 400 && status < 500:
		g.Status4xx.Add(1)
	case status >= 500:
		g.Status5xx.Add(1)
	}
}

// Snapshot flattens every integer metric into one map; float-valued
// derived figures (qps) are excluded — see ServeHTTP. Keys are stable:
// tests and the load generator parse them.
func (g *Registry) Snapshot() map[string]int64 {
	m := map[string]int64{
		"requests_total":         g.Requests.Value(),
		"status_2xx":             g.Status2xx.Value(),
		"status_206":             g.Status206.Value(),
		"status_416":             g.Status416.Value(),
		"status_4xx":             g.Status4xx.Value(),
		"status_5xx":             g.Status5xx.Value(),
		"copy_errors":            g.CopyErrors.Value(),
		"in_flight":              g.InFlight.Value(),
		"bytes_served":           g.BytesServed.Value(),
		"bytes_inflated":         g.BytesInflated.Value(),
		"cache_hits":             g.CacheHits.Value(),
		"cache_misses":           g.CacheMisses.Value(),
		"cache_evictions":        g.CacheEvictions.Value(),
		"cache_used_bytes":       g.CacheUsedBytes.Value(),
		"cache_handles":          g.CacheHandles.Value(),
		"index_builds":           g.IndexBuilds.Value(),
		"index_builds_done":      g.IndexBuildsDone.Value(),
		"index_build_errors":     g.IndexBuildErrors.Value(),
		"index_build_nanos":      g.IndexBuildNanos.Value(),
		"index_build_last_nanos": g.IndexBuildLastNanos.Value(),
		"uptime_seconds":         int64(time.Since(g.start).Seconds()),
	}
	g.mu.Lock()
	for name, b := range g.blobs {
		m["blob."+name+".requests"] = b.Requests.Value()
		m["blob."+name+".bytes_served"] = b.BytesServed.Value()
		m["blob."+name+".cache_hits"] = b.CacheHits.Value()
		m["blob."+name+".cache_misses"] = b.CacheMisses.Value()
		m["blob."+name+".evictions"] = b.Evictions.Value()
	}
	g.mu.Unlock()
	return m
}

// ServeHTTP renders the registry as a single sorted JSON object: the
// integer snapshot plus derived floats (qps over the last 10 s, the
// lifetime average, and bytes inflated per byte served).
func (g *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := g.Snapshot()
	doc := make(map[string]any, len(snap)+3)
	for k, v := range snap {
		doc[k] = v
	}
	doc["qps_10s"] = g.rate.perSec(time.Now())
	if up := time.Since(g.start).Seconds(); up > 0 {
		doc["qps_lifetime"] = float64(g.Requests.Value()) / up
	}
	if served := g.BytesServed.Value(); served > 0 {
		doc["inflated_per_served"] = float64(g.BytesInflated.Value()) / float64(served)
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	// Hand-rolled ordered emission: encoding/json would sort map keys
	// too, but building the ordered form keeps the output stable even
	// if the doc ever moves to a struct-free encoder.
	w.Write([]byte("{\n"))
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		vb, _ := json.Marshal(doc[k])
		w.Write(kb)
		w.Write([]byte(": "))
		w.Write(vb)
		if i < len(keys)-1 {
			w.Write([]byte(","))
		}
		w.Write([]byte("\n"))
	}
	w.Write([]byte("}\n"))
}
