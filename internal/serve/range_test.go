package serve

import "testing"

func TestParseRange(t *testing.T) {
	const size = 1000
	tests := []struct {
		h     string
		start int64
		n     int64
		ok    bool
		unsat bool
	}{
		// Absent / ignorable headers serve the full representation.
		{h: ""},
		{h: "items=0-5"},
		{h: "bytes=0-1,5-6"}, // multi-range set: MAY ignore
		{h: "bytes=abc-5"},
		{h: "bytes=5-abc"},
		{h: "bytes=5-4"}, // last < first: invalid, ignore
		{h: "bytes=-"},
		{h: "bytes=--5"},
		{h: "bytes=+5-9"},
		{h: "bytes="},

		// Satisfiable single ranges.
		{h: "bytes=0-499", start: 0, n: 500, ok: true},
		{h: "bytes=500-999", start: 500, n: 500, ok: true},
		{h: "bytes=500-2000", start: 500, n: 500, ok: true}, // end clamps
		{h: "bytes=999-999", start: 999, n: 1, ok: true},
		{h: "bytes=0-0", start: 0, n: 1, ok: true},
		{h: "bytes=500-", start: 500, n: 500, ok: true},
		{h: "bytes=-100", start: 900, n: 100, ok: true},
		{h: "bytes=-2000", start: 0, n: 1000, ok: true}, // suffix > size: whole
		{h: "BYTES=0-4", start: 0, n: 5, ok: true},      // unit is case-insensitive
		{h: "bytes= 0-4 ", start: 0, n: 5, ok: true},
		{h: "bytes=007-009", start: 7, n: 3, ok: true},

		// Valid but unsatisfiable: 416.
		{h: "bytes=1000-1001", unsat: true}, // starts exactly at EOF
		{h: "bytes=1000-", unsat: true},
		{h: "bytes=5000-", unsat: true},
		{h: "bytes=-0", unsat: true},
	}
	for _, tt := range tests {
		r, ok, err := parseRange(tt.h, size)
		switch {
		case tt.unsat:
			if err != errUnsatisfiable {
				t.Errorf("%q: err=%v, want errUnsatisfiable", tt.h, err)
			}
		case tt.ok:
			if err != nil || !ok {
				t.Errorf("%q: ok=%v err=%v, want satisfiable", tt.h, ok, err)
			} else if r.start != tt.start || r.length != tt.n {
				t.Errorf("%q: got [%d,+%d), want [%d,+%d)", tt.h, r.start, r.length, tt.start, tt.n)
			}
		default:
			if ok || err != nil {
				t.Errorf("%q: ok=%v err=%v, want ignored", tt.h, ok, err)
			}
		}
	}
}

// TestParseRangeEmptyRepresentation: every bytes range against a
// zero-length representation is unsatisfiable.
func TestParseRangeEmptyRepresentation(t *testing.T) {
	for _, h := range []string{"bytes=0-", "bytes=0-0", "bytes=-5", "bytes=-0"} {
		if _, _, err := parseRange(h, 0); err != errUnsatisfiable {
			t.Errorf("%q vs size 0: err=%v, want errUnsatisfiable", h, err)
		}
	}
	// No header still means "serve the (empty) full body".
	if _, ok, err := parseRange("", 0); ok || err != nil {
		t.Errorf("empty header vs size 0: ok=%v err=%v", ok, err)
	}
}
