package serve

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	pugz "repro"
	"repro/internal/serve/metrics"
)

// This file is the handle layer of the serving subsystem: a
// byte-budgeted LRU of open pugz.File handles (plus their attached
// indexes), shared across requests. Opening a cold blob is
// singleflight — N concurrent cold requests trigger exactly one
// os.Open + pugz.NewFile — and the first acquire of an un-indexed
// handle kicks exactly one background checkpoint-index build, while
// requests keep serving through the File's unindexed deep-seek path in
// the meantime. Eviction is refcount-aware: a handle evicted while
// requests still hold it stays fully readable until the last Release,
// and only then closes.

// CacheOptions configures the server's handle cache.
type CacheOptions struct {
	// BudgetBytes bounds the total estimated byte cost of resident
	// handles (base handle overhead + index windows + retained restart
	// points). 0 selects 256 MiB. A single handle may exceed the budget
	// by itself; the cache then holds just that handle.
	BudgetBytes int64
	// File is the configuration applied to every opened pugz.File.
	File pugz.FileOptions
	// IndexSpacing is the checkpoint spacing of background index
	// builds (0 selects the pugz default, 1 MiB); negative disables
	// background builds entirely (sidecar indexes still load).
	IndexSpacing int64
	// Metrics receives cache traffic; required.
	Metrics *metrics.Registry
}

const defaultCacheBudget = 256 << 20

// handleBaseCost is the budget charge of one open handle before any
// index: the File's pooled cursors and window buffers, estimated, plus
// the os.File. Deliberately coarse — the budget is a residency bound,
// not an accounting audit.
const handleBaseCost = 1 << 20

// errCacheClosed reports acquire-after-Close (server shutdown).
var errCacheClosed = errors.New("serve: handle cache closed")

type handleCache struct {
	opts CacheOptions

	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
	lru     *list.List             // of *cacheEntry; front = most recently used; guarded by mu
	used    int64                  // guarded by mu
	closed  bool                   // guarded by mu

	flight flightGroup // keyed by blob name: cold opens
}

type cacheEntry struct {
	blob Blob
	f    *pugz.File
	src  *os.File
	elem *list.Element

	cost         int64 // current charge against the budget
	indexBytes   int64 // attached-index part of cost
	refs         int   // live handles (requests + background build)
	evicted      bool  // dropped from the cache; close on last release
	fresh        bool  // opened but never claimed: exempt from eviction
	buildKicked  bool
	lastInflated int64 // high-water mark already reported to metrics
}

func newHandleCache(o CacheOptions) *handleCache {
	if o.BudgetBytes <= 0 {
		o.BudgetBytes = defaultCacheBudget
	}
	return &handleCache{
		opts:    o,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// cacheHandle is one request's lease on an open File. Release returns
// it; the File must not be used afterwards.
type cacheHandle struct {
	c *handleCache
	e *cacheEntry
}

func (h *cacheHandle) File() *pugz.File { return h.e.f }
func (h *cacheHandle) Blob() Blob       { return h.e.blob }

// Release ends the lease: the handle's inflation since the last sample
// feeds the metrics, and an entry evicted mid-flight closes once its
// last lease ends.
func (h *cacheHandle) Release() {
	if h.e == nil {
		return
	}
	e := h.e
	h.e = nil
	h.c.releaseEntry(e)
}

// acquire leases the handle for blob b, opening it (singleflight) on a
// cold miss. The caller must Release the returned handle.
func (c *handleCache) acquire(b Blob) (*cacheHandle, error) {
	met := c.opts.Metrics
	opened := false
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errCacheClosed
		}
		if e, ok := c.entries[b.Name]; ok {
			e.refs++
			e.fresh = false
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			if !opened {
				// The opener already counted its miss; only acquires
				// served by an entry someone else opened count as hits.
				met.CacheHits.Add(1)
				met.Blob(b.Name).CacheHits.Add(1)
			}
			c.maybeBuildIndex(e)
			return &cacheHandle{c: c, e: e}, nil
		}
		c.mu.Unlock()
		if attempt > 32 {
			// An eviction storm kept deleting the entry between the open
			// and our claim; give up rather than spin (the request fails,
			// the operator sees a 500 + a saturated-budget metric).
			return nil, fmt.Errorf("serve: cache thrashing on blob %q (budget too small?)", b.Name)
		}
		if _, err := c.flight.Do(b.Name, func() (any, error) {
			opened = true
			return nil, c.open(b)
		}); err != nil {
			return nil, err
		}
		// Loop: claim the freshly inserted entry from the map (it may
		// already have been evicted by concurrent pressure; then reopen).
	}
}

// open opens blob b and inserts the entry (cold-miss path; runs inside
// the per-blob singleflight).
func (c *handleCache) open(b Blob) error {
	met := c.opts.Metrics
	met.CacheMisses.Add(1)
	met.Blob(b.Name).CacheMisses.Add(1)

	src, err := os.Open(b.Path)
	if err != nil {
		return err
	}
	fi, err := src.Stat()
	if err != nil {
		src.Close()
		return err
	}
	f, err := pugz.NewFile(src, fi.Size(), c.opts.File)
	if err != nil {
		src.Close()
		return fmt.Errorf("serve: open %s: %w", b.Name, err)
	}
	e := &cacheEntry{blob: b, f: f, src: src, fresh: true}
	if b.IndexPath != "" {
		blob, err := os.ReadFile(b.IndexPath)
		if err == nil {
			err = f.SetIndex(blob)
		}
		if err != nil {
			// A broken sidecar degrades to the no-index path (and a
			// background rebuild); it must not take the blob down.
			e.indexBytes = 0
		} else {
			e.indexBytes = int64(len(blob))
			e.buildKicked = true // sidecar attached: nothing to build
		}
	}
	e.cost = handleCost(f, e.indexBytes)

	var victims []*cacheEntry
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		f.Close()
		src.Close()
		return errCacheClosed
	}
	c.entries[b.Name] = e
	e.elem = c.lru.PushFront(e)
	c.used += e.cost
	victims = c.evictOverflowLocked(e)
	c.updateGaugesLocked()
	c.mu.Unlock()
	closeVictims(victims)
	return nil
}

// handleCost estimates a resident handle's byte charge: the base
// handle overhead, the attached index blob, and the auto-index restart
// points the File has harvested (32 KiB window each).
func handleCost(f *pugz.File, indexBytes int64) int64 {
	return handleBaseCost + indexBytes + int64(f.Checkpoints())*(32<<10)
}

// evictOverflowLocked drops least-recently-used entries until the
// budget holds, walking the LRU tail but never evicting except (the
// entry being used right now) or fresh entries (opened but not yet
// claimed by their waiters — evicting those would let a cold storm
// thrash opens forever). Exempt entries can leave the budget
// transiently overshot; the next claim clears their exemption and the
// following acquire rebalances. Returns the victims whose refcount
// already reached zero; the caller closes them after unlocking.
// Victims still leased stay usable and close on their last Release.
func (c *handleCache) evictOverflowLocked(except *cacheEntry) []*cacheEntry {
	var victims []*cacheEntry
	for el := c.lru.Back(); el != nil && c.used > c.opts.BudgetBytes; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e != except && !e.fresh {
			c.lru.Remove(el)
			delete(c.entries, e.blob.Name)
			c.used -= e.cost
			e.evicted = true
			c.opts.Metrics.CacheEvictions.Add(1)
			c.opts.Metrics.Blob(e.blob.Name).Evictions.Add(1)
			if e.refs == 0 {
				victims = append(victims, e)
			}
		}
		el = prev
	}
	return victims
}

func closeVictims(victims []*cacheEntry) {
	for _, e := range victims {
		e.f.Close()
		e.src.Close()
	}
}

func (c *handleCache) updateGaugesLocked() {
	c.opts.Metrics.CacheUsedBytes.Set(c.used)
	c.opts.Metrics.CacheHandles.Set(int64(c.lru.Len()))
}

// releaseEntry drops one lease: samples the File's inflation delta
// into the metrics and closes the entry if it was evicted mid-flight
// and this was the last lease.
func (c *handleCache) releaseEntry(e *cacheEntry) {
	met := c.opts.Metrics
	var closeNow bool
	c.mu.Lock()
	if d := e.f.InflatedBytes() - e.lastInflated; d > 0 {
		e.lastInflated += d
		met.BytesInflated.Add(d)
	}
	e.refs--
	closeNow = e.evicted && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		e.f.Close()
		e.src.Close()
	}
}

// maybeBuildIndex kicks the one background checkpoint-index build an
// un-indexed entry gets (per residency): singleflight by construction
// — the kicked flag flips under the cache lock — and ref-held so an
// eviction mid-build cannot close the File under the builder.
func (c *handleCache) maybeBuildIndex(e *cacheEntry) {
	if c.opts.IndexSpacing < 0 {
		return
	}
	c.mu.Lock()
	if e.buildKicked || e.evicted || c.closed {
		c.mu.Unlock()
		return
	}
	e.buildKicked = true
	e.refs++
	c.mu.Unlock()

	met := c.opts.Metrics
	met.IndexBuilds.Add(1)
	go func() {
		t0 := time.Now()
		ix, err := e.f.BuildIndex(c.opts.IndexSpacing)
		d := time.Since(t0)
		if err != nil {
			met.IndexBuildErrors.Add(1)
		} else {
			met.IndexBuildsDone.Add(1)
			met.IndexBuildNanos.Add(d.Nanoseconds())
			met.IndexBuildLastNanos.Set(d.Nanoseconds())
			// ~32 KiB of window per checkpoint, now charged to the
			// budget (the marshalled form is deflated, but the attached
			// form is what's resident).
			c.recost(e, int64(ix.Checkpoints())*(32<<10+64))
		}
		c.releaseEntry(e)
	}()
}

// recost re-charges an entry after its index materialised, then
// rebalances the budget.
func (c *handleCache) recost(e *cacheEntry, indexBytes int64) {
	var victims []*cacheEntry
	c.mu.Lock()
	e.indexBytes = indexBytes
	if !e.evicted {
		next := handleCost(e.f, e.indexBytes)
		c.used += next - e.cost
		e.cost = next
		victims = c.evictOverflowLocked(e)
		c.updateGaugesLocked()
	}
	c.mu.Unlock()
	closeVictims(victims)
}

// peek returns the resident File for name without taking a lease —
// for the catalog listing's non-forcing size probe only (the caller
// may only touch lock-free diagnostics like CachedSize, which stay
// safe even if the entry is evicted concurrently).
func (c *handleCache) peek(name string) (*pugz.File, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		return e.f, true
	}
	return nil, false
}

// close evicts everything and refuses further acquires. Entries with
// live leases close on their last Release.
func (c *handleCache) close() {
	var victims []*cacheEntry
	c.mu.Lock()
	c.closed = true
	for name, e := range c.entries {
		delete(c.entries, name)
		e.evicted = true
		if e.refs == 0 {
			victims = append(victims, e)
		}
	}
	c.lru.Init()
	c.used = 0
	c.updateGaugesLocked()
	c.mu.Unlock()
	closeVictims(victims)
}
