// Package serve is the serving layer over pugz.File: a catalog of
// gzip blobs at rest exposed as an HTTP resource with full RFC 7233
// single-range semantics at *decompressed* offsets. A Range request
// against a 40 GiB .gz behaves exactly like one against the inflated
// file — without the file ever existing inflated — because every
// response decodes only the checkpoint-to-offset gap (indexed), the
// scan tail (pooled cursors), or the skip distance (unindexed deep
// seeks) that pugz.File needs for that read.
//
// The subsystem has three layers:
//
//   - Catalog: the immutable blob set (directory scan or manifest).
//   - handleCache: a byte-budgeted, refcount-aware LRU of open
//     pugz.File handles shared across requests, with per-blob
//     singleflight opens and one background checkpoint-index build per
//     resident handle.
//   - Server: the HTTP surface (GET/HEAD /blobs/{name}, the listing,
//     health, and the metrics registry).
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	pugz "repro"
	"repro/internal/serve/metrics"
)

// Options configures a Server.
type Options struct {
	// Catalog is the blob set to serve; required.
	Catalog *Catalog
	// CacheBudgetBytes bounds the handle cache (see CacheOptions).
	CacheBudgetBytes int64
	// File configures every opened pugz.File (threads, batch size,
	// cursor pool).
	File pugz.FileOptions
	// IndexSpacing is the background index build spacing; negative
	// disables builds (see CacheOptions.IndexSpacing).
	IndexSpacing int64
	// CopyBufferBytes sizes the per-request copy buffer (default
	// 1 MiB). Large buffers matter on indexed handles: each ReadAt
	// inflates from the nearest checkpoint, so the copy granularity
	// should amortise that.
	CopyBufferBytes int
}

// Server serves a Catalog over HTTP. Create with New, mount Handler,
// Close on shutdown (after the HTTP server has drained).
type Server struct {
	cat   *Catalog
	cache *handleCache
	met   *metrics.Registry

	bufBytes int
	bufPool  sync.Pool
}

// New builds a Server over the given catalog.
func New(o Options) (*Server, error) {
	if o.Catalog == nil || o.Catalog.Len() == 0 {
		return nil, fmt.Errorf("serve: empty catalog")
	}
	if o.CopyBufferBytes <= 0 {
		o.CopyBufferBytes = 1 << 20
	}
	met := metrics.New()
	s := &Server{
		cat: o.Catalog,
		cache: newHandleCache(CacheOptions{
			BudgetBytes:  o.CacheBudgetBytes,
			File:         o.File,
			IndexSpacing: o.IndexSpacing,
			Metrics:      met,
		}),
		met:      met,
		bufBytes: o.CopyBufferBytes,
	}
	s.bufPool.New = func() any {
		b := make([]byte, s.bufBytes)
		return &b
	}
	return s, nil
}

// Metrics returns the server's registry (also mounted at /metrics).
func (s *Server) Metrics() *metrics.Registry { return s.met }

// Catalog returns the served catalog.
func (s *Server) Catalog() *Catalog { return s.cat }

// Close releases every cached handle. In-flight requests finish
// normally (their handles close on release); call after the HTTP
// server has drained.
func (s *Server) Close() error {
	s.cache.close()
	return nil
}

// Handler returns the HTTP surface:
//
//	GET /healthz          liveness probe
//	GET /metrics          the metrics registry as JSON
//	GET /blobs            the catalog listing as JSON
//	GET|HEAD /blobs/{name}  the blob, at decompressed offsets,
//	                        with RFC 7233 single-range support
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/metrics", s.met)
	mux.HandleFunc("/blobs", s.handleList)
	mux.HandleFunc("/blobs/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/blobs/")
		if name == "" {
			s.handleList(w, r)
			return
		}
		s.handleBlob(w, r, name)
	})
	return mux
}

// blobListing is one /blobs entry. Size is present only when the
// decompressed size is already known (a resident handle measured it or
// carries a whole-file index) — the listing never forces a measuring
// pass.
type blobListing struct {
	Name           string `json:"name"`
	CompressedSize int64  `json:"compressedSize"`
	Size           *int64 `json:"size,omitempty"`
	Sidecar        bool   `json:"sidecar,omitempty"`
	Cached         bool   `json:"cached,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	list := make([]blobListing, 0, s.cat.Len())
	for _, name := range s.cat.Names() {
		b, _ := s.cat.Lookup(name)
		entry := blobListing{
			Name:           name,
			CompressedSize: b.CompressedSize,
			Sidecar:        b.IndexPath != "",
		}
		if f, ok := s.cache.peek(name); ok {
			entry.Cached = true
			if size, known := f.CachedSize(); known {
				entry.Size = &size
			}
		}
		list = append(list, entry)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(list)
}

// handleBlob answers GET/HEAD /blobs/{name}: a 200 with the full
// decompressed body, a 206 for a satisfiable single byte-range, a 416
// (with Content-Range: bytes */size) for a valid-but-unsatisfiable
// one, and a 200 for Range headers the server may ignore (multi-range
// sets, other units, malformed values).
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request, name string) {
	rec := &respRecorder{ResponseWriter: w}
	s.met.InFlight.Add(1)
	defer func() {
		s.met.InFlight.Add(-1)
		s.met.ObserveRequest(rec.status, rec.bytes)
		bs := s.met.Blob(name)
		bs.Requests.Add(1)
		bs.BytesServed.Add(rec.bytes)
	}()

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		rec.Header().Set("Allow", "GET, HEAD")
		http.Error(rec, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	blob, ok := s.cat.Lookup(name)
	if !ok {
		http.Error(rec, "no such blob", http.StatusNotFound)
		return
	}
	h, err := s.cache.acquire(blob)
	if err != nil {
		if os.IsNotExist(err) {
			http.Error(rec, "blob vanished from disk", http.StatusNotFound)
		} else {
			http.Error(rec, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	defer h.Release()
	f := h.File()

	size, err := f.Size()
	if err != nil {
		http.Error(rec, fmt.Sprintf("sizing %s: %v", name, err), http.StatusInternalServerError)
		return
	}

	status := http.StatusOK
	span := byteRange{start: 0, length: size}
	if rng, ok, rerr := parseRange(r.Header.Get("Range"), size); rerr != nil {
		rec.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		http.Error(rec, "requested range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
		return
	} else if ok {
		status = http.StatusPartialContent
		span = rng
		rec.Header().Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/%d", span.start, span.start+span.length-1, size))
	}

	hd := rec.Header()
	hd.Set("Accept-Ranges", "bytes")
	hd.Set("Content-Type", "application/octet-stream")
	hd.Set("Content-Length", strconv.FormatInt(span.length, 10))
	hd.Set("Last-Modified", blob.ModTime.UTC().Format(http.TimeFormat))
	rec.WriteHeader(status)
	if r.Method == http.MethodHead || span.length == 0 {
		return
	}

	buf := s.bufPool.Get().(*[]byte)
	_, cerr := io.CopyBuffer(rec, io.NewSectionReader(f, span.start, span.length), *buf)
	s.bufPool.Put(buf)
	if cerr != nil {
		// The status line is gone; all we can do is cut the body short
		// (the client sees a truncated Content-Length) and count it.
		s.met.CopyErrors.Add(1)
	}
}

// respRecorder captures the status and body bytes of a response for
// the metrics layer.
type respRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *respRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *respRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}
