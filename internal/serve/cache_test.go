package serve

import (
	"io"
	"testing"

	pugz "repro"
	"repro/internal/serve/metrics"
)

func cacheFixture(t *testing.T) (*Catalog, map[string][]byte) {
	fx := newFixture(t, 1500)
	return fx.cat, fx.oracle
}

func newTestCache(t *testing.T, budget int64) (*handleCache, *metrics.Registry) {
	t.Helper()
	met := metrics.New()
	c := newHandleCache(CacheOptions{
		BudgetBytes:  budget,
		File:         pugz.FileOptions{Threads: 2, MinChunk: 16 << 10},
		IndexSpacing: -1, // unit tests drive eviction deterministically
		Metrics:      met,
	})
	t.Cleanup(c.close)
	return c, met
}

func mustAcquire(t *testing.T, c *handleCache, cat *Catalog, name string) *cacheHandle {
	t.Helper()
	b, ok := cat.Lookup(name)
	if !ok {
		t.Fatalf("no blob %q", name)
	}
	h, err := c.acquire(b)
	if err != nil {
		t.Fatalf("acquire %s: %v", name, err)
	}
	return h
}

// TestCacheBudgetEviction: a budget that fits one handle evicts the
// LRU entry as soon as a second blob is opened and claimed.
func TestCacheBudgetEviction(t *testing.T) {
	cat, _ := cacheFixture(t)
	c, met := newTestCache(t, handleBaseCost+handleBaseCost/4)

	hA := mustAcquire(t, c, cat, "dense.gz")
	hA.Release()
	if got := met.CacheHandles.Value(); got != 1 {
		t.Fatalf("resident handles = %d, want 1", got)
	}

	hB := mustAcquire(t, c, cat, "sub/stored.gz")
	hB.Release()
	if got := met.CacheEvictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1 (A evicted by B)", got)
	}
	if _, resident := c.peek("dense.gz"); resident {
		t.Fatal("dense.gz still resident after eviction")
	}
	if _, resident := c.peek("sub/stored.gz"); !resident {
		t.Fatal("sub/stored.gz not resident")
	}

	// Re-acquiring A is a fresh miss that evicts B in turn.
	mustAcquire(t, c, cat, "dense.gz").Release()
	if got := met.CacheMisses.Value(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
}

// TestCacheEvictionMidFlight: an entry evicted while a request still
// holds its handle stays fully readable until the last Release, and
// only then closes its underlying file.
func TestCacheEvictionMidFlight(t *testing.T) {
	cat, oracle := cacheFixture(t)
	c, met := newTestCache(t, handleBaseCost+handleBaseCost/4)

	hA := mustAcquire(t, c, cat, "dense.gz")
	fA := hA.File()

	// Open B: A is evicted while hA is live.
	mustAcquire(t, c, cat, "sub/stored.gz").Release()
	if got := met.CacheEvictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// The evicted handle still serves oracle bytes.
	want := oracle["dense.gz"]
	p := make([]byte, 512)
	off := int64(len(want)) / 3
	if _, err := fA.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatalf("read on evicted-but-held handle: %v", err)
	}
	if string(p) != string(want[off:off+512]) {
		t.Fatal("evicted-but-held handle returned wrong bytes")
	}

	// The last release closes the underlying source: further reads at
	// uncached offsets must fail rather than silently serve.
	hA.Release()
	if _, err := fA.ReadAt(p, off+1<<20); err == nil || err == io.EOF {
		// Offset chosen past anything a pooled cursor could already
		// hold; a closed os.File must surface an error.
		t.Fatalf("read after final release: err=%v, want a closed-file error", err)
	}
}

// TestCacheClosed: acquire after close fails, and closing with live
// handles defers their close to the final release.
func TestCacheClosed(t *testing.T) {
	cat, _ := cacheFixture(t)
	c, _ := newTestCache(t, 0)

	h := mustAcquire(t, c, cat, "dense.gz")
	c.close()
	b, _ := cat.Lookup("dense.gz")
	if _, err := c.acquire(b); err != errCacheClosed {
		t.Fatalf("acquire after close: err=%v, want errCacheClosed", err)
	}
	// The held handle still works, then closes on release.
	p := make([]byte, 64)
	if _, err := h.File().ReadAt(p, 0); err != nil && err != io.EOF {
		t.Fatalf("read on handle across close: %v", err)
	}
	h.Release()
}

// TestCacheSidecarSkipsBuild: a blob with a sidecar index never kicks
// a background build — the index is already attached at open.
func TestCacheSidecarSkipsBuild(t *testing.T) {
	cat, oracle := cacheFixture(t)
	met := metrics.New()
	c := newHandleCache(CacheOptions{
		File:         pugz.FileOptions{Threads: 2, MinChunk: 16 << 10},
		IndexSpacing: 128 << 10, // builds enabled
		Metrics:      met,
	})
	t.Cleanup(c.close)

	h := mustAcquire(t, c, cat, "a.gz") // has a.gz.gzx on disk
	defer h.Release()
	if got := met.IndexBuilds.Value(); got != 0 {
		t.Fatalf("index_builds = %d for sidecar blob, want 0", got)
	}
	// And the sidecar actually serves: size is known without any
	// measuring pass having run.
	if size, ok := h.File().CachedSize(); !ok || size != int64(len(oracle["a.gz"])) {
		t.Fatalf("CachedSize = %d,%v; want %d from sidecar", size, ok, len(oracle["a.gz"]))
	}
}
