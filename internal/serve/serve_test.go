package serve

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	pugz "repro"
	"repro/internal/fastq"
)

// fixture is a blob directory on disk plus the stdlib-gzip oracle of
// every blob's decompressed content — the differential reference the
// HTTP layer is tested against.
type fixture struct {
	dir    string
	cat    *Catalog
	oracle map[string][]byte
}

func mustCompress(t testing.TB, data []byte, level int) []byte {
	t.Helper()
	gz, err := pugz.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	return gz
}

// newFixture lays out the serving corpus: levels 0/6/9, a nested path,
// a multi-member blob, an empty member, and one sidecar index.
func newFixture(t testing.TB, reads int) *fixture {
	t.Helper()
	dir := t.TempDir()
	fx := &fixture{dir: dir, oracle: map[string][]byte{}}

	write := func(name string, gz []byte) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gz, 0o644); err != nil {
			t.Fatal(err)
		}
		// The oracle is stdlib gzip, multi-member included.
		zr, err := gzip.NewReader(bytes.NewReader(gz))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		fx.oracle[name] = plain
	}

	a := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 11})
	b := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 12})
	c := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 13})

	gzA := mustCompress(t, a, 6)
	write("a.gz", gzA)
	write("sub/stored.gz", mustCompress(t, b, 0))
	write("dense.gz", mustCompress(t, c, 9))
	write("multi.gz", append(append([]byte{}, mustCompress(t, a, 6)...), mustCompress(t, b, 6)...))
	write("empty.gz", mustCompress(t, nil, 6))

	// a.gz gets a sidecar checkpoint index, exercising the load path.
	ix, err := pugz.BuildIndex(gzA, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.gz"+indexSuffix), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	cat, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fx.cat = cat
	return fx
}

func newTestServer(t testing.TB, fx *fixture, o Options) (*Server, *httptest.Server) {
	t.Helper()
	o.Catalog = fx.cat
	if o.File.Threads == 0 {
		o.File = pugz.FileOptions{Threads: 2, MinChunk: 16 << 10}
	}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		waitForIndexBuilds(t, s)
		s.Close()
	})
	return s, ts
}

// waitForIndexBuilds blocks until every kicked background index build
// has settled, so test teardown never races a builder goroutine.
func waitForIndexBuilds(t testing.TB, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := s.Metrics().Snapshot()
		if m["index_builds"] == m["index_builds_done"]+m["index_build_errors"] {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("index builds never settled: %d kicked, %d done, %d failed",
				m["index_builds"], m["index_builds_done"], m["index_build_errors"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func get(t testing.TB, client *http.Client, url, rangeHdr string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeRangeDifferential is the subsystem's acceptance property:
// every Range response body over every blob shape (levels 0/6/9,
// multi-member, nested path, empty member) is byte-identical to the
// same slice of the stdlib-gzip-decompressed oracle, with the RFC 7233
// status/header mapping.
func TestServeRangeDifferential(t *testing.T) {
	fx := newFixture(t, 3000)
	_, ts := newTestServer(t, fx, Options{})
	client := ts.Client()

	for name, want := range fx.oracle {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			url := ts.URL + "/blobs/" + name
			size := int64(len(want))

			// Full GET.
			resp, body := get(t, client, url, "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET: status %d", resp.StatusCode)
			}
			if resp.Header.Get("Accept-Ranges") != "bytes" {
				t.Fatal("missing Accept-Ranges: bytes")
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("full body mismatch: %d vs %d bytes", len(body), len(want))
			}

			// HEAD: size without a body.
			hresp, err := client.Head(url)
			if err != nil {
				t.Fatal(err)
			}
			hresp.Body.Close()
			if hresp.StatusCode != http.StatusOK || hresp.ContentLength != size {
				t.Fatalf("HEAD: status %d length %d, want 200 %d", hresp.StatusCode, hresp.ContentLength, size)
			}

			if size == 0 {
				// Every range against an empty blob is unsatisfiable.
				resp, _ := get(t, client, url, "bytes=0-")
				if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
					t.Fatalf("range on empty blob: status %d, want 416", resp.StatusCode)
				}
				if cr := resp.Header.Get("Content-Range"); cr != "bytes */0" {
					t.Fatalf("Content-Range = %q, want bytes */0", cr)
				}
				return
			}

			// Satisfiable single ranges, incl. both edges, a suffix
			// larger than the blob, and cross-everything spans.
			type spec struct {
				hdr        string
				start, end int64 // inclusive, oracle coordinates
			}
			mid := size / 2
			specs := []spec{
				{"bytes=0-0", 0, 0},
				{"bytes=0-99", 0, min64(99, size-1)},
				{fmt.Sprintf("bytes=%d-%d", mid, min64(mid+4095, size-1)), mid, min64(mid+4095, size-1)},
				{fmt.Sprintf("bytes=%d-", size-100), size - 100, size - 1},
				{fmt.Sprintf("bytes=%d-%d", size-1, size-1), size - 1, size - 1},
				{"bytes=-100", size - 100, size - 1},
				{fmt.Sprintf("bytes=-%d", size+10), 0, size - 1}, // suffix > size: whole blob
				{fmt.Sprintf("bytes=%d-%d", mid, size+50), mid, size - 1},
			}
			for _, sp := range specs {
				resp, body := get(t, client, url, sp.hdr)
				if resp.StatusCode != http.StatusPartialContent {
					t.Fatalf("%q: status %d, want 206", sp.hdr, resp.StatusCode)
				}
				wantCR := fmt.Sprintf("bytes %d-%d/%d", sp.start, sp.end, size)
				if cr := resp.Header.Get("Content-Range"); cr != wantCR {
					t.Fatalf("%q: Content-Range = %q, want %q", sp.hdr, cr, wantCR)
				}
				if !bytes.Equal(body, want[sp.start:sp.end+1]) {
					t.Fatalf("%q: body mismatch (%d bytes)", sp.hdr, len(body))
				}
			}

			// Unsatisfiable: starts exactly at EOF and beyond.
			for _, hdr := range []string{
				fmt.Sprintf("bytes=%d-", size),
				fmt.Sprintf("bytes=%d-%d", size+5, size+10),
				"bytes=-0",
			} {
				resp, _ := get(t, client, url, hdr)
				if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
					t.Fatalf("%q: status %d, want 416", hdr, resp.StatusCode)
				}
				if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", size) {
					t.Fatalf("%q: Content-Range = %q", hdr, cr)
				}
			}

			// Ignorable Range headers degrade to the full body.
			for _, hdr := range []string{"bytes=0-1,5-6", "items=0-5", "bytes=9-5"} {
				resp, body := get(t, client, url, hdr)
				if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
					t.Fatalf("%q: status %d, body %d bytes; want full 200", hdr, resp.StatusCode, len(body))
				}
			}
		})
	}

	// Unknown blob and path traversal shapes: 404, never a file read.
	for _, name := range []string{"nope.gz", "../a.gz", "sub/../../a.gz"} {
		resp, _ := get(t, client, ts.URL+"/blobs/"+name, "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %q: status %d, want 404", name, resp.StatusCode)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestServeSingleflightIndexBuild: N concurrent cold requests against
// one blob trigger exactly one handle open and exactly one background
// index build, while every request is served correctly in the
// meantime through the unindexed deep-seek path.
func TestServeSingleflightIndexBuild(t *testing.T) {
	fx := newFixture(t, 3000)
	s, ts := newTestServer(t, fx, Options{IndexSpacing: 128 << 10})
	client := ts.Client()

	const name = "dense.gz" // no sidecar: the build must be kicked
	want := fx.oracle[name]
	size := int64(len(want))

	const N = 12
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Deep offsets: cold requests exercise unindexed deep seeks.
			start := size/2 + int64(i)*257
			hdr := fmt.Sprintf("bytes=%d-%d", start, start+1023)
			resp, body := get(t, client, ts.URL+"/blobs/"+name, hdr)
			if resp.StatusCode != http.StatusPartialContent {
				errs <- fmt.Errorf("worker %d: status %d", i, resp.StatusCode)
				return
			}
			if !bytes.Equal(body, want[start:start+1024]) {
				errs <- fmt.Errorf("worker %d: body mismatch", i)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics().Snapshot()
	if m["cache_misses"] != 1 {
		t.Errorf("cache_misses = %d, want 1 (singleflight open)", m["cache_misses"])
	}
	if m["index_builds"] != 1 {
		t.Errorf("index_builds = %d, want exactly 1", m["index_builds"])
	}
	waitForIndexBuilds(t, s)
	if m := s.Metrics().Snapshot(); m["index_builds_done"] != 1 {
		t.Errorf("index_builds_done = %d, want 1", m["index_builds_done"])
	}

	// The built index now serves: a fresh deep read and the metrics
	// endpoint both live.
	resp, body := get(t, client, ts.URL+"/blobs/"+name, fmt.Sprintf("bytes=%d-%d", size-2048, size-1))
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, want[size-2048:]) {
		t.Fatalf("post-build read: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

// TestServeConcurrentEviction is the -race stress: mixed-blob ranged
// traffic against a budget that fits roughly one handle, so the LRU
// keeps evicting entries out from under in-flight requests — bodies
// must stay oracle-identical throughout and the metrics must add up.
func TestServeConcurrentEviction(t *testing.T) {
	fx := newFixture(t, 2000)
	// handleBaseCost is 1 MiB: a ~1.25 MiB budget holds one handle.
	s, ts := newTestServer(t, fx, Options{
		CacheBudgetBytes: handleBaseCost + handleBaseCost/4,
		IndexSpacing:     256 << 10,
	})
	client := ts.Client()

	names := []string{"a.gz", "sub/stored.gz", "dense.gz", "multi.gz"}
	const workers = 6
	iters := 25
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			for i := 0; i < iters; i++ {
				name := names[rng.Intn(len(names))]
				want := fx.oracle[name]
				size := int64(len(want))
				n := int64(1 + rng.Intn(4096))
				if n > size {
					n = size
				}
				start := rng.Int63n(size - n + 1)
				hdr := fmt.Sprintf("bytes=%d-%d", start, start+n-1)
				resp, body := get(t, client, ts.URL+"/blobs/"+name, hdr)
				if resp.StatusCode != http.StatusPartialContent {
					errs <- fmt.Errorf("worker %d %s %q: status %d", w, name, hdr, resp.StatusCode)
					return
				}
				if !bytes.Equal(body, want[start:start+n]) {
					errs <- fmt.Errorf("worker %d %s %q: body mismatch", w, name, hdr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics().Snapshot()
	if m["cache_evictions"] == 0 {
		t.Error("no evictions under a one-handle budget — stress did not stress")
	}
	if m["in_flight"] != 0 {
		t.Errorf("in_flight = %d after drain", m["in_flight"])
	}
	total := int64(workers * iters)
	if m["status_206"] != total {
		t.Errorf("status_206 = %d, want %d", m["status_206"], total)
	}
	if m["bytes_served"] == 0 || m["bytes_inflated"] < m["bytes_served"] {
		// Every served byte was decoded at least once; deep seeks and
		// evicted-and-reopened handles push inflation well above it.
		t.Errorf("bytes_served=%d bytes_inflated=%d", m["bytes_served"], m["bytes_inflated"])
	}
}

// TestServeListingAndMetricsEndpoints covers the non-blob surfaces:
// the catalog listing (with sidecar/cached annotations) and the
// /metrics JSON document.
func TestServeListingAndMetricsEndpoints(t *testing.T) {
	fx := newFixture(t, 2000)
	_, ts := newTestServer(t, fx, Options{})
	client := ts.Client()

	// Warm one blob so the listing shows a cached size.
	if resp, _ := get(t, client, ts.URL+"/blobs/a.gz", "bytes=0-99"); resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("warm read: status %d", resp.StatusCode)
	}

	resp, body := get(t, client, ts.URL+"/blobs", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/blobs: status %d", resp.StatusCode)
	}
	listing := string(body)
	for _, wantSub := range []string{`"a.gz"`, `"sub/stored.gz"`, `"sidecar":true`, `"cached":true`} {
		if !bytes.Contains(body, []byte(wantSub)) {
			t.Errorf("/blobs listing missing %s in %s", wantSub, listing)
		}
	}

	resp, body = get(t, client, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("/metrics: status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, key := range []string{"requests_total", "qps_10s", "cache_hits", "index_builds", "blob.a.gz.requests"} {
		if !bytes.Contains(body, []byte(`"`+key+`"`)) {
			t.Errorf("/metrics missing key %q in %s", key, body)
		}
	}

	resp, _ = get(t, client, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}
}
