package serve

import (
	"errors"
	"strconv"
	"strings"
)

// RFC 7233 single-range interpretation. The server advertises
// Accept-Ranges: bytes and answers one byte-range per request;
// everything it may legitimately ignore (other units, multi-range
// sets, malformed headers) degrades to a full 200 response, which the
// RFC explicitly allows ("an origin server MAY ignore the Range header
// field"). Only a syntactically valid, unsatisfiable bytes range earns
// a 416.

// byteRange is a resolved, satisfiable range: length > 0 bytes of the
// representation starting at start.
type byteRange struct {
	start  int64
	length int64
}

// errUnsatisfiable marks a valid bytes range that selects nothing
// inside the representation: the 416 + Content-Range: bytes */size
// case.
var errUnsatisfiable = errors.New("serve: requested range not satisfiable")

// parseRange interprets a Range header value against a representation
// of the given size.
//
//	r, ok, err := parseRange(h, size)
//	err == errUnsatisfiable  -> respond 416
//	ok                       -> respond 206 with r
//	neither                  -> ignore the header, respond 200
func parseRange(h string, size int64) (byteRange, bool, error) {
	none := byteRange{}
	h = strings.TrimSpace(h)
	if h == "" {
		return none, false, nil
	}
	const unit = "bytes="
	if len(h) < len(unit) || !strings.EqualFold(h[:len(unit)], unit) {
		return none, false, nil // some other range unit: ignore
	}
	spec := strings.TrimSpace(h[len(unit):])
	if spec == "" || strings.Contains(spec, ",") {
		return none, false, nil // empty or multi-range set: ignore
	}
	dash := strings.Index(spec, "-")
	if dash < 0 {
		return none, false, nil
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])

	if first == "" {
		// Suffix range "-N": the final N bytes. N == 0 selects nothing
		// (unsatisfiable); N beyond the size clamps to the whole
		// representation.
		n, err := parseRangeInt(last)
		if err != nil {
			return none, false, nil
		}
		if n == 0 || size == 0 {
			return none, false, errUnsatisfiable
		}
		if n > size {
			n = size
		}
		return byteRange{start: size - n, length: n}, true, nil
	}

	start, err := parseRangeInt(first)
	if err != nil {
		return none, false, nil
	}
	if start >= size {
		// Includes the start-exactly-at-EOF read and anything beyond —
		// and every range against an empty representation.
		return none, false, errUnsatisfiable
	}
	if last == "" {
		// Open range "A-": from A to the end.
		return byteRange{start: start, length: size - start}, true, nil
	}
	end, err := parseRangeInt(last)
	if err != nil || end < start {
		return none, false, nil
	}
	if end > size-1 {
		end = size - 1
	}
	return byteRange{start: start, length: end - start + 1}, true, nil
}

// parseRangeInt parses a non-negative byte position/count. Leading
// zeros are fine; signs, blanks and overflow are not.
func parseRangeInt(s string) (int64, error) {
	if s == "" || s[0] == '-' || s[0] == '+' {
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseInt(s, 10, 64)
}
