package serve

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Blob is one entry of the served catalog: a gzip file at rest, plus
// the sidecar checkpoint index next to it if one exists. The name is
// the public identifier (the {name} of GET /blobs/{name}); the paths
// are private to the server.
type Blob struct {
	Name           string
	Path           string
	IndexPath      string // "" when no sidecar index exists
	CompressedSize int64
	ModTime        time.Time
}

// Catalog is the immutable set of blobs a server mounts at startup:
// a directory scan or a manifest file. Lookup is a pure map access —
// request names never touch the filesystem, so a hostile name cannot
// traverse outside the mounted set.
type Catalog struct {
	byName map[string]Blob
	names  []string // sorted
}

// indexSuffix is the sidecar naming convention shared with
// `pugz -mkindex`: the checkpoint index of x.gz lives at x.gz.gzx.
const indexSuffix = ".gzx"

// ScanDir builds a catalog of every *.gz file under dir (recursively).
// Blob names are slash-separated paths relative to dir; a sibling
// <file>.gzx is attached as the blob's sidecar index.
func ScanDir(dir string) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]Blob)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".gz") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		return c.add(filepath.ToSlash(rel), path)
	})
	if err != nil {
		return nil, err
	}
	if len(c.byName) == 0 {
		return nil, fmt.Errorf("serve: no .gz blobs under %s", dir)
	}
	c.finish()
	return c, nil
}

// LoadManifest builds a catalog from a manifest file: one blob per
// line, either "name path" (whitespace-separated) or a bare path whose
// base name becomes the blob name. Blank lines and #-comments are
// skipped. Relative paths resolve against the manifest's directory.
func LoadManifest(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Dir(path)
	c := &Catalog{byName: make(map[string]Blob)}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var name, blobPath string
		switch len(fields) {
		case 1:
			blobPath = fields[0]
			name = filepath.Base(blobPath)
		case 2:
			name, blobPath = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("serve: %s:%d: want NAME PATH or PATH, got %d fields", path, line, len(fields))
		}
		if !filepath.IsAbs(blobPath) {
			blobPath = filepath.Join(base, blobPath)
		}
		if err := c.add(name, blobPath); err != nil {
			return nil, fmt.Errorf("serve: %s:%d: %w", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(c.byName) == 0 {
		return nil, fmt.Errorf("serve: manifest %s lists no blobs", path)
	}
	c.finish()
	return c, nil
}

// add stats path and files the blob under name.
func (c *Catalog) add(name, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !fi.Mode().IsRegular() {
		return fmt.Errorf("%s: not a regular file", path)
	}
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("duplicate blob name %q", name)
	}
	b := Blob{Name: name, Path: path, CompressedSize: fi.Size(), ModTime: fi.ModTime()}
	if ifi, err := os.Stat(path + indexSuffix); err == nil && ifi.Mode().IsRegular() {
		b.IndexPath = path + indexSuffix
	}
	c.byName[name] = b
	return nil
}

func (c *Catalog) finish() {
	c.names = make([]string, 0, len(c.byName))
	for name := range c.byName {
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
}

// Lookup returns the blob registered under name.
func (c *Catalog) Lookup(name string) (Blob, bool) {
	b, ok := c.byName[name]
	return b, ok
}

// Names returns the sorted blob names (shared slice; do not mutate).
func (c *Catalog) Names() []string { return c.names }

// Len returns the number of blobs.
func (c *Catalog) Len() int { return len(c.byName) }
