package serve

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn and all receive its result. It
// exists so N concurrent cold requests for the same blob trigger
// exactly one handle open (and, transitively, one background index
// build), without pulling in golang.org/x/sync.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall // guarded by mu
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per concurrent set of callers sharing key, returning
// fn's value and error to every caller. The key is forgotten once the
// call completes, so a later Do runs fn again (the cache in front of
// this decides whether that happens).
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}
