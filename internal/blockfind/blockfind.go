// Package blockfind locates DEFLATE block start positions inside a
// compressed stream without any index, implementing Section VI-A and
// Appendix X-A of the paper.
//
// DEFLATE blocks are neither indexed nor byte-aligned, so the only way
// to find one is to attempt decompression at every bit offset and rely
// on stringent checks to fail fast on false candidates:
//
//   - BFINAL must be 0 (we never seek to the very last block),
//   - BTYPE 3 is invalid,
//   - a dynamic Huffman description must be self-consistent,
//   - decoded literals must be valid ASCII text bytes,
//   - distance symbols 30/31 are invalid,
//   - the decompressed block must be between 1 KiB and 4 MiB.
//
// A candidate that decodes one whole block is then confirmed by
// decoding several more blocks; failure backtracks to the bit after
// the candidate, exactly as the paper describes.
package blockfind

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/flate"
)

// DefaultConfirmations is how many additional blocks must decode
// cleanly after a candidate before it is accepted (the paper uses 5).
const DefaultConfirmations = 5

// ErrNotFound is returned when no block start exists in the searched
// range.
var ErrNotFound = errors.New("blockfind: no block start found")

// discard is a flate.Visitor that ignores all tokens: the scanner only
// cares whether decoding succeeds.
type discard struct{}

func (discard) BlockStart(flate.BlockEvent) error { return nil }
func (discard) Literal(byte) error                { return nil }
func (discard) Match(int, int) error              { return nil }
func (discard) BlockEnd(int64) error              { return nil }

// Finder scans for block starts. It owns reusable decoder scratch and
// is not safe for concurrent use; create one per goroutine.
type Finder struct {
	candidate *flate.Decoder
	confirm   *flate.Decoder
	reader    *bitio.Reader
	// Confirmations is the number of extra blocks that must decode
	// after the candidate (default DefaultConfirmations).
	Confirmations int
	// Stats accumulate across calls for the E8 experiment.
	Stats Stats
}

// Stats counts scanner work.
type Stats struct {
	BitsTried    int64 // candidate bit offsets attempted
	Rejects      int64 // candidates that failed to decode one block
	ConfirmFails int64 // candidate decoded but confirmation failed
}

// New returns a Finder using the default stringent text validation.
func New() *Finder {
	return NewWithOptions(flate.Options{Validate: true})
}

// NewWithOptions overrides validation options (Validate is forced on).
func NewWithOptions(opts flate.Options) *Finder {
	opts.Validate = true
	confirmOpts := opts
	confirmOpts.AllowFinal = true
	return &Finder{
		candidate:     flate.NewDecoder(opts),
		confirm:       flate.NewDecoder(confirmOpts),
		Confirmations: DefaultConfirmations,
	}
}

// Next returns the bit offset of the first confirmed DEFLATE block
// start at or after fromBit in data. The search ends at the end of
// data; ErrNotFound is returned if no block start is confirmed.
func (f *Finder) Next(data []byte, fromBit int64) (int64, error) {
	return f.NextBefore(data, fromBit, int64(len(data))*8)
}

// NextBefore is Next bounded to candidate offsets < limitBit.
func (f *Finder) NextBefore(data []byte, fromBit, limitBit int64) (int64, error) {
	if fromBit < 0 {
		return 0, fmt.Errorf("blockfind: negative start bit %d", fromBit)
	}
	maxBit := int64(len(data)) * 8
	if limitBit > maxBit {
		limitBit = maxBit
	}
	// Rebind the scratch reader when the caller switches buffers.
	if f.reader == nil || len(f.reader.Data()) != len(data) ||
		(len(data) > 0 && &f.reader.Data()[0] != &data[0]) {
		f.reader = bitio.NewReader(data)
	}
	var sink discard
	for bit := fromBit; bit < limitBit; bit++ {
		f.Stats.BitsTried++
		if err := f.reader.Reset(bit); err != nil {
			return 0, err
		}
		if _, err := f.candidate.DecodeBlock(f.reader, sink); err != nil {
			f.Stats.Rejects++
			continue
		}
		// Candidate decoded: confirm with several more blocks.
		if f.confirmFrom(data) {
			return bit, nil
		}
		f.Stats.ConfirmFails++
	}
	return 0, ErrNotFound
}

// confirmFrom decodes up to f.Confirmations more blocks at the
// reader's current position. Reaching the stream's final block during
// confirmation counts as success: we are synced at the end.
//
// Running out of data WITHOUT having seen a final block does not: a
// real DEFLATE stream always ends in a BFINAL block, so "blocks
// consumed exactly to the end of data, none final" means either the
// buffer is a window cut mid-stream (the caller will grow it and
// retry) or — the dangerous case — the candidate sits inside the
// byte-alignment padding of a final *stored* block, where the shifted
// header reads BFINAL=0 and the decode silently drops the final flag.
// Confirming such a candidate used to send the engine decoding past
// the end of the stream on stored-heavy (level-0) inputs.
func (f *Finder) confirmFrom(data []byte) bool {
	var sink discard
	for i := 0; i < f.Confirmations; i++ {
		final, err := f.confirm.DecodeBlock(f.reader, sink)
		if err != nil {
			return false
		}
		if final {
			return true
		}
		if f.reader.Len() <= 0 {
			return false // end of data, no final block: not synced
		}
	}
	return true
}
