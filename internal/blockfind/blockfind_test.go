package blockfind

import (
	"errors"
	"testing"

	"repro/internal/deflate"
	"repro/internal/fastq"
	"repro/internal/flate"
)

// corpus builds a compressed FASTQ payload plus its true block starts.
func corpus(t *testing.T, level int, reads int) (payload []byte, starts []int64) {
	t.Helper()
	data := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 11})
	payload, err := deflate.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		starts = append(starts, s.Event.StartBit)
	}
	return payload, starts
}

func TestFindsTrueBlockStarts(t *testing.T) {
	for _, level := range []int{1, 6, 9} {
		payload, starts := corpus(t, level, 4000)
		if len(starts) < 4 {
			t.Fatalf("level %d: want >= 4 blocks, got %d", level, len(starts))
		}
		f := New()
		// From a probe point strictly inside block k, the finder must
		// return the start of block k+1 (it can never return a start
		// before the probe).
		for k := 0; k < len(starts)-2; k += 2 {
			probe := starts[k] + 40 // inside block k, past its header
			got, err := f.Next(payload, probe)
			if err != nil {
				t.Fatalf("level %d block %d: %v", level, k, err)
			}
			want := starts[k+1]
			if got != want {
				t.Fatalf("level %d: probe %d: found bit %d, want %d", level, probe, got, want)
			}
		}
	}
}

func TestFindFromExactBoundary(t *testing.T) {
	payload, starts := corpus(t, 6, 3000)
	f := New()
	// Probing exactly at a block start (of a non-final block) returns
	// that start itself.
	got, err := f.Next(payload, starts[1])
	if err != nil {
		t.Fatal(err)
	}
	if got != starts[1] {
		t.Fatalf("got %d, want %d", got, starts[1])
	}
}

func TestNotFoundInGarbage(t *testing.T) {
	// Uniform random bytes ought to contain no confirmed block start
	// that ALSO yields >=1KiB of pure ASCII output; with 64 KiB of
	// garbage the stringent checks should reject everything.
	garbage := make([]byte, 64<<10)
	seed := uint32(12345)
	for i := range garbage {
		seed = seed*1664525 + 1013904223
		garbage[i] = byte(seed >> 24)
	}
	f := New()
	if bit, err := f.Next(garbage, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("found spurious block at bit %d (err=%v)", bit, err)
	}
	if f.Stats.BitsTried != int64(len(garbage))*8 {
		t.Fatalf("tried %d bits, want %d", f.Stats.BitsTried, len(garbage)*8)
	}
}

func TestNextBeforeHonoursLimit(t *testing.T) {
	payload, starts := corpus(t, 6, 3000)
	f := New()
	// Limit below the next true start: nothing to find.
	if _, err := f.NextBefore(payload, starts[0]+40, starts[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestConfirmationNearEOF(t *testing.T) {
	// Probing inside the third-to-last block: the candidate is the
	// second-to-last block and confirmation immediately hits the final
	// block, which must count as success (AllowFinal path).
	payload, starts := corpus(t, 6, 3000)
	if len(starts) < 4 {
		t.Skip("too few blocks")
	}
	probe := starts[len(starts)-3] + 40
	f := New()
	got, err := f.Next(payload, probe)
	if err != nil {
		t.Fatal(err)
	}
	if got != starts[len(starts)-2] {
		t.Fatalf("got %d, want %d (second-to-last block start)", got, starts[len(starts)-2])
	}
}

func TestFinalBlockNeverFound(t *testing.T) {
	// "The first bit of the block needs to be 0 ... we will never seek
	// to the very last block" (Appendix X-A): probing inside the
	// second-to-last block leaves only the final block ahead, so the
	// search must come up empty.
	payload, starts := corpus(t, 6, 3000)
	if len(starts) < 3 {
		t.Skip("too few blocks")
	}
	probe := starts[len(starts)-2] + 40
	f := New()
	if bit, err := f.Next(payload, probe); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got bit %d err %v", bit, err)
	}
}
