package huffman

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

// rfcExample is the canonical example from RFC 1951 section 3.2.2:
// alphabet ABCDEFGH with lengths (3,3,3,3,3,2,4,4).
func rfcExample() []uint8 { return []uint8{3, 3, 3, 3, 3, 2, 4, 4} }

func TestCanonicalCodesRFCExample(t *testing.T) {
	codes, err := CanonicalCodes(rfcExample())
	if err != nil {
		t.Fatal(err)
	}
	// RFC codes (MSB-first): A=010 B=011 C=100 D=101 E=110 F=00 G=1110 H=1111.
	want := []struct {
		code uint32
		n    uint
	}{
		{0b010, 3}, {0b011, 3}, {0b100, 3}, {0b101, 3},
		{0b110, 3}, {0b00, 2}, {0b1110, 4}, {0b1111, 4},
	}
	for sym, w := range want {
		got := codes[sym]
		if uint(got.Len) != w.n {
			t.Fatalf("sym %d: len %d want %d", sym, got.Len, w.n)
		}
		if got.Bits != reverseBits(w.code, w.n) {
			t.Fatalf("sym %d: bits %0*b want (reversed) %0*b", sym, w.n, got.Bits, w.n, reverseBits(w.code, w.n))
		}
	}
}

func TestDecoderRoundTrip(t *testing.T) {
	lengths := rfcExample()
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	w := bitio.NewWriter(1024)
	var syms []int
	for i := 0; i < 5000; i++ {
		s := rng.Intn(len(lengths))
		syms = append(syms, s)
		w.WriteBits(codes[s].Bits, uint(codes[s].Len))
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("sym %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
}

func TestDecoderLongCodes(t *testing.T) {
	// Force codes longer than primaryBits (9): a skewed set with
	// lengths up to 15.
	lengths := make([]uint8, 16)
	// 1,2,3,...,14,15,15 is a valid Kraft-complete chain.
	for i := 0; i < 15; i++ {
		lengths[i] = uint8(i + 1)
	}
	lengths[15] = 15
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatal(err)
	}
	if dec.MaxLen() != 15 {
		t.Fatalf("maxLen %d", dec.MaxLen())
	}
	w := bitio.NewWriter(256)
	var syms []int
	for s := 0; s < 16; s++ {
		for rep := 0; rep < 3; rep++ {
			syms = append(syms, s)
			w.WriteBits(codes[s].Bits, uint(codes[s].Len))
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("sym %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
}

func TestOversubscribedRejected(t *testing.T) {
	if _, err := NewDecoder([]uint8{1, 1, 1}, false); !errors.Is(err, ErrOversubscribed) {
		t.Fatalf("want ErrOversubscribed, got %v", err)
	}
	if _, err := NewDecoder([]uint8{1, 1, 1}, true); !errors.Is(err, ErrOversubscribed) {
		t.Fatal("allowIncomplete must not allow oversubscription")
	}
	if _, err := NewDecoder([]uint8{2, 2, 2, 2, 1}, false); !errors.Is(err, ErrOversubscribed) {
		t.Fatalf("want ErrOversubscribed, got %v", err)
	}
}

func TestIncompleteRules(t *testing.T) {
	// Single 1-bit code: incomplete (half the space unused).
	if _, err := NewDecoder([]uint8{1}, false); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
	d, err := NewDecoder([]uint8{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Complete() {
		t.Fatal("single-code set must be incomplete")
	}
	// Decoding the missing code must error.
	w := bitio.NewWriter(4)
	w.WriteBits(1, 1) // the unassigned half
	if _, err := d.Decode(bitio.NewReader(w.Bytes())); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("want ErrInvalidCode, got %v", err)
	}
	// The assigned code decodes.
	w.Reset()
	w.WriteBits(0, 1)
	got, err := d.Decode(bitio.NewReader(w.Bytes()))
	if err != nil || got != 0 {
		t.Fatalf("got %d err %v", got, err)
	}
}

func TestNoCodes(t *testing.T) {
	if _, err := NewDecoder([]uint8{0, 0, 0}, true); !errors.Is(err, ErrNoCodes) {
		t.Fatalf("want ErrNoCodes, got %v", err)
	}
	if _, err := NewDecoder(nil, true); !errors.Is(err, ErrNoCodes) {
		t.Fatalf("want ErrNoCodes, got %v", err)
	}
}

func TestBadLength(t *testing.T) {
	if _, err := NewDecoder([]uint8{16}, true); !errors.Is(err, ErrBadLength) {
		t.Fatalf("want ErrBadLength, got %v", err)
	}
}

func TestTruncatedInput(t *testing.T) {
	lengths := rfcExample()
	dec, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatal(err)
	}
	// One bit of input cannot hold any code (min length 2).
	w := bitio.NewWriter(1)
	w.WriteBits(0, 1)
	r, err := bitio.NewReaderAt(w.Bytes(), 7) // 1 bit left
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(r); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDecoderReuse(t *testing.T) {
	// Init-ing the same Decoder with different code sets must fully
	// replace the tables (the generation trick).
	var d Decoder
	setA := rfcExample()
	if err := d.Init(setA, false); err != nil {
		t.Fatal(err)
	}
	// A long-code set to allocate sub tables.
	setB := make([]uint8, 16)
	for i := 0; i < 15; i++ {
		setB[i] = uint8(i + 1)
	}
	setB[15] = 15
	if err := d.Init(setB, false); err != nil {
		t.Fatal(err)
	}
	// Back to A; decode must behave exactly like a fresh decoder.
	if err := d.Init(setA, false); err != nil {
		t.Fatal(err)
	}
	codes, _ := CanonicalCodes(setA)
	w := bitio.NewWriter(64)
	for s := range setA {
		w.WriteBits(codes[s].Bits, uint(codes[s].Len))
	}
	r := bitio.NewReader(w.Bytes())
	for s := range setA {
		got, err := d.Decode(r)
		if err != nil || got != s {
			t.Fatalf("sym %d: got %d err %v", s, got, err)
		}
	}
}

func kraftSum(lengths []uint8) float64 {
	s := 0.0
	for _, l := range lengths {
		if l > 0 {
			s += 1 / float64(int(1)<<l)
		}
	}
	return s
}

func TestBuildLengthsBasic(t *testing.T) {
	freqs := []int64{45, 13, 12, 16, 9, 5} // classic CLRS example
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got := kraftSum(lengths); got != 1.0 {
		t.Fatalf("kraft %v", got)
	}
	// Optimal expected cost for this distribution is 2.24 bits/sym;
	// verify total cost matches the optimal 224.
	var cost int64
	for i, f := range freqs {
		cost += f * int64(lengths[i])
	}
	if cost != 224 {
		t.Fatalf("cost %d, want 224", cost)
	}
}

func TestBuildLengthsSingleSymbol(t *testing.T) {
	lengths, err := BuildLengths([]int64{0, 7, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[1] != 1 || lengths[0] != 0 || lengths[2] != 0 {
		t.Fatalf("lengths %v", lengths)
	}
}

func TestBuildLengthsEmpty(t *testing.T) {
	lengths, err := BuildLengths([]int64{0, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l != 0 {
			t.Fatal("expected all-zero lengths")
		}
	}
}

func TestBuildLengthsDepthLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep optimal trees; the limiter
	// must clamp to maxLen while preserving Kraft equality.
	freqs := make([]int64, 20)
	a, b := int64(1), int64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	for _, limit := range []uint8{7, 9, 15} {
		lengths, err := BuildLengths(freqs, limit)
		if err != nil {
			t.Fatal(err)
		}
		for sym, l := range lengths {
			if l > limit {
				t.Fatalf("limit %d: symbol %d got length %d", limit, sym, l)
			}
			if freqs[sym] > 0 && l == 0 {
				t.Fatalf("limit %d: used symbol %d has no code", limit, sym)
			}
		}
		if got := kraftSum(lengths); got != 1.0 {
			t.Fatalf("limit %d: kraft %v", limit, got)
		}
		if _, err := CanonicalCodes(lengths); err != nil {
			t.Fatalf("limit %d: codes: %v", limit, err)
		}
	}
}

// Property: for arbitrary small frequency vectors, BuildLengths yields
// a decodable, Kraft-tight, depth-limited code.
func TestQuickBuildLengths(t *testing.T) {
	f := func(raw []uint16, limitSel bool) bool {
		if len(raw) == 0 || len(raw) > 286 {
			return true
		}
		freqs := make([]int64, len(raw))
		used := 0
		for i, v := range raw {
			freqs[i] = int64(v)
			if v > 0 {
				used++
			}
		}
		limit := uint8(15)
		if limitSel {
			limit = 7
		}
		// With a 7-bit limit at most 128 symbols fit.
		if limit == 7 && used > 128 {
			return true
		}
		lengths, err := BuildLengths(freqs, limit)
		if err != nil {
			return false
		}
		switch used {
		case 0:
			return kraftSum(lengths) == 0
		case 1:
			return kraftSum(lengths) == 0.5
		}
		if kraftSum(lengths) != 1.0 {
			return false
		}
		for i, l := range lengths {
			if l > limit {
				return false
			}
			if (freqs[i] > 0) != (l > 0) {
				return false
			}
		}
		_, err = NewDecoder(lengths, false)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round trip over random code sets.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(60)
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(1000))
		}
		// Guarantee at least two used symbols.
		freqs[0]++
		freqs[n-1]++
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			t.Fatal(err)
		}
		codes, err := CanonicalCodes(lengths)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(lengths, false)
		if err != nil {
			t.Fatal(err)
		}
		w := bitio.NewWriter(1024)
		var syms []int
		for i := 0; i < 200; i++ {
			s := rng.Intn(n)
			if lengths[s] == 0 {
				continue
			}
			syms = append(syms, s)
			w.WriteBits(codes[s].Bits, uint(codes[s].Len))
		}
		r := bitio.NewReader(w.Bytes())
		for i, want := range syms {
			got, err := dec.Decode(r)
			if err != nil {
				t.Fatalf("iter %d sym %d: %v", iter, i, err)
			}
			if got != want {
				t.Fatalf("iter %d sym %d: got %d want %d", iter, i, got, want)
			}
		}
	}
}
