package huffman

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// RFC 1951 length/distance tables, duplicated here so the differential
// tests can interpret fused entries without importing internal/flate
// (which imports this package).
var tLenBase = []uint16{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var tLenExtra = []uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

var tDistBase = []uint32{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var tDistExtra = []uint8{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// randLengths builds a random exactly-complete canonical code-length
// assignment over nsym symbols of an alphabet of size total, by
// repeatedly splitting leaves of an implicit code tree.
func randLengths(rng *rand.Rand, total, nsym, maxLen int) []uint8 {
	depths := []int{1, 1}
	for len(depths) < nsym {
		i := rng.Intn(len(depths))
		if depths[i] >= maxLen {
			continue
		}
		depths[i]++
		depths = append(depths, depths[i])
	}
	lengths := make([]uint8, total)
	perm := rng.Perm(total)
	for i, d := range depths {
		lengths[perm[i]] = uint8(d)
	}
	return lengths
}

// checkLitLenAgainstDecoder cross-checks every fast-table outcome for
// random bit patterns against the exact two-level Decoder.
func checkLitLenAgainstDecoder(t *testing.T, rng *rand.Rand, lengths []uint8) {
	t.Helper()
	dec, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatalf("Decoder.Init: %v", err)
	}
	var fast LitLenFast
	if err := fast.Init(lengths, tLenBase, tLenExtra); err != nil {
		t.Fatalf("LitLenFast.Init: %v", err)
	}
	buf := make([]byte, 8)
	for trial := 0; trial < 4096; trial++ {
		rng.Read(buf)
		x := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
			uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
		r := bitio.NewReader(buf)
		sym, derr := dec.Decode(r)
		c1 := uint(r.BitPos())

		e := fast.Lookup(x)
		if e.Kind() == FastSub {
			e = fast.SubLookup(e, x)
		}
		switch e.Kind() {
		case FastInvalid:
			// Must correspond to a symbol the fast loop refuses: a
			// decode error, or a length symbol past the RFC table.
			if derr == nil && sym < 257+len(tLenBase) {
				t.Fatalf("x=%#x: fast invalid but Decoder gave sym %d", x, sym)
			}
		case FastLit1:
			if derr != nil || sym != int(e.Lit1()) || sym > 255 || e.NBits() != c1 {
				t.Fatalf("x=%#x: lit1 %d/%d bits vs Decoder sym %d err %v bits %d",
					x, e.Lit1(), e.NBits(), sym, derr, c1)
			}
		case FastLit2:
			if derr != nil || sym != int(e.Lit1()) || e.Lit1Bits() != c1 {
				t.Fatalf("x=%#x: lit2 first %d (l1=%d) vs Decoder sym %d err %v bits %d",
					x, e.Lit1(), e.Lit1Bits(), sym, derr, c1)
			}
			sym2, derr2 := dec.Decode(r)
			c2 := uint(r.BitPos())
			if derr2 != nil || sym2 != int(e.Lit2()) || e.NBits() != c2 {
				t.Fatalf("x=%#x: lit2 second %d (total %d bits) vs Decoder sym %d err %v bits %d",
					x, e.Lit2(), e.NBits(), sym2, derr2, c2)
			}
		case FastEOB:
			if derr != nil || sym != 256 || e.NBits() != c1 {
				t.Fatalf("x=%#x: eob/%d bits vs Decoder sym %d err %v bits %d", x, e.NBits(), sym, derr, c1)
			}
		case FastLen:
			if derr != nil || sym < 257 || e.NBits() != c1 {
				t.Fatalf("x=%#x: len entry vs Decoder sym %d err %v bits %d", x, sym, derr, c1)
			}
			idx := sym - 257
			if uint32(tLenBase[idx]) != e.LenBase() || uint(tLenExtra[idx]) != e.LenExtra() {
				t.Fatalf("x=%#x: len sym %d fused base %d extra %d, want %d/%d",
					x, sym, e.LenBase(), e.LenExtra(), tLenBase[idx], tLenExtra[idx])
			}
		default:
			t.Fatalf("x=%#x: unexpected kind %d", x, e.Kind())
		}
	}
}

func TestLitLenFastFixedTree(t *testing.T) {
	// The fixed literal/length tree (RFC 3.2.6).
	lengths := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		lengths[i] = 8
	}
	for i := 144; i <= 255; i++ {
		lengths[i] = 9
	}
	for i := 256; i <= 279; i++ {
		lengths[i] = 7
	}
	for i := 280; i <= 287; i++ {
		lengths[i] = 8
	}
	checkLitLenAgainstDecoder(t, rand.New(rand.NewSource(1)), lengths)
}

func TestLitLenFastRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		nsym := 2 + rng.Intn(287)
		maxLen := 4 + rng.Intn(12)
		if 1<<maxLen < nsym {
			maxLen = 15
		}
		lengths := randLengths(rng, 288, nsym, maxLen)
		checkLitLenAgainstDecoder(t, rng, lengths)
	}
}

// TestLitLenFastShortLiterals forces a tree dense in very short
// literal codes so the FastLit2 packing path dominates.
func TestLitLenFastShortLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Four symbols: three 2-bit literals and one 2-bit EOB — every
	// primary cell holds a packed pair (2+2 <= 11).
	lengths := make([]uint8, 288)
	lengths['A'], lengths['C'], lengths['G'], lengths[256] = 2, 2, 2, 2
	var fast LitLenFast
	if err := fast.Init(lengths, tLenBase, tLenExtra); err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, e := range fast.tab {
		if e.Kind() == FastLit2 {
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no FastLit2 entries packed for an all-short-literal tree")
	}
	checkLitLenAgainstDecoder(t, rng, lengths)
}

func TestDistFastAgainstDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trees := [][]uint8{}
	// Fixed distance tree: all 32 symbols, 5 bits.
	fixed := make([]uint8, 32)
	for i := range fixed {
		fixed[i] = 5
	}
	trees = append(trees, fixed)
	for trial := 0; trial < 40; trial++ {
		nsym := 2 + rng.Intn(29)
		maxLen := 3 + rng.Intn(13)
		if 1<<maxLen < nsym {
			maxLen = 15
		}
		trees = append(trees, randLengths(rng, 30+rng.Intn(3), nsym, maxLen))
	}
	// Incomplete single-code tree (legal for distances).
	single := make([]uint8, 30)
	single[4] = 1
	trees = append(trees, single)

	buf := make([]byte, 8)
	for _, lengths := range trees {
		dec, err := NewDecoder(lengths, true)
		if err != nil {
			t.Fatalf("Decoder.Init: %v", err)
		}
		var fast DistFast
		if err := fast.Init(lengths, tDistBase, tDistExtra); err != nil {
			t.Fatalf("DistFast.Init: %v", err)
		}
		for trial := 0; trial < 4096; trial++ {
			rng.Read(buf)
			x := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
				uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
			r := bitio.NewReader(buf)
			sym, derr := dec.Decode(r)
			c1 := uint(r.BitPos())

			e := fast.Lookup(x)
			if e.Sub() {
				e = fast.SubLookup(e, x)
			}
			switch {
			case !e.Direct():
				if derr == nil && sym < len(tDistBase) {
					t.Fatalf("x=%#x: fast invalid but Decoder gave dist sym %d", x, sym)
				}
			default:
				if derr != nil || e.NBits() != c1 ||
					uint32(tDistBase[sym]) != e.Base() || uint(tDistExtra[sym]) != e.ExtraBits() {
					t.Fatalf("x=%#x: fast dist base %d extra %d nbits %d vs Decoder sym %d err %v bits %d",
						x, e.Base(), e.ExtraBits(), e.NBits(), sym, derr, c1)
				}
			}
		}
	}
}

// TestInitMemoization pins the identical-description skip on both the
// exact Decoder and the fast tables: a re-Init with equal content (in
// a different backing array) is a no-op, a different description
// rebuilds, and returning to the first description decodes correctly.
func TestInitMemoization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randLengths(rng, 288, 100, 12)
	b := randLengths(rng, 288, 150, 14)

	var d Decoder
	if err := d.Init(a, false); err != nil {
		t.Fatal(err)
	}
	if !d.memoOK {
		t.Fatal("memo not armed after successful Init")
	}
	gen := d.gen
	a2 := append([]uint8(nil), a...)
	if err := d.Init(a2, false); err != nil {
		t.Fatal(err)
	}
	if d.gen != gen {
		t.Fatal("identical re-Init rebuilt the tables")
	}
	// Same content, different allowIncomplete: must rebuild (the flag
	// participates in validation even when tables would match).
	if err := d.Init(a2, true); err != nil {
		t.Fatal(err)
	}
	if d.gen == gen {
		t.Fatal("allowIncomplete change did not rebuild")
	}
	if err := d.Init(b, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Init(a, false); err != nil {
		t.Fatal(err)
	}
	checkDecodes(t, rng, &d, a)

	// A failed Init must disarm the memo.
	bad := make([]uint8, 8)
	for i := range bad {
		bad[i] = 1 // oversubscribed
	}
	if err := d.Init(bad, false); err == nil {
		t.Fatal("oversubscribed set accepted")
	}
	if d.memoOK {
		t.Fatal("memo still armed after failed Init")
	}

	var fast LitLenFast
	if err := fast.Init(a, tLenBase, tLenExtra); err != nil {
		t.Fatal(err)
	}
	fgen := fast.gen
	if err := fast.Init(a2, tLenBase, tLenExtra); err != nil {
		t.Fatal(err)
	}
	if fast.gen != fgen {
		t.Fatal("identical fast re-Init rebuilt the tables")
	}
}

// checkDecodes spot-checks that dec decodes random patterns to symbols
// consistent with a freshly built decoder over the same lengths.
func checkDecodes(t *testing.T, rng *rand.Rand, dec *Decoder, lengths []uint8) {
	t.Helper()
	ref, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for trial := 0; trial < 512; trial++ {
		rng.Read(buf)
		r1, r2 := bitio.NewReader(buf), bitio.NewReader(buf)
		s1, e1 := dec.Decode(r1)
		s2, e2 := ref.Decode(r2)
		if s1 != s2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("decode divergence: %d/%v vs %d/%v", s1, e1, s2, e2)
		}
	}
}
