package huffman

import (
	"container/heap"
	"fmt"
)

// Code is one assigned canonical code: the bit-reversed value to write
// LSB-first, and its length in bits. Len==0 means the symbol is unused.
type Code struct {
	Bits uint32
	Len  uint8
}

// CanonicalCodes assigns canonical code values (already bit-reversed
// for LSB-first emission) from per-symbol lengths. It is the encoder
// dual of NewDecoder and performs the same Kraft validation.
func CanonicalCodes(lengths []uint8) ([]Code, error) {
	var count [MaxCodeLen + 1]int
	total := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return nil, ErrBadLength
		}
		if l > 0 {
			count[l]++
			total++
		}
	}
	if total == 0 {
		return nil, ErrNoCodes
	}
	left := 1
	for l := 1; l <= MaxCodeLen; l++ {
		left <<= 1
		left -= count[l]
		if left < 0 {
			return nil, ErrOversubscribed
		}
	}
	var nextCode [MaxCodeLen + 1]uint32
	code := uint32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]Code, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = Code{Bits: reverseBits(nextCode[l], uint(l)), Len: l}
		nextCode[l]++
	}
	return codes, nil
}

// hnode is a Huffman construction tree node.
type hnode struct {
	freq        int64
	sym         int // leaf symbol, or -1 for internal
	left, right int // child indices into the node arena
	// tieOrder breaks frequency ties deterministically so the encoder
	// output is reproducible across runs.
	tieOrder int
}

type hheap struct {
	arena *[]hnode
	idx   []int
}

func (h hheap) Len() int { return len(h.idx) }
func (h hheap) Less(i, j int) bool {
	a, b := (*h.arena)[h.idx[i]], (*h.arena)[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.tieOrder < b.tieOrder
}
func (h hheap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *hheap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *hheap) Pop() any     { v := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return v }

// BuildLengths computes length-limited Huffman code lengths from symbol
// frequencies. Symbols with zero frequency get length 0. If only one
// symbol is used it receives length 1 (DEFLATE requires at least one
// bit per coded symbol). When the optimal tree exceeds maxLen, lengths
// are adjusted with the classic zlib overflow-repair strategy, which
// preserves the Kraft equality (sum of 2^-len == 1).
func BuildLengths(freqs []int64, maxLen uint8) ([]uint8, error) {
	if maxLen == 0 || maxLen > MaxCodeLen {
		return nil, fmt.Errorf("huffman: bad length limit %d", maxLen)
	}
	n := len(freqs)
	lengths := make([]uint8, n)

	arena := make([]hnode, 0, 2*n)
	h := hheap{arena: &arena}
	for sym, f := range freqs {
		if f > 0 {
			arena = append(arena, hnode{freq: f, sym: sym, left: -1, right: -1, tieOrder: sym})
			h.idx = append(h.idx, len(arena)-1)
		}
	}
	switch len(h.idx) {
	case 0:
		return lengths, nil
	case 1:
		lengths[arena[h.idx[0]].sym] = 1
		return lengths, nil
	}
	heap.Init(&h)
	order := n
	for h.Len() > 1 {
		a := heap.Pop(&h).(int)
		b := heap.Pop(&h).(int)
		arena = append(arena, hnode{
			freq:     arena[a].freq + arena[b].freq,
			sym:      -1,
			left:     a,
			right:    b,
			tieOrder: order,
		})
		order++
		heap.Push(&h, len(arena)-1)
	}
	root := h.idx[0]

	// Depth-first walk assigning depths; count per-depth leaves so the
	// overflow repair can operate on the histogram. A Huffman tree over
	// k leaves has depth < k, so size the histogram by the alphabet.
	count := make([]int, n+2)
	maxDepth := 0
	type frame struct{ node, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := arena[f.node]
		if nd.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1 // single-leaf tree handled above, defensive
			}
			count[d]++
			if d > maxDepth {
				maxDepth = d
			}
			lengths[nd.sym] = uint8(d) // may exceed maxLen; repaired below
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}

	if maxDepth > int(maxLen) {
		repairOverflow(count, maxDepth, int(maxLen))
		// Reassign lengths: sort used symbols by (original length,
		// frequency desc) and hand out the repaired histogram from
		// shortest to longest. Shorter codes should go to more frequent
		// symbols; we approximate zlib by ordering on frequency.
		type symFreq struct {
			sym  int
			freq int64
		}
		used := make([]symFreq, 0, n)
		for sym, f := range freqs {
			if f > 0 {
				used = append(used, symFreq{sym, f})
			}
		}
		// Insertion sort by freq descending, then symbol ascending:
		// deterministic and n is small (<=288).
		for i := 1; i < len(used); i++ {
			for j := i; j > 0; j-- {
				a, b := used[j-1], used[j]
				if a.freq > b.freq || (a.freq == b.freq && a.sym < b.sym) {
					break
				}
				used[j-1], used[j] = b, a
			}
		}
		k := 0
		for l := 1; l <= int(maxLen); l++ {
			for c := 0; c < count[l]; c++ {
				lengths[used[k].sym] = uint8(l)
				k++
			}
		}
	}
	return lengths, nil
}

// repairOverflow clamps leaves deeper than limit to limit and then
// restores the Kraft equality (total code space exactly 2^limit) by
// repeatedly removing one leaf from depth limit while splitting the
// deepest shallower leaf into a pair — each step frees exactly one
// unit of code space. This is the accounting-explicit form of zlib's
// gen_bitlen repair.
func repairOverflow(count []int, maxDepth, limit int) {
	for d := limit + 1; d <= maxDepth; d++ {
		count[limit] += count[d]
		count[d] = 0
	}
	target := uint64(1) << limit
	var total uint64
	for l := 1; l <= limit; l++ {
		total += uint64(count[l]) << (limit - l)
	}
	for total > target {
		count[limit]--
		found := false
		for i := limit - 1; i > 0; i-- {
			if count[i] > 0 {
				count[i]--
				count[i+1] += 2
				found = true
				break
			}
		}
		if !found {
			// No shallower leaf exists: the alphabet cannot fit under
			// this limit at all (more than 2^limit used symbols). Leave
			// the histogram inconsistent; CanonicalCodes will reject it.
			count[limit]++
			return
		}
		total--
	}
}
