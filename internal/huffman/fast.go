package huffman

import "bytes"

// This file implements the multi-symbol decode tables behind the fast
// DEFLATE token loop (the libdeflate/klauspost technique): a wide
// primary literal/length table whose entries carry up to two packed
// literals or a fused length (base + extra-bit count) per probe, and a
// fused distance table. Long codes keep the familiar two-level
// fallback. The tables are built only for non-validating decodes — the
// block scanner's millions of probe offsets never pay for them — and
// are memoized on the code-length description like Decoder.Init.
//
// Entries answer everything the hot loop needs from a single uint32,
// so the loop runs on a 64-bit accumulator with exactly one bounds-
// checked table probe per code and no interface dispatch.

const (
	// FastBits is the index width of the primary literal/length table.
	// 11 resolves every fixed-tree code and nearly all dynamic-tree
	// codes in one probe while leaving room to pack two short literals
	// (l1+l2 <= 11) into one entry.
	FastBits = 11
	fastMask = 1<<FastBits - 1

	// DistFastBits is the index width of the distance table. Distance
	// alphabets are tiny (30 symbols), so 9 bits covers almost every
	// dynamic tree with a 512-entry table.
	DistFastBits = 9
	distFastMask = 1<<DistFastBits - 1
)

// Kinds of FastEntry. The zero entry (kind FastInvalid, nbits 0) marks
// a cell the fast loop must bail on: an unused code point, or a symbol
// (286/287) whose precise error the scalar loop reports.
const (
	FastInvalid = 0
	FastLit1    = 1 // one literal byte
	FastLit2    = 2 // two packed literal bytes
	FastLen     = 3 // match length: fused base + extra-bit count
	FastEOB     = 4 // end-of-block symbol
	FastSub     = 5 // long code: indirect through a sub-table
)

// FastEntry packs one literal/length decode-table cell:
//
//	bits 0..5   nbits — code bits consumed by accepting the entry
//	            (for FastLit2 the sum of both code lengths; extra bits
//	            of a FastLen entry are consumed separately)
//	bits 6..8   kind
//	bits 9..31  payload:
//	            FastLit1:  literal byte at 9..16
//	            FastLit2:  first byte 9..16, second byte 17..24,
//	                       first code length 25..28
//	            FastLen:   extra-bit count 9..12, length base 13..22
//	            FastSub:   sub-table id 9..24
type FastEntry uint32

// Kind returns the entry kind (FastInvalid..FastSub).
func (e FastEntry) Kind() uint { return uint(e>>6) & 7 }

// NBits returns the code bits consumed by accepting this entry.
func (e FastEntry) NBits() uint { return uint(e & 63) }

// Lit1 returns the (first) literal byte of a FastLit1/FastLit2 entry.
func (e FastEntry) Lit1() byte { return byte(e >> 9) }

// Lit2 returns the second literal byte of a FastLit2 entry.
func (e FastEntry) Lit2() byte { return byte(e >> 17) }

// Lit1Bits returns the first code's length within a FastLit2 entry —
// what to consume when only the first literal fits an output budget.
func (e FastEntry) Lit1Bits() uint { return uint(e>>25) & 15 }

// LenExtra returns the extra-bit count of a FastLen entry.
func (e FastEntry) LenExtra() uint { return uint(e>>9) & 15 }

// LenBase returns the length base of a FastLen entry.
func (e FastEntry) LenBase() uint32 { return uint32(e>>13) & 1023 }

func (e FastEntry) subID() int { return int(e>>9) & 0xffff }

// LitLenFast is the multi-symbol literal/length decode table. The zero
// value is empty; (re)build with Init. Not safe for concurrent Init,
// safe for concurrent lookups afterwards.
type LitLenFast struct {
	tab      [1 << FastBits]FastEntry
	sub      [][]FastEntry
	subUsed  int
	subWidth uint
	// subIndex/subGen reset between Inits via the generation trick,
	// exactly as in Decoder.
	subIndex [1 << FastBits]int32
	subGen   [1 << FastBits]uint32
	gen      uint32

	memoLens [288]uint8
	memoN    int
	memoOK   bool
}

// Lookup probes the primary table with the low FastBits of acc.
func (t *LitLenFast) Lookup(acc uint64) FastEntry {
	return t.tab[uint32(acc)&fastMask]
}

// SubLookup resolves a FastSub entry with further bits of acc. The
// returned entry is FastLit1, FastLen, FastEOB, or FastInvalid; its
// NBits is the full code length.
func (t *LitLenFast) SubLookup(e FastEntry, acc uint64) FastEntry {
	return t.sub[e.subID()][(uint32(acc)>>FastBits)&(1<<t.subWidth-1)]
}

// Init (re)builds the table from per-symbol code lengths. lenBase and
// lenExtra translate length symbols 257.. into fused entries (the
// caller passes DEFLATE's RFC tables); symbols beyond them (286/287)
// and unused code points stay FastInvalid so the scalar loop owns the
// error reporting. Init performs no Kraft validation: the caller has
// already built the exact Decoder for the same description, which
// rejects malformed trees first.
func (t *LitLenFast) Init(lengths []uint8, lenBase []uint16, lenExtra []uint8) error {
	if t.memoOK && len(lengths) == t.memoN && bytes.Equal(lengths, t.memoLens[:t.memoN]) {
		return nil
	}
	t.memoOK = false

	var count [MaxCodeLen + 1]int
	total := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return ErrBadLength
		}
		if l > 0 {
			count[l]++
			total++
		}
	}
	if total == 0 {
		return ErrNoCodes
	}
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	maxLen := uint(0)
	for l := 1; l <= MaxCodeLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		nextCode[l] = code
		if count[l] > 0 {
			maxLen = uint(l)
		}
	}

	t.gen++
	t.subUsed = 0
	clear(t.tab[:])
	t.subWidth = 0
	if maxLen > FastBits {
		t.subWidth = maxLen - FastBits
	}

	for sym, l0 := range lengths {
		if l0 == 0 {
			continue
		}
		l := uint(l0)
		c := nextCode[l0]
		nextCode[l0]++
		rc := reverseBits(c, l)
		e := litLenEntry(sym, l, lenBase, lenExtra)
		if l <= FastBits {
			step := uint32(1) << l
			for i := rc; i < 1<<FastBits; i += step {
				t.tab[i] = e
			}
			continue
		}
		prefix := rc & fastMask
		var id int
		if t.subGen[prefix] == t.gen {
			id = int(t.subIndex[prefix])
		} else {
			id = t.subUsed
			t.subUsed++
			if id == len(t.sub) {
				t.sub = append(t.sub, make([]FastEntry, 1<<t.subWidth))
			} else if len(t.sub[id]) < 1<<t.subWidth {
				t.sub[id] = make([]FastEntry, 1<<t.subWidth)
			} else {
				t.sub[id] = t.sub[id][:1<<t.subWidth]
				clear(t.sub[id])
			}
			t.subIndex[prefix] = int32(id)
			t.subGen[prefix] = t.gen
			t.tab[prefix] = FastEntry(FastBits|FastSub<<6) | FastEntry(id)<<9
		}
		tab := t.sub[id]
		high := rc >> FastBits
		step := uint32(1) << (l - FastBits)
		for i := high; i < 1<<t.subWidth; i += step {
			tab[i] = e
		}
	}

	// Two-literal packing: a cell whose first code is a short literal
	// is followed (within the same probe) by the cell's remaining
	// FastBits-l1 bits; when those fully determine a second literal
	// (l1+l2 <= FastBits) the pair merges into one FastLit2 entry.
	// Descending order keeps the read of tab[i>>l1] on not-yet-packed
	// cells: i>>l1 < i for i >= 1, and cell 0 reads itself pre-write.
	for i := len(t.tab) - 1; i >= 0; i-- {
		e := t.tab[i]
		if e.Kind() != FastLit1 {
			continue
		}
		l1 := e.NBits()
		e2 := t.tab[uint32(i)>>l1]
		if e2.Kind() != FastLit1 {
			continue
		}
		l2 := e2.NBits()
		if l1+l2 > FastBits {
			continue
		}
		t.tab[i] = FastEntry((l1+l2)|FastLit2<<6) |
			FastEntry(e.Lit1())<<9 | FastEntry(e2.Lit1())<<17 | FastEntry(l1)<<25
	}

	if len(lengths) <= len(t.memoLens) {
		copy(t.memoLens[:], lengths)
		t.memoN = len(lengths)
		t.memoOK = true
	}
	return nil
}

func litLenEntry(sym int, l uint, lenBase []uint16, lenExtra []uint8) FastEntry {
	switch {
	case sym < 256:
		return FastEntry(l|FastLit1<<6) | FastEntry(sym)<<9
	case sym == 256:
		return FastEntry(l | FastEOB<<6)
	default:
		idx := sym - 257
		if idx >= len(lenBase) {
			return 0 // 286/287: bail; the scalar loop names the error
		}
		return FastEntry(l|FastLen<<6) |
			FastEntry(lenExtra[idx])<<9 | FastEntry(lenBase[idx])<<13
	}
}

// DistEntry packs one distance decode-table cell:
//
//	bits 0..5   code bits
//	bits 6..9   extra-bit count
//	bits 10..11 kind: 0 invalid, 1 direct, 2 sub
//	bits 12..27 distance base, or sub-table id
type DistEntry uint32

const (
	distDirect = 1
	distSub    = 2
)

// NBits returns the code bits consumed by accepting this entry.
func (e DistEntry) NBits() uint { return uint(e & 63) }

// ExtraBits returns the extra-bit count of a direct entry.
func (e DistEntry) ExtraBits() uint { return uint(e>>6) & 15 }

// Direct reports whether the entry resolves a distance.
func (e DistEntry) Direct() bool { return uint(e>>10)&3 == distDirect }

// Sub reports whether the entry indirects through a sub-table.
func (e DistEntry) Sub() bool { return uint(e>>10)&3 == distSub }

// Base returns the distance base of a direct entry.
func (e DistEntry) Base() uint32 { return uint32(e>>12) & 0xffff }

func (e DistEntry) subID() int { return int(e>>12) & 0xffff }

// DistFast is the fused distance decode table: one probe yields code
// length, extra-bit count, and distance base together.
type DistFast struct {
	tab      [1 << DistFastBits]DistEntry
	sub      [][]DistEntry
	subUsed  int
	subWidth uint
	subIndex [1 << DistFastBits]int32
	subGen   [1 << DistFastBits]uint32
	gen      uint32

	memoLens [32]uint8
	memoN    int
	memoOK   bool
}

// Lookup probes the primary table with the low DistFastBits of acc.
func (t *DistFast) Lookup(acc uint64) DistEntry {
	return t.tab[uint32(acc)&distFastMask]
}

// SubLookup resolves a Sub entry with further bits of acc.
func (t *DistFast) SubLookup(e DistEntry, acc uint64) DistEntry {
	return t.sub[e.subID()][(uint32(acc)>>DistFastBits)&(1<<t.subWidth-1)]
}

// Init (re)builds the table from per-symbol code lengths; base/extra
// are DEFLATE's distance tables. Symbols beyond them (30/31) and
// unused code points stay invalid, and incomplete trees (legal for
// distances) simply leave holes — the fast loop bails to the scalar
// path for the canonical error in every such case.
func (t *DistFast) Init(lengths []uint8, base []uint32, extra []uint8) error {
	if t.memoOK && len(lengths) == t.memoN && bytes.Equal(lengths, t.memoLens[:t.memoN]) {
		return nil
	}
	t.memoOK = false

	var count [MaxCodeLen + 1]int
	total := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return ErrBadLength
		}
		if l > 0 {
			count[l]++
			total++
		}
	}
	if total == 0 {
		return ErrNoCodes
	}
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	maxLen := uint(0)
	for l := 1; l <= MaxCodeLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		nextCode[l] = code
		if count[l] > 0 {
			maxLen = uint(l)
		}
	}

	t.gen++
	t.subUsed = 0
	clear(t.tab[:])
	t.subWidth = 0
	if maxLen > DistFastBits {
		t.subWidth = maxLen - DistFastBits
	}

	for sym, l0 := range lengths {
		if l0 == 0 {
			continue
		}
		l := uint(l0)
		c := nextCode[l0]
		nextCode[l0]++
		rc := reverseBits(c, l)
		var e DistEntry
		if sym < len(base) {
			e = DistEntry(l|uint(extra[sym])<<6|distDirect<<10) | DistEntry(base[sym])<<12
		}
		if l <= DistFastBits {
			step := uint32(1) << l
			for i := rc; i < 1<<DistFastBits; i += step {
				t.tab[i] = e
			}
			continue
		}
		prefix := rc & distFastMask
		var id int
		if t.subGen[prefix] == t.gen {
			id = int(t.subIndex[prefix])
		} else {
			id = t.subUsed
			t.subUsed++
			if id == len(t.sub) {
				t.sub = append(t.sub, make([]DistEntry, 1<<t.subWidth))
			} else if len(t.sub[id]) < 1<<t.subWidth {
				t.sub[id] = make([]DistEntry, 1<<t.subWidth)
			} else {
				t.sub[id] = t.sub[id][:1<<t.subWidth]
				clear(t.sub[id])
			}
			t.subIndex[prefix] = int32(id)
			t.subGen[prefix] = t.gen
			t.tab[prefix] = DistEntry(DistFastBits|distSub<<10) | DistEntry(id)<<12
		}
		tab := t.sub[id]
		high := rc >> DistFastBits
		step := uint32(1) << (l - DistFastBits)
		for i := high; i < 1<<t.subWidth; i += step {
			tab[i] = e
		}
	}

	if len(lengths) <= len(t.memoLens) {
		copy(t.memoLens[:], lengths)
		t.memoN = len(lengths)
		t.memoOK = true
	}
	return nil
}
