// Package huffman implements canonical Huffman coding as used by
// DEFLATE (RFC 1951 section 3.2.2): codes of length 1..15 assigned in
// order of (length, symbol), transmitted LSB-first with bit-reversed
// code values.
//
// The decoder is a two-level lookup table: a primary table indexed by
// the next primaryBits input bits resolves most symbols in one probe;
// longer codes indirect through per-prefix secondary tables. The
// builder performs the strict validity checks that internal/blockfind
// relies on to reject garbage headers early, and supports in-place
// re-initialisation so the brute-force scanner does not allocate per
// candidate bit offset.
package huffman

import (
	"bytes"
	"errors"
	"fmt"
)

// MaxCodeLen is the maximum DEFLATE code length.
const MaxCodeLen = 15

// primaryBits is the width of the first-level decode table. 9 covers
// all fixed-tree codes and the vast majority of dynamic-tree codes.
const primaryBits = 9

// Errors returned by Init/NewDecoder. blockfind distinguishes these
// only by non-nil-ness, but tests assert the specific failure modes.
var (
	ErrOversubscribed = errors.New("huffman: oversubscribed code set")
	ErrIncomplete     = errors.New("huffman: incomplete code set")
	ErrNoCodes        = errors.New("huffman: no symbols with nonzero length")
	ErrBadLength      = errors.New("huffman: code length out of range")
)

// entry packs a decode-table cell:
//
//	bits 0..3   code length (0 = invalid cell)
//	bits 4..19  symbol, or secondary-table index when indirect
//	bit  31     set when the cell indirects to a secondary table
type entry uint32

const indirectFlag entry = 1 << 31

func directEntry(sym uint16, length uint8) entry {
	return entry(uint32(sym)<<4 | uint32(length))
}

func (e entry) length() uint   { return uint(e & 0xf) }
func (e entry) symbol() int    { return int(e>>4) & 0xffff }
func (e entry) indirect() bool { return e&indirectFlag != 0 }

// Decoder decodes one canonical Huffman code set. The zero value is
// empty; call Init before use, or construct with NewDecoder. A Decoder
// may be re-Initialised any number of times and reuses its tables.
type Decoder struct {
	primary  [1 << primaryBits]entry
	sub      [][]entry // secondary tables for codes longer than primaryBits
	subUsed  int
	minLen   uint
	maxLen   uint
	complete bool
	// subIndex maps a reversed primary prefix to a sub-table id for the
	// current Init; reset between Inits via the generation trick.
	subIndex [1 << primaryBits]int32
	subGen   [1 << primaryBits]uint32
	gen      uint32
	// memo of the last successful Init: compressors commonly reuse one
	// tree description across consecutive blocks of a member, and the
	// tables are a pure function of (lengths, allowIncomplete), so an
	// identical re-Init skips the rebuild entirely.
	memoLens  [288]uint8
	memoN     int
	memoAllow bool
	memoOK    bool
}

// Complete reports whether the code set is exactly full (Kraft sum 1).
func (d *Decoder) Complete() bool { return d.complete }

// MaxLen returns the longest code length in the set.
func (d *Decoder) MaxLen() uint { return d.maxLen }

// NewDecoder builds a decoder from per-symbol code lengths
// (0 = symbol unused). See (*Decoder).Init for the validation rules.
func NewDecoder(lengths []uint8, allowIncomplete bool) (*Decoder, error) {
	d := new(Decoder)
	if err := d.Init(lengths, allowIncomplete); err != nil {
		return nil, err
	}
	return d, nil
}

// Init (re)builds the decoder from the per-symbol code lengths.
//
// allowIncomplete controls whether an under-subscribed code set (Kraft
// sum < 1) is accepted; DEFLATE permits this for distance trees with a
// single code, and zlib in practice accepts any under-subscription for
// distances. Oversubscribed sets are always rejected.
func (d *Decoder) Init(lengths []uint8, allowIncomplete bool) error {
	if d.memoOK && allowIncomplete == d.memoAllow && len(lengths) == d.memoN &&
		bytes.Equal(lengths, d.memoLens[:d.memoN]) {
		return nil
	}
	d.memoOK = false
	var count [MaxCodeLen + 1]int
	total := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return ErrBadLength
		}
		if l > 0 {
			count[l]++
			total++
		}
	}
	if total == 0 {
		return ErrNoCodes
	}

	// Kraft check and min/max lengths.
	minLen, maxLen := uint(0), uint(0)
	left := 1 // code space remaining, doubling each level
	for l := 1; l <= MaxCodeLen; l++ {
		left <<= 1
		left -= count[l]
		if left < 0 {
			return ErrOversubscribed
		}
		if count[l] > 0 {
			if minLen == 0 {
				minLen = uint(l)
			}
			maxLen = uint(l)
		}
	}
	complete := left == 0
	if !complete && !allowIncomplete {
		return ErrIncomplete
	}

	// First code value per length (canonical ordering).
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		nextCode[l] = code
	}

	d.minLen, d.maxLen, d.complete = minLen, maxLen, complete
	d.gen++
	d.subUsed = 0
	clear(d.primary[:])

	subWidth := uint(0)
	if maxLen > primaryBits {
		subWidth = maxLen - primaryBits
	}

	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		c := nextCode[l]
		nextCode[l]++
		rc := reverseBits(c, uint(l)) // LSB-first as read from the stream
		if uint(l) <= primaryBits {
			// Fill every primary cell whose low l bits equal rc.
			step := uint32(1) << uint(l)
			for i := rc; i < 1<<primaryBits; i += step {
				d.primary[i] = directEntry(uint16(sym), l)
			}
			continue
		}
		prefix := rc & (1<<primaryBits - 1)
		var id int
		if d.subGen[prefix] == d.gen {
			id = int(d.subIndex[prefix])
		} else {
			id = d.subUsed
			d.subUsed++
			if id == len(d.sub) {
				d.sub = append(d.sub, make([]entry, 1<<subWidth))
			} else if len(d.sub[id]) < 1<<subWidth {
				d.sub[id] = make([]entry, 1<<subWidth)
			} else {
				d.sub[id] = d.sub[id][:1<<subWidth]
				clear(d.sub[id])
			}
			d.subIndex[prefix] = int32(id)
			d.subGen[prefix] = d.gen
			d.primary[prefix] = indirectFlag | directEntry(uint16(id), uint8(maxLen))
		}
		tab := d.sub[id]
		high := rc >> primaryBits
		step := uint32(1) << (uint(l) - primaryBits)
		for i := high; i < 1<<subWidth; i += step {
			tab[i] = directEntry(uint16(sym), l)
		}
	}
	if len(lengths) <= len(d.memoLens) {
		copy(d.memoLens[:], lengths)
		d.memoN = len(lengths)
		d.memoAllow = allowIncomplete
		d.memoOK = true
	}
	return nil
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// ErrInvalidCode is returned when the input bits do not correspond to
// any code in the set (possible only for incomplete sets or truncated
// input).
var ErrInvalidCode = errors.New("huffman: invalid code in stream")

// errTruncatedCode is the pre-wrapped truncation variant of
// ErrInvalidCode. It is allocated once: the block scanner hits this
// path on a large fraction of its millions of probe offsets, so
// constructing a fresh wrapper per miss would dominate allocations.
var errTruncatedCode = fmt.Errorf("huffman: truncated input: %w", ErrInvalidCode)

// BitSource is the subset of *bitio.Reader the decoder needs. Defined
// as an interface so tests can use synthetic sources; the hot decode
// loops in internal/flate use the concrete *bitio.Reader via
// DecodeFast.
type BitSource interface {
	Peek(count uint) uint32
	Drop(count uint) error
	Len() int64
}

// Decode reads one symbol from src. It validates that enough input
// bits existed for the decoded length, which matters at end of stream:
// Peek zero-fills past the end, so a "successful" table hit whose code
// length exceeds the remaining bit count is actually truncated input.
func (d *Decoder) Decode(src BitSource) (int, error) {
	e := d.primary[src.Peek(primaryBits)]
	if e.indirect() {
		e = d.sub[e.symbol()][src.Peek(d.maxLen)>>primaryBits]
	}
	l := e.length()
	if l == 0 {
		return 0, ErrInvalidCode
	}
	if int64(l) > src.Len() {
		return 0, errTruncatedCode
	}
	if err := src.Drop(l); err != nil {
		return 0, err
	}
	return e.symbol(), nil
}
