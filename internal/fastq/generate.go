// Package fastq implements the FASTQ side of the paper: a synthetic
// Illumina-like generator (the stand-in for the ENA corpus, see
// DESIGN.md substitutions), a strict parser, the heuristic extractor
// of DNA-like segments from partially undetermined text (Appendix
// X-B), sequence-resolved block detection (Section VI-B), and the
// character-type annotation behind Figure 4.
package fastq

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/dna"
)

// Record is one FASTQ entry.
type Record struct {
	Header string // without the leading '@'
	Seq    []byte
	Qual   []byte
}

// GenOptions shapes the synthetic dataset.
type GenOptions struct {
	Reads   int   // number of records
	ReadLen int   // bases per read (Illumina-like: constant)
	Seed    int64 //
	// Instrument/run identifiers baked into headers.
	Instrument string
	Flowcell   string
	// NRate is the probability of an 'N' base (quality floored).
	NRate float64
}

// Defaults fills zero fields with realistic values.
func (o GenOptions) withDefaults() GenOptions {
	if o.ReadLen == 0 {
		o.ReadLen = 100
	}
	if o.Instrument == "" {
		o.Instrument = "SIM001"
	}
	if o.Flowcell == "" {
		o.Flowcell = "FCX01"
	}
	if o.NRate == 0 {
		o.NRate = 0.002
	}
	return o
}

// Generate produces a synthetic FASTQ file. Headers follow the
// Illumina convention (instrument:run:flowcell:lane:tile:x:y), quality
// strings use a position-dependent Phred+33 distribution that decays
// toward the 3' end — giving the same header/DNA/quality interleaving
// and per-stream redundancy structure that drives the paper's
// compression phenomena.
func Generate(o GenOptions) []byte {
	o = o.withDefaults()
	rng := dna.NewRNG(o.Seed)
	var buf bytes.Buffer
	buf.Grow(o.Reads * (o.ReadLen*2 + 64))
	for i := 0; i < o.Reads; i++ {
		lane := 1 + i%8
		tile := 1001 + (i/8)%120
		x := 1000 + rng.Intn(20000)
		y := 1000 + rng.Intn(20000)
		fmt.Fprintf(&buf, "@%s:42:%s:%d:%d:%d:%d 1:N:0:ATCACG\n",
			o.Instrument, o.Flowcell, lane, tile, x, y)
		for j := 0; j < o.ReadLen; j++ {
			if rng.Float64() < o.NRate {
				buf.WriteByte('N')
			} else {
				buf.WriteByte(dna.Alphabet[rng.Intn(4)])
			}
		}
		buf.WriteByte('\n')
		buf.WriteString("+\n")
		writeQuality(&buf, rng, o.ReadLen)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// writeQuality emits one Phred+33 quality string. Real Illumina
// qualities are strongly run-correlated: long stretches of the same
// high value, a slow decay toward the 3' end, and occasional
// low-quality dips. The run structure matters for fidelity — it is
// what makes the quality stream the most compressible part of a FASTQ
// file (and gives gzip the ~3x overall ratio the paper reports), and
// it shapes the quality<->DNA back-reference bridging behind Figure 4.
func writeQuality(buf *bytes.Buffer, rng *rand.Rand, readLen int) {
	q := 36 + rng.Intn(6) // start high: Q36-Q41
	run := 0
	for j := 0; j < readLen; j++ {
		if run == 0 {
			run = 1 + rng.Intn(12)  // hold each value for a stretch
			step := rng.Intn(5) - 2 // gentle random walk...
			if rng.Intn(4) == 0 {
				step-- // ...with a downward drift toward the 3' end
			}
			q += step
			if rng.Intn(120) == 0 {
				q = 2 + rng.Intn(12) // rare low-quality dip
			}
			if q < 2 {
				q = 2
			}
			if q > 41 {
				q = 41
			}
		}
		run--
		buf.WriteByte(byte(33 + q))
	}
}

// Parse splits a well-formed FASTQ file into records. It enforces the
// 4-line convention strictly (this is the test oracle; the heuristic
// parser in extract.go is the forensic one).
func Parse(data []byte) ([]Record, error) {
	var recs []Record
	lines := bytes.Split(data, []byte{'\n'})
	// A trailing newline yields one empty trailing element.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines)%4 != 0 {
		return nil, fmt.Errorf("fastq: %d lines, not a multiple of 4", len(lines))
	}
	for i := 0; i < len(lines); i += 4 {
		h, s, p, q := lines[i], lines[i+1], lines[i+2], lines[i+3]
		if len(h) == 0 || h[0] != '@' {
			return nil, fmt.Errorf("fastq: record %d: header missing '@'", i/4)
		}
		if len(p) == 0 || p[0] != '+' {
			return nil, fmt.Errorf("fastq: record %d: separator missing '+'", i/4)
		}
		if len(s) != len(q) {
			return nil, fmt.Errorf("fastq: record %d: seq/qual length mismatch (%d vs %d)", i/4, len(s), len(q))
		}
		recs = append(recs, Record{Header: string(h[1:]), Seq: s, Qual: q})
	}
	return recs, nil
}

// CharClass labels every byte of a FASTQ file by stream, the
// annotation behind Figure 4.
type CharClass uint8

const (
	ClassHeader CharClass = iota // sequence header line (incl. '@')
	ClassDNA                     // nucleotide line
	ClassPlus                    // quality header line (usually "+")
	ClassQual                    // quality line
	ClassSep                     // newline separators
	NumCharClasses
)

func (c CharClass) String() string {
	switch c {
	case ClassHeader:
		return "header"
	case ClassDNA:
		return "dna"
	case ClassPlus:
		return "plus"
	case ClassQual:
		return "quality"
	case ClassSep:
		return "sep"
	}
	return "?"
}

// Classify returns a per-byte class array for a well-formed FASTQ
// file: a 4-state line cycle with newlines as ClassSep.
func Classify(data []byte) []CharClass {
	out := make([]CharClass, len(data))
	state := 0 // 0 header, 1 dna, 2 plus, 3 qual
	lineClass := [4]CharClass{ClassHeader, ClassDNA, ClassPlus, ClassQual}
	for i, b := range data {
		if b == '\n' {
			out[i] = ClassSep
			state = (state + 1) % 4
			continue
		}
		out[i] = lineClass[state]
	}
	return out
}
