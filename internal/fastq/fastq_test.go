package fastq

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dna"
)

func TestGenerateParseRoundTrip(t *testing.T) {
	data := Generate(GenOptions{Reads: 500, ReadLen: 75, Seed: 1})
	recs, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if len(r.Seq) != 75 || len(r.Qual) != 75 {
			t.Fatalf("record %d: seq %d qual %d", i, len(r.Seq), len(r.Qual))
		}
		for _, b := range r.Seq {
			if !dna.IsNucleotide(b) {
				t.Fatalf("record %d: bad base %q", i, b)
			}
		}
		for _, q := range r.Qual {
			if q < 33 || q > 33+41 {
				t.Fatalf("record %d: quality %d out of Phred+33 range", i, q)
			}
		}
		if !strings.HasPrefix(r.Header, "SIM001:") {
			t.Fatalf("record %d: header %q", i, r.Header)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenOptions{Reads: 100, Seed: 7})
	b := Generate(GenOptions{Reads: 100, Seed: 7})
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must generate identical corpora")
	}
	c := Generate(GenOptions{Reads: 100, Seed: 8})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must differ")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not multiple of 4": "@h\nACGT\n+\n",
		"missing @":         "h\nACGT\n+\nIIII\n",
		"missing +":         "@h\nACGT\nx\nIIII\n",
		"len mismatch":      "@h\nACGT\n+\nIII\n",
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestClassify(t *testing.T) {
	in := []byte("@hdr\nACGT\n+\nIIII\n@h2\nTTTT\n+\nJJJJ\n")
	cls := Classify(in)
	if len(cls) != len(in) {
		t.Fatal("length mismatch")
	}
	check := func(pos int, want CharClass) {
		t.Helper()
		if cls[pos] != want {
			t.Fatalf("pos %d (%q): got %v want %v", pos, in[pos], cls[pos], want)
		}
	}
	check(0, ClassHeader)  // '@'
	check(3, ClassHeader)  // 'r'
	check(4, ClassSep)     // '\n'
	check(5, ClassDNA)     // 'A'
	check(10, ClassPlus)   // '+'
	check(12, ClassQual)   // 'I'
	check(17, ClassHeader) // '@h2' second record
	check(21, ClassDNA)
}

func TestCharClassString(t *testing.T) {
	want := map[CharClass]string{
		ClassHeader: "header", ClassDNA: "dna", ClassPlus: "plus",
		ClassQual: "quality", ClassSep: "sep", CharClass(99): "?",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%v", c)
		}
	}
}

func TestExtractCleanSequences(t *testing.T) {
	text := []byte("@header1\nACGTACGTACGTACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n")
	segs := Extract(text, ExtractOptions{MinLen: 10})
	if len(segs) != 1 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	got := string(segs[0].Seq(text))
	if got != "ACGTACGTACGTACGTACGTACGTACGTACGTACGT" {
		t.Fatalf("got %q", got)
	}
	if !segs[0].Unambiguous() {
		t.Fatal("clean sequence flagged ambiguous")
	}
}

func TestExtractWithUndetermined(t *testing.T) {
	// U+ runs inside the body are part of the sequence; a trailing
	// dead-end U-run terminates it.
	text := []byte("\nACGT????ACGTACGTACGT????\n")
	segs := Extract(text, ExtractOptions{MinLen: 5})
	if len(segs) != 1 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if got := string(segs[0].Seq(text)); got != "ACGT????ACGTACGTACGT" {
		t.Fatalf("got %q", got)
	}
	if segs[0].Undetermined != 4 {
		t.Fatalf("undetermined %d, want 4", segs[0].Undetermined)
	}
}

func TestExtractRequiresTerminators(t *testing.T) {
	// DNA-looking run flanked by quality characters (no T boundary):
	// must NOT be extracted.
	text := []byte("IIIIACGTACGTACGTACGTIIII\n")
	if segs := Extract(text, ExtractOptions{MinLen: 5}); len(segs) != 0 {
		t.Fatalf("extracted from inside quality line: %+v", segs)
	}
	// Same run but newline-delimited: extracted.
	text = []byte("IIII\nACGTACGTACGTACGT\nIIII\n")
	if segs := Extract(text, ExtractOptions{MinLen: 5}); len(segs) != 1 {
		t.Fatalf("got %+v", segs)
	}
}

func TestExtractUndeterminedAnchor(t *testing.T) {
	// An undetermined character works as the leading anchor (T).
	text := []byte("??ACGTACGTACGTACGT\n")
	segs := Extract(text, ExtractOptions{MinLen: 5})
	if len(segs) != 1 {
		t.Fatalf("got %+v", segs)
	}
	if got := string(segs[0].Seq(text)); got != "ACGTACGTACGTACGT" {
		t.Fatalf("got %q", got)
	}
}

func TestExtractMinLen(t *testing.T) {
	text := []byte("\nACGT\nACGTACGTACGTACGTACGT\n")
	segs := Extract(text, ExtractOptions{MinLen: 10})
	if len(segs) != 1 {
		t.Fatalf("got %+v", segs)
	}
	if len(segs[0].Seq(text)) != 20 {
		t.Fatal("short segment not filtered")
	}
}

func TestExtractEndOfText(t *testing.T) {
	// A sequence running to the end of the buffer (spanning into the
	// next, un-decoded block) is accepted.
	text := []byte("\nACGTACGTACGTACGT")
	segs := Extract(text, ExtractOptions{MinLen: 5})
	if len(segs) != 1 {
		t.Fatalf("got %+v", segs)
	}
}

func TestExtractOnGeneratedFastq(t *testing.T) {
	// On clean FASTQ (no undetermined chars), the extractor must find
	// essentially one sequence per read, all unambiguous. Quality
	// strings can contain DNA-letter stretches but lack newline-to-
	// newline nucleotide-only runs of MinLen.
	data := Generate(GenOptions{Reads: 2000, ReadLen: 100, Seed: 3})
	segs := Extract(data, ExtractOptions{MinLen: 32})
	if len(segs) < 1900 || len(segs) > 2100 {
		t.Fatalf("extracted %d segments from 2000 reads", len(segs))
	}
	for _, s := range segs {
		if !s.Unambiguous() {
			t.Fatal("clean input yielded ambiguous segment")
		}
	}
}

func TestBlockResolved(t *testing.T) {
	clean := Generate(GenOptions{Reads: 50, ReadLen: 100, Seed: 4})
	if !BlockResolved(clean, ExtractOptions{}, 4) {
		t.Fatal("clean block not resolved")
	}
	// A block whose sequences contain '?' is not resolved.
	dirty := bytes.ReplaceAll(clean, []byte("A"), []byte("?"))
	if BlockResolved(dirty, ExtractOptions{}, 4) {
		t.Fatal("dirty block resolved")
	}
	// Too few sequences.
	tiny := Generate(GenOptions{Reads: 2, ReadLen: 100, Seed: 5})
	if BlockResolved(tiny, ExtractOptions{}, 4) {
		t.Fatal("2 reads cannot satisfy threshold 4")
	}
}

func TestGenerateNRate(t *testing.T) {
	data := Generate(GenOptions{Reads: 2000, ReadLen: 100, Seed: 6, NRate: 0.05})
	recs, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	ns := 0
	for _, r := range recs {
		for _, b := range r.Seq {
			if b == 'N' {
				ns++
			}
		}
	}
	frac := float64(ns) / float64(2000*100)
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("N fraction %.4f, want ≈0.05", frac)
	}
}
