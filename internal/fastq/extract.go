package fastq

import (
	"repro/internal/dna"
	"repro/internal/tracked"
)

// Extracted is one DNA-like segment returned by the heuristic parser.
type Extracted struct {
	Start, End   int // byte offsets into the scanned text
	Undetermined int // count of undetermined characters inside
}

// Seq materialises the segment from the scanned text.
func (e Extracted) Seq(text []byte) []byte { return text[e.Start:e.End] }

// Unambiguous reports whether the segment has no undetermined
// characters (the Table I "unambiguous sequences" numerator).
func (e Extracted) Unambiguous() bool { return e.Undetermined == 0 }

// ExtractOptions tunes the heuristic.
type ExtractOptions struct {
	// MinLen discards segments shorter than this many characters
	// (the paper's "minimum read length" filter). Default 32.
	MinLen int
	// AnchorStart treats the start of text as a leading terminator, so
	// a segment may begin at offset 0. Off by default: random-access
	// text begins mid-stream, where the prefix of the first line is
	// unknown. Incremental scanners over exact text set it for their
	// first window (the scan offset is record-aligned by contract).
	AnchorStart bool
	// RequireEndTerminator rejects segments that run into the end of
	// text instead of a newline or undetermined run. Off by default:
	// the paper's grammar accepts end-of-text (sequences spanning into
	// the next block are still useful DNA).
	RequireEndTerminator bool
}

// DefaultMinLen is the default minimum extracted-sequence length.
const DefaultMinLen = 32

// Extract implements the Appendix X-B grammar over text that may
// contain undetermined characters ('?', as produced by
// tracked.Narrow):
//
//	T D+ (U+ D+)* T
//
// where T is a newline or undetermined character, D is a nucleotide
// (A,C,G,T,N), and U is an undetermined character. Matches are
// maximal and non-overlapping; the leading and trailing T are
// required but excluded from the result. Segments shorter than
// MinLen are discarded.
//
// The terminators matter: a quality string can contain stretches that
// look like DNA, but inside a FASTQ line those stretches are flanked
// by non-DNA quality characters, not by newlines — requiring the T
// boundary filters most of them out.
func Extract(text []byte, o ExtractOptions) []Extracted {
	if o.MinLen == 0 {
		o.MinLen = DefaultMinLen
	}
	if o.AnchorStart && len(text) > 0 && dna.IsNucleotide(text[0]) {
		// A virtual terminator precedes the text: run the unchanged
		// grammar over a shifted copy and rebase. Only the first
		// segment can differ (a '\n' before a nucleotide adds exactly
		// one anchor), so this provably preserves every other match.
		shifted := make([]byte, len(text)+1)
		shifted[0] = '\n'
		copy(shifted[1:], text)
		o.AnchorStart = false
		segs := Extract(shifted, o)
		for i := range segs {
			segs[i].Start--
			segs[i].End--
		}
		return segs
	}
	isT := func(b byte) bool { return b == '\n' || b == tracked.UndeterminedByte }
	isU := func(b byte) bool { return b == tracked.UndeterminedByte }

	var out []Extracted
	i := 0
	for i < len(text) {
		// Find a T anchor.
		if !isT(text[i]) {
			i++
			continue
		}
		// The body must start with D+ immediately after the anchor.
		j := i + 1
		if j >= len(text) || !dna.IsNucleotide(text[j]) {
			i++
			continue
		}
		start := j
		// Consume D+ (U+ D+)* greedily, tracking the last position at
		// which the body ends with a D (a valid stopping point).
		lastValidEnd := -1
		for j < len(text) {
			switch {
			case dna.IsNucleotide(text[j]):
				j++
				lastValidEnd = j
			case isU(text[j]):
				// U+ run: only part of the body if followed by more D;
				// a dead-ending run is rolled back via lastValidEnd and
				// then serves as the trailing T.
				k := j
				for k < len(text) && isU(text[k]) {
					k++
				}
				if k < len(text) && dna.IsNucleotide(text[k]) {
					j = k
				} else {
					j = k
					goto done
				}
			default:
				goto done
			}
		}
	done:
		end := lastValidEnd
		if end < 0 {
			i++
			continue
		}
		// The grammar requires a trailing T. An undetermined run we
		// rolled back from supplies it, as does a newline; end-of-text
		// is accepted for sequences spanning into the next block
		// (unless the caller demands a real terminator).
		if end < len(text) && !isT(text[end]) {
			i = end
			continue
		}
		if end == len(text) && o.RequireEndTerminator {
			i = end
			continue
		}
		// Count undetermined chars within [start,end): the U runs we
		// actually kept.
		kept := recountUndetermined(text[start:end])
		if end-start >= o.MinLen {
			out = append(out, Extracted{Start: start, End: end, Undetermined: kept})
		}
		i = end
	}
	return out
}

func recountUndetermined(seg []byte) int {
	n := 0
	for _, b := range seg {
		if b == tracked.UndeterminedByte {
			n++
		}
	}
	return n
}

// SequenceResolvedThreshold is the minimum number of fully determined
// sequences a block must yield to be called sequence-resolved.
const SequenceResolvedThreshold = 4

// BlockResolved implements Section VI-B: a decompressed block is
// sequence-resolved when the heuristic parser returns at least
// threshold sequences and none of them contains an undetermined
// character. (Undetermined characters may remain in headers or
// quality strings.)
func BlockResolved(blockText []byte, o ExtractOptions, threshold int) bool {
	if threshold <= 0 {
		threshold = SequenceResolvedThreshold
	}
	segs := Extract(blockText, o)
	if len(segs) < threshold {
		return false
	}
	for _, s := range segs {
		if !s.Unambiguous() {
			return false
		}
	}
	return true
}
