package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAccKnownValues(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("n %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean %f", a.Mean())
	}
	// Sample std of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Fatalf("std %f want %f", a.Std(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %f %f", a.Min(), a.Max())
	}
}

func TestAccDegenerate(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Std() != 0 || a.N() != 0 {
		t.Fatal("empty accumulator")
	}
	a.Add(42)
	if a.Std() != 0 {
		t.Fatal("single observation std must be 0")
	}
	if a.Mean() != 42 || a.Min() != 42 || a.Max() != 42 {
		t.Fatal("single observation stats")
	}
}

func TestAccMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological floats
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Acc
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveStd := math.Sqrt(ss / float64(len(xs)-1))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(a.Mean()-mean) < 1e-6*scale &&
			math.Abs(a.Std()-naiveStd) < 1e-6*math.Max(1, naiveStd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdFormat(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(3)
	if got := a.MeanStd(1); got != "2.0 ± 1.4" {
		t.Fatalf("got %q", got)
	}
}

func TestMBPerSec(t *testing.T) {
	if v := MBPerSec(10_000_000, time.Second); v != 10 {
		t.Fatalf("got %f", v)
	}
	if v := MBPerSec(100, 0); v != 0 {
		t.Fatal("zero duration must give 0")
	}
	if MB(2_500_000) != 2.5 {
		t.Fatal("MB conversion")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("a-longer-name", 3.14159)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	// Columns aligned: both data rows have "value" column at the same
	// offset as the header's.
	col := strings.Index(lines[0], "value")
	if lines[2][col] == ' ' && lines[3][col] == ' ' {
		t.Fatal("column alignment broken")
	}
}

func TestSeries(t *testing.T) {
	out := Series("test", []float64{1, 2}, []float64{0.5, 0.25})
	if !strings.Contains(out, "# series: test") {
		t.Fatal("missing header")
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("got %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := Sparkline([]float64{0, 1})
	runes := []rune(s)
	if len(runes) != 2 || runes[0] == runes[1] {
		t.Fatalf("got %q", s)
	}
	// Constant series: all the same level, no panic on zero span.
	s = Sparkline([]float64{5, 5, 5})
	runes = []rune(s)
	if len(runes) != 3 || runes[0] != runes[1] {
		t.Fatalf("constant series: %q", s)
	}
}
