// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: streaming mean/stddev, throughput
// formatting, and fixed-width text tables that mirror the paper's
// presentation.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Acc is a streaming mean/variance accumulator (Welford).
type Acc struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (a *Acc) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the observation count.
func (a *Acc) N() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Acc) Mean() float64 { return a.mean }

// Std returns the sample standard deviation (0 for n < 2).
func (a *Acc) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min and Max return the extremes (0 when empty).
func (a *Acc) Min() float64 { return a.min }
func (a *Acc) Max() float64 { return a.max }

// MeanStd renders "m ± s" with the given precision, the format of the
// paper's Table I cells.
func (a *Acc) MeanStd(prec int) string {
	return fmt.Sprintf("%.*f ± %.*f", prec, a.Mean(), prec, a.Std())
}

// MBPerSec converts a byte count over a duration to MB/s (decimal
// megabytes, as in the paper's Table II).
func MBPerSec(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// MB renders a byte count in decimal megabytes.
func MB(bytes int64) float64 { return float64(bytes) / 1e6 }

// Table is a minimal fixed-width text table writer.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series renders an (x, y) series as aligned columns, the harness's
// stand-in for a figure: each experiment prints the numbers a plot
// would show.
func Series(name string, xs []float64, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s\n", name)
	for i := range xs {
		if i < len(ys) {
			fmt.Fprintf(&b, "%12.4f %12.6f\n", xs[i], ys[i])
		}
	}
	return b.String()
}

// Sparkline renders ys as a coarse unicode sparkline, handy for
// eyeballing figure shapes in terminal output.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if span > 0 {
			idx = int((y - lo) / span * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
