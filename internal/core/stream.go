package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/tracked"
)

// StreamOptions configures bounded-memory streaming decompression.
//
// Section VIII of the paper notes that pugz "requires the whole
// decompressed file to reside in memory, yet further engineering
// efforts could lift this limitation with little projected impact on
// performance". This is that engineering effort: the payload is
// processed in batches of Threads chunks; each batch is decompressed
// in parallel with symbolic contexts, resolved against the window
// carried from the previous batch, emitted, and freed. Peak memory is
// O(BatchBytes x expansion) instead of O(file).
type StreamOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed size of one batch
	// (default 4 MiB x Threads, min 64 KiB).
	BatchCompressedBytes int
	// MinChunk, Confirmations, ValidByte, Sequential: as in Options.
	MinChunk      int
	Confirmations int
	ValidByte     func(byte) bool
	Sequential    bool
}

// StreamResult reports a finished streaming run.
type StreamResult struct {
	Batches       int
	OutBytes      int64
	PayloadEndBit int64
	Wall          time.Duration
}

// DecompressStream decompresses a raw DEFLATE stream in bounded
// memory, invoking emit with consecutive decompressed slices (valid
// only during the call). The concatenation of all emitted slices is
// byte-identical to a sequential decode.
func DecompressStream(payload []byte, o StreamOptions, emit func([]byte) error) (*StreamResult, error) {
	t0 := time.Now()
	n := o.Threads
	if n < 1 {
		n = 1
	}
	batchBytes := o.BatchCompressedBytes
	if batchBytes <= 0 {
		batchBytes = 4 << 20 * n
	}
	if batchBytes < 64<<10 {
		batchBytes = 64 << 10
	}
	inner := Options{
		Threads:       n,
		MinChunk:      o.MinChunk,
		Confirmations: o.Confirmations,
		ValidByte:     o.ValidByte,
		Sequential:    o.Sequential,
	}
	if inner.MinChunk <= 0 {
		inner.MinChunk = defaultMinChunk
	}

	res := &StreamResult{}
	// ctx is the resolved 32 KiB window preceding the current batch;
	// zero-filled at stream start (no valid stream references it).
	ctx := make([]byte, tracked.WindowSize)
	startBit := int64(0)

	for {
		batch, err := decodeBatch(payload, startBit, batchBytes, ctx, inner)
		if err != nil {
			return nil, fmt.Errorf("core: stream batch %d: %w", res.Batches, err)
		}
		if err := emit(batch.out); err != nil {
			return nil, err
		}
		res.Batches++
		res.OutBytes += int64(len(batch.out))
		ctx = batch.window
		startBit = batch.endBit
		if batch.final {
			res.PayloadEndBit = batch.endBit
			break
		}
	}
	res.Wall = time.Since(t0)
	return res, nil
}

// batchResult is one decoded batch.
type batchResult struct {
	out    []byte
	window []byte // resolved last 32 KiB (context for the next batch)
	endBit int64
	final  bool
}

// decodeBatch decompresses the batch starting at startBit (a true
// block start) whose compressed extent is roughly batchBytes, given
// the resolved context that precedes it.
func decodeBatch(payload []byte, startBit int64, batchBytes int, ctx []byte, o Options) (*batchResult, error) {
	startByte := startBit / 8
	endByte := startByte + int64(batchBytes)
	if endByte > int64(len(payload)) {
		endByte = int64(len(payload))
	}
	span := endByte - startByte

	n := o.Threads
	if maxN := int(span) / o.MinChunk; n > maxN {
		n = maxN
	}
	if n < 1 {
		n = 1
	}

	// Plan chunk starts within [startByte, endByte): boundary k targets
	// startByte + k*span/n. The batch's own start is given; the batch
	// ends at the first block boundary at/after endByte (discovered by
	// the last chunk running past endByte*8 via stopBit = that sync) —
	// or more simply, the last chunk decodes until the block whose
	// start is >= endByte*8, found by an extra boundary probe.
	type bound struct {
		bit int64
		err error
	}
	bounds := make([]bound, n+1) // bounds[n] = batch stop bit (0 = none/EOF)
	bounds[0] = bound{bit: startBit}
	forEachChunk(o.Sequential, 1, n+1, func(k int) {
		f := newFinder(o)
		target := startByte + int64(k)*span/int64(n)
		bit, err := f.Next(payload, target*8)
		if err != nil {
			// No boundary after this target: the stream's tail has
			// only the final block left (or k == n at EOF). The chunk
			// merges into its predecessor / the batch runs to final.
			bounds[k] = bound{bit: -1}
			return
		}
		bounds[k] = bound{bit: bit, err: nil}
	})

	var chunks []*chunk
	prev := int64(-1)
	for k := 0; k < n; k++ {
		b := bounds[k].bit
		if b < 0 || b <= prev {
			continue
		}
		chunks = append(chunks, &chunk{startBit: b})
		prev = b
	}
	stopBit := bounds[n].bit
	for i := 0; i < len(chunks)-1; i++ {
		chunks[i].stopBit = chunks[i+1].startBit
	}
	lastChunk := chunks[len(chunks)-1]
	switch {
	case stopBit > prev:
		lastChunk.stopBit = stopBit
	case stopBit < 0:
		// No non-final block start remains after the batch span: the
		// tail holds at most the final block; decode to it.
		lastChunk.last = true
	default:
		// The only boundary at/after the batch end is the last chunk's
		// own start (an unusually large block): decode exactly one
		// block so the batch stays bounded.
		lastChunk.stopBit = prev + 1
	}

	// Pass 1: all chunks use tracked decode (the batch's own initial
	// context is known, but sharing one code path keeps resolution
	// uniform; the first chunk's symbols resolve against ctx).
	errs := make([]error, len(chunks))
	forEachChunk(o.Sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		errs[i] = c.decodeTracked(payload)
		c.m.Pass1 = time.Since(t)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	// A chunk may hit the stream's final block early (multi-member or
	// batch boundary coinciding with EOF): trim as in the whole-file
	// path.
	final := false
	for i, c := range chunks {
		if c.final {
			chunks = chunks[:i+1]
			final = true
			break
		}
	}
	// Continuity validation within the batch.
	for i := 0; i < len(chunks)-1; i++ {
		if chunks[i].endBit == chunks[i+1].startBit {
			continue
		}
		if err := verifyEquivalentStart(payload, chunks[i].endBit, chunks[i+1]); err != nil {
			return nil, fmt.Errorf("chunk %d/%d: %w", i, len(chunks), err)
		}
	}
	if !final && lastChunk.stopBit == 0 {
		return nil, ErrNoFinalBlock
	}

	// Pass 2: resolve sequentially (cheap window propagation), then
	// translate every chunk into the batch buffer.
	var total int64
	for _, c := range chunks {
		total += int64(len(c.sym))
	}
	out := make([]byte, total)
	w := ctx
	for _, c := range chunks {
		c.ctx = w
		next, err := tracked.ResolveWindow(c.sym, w)
		if err != nil {
			return nil, err
		}
		w = next
	}
	errs = make([]error, len(chunks))
	var off int64
	for _, c := range chunks {
		c.out = off
		off += int64(len(c.sym))
	}
	forEachChunk(o.Sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		dst := out[c.out : c.out+int64(len(c.sym))]
		if _, err := tracked.Resolve(c.sym, c.ctx, dst); err != nil {
			errs[i] = err
		}
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	return &batchResult{
		out:    out,
		window: w,
		endBit: chunks[len(chunks)-1].endBit,
		final:  final,
	}, nil
}
