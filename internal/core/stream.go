package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/tracked"
)

// This file holds the per-batch decoder shared by Pipeline (io.Reader
// sources) and DecompressStream (in-memory payloads): one batch is the
// unit of bounded-memory work — Threads chunks found, decoded with
// symbolic contexts, resolved against the window carried in from the
// previous batch, and translated in parallel.

// batchResult is one decoded batch.
type batchResult struct {
	out    []byte
	window []byte // resolved last 32 KiB (context for the next batch)
	endBit int64
	final  bool
}

// decodeBatch decompresses the batch starting at startBit (a true
// block start) whose compressed extent is roughly batchBytes, given
// the resolved context that precedes it. payload may be a window onto a
// longer stream: a successful decode of a prefix is identical to the
// decode over the full stream, and a decode that runs off the end of
// the window fails (the caller buffers more and retries).
func decodeBatch(payload []byte, startBit int64, batchBytes int, ctx []byte, o Options) (*batchResult, error) {
	startByte := startBit / 8
	endByte := startByte + int64(batchBytes)
	if endByte > int64(len(payload)) {
		endByte = int64(len(payload))
	}
	span := endByte - startByte

	n := o.Threads
	if maxN := int(span) / o.MinChunk; n > maxN {
		n = maxN
	}
	if n < 1 {
		n = 1
	}

	// Plan chunk starts within [startByte, endByte): boundary k targets
	// startByte + k*span/n. The batch's own start is given; the batch
	// ends at the first block boundary at/after endByte (discovered by
	// the last chunk running past endByte*8 via stopBit = that sync) —
	// or more simply, the last chunk decodes until the block whose
	// start is >= endByte*8, found by an extra boundary probe.
	type bound struct {
		bit int64
		err error
	}
	bounds := make([]bound, n+1) // bounds[n] = batch stop bit (0 = none/EOF)
	bounds[0] = bound{bit: startBit}
	forEachChunk(o.Sequential, 1, n+1, func(k int) {
		f := newFinder(o)
		target := startByte + int64(k)*span/int64(n)
		bit, err := f.Next(payload, target*8)
		if err != nil {
			// No boundary after this target: the stream's tail has
			// only the final block left (or k == n at EOF). The chunk
			// merges into its predecessor / the batch runs to final.
			bounds[k] = bound{bit: -1}
			return
		}
		bounds[k] = bound{bit: bit, err: nil}
	})

	var chunks []*chunk
	prev := int64(-1)
	for k := 0; k < n; k++ {
		b := bounds[k].bit
		if b < 0 || b <= prev {
			continue
		}
		chunks = append(chunks, &chunk{startBit: b})
		prev = b
	}
	stopBit := bounds[n].bit
	for i := 0; i < len(chunks)-1; i++ {
		chunks[i].stopBit = chunks[i+1].startBit
	}
	lastChunk := chunks[len(chunks)-1]
	switch {
	case stopBit > prev:
		lastChunk.stopBit = stopBit
	case stopBit < 0:
		// No non-final block start remains after the batch span: the
		// tail holds at most the final block; decode to it.
		lastChunk.last = true
	default:
		// The only boundary at/after the batch end is the last chunk's
		// own start (an unusually large block): decode exactly one
		// block so the batch stays bounded.
		lastChunk.stopBit = prev + 1
	}

	// Pass 1: all chunks use tracked decode (the batch's own initial
	// context is known, but sharing one code path keeps resolution
	// uniform; the first chunk's symbols resolve against ctx).
	errs := make([]error, len(chunks))
	forEachChunk(o.Sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		errs[i] = c.decodeTracked(payload)
		c.m.Pass1 = time.Since(t)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	// A chunk may hit the stream's final block early (multi-member or
	// batch boundary coinciding with EOF): trim as in the whole-file
	// path.
	final := false
	for i, c := range chunks {
		if c.final {
			chunks = chunks[:i+1]
			final = true
			break
		}
	}
	// Continuity validation within the batch.
	for i := 0; i < len(chunks)-1; i++ {
		if chunks[i].endBit == chunks[i+1].startBit {
			continue
		}
		if err := verifyEquivalentStart(payload, chunks[i].endBit, chunks[i+1]); err != nil {
			return nil, fmt.Errorf("chunk %d/%d: %w", i, len(chunks), err)
		}
	}
	if !final && lastChunk.stopBit == 0 {
		return nil, ErrNoFinalBlock
	}

	// Pass 2: resolve sequentially (cheap window propagation), then
	// translate every chunk into the batch buffer.
	var total int64
	for _, c := range chunks {
		total += int64(len(c.sym))
	}
	out := make([]byte, total)
	w := ctx
	for _, c := range chunks {
		c.ctx = w
		next, err := tracked.ResolveWindow(c.sym, w)
		if err != nil {
			return nil, err
		}
		w = next
	}
	errs = make([]error, len(chunks))
	var off int64
	for _, c := range chunks {
		c.out = off
		off += int64(len(c.sym))
	}
	forEachChunk(o.Sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		dst := out[c.out : c.out+int64(len(c.sym))]
		if _, err := tracked.Resolve(c.sym, c.ctx, dst); err != nil {
			errs[i] = err
		}
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	return &batchResult{
		out:    out,
		window: w,
		endBit: chunks[len(chunks)-1].endBit,
		final:  final,
	}, nil
}
