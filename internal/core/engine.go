package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/blockfind"
	"repro/internal/flate"
	"repro/internal/tracked"
)

// This file is the single chunk-decode engine behind every decompression
// surface of the package: the whole-file two-pass path
// (DecompressPayload treats the entire payload as one segment) and the
// streaming pipeline (each bounded batch is one segment). A segment is
// planned into chunks at confirmed block starts, pass-1 decoded in
// parallel, trimmed and continuity-checked, then pass-2 resolved against
// the context window that precedes it. Keeping one implementation means
// every speed or correctness fix lands in all paths at once.

// chunk is the per-goroutine working state.
type chunk struct {
	startBit int64
	stopBit  int64 // 0 = decode to the stream's final block
	last     bool

	// pass-1 results
	plain     []byte   // exact chunks (known initial context)
	plainBuf  []byte   // pooled backing of plain (context prefix included)
	sym       []uint16 // symbolic chunks (undetermined context)
	symRes    *tracked.Result
	endBit    int64
	final     bool
	firstSpan *flate.BlockSpan // first decoded block (symbolic chunks)
	spans     []flate.BlockSpan

	ctx []byte // resolved initial context (pass 2)
	out int64  // offset of this chunk's bytes in the segment output

	m ChunkMetrics
}

func (c *chunk) outLen() int64 {
	if c.plain != nil {
		return int64(len(c.plain))
	}
	return int64(len(c.sym))
}

// releaseScratch returns the chunk's pass-1 buffers to their pools.
// Safe to call twice; called after translation and on every failure
// path (streaming retries a failed segment with a larger window, so
// failure is routine, not exceptional).
func (c *chunk) releaseScratch() {
	if c.symRes != nil {
		c.symRes.Release()
		c.symRes, c.sym, c.firstSpan = nil, nil, nil
	}
	if c.plainBuf != nil {
		putPlainBuf(c.plainBuf)
		c.plainBuf, c.plain = nil, nil
	}
}

// ErrNoFinalBlock is returned when the stream ends without a final
// block (truncated input).
var ErrNoFinalBlock = errors.New("core: stream has no final block (truncated?)")

// segment is one decoded extent of a DEFLATE stream: the unit shared by
// the whole-file engine (one segment = the whole payload) and the
// streaming pipeline (one segment = one batch).
type segment struct {
	chunks []*chunk
	out    []byte // translated output (nil when translation was skipped)
	outLen int64  // total output bytes, valid even when out is nil
	window []byte // resolved last 32 KiB (context for the next segment)
	endBit int64  // bit offset just past the last decoded block
	final  bool   // the stream's final block was reached

	// spans are the segment's block boundaries in decode order
	// (payload-relative bits, segment-relative output offsets) when
	// segOpts.recordSpans was set; the raw material for checkpoints.
	spans []flate.BlockSpan
	// starts are chunk-start restart points with resolved windows,
	// collected in place of spans-based checkpoints when translation was
	// skipped (segOpts.chunkStarts).
	starts []Checkpoint

	syncWall     time.Duration
	pass1Wall    time.Duration
	pass2SeqWall time.Duration
	pass2ParWall time.Duration
}

// segOpts frames how one decodeSegment call materialises its results;
// it is the per-call companion of the long-lived Options.
type segOpts struct {
	// skipBelow > 0 marks the segment as (potentially) skippable: when
	// the segment's entire output lies below this segment-relative
	// offset, pass-2 translation and the output allocation are elided —
	// the decode still validates structure, measures exact sizes, and
	// propagates context windows. Segments that reach skipBelow
	// translate in full.
	skipBelow int64
	// recordSpans collects every block boundary into segment.spans.
	recordSpans bool
	// chunkStarts collects chunk-start checkpoints (with copied context
	// windows) into segment.starts for skipped segments; only starts at
	// or past segment-relative offset startsFrom are kept, so windows
	// the spacing filter would discard are never copied.
	chunkStarts bool
	startsFrom  int64
}

// release returns the segment's pooled resources (the resolved window)
// once the caller is done carrying context forward. The output buffer
// is not pooled: its ownership transfers to the caller.
func (s *segment) release() {
	tracked.PutWindow(s.window)
	s.window = nil
}

// decodeSegment is THE chunk decoder. It decompresses the segment
// starting at startBit (a true block start) whose compressed extent is
// roughly spanBytes, given the resolved 32 KiB context that precedes it
// (nil when startBit is the true start of the stream, where
// back-references before the start are invalid and rejected).
//
// payload may be a window onto a longer stream: a successful decode of
// a prefix is identical to the decode over the full stream, and a
// decode that runs off the end of the window fails (the caller buffers
// more and retries).
func decodeSegment(payload []byte, startBit int64, spanBytes int64, ctx []byte, o Options, so segOpts) (*segment, error) {
	seg := &segment{}

	// --- Sync: locate one confirmed block start per chunk boundary.
	tSync := time.Now()
	chunks, err := planSegment(payload, startBit, spanBytes, o)
	if err != nil {
		return nil, err
	}
	seg.syncWall = time.Since(tSync)

	// On any failure below, hand every chunk's pass-1 scratch back to
	// the pools: the streaming caller retries failed segments with a
	// larger window, so the failure path is as hot as the success path.
	fail := func(err error) (*segment, error) {
		for _, c := range chunks {
			c.releaseScratch()
		}
		return nil, err
	}

	// --- Pass 1: parallel decompression. The first chunk decodes
	// exactly (its context is known); later chunks decode with symbolic
	// contexts.
	tP1 := time.Now()
	if err := runPass1(payload, chunks, ctx, o.Sequential, so.recordSpans); err != nil {
		return fail(err)
	}
	seg.pass1Wall = time.Since(tP1)

	// Trim chunks past the end of the member: when the input buffer
	// extends beyond one DEFLATE stream (a multi-member gzip file, or
	// trailing data), the chunk that reaches the stream's final block
	// ends the member and later chunks — which synced into whatever
	// follows — are discarded.
	lastPlanned := chunks[len(chunks)-1]
	for i, c := range chunks {
		if c.final {
			for _, dropped := range chunks[i+1:] {
				dropped.releaseScratch()
			}
			chunks = chunks[:i+1]
			seg.final = true
			break
		}
	}
	if !seg.final && lastPlanned.last {
		// The segment was unbounded on the right (planned to run to the
		// stream's final block) yet never reached one: truncated input.
		return fail(ErrNoFinalBlock)
	}
	// Continuity check: every chunk must stop exactly where its
	// successor starts. Stored blocks make the start bit ambiguous
	// (any zero bit inside the byte-alignment padding decodes
	// identically), so on a bit mismatch we verify equivalence by
	// probing one block at the predecessor's true stop position and
	// comparing it against the successor's first decoded block. A real
	// mismatch means a confirmed-but-false block start slipped through
	// the stringent checks; we fail loudly rather than emit corrupt
	// output (callers may retry sequentially).
	for i := 0; i < len(chunks)-1; i++ {
		if chunks[i].endBit == chunks[i+1].startBit {
			continue
		}
		if err := verifyEquivalentStart(payload, chunks[i].endBit, chunks[i+1]); err != nil {
			return fail(fmt.Errorf(
				"core: chunk %d ended at bit %d but chunk %d starts at bit %d: %w",
				i, chunks[i].endBit, i+1, chunks[i+1].startBit, err))
		}
	}
	seg.chunks = chunks
	seg.endBit = chunks[len(chunks)-1].endBit

	// --- Pass 2: resolve windows sequentially, translate in parallel.
	// resolveSegment owns scratch release from here on.
	if err := resolveSegment(seg, ctx, o.Sequential, so); err != nil {
		return fail(err)
	}
	if so.recordSpans && seg.out != nil {
		// Spans feed the spacing-exact checkpoint walk, which only runs
		// over translated segments (skipped ones use seg.starts).
		collectSpans(seg)
	}
	return seg, nil
}

// collectSpans flattens the per-chunk block spans into one in-order
// segment span list: output offsets become segment-relative, and the
// first span of each non-first chunk is pinned to its predecessor's
// exact stop bit. That pinning matters for byte-identical indexes: a
// stored block's byte-alignment padding makes the candidate start bit
// ambiguous (continuity already verified the decodes are equivalent),
// and a sequential decode — the reference an index is compared against
// — always reports the predecessor's stop position.
func collectSpans(seg *segment) {
	n := 0
	for _, c := range seg.chunks {
		n += len(c.spans)
	}
	seg.spans = make([]flate.BlockSpan, 0, n)
	for i, c := range seg.chunks {
		for j, s := range c.spans {
			s.OutStart += c.out
			s.OutEnd += c.out
			if j == 0 && i > 0 {
				s.Event.StartBit = seg.chunks[i-1].endBit
			}
			seg.spans = append(seg.spans, s)
		}
	}
}

// planSegment finds the chunk block starts for the segment beginning at
// startBit with compressed extent spanBytes. Boundary k targets byte
// offset start + k*span/n; the k-th chunk begins at the first confirmed
// block start at or after that target. Boundaries that resolve to the
// same block start (or none before the next boundary) are merged. A
// terminal probe at the segment end finds the stop boundary; when none
// exists (end of stream) the last chunk decodes to the final block.
func planSegment(payload []byte, startBit int64, spanBytes int64, o Options) ([]*chunk, error) {
	startByte := startBit / 8
	endByte := startByte + spanBytes
	if endByte > int64(len(payload)) {
		endByte = int64(len(payload))
	}
	span := endByte - startByte

	n := o.Threads
	if n < 1 {
		n = 1
	}
	minChunk := o.MinChunk
	if minChunk <= 0 {
		minChunk = defaultMinChunk
	}
	if maxN := int(span) / minChunk; n > maxN {
		n = maxN
		if n < 1 {
			n = 1
		}
	}

	type found struct {
		bit int64
		dur time.Duration
		err error
	}
	// results[0] is fixed at startBit; results[n] is the terminal probe
	// locating the segment's stop boundary (-1 = none before EOF).
	results := make([]found, n+1)
	results[0] = found{bit: startBit}
	forEachChunk(o.Sequential, 1, n+1, func(k int) {
		t := time.Now()
		f := newFinder(o)
		target := startByte + int64(k)*span/int64(n)
		bit, err := f.Next(payload, target*8)
		if errors.Is(err, blockfind.ErrNotFound) {
			// No block start in the remainder of this boundary's span:
			// the chunk merges into its predecessor (or, for the
			// terminal probe, the segment runs to the final block).
			results[k] = found{bit: -1, dur: time.Since(t)}
			return
		}
		results[k] = found{bit: bit, dur: time.Since(t), err: err}
	})
	for k := 1; k <= n; k++ {
		if results[k].err != nil {
			return nil, fmt.Errorf("core: chunk %d sync: %w", k, results[k].err)
		}
	}

	var chunks []*chunk
	prev := int64(-1)
	for k := 0; k < n; k++ {
		bit := results[k].bit
		if bit < 0 || bit <= prev {
			continue // merged into predecessor
		}
		c := &chunk{startBit: bit}
		c.m.StartBit = bit
		c.m.Find = results[k].dur
		chunks = append(chunks, c)
		prev = bit
	}
	for i := 0; i < len(chunks)-1; i++ {
		chunks[i].stopBit = chunks[i+1].startBit
	}
	lastChunk := chunks[len(chunks)-1]
	switch stopBit := results[n].bit; {
	case stopBit > prev:
		lastChunk.stopBit = stopBit
	case stopBit < 0:
		// No non-final block start remains after the segment span: the
		// tail holds at most the final block; decode to it.
		lastChunk.last = true
	default:
		// The only boundary at/after the segment end is the last chunk's
		// own start (an unusually large block): decode exactly one
		// block so the segment stays bounded.
		lastChunk.stopBit = prev + 1
	}
	return chunks, nil
}

func newFinder(o Options) *blockfind.Finder {
	opts := flate.Options{Validate: true}
	if o.ValidByte != nil {
		opts.ValidByte = o.ValidByte
	}
	f := blockfind.NewWithOptions(opts)
	if o.Confirmations > 0 {
		f.Confirmations = o.Confirmations
	}
	return f
}

// forEachChunk runs fn(i) for i in [lo,hi), concurrently unless
// sequential is set.
func forEachChunk(sequential bool, lo, hi int, fn func(int)) {
	if sequential {
		for i := lo; i < hi; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := lo; i < hi; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runPass1 decompresses all chunks. The first chunk's initial context
// is known — ctx when mid-stream, empty at the true stream start — so
// it decodes exactly into bytes; the rest decode with fully
// undetermined symbolic contexts.
func runPass1(payload []byte, chunks []*chunk, ctx []byte, sequential bool, recordSpans bool) error {
	errs := make([]error, len(chunks))
	forEachChunk(sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		if i == 0 {
			errs[i] = c.decodePlain(payload, ctx, recordSpans)
		} else {
			errs[i] = c.decodeTracked(payload)
		}
		c.m.Pass1 = time.Since(t)
		c.m.EndBit = c.endBit
	})
	return errors.Join(errs...)
}

// stopAt wraps a visitor, halting cleanly at a bit boundary and
// remembering the exact boundary (the decoder has already consumed
// part of the next block's header by the time the halt fires).
type stopAt struct {
	inner     flate.Visitor
	stopBit   int64
	stoppedAt int64
}

func (s *stopAt) BlockStart(ev flate.BlockEvent) error {
	if s.stopBit > 0 && ev.StartBit >= s.stopBit {
		s.stoppedAt = ev.StartBit
		return flate.Stop
	}
	return s.inner.BlockStart(ev)
}
func (s *stopAt) Literal(b byte) error         { return s.inner.Literal(b) }
func (s *stopAt) Match(l, d int) error         { return s.inner.Match(l, d) }
func (s *stopAt) BlockEnd(nextBit int64) error { return s.inner.BlockEnd(nextBit) }

// decodePlain decodes a chunk whose initial context is known exactly:
// nil ctx means the true start of the stream (back-references before
// the start are rejected, as in a normal gunzip); otherwise the sink is
// seeded with the 32 KiB window so mid-stream references resolve to
// real bytes immediately — no symbolic detour, no pass-2 translation.
func (c *chunk) decodePlain(payload []byte, ctx []byte, recordSpans bool) error {
	r, err := bitio.NewReaderAt(payload, c.startBit)
	if err != nil {
		return err
	}
	sink := &flate.ByteSink{Out: getPlainBuf()}
	if recordSpans {
		sink.RecordBlocks()
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	if ctx == nil {
		dec.SetTrackStart(true)
	} else {
		sink.Out = append(sink.Out, ctx...)
		sink.Prefix = len(ctx)
	}
	v := flate.Visitor(sink)
	var stopper *stopAt
	if !c.last {
		stopper = &stopAt{inner: sink, stopBit: c.stopBit, stoppedAt: -1}
		v = stopper
	}
	for {
		final, err := dec.DecodeBlock(r, v)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			putPlainBuf(sink.Out)
			return fmt.Errorf("core: chunk at bit %d: %w", c.startBit, err)
		}
		if final {
			c.final = true
			break
		}
	}
	c.plainBuf = sink.Out
	c.plain = sink.Output()
	if c.plain == nil {
		// Keep the empty-output case classified as a plain chunk:
		// layout and pass 2 distinguish plain from symbolic chunks by
		// plain != nil (an empty first chunk happens when an empty
		// member precedes further members in one buffer).
		c.plain = []byte{}
	}
	if stopper != nil && stopper.stoppedAt >= 0 {
		c.endBit = stopper.stoppedAt
	} else {
		c.endBit = r.BitPos()
	}
	c.spans = sink.Blocks
	c.m.OutBytes = int64(len(c.plain))
	return nil
}

func (c *chunk) decodeTracked(payload []byte) error {
	stop := c.stopBit
	if c.last {
		stop = 0
	}
	res, err := tracked.DecodeFrom(payload, c.startBit, tracked.DecodeOptions{
		StopBit:     stop,
		RecordSpans: true,
	})
	if err != nil {
		return err
	}
	c.sym = res.Out
	c.symRes = res
	c.endBit = res.EndBit
	c.final = res.Final
	c.spans = res.Spans
	if len(res.Spans) > 0 {
		c.firstSpan = &res.Spans[0]
	}
	c.m.OutBytes = int64(len(c.sym))
	c.m.SymbolsUnresolved = int64(tracked.CountUndetermined(res.Out))
	return nil
}

// verifyEquivalentStart checks that decoding one block at trueBit (the
// predecessor's exact stop position) is indistinguishable from the
// first block the successor chunk decoded from its candidate start:
// same block type, same data bit, same end bit, same output size.
// When all four agree the two decode paths consumed the same token
// stream and the outputs concatenate exactly.
func verifyEquivalentStart(payload []byte, trueBit int64, next *chunk) error {
	if next.firstSpan == nil {
		return errors.New("successor chunk decoded no blocks")
	}
	got := next.firstSpan
	r, err := bitio.NewReaderAt(payload, trueBit)
	if err != nil {
		return err
	}
	var probe probeSink
	dec := flate.NewDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	if _, err := dec.DecodeBlock(r, &probe); err != nil {
		return fmt.Errorf("probe decode at bit %d: %w", trueBit, err)
	}
	switch {
	case probe.ev.Type != got.Event.Type:
		return fmt.Errorf("block type mismatch: %v vs %v", probe.ev.Type, got.Event.Type)
	case probe.ev.DataBit != got.Event.DataBit:
		return fmt.Errorf("data bit mismatch: %d vs %d", probe.ev.DataBit, got.Event.DataBit)
	case probe.endBit != got.EndBit:
		return fmt.Errorf("end bit mismatch: %d vs %d", probe.endBit, got.EndBit)
	case probe.bytes != got.OutEnd-got.OutStart:
		return fmt.Errorf("block size mismatch: %d vs %d", probe.bytes, got.OutEnd-got.OutStart)
	}
	return nil
}

// probeSink counts one block's output without materialising it.
type probeSink struct {
	ev     flate.BlockEvent
	endBit int64
	bytes  int64
}

func (p *probeSink) BlockStart(ev flate.BlockEvent) error { p.ev = ev; return nil }
func (p *probeSink) Literal(byte) error                   { p.bytes++; return nil }
func (p *probeSink) Match(l, _ int) error                 { p.bytes += int64(l); return nil }
func (p *probeSink) BlockEnd(nextBit int64) error         { p.endBit = nextBit; return nil }

// resolveSegment runs pass 2 over a segment: the cheap sequential sweep
// propagates each chunk's resolved final 32 KiB window to its successor
// (w_{i+1} = resolve(tail(D_i), w_i), Figure 3), then every chunk
// translates its output into its slot of the segment buffer in
// parallel. ctx is the resolved window preceding the segment (nil =
// zeros at the true stream start). On return the pass-1 scratch (plain
// buffers, symbolic buffers, per-chunk windows) is back in the pools.
//
// When so.skipBelow marks the segment as skippable and its entire
// output lies below that bound, the parallel translation (pass 2b) and
// the output allocation are elided: seg.out stays nil and only
// seg.outLen and the propagated windows survive — the two-pass skip
// that makes deep seeks cheap.
func resolveSegment(seg *segment, ctx []byte, sequential bool, so segOpts) error {
	chunks := seg.chunks

	// Layout: prefix sums of chunk output sizes.
	var total int64
	for _, c := range chunks {
		c.out = total
		total += c.outLen()
	}
	seg.outLen = total
	translate := so.skipBelow <= 0 || total > so.skipBelow
	var out []byte
	if translate {
		out = make([]byte, total)
	}

	// Pass 2a (sequential): propagate resolved windows. Every window in
	// the chain is pooled except the caller's own ctx; the final one is
	// handed to the caller as seg.window.
	releaseChain := func() {
		for _, c := range chunks {
			if len(ctx) == 0 || len(c.ctx) == 0 || &c.ctx[0] != &ctx[0] {
				tracked.PutWindow(c.ctx)
			}
			c.ctx = nil
		}
	}
	tSeq := time.Now()
	w := ctx
	if w == nil {
		w = tracked.GetWindow() // zeroed: the stream's true start
	}
	for _, c := range chunks {
		c.ctx = w
		next := tracked.GetWindow()
		var err error
		if c.plain != nil {
			shiftWindow(next, w, c.plain)
		} else {
			err = tracked.ResolveWindowInto(next, c.sym, w)
		}
		if err != nil {
			tracked.PutWindow(next)
			releaseChain()
			return err
		}
		w = next
	}
	seg.pass2SeqWall = time.Since(tSeq)

	// Skipped segments retain their chunk starts as restart points: the
	// chunk's start bit is a confirmed block boundary and c.ctx is
	// exactly the resolved 32 KiB preceding it — a free checkpoint per
	// chunk, harvested while the windows are still alive.
	if !translate && so.chunkStarts {
		for _, c := range chunks {
			if c.out < so.startsFrom {
				continue
			}
			win := make([]byte, tracked.WindowSize)
			copy(win, c.ctx)
			seg.starts = append(seg.starts, Checkpoint{Bit: c.startBit, Out: c.out, Window: win})
		}
	}

	// Pass 2b (parallel): translate every chunk into place.
	if translate {
		tPar := time.Now()
		errs := make([]error, len(chunks))
		forEachChunk(sequential, 0, len(chunks), func(i int) {
			c := chunks[i]
			t := time.Now()
			if c.plain != nil {
				copy(out[c.out:], c.plain)
			} else {
				dst := out[c.out : c.out+int64(len(c.sym))]
				if _, err := tracked.Resolve(c.sym, c.ctx, dst); err != nil {
					errs[i] = err
				}
			}
			c.m.Pass2 = time.Since(t)
		})
		seg.pass2ParWall = time.Since(tPar)
		if err := errors.Join(errs...); err != nil {
			releaseChain()
			for _, c := range chunks {
				c.releaseScratch()
			}
			tracked.PutWindow(w)
			return err
		}
	}
	releaseChain()
	for _, c := range chunks {
		c.releaseScratch()
	}
	seg.out = out
	seg.window = w
	return nil
}

// shiftWindow fills dst with the 32 KiB window that follows producing
// tail after window prev: the last WindowSize bytes of prev ++ tail.
func shiftWindow(dst, prev, tail []byte) {
	if len(tail) >= tracked.WindowSize {
		copy(dst, tail[len(tail)-tracked.WindowSize:])
		return
	}
	copy(dst, prev[len(tail):])
	copy(dst[tracked.WindowSize-len(tail):], tail)
}
