package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/blockfind"
	"repro/internal/flate"
	"repro/internal/tracked"
)

// This file is the single chunk-decode engine behind every decompression
// surface of the package: the whole-file two-pass path
// (DecompressPayload treats the entire payload as one segment) and the
// streaming pipeline (each bounded batch is one segment). A segment is
// planned into chunks at confirmed block starts, pass-1 decoded in
// parallel, trimmed and continuity-checked, then pass-2 resolved against
// the context window that precedes it. Keeping one implementation means
// every speed or correctness fix lands in all paths at once.

// chunk is the per-goroutine working state.
type chunk struct {
	startBit int64
	stopBit  int64 // 0 = decode to the stream's final block
	last     bool

	// pass-1 results
	plain     []byte   // exact chunks (known initial context)
	plainBuf  []byte   // pooled backing of plain (context prefix included)
	sym       []uint16 // symbolic chunks: full output, or trailing window (tailed)
	symRes    *tracked.Result
	plainTail []byte // exact tail-only chunks: resolved final window (pooled)
	tailed    bool   // pass 1 ran tail-only: counts and windows, no output
	outN      int64  // output length (exact in every mode)
	endBit    int64
	final     bool
	firstSpan *flate.BlockSpan // first decoded block (symbolic chunks)
	spans     []flate.BlockSpan

	// Online-captured checkpoint windows (first chunk of a cpExact
	// skip segment: its spacing walk is fully determined before pass 1,
	// so the decode pass harvests the windows itself).
	capOuts []int64
	capBits []int64
	capWins [][]byte

	ctx []byte // resolved initial context (pass 2)
	out int64  // offset of this chunk's bytes in the segment output

	m ChunkMetrics
}

func (c *chunk) outLen() int64 { return c.outN }

// releaseScratch returns the chunk's pass-1 buffers to their pools.
// Safe to call twice; called after translation and on every failure
// path (streaming retries a failed segment with a larger window, so
// failure is routine, not exceptional).
func (c *chunk) releaseScratch() {
	if c.symRes != nil {
		c.symRes.Release()
		c.symRes, c.sym, c.firstSpan = nil, nil, nil
	}
	if c.plainBuf != nil {
		putPlainBuf(c.plainBuf)
		c.plainBuf, c.plain = nil, nil
	}
	if c.plainTail != nil {
		tracked.PutWindow(c.plainTail)
		c.plainTail = nil
	}
}

// ErrNoFinalBlock is returned when the stream ends without a final
// block (truncated input).
var ErrNoFinalBlock = errors.New("core: stream has no final block (truncated?)")

// segment is one decoded extent of a DEFLATE stream: the unit shared by
// the whole-file engine (one segment = the whole payload) and the
// streaming pipeline (one segment = one batch).
type segment struct {
	chunks []*chunk
	out    []byte // translated output (nil when translation was skipped)
	outLen int64  // total output bytes, valid even when out is nil
	window []byte // resolved last 32 KiB (context for the next segment)
	endBit int64  // bit offset just past the last decoded block
	final  bool   // the stream's final block was reached

	// spans are the segment's block boundaries in decode order
	// (payload-relative bits, segment-relative output offsets) when
	// segOpts.recordSpans was set; the raw material for checkpoints.
	spans []flate.BlockSpan
	// starts are chunk-start restart points with resolved windows,
	// collected in place of spans-based checkpoints when translation was
	// skipped (segOpts.chunkStarts).
	starts []Checkpoint

	syncWall     time.Duration
	pass1Wall    time.Duration
	pass2SeqWall time.Duration
	pass2ParWall time.Duration
}

// segOpts frames how one decodeSegment call materialises its results;
// it is the per-call companion of the long-lived Options.
type segOpts struct {
	// skipBelow > 0 marks the segment as (potentially) skippable: when
	// the segment's entire output lies below this segment-relative
	// offset, pass-2 translation and the output allocation are elided —
	// the decode still validates structure, measures exact sizes, and
	// propagates context windows. Segments that reach skipBelow
	// translate in full.
	skipBelow int64
	// tailOnly runs pass 1 through the tail-only sinks: each chunk
	// keeps a running count plus its trailing 32 KiB (the only part
	// pass 2 touches for skipped output) instead of materialising the
	// full symbolic buffer — O(WindowSize) memory per chunk. If the
	// segment turns out to reach skipBelow after all, pass 1 is re-run
	// with full buffers; only the one segment straddling a skip target
	// ever pays that.
	tailOnly bool
	// recordSpans collects every block boundary into segment.spans.
	recordSpans bool
	// chunkStarts collects chunk-start checkpoints (with copied context
	// windows) into segment.starts for skipped segments; only starts at
	// or past segment-relative offset startsFrom are kept, so windows
	// the spacing filter would discard are never copied.
	chunkStarts bool
	startsFrom  int64
	// cpExact harvests spacing-exact block-boundary checkpoints (the
	// zran contract) from skipped segments into segment.starts, via a
	// bounded exact re-decode per chunk that owns a selected boundary.
	// Takes precedence over chunkStarts.
	cpExact   bool
	cpSpacing int64
}

// release returns the segment's pooled resources (the resolved window)
// once the caller is done carrying context forward. The output buffer
// is not pooled: its ownership transfers to the caller.
func (s *segment) release() {
	tracked.PutWindow(s.window)
	s.window = nil
}

// decodeSegment is THE chunk decoder. It decompresses the segment
// starting at startBit (a true block start) whose compressed extent is
// roughly spanBytes, given the resolved 32 KiB context that precedes it
// (nil when startBit is the true start of the stream, where
// back-references before the start are invalid and rejected).
//
// payload may be a window onto a longer stream: a successful decode of
// a prefix is identical to the decode over the full stream, and a
// decode that runs off the end of the window fails (the caller buffers
// more and retries).
func decodeSegment(payload []byte, startBit int64, spanBytes int64, ctx []byte, o Options, so segOpts) (*segment, error) {
	seg := &segment{}

	// --- Sync: locate one confirmed block start per chunk boundary.
	tSync := time.Now()
	planned, err := planSegment(payload, startBit, spanBytes, o)
	if err != nil {
		return nil, err
	}
	seg.syncWall = time.Since(tSync)

	// --- Pass 1 (+ trim + continuity).
	chunks, err := seg.runPasses(payload, planned, ctx, o, so, so.tailOnly)
	if err != nil {
		return nil, err
	}
	if so.tailOnly {
		var total int64
		for _, c := range chunks {
			total += c.outN
		}
		if so.skipBelow <= 0 || total > so.skipBelow {
			// The segment reaches output that must be translated, which
			// tail-only pass 1 cannot feed: decode it again with full
			// buffers. Only the one segment that straddles a skip target
			// pays this; fully skipped segments never re-run.
			for _, c := range chunks {
				c.releaseScratch()
			}
			fresh := make([]*chunk, len(planned))
			for i, c := range planned {
				fresh[i] = &chunk{startBit: c.startBit, stopBit: c.stopBit, last: c.last,
					m: ChunkMetrics{StartBit: c.startBit, Find: c.m.Find}}
			}
			seg.final = false
			if chunks, err = seg.runPasses(payload, fresh, ctx, o, so, false); err != nil {
				return nil, err
			}
		}
	}
	seg.chunks = chunks
	seg.endBit = chunks[len(chunks)-1].endBit

	// --- Pass 2: resolve windows sequentially, translate in parallel.
	// resolveSegment owns scratch release from here on; on failure it
	// leaves releaseScratch to us (idempotent for what it already
	// returned).
	if err := resolveSegment(payload, seg, ctx, o.Sequential, so); err != nil {
		for _, c := range chunks {
			c.releaseScratch()
		}
		return nil, err
	}
	if so.recordSpans && seg.out != nil {
		// Spans feed the spacing-exact checkpoint walk, which only runs
		// over translated segments (skipped ones use seg.starts).
		collectSpans(seg)
	}
	return seg, nil
}

// runPasses runs pass 1 over the planned chunks, trims past the member
// end, and verifies continuity, returning the live chunk list. On any
// failure every chunk's pass-1 scratch is back in the pools: the
// streaming caller retries failed segments with a larger window, so
// the failure path is as hot as the success path.
func (seg *segment) runPasses(payload []byte, chunks []*chunk, ctx []byte, o Options, so segOpts, tailOnly bool) ([]*chunk, error) {
	fail := func(err error) ([]*chunk, error) {
		for _, c := range chunks {
			c.releaseScratch()
		}
		return nil, err
	}

	// --- Pass 1: parallel decompression. The first chunk decodes
	// exactly (its context is known); later chunks decode with symbolic
	// contexts.
	tP1 := time.Now()
	if err := runPass1(payload, chunks, ctx, o.Sequential, so.recordSpans, tailOnly, so); err != nil {
		return fail(err)
	}
	seg.pass1Wall += time.Since(tP1)

	// Trim chunks past the end of the member: when the input buffer
	// extends beyond one DEFLATE stream (a multi-member gzip file, or
	// trailing data), the chunk that reaches the stream's final block
	// ends the member and later chunks — which synced into whatever
	// follows — are discarded.
	lastPlanned := chunks[len(chunks)-1]
	for i, c := range chunks {
		if c.final {
			for _, dropped := range chunks[i+1:] {
				dropped.releaseScratch()
			}
			chunks = chunks[:i+1]
			seg.final = true
			break
		}
	}
	if !seg.final && lastPlanned.last {
		// The segment was unbounded on the right (planned to run to the
		// stream's final block) yet never reached one: truncated input.
		return fail(ErrNoFinalBlock)
	}
	// Continuity check: every chunk must stop exactly where its
	// successor starts. Stored blocks make the start bit ambiguous
	// (any zero bit inside the byte-alignment padding decodes
	// identically), so on a bit mismatch we verify equivalence by
	// probing one block at the predecessor's true stop position and
	// comparing it against the successor's first decoded block. A real
	// mismatch means a confirmed-but-false block start slipped through
	// the stringent checks; we fail loudly rather than emit corrupt
	// output (callers may retry sequentially).
	for i := 0; i < len(chunks)-1; i++ {
		if chunks[i].endBit == chunks[i+1].startBit {
			continue
		}
		if err := verifyEquivalentStart(payload, chunks[i].endBit, chunks[i+1]); err != nil {
			return fail(fmt.Errorf(
				"core: chunk %d ended at bit %d but chunk %d starts at bit %d: %w",
				i, chunks[i].endBit, i+1, chunks[i+1].startBit, err))
		}
	}
	return chunks, nil
}

// collectSpans flattens the per-chunk block spans into one in-order
// segment span list: output offsets become segment-relative, and the
// first span of each non-first chunk is pinned to its predecessor's
// exact stop bit. That pinning matters for byte-identical indexes: a
// stored block's byte-alignment padding makes the candidate start bit
// ambiguous (continuity already verified the decodes are equivalent),
// and a sequential decode — the reference an index is compared against
// — always reports the predecessor's stop position.
func collectSpans(seg *segment) {
	n := 0
	for _, c := range seg.chunks {
		n += len(c.spans)
	}
	seg.spans = make([]flate.BlockSpan, 0, n)
	for i, c := range seg.chunks {
		for j, s := range c.spans {
			s.OutStart += c.out
			s.OutEnd += c.out
			if j == 0 && i > 0 {
				s.Event.StartBit = seg.chunks[i-1].endBit
			}
			seg.spans = append(seg.spans, s)
		}
	}
}

// planSegment finds the chunk block starts for the segment beginning at
// startBit with compressed extent spanBytes. Boundary k targets byte
// offset start + k*span/n; the k-th chunk begins at the first confirmed
// block start at or after that target. Boundaries that resolve to the
// same block start (or none before the next boundary) are merged. A
// terminal probe at the segment end finds the stop boundary; when none
// exists (end of stream) the last chunk decodes to the final block.
func planSegment(payload []byte, startBit int64, spanBytes int64, o Options) ([]*chunk, error) {
	startByte := startBit / 8
	endByte := startByte + spanBytes
	if endByte > int64(len(payload)) {
		endByte = int64(len(payload))
	}
	span := endByte - startByte

	n := o.Threads
	if n < 1 {
		n = 1
	}
	minChunk := o.MinChunk
	if minChunk <= 0 {
		minChunk = defaultMinChunk
	}
	if maxN := int(span) / minChunk; n > maxN {
		n = maxN
		if n < 1 {
			n = 1
		}
	}

	type found struct {
		bit int64
		dur time.Duration
		err error
	}
	// results[0] is fixed at startBit; results[n] is the terminal probe
	// locating the segment's stop boundary (-1 = none before EOF).
	results := make([]found, n+1)
	results[0] = found{bit: startBit}
	forEachChunk(o.Sequential, 1, n+1, func(k int) {
		t := time.Now()
		f := newFinder(o)
		target := startByte + int64(k)*span/int64(n)
		bit, err := f.Next(payload, target*8)
		if errors.Is(err, blockfind.ErrNotFound) {
			// No block start in the remainder of this boundary's span:
			// the chunk merges into its predecessor (or, for the
			// terminal probe, the segment runs to the final block).
			results[k] = found{bit: -1, dur: time.Since(t)}
			return
		}
		results[k] = found{bit: bit, dur: time.Since(t), err: err}
	})
	for k := 1; k <= n; k++ {
		if results[k].err != nil {
			return nil, fmt.Errorf("core: chunk %d sync: %w", k, results[k].err)
		}
	}

	var chunks []*chunk
	prev := int64(-1)
	for k := 0; k < n; k++ {
		bit := results[k].bit
		if bit < 0 || bit <= prev {
			continue // merged into predecessor
		}
		c := &chunk{startBit: bit}
		c.m.StartBit = bit
		c.m.Find = results[k].dur
		chunks = append(chunks, c)
		prev = bit
	}
	for i := 0; i < len(chunks)-1; i++ {
		chunks[i].stopBit = chunks[i+1].startBit
	}
	lastChunk := chunks[len(chunks)-1]
	switch stopBit := results[n].bit; {
	case stopBit > prev:
		lastChunk.stopBit = stopBit
	case stopBit < 0:
		// No non-final block start remains after the segment span: the
		// tail holds at most the final block; decode to it.
		lastChunk.last = true
	default:
		// The only boundary at/after the segment end is the last chunk's
		// own start (an unusually large block): decode exactly one
		// block so the segment stays bounded.
		lastChunk.stopBit = prev + 1
	}
	return chunks, nil
}

func newFinder(o Options) *blockfind.Finder {
	opts := flate.Options{Validate: true}
	if o.ValidByte != nil {
		opts.ValidByte = o.ValidByte
	}
	f := blockfind.NewWithOptions(opts)
	if o.Confirmations > 0 {
		f.Confirmations = o.Confirmations
	}
	return f
}

// forEachChunk runs fn(i) for i in [lo,hi), concurrently unless
// sequential is set.
func forEachChunk(sequential bool, lo, hi int, fn func(int)) {
	if sequential {
		for i := lo; i < hi; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := lo; i < hi; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runPass1 decompresses all chunks. The first chunk's initial context
// is known — ctx when mid-stream, empty at the true stream start — so
// it decodes exactly into bytes; the rest decode with fully
// undetermined symbolic contexts. In tailOnly mode every chunk keeps
// only its output count and trailing window (skip-mode pass 1), and
// when the segment harvests exact checkpoints the first chunk also
// snapshots its own checkpoint windows on the fly (its spacing walk
// depends only on so.startsFrom, known before the decode starts).
func runPass1(payload []byte, chunks []*chunk, ctx []byte, sequential bool, recordSpans, tailOnly bool, so segOpts) error {
	errs := make([]error, len(chunks))
	forEachChunk(sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		switch {
		case i == 0 && tailOnly:
			errs[i] = c.decodePlainTail(payload, ctx, recordSpans, so)
		case i == 0:
			errs[i] = c.decodePlain(payload, ctx, recordSpans)
		default:
			errs[i] = c.decodeTracked(payload, tailOnly)
		}
		c.m.Pass1 = time.Since(t)
		c.m.EndBit = c.endBit
	})
	return errors.Join(errs...)
}

// stopAt wraps a visitor, halting cleanly at a bit boundary and
// remembering the exact boundary (the decoder has already consumed
// part of the next block's header by the time the halt fires).
type stopAt struct {
	inner     flate.Visitor
	stopBit   int64
	stoppedAt int64
}

func (s *stopAt) BlockStart(ev flate.BlockEvent) error {
	if s.stopBit > 0 && ev.StartBit >= s.stopBit {
		s.stoppedAt = ev.StartBit
		return flate.Stop
	}
	return s.inner.BlockStart(ev)
}
func (s *stopAt) Literal(b byte) error         { return s.inner.Literal(b) }
func (s *stopAt) Match(l, d int) error         { return s.inner.Match(l, d) }
func (s *stopAt) BlockEnd(nextBit int64) error { return s.inner.BlockEnd(nextBit) }

// FastTokens forwards the multi-symbol fast loop to the wrapped sink
// when it supports one: the stop-bit check lives in BlockStart, so the
// token loop itself needs no interception. Without this forwarder the
// wrapper would hide the sink's fast path behind the Visitor interface
// and silently de-optimise every non-final chunk.
func (s *stopAt) FastTokens(fc *flate.FastCtx) (int64, bool, error) {
	if fs, ok := s.inner.(flate.FastTokenSink); ok {
		return fs.FastTokens(fc)
	}
	return 0, false, nil
}

// decodePlain decodes a chunk whose initial context is known exactly:
// nil ctx means the true start of the stream (back-references before
// the start are rejected, as in a normal gunzip); otherwise the sink is
// seeded with the 32 KiB window so mid-stream references resolve to
// real bytes immediately — no symbolic detour, no pass-2 translation.
func (c *chunk) decodePlain(payload []byte, ctx []byte, recordSpans bool) error {
	r, err := bitio.NewReaderAt(payload, c.startBit)
	if err != nil {
		return err
	}
	sink := &flate.ByteSink{Out: getPlainBuf()}
	if recordSpans {
		sink.RecordBlocks()
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	if ctx == nil {
		dec.SetTrackStart(true)
	} else {
		sink.Out = append(sink.Out, ctx...)
		sink.Prefix = len(ctx)
	}
	v := flate.Visitor(sink)
	var stopper *stopAt
	if !c.last {
		stopper = &stopAt{inner: sink, stopBit: c.stopBit, stoppedAt: -1}
		v = stopper
	}
	for {
		final, err := dec.DecodeBlock(r, v)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			putPlainBuf(sink.Out)
			return fmt.Errorf("core: chunk at bit %d: %w", c.startBit, err)
		}
		if final {
			c.final = true
			break
		}
	}
	c.plainBuf = sink.Out
	c.plain = sink.Output()
	if c.plain == nil {
		// Keep the empty-output case classified as a plain chunk:
		// layout and pass 2 distinguish plain from symbolic chunks by
		// plain != nil (an empty first chunk happens when an empty
		// member precedes further members in one buffer).
		c.plain = []byte{}
	}
	if stopper != nil && stopper.stoppedAt >= 0 {
		c.endBit = stopper.stoppedAt
	} else {
		c.endBit = r.BitPos()
	}
	c.spans = sink.Blocks
	c.outN = int64(len(c.plain))
	c.m.OutBytes = c.outN
	return nil
}

// decodePlainTail is decodePlain for skip mode: same exact decode (the
// initial context is known), but only the output count, block spans,
// and the resolved final window are kept — O(WindowSize) memory no
// matter how large the chunk's output is.
func (c *chunk) decodePlainTail(payload []byte, ctx []byte, recordSpans bool, so segOpts) error {
	r, err := bitio.NewReaderAt(payload, c.startBit)
	if err != nil {
		return err
	}
	sink := flate.NewTailSink(ctx)
	defer sink.Release()
	if recordSpans {
		sink.RecordBlocks()
	}
	if so.cpExact && so.cpSpacing > 0 {
		// The first chunk's checkpoint walk is known before decoding:
		// harvest its windows in this very pass instead of re-decoding.
		sink.CaptureEvery(so.startsFrom, so.cpSpacing)
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	if ctx == nil {
		dec.SetTrackStart(true)
	}
	v := flate.Visitor(sink)
	var stopper *stopAt
	if !c.last {
		stopper = &stopAt{inner: sink, stopBit: c.stopBit, stoppedAt: -1}
		v = stopper
	}
	for {
		final, err := dec.DecodeBlock(r, v)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			return fmt.Errorf("core: chunk at bit %d: %w", c.startBit, err)
		}
		if final {
			c.final = true
			break
		}
	}
	c.plainTail = tracked.GetWindow()
	sink.WindowInto(c.plainTail)
	c.tailed = true
	c.capWins = sink.Captured()
	c.capOuts, c.capBits = sink.WalkMarks()
	if stopper != nil && stopper.stoppedAt >= 0 {
		c.endBit = stopper.stoppedAt
	} else {
		c.endBit = r.BitPos()
	}
	c.spans = sink.Blocks
	c.outN = sink.Len()
	c.m.OutBytes = c.outN
	return nil
}

func (c *chunk) decodeTracked(payload []byte, tailOnly bool) error {
	stop := c.stopBit
	if c.last {
		stop = 0
	}
	opts := tracked.DecodeOptions{StopBit: stop, RecordSpans: true}
	var res *tracked.Result
	var err error
	if tailOnly {
		res, err = tracked.DecodeTailFrom(payload, c.startBit, opts)
		c.tailed = true
	} else {
		res, err = tracked.DecodeFrom(payload, c.startBit, opts)
	}
	if err != nil {
		return err
	}
	c.sym = res.Out
	c.symRes = res
	c.endBit = res.EndBit
	c.final = res.Final
	c.spans = res.Spans
	if len(res.Spans) > 0 {
		c.firstSpan = &res.Spans[0]
	}
	c.outN = res.OutLen
	c.m.OutBytes = c.outN
	// In tail mode only the trailing window survives, so this counts
	// symbols still unresolved there (skip-mode metrics are advisory).
	c.m.SymbolsUnresolved = int64(tracked.CountUndetermined(res.Out))
	return nil
}

// verifyEquivalentStart checks that decoding one block at trueBit (the
// predecessor's exact stop position) is indistinguishable from the
// first block the successor chunk decoded from its candidate start:
// same block type, same data bit, same end bit, same output size.
// When all four agree the two decode paths consumed the same token
// stream and the outputs concatenate exactly.
func verifyEquivalentStart(payload []byte, trueBit int64, next *chunk) error {
	if next.firstSpan == nil {
		return errors.New("successor chunk decoded no blocks")
	}
	got := next.firstSpan
	r, err := bitio.NewReaderAt(payload, trueBit)
	if err != nil {
		return err
	}
	var probe probeSink
	dec := flate.NewDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	if _, err := dec.DecodeBlock(r, &probe); err != nil {
		return fmt.Errorf("probe decode at bit %d: %w", trueBit, err)
	}
	switch {
	case probe.ev.Type != got.Event.Type:
		return fmt.Errorf("block type mismatch: %v vs %v", probe.ev.Type, got.Event.Type)
	case probe.ev.DataBit != got.Event.DataBit:
		return fmt.Errorf("data bit mismatch: %d vs %d", probe.ev.DataBit, got.Event.DataBit)
	case probe.endBit != got.EndBit:
		return fmt.Errorf("end bit mismatch: %d vs %d", probe.endBit, got.EndBit)
	case probe.bytes != got.OutEnd-got.OutStart:
		return fmt.Errorf("block size mismatch: %d vs %d", probe.bytes, got.OutEnd-got.OutStart)
	}
	return nil
}

// probeSink counts one block's output without materialising it.
type probeSink struct {
	ev     flate.BlockEvent
	endBit int64
	bytes  int64
}

func (p *probeSink) BlockStart(ev flate.BlockEvent) error { p.ev = ev; return nil }
func (p *probeSink) Literal(byte) error                   { p.bytes++; return nil }
func (p *probeSink) Match(l, _ int) error                 { p.bytes += int64(l); return nil }
func (p *probeSink) BlockEnd(nextBit int64) error         { p.endBit = nextBit; return nil }

// resolveSegment runs pass 2 over a segment: the cheap sequential sweep
// propagates each chunk's resolved final 32 KiB window to its successor
// (w_{i+1} = resolve(tail(D_i), w_i), Figure 3), then every chunk
// translates its output into its slot of the segment buffer in
// parallel. ctx is the resolved window preceding the segment (nil =
// zeros at the true stream start). On return the pass-1 scratch (plain
// buffers, symbolic buffers, per-chunk windows) is back in the pools.
//
// When so.skipBelow marks the segment as skippable and its entire
// output lies below that bound, the parallel translation (pass 2b) and
// the output allocation are elided: seg.out stays nil and only
// seg.outLen and the propagated windows survive — the two-pass skip
// that makes deep seeks cheap.
func resolveSegment(payload []byte, seg *segment, ctx []byte, sequential bool, so segOpts) error {
	chunks := seg.chunks

	// Layout: prefix sums of chunk output sizes.
	var total int64
	for _, c := range chunks {
		c.out = total
		total += c.outLen()
	}
	seg.outLen = total
	translate := so.skipBelow <= 0 || total > so.skipBelow
	var out []byte
	if translate {
		out = make([]byte, total)
	}

	// Pass 2a (sequential): propagate resolved windows. Every window in
	// the chain is pooled except the caller's own ctx; the final one is
	// handed to the caller as seg.window. Tail-only chunks feed the
	// chain just as well as full ones: a plain tail chunk carries its
	// resolved final window outright, and a symbolic tail chunk's
	// trailing symbols are exactly what ResolveWindowInto consumes.
	releaseChain := func() {
		for _, c := range chunks {
			if len(ctx) == 0 || len(c.ctx) == 0 || &c.ctx[0] != &ctx[0] {
				tracked.PutWindow(c.ctx)
			}
			c.ctx = nil
		}
	}
	tSeq := time.Now()
	w := ctx
	if w == nil {
		w = tracked.GetWindow() // zeroed: the stream's true start
	}
	for _, c := range chunks {
		c.ctx = w
		next := tracked.GetWindow()
		var err error
		switch {
		case c.plainTail != nil:
			copy(next, c.plainTail)
		case c.plain != nil:
			shiftWindow(next, w, c.plain)
		default:
			err = tracked.ResolveWindowInto(next, c.sym, w)
		}
		if err != nil {
			tracked.PutWindow(next)
			releaseChain()
			return err
		}
		w = next
	}
	seg.pass2SeqWall = time.Since(tSeq)

	// Skipped segments harvest restart points while the chain's windows
	// are still alive: spacing-exact block boundaries when the caller
	// needs the zran contract (index builds), otherwise the free
	// chunk-start checkpoints (each chunk's start bit is a confirmed
	// block boundary and c.ctx the resolved 32 KiB preceding it).
	if !translate {
		switch {
		case so.cpExact && so.cpSpacing > 0:
			if err := captureExactCheckpoints(payload, seg, sequential, so); err != nil {
				releaseChain()
				for _, c := range chunks {
					c.releaseScratch()
				}
				tracked.PutWindow(w)
				return err
			}
		case so.chunkStarts:
			for _, c := range chunks {
				if c.out < so.startsFrom {
					continue
				}
				win := make([]byte, tracked.WindowSize)
				copy(win, c.ctx)
				seg.starts = append(seg.starts, Checkpoint{Bit: c.startBit, Out: c.out, Window: win})
			}
		}
	}

	// Pass 2b (parallel): translate every chunk into place.
	if translate {
		tPar := time.Now()
		errs := make([]error, len(chunks))
		forEachChunk(sequential, 0, len(chunks), func(i int) {
			c := chunks[i]
			t := time.Now()
			switch {
			case c.tailed:
				// decodeSegment re-runs pass 1 in full before translating
				// a tail segment; reaching here is an engine bug.
				errs[i] = errors.New("core: internal: translating a tail-only chunk")
			case c.plain != nil:
				copy(out[c.out:], c.plain)
			default:
				dst := out[c.out : c.out+int64(len(c.sym))]
				if _, err := tracked.Resolve(c.sym, c.ctx, dst); err != nil {
					errs[i] = err
				}
			}
			c.m.Pass2 = time.Since(t)
		})
		seg.pass2ParWall = time.Since(tPar)
		if err := errors.Join(errs...); err != nil {
			releaseChain()
			for _, c := range chunks {
				c.releaseScratch()
			}
			tracked.PutWindow(w)
			return err
		}
	}
	releaseChain()
	for _, c := range chunks {
		c.releaseScratch()
	}
	seg.out = out
	seg.window = w
	return nil
}

// captureExactCheckpoints harvests spacing-exact block-boundary
// checkpoints from a skipped (tail-only) segment. Selection replays
// the exact walk the translated path and the sequential zran build
// use — the first boundary at or past the running target, then
// target = boundary + spacing — over the per-chunk block spans that
// tail-only pass 1 recorded.
//
// The same rule lives in two more places that must stay in lock-step:
// flate.TailSink.CaptureEvery (the first chunk's online harvest, which
// the cross-check below verifies against this walk at runtime) and the
// re-filter in pipeline.go's emitCheckpoints (which must select every
// entry this walk emits, or windows get captured and silently
// dropped). Change one, change all three. The windows are then materialised by one
// exact forward re-decode per chunk that owns a selected boundary
// (its resolved initial context is known after pass 2a), stopping at
// the chunk's last selected boundary. Chunks with no selected
// boundary pay nothing, and memory stays O(WindowSize) per chunk.
func captureExactCheckpoints(payload []byte, seg *segment, sequential bool, so segOpts) error {
	chunks := seg.chunks
	type capturePlan struct {
		targets []int64 // chunk-relative output offsets of selected boundaries
		bits    []int64 // normalized payload bit offsets of those boundaries
	}
	plans := make([]capturePlan, len(chunks))
	next := so.startsFrom
	selected := 0
	for i, c := range chunks {
		for j, s := range c.spans {
			segRel := c.out + s.OutStart
			if segRel < next {
				continue
			}
			bit := s.Event.StartBit
			if j == 0 && i > 0 {
				// Stored-block padding makes a candidate start bit
				// ambiguous; a sequential decode reports the
				// predecessor's stop position (see collectSpans).
				bit = chunks[i-1].endBit
			}
			plans[i].targets = append(plans[i].targets, s.OutStart)
			plans[i].bits = append(plans[i].bits, bit)
			next = segRel + so.cpSpacing
			selected++
		}
	}
	if selected == 0 {
		return nil
	}
	wins := make([][][]byte, len(chunks))
	errs := make([]error, len(chunks))
	forEachChunk(sequential, 0, len(chunks), func(i int) {
		if len(plans[i].targets) == 0 {
			return
		}
		c := chunks[i]
		if i == 0 && c.capWins != nil {
			// The first chunk harvested its windows online during pass 1;
			// cross-check its walk against the span walk before trusting
			// them (they replay the same rule over the same boundaries).
			if len(c.capOuts) != len(plans[0].targets) {
				errs[0] = fmt.Errorf("core: online capture took %d windows, walk selected %d",
					len(c.capOuts), len(plans[0].targets))
				return
			}
			for k, out := range c.capOuts {
				if out != plans[0].targets[k] || c.capBits[k] != plans[0].bits[k] {
					errs[0] = fmt.Errorf("core: online capture %d at (out %d, bit %d), walk selected (out %d, bit %d)",
						k, out, c.capBits[k], plans[0].targets[k], plans[0].bits[k])
					return
				}
			}
			wins[0] = c.capWins
			return
		}
		wins[i], errs[i] = c.captureWindows(payload, plans[i].targets)
	})
	if err := errors.Join(errs...); err != nil {
		return err
	}
	for i, c := range chunks {
		for k, win := range wins[i] {
			seg.starts = append(seg.starts, Checkpoint{
				Bit:    plans[i].bits[k],
				Out:    c.out + plans[i].targets[k],
				Window: win,
			})
		}
	}
	return nil
}

// captureWindows re-decodes the chunk exactly (pass 2a resolved its
// initial context) up to the last target offset, snapshotting the
// 32 KiB history window at each target block boundary. targets are
// strictly ascending chunk-relative output offsets of block starts.
func (c *chunk) captureWindows(payload []byte, targets []int64) ([][]byte, error) {
	r, err := bitio.NewReaderAt(payload, c.startBit)
	if err != nil {
		return nil, err
	}
	sink := flate.NewTailSink(c.ctx)
	defer sink.Release()
	sink.CaptureAt(targets)
	last := targets[len(targets)-1]
	sink.Limit = last
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	for sink.Len() < last {
		final, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			return nil, fmt.Errorf("core: window capture at bit %d: %w", c.startBit, err)
		}
		if final {
			break
		}
	}
	sink.FlushCaptures()
	if sink.CapturesMissed() > 0 {
		return nil, fmt.Errorf("core: window capture at bit %d stopped short of %s", c.startBit, sink.MissedCapture())
	}
	return sink.Captured(), nil
}

// shiftWindow fills dst with the 32 KiB window that follows producing
// tail after window prev: the last WindowSize bytes of prev ++ tail.
func shiftWindow(dst, prev, tail []byte) {
	if len(tail) >= tracked.WindowSize {
		copy(dst, tail[len(tail)-tracked.WindowSize:])
		return
	}
	copy(dst, prev[len(tail):])
	copy(dst[tracked.WindowSize-len(tail):], tail)
}
