package core

import (
	"bytes"
	"testing"

	"repro/internal/tracked"
)

// TestRunMemberSkipTo: the translation-free skip must deliver exactly
// the bytes from SkipTo onward, while the decode still accounts for the
// full member (MemberResult.Out is the total size).
func TestRunMemberSkipTo(t *testing.T) {
	data := corpusFastq(12000, 41)
	payload := corpusPayload(t, 12000, 41, 6)
	for _, skip := range []int64{0, 1, 100_000, int64(len(data)) - 777, int64(len(data)), int64(len(data)) + 5000} {
		p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
			Threads:              3,
			BatchCompressedBytes: 128 << 10,
			MinChunk:             8 << 10,
		})
		var out []byte
		res, err := p.RunMemberOpts(MemberRun{
			Emit:   func(b []byte) error { out = append(out, b...); return nil },
			SkipTo: skip,
		})
		p.Close()
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		if res.Out != int64(len(data)) {
			t.Fatalf("skip %d: member out %d, want %d", skip, res.Out, len(data))
		}
		want := []byte{}
		if skip < int64(len(data)) {
			want = data[skip:]
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("skip %d: emitted %d bytes, want %d (mismatch)", skip, len(out), len(want))
		}
		if p.OutBytes() != int64(len(data)) {
			t.Fatalf("skip %d: OutBytes %d, want %d", skip, p.OutBytes(), len(data))
		}
	}
}

// TestRunMemberCheckpoints: checkpoints emitted as a side-channel of a
// translated run must carry the true output window at their offset and
// respect the requested spacing.
func TestRunMemberCheckpoints(t *testing.T) {
	data := corpusFastq(12000, 41)
	payload := corpusPayload(t, 12000, 41, 6)
	const spacing = 200 << 10
	p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
		Threads:              3,
		BatchCompressedBytes: 256 << 10,
		MinChunk:             8 << 10,
	})
	defer p.Close()
	var cps []Checkpoint
	res, err := p.RunMemberOpts(MemberRun{
		Emit:              func([]byte) error { return nil },
		CheckpointSpacing: spacing,
		OnCheckpoint:      func(cp Checkpoint) error { cps = append(cps, cp); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != int64(len(data)) {
		t.Fatalf("member out %d, want %d", res.Out, len(data))
	}
	if len(cps) < 3 {
		t.Fatalf("only %d checkpoints over %d output bytes at spacing %d", len(cps), len(data), spacing)
	}
	if cps[0].Out != 0 {
		t.Fatalf("first checkpoint at out %d, want 0", cps[0].Out)
	}
	for i, cp := range cps {
		if i > 0 && cp.Out-cps[i-1].Out < spacing {
			t.Fatalf("checkpoints %d and %d only %d bytes apart", i-1, i, cp.Out-cps[i-1].Out)
		}
		want := make([]byte, tracked.WindowSize)
		if cp.Out >= tracked.WindowSize {
			copy(want, data[cp.Out-tracked.WindowSize:cp.Out])
		} else {
			copy(want[tracked.WindowSize-cp.Out:], data[:cp.Out])
		}
		if !bytes.Equal(cp.Window, want) {
			t.Fatalf("checkpoint %d (out %d): window mismatch", i, cp.Out)
		}
	}
}

// TestRunMemberExactCheckpointsSkipped: with ExactCheckpoints, a fully
// skipped (tail-only) run must emit exactly the checkpoints a
// translated run emits — same boundaries, same bits, same windows —
// the property that lets index builds go translation-free without
// changing a single marshalled byte. Stored-block-heavy input (level
// 0) exercises the ambiguous-start-bit normalization.
func TestRunMemberExactCheckpointsSkipped(t *testing.T) {
	for _, level := range []int{0, 6} {
		payload := corpusPayload(t, 5000, 41, level)
		collect := func(skipTo int64, exact bool) []Checkpoint {
			p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
				Threads:              3,
				BatchCompressedBytes: 128 << 10,
				MinChunk:             8 << 10,
			})
			defer p.Close()
			var cps []Checkpoint
			_, err := p.RunMemberOpts(MemberRun{
				Emit:              func([]byte) error { return nil },
				SkipTo:            skipTo,
				ExactCheckpoints:  exact,
				CheckpointSpacing: 96 << 10,
				OnCheckpoint:      func(cp Checkpoint) error { cps = append(cps, cp); return nil },
			})
			if err != nil {
				t.Fatalf("level %d skip %d: %v", level, skipTo, err)
			}
			return cps
		}
		want := collect(0, true)
		got := collect(1<<60, true) // everything skipped, tail-only pass 1
		if len(got) != len(want) {
			t.Fatalf("level %d: %d skipped checkpoints, want %d", level, len(got), len(want))
		}
		for i := range want {
			if got[i].Bit != want[i].Bit || got[i].Out != want[i].Out {
				t.Fatalf("level %d checkpoint %d: (bit %d, out %d) vs (bit %d, out %d)",
					level, i, got[i].Bit, got[i].Out, want[i].Bit, want[i].Out)
			}
			if !bytes.Equal(got[i].Window, want[i].Window) {
				t.Fatalf("level %d checkpoint %d (out %d): window mismatch", level, i, got[i].Out)
			}
		}
	}
}

// TestRunMemberResumeFromCheckpoint: a fresh pipeline positioned at a
// checkpoint's byte, seeded with its window, must reproduce the member
// tail exactly — the property the File cursor's auto-indexing relies
// on. The same applies to chunk-start checkpoints harvested during a
// skipped (translation-free) run.
func TestRunMemberResumeFromCheckpoint(t *testing.T) {
	data := corpusFastq(12000, 41)
	payload := corpusPayload(t, 12000, 41, 6)

	collect := func(skipTo int64) []Checkpoint {
		p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
			Threads:              3,
			BatchCompressedBytes: 128 << 10,
			MinChunk:             8 << 10,
		})
		defer p.Close()
		var cps []Checkpoint
		_, err := p.RunMemberOpts(MemberRun{
			Emit:              func([]byte) error { return nil },
			SkipTo:            skipTo,
			CheckpointSpacing: 64 << 10,
			OnCheckpoint:      func(cp Checkpoint) error { cps = append(cps, cp); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return cps
	}

	for name, cps := range map[string][]Checkpoint{
		"translated": collect(0),
		// Whole member in skip mode (the huge target also engages the
		// tail-only sinks): chunk-start checkpoints.
		"skipped": collect(1 << 60),
	} {
		if len(cps) < 2 {
			t.Fatalf("%s: only %d checkpoints", name, len(cps))
		}
		cp := cps[len(cps)/2]
		p := NewPipeline(bytes.NewReader(payload[cp.Bit/8:]), PipelineOptions{
			Threads:              2,
			BatchCompressedBytes: 128 << 10,
			MinChunk:             8 << 10,
		})
		var out []byte
		res, err := p.RunMemberOpts(MemberRun{
			Emit:     func(b []byte) error { out = append(out, b...); return nil },
			StartBit: cp.Bit % 8,
			Context:  cp.Window,
			OutBase:  cp.Out,
		})
		p.Close()
		if err != nil {
			t.Fatalf("%s: resume at bit %d: %v", name, cp.Bit, err)
		}
		if res.Out != int64(len(data)) {
			t.Fatalf("%s: resumed member out %d, want %d", name, res.Out, len(data))
		}
		if !bytes.Equal(out, data[cp.Out:]) {
			t.Fatalf("%s: resumed tail mismatch from out %d", name, cp.Out)
		}
	}
}
