// Package core implements pugz: exact two-pass parallel decompression
// of a DEFLATE stream (Section VI-C and Figure 3 of the paper).
//
// The compressed payload is split into n roughly equal chunks. For
// each chunk boundary a true block start is located by brute-force
// bit scanning (internal/blockfind). Pass 1 decompresses every chunk
// concurrently; chunks after the first start from a fully undetermined
// 32 KiB context made of unique symbols (internal/tracked), so their
// output is exact up to a per-chunk substitution of at most 32768
// unknown bytes. Pass 2 resolves those unknowns: a cheap sequential
// sweep propagates each chunk's final window to its successor, then
// every chunk translates its symbolic output in parallel.
//
// The result is bit-exact with sequential gunzip output, with no
// heuristics and no assumptions about the file content beyond the
// stringent text checks used for block detection.
//
// All entry points — whole-file (DecompressPayload), bounded-memory
// streaming (Pipeline, DecompressStream) — run on one shared chunk
// decoder, decodeSegment in engine.go; they differ only in how they
// frame segments and carry context windows between them.
package core

import (
	"time"

	"repro/internal/flate"
)

// Options configures the engine.
type Options struct {
	// Threads is the number of parallel chunks (and goroutines) to
	// use. Values < 1 mean 1. The effective number may be lower for
	// small inputs.
	Threads int
	// MinChunk is the minimum compressed bytes per chunk; inputs are
	// never split finer than this. Default 128 KiB.
	MinChunk int
	// Confirmations overrides the block-detection confirmation count.
	Confirmations int
	// ValidByte overrides the text-byte predicate used during block
	// detection (nil = printable ASCII + \t\n\r).
	ValidByte func(byte) bool
	// Sequential executes the per-chunk work of every phase one chunk
	// at a time instead of concurrently. Output is identical; the
	// point is measurement: on a host with fewer cores than chunks,
	// concurrent goroutines contend and their wall times say nothing
	// about per-chunk cost. Sequential mode gives each chunk the whole
	// machine, so ChunkMetrics are true isolated costs and
	// Metrics.SimulatedMakespan models a machine with one free core
	// per chunk (how Figure 5's scaling shape is reproduced here).
	Sequential bool
}

const defaultMinChunk = 128 << 10

// ChunkMetrics records per-chunk accounting, the raw material for the
// Figure 5 scaling analysis.
type ChunkMetrics struct {
	StartBit int64
	EndBit   int64
	OutBytes int64
	// SymbolsUnresolved counts symbolic entries remaining in the
	// chunk's pass-1 output (0 for chunk 0).
	SymbolsUnresolved int64
	Find              time.Duration
	Pass1             time.Duration
	Pass2             time.Duration
}

// Metrics aggregates a run.
type Metrics struct {
	Chunks       []ChunkMetrics
	SyncWall     time.Duration // locating chunk block starts
	Pass1Wall    time.Duration
	Pass2SeqWall time.Duration // sequential window propagation
	Pass2ParWall time.Duration // parallel translation
	TotalWall    time.Duration
	// PayloadEndBit is the bit offset just past the final block: the
	// gzip trailer begins at the next byte boundary.
	PayloadEndBit int64
}

// WorkSeconds returns the total CPU work across chunks (find + pass1 +
// pass2), which on a single-core host approximates the wall time and
// on a multi-core host approximates threads x wall.
func (m *Metrics) WorkSeconds() float64 {
	var d time.Duration
	for _, c := range m.Chunks {
		d += c.Find + c.Pass1 + c.Pass2
	}
	return d.Seconds()
}

// SimulatedMakespan models the wall-clock a machine with as many free
// cores as chunks would achieve: the slowest (find+pass1) chunk, plus
// the sequential window propagation, plus the slowest translation.
// It lets the scaling *shape* of Figure 5 be reproduced on hosts with
// fewer physical cores than the paper's 24 (see EXPERIMENTS.md).
func (m *Metrics) SimulatedMakespan() time.Duration {
	var maxP1, maxP2 time.Duration
	for _, c := range m.Chunks {
		if p := c.Find + c.Pass1; p > maxP1 {
			maxP1 = p
		}
		if c.Pass2 > maxP2 {
			maxP2 = c.Pass2
		}
	}
	return maxP1 + m.Pass2SeqWall + maxP2
}

// DecompressPayload decompresses a raw DEFLATE stream (no gzip
// framing) in parallel and returns the output plus run metrics. It is
// the whole-file framing of the shared segment engine: the entire
// payload is one segment starting at bit 0 with no preceding context.
func DecompressPayload(payload []byte, o Options) ([]byte, *Metrics, error) {
	t0 := time.Now()
	metrics := &Metrics{}

	n := o.Threads
	minChunk := o.MinChunk
	if minChunk <= 0 {
		minChunk = defaultMinChunk
	}
	if maxN := len(payload) / minChunk; n > maxN {
		n = maxN
	}
	if n <= 1 {
		out, endBit, err := sequentialDecode(payload)
		if err != nil {
			return nil, nil, err
		}
		m := ChunkMetrics{OutBytes: int64(len(out)), Pass1: time.Since(t0), EndBit: endBit}
		metrics.Chunks = []ChunkMetrics{m}
		metrics.Pass1Wall = m.Pass1
		metrics.TotalWall = time.Since(t0)
		metrics.PayloadEndBit = endBit
		return out, metrics, nil
	}

	seg, err := decodeSegment(payload, 0, int64(len(payload)), nil, o, segOpts{})
	if err != nil {
		return nil, nil, err
	}
	for _, c := range seg.chunks {
		metrics.Chunks = append(metrics.Chunks, c.m)
	}
	metrics.SyncWall = seg.syncWall
	metrics.Pass1Wall = seg.pass1Wall
	metrics.Pass2SeqWall = seg.pass2SeqWall
	metrics.Pass2ParWall = seg.pass2ParWall
	metrics.PayloadEndBit = seg.endBit
	metrics.TotalWall = time.Since(t0)
	seg.release()
	return seg.out, metrics, nil
}

// sequentialDecode is the single-chunk fallback: a plain exact decode
// returning the bit position just past the final block.
func sequentialDecode(payload []byte) ([]byte, int64, error) {
	out, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		return nil, 0, err
	}
	var endBit int64
	if len(spans) > 0 {
		endBit = spans[len(spans)-1].EndBit
	}
	return out, endBit, nil
}
