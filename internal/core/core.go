// Package core implements pugz: exact two-pass parallel decompression
// of a DEFLATE stream (Section VI-C and Figure 3 of the paper).
//
// The compressed payload is split into n roughly equal chunks. For
// each chunk boundary a true block start is located by brute-force
// bit scanning (internal/blockfind). Pass 1 decompresses every chunk
// concurrently; chunks after the first start from a fully undetermined
// 32 KiB context made of unique symbols (internal/tracked), so their
// output is exact up to a per-chunk substitution of at most 32768
// unknown bytes. Pass 2 resolves those unknowns: a cheap sequential
// sweep propagates each chunk's final window to its successor, then
// every chunk translates its symbolic output in parallel.
//
// The result is bit-exact with sequential gunzip output, with no
// heuristics and no assumptions about the file content beyond the
// stringent text checks used for block detection.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/blockfind"
	"repro/internal/flate"
	"repro/internal/tracked"
)

// Options configures the engine.
type Options struct {
	// Threads is the number of parallel chunks (and goroutines) to
	// use. Values < 1 mean 1. The effective number may be lower for
	// small inputs.
	Threads int
	// MinChunk is the minimum compressed bytes per chunk; inputs are
	// never split finer than this. Default 128 KiB.
	MinChunk int
	// Confirmations overrides the block-detection confirmation count.
	Confirmations int
	// ValidByte overrides the text-byte predicate used during block
	// detection (nil = printable ASCII + \t\n\r).
	ValidByte func(byte) bool
	// Sequential executes the per-chunk work of every phase one chunk
	// at a time instead of concurrently. Output is identical; the
	// point is measurement: on a host with fewer cores than chunks,
	// concurrent goroutines contend and their wall times say nothing
	// about per-chunk cost. Sequential mode gives each chunk the whole
	// machine, so ChunkMetrics are true isolated costs and
	// Metrics.SimulatedMakespan models a machine with one free core
	// per chunk (how Figure 5's scaling shape is reproduced here).
	Sequential bool
}

const defaultMinChunk = 128 << 10

// ChunkMetrics records per-chunk accounting, the raw material for the
// Figure 5 scaling analysis.
type ChunkMetrics struct {
	StartBit int64
	EndBit   int64
	OutBytes int64
	// SymbolsUnresolved counts symbolic entries remaining in the
	// chunk's pass-1 output (0 for chunk 0).
	SymbolsUnresolved int64
	Find              time.Duration
	Pass1             time.Duration
	Pass2             time.Duration
}

// Metrics aggregates a run.
type Metrics struct {
	Chunks       []ChunkMetrics
	SyncWall     time.Duration // locating chunk block starts
	Pass1Wall    time.Duration
	Pass2SeqWall time.Duration // sequential window propagation
	Pass2ParWall time.Duration // parallel translation
	TotalWall    time.Duration
	// PayloadEndBit is the bit offset just past the final block: the
	// gzip trailer begins at the next byte boundary.
	PayloadEndBit int64
}

// WorkSeconds returns the total CPU work across chunks (find + pass1 +
// pass2), which on a single-core host approximates the wall time and
// on a multi-core host approximates threads x wall.
func (m *Metrics) WorkSeconds() float64 {
	var d time.Duration
	for _, c := range m.Chunks {
		d += c.Find + c.Pass1 + c.Pass2
	}
	return d.Seconds()
}

// SimulatedMakespan models the wall-clock a machine with as many free
// cores as chunks would achieve: the slowest (find+pass1) chunk, plus
// the sequential window propagation, plus the slowest translation.
// It lets the scaling *shape* of Figure 5 be reproduced on hosts with
// fewer physical cores than the paper's 24 (see EXPERIMENTS.md).
func (m *Metrics) SimulatedMakespan() time.Duration {
	var maxP1, maxP2 time.Duration
	for _, c := range m.Chunks {
		if p := c.Find + c.Pass1; p > maxP1 {
			maxP1 = p
		}
		if c.Pass2 > maxP2 {
			maxP2 = c.Pass2
		}
	}
	return maxP1 + m.Pass2SeqWall + maxP2
}

// chunk is the per-goroutine working state.
type chunk struct {
	startBit int64
	stopBit  int64 // 0 for the last chunk (decode to final block)
	last     bool

	// pass-1 results
	plain     []byte   // chunk 0 only
	sym       []uint16 // chunks >= 1
	endBit    int64
	final     bool
	firstSpan *flate.BlockSpan // first decoded block (chunks >= 1)

	ctx []byte // resolved initial context (pass 2)
	out int64  // offset of this chunk's bytes in the final output

	m ChunkMetrics
}

// ErrNoFinalBlock is returned when the stream ends without a final
// block (truncated input).
var ErrNoFinalBlock = errors.New("core: stream has no final block (truncated?)")

// DecompressPayload decompresses a raw DEFLATE stream (no gzip
// framing) in parallel and returns the output plus run metrics.
func DecompressPayload(payload []byte, o Options) ([]byte, *Metrics, error) {
	t0 := time.Now()
	n := o.Threads
	if n < 1 {
		n = 1
	}
	minChunk := o.MinChunk
	if minChunk <= 0 {
		minChunk = defaultMinChunk
	}
	if maxN := len(payload) / minChunk; n > maxN {
		n = maxN
		if n < 1 {
			n = 1
		}
	}

	metrics := &Metrics{}

	if n == 1 {
		out, endBit, err := sequentialDecode(payload)
		if err != nil {
			return nil, nil, err
		}
		m := ChunkMetrics{OutBytes: int64(len(out)), Pass1: time.Since(t0), EndBit: endBit}
		metrics.Chunks = []ChunkMetrics{m}
		metrics.Pass1Wall = m.Pass1
		metrics.TotalWall = time.Since(t0)
		metrics.PayloadEndBit = endBit
		return out, metrics, nil
	}

	// --- Sync: locate one confirmed block start per chunk boundary.
	tSync := time.Now()
	chunks, err := planChunks(payload, n, o)
	if err != nil {
		return nil, nil, err
	}
	metrics.SyncWall = time.Since(tSync)

	// --- Pass 1: parallel decompression with symbolic contexts.
	tP1 := time.Now()
	if err := runPass1(payload, chunks, o.Sequential); err != nil {
		return nil, nil, err
	}
	metrics.Pass1Wall = time.Since(tP1)

	// Trim chunks past the end of the member: when the input buffer
	// extends beyond one DEFLATE stream (a multi-member gzip file, or
	// trailing data), the chunk that reaches the stream's final block
	// ends the member and later chunks — which synced into whatever
	// follows — are discarded.
	for i, c := range chunks {
		if c.final {
			chunks = chunks[:i+1]
			break
		}
	}
	last := chunks[len(chunks)-1]
	if !last.final {
		return nil, nil, ErrNoFinalBlock
	}
	// Continuity check: every chunk must stop exactly where its
	// successor starts. Stored blocks make the start bit ambiguous
	// (any zero bit inside the byte-alignment padding decodes
	// identically), so on a bit mismatch we verify equivalence by
	// probing one block at the predecessor's true stop position and
	// comparing it against the successor's first decoded block. A real
	// mismatch means a confirmed-but-false block start slipped through
	// the stringent checks; we fail loudly rather than emit corrupt
	// output (callers may retry sequentially).
	for i := 0; i < len(chunks)-1; i++ {
		if chunks[i].endBit == chunks[i+1].startBit {
			continue
		}
		if err := verifyEquivalentStart(payload, chunks[i].endBit, chunks[i+1]); err != nil {
			return nil, nil, fmt.Errorf(
				"core: chunk %d ended at bit %d but chunk %d starts at bit %d: %w",
				i, chunks[i].endBit, i+1, chunks[i+1].startBit, err)
		}
	}

	// --- Layout: prefix sums of chunk output sizes.
	var total int64
	for _, c := range chunks {
		c.out = total
		if c.plain != nil {
			total += int64(len(c.plain))
		} else {
			total += int64(len(c.sym))
		}
	}
	out := make([]byte, total)

	// --- Pass 2a (sequential): propagate resolved windows.
	tSeq := time.Now()
	if err := propagateWindows(chunks); err != nil {
		return nil, nil, err
	}
	metrics.Pass2SeqWall = time.Since(tSeq)

	// --- Pass 2b (parallel): translate symbolic output into place.
	tPar := time.Now()
	if err := runPass2(chunks, out, o.Sequential); err != nil {
		return nil, nil, err
	}
	metrics.Pass2ParWall = time.Since(tPar)

	for _, c := range chunks {
		metrics.Chunks = append(metrics.Chunks, c.m)
	}
	metrics.PayloadEndBit = last.endBit
	metrics.TotalWall = time.Since(t0)
	return out, metrics, nil
}

// sequentialDecode is the single-chunk fallback: a plain exact decode
// returning the bit position just past the final block.
func sequentialDecode(payload []byte) ([]byte, int64, error) {
	out, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		return nil, 0, err
	}
	var endBit int64
	if len(spans) > 0 {
		endBit = spans[len(spans)-1].EndBit
	}
	return out, endBit, nil
}

// planChunks finds the chunk block starts. Boundary k targets byte
// offset k*len/n; the k-th chunk begins at the first confirmed block
// start at or after that offset. Boundaries that resolve to the same
// block start (or none before the next boundary) are merged.
func planChunks(payload []byte, n int, o Options) ([]*chunk, error) {
	type found struct {
		bit int64
		dur time.Duration
		err error
	}
	results := make([]found, n) // results[0] is fixed at bit 0
	findOne := func(k int) {
		t := time.Now()
		f := newFinder(o)
		target := int64(k) * int64(len(payload)) / int64(n)
		bit, err := f.Next(payload, target*8)
		if errors.Is(err, blockfind.ErrNotFound) {
			// No block start in the remainder of this chunk's span:
			// the chunk will be merged into its predecessor.
			results[k] = found{bit: -1, dur: time.Since(t)}
			return
		}
		results[k] = found{bit: bit, dur: time.Since(t), err: err}
	}
	forEachChunk(o.Sequential, 1, n, findOne)
	for k := 1; k < n; k++ {
		if results[k].err != nil {
			return nil, fmt.Errorf("core: chunk %d sync: %w", k, results[k].err)
		}
	}

	var chunks []*chunk
	chunks = append(chunks, &chunk{startBit: 0})
	prev := int64(0)
	for k := 1; k < n; k++ {
		bit := results[k].bit
		if bit < 0 || bit <= prev {
			continue // merged into predecessor
		}
		c := &chunk{startBit: bit}
		c.m.StartBit = bit
		c.m.Find = results[k].dur
		chunks = append(chunks, c)
		prev = bit
	}
	for i := 0; i < len(chunks)-1; i++ {
		chunks[i].stopBit = chunks[i+1].startBit
	}
	chunks[len(chunks)-1].last = true
	return chunks, nil
}

func newFinder(o Options) *blockfind.Finder {
	opts := flate.Options{Validate: true}
	if o.ValidByte != nil {
		opts.ValidByte = o.ValidByte
	}
	f := blockfind.NewWithOptions(opts)
	if o.Confirmations > 0 {
		f.Confirmations = o.Confirmations
	}
	return f
}

// stopAt wraps a visitor, halting cleanly at a bit boundary and
// remembering the exact boundary (the decoder has already consumed
// part of the next block's header by the time the halt fires).
type stopAt struct {
	inner     flate.Visitor
	stopBit   int64
	stoppedAt int64
}

func (s *stopAt) BlockStart(ev flate.BlockEvent) error {
	if s.stopBit > 0 && ev.StartBit >= s.stopBit {
		s.stoppedAt = ev.StartBit
		return flate.Stop
	}
	return s.inner.BlockStart(ev)
}
func (s *stopAt) Literal(b byte) error         { return s.inner.Literal(b) }
func (s *stopAt) Match(l, d int) error         { return s.inner.Match(l, d) }
func (s *stopAt) BlockEnd(nextBit int64) error { return s.inner.BlockEnd(nextBit) }

// forEachChunk runs fn(i) for i in [lo,hi), concurrently unless
// sequential is set.
func forEachChunk(sequential bool, lo, hi int, fn func(int)) {
	if sequential {
		for i := lo; i < hi; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := lo; i < hi; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runPass1 decompresses all chunks.
func runPass1(payload []byte, chunks []*chunk, sequential bool) error {
	errs := make([]error, len(chunks))
	forEachChunk(sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		if i == 0 {
			errs[i] = c.decodePlain(payload)
		} else {
			errs[i] = c.decodeTracked(payload)
		}
		c.m.Pass1 = time.Since(t)
		c.m.EndBit = c.endBit
	})
	return errors.Join(errs...)
}

func (c *chunk) decodePlain(payload []byte) error {
	r, err := bitio.NewReaderAt(payload, c.startBit)
	if err != nil {
		return err
	}
	sink := &flate.ByteSink{}
	dec := flate.NewDecoder(flate.Options{})
	dec.SetTrackStart(true)
	v := flate.Visitor(sink)
	var stopper *stopAt
	if !c.last {
		stopper = &stopAt{inner: sink, stopBit: c.stopBit, stoppedAt: -1}
		v = stopper
	}
	for {
		final, err := dec.DecodeBlock(r, v)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			return fmt.Errorf("core: chunk at bit %d: %w", c.startBit, err)
		}
		if final {
			c.final = true
			break
		}
	}
	c.plain = sink.Out
	if c.plain == nil {
		// Keep the empty-output case classified as a plain chunk:
		// layout and pass 2 distinguish plain from symbolic chunks by
		// plain != nil (an empty first chunk happens when an empty
		// member precedes further members in one buffer).
		c.plain = []byte{}
	}
	if stopper != nil && stopper.stoppedAt >= 0 {
		c.endBit = stopper.stoppedAt
	} else {
		c.endBit = r.BitPos()
	}
	c.m.OutBytes = int64(len(c.plain))
	return nil
}

func (c *chunk) decodeTracked(payload []byte) error {
	stop := c.stopBit
	if c.last {
		stop = 0
	}
	res, err := tracked.DecodeFrom(payload, c.startBit, tracked.DecodeOptions{
		StopBit:     stop,
		RecordSpans: true,
	})
	if err != nil {
		return err
	}
	c.sym = res.Out
	c.endBit = res.EndBit
	c.final = res.Final
	if len(res.Spans) > 0 {
		c.firstSpan = &res.Spans[0]
	}
	c.m.OutBytes = int64(len(c.sym))
	c.m.SymbolsUnresolved = int64(tracked.CountUndetermined(res.Out))
	return nil
}

// verifyEquivalentStart checks that decoding one block at trueBit (the
// predecessor's exact stop position) is indistinguishable from the
// first block the successor chunk decoded from its candidate start:
// same block type, same data bit, same end bit, same output size.
// When all four agree the two decode paths consumed the same token
// stream and the outputs concatenate exactly.
func verifyEquivalentStart(payload []byte, trueBit int64, next *chunk) error {
	if next.firstSpan == nil {
		return errors.New("successor chunk decoded no blocks")
	}
	got := next.firstSpan
	r, err := bitio.NewReaderAt(payload, trueBit)
	if err != nil {
		return err
	}
	var probe probeSink
	dec := flate.NewDecoder(flate.Options{})
	if _, err := dec.DecodeBlock(r, &probe); err != nil {
		return fmt.Errorf("probe decode at bit %d: %w", trueBit, err)
	}
	switch {
	case probe.ev.Type != got.Event.Type:
		return fmt.Errorf("block type mismatch: %v vs %v", probe.ev.Type, got.Event.Type)
	case probe.ev.DataBit != got.Event.DataBit:
		return fmt.Errorf("data bit mismatch: %d vs %d", probe.ev.DataBit, got.Event.DataBit)
	case probe.endBit != got.EndBit:
		return fmt.Errorf("end bit mismatch: %d vs %d", probe.endBit, got.EndBit)
	case probe.bytes != got.OutEnd-got.OutStart:
		return fmt.Errorf("block size mismatch: %d vs %d", probe.bytes, got.OutEnd-got.OutStart)
	}
	return nil
}

// probeSink counts one block's output without materialising it.
type probeSink struct {
	ev     flate.BlockEvent
	endBit int64
	bytes  int64
}

func (p *probeSink) BlockStart(ev flate.BlockEvent) error { p.ev = ev; return nil }
func (p *probeSink) Literal(byte) error                   { p.bytes++; return nil }
func (p *probeSink) Match(l, _ int) error                 { p.bytes += int64(l); return nil }
func (p *probeSink) BlockEnd(nextBit int64) error         { p.endBit = nextBit; return nil }

// propagateWindows runs the sequential half of pass 2: each chunk's
// resolved final 32 KiB window becomes the next chunk's context.
func propagateWindows(chunks []*chunk) error {
	w := make([]byte, tracked.WindowSize)
	// Window after chunk 0: its last 32 KiB, zero-padded on the left
	// for very short first chunks (symbols referencing those positions
	// cannot occur in a valid stream).
	p := chunks[0].plain
	if len(p) >= tracked.WindowSize {
		copy(w, p[len(p)-tracked.WindowSize:])
	} else {
		copy(w[tracked.WindowSize-len(p):], p)
	}
	for _, c := range chunks[1:] {
		c.ctx = w
		next, err := tracked.ResolveWindow(c.sym, w)
		if err != nil {
			return err
		}
		w = next
	}
	return nil
}

// runPass2 translates every chunk into its slot of the final buffer.
func runPass2(chunks []*chunk, out []byte, sequential bool) error {
	var off int64
	for _, c := range chunks {
		c.out = off
		if c.plain != nil {
			off += int64(len(c.plain))
		} else {
			off += int64(len(c.sym))
		}
	}
	errs := make([]error, len(chunks))
	forEachChunk(sequential, 0, len(chunks), func(i int) {
		c := chunks[i]
		t := time.Now()
		if c.plain != nil {
			copy(out[c.out:], c.plain)
		} else {
			dst := out[c.out : c.out+int64(len(c.sym))]
			if _, err := tracked.Resolve(c.sym, c.ctx, dst); err != nil {
				errs[i] = err
			}
		}
		c.m.Pass2 = time.Since(t)
	})
	return errors.Join(errs...)
}
