package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/srcbuf"
	"repro/internal/tracked"
)

// PipelineOptions configures a streaming Pipeline.
type PipelineOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed size of one batch
	// (default 4 MiB x Threads, min 64 KiB).
	BatchCompressedBytes int
	// MinChunk, Confirmations, ValidByte, Sequential: as in Options.
	MinChunk      int
	Confirmations int
	ValidByte     func(byte) bool
	Sequential    bool
	// ReadSize is the capacity of a single source read issued by the
	// reader goroutine (default srcbuf.DefaultReadSize).
	ReadSize int
	// Prefetch is how many source reads the reader goroutine may run
	// ahead of decoding — the back-pressure bound (default
	// srcbuf.DefaultPrefetch).
	Prefetch int
	// MaxWindowBytes caps how far the compressed window may grow while
	// retrying a failed batch (a block straddling the window end, or
	// non-text content defeating boundary detection). Without a cap, a
	// corrupt stream would buffer the entire remaining source before
	// erroring. Default max(64 MiB, 4 x batch); always at least one
	// batch plus slack.
	MaxWindowBytes int
}

// batchSlack is how far past the nominal batch end the window is
// pre-filled, so the batch-terminating block boundary and its
// confirmation blocks are usually resident on the first decode attempt.
const batchSlack = 256 << 10

// Pipeline decompresses raw DEFLATE streams pulled from an io.Reader
// with bounded memory: a reader goroutine fills the compressed window
// (srcbuf.Window), each batch is decoded by Threads workers with
// symbolic contexts, and batches are resolved and emitted in order.
// Peak memory is O(batch x threads + window), independent of the
// source size.
//
// A Pipeline processes one or more consecutive DEFLATE streams (gzip
// members) from the same source: callers interleave their own framing
// reads on Window() with RunMember calls. It is not safe for concurrent
// use.
type Pipeline struct {
	win        *srcbuf.Window
	inner      Options
	batchBytes int
	maxWindow  int

	batches  atomic.Int64
	outBytes atomic.Int64
}

// BatchCount returns the number of batches emitted so far, across all
// RunMember calls. Safe from any goroutine.
func (p *Pipeline) BatchCount() int { return int(p.batches.Load()) }

// OutBytes returns the decompressed bytes decoded so far across all
// RunMember calls — including skip-mode output that was measured but
// never translated or emitted (File.Size relies on this). Safe from any
// goroutine.
func (p *Pipeline) OutBytes() int64 { return p.outBytes.Load() }

// NewPipeline returns a Pipeline reading compressed bytes from r.
func NewPipeline(r io.Reader, o PipelineOptions) *Pipeline {
	n := o.Threads
	if n < 1 {
		n = 1
	}
	batchBytes := o.BatchCompressedBytes
	if batchBytes <= 0 {
		batchBytes = 4 << 20 * n
	}
	if batchBytes < 64<<10 {
		batchBytes = 64 << 10
	}
	inner := Options{
		Threads:       n,
		MinChunk:      o.MinChunk,
		Confirmations: o.Confirmations,
		ValidByte:     o.ValidByte,
		Sequential:    o.Sequential,
	}
	if inner.MinChunk <= 0 {
		inner.MinChunk = defaultMinChunk
	}
	maxWindow := o.MaxWindowBytes
	if maxWindow <= 0 {
		maxWindow = 64 << 20
		if m := 4 * batchBytes; m > maxWindow {
			maxWindow = m
		}
	}
	if floor := batchBytes + batchSlack; maxWindow < floor {
		maxWindow = floor
	}
	return &Pipeline{
		win:        srcbuf.New(r, o.ReadSize, o.Prefetch),
		inner:      inner,
		batchBytes: batchBytes,
		maxWindow:  maxWindow,
	}
}

// Window exposes the pipeline's compressed window so callers can parse
// stream framing (gzip headers and trailers) from the same source
// without buffering it twice.
func (p *Pipeline) Window() *srcbuf.Window { return p.win }

// Close stops the source reader goroutine and unblocks any RunMember
// waiting on source data. Safe to call from any goroutine.
func (p *Pipeline) Close() { p.win.Close() }

// Checkpoint is a decoder restart point emitted as a side-channel of
// normal parallel decode (see MemberRun): Bit is the absolute source
// bit offset of a block boundary in the pipeline's coordinates, Out the
// member-relative decompressed offset at that boundary, and Window the
// 32 KiB of output preceding Out (zero-padded at the member start). The
// receiver owns Window.
type Checkpoint struct {
	Bit    int64
	Out    int64
	Window []byte
}

// MemberRun configures one RunMemberOpts call. The zero value (plus an
// Emit callback) decodes a member from the window's current position,
// exactly like RunMember.
type MemberRun struct {
	// Emit receives consecutive decompressed batches (each a freshly
	// allocated slice the callee may retain). Output below SkipTo is
	// never delivered. Required.
	Emit func([]byte) error

	// StartBit is the absolute source bit to start decoding at; <= 0
	// selects the window's current base. It must be a true block
	// boundary (a member start, a previous run's end bit, or an index
	// checkpoint).
	StartBit int64
	// Context is the resolved 32 KiB window preceding StartBit. nil
	// means StartBit is the member's true start (zero context,
	// back-references before it rejected).
	Context []byte
	// OutBase is the member-relative decompressed offset at StartBit
	// (non-zero only when resuming mid-member from a checkpoint).
	OutBase int64

	// SkipTo is a member-relative output offset: bytes below it are not
	// emitted, and batches that lie entirely below it skip pass-2
	// translation — the parallel two-pass skip (workers still locate
	// block boundaries, decode symbolically, and propagate context
	// windows, so everything from SkipTo onward is exact).
	SkipTo int64

	// CheckpointSpacing, with OnCheckpoint set, emits restart points at
	// least this many output bytes apart: every block boundary is a
	// candidate in translated batches, chunk starts in skipped ones.
	// OnCheckpoint runs on the pipeline's goroutine; an error aborts the
	// run.
	CheckpointSpacing int64
	OnCheckpoint      func(Checkpoint) error

	// ExactCheckpoints makes skipped (translation-free) batches emit
	// the same spacing-exact block-boundary checkpoints a translated
	// batch would — the zran contract index builds rely on — at the
	// cost of one bounded exact re-decode per chunk owning a selected
	// boundary. Without it, skipped batches contribute chunk-start
	// restart points only (cheap, and all the auto-index needs).
	ExactCheckpoints bool
}

// MemberResult reports a finished RunMemberOpts call.
type MemberResult struct {
	// EndBit is the absolute source bit offset just past the member's
	// final block; the window is left positioned at the byte containing
	// it, so the caller can resume framing at the next byte boundary.
	EndBit int64
	// Out is the member-relative decompressed offset at the member's
	// end (the member's total decompressed size when OutBase was 0).
	Out int64
}

// RunMember decodes one raw DEFLATE stream starting at the window's
// current position, invoking emit with consecutive decompressed batches
// (each a freshly allocated slice the callee may retain). It returns
// the absolute source bit offset just past the stream's final block and
// leaves the window positioned at the byte containing that bit, so the
// caller can resume framing at the following byte boundary.
func (p *Pipeline) RunMember(emit func([]byte) error) (int64, error) {
	res, err := p.RunMemberOpts(MemberRun{Emit: emit})
	return res.EndBit, err
}

// RunMemberOpts decodes one raw DEFLATE stream with the full option
// surface: mid-member resume from a checkpoint, translation-free skip
// up to a target offset, and checkpoint emission as a side-channel of
// the decode.
func (p *Pipeline) RunMemberOpts(run MemberRun) (MemberResult, error) {
	ctx := tracked.GetWindow() // zeroed: the member's true start
	if run.Context != nil {
		copy(ctx, run.Context)
	}
	defer func() { tracked.PutWindow(ctx) }()
	startBit := run.StartBit
	if startBit <= 0 {
		startBit = p.win.Base() * 8
	}
	memberOut := run.OutBase
	checkpointing := run.OnCheckpoint != nil && run.CheckpointSpacing > 0
	nextCpAt := run.OutBase // first candidate boundary checkpoints immediately
	firstBit := startBit
	for {
		so := segOpts{recordSpans: checkpointing, startsFrom: nextCpAt - memberOut}
		if checkpointing {
			if run.ExactCheckpoints {
				so.cpExact, so.cpSpacing = true, run.CheckpointSpacing
			} else {
				so.chunkStarts = true
			}
		}
		if run.SkipTo > memberOut {
			so.skipBelow = run.SkipTo - memberOut
			// Batches below the skip target can decode through the
			// tail-only sinks: O(WindowSize) per chunk instead of the
			// full output. A tail batch that turns out to reach the
			// target pays a full re-decode, so engage tail mode only
			// when the batch is clearly skippable: against DEFLATE's
			// ~1032x worst-case expansion before any of this member has
			// decoded (which still always selects measuring passes and
			// index builds, whose skip target is effectively infinite),
			// and against twice the member's observed expansion after.
			est := int64(p.batchBytes) * 1032
			if consumed := (startBit - firstBit) / 8; consumed > 0 && memberOut > run.OutBase {
				ratio := (memberOut - run.OutBase + consumed - 1) / consumed
				est = int64(p.batchBytes) * (ratio + 1) * 2
			}
			so.tailOnly = so.skipBelow > est
		}
		seg, err := p.decodeNext(startBit, ctx, so)
		if err != nil {
			return MemberResult{}, err
		}
		// Checkpoints are emitted against the pre-segment context (their
		// windows may need its tail), before it is swapped forward.
		winBase := p.win.Base()
		if checkpointing {
			if err := emitCheckpoints(run.OnCheckpoint, run.CheckpointSpacing, &nextCpAt,
				seg, ctx, memberOut, winBase); err != nil {
				seg.release()
				return MemberResult{}, err
			}
		}
		if seg.out != nil {
			b := seg.out
			if from := run.SkipTo - memberOut; from > 0 {
				b = b[from:]
			}
			if err := run.Emit(b); err != nil {
				seg.release()
				return MemberResult{}, err
			}
		}
		p.batches.Add(1)
		p.outBytes.Add(seg.outLen)
		memberOut += seg.outLen
		tracked.PutWindow(ctx)
		ctx = seg.window
		endAbs := winBase*8 + seg.endBit
		p.win.DiscardTo(endAbs / 8)
		startBit = endAbs
		if seg.final {
			return MemberResult{EndBit: endAbs, Out: memberOut}, nil
		}
	}
}

// emitCheckpoints walks one decoded segment's restart-point candidates
// — every block boundary when the segment was translated, the chunk
// starts when it was skipped — and emits those at or past *nextAt,
// advancing it by spacing each time. ctx is the resolved window
// preceding the segment, memberOut the member-relative offset of its
// first output byte, winBase the source byte offset of the payload
// window the segment's bit offsets are relative to.
func emitCheckpoints(fn func(Checkpoint) error, spacing int64, nextAt *int64,
	seg *segment, ctx []byte, memberOut, winBase int64) error {
	emit := func(bit, segRel int64, win []byte) error {
		out := memberOut + segRel
		if out < *nextAt {
			return nil
		}
		if win == nil {
			win = make([]byte, tracked.WindowSize)
			if segRel >= tracked.WindowSize {
				copy(win, seg.out[segRel-tracked.WindowSize:segRel])
			} else {
				copy(win, ctx[segRel:])
				copy(win[tracked.WindowSize-segRel:], seg.out[:segRel])
			}
		}
		if err := fn(Checkpoint{Bit: winBase*8 + bit, Out: out, Window: win}); err != nil {
			return err
		}
		*nextAt = out + spacing
		return nil
	}
	if seg.out != nil {
		for _, s := range seg.spans {
			if err := emit(s.Event.StartBit, s.OutStart, nil); err != nil {
				return err
			}
		}
		return nil
	}
	for _, cp := range seg.starts {
		if err := emit(cp.Bit, cp.Out, cp.Window); err != nil {
			return err
		}
	}
	return nil
}

// decodeNext decodes the batch beginning at absolute bit startBit,
// growing the window and retrying when a decode runs off the buffered
// data before the source is exhausted. A decode of a window prefix that
// succeeds is identical to the decode over the full stream (DEFLATE is
// prefix-deterministic), so retry is only ever needed on error. Each
// batch is one segment of the shared chunk-decode engine.
func (p *Pipeline) decodeNext(startBit int64, ctx []byte, so segOpts) (*segment, error) {
	need := p.batchBytes + batchSlack
	for {
		if err := p.win.Fill(need); errors.Is(err, srcbuf.ErrClosed) {
			return nil, err
		}
		// Decode whatever is resident even if the source just failed:
		// an io.Reader may deliver its final bytes alongside its error.
		rel := startBit - p.win.Base()*8
		seg, err := decodeSegment(p.win.Bytes(), rel, int64(p.batchBytes), ctx, p.inner, so)
		if err == nil {
			return seg, nil
		}
		if p.win.EOF() {
			if srcErr := p.win.Err(); srcErr != nil {
				return nil, srcErr
			}
			return nil, err
		}
		// The failure may be an artifact of decoding a truncated window
		// (a block straddling the window end): buffer more and retry.
		// Doubling keeps pathological retries O(log n); the cap keeps a
		// genuinely corrupt stream from buffering the whole source.
		cur := p.win.Len()
		if cur >= p.maxWindow {
			return nil, fmt.Errorf("core: batch at bit %d undecodable within %d-byte window (corrupt stream?): %w",
				startBit, cur, err)
		}
		need = 2 * cur
		if need > p.maxWindow {
			need = p.maxWindow
		}
	}
}

// StreamOptions configures bounded-memory streaming decompression of an
// in-memory payload (the slice-based veneer over Pipeline).
//
// Section VIII of the paper notes that pugz "requires the whole
// decompressed file to reside in memory, yet further engineering
// efforts could lift this limitation with little projected impact on
// performance". This is that engineering effort: the payload is
// processed in batches of Threads chunks; each batch is decompressed
// in parallel with symbolic contexts, resolved against the window
// carried from the previous batch, emitted, and freed. Peak memory is
// O(BatchBytes x expansion) instead of O(file).
type StreamOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed size of one batch
	// (default 4 MiB x Threads, min 64 KiB).
	BatchCompressedBytes int
	// MinChunk, Confirmations, ValidByte, Sequential: as in Options.
	MinChunk      int
	Confirmations int
	ValidByte     func(byte) bool
	Sequential    bool
}

// StreamResult reports a finished streaming run.
type StreamResult struct {
	Batches       int
	OutBytes      int64
	PayloadEndBit int64
	Wall          time.Duration
}

// DecompressStream decompresses a raw DEFLATE stream held in memory in
// bounded batches, invoking emit with consecutive decompressed slices.
// The concatenation of all emitted slices is byte-identical to a
// sequential decode. It is Pipeline over a bytes-like reader; use
// NewPipeline directly for true io.Reader sources.
func DecompressStream(payload []byte, o StreamOptions, emit func([]byte) error) (*StreamResult, error) {
	t0 := time.Now()
	p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
		Threads:              o.Threads,
		BatchCompressedBytes: o.BatchCompressedBytes,
		MinChunk:             o.MinChunk,
		Confirmations:        o.Confirmations,
		ValidByte:            o.ValidByte,
		Sequential:           o.Sequential,
		// The payload is already materialized; let the window cover it
		// all so degraded (non-text) streams decode like the whole-file
		// engine would.
		MaxWindowBytes: len(payload) + 1,
	})
	defer p.Close()
	endBit, err := p.RunMember(emit)
	if err != nil {
		return nil, fmt.Errorf("core: stream batch %d: %w", p.BatchCount(), err)
	}
	return &StreamResult{
		Batches:       p.BatchCount(),
		OutBytes:      p.OutBytes(),
		PayloadEndBit: endBit,
		Wall:          time.Since(t0),
	}, nil
}
