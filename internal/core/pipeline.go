package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/srcbuf"
	"repro/internal/tracked"
)

// PipelineOptions configures a streaming Pipeline.
type PipelineOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed size of one batch
	// (default 4 MiB x Threads, min 64 KiB).
	BatchCompressedBytes int
	// MinChunk, Confirmations, ValidByte, Sequential: as in Options.
	MinChunk      int
	Confirmations int
	ValidByte     func(byte) bool
	Sequential    bool
	// ReadSize is the capacity of a single source read issued by the
	// reader goroutine (default srcbuf.DefaultReadSize).
	ReadSize int
	// Prefetch is how many source reads the reader goroutine may run
	// ahead of decoding — the back-pressure bound (default
	// srcbuf.DefaultPrefetch).
	Prefetch int
	// MaxWindowBytes caps how far the compressed window may grow while
	// retrying a failed batch (a block straddling the window end, or
	// non-text content defeating boundary detection). Without a cap, a
	// corrupt stream would buffer the entire remaining source before
	// erroring. Default max(64 MiB, 4 x batch); always at least one
	// batch plus slack.
	MaxWindowBytes int
}

// batchSlack is how far past the nominal batch end the window is
// pre-filled, so the batch-terminating block boundary and its
// confirmation blocks are usually resident on the first decode attempt.
const batchSlack = 256 << 10

// Pipeline decompresses raw DEFLATE streams pulled from an io.Reader
// with bounded memory: a reader goroutine fills the compressed window
// (srcbuf.Window), each batch is decoded by Threads workers with
// symbolic contexts, and batches are resolved and emitted in order.
// Peak memory is O(batch x threads + window), independent of the
// source size.
//
// A Pipeline processes one or more consecutive DEFLATE streams (gzip
// members) from the same source: callers interleave their own framing
// reads on Window() with RunMember calls. It is not safe for concurrent
// use.
type Pipeline struct {
	win        *srcbuf.Window
	inner      Options
	batchBytes int
	maxWindow  int

	batches  atomic.Int64
	outBytes atomic.Int64
}

// BatchCount returns the number of batches emitted so far, across all
// RunMember calls. Safe from any goroutine.
func (p *Pipeline) BatchCount() int { return int(p.batches.Load()) }

// OutBytes returns the decompressed bytes emitted so far, across all
// RunMember calls. Safe from any goroutine.
func (p *Pipeline) OutBytes() int64 { return p.outBytes.Load() }

// NewPipeline returns a Pipeline reading compressed bytes from r.
func NewPipeline(r io.Reader, o PipelineOptions) *Pipeline {
	n := o.Threads
	if n < 1 {
		n = 1
	}
	batchBytes := o.BatchCompressedBytes
	if batchBytes <= 0 {
		batchBytes = 4 << 20 * n
	}
	if batchBytes < 64<<10 {
		batchBytes = 64 << 10
	}
	inner := Options{
		Threads:       n,
		MinChunk:      o.MinChunk,
		Confirmations: o.Confirmations,
		ValidByte:     o.ValidByte,
		Sequential:    o.Sequential,
	}
	if inner.MinChunk <= 0 {
		inner.MinChunk = defaultMinChunk
	}
	maxWindow := o.MaxWindowBytes
	if maxWindow <= 0 {
		maxWindow = 64 << 20
		if m := 4 * batchBytes; m > maxWindow {
			maxWindow = m
		}
	}
	if floor := batchBytes + batchSlack; maxWindow < floor {
		maxWindow = floor
	}
	return &Pipeline{
		win:        srcbuf.New(r, o.ReadSize, o.Prefetch),
		inner:      inner,
		batchBytes: batchBytes,
		maxWindow:  maxWindow,
	}
}

// Window exposes the pipeline's compressed window so callers can parse
// stream framing (gzip headers and trailers) from the same source
// without buffering it twice.
func (p *Pipeline) Window() *srcbuf.Window { return p.win }

// Close stops the source reader goroutine and unblocks any RunMember
// waiting on source data. Safe to call from any goroutine.
func (p *Pipeline) Close() { p.win.Close() }

// RunMember decodes one raw DEFLATE stream starting at the window's
// current position, invoking emit with consecutive decompressed batches
// (each a freshly allocated slice the callee may retain). It returns
// the absolute source bit offset just past the stream's final block and
// leaves the window positioned at the byte containing that bit, so the
// caller can resume framing at the following byte boundary.
func (p *Pipeline) RunMember(emit func([]byte) error) (int64, error) {
	ctx := tracked.GetWindow() // zeroed: the member's true start
	defer func() { tracked.PutWindow(ctx) }()
	startBit := p.win.Base() * 8
	for {
		seg, err := p.decodeNext(startBit, ctx)
		if err != nil {
			return 0, err
		}
		if err := emit(seg.out); err != nil {
			seg.release()
			return 0, err
		}
		p.batches.Add(1)
		p.outBytes.Add(int64(len(seg.out)))
		tracked.PutWindow(ctx)
		ctx = seg.window
		endAbs := p.win.Base()*8 + seg.endBit
		p.win.DiscardTo(endAbs / 8)
		startBit = endAbs
		if seg.final {
			return endAbs, nil
		}
	}
}

// decodeNext decodes the batch beginning at absolute bit startBit,
// growing the window and retrying when a decode runs off the buffered
// data before the source is exhausted. A decode of a window prefix that
// succeeds is identical to the decode over the full stream (DEFLATE is
// prefix-deterministic), so retry is only ever needed on error. Each
// batch is one segment of the shared chunk-decode engine.
func (p *Pipeline) decodeNext(startBit int64, ctx []byte) (*segment, error) {
	need := p.batchBytes + batchSlack
	for {
		if err := p.win.Fill(need); errors.Is(err, srcbuf.ErrClosed) {
			return nil, err
		}
		// Decode whatever is resident even if the source just failed:
		// an io.Reader may deliver its final bytes alongside its error.
		rel := startBit - p.win.Base()*8
		seg, err := decodeSegment(p.win.Bytes(), rel, int64(p.batchBytes), ctx, p.inner)
		if err == nil {
			return seg, nil
		}
		if p.win.EOF() {
			if srcErr := p.win.Err(); srcErr != nil {
				return nil, srcErr
			}
			return nil, err
		}
		// The failure may be an artifact of decoding a truncated window
		// (a block straddling the window end): buffer more and retry.
		// Doubling keeps pathological retries O(log n); the cap keeps a
		// genuinely corrupt stream from buffering the whole source.
		cur := p.win.Len()
		if cur >= p.maxWindow {
			return nil, fmt.Errorf("core: batch at bit %d undecodable within %d-byte window (corrupt stream?): %w",
				startBit, cur, err)
		}
		need = 2 * cur
		if need > p.maxWindow {
			need = p.maxWindow
		}
	}
}

// StreamOptions configures bounded-memory streaming decompression of an
// in-memory payload (the slice-based veneer over Pipeline).
//
// Section VIII of the paper notes that pugz "requires the whole
// decompressed file to reside in memory, yet further engineering
// efforts could lift this limitation with little projected impact on
// performance". This is that engineering effort: the payload is
// processed in batches of Threads chunks; each batch is decompressed
// in parallel with symbolic contexts, resolved against the window
// carried from the previous batch, emitted, and freed. Peak memory is
// O(BatchBytes x expansion) instead of O(file).
type StreamOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed size of one batch
	// (default 4 MiB x Threads, min 64 KiB).
	BatchCompressedBytes int
	// MinChunk, Confirmations, ValidByte, Sequential: as in Options.
	MinChunk      int
	Confirmations int
	ValidByte     func(byte) bool
	Sequential    bool
}

// StreamResult reports a finished streaming run.
type StreamResult struct {
	Batches       int
	OutBytes      int64
	PayloadEndBit int64
	Wall          time.Duration
}

// DecompressStream decompresses a raw DEFLATE stream held in memory in
// bounded batches, invoking emit with consecutive decompressed slices.
// The concatenation of all emitted slices is byte-identical to a
// sequential decode. It is Pipeline over a bytes-like reader; use
// NewPipeline directly for true io.Reader sources.
func DecompressStream(payload []byte, o StreamOptions, emit func([]byte) error) (*StreamResult, error) {
	t0 := time.Now()
	p := NewPipeline(bytes.NewReader(payload), PipelineOptions{
		Threads:              o.Threads,
		BatchCompressedBytes: o.BatchCompressedBytes,
		MinChunk:             o.MinChunk,
		Confirmations:        o.Confirmations,
		ValidByte:            o.ValidByte,
		Sequential:           o.Sequential,
		// The payload is already materialized; let the window cover it
		// all so degraded (non-text) streams decode like the whole-file
		// engine would.
		MaxWindowBytes: len(payload) + 1,
	})
	defer p.Close()
	endBit, err := p.RunMember(emit)
	if err != nil {
		return nil, fmt.Errorf("core: stream batch %d: %w", p.BatchCount(), err)
	}
	return &StreamResult{
		Batches:       p.BatchCount(),
		OutBytes:      p.OutBytes(),
		PayloadEndBit: endBit,
		Wall:          time.Since(t0),
	}, nil
}
