package core

import "sync"

// plainBufPool recycles the byte buffers that exact (known-context)
// chunks decode into. One is taken per segment's first chunk and
// returned after pass-2 translation copies it into the segment output,
// so steady-state streaming stops allocating a fresh multi-megabyte
// buffer per batch.
var plainBufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 256<<10) },
}

func getPlainBuf() []byte {
	return plainBufPool.Get().([]byte)[:0]
}

func putPlainBuf(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	plainBufPool.Put(buf[:0]) //nolint:staticcheck // slice header boxing is fine here
}
