package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/deflate"
	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/flate"
)

func mustCompress(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	payload, err := deflate.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// --- Cached test corpora ----------------------------------------------
//
// Generating FASTQ corpora and compressing them with this repository's
// own (deliberately simple) DEFLATE writer is the most expensive part
// of this package's suite — and under -race on a small CI box it used
// to dominate the group's runtime, because every test regenerated its
// own near-identical corpus. Tests that just need "a corpus" share
// these memoized fixtures instead; generation is deterministic, the
// data is treated as read-only, and each (shape, level) pair is built
// exactly once per test binary.

var (
	corpusMu  sync.Mutex
	corpusRaw = map[[2]int64][]byte{}
	corpusPay = map[[3]int64][]byte{}
)

// corpusFastq returns the cached FASTQ corpus for (reads, seed).
func corpusFastq(reads int, seed int64) []byte {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	key := [2]int64{int64(reads), seed}
	if b, ok := corpusRaw[key]; ok {
		return b
	}
	b := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: seed})
	corpusRaw[key] = b
	return b
}

// corpusPayload returns the cached DEFLATE payload of corpusFastq at
// the given level.
func corpusPayload(t testing.TB, reads int, seed int64, level int) []byte {
	t.Helper()
	data := corpusFastq(reads, seed)
	corpusMu.Lock()
	defer corpusMu.Unlock()
	key := [3]int64{int64(reads), seed, int64(level)}
	if p, ok := corpusPay[key]; ok {
		return p
	}
	p, err := deflate.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	corpusPay[key] = p
	return p
}

// TestParallelMatchesSequential is the headline exactness property:
// for every corpus, level, and thread count, the two-pass parallel
// output must be byte-identical to a sequential decode.
func TestParallelMatchesSequential(t *testing.T) {
	corpora := map[string][]byte{
		"fastq": fastq.Generate(fastq.GenOptions{Reads: 8000, Seed: 3}),
		"dna":   dna.Random(1_000_000, 4),
	}
	for name, data := range corpora {
		for _, level := range []int{1, 6, 9} {
			payload := mustCompress(t, data, level)
			want, err := flate.DecompressAll(payload, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, data) {
				t.Fatal("reference decode disagrees with input")
			}
			for _, threads := range []int{1, 2, 3, 4, 8} {
				got, m, err := DecompressPayload(payload, Options{
					Threads:  threads,
					MinChunk: 4 << 10, // force real splits on small inputs
				})
				if err != nil {
					t.Fatalf("%s level %d threads %d: %v", name, level, threads, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s level %d threads %d: output mismatch (%d vs %d bytes)",
						name, level, threads, len(got), len(want))
				}
				if threads > 1 && len(m.Chunks) < 2 && len(payload) > 64<<10 {
					t.Errorf("%s level %d threads %d: expected multiple chunks, got %d",
						name, level, threads, len(m.Chunks))
				}
			}
		}
	}
}

// TestChunkMetricsConsistent checks the metrics bookkeeping: chunk
// output bytes must sum to the total output.
func TestChunkMetricsConsistent(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 6000, Seed: 9})
	payload := mustCompress(t, data, 6)
	out, m, err := DecompressPayload(payload, Options{Threads: 4, MinChunk: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range m.Chunks {
		sum += c.OutBytes
	}
	if sum != int64(len(out)) {
		t.Fatalf("chunk bytes sum %d != output %d", sum, len(out))
	}
	if m.SimulatedMakespan() <= 0 {
		t.Fatal("simulated makespan must be positive")
	}
	if m.WorkSeconds() <= 0 {
		t.Fatal("work seconds must be positive")
	}
}

// TestSymbolsGetResolved checks that mid-stream chunks actually start
// undetermined and that pass 2 resolves everything (implicitly: output
// equality above), and that at level 6 some symbols remain after pass
// 1 — the situation that makes the second pass necessary.
func TestSymbolsGetResolved(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 8000, Seed: 5})
	payload := mustCompress(t, data, 6)
	_, m, err := DecompressPayload(payload, Options{Threads: 4, MinChunk: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Chunks) < 2 {
		t.Skip("input too small to split")
	}
	anySymbols := false
	for _, c := range m.Chunks[1:] {
		if c.SymbolsUnresolved > 0 {
			anySymbols = true
		}
	}
	if !anySymbols {
		t.Error("expected at least one chunk with unresolved symbols after pass 1")
	}
}

// TestSingleThreadFallback exercises the sequential path.
func TestSingleThreadFallback(t *testing.T) {
	data := dna.Random(100_000, 6)
	payload := mustCompress(t, data, 6)
	got, m, err := DecompressPayload(payload, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential output mismatch")
	}
	if len(m.Chunks) != 1 {
		t.Fatalf("want 1 chunk, got %d", len(m.Chunks))
	}
}

// TestTruncatedStream must fail loudly, not return partial data.
func TestTruncatedStream(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 5000, Seed: 8})
	payload := mustCompress(t, data, 6)
	trunc := payload[:len(payload)/2]
	if _, _, err := DecompressPayload(trunc, Options{Threads: 4, MinChunk: 4 << 10}); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

// TestStoredLevel exercises parallel decode of level-0 (stored-only)
// streams, where block detection must sync on stored-block headers.
func TestStoredLevel(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 4000, Seed: 10})
	payload := mustCompress(t, data, 0)
	got, _, err := DecompressPayload(payload, Options{Threads: 4, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored-level output mismatch")
	}
}
