package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/fastq"
)

// TestPipelineWindowGrowthOnBinaryData exercises decodeNext's
// grow-and-retry path deterministically: high-entropy binary content
// fails the stringent text checks block detection relies on, so no
// batch-terminating boundary is ever confirmed, every batch decode
// runs off the window end, and the pipeline must keep growing the
// window until the member is resident — degrading to a sequential
// whole-member decode but still producing exact output.
func TestPipelineWindowGrowthOnBinaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 384<<10)
	rng.Read(data)
	payload := mustCompress(t, data, 1)
	if len(payload) < 3*(64<<10) {
		t.Fatalf("payload too small (%d) to force growth", len(payload))
	}
	var got []byte
	res, err := DecompressStream(payload, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 1, // clamped to the 64 KiB floor
		MinChunk:             8 << 10,
	}, func(p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("binary stream mismatch (%d vs %d bytes)", len(got), len(data))
	}
	if res.Batches != 1 {
		t.Fatalf("expected the fallback to decode one grown batch, got %d", res.Batches)
	}
}

// repeatReader yields the same byte forever — a socket that keeps
// producing bytes that will never decode.
type repeatReader struct{ b byte }

func (r repeatReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.b
	}
	return len(p), nil
}

// TestPipelineWindowCapOnCorruptStream: a stream that can never decode
// must hit the MaxWindowBytes cap and error out — not buffer the
// entire (here: endless) source, and not hang.
func TestPipelineWindowCapOnCorruptStream(t *testing.T) {
	// 0xff everywhere reads as BTYPE=3 (reserved) at every batch start:
	// undecodable, while the source never reaches EOF.
	const capBytes = 512 << 10
	p := NewPipeline(repeatReader{0xff}, PipelineOptions{
		Threads:              2,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
		MaxWindowBytes:       capBytes,
		ReadSize:             64 << 10,
	})
	defer p.Close()
	_, err := p.RunMember(func([]byte) error { return nil })
	if err == nil {
		t.Fatal("undecodable stream decoded")
	}
	if max := p.Window().MaxBuffered(); max > capBytes+2*(64<<10) {
		t.Fatalf("window grew to %d despite %d cap", max, capBytes)
	}
}

// TestPipelineInterleavedMembers drives RunMember twice on one source
// with framing bytes between the streams, the way the gzip layer does:
// the window must come back positioned exactly at each member's end.
func TestPipelineInterleavedMembers(t *testing.T) {
	a := fastq.Generate(fastq.GenOptions{Reads: 5000, Seed: 61})
	b := fastq.Generate(fastq.GenOptions{Reads: 5000, Seed: 62})
	pa := mustCompress(t, a, 6)
	pb := mustCompress(t, b, 6)
	frame := []byte{0xde, 0xad, 0xbe, 0xef} // stand-in trailer+header
	src := append(append(append([]byte{}, pa...), frame...), pb...)

	p := NewPipeline(bytes.NewReader(src), PipelineOptions{
		Threads:              3,
		BatchCompressedBytes: 128 << 10,
		MinChunk:             8 << 10,
	})
	defer p.Close()

	var out []byte
	collect := func(buf []byte) error { out = append(out, buf...); return nil }

	end, err := p.RunMember(collect)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, a) {
		t.Fatalf("member A mismatch (%d vs %d bytes)", len(out), len(a))
	}
	// Skip the padding bits and the framing, as the gzip layer would.
	w := p.Window()
	w.DiscardTo((end + 7) / 8)
	got, err := w.Peek(len(frame))
	if err != nil || !bytes.Equal(got, frame) {
		t.Fatalf("framing bytes not at window head: %q, %v", got, err)
	}
	w.Discard(len(frame))

	out = nil
	if _, err := p.RunMember(collect); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, b) {
		t.Fatalf("member B mismatch (%d vs %d bytes)", len(out), len(b))
	}
	if p.BatchCount() < 2 {
		t.Fatalf("batches = %d across two members", p.BatchCount())
	}
}
