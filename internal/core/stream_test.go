package core

import (
	"bytes"
	"testing"

	"repro/internal/dna"
)

func TestStreamMatchesWholeFile(t *testing.T) {
	data := corpusFastq(12000, 41)
	for _, level := range []int{1, 6, 9} {
		payload := corpusPayload(t, 12000, 41, level)
		var got []byte
		res, err := DecompressStream(payload, StreamOptions{
			Threads:              4,
			BatchCompressedBytes: 192 << 10,
			MinChunk:             8 << 10,
		}, func(p []byte) error {
			got = append(got, p...)
			return nil
		})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("level %d: mismatch (%d vs %d bytes)", level, len(got), len(data))
		}
		if res.Batches < 2 {
			t.Fatalf("level %d: expected multiple batches, got %d", level, res.Batches)
		}
		if res.OutBytes != int64(len(data)) {
			t.Fatalf("level %d: OutBytes %d", level, res.OutBytes)
		}
		// The end bit must agree with the whole-file engine.
		_, m, err := DecompressPayload(payload, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.PayloadEndBit != m.PayloadEndBit {
			t.Fatalf("level %d: end bit %d vs %d", level, res.PayloadEndBit, m.PayloadEndBit)
		}
	}
}

func TestStreamBatchesBoundMemory(t *testing.T) {
	data := dna.Random(3_000_000, 42)
	payload := mustCompress(t, data, 6)
	maxBatch := 0
	var got []byte
	_, err := DecompressStream(payload, StreamOptions{
		Threads:              3,
		BatchCompressedBytes: 128 << 10,
		MinChunk:             8 << 10,
	}, func(p []byte) error {
		if len(p) > maxBatch {
			maxBatch = len(p)
		}
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	// A 128 KiB compressed batch cannot legitimately inflate to more
	// than ~20x for DNA-like data; the bound proves batches are
	// actually bounded rather than one giant emit.
	if maxBatch > 4<<20 {
		t.Fatalf("batch of %d bytes: batching is not bounding memory", maxBatch)
	}
}

func TestStreamEmitError(t *testing.T) {
	data := dna.Random(500_000, 43)
	payload := mustCompress(t, data, 6)
	wantErr := bytes.ErrTooLarge // any sentinel
	_, err := DecompressStream(payload, StreamOptions{
		Threads:              2,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
	}, func(p []byte) error {
		return wantErr
	})
	if err == nil {
		t.Fatal("emit error not propagated")
	}
}

func TestStreamTruncated(t *testing.T) {
	data := dna.Random(500_000, 44)
	payload := mustCompress(t, data, 6)
	_, err := DecompressStream(payload[:len(payload)/2], StreamOptions{
		Threads:              2,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
	}, func(p []byte) error { return nil })
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestStreamSingleBatch(t *testing.T) {
	data := dna.Random(100_000, 45)
	payload := mustCompress(t, data, 6)
	var got []byte
	res, err := DecompressStream(payload, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 64 << 20, // whole file in one batch
	}, func(p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 1 {
		t.Fatalf("batches %d", res.Batches)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestStreamSequentialMode(t *testing.T) {
	data := dna.Random(800_000, 46)
	payload := mustCompress(t, data, 6)
	var got []byte
	_, err := DecompressStream(payload, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 128 << 10,
		MinChunk:             8 << 10,
		Sequential:           true,
	}, func(p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential-mode mismatch")
	}
}
