package gzipx

import (
	"bytes"
	"errors"
	"testing"
)

// TestReadHeaderAgreesWithParseHeader: the incremental reader-based
// parser must consume exactly the bytes ParseHeader counts and yield
// the same fields, for every optional-field combination.
func TestReadHeaderAgreesWithParseHeader(t *testing.T) {
	payload := []byte{0x03, 0x00} // empty final block; content is irrelevant
	cases := map[string][]byte{
		"plain": mustMember(t, Options{Level: 6}),
		"named": mustMember(t, Options{Level: 1, Name: "reads.fastq"}),
	}
	// Hand-built header with FEXTRA, FCOMMENT and FHCRC, which
	// CompressOpts never emits.
	full := []byte{
		0x1f, 0x8b, 8, flgFEXTRA | flgFNAME | flgFCOMMENT | flgFHCRC,
		0, 0, 0, 0, 0, 255,
		3, 0, 'x', 'y', 'z', // FEXTRA: XLEN=3
		'n', 'a', 'm', 'e', 0, // FNAME
		'c', 0, // FCOMMENT
		0xaa, 0xbb, // FHCRC (unverified)
	}
	cases["full"] = append(append([]byte{}, full...), payload...)

	for name, data := range cases {
		want, err := ParseHeader(data)
		if err != nil {
			t.Fatalf("%s: ParseHeader: %v", name, err)
		}
		br := bytes.NewReader(data)
		got, err := ReadHeader(br)
		if err != nil {
			t.Fatalf("%s: ReadHeader: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: %+v != %+v", name, got, want)
		}
		if consumed := len(data) - br.Len(); consumed != want.HeaderLen {
			t.Fatalf("%s: consumed %d bytes, header is %d", name, consumed, want.HeaderLen)
		}
	}
}

func TestReadHeaderErrors(t *testing.T) {
	good := mustMember(t, Options{Level: 6, Name: "n"})
	for name, data := range map[string][]byte{
		"empty":         nil,
		"short":         good[:4],
		"mid-name":      good[:11],
		"bad magic":     []byte("PK\x03\x04 not gzip"),
		"bad method":    {0x1f, 0x8b, 7, 0, 0, 0, 0, 0, 0, 255},
		"reserved flag": {0x1f, 0x8b, 8, 0x80, 0, 0, 0, 0, 0, 255},
	} {
		if _, err := ReadHeader(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := ReadHeader(bytes.NewReader(good[:4])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated header: %v", err)
	}
}

func TestReadTrailer(t *testing.T) {
	m := mustMember(t, Options{Level: 6})
	tr := m[len(m)-8:]
	crc, isize, err := ReadTrailer(bytes.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the slice-based trailer reads Decompress does.
	if out, err := Decompress(m); err != nil || uint32(len(out)) != isize {
		t.Fatalf("isize %d disagrees (err %v)", isize, err)
	}
	if crc == 0 {
		t.Fatal("zero CRC for non-empty content")
	}
	if _, _, err := ReadTrailer(bytes.NewReader(tr[:5])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short trailer: %v", err)
	}
}

func mustMember(t *testing.T, o Options) []byte {
	t.Helper()
	gz, err := CompressOpts([]byte("GATTACA GATTACA GATTACA\n"), o)
	if err != nil {
		t.Fatal(err)
	}
	return gz
}
