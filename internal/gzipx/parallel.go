package gzipx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/bitio"
	"repro/internal/deflate"
)

// DefaultParallelChunk is the input bytes compressed per goroutine
// (pigz uses 128 KiB; a larger chunk costs less ratio because the LZ
// window resets at every chunk boundary).
const DefaultParallelChunk = 256 << 10

// ParallelOptions tunes CompressParallel.
type ParallelOptions struct {
	Level   int
	Threads int
	// ChunkSize is the uncompressed bytes per independent chunk
	// (default DefaultParallelChunk, minimum 32 KiB).
	ChunkSize int
	Name      string
}

// CompressParallel produces a gzip member using pigz-style parallel
// compression: the input is cut into chunks, each chunk is deflated
// independently (its own LZ window) and terminated with an empty
// stored "sync" block so segments concatenate on byte boundaries; the
// last segment carries BFINAL. The output is a perfectly ordinary
// single-member gzip file — gunzip, the stdlib, and pugz all read it —
// demonstrating the introduction's point that compression
// parallelises easily while decompression does not.
func CompressParallel(data []byte, o ParallelOptions) ([]byte, error) {
	if o.Level < 0 || o.Level > 9 {
		return nil, fmt.Errorf("gzipx: level %d out of range [0,9]", o.Level)
	}
	chunk := o.ChunkSize
	if chunk <= 0 {
		chunk = DefaultParallelChunk
	}
	if chunk < 32<<10 {
		chunk = 32 << 10
	}
	threads := o.Threads
	if threads < 1 {
		threads = 1
	}

	nChunks := (len(data) + chunk - 1) / chunk
	if nChunks == 0 {
		nChunks = 1 // empty input still emits one (final) segment
	}
	segments := make([][]byte, nChunks)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := t; i < nChunks; i += threads {
				start := i * chunk
				end := start + chunk
				if end > len(data) {
					end = len(data)
				}
				w := bitio.NewWriter((end-start)/2 + 64)
				final := i == nChunks-1
				if err := deflate.CompressSegment(w, data[start:end], o.Level, final); err != nil {
					errs[t] = err
					return
				}
				segments[i] = w.Bytes()
			}
		}(t)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	flg := byte(0)
	if o.Name != "" {
		flg |= flgFNAME
	}
	total := 10 + len(o.Name) + 8
	for _, s := range segments {
		total += len(s)
	}
	out := make([]byte, 0, total)
	out = append(out, id1, id2, cmDeflate, flg,
		0, 0, 0, 0,
		xflForLevel(o.Level), 255)
	if o.Name != "" {
		out = append(out, o.Name...)
		out = append(out, 0)
	}
	for _, s := range segments {
		out = append(out, s...)
	}
	var tr [8]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint32(tr[4:8], uint32(len(data)))
	out = append(out, tr[:]...)
	return out, nil
}
