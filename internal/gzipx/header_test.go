package gzipx

import (
	"bytes"
	stdgzip "compress/gzip"
	"errors"
	"testing"
)

// buildHeader assembles a raw gzip header with the given flag fields.
func buildHeader(flg byte, extra, name, comment []byte, hcrc bool) []byte {
	h := []byte{0x1f, 0x8b, 8, flg, 0, 0, 0, 0, 0, 255}
	if flg&flgFEXTRA != 0 {
		h = append(h, byte(len(extra)), byte(len(extra)>>8))
		h = append(h, extra...)
	}
	if flg&flgFNAME != 0 {
		h = append(h, name...)
		h = append(h, 0)
	}
	if flg&flgFCOMMENT != 0 {
		h = append(h, comment...)
		h = append(h, 0)
	}
	if hcrc {
		h = append(h, 0xab, 0xcd)
	}
	return h
}

func TestParseHeaderAllFields(t *testing.T) {
	flg := byte(flgFEXTRA | flgFNAME | flgFCOMMENT | flgFHCRC)
	h := buildHeader(flg, []byte{1, 2, 3, 4}, []byte("reads.fastq"), []byte("a comment"), true)
	m, err := ParseHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "reads.fastq" {
		t.Fatalf("name %q", m.Name)
	}
	if m.Comment != "a comment" {
		t.Fatalf("comment %q", m.Comment)
	}
	if m.HeaderLen != len(h) {
		t.Fatalf("header len %d, want %d", m.HeaderLen, len(h))
	}
}

func TestParseHeaderTruncations(t *testing.T) {
	flg := byte(flgFEXTRA | flgFNAME | flgFCOMMENT | flgFHCRC)
	full := buildHeader(flg, []byte{1, 2, 3, 4}, []byte("n"), []byte("c"), true)
	for cut := 0; cut < len(full); cut++ {
		if _, err := ParseHeader(full[:cut]); err == nil {
			t.Fatalf("cut %d accepted", cut)
		}
	}
}

func TestParseHeaderBadMagicAndMethod(t *testing.T) {
	if _, err := ParseHeader([]byte{0x1f, 0x8c, 8, 0, 0, 0, 0, 0, 0, 255}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := ParseHeader([]byte{0x1f, 0x8b, 7, 0, 0, 0, 0, 0, 0, 255}); !errors.Is(err, ErrBadMethod) {
		t.Fatalf("want ErrBadMethod, got %v", err)
	}
	if _, err := ParseHeader([]byte{0x1f, 0x8b, 8, 0xe0, 0, 0, 0, 0, 0, 255}); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("want ErrBadFlags, got %v", err)
	}
}

// TestParseStdlibHeaders: headers emitted by compress/gzip (with name
// and comment set) must parse.
func TestParseStdlibHeaders(t *testing.T) {
	var buf bytes.Buffer
	zw := stdgzip.NewWriter(&buf)
	zw.Name = "file.txt"
	zw.Comment = "hello"
	if _, err := zw.Write([]byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ParseHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "file.txt" || m.Comment != "hello" {
		t.Fatalf("parsed %+v", m)
	}
	// And the whole member decompresses.
	out, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "payload payload payload" {
		t.Fatalf("got %q", out)
	}
}

func TestDecompressCorruptTrailer(t *testing.T) {
	gz, err := Compress([]byte("some content to compress some content"), 6)
	if err != nil {
		t.Fatal(err)
	}
	crcCorrupt := append([]byte{}, gz...)
	crcCorrupt[len(crcCorrupt)-7] ^= 0xff
	if _, err := Decompress(crcCorrupt); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("want ErrBadCRC, got %v", err)
	}
	isizeCorrupt := append([]byte{}, gz...)
	isizeCorrupt[len(isizeCorrupt)-1] ^= 0xff
	if _, err := Decompress(isizeCorrupt); !errors.Is(err, ErrBadISize) {
		t.Fatalf("want ErrBadISize, got %v", err)
	}
}

func TestDecompressTruncatedTrailer(t *testing.T) {
	gz, err := Compress([]byte("some content to compress"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(gz[:len(gz)-3]); err == nil {
		t.Fatal("truncated trailer accepted")
	}
}

func TestPayloadBounds(t *testing.T) {
	gz, err := CompressOpts([]byte("data data data data"), Options{Level: 6, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	start, end, err := PayloadBounds(gz)
	if err != nil {
		t.Fatal(err)
	}
	if start != 12 { // 10-byte fixed header + "x\0"
		t.Fatalf("start %d", start)
	}
	if end != int64(len(gz)-8) {
		t.Fatalf("end %d", end)
	}
}
