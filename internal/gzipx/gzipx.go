// Package gzipx implements the gzip container format (RFC 1952) around
// internal/deflate and internal/flate: member headers with optional
// fields, CRC-32 + ISIZE trailers, multi-member concatenation, and the
// XFL-based compression-level classification that the UNIX file
// command (and Section VII-A of the paper) uses to partition datasets
// into lowest / normal / highest compression levels.
package gzipx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/deflate"
	"repro/internal/flate"
)

const (
	id1       = 0x1f
	id2       = 0x8b
	cmDeflate = 8

	flgFTEXT    = 1 << 0
	flgFHCRC    = 1 << 1
	flgFEXTRA   = 1 << 2
	flgFNAME    = 1 << 3
	flgFCOMMENT = 1 << 4
)

// Errors surfaced by the parser.
var (
	ErrBadMagic  = errors.New("gzipx: not a gzip file (bad magic)")
	ErrBadMethod = errors.New("gzipx: unsupported compression method")
	ErrTruncated = errors.New("gzipx: truncated member")
	ErrBadCRC    = errors.New("gzipx: CRC-32 mismatch")
	ErrBadISize  = errors.New("gzipx: ISIZE mismatch")
	ErrBadFlags  = errors.New("gzipx: reserved flag bits set")
)

// Member describes one gzip member's framing within a file.
type Member struct {
	// HeaderLen is the byte length of the member header; the DEFLATE
	// payload begins at this offset from the member start.
	HeaderLen int
	XFL       byte
	OS        byte
	Name      string
	Comment   string
}

// CompressionClass partitions gzip files the way `file` does, from the
// XFL byte: 4 = fastest (gzip -1), 2 = maximum (gzip -9), 0 = anything
// between. Table I of the paper uses exactly this partition.
type CompressionClass int

const (
	ClassNormal CompressionClass = iota
	ClassLowest
	ClassHighest
)

func (c CompressionClass) String() string {
	switch c {
	case ClassLowest:
		return "lowest"
	case ClassHighest:
		return "highest"
	default:
		return "normal"
	}
}

// ClassifyXFL maps the XFL header byte to a CompressionClass.
func ClassifyXFL(xfl byte) CompressionClass {
	switch xfl {
	case 4:
		return ClassLowest
	case 2:
		return ClassHighest
	default:
		return ClassNormal
	}
}

// xflForLevel mirrors gzip: XFL=2 at maximum compression, XFL=4 at
// fastest, 0 otherwise.
func xflForLevel(level int) byte {
	switch {
	case level >= 9:
		return 2
	case level == 1:
		return 4
	default:
		return 0
	}
}

// ParseHeader parses a member header at the start of data. It is
// ReadHeader over the slice: both paths share one parser so the
// streaming and whole-file layers can never diverge.
func ParseHeader(data []byte) (Member, error) {
	return ReadHeader(bytes.NewReader(data))
}

// Options controls member creation.
type Options struct {
	Level int    // 0..9; 0 = stored
	Name  string // optional FNAME
}

// Compress produces a complete single-member gzip file from data.
func Compress(data []byte, level int) ([]byte, error) {
	return CompressOpts(data, Options{Level: level})
}

// CompressOpts produces a complete single-member gzip file.
func CompressOpts(data []byte, o Options) ([]byte, error) {
	if o.Level < 0 || o.Level > 9 {
		return nil, fmt.Errorf("gzipx: level %d out of range [0,9]", o.Level)
	}
	payload, err := deflate.Compress(data, o.Level)
	if err != nil {
		return nil, err
	}
	flg := byte(0)
	if o.Name != "" {
		flg |= flgFNAME
	}
	out := make([]byte, 0, len(payload)+32+len(o.Name))
	out = append(out, id1, id2, cmDeflate, flg,
		0, 0, 0, 0, // MTIME: zero for determinism
		xflForLevel(o.Level), 255 /* OS unknown */)
	if o.Name != "" {
		out = append(out, o.Name...)
		out = append(out, 0)
	}
	out = append(out, payload...)
	var tr [8]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint32(tr[4:8], uint32(len(data)))
	out = append(out, tr[:]...)
	return out, nil
}

// Decompress inflates every member of a gzip file sequentially,
// verifying each CRC-32 and ISIZE. This is the repository's
// "gunzip role" baseline: exact, single-threaded, checksum-verified.
func Decompress(data []byte) ([]byte, error) {
	var out []byte
	rest := data
	for len(rest) > 0 {
		m, err := ParseHeader(rest)
		if err != nil {
			return nil, err
		}
		payload := rest[m.HeaderLen:]
		dec, spans, err := flate.DecompressRecorded(payload, 0, true)
		if err != nil {
			return nil, err
		}
		// Locate the trailer: the DEFLATE stream ends at the bit
		// position recorded for the last block; round up to a byte.
		if len(spans) == 0 {
			return nil, ErrTruncated
		}
		endBit := spans[len(spans)-1].EndBit
		endByte := int((endBit + 7) / 8)
		if len(payload) < endByte+8 {
			return nil, ErrTruncated
		}
		wantCRC := binary.LittleEndian.Uint32(payload[endByte:])
		wantISize := binary.LittleEndian.Uint32(payload[endByte+4:])
		if crc32.ChecksumIEEE(dec) != wantCRC {
			return nil, ErrBadCRC
		}
		if uint32(len(dec)) != wantISize {
			return nil, ErrBadISize
		}
		out = append(out, dec...)
		rest = payload[endByte+8:]
	}
	return out, nil
}

// PayloadBounds returns the byte range [start,end) of the DEFLATE
// stream of the first member of a gzip file, without decompressing.
// For single-member files end is len(data)-8 (the trailer).
func PayloadBounds(data []byte) (start, end int64, err error) {
	m, err := ParseHeader(data)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < m.HeaderLen+8 {
		return 0, 0, ErrTruncated
	}
	return int64(m.HeaderLen), int64(len(data) - 8), nil
}
