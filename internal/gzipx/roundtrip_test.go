package gzipx

import (
	"bytes"
	stdgzip "compress/gzip"
	"math/rand"
	"testing"
)

// textCorpus builds pseudo-text data that exercises literals, short
// matches, long matches, and runs.
func textCorpus(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "quick", "brown", "fox", "jumps", "over",
		"lazy", "dogs", "ACGT", "and", "again", "sequence", "data"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(8) == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.Bytes()[:n]
}

func dnaCorpus(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	const alpha = "ACGT"
	for i := range out {
		out[i] = alpha[rng.Intn(4)]
	}
	return out
}

func TestRoundTripAllLevels(t *testing.T) {
	corpora := map[string][]byte{
		"text":  textCorpus(200_000, 1),
		"dna":   dnaCorpus(200_000, 2),
		"empty": {},
		"tiny":  []byte("a"),
		"runs":  bytes.Repeat([]byte("x"), 100_000),
	}
	for name, data := range corpora {
		for level := 0; level <= 9; level++ {
			gz, err := Compress(data, level)
			if err != nil {
				t.Fatalf("%s level %d: compress: %v", name, level, err)
			}
			dec, err := Decompress(gz)
			if err != nil {
				t.Fatalf("%s level %d: decompress: %v", name, level, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s level %d: roundtrip mismatch (%d vs %d bytes)", name, level, len(dec), len(data))
			}
		}
	}
}

// TestStdlibCanReadOurs is the strongest conformance check we have:
// the standard library's gzip reader must accept every stream we emit.
func TestStdlibCanReadOurs(t *testing.T) {
	for _, n := range []int{0, 1, 100, 65535, 65536, 300_000} {
		data := textCorpus(n, int64(n))
		for level := 0; level <= 9; level++ {
			gz, err := Compress(data, level)
			if err != nil {
				t.Fatalf("n=%d level=%d: %v", n, level, err)
			}
			zr, err := stdgzip.NewReader(bytes.NewReader(gz))
			if err != nil {
				t.Fatalf("n=%d level=%d: stdlib reject header: %v", n, level, err)
			}
			var out bytes.Buffer
			if _, err := out.ReadFrom(zr); err != nil {
				t.Fatalf("n=%d level=%d: stdlib inflate: %v", n, level, err)
			}
			if err := zr.Close(); err != nil {
				t.Fatalf("n=%d level=%d: stdlib close (CRC): %v", n, level, err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("n=%d level=%d: stdlib output mismatch", n, level)
			}
		}
	}
}

// TestWeCanReadStdlib checks the reverse direction: our decoder must
// accept streams produced by compress/gzip.
func TestWeCanReadStdlib(t *testing.T) {
	data := textCorpus(300_000, 7)
	for _, level := range []int{stdgzip.BestSpeed, stdgzip.DefaultCompression, stdgzip.BestCompression, stdgzip.HuffmanOnly} {
		var buf bytes.Buffer
		zw, err := stdgzip.NewWriterLevel(&buf, level)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(buf.Bytes())
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("level %d: mismatch", level)
		}
	}
}

func TestMultiMember(t *testing.T) {
	a := textCorpus(50_000, 3)
	b := dnaCorpus(50_000, 4)
	ga, err := Compress(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Compress(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(append(append([]byte{}, ga...), gb...))
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, a...), b...)
	if !bytes.Equal(dec, want) {
		t.Fatal("multi-member concatenation mismatch")
	}
}

func TestClassifyXFL(t *testing.T) {
	cases := []struct {
		level int
		want  CompressionClass
	}{
		{1, ClassLowest}, {2, ClassNormal}, {6, ClassNormal}, {8, ClassNormal}, {9, ClassHighest},
	}
	for _, c := range cases {
		gz, err := Compress([]byte("hello world hello world"), c.level)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseHeader(gz)
		if err != nil {
			t.Fatal(err)
		}
		if got := ClassifyXFL(m.XFL); got != c.want {
			t.Errorf("level %d: class %v, want %v", c.level, got, c.want)
		}
	}
}
