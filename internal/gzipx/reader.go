package gzipx

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ReadHeader parses one member header from br, consuming exactly the
// header's bytes. Unlike ParseHeader it needs no slice of the file:
// streaming callers hand it the head of their buffered source window.
// A source that ends mid-header yields ErrTruncated; other source
// errors pass through.
func ReadHeader(br io.ByteReader) (Member, error) {
	var m Member
	next := func() (byte, error) {
		b, err := br.ReadByte()
		if err == io.EOF {
			return 0, ErrTruncated
		}
		return b, err
	}
	var fixed [10]byte
	for i := range fixed {
		b, err := next()
		if err != nil {
			return m, err
		}
		fixed[i] = b
	}
	if fixed[0] != id1 || fixed[1] != id2 {
		return m, ErrBadMagic
	}
	if fixed[2] != cmDeflate {
		return m, fmt.Errorf("%w: CM=%d", ErrBadMethod, fixed[2])
	}
	flg := fixed[3]
	if flg&0xe0 != 0 {
		return m, ErrBadFlags
	}
	m.XFL = fixed[8]
	m.OS = fixed[9]
	n := 10
	if flg&flgFEXTRA != 0 {
		lo, err := next()
		if err != nil {
			return m, err
		}
		hi, err := next()
		if err != nil {
			return m, err
		}
		xlen := int(binary.LittleEndian.Uint16([]byte{lo, hi}))
		for i := 0; i < xlen; i++ {
			if _, err := next(); err != nil {
				return m, err
			}
		}
		n += 2 + xlen
	}
	readZString := func() (string, error) {
		var s []byte
		for {
			b, err := next()
			if err != nil {
				return "", err
			}
			n++
			if b == 0 {
				return string(s), nil
			}
			s = append(s, b)
		}
	}
	if flg&flgFNAME != 0 {
		s, err := readZString()
		if err != nil {
			return m, err
		}
		m.Name = s
	}
	if flg&flgFCOMMENT != 0 {
		s, err := readZString()
		if err != nil {
			return m, err
		}
		m.Comment = s
	}
	if flg&flgFHCRC != 0 {
		for i := 0; i < 2; i++ {
			if _, err := next(); err != nil {
				return m, err
			}
		}
		n += 2
	}
	m.HeaderLen = n
	return m, nil
}

// ReadTrailer parses one member trailer (CRC-32 then ISIZE, both
// little-endian) from br, consuming exactly 8 bytes. A source that
// ends early yields ErrTruncated.
func ReadTrailer(br io.ByteReader) (crc, isize uint32, err error) {
	var tr [8]byte
	for i := range tr {
		b, e := br.ReadByte()
		if e == io.EOF {
			return 0, 0, ErrTruncated
		}
		if e != nil {
			return 0, 0, e
		}
		tr[i] = b
	}
	return binary.LittleEndian.Uint32(tr[0:4]), binary.LittleEndian.Uint32(tr[4:8]), nil
}
