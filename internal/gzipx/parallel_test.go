package gzipx

import (
	"bytes"
	stdgzip "compress/gzip"
	"io"
	"testing"
)

func TestCompressParallelRoundTrip(t *testing.T) {
	data := textCorpus(900_000, 21)
	for _, level := range []int{0, 1, 6, 9} {
		for _, threads := range []int{1, 3, 8} {
			gz, err := CompressParallel(data, ParallelOptions{Level: level, Threads: threads, ChunkSize: 64 << 10})
			if err != nil {
				t.Fatalf("level %d threads %d: %v", level, threads, err)
			}
			out, err := Decompress(gz)
			if err != nil {
				t.Fatalf("level %d threads %d: %v", level, threads, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("level %d threads %d: mismatch", level, threads)
			}
		}
	}
}

func TestCompressParallelDeterministicAcrossThreads(t *testing.T) {
	// Chunks are independent, so the byte output must not depend on
	// the number of worker goroutines.
	data := dnaCorpus(500_000, 22)
	a, err := CompressParallel(data, ParallelOptions{Level: 6, Threads: 1, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompressParallel(data, ParallelOptions{Level: 6, Threads: 7, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("thread count changed output bytes")
	}
}

func TestCompressParallelStdlibReads(t *testing.T) {
	data := textCorpus(400_000, 23)
	gz, err := CompressParallel(data, ParallelOptions{Level: 6, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := stdgzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("stdlib mismatch")
	}
}

func TestCompressParallelEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		data := textCorpus(n, int64(24+n))
		gz, err := CompressParallel(data, ParallelOptions{Level: 6, Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(gz)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

func TestCompressParallelRatioTradeoff(t *testing.T) {
	// Window resets at chunk boundaries cost some ratio vs the
	// sequential compressor — but not much at 256 KiB chunks.
	data := textCorpus(2_000_000, 25)
	seq, err := Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(data, ParallelOptions{Level: 6, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) < len(seq) {
		t.Fatalf("parallel (%d) beats sequential (%d)?", len(par), len(seq))
	}
	if float64(len(par)) > 1.10*float64(len(seq)) {
		t.Fatalf("parallel ratio loss too high: %d vs %d", len(par), len(seq))
	}
}

func TestCompressParallelBadLevel(t *testing.T) {
	if _, err := CompressParallel([]byte("x"), ParallelOptions{Level: 11}); err == nil {
		t.Fatal("bad level accepted")
	}
}
