package cliutil

import "testing"

func TestParseOffset(t *testing.T) {
	cases := []struct {
		in   string
		size int64
		want int64
		err  bool
	}{
		{"0", 1000, 0, false},
		{"123", 1000, 123, false},
		{"50%", 1000, 500, false},
		{"25%", 8, 2, false},
		{"100%", 1000, 1000, false},
		{"", 1000, 0, true},
		{"abc", 1000, 0, true},
		{"x%", 1000, 0, true},
	}
	for _, c := range cases {
		got, err := ParseOffset(c.in, c.size)
		if c.err {
			if err == nil {
				t.Errorf("ParseOffset(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseOffset(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseOffset(%q, %d) = %d, want %d", c.in, c.size, got, c.want)
		}
	}
}

func TestDefaultThreads(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Fatal("DefaultThreads must be at least 1")
	}
}
