// Package cliutil holds the option wiring shared by this repository's
// command-line tools (cmd/pugz, cmd/fqgz), so flag names, defaults and
// input conventions cannot drift apart between them.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// DefaultThreads is the shared default for every tool's -t flag:
// GOMAXPROCS, so a containerised or taskset-limited invocation gets a
// sensible degree of parallelism without hand-tuning.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Threads registers the shared -t flag on the default flag set.
func Threads() *int {
	return flag.Int("t", DefaultThreads(), "number of decompression threads")
}

// ParseOffset parses a byte offset that is either absolute ("1048576")
// or a percentage of size ("25%").
func ParseOffset(s string, size int64) (int64, error) {
	if strings.HasSuffix(s, "%") {
		p, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad offset %q: %w", s, err)
		}
		return int64(p / 100 * float64(size)), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q: %w", s, err)
	}
	return v, nil
}

// OpenInput resolves the shared input-path convention: "-" is stdin,
// anything else is opened as a file. The returned closer is a no-op
// for stdin.
func OpenInput(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Fatal prints "<tool>: <err>" to stderr and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
