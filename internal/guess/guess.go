// Package guess explores the direction the paper leaves open in its
// discussion: "It did not escape our attention that guessing those
// undetermined characters could be possible, but we did not yet
// explore this direction" (Section VIII).
//
// Given the narrowed output of a random-access decompression of a
// FASTQ file (bytes with '?' where the initial context never
// resolved), the guesser exploits FASTQ structure:
//
//   - line phases are recovered by voting (header/DNA/'+'/quality
//     cycle),
//   - DNA gaps are sampled from the line's local base composition,
//   - quality gaps copy the nearest resolved neighbour (real quality
//     strings are strongly run-correlated),
//   - header gaps take a positional consensus over resolved headers,
//   - '+' lines are, well, '+'.
//
// Guessing is inherently LOSSY: the result is plausible, not exact,
// and is clearly labelled as such. The experiments measure per-class
// accuracy against synthetic ground truth.
package guess

import (
	"bytes"
	"math/rand"

	"repro/internal/tracked"
)

// Phase is a FASTQ line phase.
type Phase uint8

const (
	PhaseHeader Phase = iota
	PhaseDNA
	PhasePlus
	PhaseQual
	PhaseUnknown
)

func (p Phase) String() string {
	switch p {
	case PhaseHeader:
		return "header"
	case PhaseDNA:
		return "dna"
	case PhasePlus:
		return "plus"
	case PhaseQual:
		return "quality"
	}
	return "unknown"
}

// Result reports a guessing pass.
type Result struct {
	// Text is the input with every in-line '?' replaced by a guess.
	// '?' characters adjacent to ambiguous line structure are left
	// untouched.
	Text []byte
	// Guessed counts replacements, total and per phase.
	Guessed        int
	GuessedByPhase [5]int
	// Lines is the number of lines seen; PhaseOffset the detected
	// alignment of the 4-line cycle.
	Lines       int
	PhaseOffset int
}

const undet = tracked.UndeterminedByte

// Undetermined guesses the '?' characters of narrowed FASTQ text.
// The seed makes sampling deterministic.
func Undetermined(text []byte, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	res := &Result{Text: append([]byte{}, text...)}

	lines := splitKeepOffsets(res.Text)
	res.Lines = len(lines)
	if len(lines) == 0 {
		return res
	}
	// Assign phases with local resynchronisation: a single merged line
	// (newlines lost inside an undetermined region) would shift a
	// global 4-cycle for the whole rest of the file, so instead every
	// '@' header re-anchors the cycle and implausible lines drop the
	// state machine back to "unsynced".
	phases := assignPhases(res.Text, lines)
	res.PhaseOffset = int(phases[0]) % 4

	// Collect resolved headers for the positional consensus.
	consensus := buildHeaderConsensus(res.Text, lines, phases)

	for i, ln := range lines {
		phase := phases[i]
		if phase == PhaseUnknown {
			continue
		}
		seg := res.Text[ln.start:ln.end]
		if !bytes.ContainsRune(seg, undet) {
			continue
		}
		if !guessable(seg) {
			// Mostly-opaque or structurally implausible line: in the
			// fully undetermined head of a random access even the
			// newlines are '?', so apparent "lines" are merged blobs.
			// Guessing there would be noise; leave it untouched.
			continue
		}
		var n int
		switch phase {
		case PhaseDNA:
			n = guessDNA(seg, rng)
		case PhaseQual:
			n = guessQual(seg)
		case PhaseHeader:
			n = guessHeader(seg, consensus)
		case PhasePlus:
			n = guessPlus(seg)
		}
		res.Guessed += n
		res.GuessedByPhase[phase] += n
	}
	return res
}

// maxGuessableLine bounds plausible FASTQ line lengths: reads and
// quality strings run a few hundred characters, headers well under
// that. Lines beyond this are almost certainly several true lines
// whose separating newlines are themselves undetermined.
const maxGuessableLine = 4096

// guessable rejects lines where guessing would be noise: oversized
// (merged) lines and lines with more unknown than known content.
func guessable(seg []byte) bool {
	if len(seg) > maxGuessableLine {
		return false
	}
	if len(seg) <= 8 {
		// Very short lines ('+' separators, short headers) are
		// guessable from cycle position alone.
		return true
	}
	unknown := 0
	for _, b := range seg {
		if b == undet {
			unknown++
		}
	}
	return unknown*2 <= len(seg)
}

type lineSpan struct{ start, end int }

// splitKeepOffsets returns line extents (excluding newlines). The
// first line is dropped when the text begins mid-line (random access
// rarely lands on a line boundary); a trailing unterminated line is
// kept.
func splitKeepOffsets(text []byte) []lineSpan {
	var out []lineSpan
	start := 0
	for i, b := range text {
		if b == '\n' {
			out = append(out, lineSpan{start, i})
			start = i + 1
		}
	}
	if start < len(text) {
		out = append(out, lineSpan{start, len(text)})
	}
	if len(out) > 0 {
		out = out[1:] // drop the (likely partial) first line
	}
	return out
}

// Plausible FASTQ line lengths: Illumina headers run ~40-80 chars,
// reads/qualities up to a few hundred. Lines beyond these bounds are
// merged lines (their separating newlines were undetermined).
const (
	maxHeaderLine = 256
	maxReadLine   = 1024
	maxPlusLine   = 64
)

func phaseLenOK(p Phase, n int) bool {
	switch p {
	case PhaseHeader:
		return n <= maxHeaderLine
	case PhaseDNA, PhaseQual:
		return n <= maxReadLine
	case PhasePlus:
		return n <= maxPlusLine
	}
	return false
}

// assignPhases labels every line, re-anchoring the 4-line cycle at
// each plausible header and dropping to PhaseUnknown when the expected
// structure breaks (merged lines, opaque regions). An anchor needs a
// plausibly sized '@' line *followed by a clean DNA line* — a lone '@'
// can be a quality character, and in heavily undetermined regions
// spurious anchors would otherwise trigger noisy guessing.
func assignPhases(text []byte, lines []lineSpan) []Phase {
	phases := make([]Phase, len(lines))
	synced := false
	expect := PhaseUnknown
	for i, ln := range lines {
		seg := text[ln.start:ln.end]
		vote := votePhase(seg)
		if vote == PhaseHeader && (!synced || expect == PhaseHeader) {
			anchorOK := len(seg) <= maxHeaderLine
			if anchorOK && !synced {
				// Cold anchor: require confirmation from the next line.
				anchorOK = false
				if i+1 < len(lines) {
					next := text[lines[i+1].start:lines[i+1].end]
					if votePhase(next) == PhaseDNA && phaseLenOK(PhaseDNA, len(next)) {
						anchorOK = true
					}
				}
			}
			if anchorOK {
				phases[i] = PhaseHeader
				synced = true
				expect = PhaseDNA
				continue
			}
		}
		if !synced {
			phases[i] = PhaseUnknown
			continue
		}
		// Compatibility: the vote must not contradict the cycle, and
		// the length must be plausible for the expected phase.
		ok := vote == expect || vote == PhaseUnknown ||
			(expect == PhaseQual && vote != PhaseHeader) // quality lines can look like anything
		if !ok || !phaseLenOK(expect, len(seg)) {
			phases[i] = PhaseUnknown
			synced = false
			expect = PhaseUnknown
			continue
		}
		phases[i] = expect
		expect = Phase((int(expect) + 1) % 4)
	}
	return phases
}

// votePhase classifies one line on surface features only.
func votePhase(seg []byte) Phase {
	if len(seg) == 0 {
		return PhaseUnknown
	}
	if seg[0] == '@' {
		return PhaseHeader
	}
	if seg[0] == '+' && len(seg) <= 2 {
		return PhasePlus
	}
	dna, qual := 0, 0
	for _, b := range seg {
		switch {
		case b == undet:
		case isDNA(b):
			dna++
		default:
			qual++
		}
	}
	known := dna + qual
	if known == 0 {
		return PhaseUnknown
	}
	if dna == known {
		return PhaseDNA
	}
	if qual > known/3 {
		return PhaseQual
	}
	return PhaseUnknown
}

func isDNA(b byte) bool {
	switch b {
	case 'A', 'C', 'G', 'T', 'N':
		return true
	}
	return false
}

// guessDNA samples gaps from the line's own base composition.
func guessDNA(seg []byte, rng *rand.Rand) int {
	var counts [4]int
	total := 0
	for _, b := range seg {
		switch b {
		case 'A':
			counts[0]++
		case 'C':
			counts[1]++
		case 'G':
			counts[2]++
		case 'T':
			counts[3]++
		default:
			continue
		}
		total++
	}
	bases := []byte("ACGT")
	n := 0
	for i, b := range seg {
		if b != undet {
			continue
		}
		if total == 0 {
			seg[i] = bases[rng.Intn(4)]
		} else {
			r := rng.Intn(total)
			k := 0
			for r >= counts[k] {
				r -= counts[k]
				k++
			}
			seg[i] = bases[k]
		}
		n++
	}
	return n
}

// guessQual copies the nearest resolved neighbour (quality strings are
// run-correlated), preferring the left.
func guessQual(seg []byte) int {
	n := 0
	for i, b := range seg {
		if b != undet {
			continue
		}
		var v byte
		for l := i - 1; l >= 0; l-- {
			if seg[l] != undet {
				v = seg[l]
				break
			}
		}
		if v == 0 {
			for r := i + 1; r < len(seg); r++ {
				if seg[r] != undet {
					v = seg[r]
					break
				}
			}
		}
		if v == 0 {
			v = 'F' // a typical high quality when the whole line is unknown
		}
		seg[i] = v
		n++
	}
	return n
}

// headerConsensus is a positional majority over resolved header lines.
type headerConsensus struct {
	cols [][256]int
}

func buildHeaderConsensus(text []byte, lines []lineSpan, phases []Phase) *headerConsensus {
	hc := &headerConsensus{}
	for i, ln := range lines {
		if phases[i] != PhaseHeader {
			continue
		}
		seg := text[ln.start:ln.end]
		for pos, b := range seg {
			if b == undet {
				continue
			}
			if pos >= len(hc.cols) {
				grown := make([][256]int, pos+1)
				copy(grown, hc.cols)
				hc.cols = grown
			}
			hc.cols[pos][b]++
		}
	}
	return hc
}

func (hc *headerConsensus) at(pos int) (byte, bool) {
	if pos >= len(hc.cols) {
		return 0, false
	}
	best, bestCount := byte(0), 0
	for b, c := range hc.cols[pos] {
		if c > bestCount {
			best, bestCount = byte(b), c
		}
	}
	return best, bestCount > 0
}

func guessHeader(seg []byte, hc *headerConsensus) int {
	n := 0
	for i, b := range seg {
		if b != undet {
			continue
		}
		if v, ok := hc.at(i); ok {
			seg[i] = v
		} else {
			seg[i] = '0' // past consensus: numeric fields dominate
		}
		n++
	}
	return n
}

func guessPlus(seg []byte) int {
	n := 0
	for i, b := range seg {
		if b == undet {
			if i == 0 {
				seg[i] = '+'
			} else {
				seg[i] = ' '
			}
			n++
		}
	}
	return n
}
