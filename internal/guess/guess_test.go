package guess

import (
	"bytes"
	"testing"

	"repro/internal/fastq"
	"repro/internal/tracked"
)

// maskRandomly replaces a fraction of characters with '?' (never
// newlines, mirroring real undetermined propagation which follows
// byte copies, not structure).
func maskRandomly(data []byte, frac float64, seed int64) []byte {
	out := append([]byte{}, data...)
	rng := newRng(seed)
	for i, b := range out {
		if b != '\n' && rng.Float64() < frac {
			out[i] = tracked.UndeterminedByte
		}
	}
	return out
}

func newRng(seed int64) *rngT { return &rngT{state: uint64(seed)*2685821657736338717 + 1} }

type rngT struct{ state uint64 }

func (r *rngT) Float64() float64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return float64(r.state>>11) / (1 << 53)
}

func TestPhaseDetection(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 200, Seed: 1})
	// Prepend a partial line, as random access would produce.
	text := append([]byte("GGTTAACC"), '\n')
	text = append(text, data...)
	res := Undetermined(text, 1)
	// First full line is a header -> after dropping the partial first
	// line the cycle offset must make line 0 a header.
	if Phase(res.PhaseOffset%4) != PhaseHeader {
		t.Fatalf("phase offset %d does not align headers", res.PhaseOffset)
	}
}

func TestGuessCoversMostPositions(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 500, Seed: 2})
	masked := maskRandomly(data, 0.15, 3)
	total := bytes.Count(masked, []byte{tracked.UndeterminedByte})
	res := Undetermined(masked, 4)
	rem := bytes.Count(res.Text, []byte{tracked.UndeterminedByte})
	covered := float64(total-rem) / float64(total)
	// The guesser deliberately declines lines it cannot anchor (e.g.
	// records whose header '@' was masked), so coverage is high but
	// not total.
	if covered < 0.75 {
		t.Fatalf("coverage %.3f (guessed %d of %d), want >= 0.75", covered, total-rem, total)
	}
	if res.Guessed == 0 {
		t.Fatal("nothing guessed")
	}
}

// accuracy measures the fraction of masked positions whose guess
// equals the truth, per phase.
func accuracy(t *testing.T, truth, masked, guessed []byte, wantPhase fastq.CharClass) (right, total int) {
	t.Helper()
	classes := fastq.Classify(truth)
	for i := range truth {
		if masked[i] != tracked.UndeterminedByte || classes[i] != wantPhase {
			continue
		}
		total++
		if guessed[i] == truth[i] {
			right++
		}
	}
	return right, total
}

func TestGuessAccuracyByClass(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 2000, Seed: 5})
	masked := maskRandomly(data, 0.10, 6)
	res := Undetermined(masked, 7)
	if len(res.Text) != len(data) {
		t.Fatal("length changed")
	}

	// Quality guesses exploit run correlation: expect well above the
	// ~2.5% a uniform guess over the alphabet would get.
	if r, n := accuracy(t, data, masked, res.Text, fastq.ClassQual); n > 0 {
		frac := float64(r) / float64(n)
		if frac < 0.35 {
			t.Errorf("quality accuracy %.3f, want >= 0.35 (run-copy heuristic)", frac)
		}
	}
	// Header guesses exploit the shared template: instrument/flowcell
	// prefixes are deterministic, coordinates are not.
	if r, n := accuracy(t, data, masked, res.Text, fastq.ClassHeader); n > 0 {
		frac := float64(r) / float64(n)
		if frac < 0.30 {
			t.Errorf("header accuracy %.3f, want >= 0.30 (consensus)", frac)
		}
	}
	// DNA is uniform random: composition sampling can only reach ~25%.
	if r, n := accuracy(t, data, masked, res.Text, fastq.ClassDNA); n > 0 {
		frac := float64(r) / float64(n)
		if frac < 0.15 || frac > 0.40 {
			t.Errorf("dna accuracy %.3f, want ≈0.25 (uniform bases)", frac)
		}
	}
}

func TestGuessPreservesResolved(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 300, Seed: 8})
	masked := maskRandomly(data, 0.2, 9)
	res := Undetermined(masked, 10)
	for i := range masked {
		if masked[i] != tracked.UndeterminedByte && res.Text[i] != masked[i] {
			t.Fatalf("position %d: resolved byte %q was modified to %q", i, masked[i], res.Text[i])
		}
	}
}

func TestGuessDeterministic(t *testing.T) {
	data := fastq.Generate(fastq.GenOptions{Reads: 100, Seed: 11})
	masked := maskRandomly(data, 0.3, 12)
	a := Undetermined(masked, 42)
	b := Undetermined(masked, 42)
	if !bytes.Equal(a.Text, b.Text) {
		t.Fatal("same seed produced different guesses")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if res := Undetermined(nil, 1); res.Guessed != 0 {
		t.Fatal("guessed in empty input")
	}
	if res := Undetermined([]byte("no newline at all"), 1); res.Guessed != 0 {
		t.Fatal("partial single line should be skipped")
	}
	// All-undetermined input: nothing reliable, but must not panic.
	blob := bytes.Repeat([]byte{tracked.UndeterminedByte}, 1000)
	_ = Undetermined(blob, 1)
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{PhaseHeader: "header", PhaseDNA: "dna", PhasePlus: "plus", PhaseQual: "quality", PhaseUnknown: "unknown"}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%v", p)
		}
	}
}
