// Package gzindex implements the related-work baseline of the paper's
// reference [11] (Heng Li, "Random access to zlib-compressed files",
// 2014; the zran approach): during one full sequential decompression,
// checkpoint the decoder state — bit offset, output offset, and the
// 32 KiB window — every N output bytes. Random access then seeks to
// the nearest checkpoint and inflates forward.
//
// This is the technique the paper contrasts pugz against: it solves
// random access *exactly*, but requires decompressing the whole file
// once beforehand and storing a side-car index, which "does not apply
// when one only needs to read a given compressed file once"
// (Section II). The experiments use it as the exact-random-access
// baseline for the fqgz comparison.
package gzindex

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/flate"
)

// DefaultSpacing is the default output-byte distance between
// checkpoints (1 MiB, zran's common choice).
const DefaultSpacing = 1 << 20

const windowSize = flate.WindowSize

// Checkpoint is one restart point.
type Checkpoint struct {
	// Bit is the payload bit offset of a block boundary.
	Bit int64
	// Out is the decompressed offset at that boundary.
	Out int64
	// Window is the 32 KiB of output preceding Out (zero-padded at
	// stream start).
	Window []byte
}

// Index is a random-access index over one DEFLATE stream.
type Index struct {
	Checkpoints []Checkpoint
	// OutSize is the total decompressed size.
	OutSize int64
	// EndBit is the bit offset just past the final block.
	EndBit int64
}

// Build performs one sequential decode of payload, checkpointing at
// the first block boundary after every `spacing` output bytes
// (spacing <= 0 selects DefaultSpacing).
func Build(payload []byte, spacing int64) (*Index, error) {
	if spacing <= 0 {
		spacing = DefaultSpacing
	}
	out, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		return nil, err
	}
	ix := &Index{OutSize: int64(len(out))}
	if len(spans) > 0 {
		ix.EndBit = spans[len(spans)-1].EndBit
	}
	var nextAt int64 // first checkpoint at output offset 0
	for _, s := range spans {
		if s.OutStart < nextAt {
			continue
		}
		w := make([]byte, windowSize)
		if s.OutStart >= windowSize {
			copy(w, out[s.OutStart-windowSize:s.OutStart])
		} else {
			copy(w[windowSize-s.OutStart:], out[:s.OutStart])
		}
		ix.Checkpoints = append(ix.Checkpoints, Checkpoint{
			Bit:    s.Event.StartBit,
			Out:    s.OutStart,
			Window: w,
		})
		nextAt = s.OutStart + spacing
	}
	return ix, nil
}

// FindCheckpoint returns the last checkpoint at or before decompressed
// offset off — the restart point a positional read decodes forward
// from. Callers reading through a windowed byte source use it to
// position the window before calling ReadAtWindow.
func (ix *Index) FindCheckpoint(off int64) (*Checkpoint, error) {
	if off < 0 {
		return nil, fmt.Errorf("gzindex: negative offset %d", off)
	}
	if off >= ix.OutSize {
		return nil, fmt.Errorf("gzindex: offset %d past end %d", off, ix.OutSize)
	}
	return ix.findCheckpoint(off)
}

// findCheckpoint returns the last checkpoint at or before off.
func (ix *Index) findCheckpoint(off int64) (*Checkpoint, error) {
	if len(ix.Checkpoints) == 0 {
		return nil, errors.New("gzindex: empty index")
	}
	lo, hi := 0, len(ix.Checkpoints)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.Checkpoints[mid].Out <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, fmt.Errorf("gzindex: offset %d before first checkpoint", off)
	}
	return &ix.Checkpoints[lo-1], nil
}

// windowSink decodes with a preloaded history window, collecting
// output and stopping after limit bytes.
type windowSink struct {
	hist  []byte // window ++ produced output
	limit int
}

func (s *windowSink) BlockStart(flate.BlockEvent) error { return nil }
func (s *windowSink) Literal(b byte) error {
	s.hist = append(s.hist, b)
	if s.produced() >= s.limit {
		return flate.Stop
	}
	return nil
}
func (s *windowSink) Match(length, dist int) error {
	n := len(s.hist)
	if dist > n {
		return flate.ErrDanglingRef
	}
	src := n - dist
	if dist >= length {
		s.hist = append(s.hist, s.hist[src:src+length]...)
	} else {
		for i := 0; i < length; i++ {
			s.hist = append(s.hist, s.hist[src+i])
		}
	}
	if s.produced() >= s.limit {
		return flate.Stop
	}
	return nil
}
func (s *windowSink) BlockEnd(int64) error { return nil }
func (s *windowSink) produced() int        { return len(s.hist) - windowSize }
func (s *windowSink) output() []byte       { return s.hist[windowSize:] }

// ReadAt fills p with decompressed bytes starting at output offset
// off, decoding forward from the nearest checkpoint. It returns the
// number of bytes read; short reads happen only at end of stream.
func (ix *Index) ReadAt(payload []byte, p []byte, off int64) (int, error) {
	return ix.ReadAtWindow(payload, 0, p, off)
}

// ReadAtWindow is ReadAt over a window of the payload: win[0] is
// payload byte winBase, and the window must start at or before the
// checkpoint governing off (see FindCheckpoint). A window too short
// for the read fails with a truncation-style error; callers backed by
// a partial byte source grow the window and retry.
func (ix *Index) ReadAtWindow(win []byte, winBase int64, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("gzindex: negative offset %d", off)
	}
	if off >= ix.OutSize {
		return 0, fmt.Errorf("gzindex: offset %d past end %d", off, ix.OutSize)
	}
	cp, err := ix.findCheckpoint(off)
	if err != nil {
		return 0, err
	}
	relBit := cp.Bit - winBase*8
	if relBit < 0 {
		return 0, fmt.Errorf("gzindex: window at byte %d starts past checkpoint bit %d", winBase, cp.Bit)
	}
	r, err := bitio.NewReaderAt(win, relBit)
	if err != nil {
		return 0, err
	}
	need := int(off-cp.Out) + len(p)
	sink := &windowSink{hist: make([]byte, 0, windowSize+need+flate.MaxMatch), limit: need}
	sink.hist = append(sink.hist, cp.Window...)
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)
	for sink.produced() < need {
		final, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			return 0, err
		}
		if final {
			break
		}
	}
	out := sink.output()
	skip := int(off - cp.Out)
	if skip >= len(out) {
		return 0, errors.New("gzindex: stream ended before requested offset")
	}
	return copy(p, out[skip:]), nil
}

// --- Serialization ----------------------------------------------------

// Format: magic "GZIX" | version u8 | flags u8 (1 = windows deflated)
// | outSize i64 | endBit i64 | count u32 | per checkpoint:
// bit i64 | out i64 | wlen u32 | window bytes (raw or deflated).
const (
	magic       = "GZIX"
	version     = 1
	flagDeflate = 1
)

// Marshal serialises the index. Windows are compressed with this
// repository's own DEFLATE (level 6), typically shrinking the index
// ~3x for FASTQ content.
func (ix *Index) Marshal() ([]byte, error) {
	var out []byte
	out = append(out, magic...)
	out = append(out, version, flagDeflate)
	out = binary.LittleEndian.AppendUint64(out, uint64(ix.OutSize))
	out = binary.LittleEndian.AppendUint64(out, uint64(ix.EndBit))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ix.Checkpoints)))
	for _, cp := range ix.Checkpoints {
		out = binary.LittleEndian.AppendUint64(out, uint64(cp.Bit))
		out = binary.LittleEndian.AppendUint64(out, uint64(cp.Out))
		w, err := deflate.Compress(cp.Window, 6)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(w)))
		out = append(out, w...)
	}
	return out, nil
}

// Unmarshal parses a serialised index.
func Unmarshal(data []byte) (*Index, error) {
	if len(data) < 4+2+8+8+4 {
		return nil, errors.New("gzindex: truncated index")
	}
	if string(data[:4]) != magic {
		return nil, errors.New("gzindex: bad magic")
	}
	if data[4] != version {
		return nil, fmt.Errorf("gzindex: unsupported version %d", data[4])
	}
	deflated := data[5]&flagDeflate != 0
	pos := 6
	ix := &Index{
		OutSize: int64(binary.LittleEndian.Uint64(data[pos:])),
		EndBit:  int64(binary.LittleEndian.Uint64(data[pos+8:])),
	}
	count := int(binary.LittleEndian.Uint32(data[pos+16:]))
	pos += 20
	for i := 0; i < count; i++ {
		if len(data) < pos+20 {
			return nil, errors.New("gzindex: truncated checkpoint")
		}
		cp := Checkpoint{
			Bit: int64(binary.LittleEndian.Uint64(data[pos:])),
			Out: int64(binary.LittleEndian.Uint64(data[pos+8:])),
		}
		wlen := int(binary.LittleEndian.Uint32(data[pos+16:]))
		pos += 20
		if len(data) < pos+wlen {
			return nil, errors.New("gzindex: truncated window")
		}
		raw := data[pos : pos+wlen]
		pos += wlen
		if deflated {
			w, err := flate.DecompressAll(raw, 0)
			if err != nil {
				return nil, fmt.Errorf("gzindex: checkpoint %d window: %w", i, err)
			}
			cp.Window = w
		} else {
			cp.Window = append([]byte{}, raw...)
		}
		if len(cp.Window) != windowSize {
			return nil, fmt.Errorf("gzindex: checkpoint %d window size %d", i, len(cp.Window))
		}
		ix.Checkpoints = append(ix.Checkpoints, cp)
	}
	return ix, nil
}
