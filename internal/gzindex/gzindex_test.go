package gzindex

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/deflate"
	"repro/internal/fastq"
)

func fixture(t *testing.T, reads, level int) (payload, data []byte) {
	t.Helper()
	data = fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 51})
	payload, err := deflate.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	return payload, data
}

func TestBuildAndReadAt(t *testing.T) {
	payload, data := fixture(t, 20000, 6)
	ix, err := Build(payload, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ix.OutSize != int64(len(data)) {
		t.Fatalf("OutSize %d, want %d", ix.OutSize, len(data))
	}
	if len(ix.Checkpoints) < 5 {
		t.Fatalf("only %d checkpoints", len(ix.Checkpoints))
	}
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 5000)
	for trial := 0; trial < 40; trial++ {
		off := rng.Int63n(int64(len(data)) - int64(len(buf)))
		n, err := ix.ReadAt(payload, buf, off)
		if err != nil {
			t.Fatalf("trial %d off %d: %v", trial, off, err)
		}
		if n != len(buf) {
			t.Fatalf("trial %d: short read %d", trial, n)
		}
		if !bytes.Equal(buf, data[off:off+int64(n)]) {
			t.Fatalf("trial %d off %d: content mismatch", trial, off)
		}
	}
}

func TestReadAtBoundaries(t *testing.T) {
	payload, data := fixture(t, 8000, 6)
	ix, err := Build(payload, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Offset 0.
	buf := make([]byte, 100)
	if _, err := ix.ReadAt(payload, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[:100]) {
		t.Fatal("offset 0 mismatch")
	}
	// Tail: short read allowed at EOF.
	n, err := ix.ReadAt(payload, buf, int64(len(data))-10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || !bytes.Equal(buf[:10], data[len(data)-10:]) {
		t.Fatalf("tail read n=%d", n)
	}
	// Past end / negative.
	if _, err := ix.ReadAt(payload, buf, int64(len(data))); err == nil {
		t.Fatal("past-end accepted")
	}
	if _, err := ix.ReadAt(payload, buf, -1); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestReadAtExactlyAtCheckpoint(t *testing.T) {
	payload, data := fixture(t, 8000, 6)
	ix, err := Build(payload, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range ix.Checkpoints {
		if cp.Out+50 > int64(len(data)) {
			continue
		}
		buf := make([]byte, 50)
		if _, err := ix.ReadAt(payload, buf, cp.Out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[cp.Out:cp.Out+50]) {
			t.Fatalf("checkpoint at %d: mismatch", cp.Out)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	payload, data := fixture(t, 10000, 6)
	ix, err := Build(payload, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Compressed windows should make the index much smaller than raw
	// checkpoints (32 KiB each).
	raw := len(ix.Checkpoints) * 32768
	if len(blob) > raw {
		t.Fatalf("index %d bytes not smaller than raw %d", len(blob), raw)
	}
	ix2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.OutSize != ix.OutSize || ix2.EndBit != ix.EndBit || len(ix2.Checkpoints) != len(ix.Checkpoints) {
		t.Fatal("metadata mismatch")
	}
	for i := range ix.Checkpoints {
		a, b := ix.Checkpoints[i], ix2.Checkpoints[i]
		if a.Bit != b.Bit || a.Out != b.Out || !bytes.Equal(a.Window, b.Window) {
			t.Fatalf("checkpoint %d mismatch", i)
		}
	}
	// And the deserialised index must serve reads.
	buf := make([]byte, 1000)
	off := int64(len(data) / 2)
	if _, err := ix2.ReadAt(payload, buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+1000]) {
		t.Fatal("read through deserialised index mismatch")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	payload, _ := fixture(t, 2000, 6)
	ix, _ := Build(payload, 128<<10)
	blob, _ := ix.Marshal()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)/2],
		"bad ver":   append([]byte("GZIX\x09"), blob[5:]...),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildDefaultSpacing(t *testing.T) {
	payload, _ := fixture(t, 20000, 6)
	ix, err := Build(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ~10 MB output at 1 MiB spacing: around 10 checkpoints.
	if len(ix.Checkpoints) < 3 || len(ix.Checkpoints) > 30 {
		t.Fatalf("%d checkpoints at default spacing", len(ix.Checkpoints))
	}
}
