package flate

import (
	"repro/internal/bitio"
	"repro/internal/huffman"
)

// This file holds the multi-symbol token decode loop: the sink-side
// half of the fast path set up by decodeCompressedWith. Sinks that own
// a flat output window implement FastTokenSink and run decodeFastBytes
// directly over their buffer, so the hot loop has no interface calls
// per token, one 64-bit refill per iteration, and a bounds-checked
// copy kernel for matches. Sinks without a window (CountingSink, the
// engine's probe sinks) simply don't implement the interface and keep
// the scalar path.

// FastCtx bundles what a FastTokenSink needs for one fast-loop call.
// It is owned by the Decoder and valid only for the duration of the
// FastTokens invocation.
type FastCtx struct {
	R    *bitio.Reader
	Lit  *huffman.LitLenFast
	Dist *huffman.DistFast
	// Track mirrors Decoder.SetTrackStart: a back-reference reaching
	// before the stream's first produced byte must bail so the scalar
	// loop reports ErrDistanceTooFar (or ErrDanglingRef) canonically.
	Track bool
	// Produced is the stream-total output count before this call; a
	// tracking sink derives its minimum legal back-reference from it.
	Produced int64

	sink FastTokenSink
}

// FastTokenSink extends Visitor for sinks that expose their output
// window to the fast loop. FastTokens decodes as many tokens as it
// can directly into the sink's buffer and returns the number of bytes
// emitted, whether the end-of-block code was consumed, and an error
// (Stop for limit halts). On (eob=false, err=nil) return the reader
// is positioned bit-exactly at an undecoded token: either fewer than
// fastMinBits bits remain buffered or the next token needs the scalar
// loop (invalid/rare code, out-of-range back-reference).
type FastTokenSink interface {
	Visitor
	FastTokens(fc *FastCtx) (produced int64, eob bool, err error)
}

const (
	// fastMinBits is the buffered-bit floor for one fast iteration: a
	// worst-case token is litlen code (15) + length extra (5) + dist
	// code (15) + dist extra (13) = 48 bits, so a single refill
	// (>= 56 bits away from EOF) always covers a whole token.
	fastMinBits = 48
	// fastSlack is the output headroom a caller must keep beyond the
	// kernel's write budget: one maximal match plus a packed pair.
	fastSlack = MaxMatch + 2
)

type fastStatus uint8

const (
	fastMore fastStatus = iota // out of bits, room, or budget
	fastEOB                    // end-of-block code consumed
	fastBail                   // next token needs the scalar loop
)

// decodeFastBytes decodes tokens from r into out[w:]. It stops before
// decoding a token once w >= maxW (so a limit-bounded caller stops on
// the same token the scalar loop would) and never writes at or beyond
// maxW-1+MaxMatch; callers guarantee len(out) >= maxW-1+MaxMatch.
// minSrc is the lowest legal match source index (0, or the
// before-stream-start floor when tracking). Bits are consumed only
// for fully emitted tokens: on fastBail the reader still points at
// the offending token for the scalar loop to re-decode.
func decodeFastBytes(r *bitio.Reader, lit *huffman.LitLenFast, dist *huffman.DistFast, out []byte, w, maxW, minSrc int) (int, fastStatus) {
	for {
		r.Refill()
		if r.Bits() < fastMinBits {
			return w, fastMore
		}
		if w >= maxW {
			return w, fastMore
		}
		x := r.Acc()
		e := lit.Lookup(x)
		if e.Kind() == huffman.FastSub {
			e = lit.SubLookup(e, x)
		}
		switch e.Kind() {
		case huffman.FastLit2:
			if w+2 > maxW {
				// Budget for one byte only: emit the first literal so
				// the stop position matches the scalar loop exactly.
				out[w] = e.Lit1()
				w++
				r.Consume(e.Lit1Bits())
				continue
			}
			out[w] = e.Lit1()
			out[w+1] = e.Lit2()
			w += 2
			r.Consume(e.NBits())
		case huffman.FastLit1:
			out[w] = e.Lit1()
			w++
			r.Consume(e.NBits())
		case huffman.FastLen:
			used := e.NBits()
			length := int(e.LenBase()) + (int(x>>used) & (1<<e.LenExtra() - 1))
			used += e.LenExtra()
			de := dist.Lookup(x >> used)
			if de.Sub() {
				de = dist.SubLookup(de, x>>used)
			}
			if !de.Direct() {
				return w, fastBail
			}
			dcb := de.NBits()
			dval := int(de.Base()) + (int(x>>(used+dcb)) & (1<<de.ExtraBits() - 1))
			used += dcb + de.ExtraBits()
			src := w - dval
			if src < minSrc {
				return w, fastBail
			}
			r.Consume(used)
			if dval >= length {
				copy(out[w:w+length], out[src:src+length])
				w += length
			} else {
				// Overlapping match (RLE-style): replicate the
				// available span in doubling rounds.
				end := w + length
				for w < end {
					w += copy(out[w:end], out[src:w])
				}
			}
		case huffman.FastEOB:
			r.Consume(e.NBits())
			return w, fastEOB
		default: // huffman.FastInvalid
			return w, fastBail
		}
	}
}

// fastPad is an all-zero source for growing a sink's capacity via
// append without allocating a temporary.
var fastPad [4096]byte

// FastTokens implements FastTokenSink: tokens decode straight into the
// append buffer, growing capacity ahead of the kernel.
func (s *ByteSink) FastTokens(fc *FastCtx) (int64, bool, error) {
	w0 := len(s.Out)
	minSrc := 0
	if fc.Track {
		// dist > produced  <=>  src < len-at-call - produced-at-call;
		// with a seeded Prefix this floor is exactly the prefix size.
		if m := w0 - int(fc.Produced); m > 0 {
			minSrc = m
		}
	}
	eob := false
	for {
		fc.R.Refill()
		if fc.R.Bits() < fastMinBits {
			break
		}
		if cap(s.Out)-len(s.Out) < fastSlack {
			n := len(s.Out)
			s.Out = append(s.Out, fastPad[:]...)[:n]
		}
		buf := s.Out[:cap(s.Out)]
		w, st := decodeFastBytes(fc.R, fc.Lit, fc.Dist, buf, len(s.Out), cap(s.Out)-MaxMatch, minSrc)
		s.Out = buf[:w]
		if st == fastEOB {
			eob = true
			break
		}
		if st == fastBail {
			break
		}
	}
	return int64(len(s.Out) - w0), eob, nil
}

// FastTokens implements FastTokenSink over the sliding tail window:
// the kernel runs between slide compactions, and the Limit budget is
// translated into a write bound so the decode stops on exactly the
// token the scalar loop would stop on.
func (s *TailSink) FastTokens(fc *FastCtx) (int64, bool, error) {
	t0 := s.total
	eob := false
	var err error
	for {
		fc.R.Refill()
		if fc.R.Bits() < fastMinBits {
			break
		}
		s.slide(fastSlack)
		w0 := len(s.buf)
		minSrc := 0
		if fc.Track {
			if m := w0 - int(s.total); m > 0 {
				minSrc = m
			}
		}
		maxW := tailSlideBytes // cap is tailSlideBytes+MaxMatch: in budget
		if s.Limit > 0 {
			if lim := w0 + int(s.Limit-s.total); lim < maxW {
				maxW = lim
			}
		}
		w, st := decodeFastBytes(fc.R, fc.Lit, fc.Dist, s.buf[:cap(s.buf)], w0, maxW, minSrc)
		s.total += int64(w - w0)
		s.buf = s.buf[:w]
		if s.Limit > 0 && s.total >= s.Limit {
			err = Stop
			break
		}
		if st == fastEOB {
			eob = true
			break
		}
		if st == fastBail {
			break
		}
	}
	return s.total - t0, eob, err
}
