package flate

import (
	"bytes"
	"compress/flate"
	"testing"

	"repro/internal/bitio"
)

// deflateStd compresses data with the stdlib so the decoder under test
// sees independently produced streams.
func deflateStd(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func genText(n int, seed byte) []byte {
	out := make([]byte, n)
	x := uint32(seed) + 1
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = "ACGTacgtNn\n"[x%11]
	}
	return out
}

// TestTailSinkMatchesByteSink: count, spans, and the trailing window
// must agree with a full ByteSink decode, with and without a seeded
// context.
func TestTailSinkMatchesByteSink(t *testing.T) {
	data := genText(300_000, 5)
	payload := deflateStd(t, data, 6)

	full, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, data) {
		t.Fatal("reference decode mismatch")
	}

	r, err := bitio.NewReaderAt(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewTailSink(nil)
	defer sink.Release()
	sink.RecordBlocks()
	dec := NewDecoder(Options{})
	dec.SetTrackStart(true)
	if err := dec.DecodeStream(r, sink); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != int64(len(data)) {
		t.Fatalf("Len = %d, want %d", sink.Len(), len(data))
	}
	if len(sink.Blocks) != len(spans) {
		t.Fatalf("%d spans, want %d", len(sink.Blocks), len(spans))
	}
	for i := range spans {
		if sink.Blocks[i] != spans[i] {
			t.Fatalf("span %d: %+v vs %+v", i, sink.Blocks[i], spans[i])
		}
	}
	w := make([]byte, WindowSize)
	sink.WindowInto(w)
	if !bytes.Equal(w, data[len(data)-WindowSize:]) {
		t.Fatal("trailing window mismatch")
	}
}

// TestTailSinkCaptures: armed block-boundary offsets must snapshot the
// exact history window a full decode would have had there, including a
// boundary inside the first window (context-padded) and one the decode
// stops at (flush case).
func TestTailSinkCaptures(t *testing.T) {
	data := genText(400_000, 9)
	ctx := genText(WindowSize, 13)
	// Compress with the seeded dictionary semantics: simplest is to
	// decode a plain stream and treat ctx as the pre-start window; the
	// sink only cares that references resolve, and stdlib streams never
	// reach before their start, so captures exercise the padding path
	// via small offsets.
	payload := deflateStd(t, data, 6)
	_, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) < 4 {
		t.Fatal("want >=4 blocks")
	}
	targets := []int64{spans[1].OutStart, spans[2].OutStart, spans[len(spans)-1].OutStart}
	r, err := bitio.NewReaderAt(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewTailSink(ctx)
	defer sink.Release()
	sink.CaptureAt(targets)
	sink.Limit = targets[len(targets)-1]
	dec := NewDecoder(Options{})
	for sink.Len() < targets[len(targets)-1] {
		final, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if err == Stop {
				break
			}
			t.Fatal(err)
		}
		if final {
			break
		}
	}
	sink.FlushCaptures()
	if sink.CapturesMissed() != 0 {
		t.Fatalf("missed captures: %s", sink.MissedCapture())
	}
	got := sink.Captured()
	if len(got) != len(targets) {
		t.Fatalf("%d captures, want %d", len(got), len(targets))
	}
	for i, off := range targets {
		want := make([]byte, WindowSize)
		if off >= WindowSize {
			copy(want, data[off-WindowSize:off])
		} else {
			copy(want, ctx[off:])
			copy(want[WindowSize-off:], data[:off])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("capture %d (offset %d): window mismatch", i, off)
		}
	}
}

// TestByteSinkBlockEndWithoutStart: a BlockEnd with no prior
// BlockStart must be a no-op on a recording ByteSink — it used to
// index Blocks[-1] and panic. Regression for the PR-5 bugfix; the
// TailSink is covered by the same contract.
func TestByteSinkBlockEndWithoutStart(t *testing.T) {
	s := &ByteSink{}
	s.RecordBlocks()
	if err := s.BlockEnd(42); err != nil {
		t.Fatalf("ByteSink.BlockEnd: %v", err)
	}
	if len(s.Blocks) != 0 {
		t.Fatalf("ByteSink recorded %d spans", len(s.Blocks))
	}
	// Non-recording sinks were already safe; keep them that way.
	if err := (&ByteSink{}).BlockEnd(42); err != nil {
		t.Fatal(err)
	}

	ts := NewTailSink(nil)
	defer ts.Release()
	ts.RecordBlocks()
	if err := ts.BlockEnd(42); err != nil {
		t.Fatalf("TailSink.BlockEnd: %v", err)
	}
	if len(ts.Blocks) != 0 {
		t.Fatalf("TailSink recorded %d spans", len(ts.Blocks))
	}

	// And a normal recorded decode still annotates its spans.
	payload := deflateStd(t, genText(4096, 3), 6)
	out, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || spans[len(spans)-1].OutEnd != int64(len(out)) {
		t.Fatalf("span recording broken: %+v", spans)
	}
}
