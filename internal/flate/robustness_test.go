package flate

import (
	"bytes"
	stdflate "compress/flate"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// TestBitFlipNeverPanics is the decoder's robustness contract: a valid
// stream with any single bit flipped must either decode (possibly to
// different content — DEFLATE has no integrity check of its own) or
// return an error. It must never panic, hang, or index out of range.
func TestBitFlipNeverPanics(t *testing.T) {
	data := textData(30_000, 99)
	payload := stdCompress(t, data, 6)
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 3000; trial++ {
		corrupt := append([]byte{}, payload...)
		bit := rng.Intn(len(corrupt) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (bit %d): panic: %v", trial, bit, r)
				}
			}()
			out, err := DecompressAll(corrupt, 0)
			_ = out
			_ = err
		}()
	}
}

// TestTruncationNeverPanics: every prefix of a valid stream must fail
// cleanly.
func TestTruncationNeverPanics(t *testing.T) {
	data := textData(20_000, 101)
	payload := stdCompress(t, data, 6)
	for cut := 0; cut < len(payload); cut += 37 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			_, _ = DecompressAll(payload[:cut], 0)
		}()
	}
}

// TestGarbageNeverPanics: decoding from arbitrary bytes at arbitrary
// bit offsets must fail cleanly.
func TestGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 2000; trial++ {
		garbage := make([]byte, rng.Intn(2000))
		rng.Read(garbage)
		startBit := int64(0)
		if len(garbage) > 0 {
			startBit = rng.Int63n(int64(len(garbage)) * 8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = DecompressAll(garbage, startBit)
		}()
	}
}

// TestCorruptionDetectionRate quantifies how often a random bit flip
// is caught by DEFLATE structure alone. Measured: only ~10-15% — a
// flip inside a Huffman-coded literal simply decodes to a different
// symbol. This is precisely why gzip carries a CRC-32 trailer, and
// what a pugz user gives up with checksums disabled (the paper's
// default; this repository offers VerifyChecksums).
func TestCorruptionDetectionRate(t *testing.T) {
	data := textData(30_000, 103)
	payload := stdCompress(t, data, 6)
	rng := rand.New(rand.NewSource(104))
	detected, silent, changed := 0, 0, 0
	const trials = 1500
	for trial := 0; trial < trials; trial++ {
		corrupt := append([]byte{}, payload...)
		bit := rng.Intn(len(corrupt) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)
		out, err := DecompressAll(corrupt, 0)
		switch {
		case err != nil:
			detected++
		case bytes.Equal(out, data):
			silent++ // flip in a dead region (e.g. padding)
		default:
			changed++
		}
	}
	if detected == 0 {
		t.Error("no corruption detected structurally at all")
	}
	if detected+silent+changed != trials {
		t.Fatal("accounting error")
	}
	t.Logf("detected=%d silent=%d content-changed=%d (of %d)", detected, silent, changed, trials)
}

// TestStdlibAgreesOnValidity cross-checks our decoder against the
// standard library on mutated streams: whenever both succeed, they
// must produce identical output.
func TestStdlibAgreesOnValidity(t *testing.T) {
	data := textData(20_000, 105)
	payload := stdCompress(t, data, 6)
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 400; trial++ {
		corrupt := append([]byte{}, payload...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			bit := rng.Intn(len(corrupt) * 8)
			corrupt[bit/8] ^= 1 << (bit % 8)
		}
		ours, ourErr := DecompressAll(corrupt, 0)
		r := stdflate.NewReader(bytes.NewReader(corrupt))
		var stdOut bytes.Buffer
		_, stdErr := stdOut.ReadFrom(r)
		r.Close()
		if ourErr == nil && stdErr == nil {
			if !bytes.Equal(ours, stdOut.Bytes()) {
				t.Fatalf("trial %d: both decoders succeeded with different output", trial)
			}
		}
	}
}

// TestValidationModeStricter: every stream accepted under Validate
// must also decode without validation.
func TestValidationModeStricter(t *testing.T) {
	data := textData(30_000, 107)
	payload := stdCompress(t, data, 6)
	rng := rand.New(rand.NewSource(108))
	accepted := 0
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte{}, payload...)
		bit := rng.Intn(len(corrupt) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)

		r := bitio.NewReader(corrupt)
		var sink CountingSink
		dec := NewDecoder(Options{Validate: true, AllowFinal: true, MinBlockOutput: 1})
		_, strictErr := dec.DecodeBlock(r, &sink)
		if strictErr != nil {
			continue
		}
		accepted++
		// Under permissive options the same block must decode too.
		r2 := bitio.NewReader(corrupt)
		var sink2 CountingSink
		dec2 := NewDecoder(Options{})
		if _, err := dec2.DecodeBlock(r2, &sink2); err != nil {
			t.Fatalf("trial %d: strict accepted but permissive rejected: %v", trial, err)
		}
	}
	t.Logf("strict acceptance after 1-bit flips: %d/500", accepted)
}
