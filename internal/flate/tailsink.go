package flate

import (
	"fmt"
	"sync"
)

// TailSink is a Visitor for exact decodes whose output is measured and
// windowed but never kept: it maintains a running count plus a sliding
// buffer holding at least the trailing WindowSize bytes, seeded with a
// known 32 KiB history window so mid-stream back-references resolve
// immediately. Skip-mode chunks whose initial context is already
// resolved decode through it with O(WindowSize) memory, and the
// checkpoint-harvest pass uses its capture hooks to snapshot the
// history window at chosen output offsets (block boundaries).
type TailSink struct {
	buf   []byte
	total int64 // bytes produced (excludes the seeded context)
	// Blocks accumulates one span per decoded block when RecordBlocks
	// was called.
	Blocks []BlockSpan
	record bool
	// Limit, when > 0, stops decoding (with Stop) once total reaches
	// this many bytes.
	Limit int64

	// captureAt are produced-output offsets, strictly ascending, at
	// which the current history window is snapshotted when a block
	// boundary lands exactly there (set via CaptureAt). Captured
	// windows are freshly allocated WindowSize slices.
	captureAt []int64
	captured  [][]byte
	ci        int

	// Online capture walk (CaptureEvery): snapshot at the first block
	// boundary at or past walkNext, then advance by walkSpacing — the
	// same spacing rule the checkpoint emitters replay, so a chunk
	// whose targets are known up front (the first chunk of a segment)
	// can harvest its windows in the decoding pass itself.
	walk        bool
	walkNext    int64
	walkSpacing int64
	walkOuts    []int64
	walkBits    []int64
}

// tailSlideBytes mirrors tracked's sliding scheme: compact once the
// buffer would outgrow two windows, keeping the copy cost ~1 byte per
// output byte and the working set cache-resident.
const tailSlideBytes = 2 * WindowSize

var tailBufPool = sync.Pool{
	New: func() any { return make([]byte, 0, tailSlideBytes+MaxMatch) },
}

// NewTailSink returns a TailSink seeded with ctx (len WindowSize, or
// nil for a zeroed window — callers decoding a stream's true start
// combine that with Decoder.SetTrackStart so pre-start references are
// still rejected). The buffer is pooled; hand it back with Release.
func NewTailSink(ctx []byte) *TailSink {
	buf := tailBufPool.Get().([]byte)
	if cap(buf) < tailSlideBytes+MaxMatch {
		buf = make([]byte, 0, tailSlideBytes+MaxMatch)
	}
	buf = buf[:WindowSize]
	if ctx != nil {
		copy(buf, ctx)
	} else {
		clear(buf)
	}
	return &TailSink{buf: buf}
}

// Release returns the sliding buffer to the pool. The sink must not be
// used afterwards; captured windows remain valid (they are private
// allocations).
func (s *TailSink) Release() {
	if cap(s.buf) > 0 {
		tailBufPool.Put(s.buf[:0]) //nolint:staticcheck
	}
	s.buf = nil
}

// RecordBlocks enables per-block span recording.
func (s *TailSink) RecordBlocks() { s.record = true }

// Len returns the number of output bytes decoded so far.
func (s *TailSink) Len() int64 { return s.total }

// CaptureAt arms window snapshots: when a block boundary (or the final
// FlushCaptures call) lands exactly at one of these produced-output
// offsets, the trailing WindowSize bytes at that point are copied out.
// Offsets must be strictly ascending.
func (s *TailSink) CaptureAt(offsets []int64) { s.captureAt = offsets }

// CaptureEvery arms the online spacing walk: a snapshot at the first
// block boundary at or past from, then at the first boundary at least
// spacing output bytes past each previous snapshot. Mutually exclusive
// with CaptureAt.
func (s *TailSink) CaptureEvery(from, spacing int64) {
	s.walk, s.walkNext, s.walkSpacing = true, from, spacing
}

// Captured returns the snapshots taken so far, in offset order.
func (s *TailSink) Captured() [][]byte { return s.captured }

// WalkMarks returns the output offsets and block start bits of the
// snapshots an online walk took, parallel to Captured().
func (s *TailSink) WalkMarks() (outs, bits []int64) { return s.walkOuts, s.walkBits }

// FlushCaptures takes any snapshot whose offset equals the current
// output length — the end-of-decode case where the boundary belongs to
// a block the decode stopped before (e.g. an empty final block).
func (s *TailSink) FlushCaptures() { s.capture() }

// WindowInto fills dst (len WindowSize) with the current history
// window: the trailing WindowSize bytes of context ++ output.
func (s *TailSink) WindowInto(dst []byte) {
	copy(dst, s.buf[len(s.buf)-WindowSize:])
}

func (s *TailSink) capture() {
	for s.ci < len(s.captureAt) && s.captureAt[s.ci] == s.total {
		w := make([]byte, WindowSize)
		s.WindowInto(w)
		s.captured = append(s.captured, w)
		s.ci++
	}
}

// CapturesMissed reports how many armed offsets were never reached —
// non-zero means the decode stopped short of a requested snapshot.
func (s *TailSink) CapturesMissed() int { return len(s.captureAt) - s.ci }

// MissedCapture describes the first unreached offset for error
// reporting.
func (s *TailSink) MissedCapture() string {
	if s.ci >= len(s.captureAt) {
		return ""
	}
	return fmt.Sprintf("offset %d (decoded %d)", s.captureAt[s.ci], s.total)
}

func (s *TailSink) slide(n int) {
	if len(s.buf)+n <= tailSlideBytes {
		return
	}
	copy(s.buf, s.buf[len(s.buf)-WindowSize:])
	s.buf = s.buf[:WindowSize]
}

func (s *TailSink) BlockStart(ev BlockEvent) error {
	if len(s.captureAt) > 0 {
		s.capture()
	}
	if s.walk && s.total >= s.walkNext {
		w := make([]byte, WindowSize)
		s.WindowInto(w)
		s.captured = append(s.captured, w)
		s.walkOuts = append(s.walkOuts, s.total)
		s.walkBits = append(s.walkBits, ev.StartBit)
		s.walkNext = s.total + s.walkSpacing
	}
	if s.record {
		s.Blocks = append(s.Blocks, BlockSpan{Event: ev, OutStart: s.total})
	}
	return nil
}

func (s *TailSink) Literal(b byte) error {
	s.slide(1)
	s.buf = append(s.buf, b)
	s.total++
	if s.Limit > 0 && s.total >= s.Limit {
		return Stop
	}
	return nil
}

func (s *TailSink) Match(length, dist int) error {
	s.slide(length)
	n := len(s.buf)
	src := n - dist // >= 0: at least WindowSize bytes are always retained
	if dist >= length {
		s.buf = append(s.buf, s.buf[src:src+length]...)
	} else {
		for i := 0; i < length; i++ {
			s.buf = append(s.buf, s.buf[src+i])
		}
	}
	s.total += int64(length)
	if s.Limit > 0 && s.total >= s.Limit {
		return Stop
	}
	return nil
}

func (s *TailSink) BlockEnd(nextBit int64) error {
	if s.record && len(s.Blocks) > 0 {
		last := &s.Blocks[len(s.Blocks)-1]
		last.EndBit = nextBit
		last.OutEnd = s.total
	}
	return nil
}
