package flate

import (
	"errors"

	"repro/internal/bitio"
)

// ByteSink is a Visitor that materialises the decompressed stream into
// a flat byte slice. It is the "plain gunzip" consumer: back-references
// must land inside the bytes already produced — or inside a seeded
// context prefix (see Prefix), which is how a mid-stream chunk whose
// 32 KiB window is already known decodes exactly without the symbolic
// detour.
type ByteSink struct {
	Out []byte
	// Prefix marks the first Prefix bytes of Out as seeded context (a
	// known history window, not produced output). Back-references may
	// reach into it; Output() excludes it. Callers seed it by filling
	// Out with the window before decoding.
	Prefix int
	// Blocks, when non-nil recording is enabled via RecordBlocks,
	// accumulates one entry per decoded block.
	Blocks []BlockSpan
	record bool
}

// Output returns the decoded bytes, excluding any seeded context
// prefix. The slice aliases the sink's buffer.
func (s *ByteSink) Output() []byte { return s.Out[s.Prefix:] }

// BlockSpan describes one decoded block: its bit extent in the
// compressed stream and byte extent in the output.
type BlockSpan struct {
	Event    BlockEvent
	EndBit   int64
	OutStart int64
	OutEnd   int64
}

// RecordBlocks enables per-block span recording.
func (s *ByteSink) RecordBlocks() { s.record = true }

// ErrDanglingRef is returned when a match reaches before the first
// output byte — decoding a stream from its true start never does this.
var ErrDanglingRef = errors.New("flate: back-reference before output start")

func (s *ByteSink) BlockStart(ev BlockEvent) error {
	if s.record {
		s.Blocks = append(s.Blocks, BlockSpan{Event: ev, OutStart: int64(len(s.Out) - s.Prefix)})
	}
	return nil
}

func (s *ByteSink) Literal(b byte) error {
	s.Out = append(s.Out, b)
	return nil
}

func (s *ByteSink) Match(length, dist int) error {
	n := len(s.Out)
	if dist > n {
		return ErrDanglingRef
	}
	// Overlapping copies (dist < length) must proceed byte-by-byte in
	// stream order; this is the RLE-style idiom DEFLATE relies on.
	src := n - dist
	if dist >= length {
		s.Out = append(s.Out, s.Out[src:src+length]...)
		return nil
	}
	for i := 0; i < length; i++ {
		s.Out = append(s.Out, s.Out[src+i])
	}
	return nil
}

func (s *ByteSink) BlockEnd(nextBit int64) error {
	// A BlockEnd with no recorded span (a visitor driven without a
	// prior BlockStart) is a no-op rather than a panic: span recording
	// only ever annotates blocks it saw open.
	if s.record && len(s.Blocks) > 0 {
		last := &s.Blocks[len(s.Blocks)-1]
		last.EndBit = nextBit
		last.OutEnd = int64(len(s.Out) - s.Prefix)
	}
	return nil
}

// DecompressAll decodes a whole DEFLATE stream (starting at bit offset
// startBit of data) into a byte slice. It applies normal gunzip rules:
// no validation-mode restrictions, back-references must stay within
// produced output.
func DecompressAll(data []byte, startBit int64) ([]byte, error) {
	out, _, err := DecompressRecorded(data, startBit, false)
	return out, err
}

// DecompressRecorded is DecompressAll with optional per-block span
// recording (used by tests and the chunk planner).
func DecompressRecorded(data []byte, startBit int64, record bool) ([]byte, []BlockSpan, error) {
	r, err := bitio.NewReaderAt(data, startBit)
	if err != nil {
		return nil, nil, err
	}
	sink := &ByteSink{}
	if record {
		sink.RecordBlocks()
	}
	dec := NewDecoder(Options{})
	dec.SetTrackStart(true)
	if err := dec.DecodeStream(r, sink); err != nil {
		return nil, nil, err
	}
	return sink.Out, sink.Blocks, nil
}

// CountingSink discards output but tallies tokens; used by validation
// probes and statistics collection.
type CountingSink struct {
	Literals int64
	Matches  int64
	Bytes    int64
	// MatchLenSum and MatchDistSum allow computing the average match
	// length/offset (the paper's l_a and o_a).
	MatchLenSum  int64
	MatchDistSum int64
	BlocksSeen   int
}

func (c *CountingSink) BlockStart(BlockEvent) error { c.BlocksSeen++; return nil }
func (c *CountingSink) Literal(byte) error          { c.Literals++; c.Bytes++; return nil }
func (c *CountingSink) Match(length, dist int) error {
	c.Matches++
	c.Bytes += int64(length)
	c.MatchLenSum += int64(length)
	c.MatchDistSum += int64(dist)
	return nil
}
func (c *CountingSink) BlockEnd(int64) error { return nil }

// AvgMatchLen returns l_a, the mean match length (0 when no matches).
func (c *CountingSink) AvgMatchLen() float64 {
	if c.Matches == 0 {
		return 0
	}
	return float64(c.MatchLenSum) / float64(c.Matches)
}

// AvgMatchDist returns o_a, the mean match offset (0 when no matches).
func (c *CountingSink) AvgMatchDist() float64 {
	if c.Matches == 0 {
		return 0
	}
	return float64(c.MatchDistSum) / float64(c.Matches)
}
