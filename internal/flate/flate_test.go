package flate

import (
	"bytes"
	stdflate "compress/flate"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// stdCompress produces a raw DEFLATE stream with the standard library.
func stdCompress(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := stdflate.NewWriter(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func textData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "beta", "gamma", "delta", "ACGTACGT", "quality"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteByte(" \n"[rng.Intn(2)])
	}
	return b.Bytes()[:n]
}

func TestDecodeStdlibStreams(t *testing.T) {
	data := textData(300_000, 1)
	for _, level := range []int{1, 6, 9, stdflate.HuffmanOnly} {
		payload := stdCompress(t, data, level)
		got, err := DecompressAll(payload, 0)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("level %d: mismatch", level)
		}
	}
}

func TestDecodeStoredStream(t *testing.T) {
	data := textData(200_000, 2) // > 64 KiB forces multiple stored blocks
	payload := stdCompress(t, data, 0)
	got, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	sawStored := false
	for _, s := range spans {
		if s.Event.Type == Stored {
			sawStored = true
		}
	}
	if !sawStored {
		t.Fatal("expected stored blocks")
	}
}

func TestBlockSpansContiguous(t *testing.T) {
	data := textData(400_000, 3)
	payload := stdCompress(t, data, 6)
	out, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	if spans[0].Event.StartBit != 0 {
		t.Fatal("first block must start at bit 0")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Event.StartBit != spans[i-1].EndBit {
			t.Fatalf("bit gap at block %d", i)
		}
		if spans[i].OutStart != spans[i-1].OutEnd {
			t.Fatalf("output gap at block %d", i)
		}
	}
	if spans[len(spans)-1].OutEnd != int64(len(out)) {
		t.Fatal("spans do not cover output")
	}
	if !spans[len(spans)-1].Event.Final {
		t.Fatal("last span must be final")
	}
}

func TestEmptyStream(t *testing.T) {
	payload := stdCompress(t, nil, 6)
	got, err := DecompressAll(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

// buildBlock writes a hand-crafted block via bitio for validation
// tests.
func fixedBlockWith(t *testing.T, literals []byte, final bool) []byte {
	t.Helper()
	// Easiest correct fixed-block writer: use the stdlib at
	// HuffmanOnly... but we need exact control; craft manually using
	// the RFC fixed code for literals < 144: 8 bits, codes 0x30+lit.
	w := bitio.NewWriter(64)
	if final {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
	w.WriteBits(1, 2) // fixed
	rev := func(v uint32, n uint) uint32 {
		var r uint32
		for i := uint(0); i < n; i++ {
			r = r<<1 | (v>>i)&1
		}
		return r
	}
	for _, b := range literals {
		if b > 143 {
			t.Fatal("test helper handles literals < 144 only")
		}
		w.WriteBits(rev(0x30+uint32(b), 8), 8)
	}
	w.WriteBits(rev(0, 7), 7) // end of block: 7-bit code 0
	return w.Bytes()
}

func TestHandCraftedFixedBlock(t *testing.T) {
	payload := fixedBlockWith(t, []byte("Hello"), true)
	got, err := DecompressAll(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Hello" {
		t.Fatalf("got %q", got)
	}
}

func TestValidateRejectsFinalBlock(t *testing.T) {
	payload := fixedBlockWith(t, []byte("Hello"), true)
	dec := NewDecoder(Options{Validate: true})
	var sink CountingSink
	_, err := dec.DecodeBlock(bitio.NewReader(payload), &sink)
	if !errors.Is(err, ErrFinalBlock) {
		t.Fatalf("want ErrFinalBlock, got %v", err)
	}
	// AllowFinal overrides (block is still too small, so relax sizes).
	dec = NewDecoder(Options{Validate: true, AllowFinal: true, MinBlockOutput: 1})
	final, err := dec.DecodeBlock(bitio.NewReader(payload), &sink)
	if err != nil || !final {
		t.Fatalf("AllowFinal: final=%v err=%v", final, err)
	}
}

func TestValidateRejectsNonASCII(t *testing.T) {
	payload := fixedBlockWith(t, []byte{'A', 7, 'B'}, false)
	dec := NewDecoder(Options{Validate: true, MinBlockOutput: 1})
	var sink CountingSink
	if _, err := dec.DecodeBlock(bitio.NewReader(payload), &sink); !errors.Is(err, ErrNonASCII) {
		t.Fatalf("want ErrNonASCII, got %v", err)
	}
}

func TestValidateBlockSizeBounds(t *testing.T) {
	small := fixedBlockWith(t, []byte("tiny"), false)
	dec := NewDecoder(Options{Validate: true}) // default min 1 KiB
	var sink CountingSink
	if _, err := dec.DecodeBlock(bitio.NewReader(small), &sink); !errors.Is(err, ErrBlockTooSmall) {
		t.Fatalf("want ErrBlockTooSmall, got %v", err)
	}

	big := fixedBlockWith(t, bytes.Repeat([]byte{'A'}, 3000), false)
	dec = NewDecoder(Options{Validate: true, MaxBlockOutput: 2000, MinBlockOutput: 1})
	if _, err := dec.DecodeBlock(bitio.NewReader(big), &sink); !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("want ErrBlockTooLarge, got %v", err)
	}
}

func TestInvalidBlockType(t *testing.T) {
	w := bitio.NewWriter(4)
	w.WriteBits(0, 1)
	w.WriteBits(3, 2) // BTYPE=11 invalid
	dec := NewDecoder(Options{})
	var sink CountingSink
	if _, err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), &sink); !errors.Is(err, ErrBadBlockType) {
		t.Fatalf("want ErrBadBlockType, got %v", err)
	}
}

func TestStoredLenMismatch(t *testing.T) {
	w := bitio.NewWriter(16)
	w.WriteBits(0, 1)
	w.WriteBits(0, 2) // stored
	w.AlignByte()
	w.WriteBits(5, 16)
	w.WriteBits(1234, 16) // not ^5
	dec := NewDecoder(Options{})
	var sink CountingSink
	if _, err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), &sink); !errors.Is(err, ErrStoredLenMismatch) {
		t.Fatalf("want ErrStoredLenMismatch, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	data := textData(50_000, 4)
	payload := stdCompress(t, data, 6)
	for _, cut := range []int{1, len(payload) / 4, len(payload) / 2, len(payload) - 1} {
		if _, err := DecompressAll(payload[:cut], 0); err == nil {
			t.Fatalf("cut %d: expected error", cut)
		}
	}
}

func TestDanglingBackReference(t *testing.T) {
	// A match at the very start of a stream (no history) must be
	// rejected by ByteSink. Craft: fixed block, match len 3 dist 1 as
	// first token. Length sym 257 => 7-bit code 1. Dist sym 0 => 5-bit
	// code 0.
	w := bitio.NewWriter(8)
	w.WriteBits(1, 1) // final
	w.WriteBits(1, 2) // fixed
	rev := func(v uint32, n uint) uint32 {
		var r uint32
		for i := uint(0); i < n; i++ {
			r = r<<1 | (v>>i)&1
		}
		return r
	}
	w.WriteBits(rev(1, 7), 7) // litlen 257: code 0000001
	w.WriteBits(rev(0, 5), 5) // dist 0 (=1)
	w.WriteBits(rev(0, 7), 7) // end of block

	// DecompressAll tracks the stream start in the decoder itself.
	if _, err := DecompressAll(w.Bytes(), 0); !errors.Is(err, ErrDistanceTooFar) {
		t.Fatalf("want ErrDistanceTooFar, got %v", err)
	}
	// A bare ByteSink (decoder not tracking) must still catch it.
	dec := NewDecoder(Options{})
	sink := &ByteSink{}
	if _, err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), sink); !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("want ErrDanglingRef, got %v", err)
	}
}

func TestSetTrackStartRejectsEarlyRef(t *testing.T) {
	// Same stream, decoded with a raw Decoder + TrackStart: the
	// decoder itself must reject the reference.
	w := bitio.NewWriter(8)
	w.WriteBits(1, 1)
	w.WriteBits(1, 2)
	rev := func(v uint32, n uint) uint32 {
		var r uint32
		for i := uint(0); i < n; i++ {
			r = r<<1 | (v>>i)&1
		}
		return r
	}
	w.WriteBits(rev(1, 7), 7)
	w.WriteBits(rev(0, 5), 5)
	w.WriteBits(rev(0, 7), 7)
	dec := NewDecoder(Options{})
	dec.SetTrackStart(true)
	var sink CountingSink
	if _, err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), &sink); !errors.Is(err, ErrDistanceTooFar) {
		t.Fatalf("want ErrDistanceTooFar, got %v", err)
	}
}

func TestCountingSinkAverages(t *testing.T) {
	var c CountingSink
	_ = c.Literal('A')
	_ = c.Match(10, 100)
	_ = c.Match(20, 300)
	if c.Bytes != 31 || c.Literals != 1 || c.Matches != 2 {
		t.Fatalf("counts: %+v", c)
	}
	if c.AvgMatchLen() != 15 {
		t.Fatalf("avg len %f", c.AvgMatchLen())
	}
	if c.AvgMatchDist() != 200 {
		t.Fatalf("avg dist %f", c.AvgMatchDist())
	}
	var empty CountingSink
	if empty.AvgMatchLen() != 0 || empty.AvgMatchDist() != 0 {
		t.Fatal("empty averages must be 0")
	}
}

func TestVisitorStop(t *testing.T) {
	data := textData(100_000, 5)
	payload := stdCompress(t, data, 6)
	dec := NewDecoder(Options{})
	stopper := &stopAfterN{n: 1000}
	err := dec.DecodeStream(bitio.NewReader(payload), stopper)
	if err != nil {
		t.Fatalf("Stop must be swallowed by DecodeStream: %v", err)
	}
	if stopper.seen < 1000 {
		t.Fatalf("saw %d bytes", stopper.seen)
	}
}

type stopAfterN struct {
	n    int
	seen int
}

func (s *stopAfterN) BlockStart(BlockEvent) error { return nil }
func (s *stopAfterN) Literal(byte) error {
	s.seen++
	if s.seen >= s.n {
		return Stop
	}
	return nil
}
func (s *stopAfterN) Match(l, d int) error {
	s.seen += l
	if s.seen >= s.n {
		return Stop
	}
	return nil
}
func (s *stopAfterN) BlockEnd(int64) error { return nil }

func TestASCIIByteTable(t *testing.T) {
	for b := 0; b < 256; b++ {
		want := (b >= 32 && b < 127) || b == '\t' || b == '\n' || b == '\r'
		if got := ASCIIByte(byte(b)); got != want {
			t.Fatalf("byte %d: got %v want %v", b, got, want)
		}
	}
}

func TestBlockTypeString(t *testing.T) {
	cases := map[BlockType]string{Stored: "stored", Fixed: "fixed", Dynamic: "dynamic", BlockType(3): "invalid"}
	for bt, want := range cases {
		if bt.String() != want {
			t.Fatalf("%d: got %s", bt, bt.String())
		}
	}
}
