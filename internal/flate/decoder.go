package flate

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/huffman"
)

// Validation failures. blockfind treats any of these as "not a block
// start here"; tests assert the precise mode.
var (
	ErrBadBlockType      = errors.New("flate: invalid block type 3")
	ErrFinalBlock        = errors.New("flate: BFINAL set (validation forbids final blocks)")
	ErrStoredLenMismatch = errors.New("flate: stored block LEN != ^NLEN")
	ErrBadHuffmanTree    = errors.New("flate: invalid dynamic Huffman description")
	ErrBadLengthSymbol   = errors.New("flate: invalid literal/length symbol (286/287)")
	ErrBadDistanceSymbol = errors.New("flate: invalid distance symbol (30/31)")
	ErrNonASCII          = errors.New("flate: non-ASCII literal under ASCII validation")
	ErrBlockTooLarge     = errors.New("flate: block output exceeds maximum")
	ErrBlockTooSmall     = errors.New("flate: block output under minimum")
	ErrTruncated         = errors.New("flate: truncated stream")
	ErrDistanceTooFar    = errors.New("flate: back-reference before start of stream")
)

// Stop is a sentinel: a Visitor may return it to halt decoding cleanly.
// DecodeStream then returns nil.
var Stop = errors.New("flate: stop requested") //nolint:staticcheck // sentinel, not an error condition

// BlockEvent describes a block boundary.
type BlockEvent struct {
	Type     BlockType
	Final    bool
	StartBit int64 // absolute bit offset of the BFINAL bit
	// DataBit is the bit offset where token data begins (after the
	// header and, for dynamic blocks, the tree description).
	DataBit int64
}

// Visitor receives the decoded token stream. Methods may return an
// error to abort decoding; returning Stop aborts without error.
type Visitor interface {
	BlockStart(ev BlockEvent) error
	// Literal is one decoded literal byte.
	Literal(b byte) error
	// Match is an LZ77 back-reference: copy length bytes from dist
	// bytes behind the current output position. 3<=length<=258,
	// 1<=dist<=32768.
	Match(length, dist int) error
	// BlockEnd fires after the end-of-block symbol; nextBit is the bit
	// offset at which the next block (or the gzip trailer) begins.
	BlockEnd(nextBit int64) error
}

// Options tunes validation. The zero value decodes permissively, as a
// normal gunzip would.
type Options struct {
	// Validate enables the stringent Appendix X-A checks used during
	// block detection: BFINAL must be 0, literals must satisfy
	// ValidByte, and block output size must be within
	// [MinBlockOutput, MaxBlockOutput].
	Validate bool
	// AllowFinal permits BFINAL=1 blocks even under Validate. The
	// confirmation pass of block detection sets this so syncing close
	// to the end of a stream is not rejected.
	AllowFinal bool
	// ValidByte, when non-nil under Validate, accepts a literal byte.
	// Nil defaults to printable ASCII plus \t \n \r.
	ValidByte func(byte) bool
	// MaxBlockOutput / MinBlockOutput bound the decompressed size of a
	// single block under Validate. Zero values default to the paper's
	// 4 MiB / 1 KiB.
	MaxBlockOutput int
	MinBlockOutput int
	// NoFast disables the multi-symbol fast token loop, forcing every
	// token through the scalar path. Output is bit-for-bit identical
	// either way; differential tests use this to pin the fast loop to
	// the scalar reference, and it doubles as a debugging kill switch.
	NoFast bool
}

const (
	defaultMaxBlockOutput = 4 << 20
	defaultMinBlockOutput = 1 << 10
)

// asciiOK is the default ValidByte table: printable ASCII, tab,
// newline, carriage return.
var asciiOK [256]bool

func init() {
	for b := 32; b < 127; b++ {
		asciiOK[b] = true
	}
	asciiOK['\t'] = true
	asciiOK['\n'] = true
	asciiOK['\r'] = true
}

// ASCIIByte reports whether b is acceptable in an ASCII text stream
// (the default stringent-validation predicate).
func ASCIIByte(b byte) bool { return asciiOK[b] }

// Decoder holds reusable scratch so repeated decoding (the block
// scanner probes millions of bit offsets) does not allocate. A Decoder
// is not safe for concurrent use; each goroutine owns one.
type Decoder struct {
	opts Options

	litLen  huffman.Decoder
	dist    huffman.Decoder
	codeLen huffman.Decoder

	lengths [maxLitLenSyms + maxDistSyms]uint8
	clLens  [numCodeLenSyms]uint8
	// hlit/hdist remember the current dynamic header's alphabet sizes
	// so the fast tables can be built from the same length slices.
	hlit, hdist int

	// Multi-symbol fast tables (built lazily, memoized on the tree
	// description) and the per-block context handed to FastTokenSinks.
	fastLit  huffman.LitLenFast
	fastDist huffman.DistFast
	fastCtx  FastCtx

	valid func(byte) bool
	// produced counts bytes emitted in the current block (validation).
	produced int
	// total counts bytes emitted across the stream, used to reject
	// back-references before the start when TrackStart is set.
	total      int64
	trackStart bool
	// storedBuf is reusable scratch for stored-block payloads.
	storedBuf []byte
}

// NewDecoder returns a Decoder with the given options.
func NewDecoder(opts Options) *Decoder {
	d := &Decoder{}
	d.reset(opts)
	return d
}

// reset reinitialises a (possibly recycled) Decoder for opts. The
// Huffman tables need no clearing: every block re-Inits them.
func (d *Decoder) reset(opts Options) {
	d.opts = opts
	d.valid = opts.ValidByte
	if d.valid == nil {
		d.valid = ASCIIByte
	}
	if d.opts.MaxBlockOutput == 0 {
		d.opts.MaxBlockOutput = defaultMaxBlockOutput
	}
	if d.opts.MinBlockOutput == 0 {
		d.opts.MinBlockOutput = defaultMinBlockOutput
	}
	d.produced = 0
	d.total = 0
	d.trackStart = false
	d.fastCtx = FastCtx{}
}

// decoderPool recycles Decoders. A Decoder carries several KiB of
// Huffman table scratch, and the parallel engine creates one per chunk
// per segment — pooling keeps steady-state streaming allocation-free.
var decoderPool = sync.Pool{
	New: func() any { return &Decoder{} },
}

// GetDecoder returns a pooled Decoder initialised with opts. Pair with
// PutDecoder when done; the Decoder must not be used afterwards.
func GetDecoder(opts Options) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.reset(opts)
	return d
}

// PutDecoder returns a Decoder to the pool.
func PutDecoder(d *Decoder) {
	if d != nil {
		decoderPool.Put(d)
	}
}

// SetTrackStart makes the decoder reject any back-reference that
// reaches before the first byte it produced. This is correct when
// decoding from the true start of a DEFLATE stream and is how a normal
// gunzip behaves; it must be off when decoding from a mid-stream block
// with an assumed 32 KiB context.
func (d *Decoder) SetTrackStart(on bool) {
	d.trackStart = on
	d.total = 0
}

// DecodeStream decodes blocks until the final block completes, the
// visitor requests Stop, or an error occurs.
func (d *Decoder) DecodeStream(r *bitio.Reader, v Visitor) error {
	for {
		final, err := d.DecodeBlock(r, v)
		if err != nil {
			if errors.Is(err, Stop) {
				return nil
			}
			return err
		}
		if final {
			return nil
		}
	}
}

// DecodeBlock decodes exactly one block, invoking the visitor for the
// boundary events and every token. It returns the BFINAL flag.
func (d *Decoder) DecodeBlock(r *bitio.Reader, v Visitor) (final bool, err error) {
	startBit := r.BitPos()
	hdr, err := r.Take(3)
	if err != nil {
		return false, ErrTruncated
	}
	isFinal := hdr&1 == 1
	btype := BlockType(hdr >> 1)

	if d.opts.Validate && isFinal && !d.opts.AllowFinal {
		return false, ErrFinalBlock
	}

	switch btype {
	case Stored:
		err = d.decodeStored(r, v, BlockEvent{Type: Stored, Final: isFinal, StartBit: startBit})
	case Fixed:
		// The fixed trees are constants; building their tables per block
		// used to dominate block *scanning* (every probe offset whose
		// three header bits read BTYPE=01 paid two table builds before
		// failing validation). They are built once and shared: Decode is
		// read-only over an initialised table, so concurrent scanners
		// can use them safely.
		lit, dist := fixedTables()
		err = d.decodeCompressedWith(r, v, BlockEvent{Type: Fixed, Final: isFinal, StartBit: startBit, DataBit: r.BitPos()}, lit, dist)
	case Dynamic:
		if err = d.readDynamicHeader(r); err != nil {
			return false, err
		}
		err = d.decodeCompressed(r, v, BlockEvent{Type: Dynamic, Final: isFinal, StartBit: startBit, DataBit: r.BitPos()})
	default:
		return false, ErrBadBlockType
	}
	if err != nil {
		return false, err
	}
	return isFinal, nil
}

func (d *Decoder) decodeStored(r *bitio.Reader, v Visitor, ev BlockEvent) error {
	r.AlignByte()
	lenBits, err := r.Take(16)
	if err != nil {
		return ErrTruncated
	}
	nlenBits, err := r.Take(16)
	if err != nil {
		return ErrTruncated
	}
	if lenBits != ^nlenBits&0xffff {
		return ErrStoredLenMismatch
	}
	n := int(lenBits)
	if d.opts.Validate && n > d.opts.MaxBlockOutput {
		return ErrBlockTooLarge
	}
	ev.DataBit = r.BitPos()
	if err := v.BlockStart(ev); err != nil {
		return err
	}
	if cap(d.storedBuf) < n {
		d.storedBuf = make([]byte, n)
	}
	buf := d.storedBuf[:n]
	if err := r.ReadBytes(buf); err != nil {
		return ErrTruncated
	}
	for _, b := range buf {
		if d.opts.Validate && !d.valid(b) {
			return ErrNonASCII
		}
		if err := v.Literal(b); err != nil {
			return err
		}
	}
	d.total += int64(n)
	// Stored blocks are exempt from MinBlockOutput: the LEN/^NLEN pair
	// already self-certifies them, and small (even empty) stored
	// blocks occur legitimately as the sync-flush separators of
	// pigz-style and blocked gzip files — the "special case" the
	// paper's prototype left unimplemented (Section VII).
	return v.BlockEnd(r.BitPos())
}

// readDynamicHeader parses HLIT/HDIST/HCLEN and the two code-length-
// compressed trees, leaving d.litLen and d.dist initialised.
func (d *Decoder) readDynamicHeader(r *bitio.Reader) error {
	counts, err := r.Take(14)
	if err != nil {
		return ErrTruncated
	}
	hlit := int(counts&0x1f) + 257
	hdist := int(counts>>5&0x1f) + 1
	hclen := int(counts>>10&0xf) + 4
	d.hlit, d.hdist = hlit, hdist
	quiet := d.opts.Validate // probe mode: bare sentinels, no alloc
	if hlit > maxLitLenSyms {
		if quiet {
			return ErrBadHuffmanTree
		}
		// HLIT of 30 or 31 encodes 287/288 literal codes; 287+1=288 is
		// legal (symbol 287 exists in the fixed tree), >288 is not
		// encodable, but hlit can reach 286+? 5 bits -> 257..288.
		return fmt.Errorf("%w: HLIT=%d", ErrBadHuffmanTree, hlit)
	}

	clear(d.clLens[:])
	for i := 0; i < hclen; i++ {
		b, err := r.Take(3)
		if err != nil {
			return ErrTruncated
		}
		d.clLens[codeLenOrder[i]] = uint8(b)
	}
	if err := d.codeLen.Init(d.clLens[:], false); err != nil {
		if quiet {
			return ErrBadHuffmanTree
		}
		return fmt.Errorf("%w: code-length tree: %w", ErrBadHuffmanTree, err)
	}

	total := hlit + hdist
	lens := d.lengths[:total]
	clear(lens)
	for i := 0; i < total; {
		sym, err := d.codeLen.Decode(r)
		if err != nil {
			if quiet {
				return ErrBadHuffmanTree
			}
			return fmt.Errorf("%w: %w", ErrBadHuffmanTree, err)
		}
		switch {
		case sym < 16:
			lens[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				if quiet {
					return ErrBadHuffmanTree
				}
				return fmt.Errorf("%w: repeat with no previous length", ErrBadHuffmanTree)
			}
			rep, err := r.Take(2)
			if err != nil {
				return ErrTruncated
			}
			n := int(rep) + 3
			if i+n > total {
				if quiet {
					return ErrBadHuffmanTree
				}
				return fmt.Errorf("%w: repeat past end", ErrBadHuffmanTree)
			}
			prev := lens[i-1]
			for j := 0; j < n; j++ {
				lens[i] = prev
				i++
			}
		case sym == 17:
			rep, err := r.Take(3)
			if err != nil {
				return ErrTruncated
			}
			n := int(rep) + 3
			if i+n > total {
				if quiet {
					return ErrBadHuffmanTree
				}
				return fmt.Errorf("%w: zero-repeat past end", ErrBadHuffmanTree)
			}
			i += n
		case sym == 18:
			rep, err := r.Take(7)
			if err != nil {
				return ErrTruncated
			}
			n := int(rep) + 11
			if i+n > total {
				if quiet {
					return ErrBadHuffmanTree
				}
				return fmt.Errorf("%w: zero-repeat past end", ErrBadHuffmanTree)
			}
			i += n
		default:
			if quiet {
				return ErrBadHuffmanTree
			}
			return fmt.Errorf("%w: code-length symbol %d", ErrBadHuffmanTree, sym)
		}
	}
	if lens[endOfBlock] == 0 {
		if quiet {
			return ErrBadHuffmanTree
		}
		return fmt.Errorf("%w: no end-of-block code", ErrBadHuffmanTree)
	}
	if err := d.litLen.Init(lens[:hlit], false); err != nil {
		if quiet {
			return ErrBadHuffmanTree
		}
		return fmt.Errorf("%w: litlen tree: %w", ErrBadHuffmanTree, err)
	}
	if err := d.dist.Init(lens[hlit:total], true); err != nil {
		if quiet {
			return ErrBadHuffmanTree
		}
		return fmt.Errorf("%w: dist tree: %w", ErrBadHuffmanTree, err)
	}
	return nil
}

// decodeCompressed runs the token loop for a dynamic block using the
// decoder's own (just-Initialised) trees.
func (d *Decoder) decodeCompressed(r *bitio.Reader, v Visitor, ev BlockEvent) error {
	return d.decodeCompressedWith(r, v, ev, &d.litLen, &d.dist)
}

// fastTablesFor returns the multi-symbol tables for the current block,
// building (or memo-hitting) the dynamic ones from the header's code
// lengths. A nil return degrades to the scalar loop — e.g. for the
// degenerate no-distance-codes description.
func (d *Decoder) fastTablesFor(bt BlockType) (*huffman.LitLenFast, *huffman.DistFast) {
	if bt == Fixed {
		return fixedFastTables()
	}
	total := d.hlit + d.hdist
	if d.fastLit.Init(d.lengths[:d.hlit], lengthBase[:], lengthExtra[:]) != nil {
		return nil, nil
	}
	if d.fastDist.Init(d.lengths[d.hlit:total], distBase[:], distExtra[:]) != nil {
		return nil, nil
	}
	return &d.fastLit, &d.fastDist
}

// decodeCompressedWith runs the token loop for a fixed or dynamic
// block over explicit Huffman tables (fixed blocks pass the shared
// package-level constants).
func (d *Decoder) decodeCompressedWith(r *bitio.Reader, v Visitor, ev BlockEvent, litLen, dist *huffman.Decoder) error {
	if err := v.BlockStart(ev); err != nil {
		return err
	}
	d.produced = 0
	validate := d.opts.Validate

	// Fast path: a non-validating decode into a sink that exposes its
	// output window runs the multi-symbol loop over 64-bit refills.
	// The scalar loop below remains the reference: it finishes stream
	// tails (< 48 buffered bits), and re-decodes any token the fast
	// loop bailed on so anomalies keep their canonical errors.
	var fc *FastCtx
	if !validate && !d.opts.NoFast {
		if fs, ok := v.(FastTokenSink); ok {
			if flit, fdist := d.fastTablesFor(ev.Type); flit != nil {
				fc = &d.fastCtx
				*fc = FastCtx{R: r, Lit: flit, Dist: fdist, Track: d.trackStart, sink: fs}
			}
		}
	}

	for {
		if fc != nil {
			fc.Produced = d.total
			n, eob, err := fc.sink.FastTokens(fc)
			d.total += n
			if err != nil {
				return err
			}
			if eob {
				return v.BlockEnd(r.BitPos())
			}
			// Fall through: decode exactly one token the scalar way,
			// then hand control back to the fast loop.
		}
		sym, err := litLen.Decode(r)
		if err != nil {
			if validate {
				return ErrTruncated
			}
			return fmt.Errorf("%w: %w", ErrTruncated, err)
		}
		switch {
		case sym < 256:
			b := byte(sym)
			if validate && !d.valid(b) {
				return ErrNonASCII
			}
			d.produced++
			d.total++
			if validate && d.produced > d.opts.MaxBlockOutput {
				return ErrBlockTooLarge
			}
			if err := v.Literal(b); err != nil {
				return err
			}
		case sym == endOfBlock:
			if validate && d.produced < d.opts.MinBlockOutput {
				return ErrBlockTooSmall
			}
			return v.BlockEnd(r.BitPos())
		default:
			lsym := sym - 257
			if lsym >= len(lengthBase) {
				return ErrBadLengthSymbol
			}
			extra, err := r.Take(uint(lengthExtra[lsym]))
			if err != nil {
				return ErrTruncated
			}
			length := int(lengthBase[lsym]) + int(extra)

			dsym, err := dist.Decode(r)
			if err != nil {
				if validate {
					return ErrTruncated
				}
				return fmt.Errorf("%w: %w", ErrTruncated, err)
			}
			if dsym >= len(distBase) {
				return ErrBadDistanceSymbol
			}
			dextra, err := r.Take(uint(distExtra[dsym]))
			if err != nil {
				return ErrTruncated
			}
			dist := int(distBase[dsym]) + int(dextra)
			if d.trackStart && int64(dist) > d.total {
				return ErrDistanceTooFar
			}
			d.produced += length
			d.total += int64(length)
			if validate && d.produced > d.opts.MaxBlockOutput {
				return ErrBlockTooLarge
			}
			if err := v.Match(length, dist); err != nil {
				return err
			}
		}
	}
}
