// Package flate implements a DEFLATE (RFC 1951) token-stream decoder.
//
// Unlike compress/flate in the standard library, this decoder exposes
// the structure the pugz algorithm needs: exact bit positions of block
// boundaries, the literal/match token stream (so a symbolic context
// can be threaded through decompression), and a stringent validation
// mode used by internal/blockfind to reject false block starts early
// (Appendix X-A of the paper).
package flate

import (
	"sync"

	"repro/internal/huffman"
)

// Block types as encoded in the 2-bit BTYPE field.
type BlockType uint8

const (
	Stored  BlockType = 0
	Fixed   BlockType = 1
	Dynamic BlockType = 2
)

func (t BlockType) String() string {
	switch t {
	case Stored:
		return "stored"
	case Fixed:
		return "fixed"
	case Dynamic:
		return "dynamic"
	}
	return "invalid"
}

const (
	// WindowSize is the DEFLATE sliding-window size: back-references
	// never reach farther than this many bytes.
	WindowSize = 32 * 1024

	// MinMatch and MaxMatch bound DEFLATE match lengths.
	MinMatch = 3
	MaxMatch = 258

	// endOfBlock is the literal/length symbol terminating every block.
	endOfBlock = 256

	// maxLitLenSyms / maxDistSyms are the alphabet sizes.
	maxLitLenSyms = 288
	maxDistSyms   = 32
	// numCodeLenSyms is the size of the code-length alphabet used to
	// compress the dynamic-tree description itself.
	numCodeLenSyms = 19
)

// lengthBase/lengthExtra: match length decode for symbols 257..285.
// Symbol 284 with all extra bits set would be 258+? — RFC: 284 covers
// 227..257 with 5 extra bits, 285 is exactly 258 with 0 extra.
var lengthBase = [29]uint16{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

// distBase/distExtra: distance decode for symbols 0..29.
var distBase = [30]uint32{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var distExtra = [30]uint8{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// codeLenOrder is the famous permutation in which code-length code
// lengths are transmitted (RFC 1951 section 3.2.7).
var codeLenOrder = [numCodeLenSyms]uint8{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// fixedLitLenLengths returns the code lengths of the fixed
// literal/length tree (section 3.2.6).
func fixedLitLenLengths() []uint8 {
	l := make([]uint8, maxLitLenSyms)
	for i := 0; i <= 143; i++ {
		l[i] = 8
	}
	for i := 144; i <= 255; i++ {
		l[i] = 9
	}
	for i := 256; i <= 279; i++ {
		l[i] = 7
	}
	for i := 280; i <= 287; i++ {
		l[i] = 8
	}
	return l
}

// fixedDistLengths returns the code lengths of the fixed distance tree:
// all 32 symbols get 5 bits (symbols 30 and 31 never occur in valid
// streams but participate in the code space).
func fixedDistLengths() []uint8 {
	l := make([]uint8, maxDistSyms)
	for i := range l {
		l[i] = 5
	}
	return l
}

// fixedTables returns the shared decode tables of the fixed trees,
// built on first use. They are immutable afterwards and safe for
// concurrent Decode calls, so every decoder (and every block-scanner
// probe, which hits BTYPE=01 on ~a quarter of all candidate bit
// offsets) shares one copy instead of rebuilding them per block.
func fixedTables() (litLen, dist *huffman.Decoder) {
	fixedOnce.Do(func() {
		var err error
		if err = fixedLit.Init(fixedLitLenLengths(), false); err == nil {
			err = fixedDist.Init(fixedDistLengths(), true)
		}
		if err != nil {
			panic("flate: fixed trees: " + err.Error()) // static tables; cannot fail
		}
	})
	return &fixedLit, &fixedDist
}

var (
	fixedOnce sync.Once
	fixedLit  huffman.Decoder
	fixedDist huffman.Decoder
)

// fixedFastTables returns the shared multi-symbol fast tables of the
// fixed trees, built on first use and immutable afterwards. Lookups
// are plain slice reads, so concurrent fast loops share one copy.
func fixedFastTables() (*huffman.LitLenFast, *huffman.DistFast) {
	fixedFastOnce.Do(func() {
		var err error
		if err = fixedFastLit.Init(fixedLitLenLengths(), lengthBase[:], lengthExtra[:]); err == nil {
			err = fixedFastDist.Init(fixedDistLengths(), distBase[:], distExtra[:])
		}
		if err != nil {
			panic("flate: fixed fast trees: " + err.Error()) // static tables; cannot fail
		}
	})
	return &fixedFastLit, &fixedFastDist
}

var (
	fixedFastOnce sync.Once
	fixedFastLit  huffman.LitLenFast
	fixedFastDist huffman.DistFast
)
