package flate

import (
	"bytes"
	stdflate "compress/flate"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// decodeBoth decodes payload once with the fast loop enabled and once
// with NoFast pinning the scalar reference, returning both outputs and
// recorded spans. The two decodes must agree byte-for-byte and
// span-for-span; callers assert on the returned values.
func decodeBoth(t *testing.T, payload []byte) (fast, scalar []byte, fastSpans, scalarSpans []BlockSpan) {
	t.Helper()
	run := func(noFast bool) ([]byte, []BlockSpan) {
		r, err := bitio.NewReaderAt(payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		sink := &ByteSink{}
		sink.RecordBlocks()
		dec := NewDecoder(Options{NoFast: noFast})
		dec.SetTrackStart(true)
		if err := dec.DecodeStream(r, sink); err != nil {
			t.Fatalf("noFast=%v: %v", noFast, err)
		}
		return sink.Out, sink.Blocks
	}
	fast, fastSpans = run(false)
	scalar, scalarSpans = run(true)
	return
}

func assertSameDecode(t *testing.T, payload []byte, want []byte) {
	t.Helper()
	fast, scalar, fs, ss := decodeBoth(t, payload)
	if !bytes.Equal(fast, scalar) {
		t.Fatalf("fast/scalar output mismatch: %d vs %d bytes", len(fast), len(scalar))
	}
	if want != nil && !bytes.Equal(fast, want) {
		t.Fatalf("fast output differs from original: %d vs %d bytes", len(fast), len(want))
	}
	if len(fs) != len(ss) {
		t.Fatalf("span count mismatch: %d vs %d", len(fs), len(ss))
	}
	for i := range fs {
		if fs[i] != ss[i] {
			t.Fatalf("span %d mismatch: fast %+v scalar %+v", i, fs[i], ss[i])
		}
	}
}

// TestFastScalarParityLevels pins the fast loop to the scalar loop on
// stdlib streams at every compression level (0 = stored blocks,
// HuffmanOnly = literal-dense fixed-style trees).
func TestFastScalarParityLevels(t *testing.T) {
	data := textData(200_000, 71)
	levels := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, stdflate.HuffmanOnly}
	for _, level := range levels {
		assertSameDecode(t, stdCompress(t, data, level), data)
	}
}

// TestFastScalarParityRandomInputs covers input shapes that stress
// different table layouts: incompressible bytes (literal-heavy,
// near-uniform code lengths), long runs (overlapping matches), and
// tiny inputs that finish inside the < 48-bit tail.
func TestFastScalarParityRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	shapes := []func(n int) []byte{
		func(n int) []byte { // incompressible
			b := make([]byte, n)
			rng.Read(b)
			return b
		},
		func(n int) []byte { // RLE-style runs of varying period
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(i / (1 + i%7) % 251)
			}
			return b
		},
		func(n int) []byte { // skewed alphabet -> short literal codes
			b := make([]byte, n)
			for i := range b {
				b[i] = "eetta o"[rng.Intn(7)]
			}
			return b
		},
	}
	for si, shape := range shapes {
		for _, n := range []int{0, 1, 2, 3, 7, 300, 65_000} {
			data := shape(n)
			for _, level := range []int{1, 6, 9} {
				payload := stdCompress(t, data, level)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("shape %d n=%d level=%d: panic %v", si, n, level, r)
						}
					}()
					assertSameDecode(t, payload, data)
				}()
			}
		}
	}
}

// TestFastTailSinkParity pins the TailSink fast loop to its scalar
// path, including Limit stops at awkward offsets (mid-match, exactly
// on a match end, one past a packed literal pair) and the sliding
// compaction across multi-window outputs.
func TestFastTailSinkParity(t *testing.T) {
	data := textData(300_000, 73) // > 4 windows: exercises slide()
	payload := stdCompress(t, data, 6)

	run := func(noFast bool, limit int64) (int64, []byte, error) {
		r, err := bitio.NewReaderAt(payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewTailSink(nil)
		defer sink.Release()
		sink.Limit = limit
		dec := NewDecoder(Options{NoFast: noFast})
		dec.SetTrackStart(true)
		err = dec.DecodeStream(r, sink)
		w := make([]byte, WindowSize)
		sink.WindowInto(w)
		return sink.Len(), w, err
	}

	limits := []int64{0, 1, 2, 3, 100, WindowSize - 1, WindowSize, WindowSize + 1,
		tailSlideBytes, tailSlideBytes + 7, 299_999, 300_000}
	for _, limit := range limits {
		fn, fw, ferr := run(false, limit)
		sn, sw, serr := run(true, limit)
		if fn != sn {
			t.Fatalf("limit %d: total mismatch fast=%d scalar=%d", limit, fn, sn)
		}
		if !bytes.Equal(fw, sw) {
			t.Fatalf("limit %d: window mismatch", limit)
		}
		if (ferr == nil) != (serr == nil) || (ferr != nil && ferr.Error() != serr.Error()) {
			t.Fatalf("limit %d: error mismatch fast=%v scalar=%v", limit, ferr, serr)
		}
	}
}

// TestFastPrefixSeededChunk decodes a mid-stream block sequence with a
// seeded context prefix — the skip-mode chunk shape — and checks the
// fast loop resolves prefix back-references identically to scalar.
func TestFastPrefixSeededChunk(t *testing.T) {
	data := textData(250_000, 74)
	payload := stdCompress(t, data, 6)
	_, spans, err := DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a block boundary past the first window so the chunk needs
	// real history.
	var start BlockSpan
	for _, sp := range spans {
		if sp.OutStart > WindowSize {
			start = sp
			break
		}
	}
	if start.OutStart == 0 {
		t.Skip("no block boundary past first window")
	}

	run := func(noFast bool) []byte {
		r, err := bitio.NewReaderAt(payload, start.Event.StartBit)
		if err != nil {
			t.Fatal(err)
		}
		sink := &ByteSink{}
		sink.Out = append(sink.Out, data[start.OutStart-WindowSize:start.OutStart]...)
		sink.Prefix = WindowSize
		dec := NewDecoder(Options{NoFast: noFast})
		if err := dec.DecodeStream(r, sink); err != nil {
			t.Fatalf("noFast=%v: %v", noFast, err)
		}
		return sink.Output()
	}
	fast, scalar := run(false), run(true)
	if !bytes.Equal(fast, scalar) {
		t.Fatalf("prefix chunk fast/scalar mismatch: %d vs %d bytes", len(fast), len(scalar))
	}
	if want := data[start.OutStart:]; !bytes.Equal(fast, want) {
		t.Fatalf("prefix chunk output wrong: %d vs %d bytes", len(fast), len(want))
	}
}

// TestFastErrorParity checks anomalous streams fail with the same
// canonical error whether the fast loop runs or not — the fast kernel
// must bail without consuming so the scalar loop reports the error.
func TestFastErrorParity(t *testing.T) {
	data := textData(50_000, 75)
	for _, level := range []int{1, 6, 9} {
		payload := stdCompress(t, data, level)
		// Truncations at many points, including mid-stream.
		for _, cut := range []int{len(payload) / 3, len(payload) / 2, len(payload) - 1} {
			for _, noFast := range []bool{false, true} {
				if _, err := (&testDecode{noFast: noFast}).run(payload[:cut]); err == nil {
					t.Fatalf("level %d cut %d noFast=%v: expected error", level, cut, noFast)
				}
			}
		}
	}
	// A match reaching before the stream start must yield
	// ErrDistanceTooFar on both paths (fixed block, dist 1 at offset 0).
	bad := fixedBlockMatchBeforeStart(t)
	for _, noFast := range []bool{false, true} {
		_, err := (&testDecode{noFast: noFast, track: true}).run(bad)
		if err == nil {
			t.Fatalf("noFast=%v: expected ErrDistanceTooFar", noFast)
		}
	}
}

type testDecode struct {
	noFast bool
	track  bool
}

func (td *testDecode) run(payload []byte) ([]byte, error) {
	r, err := bitio.NewReaderAt(payload, 0)
	if err != nil {
		return nil, err
	}
	sink := &ByteSink{}
	dec := NewDecoder(Options{NoFast: td.noFast})
	if td.track {
		dec.SetTrackStart(true)
	}
	if err := dec.DecodeStream(r, sink); err != nil {
		return nil, err
	}
	return sink.Out, nil
}

// fixedBlockMatchBeforeStart hand-assembles a final fixed block whose
// first token is a match (length 3, distance 1) with no prior output.
func fixedBlockMatchBeforeStart(t *testing.T) []byte {
	t.Helper()
	var bits []uint8 // one entry per bit, LSB-first stream order
	push := func(v uint32, n uint, msbFirst bool) {
		for i := uint(0); i < n; i++ {
			var b uint8
			if msbFirst {
				b = uint8(v >> (n - 1 - i) & 1)
			} else {
				b = uint8(v >> i & 1)
			}
			bits = append(bits, b)
		}
	}
	push(1, 1, false)      // BFINAL
	push(1, 2, false)      // BTYPE fixed
	push(257-256, 7, true) // length symbol 257 (code 0000001): 7-bit code
	// 257 has code value 0b0000001? Fixed tree: syms 256..279 are 7-bit
	// codes 0000000..0010111; 257 -> 0000001, sent MSB-first.
	push(0, 5, true) // distance symbol 0 (5-bit code 00000): dist 1
	push(0, 7, true) // end of block (code 0000000)
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		out[i/8] |= b << (i % 8)
	}
	return out
}
