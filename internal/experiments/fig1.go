package experiments

import (
	"fmt"
	"io"

	"repro/internal/fastq"

	pugz "repro"
)

// RunFig1 reproduces Figure 1: after a random access into a
// gzip-compressed FASTQ file, show the first bytes of a selection of
// decompressed blocks. Early blocks are dominated by undetermined
// ('?') characters; later blocks resolve as literals displace the
// initial context.
func RunFig1(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Figure 1: decompression from a random location (normal level)")
	data := fastq.Generate(fastq.GenOptions{
		Reads: int(20000 * clampScale(c.Scale)),
		Seed:  55 + c.Seed,
	})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		return err
	}
	res, err := pugz.RandomAccess(gz, int64(len(gz)/3), pugz.RandomAccessOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random access at compressed byte %d -> synced to payload bit %d, %d blocks decoded\n",
		len(gz)/3, res.BlockBit, len(res.Blocks))

	show := []int{0, 1, 10, 50}
	for _, idx := range show {
		if idx >= len(res.Blocks) {
			break
		}
		b := res.Blocks[idx]
		end := b.OutStart + 192
		if end > b.OutEnd {
			end = b.OutEnd
		}
		undet := 0
		snippet := res.Text[b.OutStart:end]
		for _, ch := range snippet {
			if ch == pugz.Undetermined {
				undet++
			}
		}
		fmt.Fprintf(w, "\nblock %d (first %d bytes, %d undetermined):\n", idx, len(snippet), undet)
		for off := 0; off < len(snippet); off += 64 {
			e := off + 64
			if e > len(snippet) {
				e = len(snippet)
			}
			fmt.Fprintf(w, "  %s\n", sanitize(snippet[off:e]))
		}
	}
	fmt.Fprintln(w, "\nexpected shape: successive blocks contain fewer and fewer '?' characters.")
	return nil
}

// sanitize renders control characters visibly.
func sanitize(b []byte) []byte {
	out := make([]byte, len(b))
	for i, ch := range b {
		if ch == '\n' {
			out[i] = '.'
		} else if ch < 32 || ch > 126 {
			out[i] = '#'
		} else {
			out[i] = ch
		}
	}
	return out
}
