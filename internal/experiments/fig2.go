package experiments

import (
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/dna"
	"repro/internal/flate"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/tracked"
)

// Fig2Series is one curve of Figure 2: the fraction of undetermined
// characters per non-overlapping window of width oa, starting the
// decode at the stream's second block with a fully undetermined
// context.
type Fig2Series struct {
	Level  int
	AvgOff float64 // o_a: mean match offset (window width)
	AvgLen float64 // l_a: mean match length
	Fracs  []float64
	// VanishIdx is the first window index from which every later
	// window is fully determined (-1 if never).
	VanishIdx int
}

// measureTokenStats decodes the compressed stream and returns mean
// match offset and length (the paper's o_a and l_a).
func measureTokenStats(payload []byte) (oa, la float64, err error) {
	r := bitio.NewReader(payload)
	var c flate.CountingSink
	dec := flate.NewDecoder(flate.Options{})
	if err := dec.DecodeStream(r, &c); err != nil {
		return 0, 0, err
	}
	return c.AvgMatchDist(), c.AvgMatchLen(), nil
}

// fig2Curve runs the Section IV-C experiment on one corpus and level.
func fig2Curve(data []byte, level int) (Fig2Series, error) {
	s := Fig2Series{Level: level, VanishIdx: -1}
	payload, err := deflate.Compress(data, level)
	if err != nil {
		return s, err
	}
	oa, la, err := measureTokenStats(payload)
	if err != nil {
		return s, err
	}
	s.AvgOff, s.AvgLen = oa, la

	_, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		return s, err
	}
	if len(spans) < 2 {
		return s, fmt.Errorf("fig2: only %d blocks at level %d", len(spans), level)
	}
	// Decode from the second block with an undetermined context.
	res, err := tracked.DecodeFrom(payload, spans[1].Event.StartBit, tracked.DecodeOptions{})
	if err != nil {
		return s, err
	}
	win := int(oa)
	if win < 64 {
		win = 64
	}
	s.Fracs = tracked.UndeterminedPerWindow(res.Out, win)
	for i := len(s.Fracs) - 1; i >= 0; i-- {
		if s.Fracs[i] > 0 {
			if i+1 < len(s.Fracs) {
				s.VanishIdx = i + 1
			}
			break
		}
		if i == 0 {
			s.VanishIdx = 0
		}
	}
	return s, nil
}

// RunFig2Top regenerates Figure 2 (top): random DNA.
func RunFig2Top(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Figure 2 (top): undetermined characters, random DNA")
	n := c.scaled(1_000_000) // the paper's 1 Mbp
	data := dna.Random(n, 42+c.Seed)
	fmt.Fprintf(w, "corpus: %d bp random DNA\n", n)

	var l1FromDefault float64
	for _, level := range []int{1, 4, 6, 9} {
		s, err := fig2Curve(data, level)
		if err != nil {
			return err
		}
		printFig2Series(w, fmt.Sprintf("gzip -%d", level), s)
		if level == 6 {
			l1FromDefault = model.L1(model.DefaultWindow, s.AvgLen)
		}
	}

	// Model line (Section V-C) using l_a measured at the default level.
	nWin := 200
	curve := model.ModelCurve(nWin, l1FromDefault)
	fmt.Fprintf(w, "\nmodel (L1=%.4f): %s\n", l1FromDefault, stats.Sparkline(curve))
	fmt.Fprintf(w, "model fractions at windows 1,25,50,100,150,200: ")
	for _, i := range []int{1, 25, 50, 100, 150, 200} {
		fmt.Fprintf(w, "%.3f ", model.UndeterminedFrac(i, l1FromDefault))
	}
	fmt.Fprintln(w)
	return nil
}

// RunFig2Bottom regenerates Figure 2 (bottom): the FASTQ-like string
// of Section IV-D (150 random DNA chars + 300 'x', repeated). The
// paper uses 150 MB; the default scale uses 12 MB, which preserves the
// qualitative result (level 1 resolves only after a very long delay,
// higher levels resolve quickly).
func RunFig2Bottom(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Figure 2 (bottom): undetermined characters, FASTQ-like string")
	n := c.scaled(12_000_000)
	data := dna.PaperFASTQLike(n, 43+c.Seed)
	fmt.Fprintf(w, "corpus: %d bytes FASTQ-like (150 DNA + 300 'x')\n", n)
	for _, level := range []int{1, 4, 6, 9} {
		s, err := fig2Curve(data, level)
		if err != nil {
			return err
		}
		printFig2Series(w, fmt.Sprintf("gzip -%d", level), s)
	}
	return nil
}

func printFig2Series(w io.Writer, name string, s Fig2Series) {
	fmt.Fprintf(w, "\n%s: o_a=%.0f l_a=%.1f windows=%d vanish@%d\n",
		name, s.AvgOff, s.AvgLen, len(s.Fracs), s.VanishIdx)
	show := s.Fracs
	if len(show) > 120 {
		// Down-sample for terminal display; full data available to
		// callers via fig2Curve.
		step := len(show) / 120
		ds := make([]float64, 0, 120)
		for i := 0; i < len(show); i += step {
			ds = append(ds, show[i])
		}
		show = ds
	}
	fmt.Fprintf(w, "  %s\n", stats.Sparkline(show))
	fmt.Fprintf(w, "  first 10 windows: ")
	for i := 0; i < 10 && i < len(s.Fracs); i++ {
		fmt.Fprintf(w, "%.3f ", s.Fracs[i])
	}
	fmt.Fprintln(w)
}
