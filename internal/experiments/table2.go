package experiments

import (
	"bytes"
	stdgzip "compress/gzip"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/fastq"
	"repro/internal/stats"

	pugz "repro"
)

// table2Corpus builds the three FASTQ files of Section VII-C at the
// normal compression level (the paper preloads 3-7.5 GB files into
// memory; we scale down but keep three distinct files).
func table2Corpus(c Config) ([][]byte, error) {
	var out [][]byte
	for i, reads := range []int{60000, 80000, 100000} {
		data := fastq.Generate(fastq.GenOptions{
			Reads: int(float64(reads) * clampScale(c.Scale)),
			Seed:  int64(200+i) + c.Seed,
		})
		gz, err := pugz.Compress(data, 6)
		if err != nil {
			return nil, err
		}
		out = append(out, gz)
	}
	return out, nil
}

// SpeedResult is one method's measurement.
type SpeedResult struct {
	Method string
	// MBPerSec is compressed input MB per wall second (the paper's
	// Table II metric).
	MBPerSec float64
	// WorkMBPerSec divides by aggregate CPU work instead of wall time:
	// on a single-core host this is the fair per-method comparison,
	// and wall == work for the sequential baselines.
	WorkMBPerSec float64
}

// gunzipRole decompresses with this repository's exact sequential
// decoder (CRC-verified), standing in for gunzip.
func gunzipRole(gz []byte) (int, error) {
	out, err := pugz.GunzipSequential(gz)
	return len(out), err
}

// libdeflateRole uses the Go standard library's optimized inflate,
// standing in for libdeflate (the fastest sequential implementation
// available to a pure-Go build).
func libdeflateRole(gz []byte) (int, error) {
	zr, err := stdgzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		return 0, err
	}
	defer zr.Close()
	var n int
	buf := make([]byte, 1<<20)
	for {
		k, err := zr.Read(buf)
		n += k
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// catRole copies the *decompressed* bytes through memory: the paper's
// upper bound ("the command cat"). Returns output size.
func catRole(plain []byte) int {
	dst := make([]byte, len(plain))
	copy(dst, plain)
	return len(dst)
}

// measure runs fn `reps` times over all files and returns compressed
// MB per second of wall time.
func measure(files [][]byte, reps int, fn func([]byte) (int, error)) (float64, error) {
	var totalBytes int64
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, gz := range files {
			if _, err := fn(gz); err != nil {
				return 0, err
			}
			totalBytes += int64(len(gz))
		}
	}
	return stats.MBPerSec(totalBytes, time.Since(start)), nil
}

// pugzMeasurement is a clean throughput decomposition for one thread
// count, obtained from a Sequential-mode run (each chunk measured in
// isolation, see pugz.Options.Sequential) plus a normal wall-clock run.
type pugzMeasurement struct {
	Chunks int
	// WallMBs is compressed MB/s of a normal concurrent run on this
	// host (bounded by physical cores).
	WallMBs float64
	// SimMBs divides by the simulated makespan: max over chunks of
	// (find+pass1), plus the sequential window resolution, plus the
	// slowest translation — the wall time of a machine with one free
	// core per chunk. This is the number comparable to the paper's
	// multi-core measurements.
	SimMBs float64
	// SimNoSyncMBs excludes the block-detection cost, isolating the
	// decompression scaling (the paper's GB-sized files make sync
	// negligible; at this repository's MB scale it is not).
	SimNoSyncMBs float64
	// WorkMBs is compressed MB/s per unit of total CPU work.
	WorkMBs float64
}

// measurePugz measures one thread count over all files.
func measurePugz(files [][]byte, reps, threads int) (pugzMeasurement, error) {
	var m pugzMeasurement
	var totalBytes int64
	var wallDur, simDur, simNoSync time.Duration
	var workSec float64
	for r := 0; r < reps; r++ {
		for _, gz := range files {
			// Normal concurrent run: honest wall clock on this host.
			_, st, err := pugz.Decompress(gz, pugz.Options{Threads: threads, MinChunk: 32 << 10})
			if err != nil {
				return m, err
			}
			wallDur += st.TotalWall

			// Sequential run: accurate isolated per-chunk costs.
			_, st, err = pugz.Decompress(gz, pugz.Options{Threads: threads, MinChunk: 32 << 10, Sequential: true})
			if err != nil {
				return m, err
			}
			totalBytes += int64(len(gz))
			workSec += st.WorkSeconds()
			simDur += st.SimulatedMakespan()
			var maxP1, maxP2 time.Duration
			for _, c := range st.Chunks {
				if c.Pass1 > maxP1 {
					maxP1 = c.Pass1
				}
				if c.Pass2 > maxP2 {
					maxP2 = c.Pass2
				}
			}
			simNoSync += maxP1 + st.Pass2SeqWall + maxP2
			m.Chunks = len(st.Chunks)
		}
	}
	m.WallMBs = stats.MBPerSec(totalBytes, wallDur)
	m.SimMBs = stats.MBPerSec(totalBytes, simDur)
	m.SimNoSyncMBs = stats.MBPerSec(totalBytes, simNoSync)
	if workSec > 0 {
		m.WorkMBs = float64(totalBytes) / 1e6 / workSec
	}
	return m, nil
}

// RunTable2 regenerates Table II: decompression speed (compressed MB/s)
// for the gunzip role, the libdeflate role, and pugz at 32 threads.
func RunTable2(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Table II: decompression speeds (compressed MB/s)")
	files, err := table2Corpus(c)
	if err != nil {
		return err
	}
	var totalMB float64
	for _, f := range files {
		totalMB += stats.MB(int64(len(f)))
	}
	fmt.Fprintf(w, "corpus: %d files, %.1f MB compressed; host cores: %d\n",
		len(files), totalMB, runtime.NumCPU())

	const reps = 3 // the paper decompresses each file three times
	gun, err := measure(files, reps, gunzipRole)
	if err != nil {
		return err
	}
	lib, err := measure(files, reps, libdeflateRole)
	if err != nil {
		return err
	}
	pm, err := measurePugz(files, reps, c.Threads)
	if err != nil {
		return err
	}

	tbl := stats.NewTable("Method", "Speed (MB/s)", "Notes")
	tbl.AddRow("gunzip role (this repo, sequential+CRC)", fmt.Sprintf("%.0f", gun), "")
	tbl.AddRow("libdeflate role (stdlib inflate)", fmt.Sprintf("%.0f", lib), "")
	tbl.AddRow(fmt.Sprintf("pugz, %d threads (wall)", c.Threads), fmt.Sprintf("%.0f", pm.WallMBs),
		fmt.Sprintf("on %d physical core(s)", runtime.NumCPU()))
	tbl.AddRow(fmt.Sprintf("pugz, %d threads (simulated, incl sync)", c.Threads), fmt.Sprintf("%.0f", pm.SimMBs),
		fmt.Sprintf("1 free core per chunk (%d chunks)", pm.Chunks))
	tbl.AddRow(fmt.Sprintf("pugz, %d threads (simulated, decompress only)", c.Threads), fmt.Sprintf("%.0f", pm.SimNoSyncMBs),
		"sync excluded; see EXPERIMENTS.md")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nper-thread work rate of pugz: %.0f MB/s\n", pm.WorkMBs)
	fmt.Fprintf(w, "paper: gunzip 37, libdeflate 118, pugz-32 611 MB/s (16.5x / 5.2x)\n")
	fmt.Fprintf(w, "shape check: simulated pugz speedup over gunzip role = %.1fx (incl sync) / %.1fx (decompress only)\n",
		pm.SimMBs/gun, pm.SimNoSyncMBs/gun)
	return nil
}

// RunFig5 regenerates Figure 5: pugz throughput versus thread count,
// with cat / gunzip role / libdeflate role as horizontal reference
// lines.
func RunFig5(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Figure 5: scaling with thread count")
	files, err := table2Corpus(c)
	if err != nil {
		return err
	}
	// Decompress once for the cat baseline's input.
	plain, err := pugz.GunzipSequential(files[0])
	if err != nil {
		return err
	}
	catStart := time.Now()
	const catReps = 20
	for i := 0; i < catReps; i++ {
		catRole(plain)
	}
	catSpeed := stats.MBPerSec(int64(len(files[0]))*catReps, time.Since(catStart))

	gun, err := measure(files, 1, gunzipRole)
	if err != nil {
		return err
	}
	lib, err := measure(files, 1, libdeflateRole)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "reference lines (compressed MB/s): cat=%.0f gunzip-role=%.0f libdeflate-role=%.0f\n",
		catSpeed, gun, lib)

	threadSteps := []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32}
	tbl := stats.NewTable("Threads", "Chunks", "Wall MB/s",
		"Sim MB/s (incl sync)", "Sim MB/s (decomp only)", "Decomp speedup vs 1T")
	var base float64
	for _, th := range threadSteps {
		if th > c.Threads {
			break
		}
		pm, err := measurePugz(files, 1, th)
		if err != nil {
			return err
		}
		if th == 1 {
			base = pm.SimNoSyncMBs
		}
		tbl.AddRow(th, pm.Chunks, fmt.Sprintf("%.0f", pm.WallMBs),
			fmt.Sprintf("%.0f", pm.SimMBs), fmt.Sprintf("%.0f", pm.SimNoSyncMBs),
			fmt.Sprintf("%.2f", pm.SimNoSyncMBs/base))
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nnote: this host has %d physical core(s); wall-clock flattens there. The\n", runtime.NumCPU())
	fmt.Fprintln(w, "simulated columns model one free core per chunk (per-chunk costs measured in")
	fmt.Fprintln(w, "isolation via Sequential mode). The decompress-only column is the paper's Fig. 5")
	fmt.Fprintln(w, "shape; the incl-sync column saturates early because block detection (~60 ms per")
	fmt.Fprintln(w, "boundary) is amortised over MB-scale chunks here versus GB-scale in the paper.")
	return nil
}
