package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastq"
	"repro/internal/stats"
	"repro/internal/tracked"

	pugz "repro"
)

// RunBaselines compares the three routes to random access the paper
// discusses (Section II) on one file, and evaluates the
// undetermined-character guesser (Section VIII's future work):
//
//	pugz     sync anywhere, no preparation, approximate above -1
//	index    zran-style checkpoints [11]: exact, needs one prior pass
//	bgzf     blocked file [12]: exact & parallel, needs re-compression
func RunBaselines(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Baselines: three routes to random access (+ guesser)")
	data := fastq.Generate(fastq.GenOptions{
		Reads: int(60000 * clampScale(c.Scale)),
		Seed:  88 + c.Seed,
	})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "corpus: %.1f MB FASTQ -> %.1f MB gzip (level 6)\n",
		stats.MB(int64(len(data))), stats.MB(int64(len(gz))))

	const readSize = 1 << 20
	target := int64(len(data)) / 2
	buf := make([]byte, readSize)

	tbl := stats.NewTable("Approach", "Preparation", "Access latency", "Exact?", "Space overhead")

	// --- pugz random access: no preparation.
	t0 := time.Now()
	res, err := pugz.RandomAccess(gz, int64(len(gz))/2, pugz.RandomAccessOptions{MaxOutput: readSize * 2})
	if err != nil {
		return err
	}
	accessPugz := time.Since(t0)
	undetFrac := 0.0
	if len(res.Text) > 0 {
		n := 0
		for _, b := range res.Text[:min(len(res.Text), readSize)] {
			if b == pugz.Undetermined {
				n++
			}
		}
		undetFrac = float64(n) / float64(readSize)
	}
	tbl.AddRow("pugz (this paper)", "none",
		fmt.Sprintf("%.0f ms", accessPugz.Seconds()*1000),
		fmt.Sprintf("no (%.2f%% undetermined here)", undetFrac*100), "none")

	// --- zran index.
	t0 = time.Now()
	ix, err := pugz.BuildIndex(gz, 1<<20)
	if err != nil {
		return err
	}
	prepIx := time.Since(t0)
	blob, err := ix.Marshal()
	if err != nil {
		return err
	}
	t0 = time.Now()
	if _, err := ix.ReadAt(gz, buf, target); err != nil {
		return err
	}
	accessIx := time.Since(t0)
	tbl.AddRow("zran index [11]",
		fmt.Sprintf("%.0f ms full pass", prepIx.Seconds()*1000),
		fmt.Sprintf("%.1f ms", accessIx.Seconds()*1000),
		"yes",
		fmt.Sprintf("index %.2f MB (%d checkpoints)", stats.MB(int64(len(blob))), ix.Checkpoints()))

	// --- BGZF.
	t0 = time.Now()
	bz, err := pugz.CompressBGZF(data, 6)
	if err != nil {
		return err
	}
	prepBz := time.Since(t0)
	t0 = time.Now()
	if _, err := pugz.BGZFReadAt(bz, buf, target); err != nil {
		return err
	}
	accessBz := time.Since(t0)
	tbl.AddRow("BGZF blocked file [12]",
		fmt.Sprintf("%.0f ms re-compress", prepBz.Seconds()*1000),
		fmt.Sprintf("%.1f ms", accessBz.Seconds()*1000),
		"yes",
		fmt.Sprintf("+%.1f%% file size", 100*(float64(len(bz))/float64(len(gz))-1)))
	fmt.Fprint(w, tbl.String())

	// --- Guesser evaluation (Section VIII future work), against truth.
	//
	// The guesser needs recoverable line structure. At normal
	// compression levels the newlines and header '@'s are themselves
	// back-referenced deep into the file (they are the *most* matched
	// content), so structure is unrecoverable and the guesser declines
	// — an informative negative result that parallels the paper's
	// Table I: random access (and hence guessing) is practical at low
	// compression levels.
	for _, level := range []int{1, 6} {
		lgz, err := pugz.Compress(data, level)
		if err != nil {
			return err
		}
		full, err := pugz.RandomAccess(lgz, int64(len(lgz))/2, pugz.RandomAccessOptions{})
		if err != nil {
			return err
		}
		blocks, err := pugz.ScanBlocks(lgz)
		if err != nil {
			return err
		}
		var outStart int64 = -1
		for _, b := range blocks {
			if b.StartBit == full.BlockBit {
				outStart = b.OutStart
				break
			}
		}
		if outStart < 0 {
			return fmt.Errorf("baselines: random-access block not on lattice")
		}
		truth := data[outStart:]
		g := pugz.GuessUndetermined(full.Text, 99)
		undetTotal, right, wrong := 0, 0, 0
		for i := range full.Text {
			if full.Text[i] != tracked.UndeterminedByte {
				continue
			}
			undetTotal++
			if g.Text[i] == tracked.UndeterminedByte {
				continue // declined: not scored
			}
			if g.Text[i] == truth[i] {
				right++
			} else {
				wrong++
			}
		}
		fmt.Fprintf(w, "\nguesser at level %d: %d of %d undetermined characters guessed (%.1f%% coverage)\n",
			level, g.Guessed, undetTotal, 100*float64(g.Guessed)/float64(max(undetTotal, 1)))
		if right+wrong > 0 {
			fmt.Fprintf(w, "  accuracy on guessed positions: %.1f%% (by phase: %v)\n",
				100*float64(right)/float64(right+wrong), g.ByPhase)
		} else {
			fmt.Fprintln(w, "  line structure unrecoverable at this level: guesser declines (no noise emitted)")
		}
	}
	fmt.Fprintln(w, "lossy by construction — useful for forensics, not for exact pipelines.")
	return nil
}
