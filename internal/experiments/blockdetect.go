package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/blockfind"
	"repro/internal/fastq"
	"repro/internal/gzipx"
	"repro/internal/stats"

	pugz "repro"
)

// RunBlockDetect measures Section VI-A: the latency of locating the
// next DEFLATE block start from an arbitrary compressed offset. The
// paper reports 100-300 ms (in C, on GB-sized files where the scan
// typically crosses one compressed block, i.e. tens of KB of
// candidate bit offsets).
func RunBlockDetect(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Section VI-A: block start detection latency")
	data := fastq.Generate(fastq.GenOptions{
		Reads: int(40000 * clampScale(c.Scale)),
		Seed:  77 + c.Seed,
	})
	for _, level := range []int{1, 6, 9} {
		gz, err := pugz.Compress(data, level)
		if err != nil {
			return err
		}
		m, err := gzipx.ParseHeader(gz)
		if err != nil {
			return err
		}
		payload := gz[m.HeaderLen:]

		var lat stats.Acc
		var scanBits stats.Acc
		f := blockfind.New()
		probes := 12
		for p := 1; p <= probes; p++ {
			from := int64(p) * int64(len(payload)) / int64(probes+2)
			before := f.Stats.BitsTried
			t := time.Now()
			bit, err := f.Next(payload, from*8)
			if err != nil {
				continue
			}
			lat.Add(time.Since(t).Seconds() * 1000)
			scanBits.Add(float64(f.Stats.BitsTried - before))
			_ = bit
		}
		fmt.Fprintf(w, "level %d: latency %s ms over %d probes; bits scanned per probe %s; rejects=%d confirmfails=%d\n",
			level, lat.MeanStd(1), int(lat.N()), scanBits.MeanStd(0), f.Stats.Rejects, f.Stats.ConfirmFails)
	}
	fmt.Fprintln(w, "paper: 100-300 ms per detection (C implementation, larger blocks).")
	return nil
}
