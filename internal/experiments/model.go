package experiments

import (
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/dna"
	"repro/internal/flate"
	"repro/internal/model"
)

// literalFractionAfterFirstWindow measures the fraction of positions
// emitted as literals, ignoring the first context window of output
// (where literals are structurally necessary).
func literalFractionAfterFirstWindow(payload []byte) (float64, error) {
	r := bitio.NewReader(payload)
	var skipped, lits, produced int64
	dec := flate.NewDecoder(flate.Options{})
	sink := visitorFuncs{
		literal: func(byte) error {
			if skipped < model.DefaultWindow {
				skipped++
				return nil
			}
			lits++
			produced++
			return nil
		},
		match: func(length, _ int) error {
			for i := 0; i < length; i++ {
				if skipped < model.DefaultWindow {
					skipped++
				} else {
					produced++
				}
			}
			return nil
		},
	}
	if err := dec.DecodeStream(r, sink); err != nil {
		return 0, err
	}
	if produced == 0 {
		return 0, nil
	}
	return float64(lits) / float64(produced), nil
}

// visitorFuncs adapts closures to flate.Visitor.
type visitorFuncs struct {
	literal func(byte) error
	match   func(int, int) error
}

func (v visitorFuncs) BlockStart(flate.BlockEvent) error { return nil }
func (v visitorFuncs) Literal(b byte) error              { return v.literal(b) }
func (v visitorFuncs) Match(l, d int) error              { return v.match(l, d) }
func (v visitorFuncs) BlockEnd(int64) error              { return nil }

// RunModel regenerates the Section V numbers: p_k for small k, p_l,
// E_l (the paper reports ≈1283 for l_a=7.6), L_1 (≈4 %), and compares
// the predicted literal fraction with the measured one for our
// compressor at the default and lowest levels.
func RunModel(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Section V: analytical models vs measurement")
	const W = model.DefaultWindow

	fmt.Fprintf(w, "p_k (match probability in a %d window):\n", W)
	for _, k := range []int{3, 4, 5, 6, 7, 8, 9, 10, 12} {
		fmt.Fprintf(w, "  k=%-2d p_k=%.6f\n", k, model.PMatch(k, W))
	}
	pl := model.PLiteral(W)
	fmt.Fprintf(w, "p_l (literal probability under non-greedy parsing) = %.6f\n", pl)

	// Paper: l_a experimentally 7.6 => E_l ≈ 1283, L_1 ≈ 4%.
	const paperLa = 7.6
	el := model.ExpectedLiterals(W, paperLa)
	l1 := model.L1(W, paperLa)
	fmt.Fprintf(w, "with l_a=%.1f: E_l=%.0f (paper: ≈1283), L_1=%.4f (paper: ≈4%%)\n", paperLa, el, l1)

	// Measurement on random DNA with our compressor.
	n := c.scaled(1_000_000)
	data := dna.Random(n, 77+c.Seed)
	fmt.Fprintf(w, "\nmeasured on %d bp random DNA (our compressor):\n", n)
	for _, level := range []int{1, 6, 9} {
		payload, err := deflate.Compress(data, level)
		if err != nil {
			return err
		}
		oa, la, err := measureTokenStats(payload)
		if err != nil {
			return err
		}
		frac, err := literalFractionAfterFirstWindow(payload)
		if err != nil {
			return err
		}
		pred := model.L1(W, la)
		fmt.Fprintf(w, "  level %d: o_a=%-7.0f l_a=%-5.2f literal frac (after first window) measured=%.4f model L_1=%.4f\n",
			level, oa, la, frac, pred)
	}
	fmt.Fprintln(w, "\nexpected shape: level 1 ≈ 0 literals (greedy starvation, Section V-A);")
	fmt.Fprintln(w, "levels 6/9 a few percent, in the vicinity of the model's L_1.")

	// Randomness check standing in for footnote 4's bzip2 test.
	h2 := dna.OrderKEntropy(data[:min(n, 1<<20)], 2)
	fmt.Fprintf(w, "order-2 entropy of the corpus: %.3f bits/char (uniform DNA: 2.0)\n", h2)
	return nil
}
