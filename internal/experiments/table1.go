package experiments

import (
	"fmt"
	"io"

	"repro/internal/fastq"
	"repro/internal/gzipx"
	"repro/internal/stats"

	pugz "repro"
)

// table1File is one synthetic dataset member.
type table1File struct {
	name  string
	level int
	gz    []byte
	raw   int
}

// buildTable1Corpus generates the synthetic stand-in for the ENA
// dataset: several FASTQ files per compression class. Sizes follow
// the paper's class mix loosely (most files at normal compression).
func buildTable1Corpus(c Config) ([]table1File, error) {
	type spec struct {
		reads int
		level int
		seed  int64
	}
	// Files must be large relative to the resolution delay (the paper's
	// files are GBs against delays of tens-to-hundreds of MB; here
	// ~20-30 MB against delays of a few MB), otherwise accesses late in
	// the file run out of data before a sequence-resolved block.
	specs := []spec{
		// lowest (gzip -1)
		{90000, 1, 101}, {70000, 1, 102},
		// normal (gzip -6) — the most common class in the wild
		{90000, 6, 103}, {70000, 6, 104}, {110000, 6, 105},
		// highest (gzip -9)
		{90000, 9, 106}, {70000, 9, 107},
	}
	var out []table1File
	for i, s := range specs {
		reads := int(float64(s.reads) * clampScale(c.Scale))
		data := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: s.seed + c.Seed})
		gz, err := pugz.Compress(data, s.level)
		if err != nil {
			return nil, err
		}
		out = append(out, table1File{
			name:  fmt.Sprintf("synthetic_%02d_L%d.fastq.gz", i, s.level),
			level: s.level,
			gz:    gz,
			raw:   len(data),
		})
	}
	return out, nil
}

func clampScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// Table1Row aggregates one compression class.
type Table1Row struct {
	Class       gzipx.CompressionClass
	Files       int
	TotalSizeMB float64
	Delay       stats.Acc // MB decompressed until a sequence-resolved block
	Unambig     stats.Acc // % of unambiguous sequences after it
	NoResolved  int       // accesses with no sequence-resolved block at all
}

// RunTable1 regenerates Table I: random access at 1/4, 1/3, 1/2 and
// 2/3 of each file, measuring the delay to a sequence-resolved block
// and the fraction of unambiguous sequences after it.
func RunTable1(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Table I: random access to sequences, by compression level")
	files, err := buildTable1Corpus(c)
	if err != nil {
		return err
	}
	fractions := []struct {
		num, den int64
		label    string
	}{{1, 4, "1/4"}, {1, 3, "1/3"}, {1, 2, "1/2"}, {2, 3, "2/3"}}

	rows := map[gzipx.CompressionClass]*Table1Row{}
	for _, cls := range []gzipx.CompressionClass{gzipx.ClassLowest, gzipx.ClassNormal, gzipx.ClassHighest} {
		rows[cls] = &Table1Row{Class: cls}
	}

	for _, f := range files {
		cls, err := pugz.Classify(f.gz)
		if err != nil {
			return err
		}
		row := rows[cls]
		row.Files++
		row.TotalSizeMB += stats.MB(int64(len(f.gz)))
		for _, fr := range fractions {
			off := fr.num * int64(len(f.gz)) / fr.den
			res, err := pugz.RandomAccess(f.gz, off, pugz.RandomAccessOptions{})
			if err != nil {
				// Near the end of small files no non-final block may
				// remain; the paper's GB-scale files never hit this.
				fmt.Fprintf(w, "  note: %s @%s: %v\n", f.name, fr.label, err)
				continue
			}
			if res.FirstResolvedBlock < 0 {
				// The paper's normal/highest classes frequently show
				// this ("either no sequence-resolved block is found or
				// a variable fraction of sequences contain undetermined
				// characters") — their files are GBs against delays of
				// hundreds of MB; ours are tens of MB. Score such an
				// access by the unambiguous fraction over the whole
				// decoded suffix, which is what a consumer of the
				// random access would actually get.
				row.NoResolved++
				total, clean := 0, 0
				for _, s := range res.Sequences {
					total++
					if s.Unambiguous() {
						clean++
					}
				}
				if total > 0 {
					row.Unambig.Add(100 * float64(clean) / float64(total))
				}
				continue
			}
			row.Delay.Add(stats.MB(res.DelayBytes))
			if frac, ok := res.UnambiguousAfterResolved(); ok {
				row.Unambig.Add(frac * 100)
			}
		}
	}

	tbl := stats.NewTable("Compress. level", "Files", "Size (MB)",
		"Delay to seq-resolved block (MB)", "Unambiguous sequences (%)", "No resolved block")
	for _, cls := range []gzipx.CompressionClass{gzipx.ClassLowest, gzipx.ClassNormal, gzipx.ClassHighest} {
		r := rows[cls]
		tbl.AddRow(r.Class.String(), r.Files, fmt.Sprintf("%.1f", r.TotalSizeMB),
			r.Delay.MeanStd(3), r.Unambig.MeanStd(1), r.NoResolved)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\npaper (192.8 GB ENA corpus): lowest 52.4±55.8 MB delay, 100.0±0.0 %;")
	fmt.Fprintln(w, "normal 387.5±731.6 MB, 72.5±37.6 %; highest 1292.6±1531.9 MB, 36.8±45.2 %.")
	fmt.Fprintln(w, "expected shape: delay and ambiguity increase with compression level.")
	return nil
}
