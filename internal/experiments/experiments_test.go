package experiments

import (
	"strings"
	"testing"

	"repro/internal/deflate"
	"repro/internal/dna"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 1 || c.Threads != 32 {
		t.Fatalf("defaults: %+v", c)
	}
	c = Config{Scale: 2.5, Threads: 8}.WithDefaults()
	if c.Scale != 2.5 || c.Threads != 8 {
		t.Fatalf("explicit values overridden: %+v", c)
	}
	if got := c.scaled(100); got != 250 {
		t.Fatalf("scaled(100) = %d", got)
	}
	if got := (Config{Scale: 0.0001}).WithDefaults().scaled(100); got != 1 {
		t.Fatalf("scaled floor: %d", got)
	}
}

func TestAllExperimentsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("Lookup(%q) failed", e.ID)
		}
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
	// The suite must cover every table and figure of the paper.
	for _, want := range []string{"fig1", "fig2top", "fig2bottom", "table1", "table2", "fig4", "fig5", "model", "blockdetect", "baselines"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
}

func TestMeasureTokenStats(t *testing.T) {
	data := dna.Random(300_000, 1)
	payload, err := deflate.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	oa, la, err := measureTokenStats(payload)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's level-6 numbers on random DNA: o_a ≈ 3602, l_a ≈ 7.6.
	if oa < 2500 || oa > 5000 {
		t.Errorf("o_a = %.0f, expected ≈3600", oa)
	}
	if la < 5.5 || la > 9 {
		t.Errorf("l_a = %.2f, expected ≈7", la)
	}
}

func TestLiteralFraction(t *testing.T) {
	data := dna.Random(300_000, 2)
	p1, err := deflate.Compress(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := literalFractionAfterFirstWindow(p1)
	if err != nil {
		t.Fatal(err)
	}
	if f1 > 0.001 {
		t.Errorf("greedy literal fraction %.5f, want ~0", f1)
	}
	p6, err := deflate.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := literalFractionAfterFirstWindow(p6)
	if err != nil {
		t.Fatal(err)
	}
	if f6 < 0.02 || f6 > 0.08 {
		t.Errorf("lazy literal fraction %.4f, want ≈0.04", f6)
	}
}

func TestFig2CurveShape(t *testing.T) {
	data := dna.Random(400_000, 3)
	s, err := fig2Curve(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fracs) < 20 {
		t.Fatalf("only %d windows", len(s.Fracs))
	}
	// Monotone-ish decay: the last quarter must be far below the first.
	firstQ, lastQ := 0.0, 0.0
	q := len(s.Fracs) / 4
	for i := 0; i < q; i++ {
		firstQ += s.Fracs[i]
		lastQ += s.Fracs[len(s.Fracs)-1-i]
	}
	if lastQ >= firstQ/4 {
		t.Errorf("no decay: first quarter %.2f, last quarter %.2f", firstQ, lastQ)
	}

	// Level 1 (greedy): no decay at all.
	s1, err := fig2Curve(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.VanishIdx != -1 {
		t.Errorf("level 1 vanished at %d; greedy starvation should prevent resolution", s1.VanishIdx)
	}
	tail := s1.Fracs[len(s1.Fracs)-1]
	if tail < 0.95 {
		t.Errorf("level 1 tail fraction %.3f, want ≈1", tail)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := downsample(xs, 100)
	if len(ds) != 100 {
		t.Fatalf("len %d", len(ds))
	}
	if ds[0] != 0 || ds[99] < 900 {
		t.Fatalf("range: first %.0f last %.0f", ds[0], ds[99])
	}
	short := []float64{1, 2, 3}
	if got := downsample(short, 100); len(got) != 3 {
		t.Fatal("short input must pass through")
	}
}

func TestTable1CorpusClasses(t *testing.T) {
	files, err := buildTable1Corpus(Config{Scale: 0.02}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 7 {
		t.Fatalf("%d files", len(files))
	}
	levels := map[int]int{}
	for _, f := range files {
		levels[f.level]++
		if len(f.gz) == 0 || f.raw == 0 {
			t.Fatal("empty file")
		}
	}
	if levels[1] != 2 || levels[6] != 3 || levels[9] != 2 {
		t.Fatalf("level mix: %v", levels)
	}
}

func TestHeaderHelper(t *testing.T) {
	var sb strings.Builder
	header(&sb, "X")
	if !strings.Contains(sb.String(), "=== X ===") {
		t.Fatalf("got %q", sb.String())
	}
}
