package experiments

import (
	"fmt"
	"io"

	"repro/internal/deflate"
	"repro/internal/fastq"
	"repro/internal/flate"
	"repro/internal/stats"
	"repro/internal/tracked"
)

// fig4Counts holds, per output window, the number of characters that
// are copies from the initial (undetermined) context, by character
// class of the true stream.
type fig4Counts struct {
	windows [][fastq.NumCharClasses]int
}

// RunFig4 regenerates Figure 4: decompress a gzip-compressed FASTQ
// file from a mid-file location with an undetermined context; then,
// aligning against the true decompressed stream, count how many
// characters per 32 KiB window are copies of the initial context, and
// of which type (header, DNA, '+', quality). The normal-level file
// should shed DNA copies quickly (~2 MB) while headers persist; the
// highest-level file keeps DNA copies until the end.
func RunFig4(c Config, w io.Writer) error {
	c = c.WithDefaults()
	header(w, "Figure 4: characters copied from the initial context, by type")
	reads := int(40000 * clampScale(c.Scale))
	data := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 66 + c.Seed})
	classes := fastq.Classify(data)

	for _, level := range []int{6, 9} {
		payload, err := deflate.Compress(data, level)
		if err != nil {
			return err
		}
		// Sync at ~1/3 of the compressed stream, mirroring the paper's
		// 160/210 MB offsets.
		_, spans, err := flate.DecompressRecorded(payload, 0, true)
		if err != nil {
			return err
		}
		if len(spans) < 3 {
			return fmt.Errorf("fig4: too few blocks at level %d", level)
		}
		target := int64(len(payload)) / 3 * 8
		var start *flate.BlockSpan
		for i := range spans {
			if spans[i].Event.StartBit >= target {
				start = &spans[i]
				break
			}
		}
		if start == nil || start.Event.Final {
			return fmt.Errorf("fig4: no usable block after target at level %d", level)
		}

		res, err := tracked.DecodeFrom(payload, start.Event.StartBit, tracked.DecodeOptions{})
		if err != nil {
			return err
		}
		counts := countContextCopies(res.Out, classes, int(start.OutStart), tracked.WindowSize)

		fmt.Fprintf(w, "\nlevel %d: decode from output offset %.1f MB, %d windows of 32 KiB\n",
			level, stats.MB(start.OutStart), len(counts.windows))
		printFig4(w, counts)
	}
	fmt.Fprintln(w, "\nexpected shape (paper): normal level sheds DNA copies after ~2 MB while")
	fmt.Fprintln(w, "some header/quality copies persist; highest level keeps DNA copies to the end.")
	return nil
}

// countContextCopies tallies symbolic entries per window, classified
// by the true character class at the aligned position.
func countContextCopies(out []uint16, classes []fastq.CharClass, outStart, window int) fig4Counts {
	var f fig4Counts
	nWin := (len(out) + window - 1) / window
	f.windows = make([][fastq.NumCharClasses]int, nWin)
	for i, v := range out {
		if v < tracked.SymBase {
			continue
		}
		pos := outStart + i
		if pos >= len(classes) {
			break
		}
		f.windows[i/window][classes[pos]]++
	}
	return f
}

func printFig4(w io.Writer, f fig4Counts) {
	// Per-class sparklines plus the last window index with any copy.
	names := []fastq.CharClass{fastq.ClassDNA, fastq.ClassQual, fastq.ClassHeader, fastq.ClassPlus}
	for _, cls := range names {
		series := make([]float64, len(f.windows))
		lastNonzero := -1
		total := 0
		for i := range f.windows {
			v := f.windows[i][cls]
			series[i] = float64(v)
			total += v
			if v > 0 {
				lastNonzero = i
			}
		}
		fmt.Fprintf(w, "  %-8s total=%-8d last-window-with-copies=%-5d %s\n",
			cls.String(), total, lastNonzero, stats.Sparkline(downsample(series, 100)))
	}
}

func downsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	step := float64(len(xs)) / float64(n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = xs[int(float64(i)*step)]
	}
	return out
}
