// Package experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md section 3 for the index). Each
// experiment is a function from a Config to a printable, structured
// result, so the same code backs cmd/experiments and the benchmark
// suite in bench_test.go.
//
// Scale: the paper's corpus is 192.8 GB of ENA FASTQ; this harness
// regenerates the same *shapes* from seeded synthetic corpora sized
// megabytes (Config.Scale multiplies the defaults). EXPERIMENTS.md
// records paper-vs-measured numbers for every experiment.
package experiments

import (
	"fmt"
	"io"
)

// Config scales and seeds the whole suite.
type Config struct {
	// Scale multiplies corpus sizes; 1.0 is the fast default
	// (seconds-to-minutes per experiment).
	Scale float64
	// Seed offsets every corpus seed, for variance runs.
	Seed int64
	// Threads caps the thread counts exercised by the speed
	// experiments (default 32, like the paper).
	Threads int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Threads <= 0 {
		c.Threads = 32
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Experiment couples a runnable with its identity.
type Experiment struct {
	ID    string // e.g. "fig2top"
	Paper string // e.g. "Figure 2 (top)"
	Desc  string
	Run   func(c Config, w io.Writer) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1", "context resolution across blocks after a random access", RunFig1},
		{"fig2top", "Figure 2 (top)", "undetermined characters per window, random DNA, levels 1/4/6/9 + model", RunFig2Top},
		{"fig2bottom", "Figure 2 (bottom)", "undetermined characters per window, FASTQ-like string", RunFig2Bottom},
		{"model", "Section V", "analytical model numbers: p_l, E_l, L_1, measured literal rates", RunModel},
		{"table1", "Table I", "random access to sequences by compression level", RunTable1},
		{"fig4", "Figure 4", "characters copied from the initial context, by type", RunFig4},
		{"table2", "Table II", "decompression speed: gunzip / libdeflate role / pugz", RunTable2},
		{"fig5", "Figure 5", "pugz scaling with thread count vs baselines", RunFig5},
		{"blockdetect", "Section VI-A", "block start detection latency", RunBlockDetect},
		{"baselines", "Section II / VIII", "random-access baselines (zran index, BGZF) and the undetermined-character guesser", RunBaselines},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func header(w io.Writer, e string) {
	fmt.Fprintf(w, "\n=== %s ===\n", e)
}
