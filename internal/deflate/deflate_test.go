package deflate

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/flate"
)

func stdInflate(t *testing.T, payload []byte) []byte {
	t.Helper()
	r := stdflate.NewReader(bytes.NewReader(payload))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib inflate: %v", err)
	}
	return out
}

func corpus(kind string, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	switch kind {
	case "dna":
		for i := range out {
			out[i] = "ACGT"[rng.Intn(4)]
		}
	case "text":
		const words = "the quick brown fox jumps over the lazy dog "
		for i := range out {
			out[i] = words[(i+rng.Intn(3))%len(words)]
		}
	case "random":
		rng.Read(out)
	case "zero":
		// all zeros: extreme RLE
	}
	return out
}

func TestCompressStdlibDecodes(t *testing.T) {
	for _, kind := range []string{"dna", "text", "random", "zero"} {
		data := corpus(kind, 150_000, 7)
		for level := 0; level <= 9; level++ {
			payload, err := Compress(data, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", kind, level, err)
			}
			if got := stdInflate(t, payload); !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: stdlib disagrees", kind, level)
			}
		}
	}
}

func TestCompressOwnDecoderDecodes(t *testing.T) {
	for _, kind := range []string{"dna", "text"} {
		data := corpus(kind, 150_000, 8)
		for level := 0; level <= 9; level++ {
			payload, err := Compress(data, level)
			if err != nil {
				t.Fatal(err)
			}
			got, err := flate.DecompressAll(payload, 0)
			if err != nil {
				t.Fatalf("%s level %d: %v", kind, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: mismatch", kind, level)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for level := 0; level <= 9; level++ {
		payload, err := Compress(nil, level)
		if err != nil {
			t.Fatal(err)
		}
		if got := stdInflate(t, payload); len(got) != 0 {
			t.Fatalf("level %d: got %d bytes", level, len(got))
		}
	}
}

func TestSingleByte(t *testing.T) {
	for level := 0; level <= 9; level++ {
		payload, err := Compress([]byte{'Q'}, level)
		if err != nil {
			t.Fatal(err)
		}
		if got := stdInflate(t, payload); string(got) != "Q" {
			t.Fatalf("level %d: got %q", level, got)
		}
	}
}

func TestLevelOrderingOnText(t *testing.T) {
	// Higher levels must not compress worse by a large margin, and
	// level 9 must beat level 1 on compressible text.
	data := corpus("text", 400_000, 9)
	size := map[int]int{}
	for _, level := range []int{1, 6, 9} {
		payload, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		size[level] = len(payload)
	}
	if size[9] > size[1] {
		t.Fatalf("level 9 (%d) worse than level 1 (%d)", size[9], size[1])
	}
}

func TestBlocksRespectPaperBounds(t *testing.T) {
	// The paper's validation assumes blocks of 1 KiB .. 4 MiB; our
	// zlib-style 16 Ki-token blocks must land inside that for typical
	// data (first and final blocks may be smaller).
	data := corpus("dna", 2_000_000, 10)
	for _, level := range []int{1, 6, 9} {
		payload, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		_, spans, err := flate.DecompressRecorded(payload, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) < 2 {
			t.Fatalf("level %d: expected multiple blocks", level)
		}
		for i, s := range spans[:len(spans)-1] {
			n := s.OutEnd - s.OutStart
			if n < 1<<10 || n > 4<<20 {
				t.Fatalf("level %d block %d: %d bytes outside [1KiB,4MiB]", level, i, n)
			}
		}
	}
}

func TestStoredBlockSplitting(t *testing.T) {
	// Level 0 with > 64 KiB input needs multiple stored blocks.
	data := corpus("random", 200_000, 11)
	payload, err := Compress(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 { // 200000 = 3*65535 + 3395
		t.Fatalf("got %d stored blocks, want 4", len(spans))
	}
	for _, s := range spans {
		if s.Event.Type != flate.Stored {
			t.Fatal("level 0 must emit stored blocks only")
		}
	}
}

func TestIncompressibleFallsBackToStored(t *testing.T) {
	// Uniform random bytes cannot be compressed; the emitter must
	// choose stored blocks rather than expanding.
	data := corpus("random", 300_000, 12)
	payload, err := Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > len(data)+len(data)/100+64 {
		t.Fatalf("payload %d bytes for %d incompressible input", len(payload), len(data))
	}
	_, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for _, s := range spans {
		if s.Event.Type == flate.Stored {
			stored++
		}
	}
	if stored == 0 {
		t.Fatal("expected stored blocks for incompressible data")
	}
}

func TestBadLevelRejected(t *testing.T) {
	for _, level := range []int{-1, 10} {
		if _, err := Compress([]byte("x"), level); err == nil {
			t.Fatalf("level %d accepted", level)
		}
	}
}

func TestGreedyVsLazyLevels(t *testing.T) {
	// Lazy parsing (level 4+) on DNA must produce a literal fraction a
	// few percent; greedy (1-3) near zero after warmup. This pins the
	// compressor to the paper's central mechanism end-to-end, through
	// actual encoded streams.
	data := corpus("dna", 400_000, 13)
	frac := func(level int) float64 {
		payload, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		var lits, total int64
		var skipped int64
		err = decodeTokens(payload, func(isLit bool, n int) {
			if skipped < 32768 {
				skipped += int64(n)
				return
			}
			if isLit {
				lits++
			}
			total += int64(n)
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(lits) / float64(total)
	}
	if f := frac(1); f > 0.001 {
		t.Errorf("level 1 literal fraction %.5f, want ~0", f)
	}
	if f := frac(6); f < 0.02 || f > 0.08 {
		t.Errorf("level 6 literal fraction %.4f, want ≈0.04", f)
	}
}

// decodeTokens walks a payload's token stream.
func decodeTokens(payload []byte, fn func(isLit bool, n int)) error {
	v := tokenVisitor{fn: fn}
	dec := flate.NewDecoder(flate.Options{})
	return dec.DecodeStream(bitio.NewReader(payload), v)
}

type tokenVisitor struct{ fn func(bool, int) }

func (v tokenVisitor) BlockStart(flate.BlockEvent) error { return nil }
func (v tokenVisitor) Literal(byte) error                { v.fn(true, 1); return nil }
func (v tokenVisitor) Match(l, d int) error              { v.fn(false, l); return nil }
func (v tokenVisitor) BlockEnd(int64) error              { return nil }

func TestQuickRoundTripThroughStdlib(t *testing.T) {
	for _, level := range []int{1, 6, 9} {
		level := level
		f := func(data []byte) bool {
			payload, err := Compress(data, level)
			if err != nil {
				return false
			}
			r := stdflate.NewReader(bytes.NewReader(payload))
			out, err := io.ReadAll(r)
			r.Close()
			return err == nil && bytes.Equal(out, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func TestSymbolTables(t *testing.T) {
	// Every length maps to a symbol whose base/extra covers it.
	for l := 3; l <= 258; l++ {
		sym, extra, eb := lengthSymbol(l)
		if sym < 257 || sym > 285 {
			t.Fatalf("length %d: symbol %d", l, sym)
		}
		base := int(lengthBase[sym-257])
		if base+int(extra) != l {
			t.Fatalf("length %d: base %d extra %d", l, base, extra)
		}
		if extra >= 1<<eb && eb > 0 || (eb == 0 && extra != 0) {
			t.Fatalf("length %d: extra %d does not fit %d bits", l, extra, eb)
		}
	}
	if s, _, _ := lengthSymbol(258); s != 285 {
		t.Fatalf("length 258 must use symbol 285, got %d", s)
	}
	for d := 1; d <= 32768; d++ {
		sym, extra, eb := distSymbol(d)
		if sym < 0 || sym > 29 {
			t.Fatalf("dist %d: symbol %d", d, sym)
		}
		if int(distBase[sym])+int(extra) != d {
			t.Fatalf("dist %d: base %d extra %d", d, distBase[sym], extra)
		}
		if eb > 0 && extra >= 1<<eb {
			t.Fatalf("dist %d: extra overflow", d)
		}
	}
}
