package deflate

import "repro/internal/bitio"
import "repro/internal/huffman"

// clToken is one element of the run-length-encoded tree description:
// symbol 0..15 is a literal code length; 16/17/18 carry a repeat count
// in extra.
type clToken struct {
	sym   uint8
	extra uint8
}

// dynamicHeader is the fully planned dynamic-block tree description,
// with its exact bit cost so flush can compare encodings before
// committing bits.
type dynamicHeader struct {
	hlit, hdist, hclen int
	clLens             [numCodeLenSyms]uint8
	clCodes            []huffman.Code
	tokens             []clToken
	costBits           int64
}

// planDynamicHeader run-length-encodes the two length arrays and
// builds the code-length code, returning the plan and its bit cost.
func planDynamicHeader(litLens, distLens []uint8) dynamicHeader {
	hlit := len(litLens)
	for hlit > 257 && litLens[hlit-1] == 0 {
		hlit--
	}
	hdist := len(distLens)
	for hdist > 1 && distLens[hdist-1] == 0 {
		hdist--
	}

	combined := make([]uint8, 0, hlit+hdist)
	combined = append(combined, litLens[:hlit]...)
	combined = append(combined, distLens[:hdist]...)

	var h dynamicHeader
	h.hlit, h.hdist = hlit, hdist
	var clFreq [numCodeLenSyms]int64

	emit := func(sym, extra uint8) {
		h.tokens = append(h.tokens, clToken{sym, extra})
		clFreq[sym]++
	}

	for i := 0; i < len(combined); {
		v := combined[i]
		run := 1
		for i+run < len(combined) && combined[i+run] == v {
			run++
		}
		switch {
		case v == 0:
			rem := run
			for rem >= 11 {
				n := rem
				if n > 138 {
					n = 138
				}
				emit(18, uint8(n-11))
				rem -= n
			}
			if rem >= 3 {
				emit(17, uint8(rem-3))
				rem = 0
			}
			for ; rem > 0; rem-- {
				emit(0, 0)
			}
			i += run
		default:
			// First occurrence is sent verbatim; subsequent repeats can
			// use symbol 16 (copy previous) in chunks of 3..6.
			emit(v, 0)
			rem := run - 1
			for rem >= 3 {
				n := rem
				if n > 6 {
					n = 6
				}
				emit(16, uint8(n-3))
				rem -= n
			}
			for ; rem > 0; rem-- {
				emit(v, 0)
			}
			i += run
		}
	}

	clLens, err := huffman.BuildLengths(clFreq[:], 7)
	if err != nil {
		// Unreachable: clFreq always has at least one nonzero entry
		// because combined is non-empty.
		panic("deflate: code-length tree: " + err.Error())
	}
	copy(h.clLens[:], clLens)
	h.clCodes, err = huffman.CanonicalCodes(clLens)
	if err != nil {
		panic("deflate: code-length codes: " + err.Error())
	}

	hclen := numCodeLenSyms
	for hclen > 4 && h.clLens[codeLenOrder[hclen-1]] == 0 {
		hclen--
	}
	h.hclen = hclen

	cost := int64(5 + 5 + 4 + 3*hclen)
	for _, t := range h.tokens {
		cost += int64(h.clLens[t.sym])
		switch t.sym {
		case 16:
			cost += 2
		case 17:
			cost += 3
		case 18:
			cost += 7
		}
	}
	h.costBits = cost
	return h
}

// write emits the header bits (after the caller has written BFINAL and
// BTYPE).
func (h *dynamicHeader) write(w *bitio.Writer) {
	w.WriteBits(uint32(h.hlit-257), 5)
	w.WriteBits(uint32(h.hdist-1), 5)
	w.WriteBits(uint32(h.hclen-4), 4)
	for i := 0; i < h.hclen; i++ {
		w.WriteBits(uint32(h.clLens[codeLenOrder[i]]), 3)
	}
	for _, t := range h.tokens {
		c := h.clCodes[t.sym]
		w.WriteBits(c.Bits, uint(c.Len))
		switch t.sym {
		case 16:
			w.WriteBits(uint32(t.extra), 2)
		case 17:
			w.WriteBits(uint32(t.extra), 3)
		case 18:
			w.WriteBits(uint32(t.extra), 7)
		}
	}
}
