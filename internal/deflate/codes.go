// Package deflate implements a DEFLATE (RFC 1951) compressor on top of
// internal/lz77, with zlib-compatible block formation: tokens are
// buffered (16 Ki per block, zlib memLevel 8), and each block is
// emitted as stored, fixed-Huffman, or dynamic-Huffman, whichever is
// cheapest — the same rule gzip applies. The resulting streams decode
// with any inflate implementation and reproduce the block-size and
// literal-rate phenomena the paper studies.
package deflate

// Symbol-mapping tables between (length, distance) values and DEFLATE
// code symbols with extra bits. Built at init from the canonical RFC
// tables so they provably agree with the decoder's tables.

const (
	minMatch = 3
	maxMatch = 258

	maxLitLenSyms  = 286 // 0..285 encodable (286/287 reserved)
	maxDistSyms    = 30
	numCodeLenSyms = 19
	endOfBlock     = 256
)

var lengthBase = [29]uint16{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

var distBase = [30]uint32{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var distExtra = [30]uint8{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

var codeLenOrder = [numCodeLenSyms]uint8{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// lengthSym maps length-3 (0..255) to the length symbol 257..285.
var lengthSym [256]uint16

// distSymSmall maps dist-1 for dist in 1..256.
// distSymLarge maps (dist-1)>>7 for dist in 257..32768.
var (
	distSymSmall [256]uint8
	distSymLarge [256]uint8
)

func init() {
	// Length 258 is special: symbol 285 with no extra bits, even
	// though symbol 284's range (227..258 with 5 extra bits) would
	// also cover it. gzip always uses 285.
	for sym := 0; sym < 29; sym++ {
		base := int(lengthBase[sym])
		span := 1 << lengthExtra[sym]
		for l := base; l < base+span && l <= maxMatch; l++ {
			lengthSym[l-minMatch] = uint16(257 + sym)
		}
	}
	lengthSym[maxMatch-minMatch] = 285

	for sym := 0; sym < 30; sym++ {
		base := int(distBase[sym])
		span := 1 << distExtra[sym]
		for d := base; d < base+span && d <= 32768; d++ {
			if d <= 256 {
				distSymSmall[d-1] = uint8(sym)
			} else {
				distSymLarge[(d-1)>>7] = uint8(sym)
			}
		}
	}
}

// lengthSymbol returns the code symbol and extra-bit payload for a
// match length in [3,258].
func lengthSymbol(length int) (sym int, extra uint32, extraBits uint) {
	s := int(lengthSym[length-minMatch])
	idx := s - 257
	return s, uint32(length) - uint32(lengthBase[idx]), uint(lengthExtra[idx])
}

// distSymbol returns the code symbol and extra-bit payload for a
// distance in [1,32768].
func distSymbol(dist int) (sym int, extra uint32, extraBits uint) {
	var s int
	if dist <= 256 {
		s = int(distSymSmall[dist-1])
	} else {
		s = int(distSymLarge[(dist-1)>>7])
	}
	return s, uint32(dist) - distBase[s], uint(distExtra[s])
}

// fixedLitLenLengths / fixedDistLengths duplicate the decoder's fixed
// trees for cost comparison and fixed-block emission.
func fixedLitLenLengths() []uint8 {
	l := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		l[i] = 8
	}
	for i := 144; i <= 255; i++ {
		l[i] = 9
	}
	for i := 256; i <= 279; i++ {
		l[i] = 7
	}
	for i := 280; i <= 287; i++ {
		l[i] = 8
	}
	return l
}

func fixedDistLengths() []uint8 {
	l := make([]uint8, 32)
	for i := range l {
		l[i] = 5
	}
	return l
}
