package deflate

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/lz77"
)

// maxBlockTokens mirrors zlib's lit_bufsize at memLevel 8: a block is
// flushed when 16 Ki tokens accumulate.
const maxBlockTokens = 16384

// maxStoredBlock is the largest stored-block payload (16-bit LEN).
const maxStoredBlock = 65535

// Compress produces a raw DEFLATE stream for data at the given level.
// Level 0 emits stored blocks only; levels 1..3 use greedy parsing;
// levels 4..9 use lazy (non-greedy) parsing, exactly like gzip.
func Compress(data []byte, level int) ([]byte, error) {
	w := bitio.NewWriter(len(data)/2 + 64)
	if err := CompressInto(w, data, level); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// CompressInto writes the DEFLATE stream for data to w.
func CompressInto(w *bitio.Writer, data []byte, level int) error {
	if level == 0 {
		return storeAll(w, data)
	}
	parser, err := lz77.NewParser(level)
	if err != nil {
		return err
	}
	e := newEmitter(w, data)
	if err := parser.Parse(data, e.add); err != nil {
		return err
	}
	return e.finish()
}

// CompressSegment writes data as a DEFLATE segment that ends exactly
// on a byte boundary via an empty stored block (a "sync flush", as
// pigz emits between its independently compressed chunks). When final
// is set, that trailing empty block carries BFINAL and terminates the
// stream; otherwise more segments may be concatenated byte-wise.
//
// This is the building block for pigz-style parallel compression: the
// paper's introduction notes that DEFLATE "easily lends itself to
// processing of blocks of data concurrently" on the compression side.
func CompressSegment(w *bitio.Writer, data []byte, level int, final bool) error {
	if level == 0 {
		for len(data) > 0 {
			n := len(data)
			if n > maxStoredBlock {
				n = maxStoredBlock
			}
			writeStored(w, data[:n], false)
			data = data[n:]
		}
	} else {
		parser, err := lz77.NewParser(level)
		if err != nil {
			return err
		}
		e := newEmitter(w, data)
		if err := parser.Parse(data, e.add); err != nil {
			return err
		}
		// Flush remaining tokens as a non-final block.
		if err := e.flush(false); err != nil {
			return err
		}
	}
	// Sync flush: empty stored block, final iff the stream ends here.
	writeStored(w, nil, final)
	if w.BitLen()%8 != 0 {
		panic("deflate: segment did not end byte-aligned")
	}
	return nil
}

// storeAll writes data as a sequence of stored blocks (level 0).
func storeAll(w *bitio.Writer, data []byte) error {
	// An empty input still needs one (final, empty) stored block.
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > maxStoredBlock {
			n = maxStoredBlock
		}
		final := n == len(data)
		writeStored(w, data[:n], final)
		data = data[n:]
		if final {
			break
		}
	}
	return nil
}

func writeStored(w *bitio.Writer, chunk []byte, final bool) {
	bfinal := uint32(0)
	if final {
		bfinal = 1
	}
	w.WriteBits(bfinal, 1)
	w.WriteBits(0, 2) // BTYPE=00
	w.AlignByte()
	w.WriteBits(uint32(len(chunk)), 16)
	w.WriteBits(^uint32(len(chunk))&0xffff, 16)
	_ = w.WriteBytes(chunk) // aligned by construction
}

// emitter buffers tokens into blocks and writes each completed block
// in whichever encoding is cheapest.
type emitter struct {
	w    *bitio.Writer
	data []byte

	tokens []lz77.Token
	// inPos tracks how many input bytes the buffered tokens cover, so
	// the stored-block alternative knows its payload.
	blockStart int
	inPos      int

	litLenFreq [maxLitLenSyms]int64
	distFreq   [maxDistSyms]int64

	fixedLit  []huffman.Code
	fixedDist []huffman.Code
}

func newEmitter(w *bitio.Writer, data []byte) *emitter {
	fl, err := huffman.CanonicalCodes(fixedLitLenLengths())
	if err != nil {
		panic("deflate: fixed litlen codes: " + err.Error())
	}
	fd, err := huffman.CanonicalCodes(fixedDistLengths())
	if err != nil {
		panic("deflate: fixed dist codes: " + err.Error())
	}
	return &emitter{
		w:         w,
		data:      data,
		tokens:    make([]lz77.Token, 0, maxBlockTokens),
		fixedLit:  fl,
		fixedDist: fd,
	}
}

func (e *emitter) add(t lz77.Token) error {
	e.tokens = append(e.tokens, t)
	if t.IsLiteral() {
		e.litLenFreq[t.Lit]++
		e.inPos++
	} else {
		sym, _, _ := lengthSymbol(t.Length())
		e.litLenFreq[sym]++
		dsym, _, _ := distSymbol(t.Distance())
		e.distFreq[dsym]++
		e.inPos += t.Length()
	}
	if len(e.tokens) >= maxBlockTokens {
		return e.flush(false)
	}
	return nil
}

func (e *emitter) finish() error {
	return e.flush(true)
}

// flush writes the buffered tokens as one block.
func (e *emitter) flush(final bool) error {
	if !final && len(e.tokens) == 0 {
		return nil
	}
	e.litLenFreq[endOfBlock]++

	litLens, err := huffman.BuildLengths(e.litLenFreq[:], huffman.MaxCodeLen)
	if err != nil {
		return fmt.Errorf("deflate: litlen lengths: %w", err)
	}
	distLens, err := huffman.BuildLengths(e.distFreq[:], huffman.MaxCodeLen)
	if err != nil {
		return fmt.Errorf("deflate: dist lengths: %w", err)
	}
	distLens = ensureDistCodes(distLens)

	hdr := planDynamicHeader(litLens, distLens)

	dynCost := hdr.costBits
	fixedCost := int64(0)
	for sym, f := range e.litLenFreq {
		if f == 0 {
			continue
		}
		dynCost += f * int64(litLens[sym])
		fixedCost += f * int64(e.fixedLit[sym].Len)
		if sym > endOfBlock {
			eb := lengthExtra[sym-257]
			dynCost += f * int64(eb)
			fixedCost += f * int64(eb)
		}
	}
	for sym, f := range e.distFreq {
		if f == 0 {
			continue
		}
		dynCost += f * int64(distLens[sym])
		fixedCost += f * int64(e.fixedDist[sym].Len)
		eb := distExtra[sym]
		dynCost += f * int64(eb)
		fixedCost += f * int64(eb)
	}
	fixedCost += 3 // header
	dynCost += 3

	span := e.data[e.blockStart:e.inPos]
	storedCost := int64(1 << 62)
	if len(span) <= maxStoredBlock {
		// 3 header bits + up-to-7 alignment + 32 bits LEN/NLEN + payload.
		storedCost = 3 + 7 + 32 + int64(len(span))*8
	}

	switch {
	case storedCost < dynCost && storedCost < fixedCost:
		writeStored(e.w, span, final)
	case fixedCost <= dynCost:
		if err := e.writeCompressed(e.fixedLit, e.fixedDist, nil, final); err != nil {
			return err
		}
	default:
		litCodes, err := huffman.CanonicalCodes(litLens)
		if err != nil {
			return fmt.Errorf("deflate: litlen codes: %w", err)
		}
		distCodes, err := huffman.CanonicalCodes(distLens)
		if err != nil {
			return fmt.Errorf("deflate: dist codes: %w", err)
		}
		if err := e.writeCompressed(litCodes, distCodes, &hdr, final); err != nil {
			return err
		}
	}

	e.tokens = e.tokens[:0]
	e.blockStart = e.inPos
	clear(e.litLenFreq[:])
	clear(e.distFreq[:])
	return nil
}

// ensureDistCodes guarantees at least one distance code exists: RFC
// 1951 permits HDIST=1 with a zero-length code "no distance codes",
// but one dummy 1-bit code is universally compatible (it is what zlib
// emits) and keeps the decoder's incomplete-tree path exercised only
// by hand-crafted streams.
func ensureDistCodes(distLens []uint8) []uint8 {
	for _, l := range distLens {
		if l != 0 {
			return distLens
		}
	}
	out := make([]uint8, len(distLens))
	copy(out, distLens)
	out[0] = 1
	return out
}

// writeCompressed emits the block header (and dynamic tree description
// when hdr != nil) followed by the token stream.
func (e *emitter) writeCompressed(lit, dist []huffman.Code, hdr *dynamicHeader, final bool) error {
	bfinal := uint32(0)
	if final {
		bfinal = 1
	}
	e.w.WriteBits(bfinal, 1)
	if hdr == nil {
		e.w.WriteBits(1, 2) // fixed
	} else {
		e.w.WriteBits(2, 2) // dynamic
		hdr.write(e.w)
	}
	for _, t := range e.tokens {
		if t.IsLiteral() {
			c := lit[t.Lit]
			e.w.WriteBits(c.Bits, uint(c.Len))
			continue
		}
		sym, extra, eb := lengthSymbol(t.Length())
		c := lit[sym]
		e.w.WriteBits(c.Bits, uint(c.Len))
		if eb > 0 {
			e.w.WriteBits(extra, eb)
		}
		dsym, dextra, deb := distSymbol(t.Distance())
		dc := dist[dsym]
		if dc.Len == 0 {
			return fmt.Errorf("deflate: no code for distance symbol %d", dsym)
		}
		e.w.WriteBits(dc.Bits, uint(dc.Len))
		if deb > 0 {
			e.w.WriteBits(dextra, deb)
		}
	}
	c := lit[endOfBlock]
	e.w.WriteBits(c.Bits, uint(c.Len))
	return nil
}
