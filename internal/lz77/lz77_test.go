package lz77

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// reconstruct replays a token stream back into bytes.
func reconstruct(tokens []Token) []byte {
	var out []byte
	for _, t := range tokens {
		if t.IsLiteral() {
			out = append(out, t.Lit)
			continue
		}
		src := len(out) - t.Distance()
		for i := 0; i < t.Length(); i++ {
			out = append(out, out[src+i])
		}
	}
	return out
}

func corpora(seed int64) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	dna := make([]byte, 200_000)
	for i := range dna {
		dna[i] = "ACGT"[rng.Intn(4)]
	}
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 3000)
	mixed := make([]byte, 100_000)
	rng.Read(mixed)
	return map[string][]byte{
		"dna":    dna,
		"text":   text,
		"random": mixed,
		"runs":   bytes.Repeat([]byte{'x'}, 150_000),
		"empty":  {},
		"tiny":   []byte("ab"),
	}
}

func TestParseReconstructsInput(t *testing.T) {
	for name, data := range corpora(1) {
		for level := 1; level <= 9; level++ {
			p, err := NewParser(level)
			if err != nil {
				t.Fatal(err)
			}
			tokens := p.ParseAll(data)
			got := reconstruct(tokens)
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: reconstruction mismatch (%d vs %d bytes)",
					name, level, len(got), len(data))
			}
		}
	}
}

func TestTokenBounds(t *testing.T) {
	for name, data := range corpora(2) {
		for _, level := range []int{1, 6, 9} {
			p, _ := NewParser(level)
			pos := 0
			err := p.Parse(data, func(tok Token) error {
				if tok.IsLiteral() {
					pos++
					return nil
				}
				if tok.Length() < MinMatch || tok.Length() > MaxMatch {
					t.Fatalf("%s level %d: match length %d out of range", name, level, tok.Length())
				}
				if tok.Distance() < 1 || tok.Distance() > WindowSize {
					t.Fatalf("%s level %d: distance %d out of range", name, level, tok.Distance())
				}
				if tok.Distance() > pos {
					t.Fatalf("%s level %d: distance %d reaches before start (pos %d)", name, level, tok.Distance(), pos)
				}
				pos += tok.Length()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestLazyAtLevel(t *testing.T) {
	for level := 1; level <= 3; level++ {
		if LazyAtLevel(level) {
			t.Fatalf("level %d should be greedy", level)
		}
	}
	for level := 4; level <= 9; level++ {
		if !LazyAtLevel(level) {
			t.Fatalf("level %d should be lazy", level)
		}
	}
}

func TestBadLevels(t *testing.T) {
	for _, level := range []int{-1, 0, 10} {
		if _, err := NewParser(level); err == nil {
			t.Fatalf("level %d accepted", level)
		}
	}
}

// countLiterals returns the literal count excluding the first
// windowSize output bytes (where literals are structural).
func countLiterals(tokens []Token, skip int) (lits, bytes int) {
	pos := 0
	for _, tok := range tokens {
		n := 1
		if !tok.IsLiteral() {
			n = tok.Length()
		}
		if pos >= skip {
			if tok.IsLiteral() {
				lits++
			}
			bytes += n
		}
		pos += n
	}
	return lits, bytes
}

// TestGreedyLiteralStarvation is Section V-A's phenomenon: greedy
// parsing of random DNA emits (essentially) zero literals once the
// window is primed, while lazy parsing keeps emitting a few percent —
// Section V-C predicts ~4 %.
func TestGreedyLiteralStarvation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dna := make([]byte, 500_000)
	for i := range dna {
		dna[i] = "ACGT"[rng.Intn(4)]
	}

	greedy, _ := NewParser(1)
	gl, gb := countLiterals(greedy.ParseAll(dna), WindowSize)
	gFrac := float64(gl) / float64(gb)
	if gFrac > 0.001 {
		t.Errorf("greedy literal fraction %.5f, want ~0 (Section V-A)", gFrac)
	}

	lazy, _ := NewParser(6)
	ll, lb := countLiterals(lazy.ParseAll(dna), WindowSize)
	lFrac := float64(ll) / float64(lb)
	if lFrac < 0.02 || lFrac > 0.08 {
		t.Errorf("lazy literal fraction %.4f, want a few percent (model L1 ≈ 0.04)", lFrac)
	}
}

// TestLazyPrefersLongerMatch pins Algorithm 3 on a hand-crafted case:
// with "abc" and "bcde" both seen before, greedy at 'a' takes the
// 3-match "abc", lazy emits literal 'a' and the longer 4-match "bcde".
func TestLazyPrefersLongerMatch(t *testing.T) {
	// Layout: "abcx" then "bcdey" then "abcde".
	input := []byte("abcx_bcdey_abcde")
	greedy, _ := NewParser(1)
	lazy, _ := NewParser(4)

	gTokens := greedy.ParseAll(input)
	lTokens := lazy.ParseAll(input)
	if !bytes.Equal(reconstruct(gTokens), input) || !bytes.Equal(reconstruct(lTokens), input) {
		t.Fatal("reconstruction failed")
	}

	// Find how the final "abcde" got encoded: locate tokens covering
	// positions >= 11.
	encoding := func(tokens []Token) []Token {
		pos := 0
		var out []Token
		for _, tok := range tokens {
			n := 1
			if !tok.IsLiteral() {
				n = tok.Length()
			}
			if pos >= 11 {
				out = append(out, tok)
			}
			pos += n
		}
		return out
	}
	g := encoding(gTokens)
	l := encoding(lTokens)
	// Greedy: match "abc" (len 3) then something for "de".
	if len(g) == 0 || g[0].IsLiteral() || g[0].Length() != 3 {
		t.Fatalf("greedy encoding unexpected: %v", g)
	}
	// Lazy: literal 'a' then match "bcde" (len 4).
	if len(l) < 2 || !l[0].IsLiteral() || l[0].Lit != 'a' {
		t.Fatalf("lazy should emit literal 'a' first: %v", l)
	}
	if l[1].IsLiteral() || l[1].Length() != 4 {
		t.Fatalf("lazy should match 4 bytes after the literal: %v", l)
	}
}

// TestTooFarShortMatchesDropped: a 3-byte match at distance > 4096 is
// not worth its encoding cost and must be emitted as literals (lazy
// parser).
func TestTooFarShortMatchesDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// "xyz" at position 0, noise for 8000 bytes (alphabet disjoint
	// from xyz so no accidental matches), then "xyz" again.
	input := []byte("xyz")
	for i := 0; i < 8000; i++ {
		input = append(input, "ABCDEFGH"[rng.Intn(8)])
	}
	input = append(input, 'x', 'y', 'z')

	p, _ := NewParser(6)
	tokens := p.ParseAll(input)
	if !bytes.Equal(reconstruct(tokens), input) {
		t.Fatal("reconstruction failed")
	}
	// The trailing "xyz" must be literals, not a match back to pos 0.
	tail := tokens[len(tokens)-3:]
	for _, tok := range tail {
		if !tok.IsLiteral() {
			t.Fatalf("trailing xyz should be literals (TOO_FAR), got %v", tok)
		}
	}
}

// TestWindowLimit: matches never reach beyond 32 KiB even when a
// better occurrence exists farther back.
func TestWindowLimit(t *testing.T) {
	pattern := []byte("GATTACAGATTACAGATTACA!")
	input := append([]byte{}, pattern...)
	// 40 KiB of low-redundancy filler (> window).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40*1024; i++ {
		input = append(input, "0123456789abcdef"[rng.Intn(16)])
	}
	input = append(input, pattern...)
	for _, level := range []int{1, 6, 9} {
		p, _ := NewParser(level)
		tokens := p.ParseAll(input)
		if !bytes.Equal(reconstruct(tokens), input) {
			t.Fatalf("level %d: reconstruction failed", level)
		}
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	for _, level := range []int{1, 4, 6, 9} {
		level := level
		f := func(data []byte) bool {
			p, err := NewParser(level)
			if err != nil {
				return false
			}
			return bytes.Equal(reconstruct(p.ParseAll(data)), data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

// TestQuickSmallAlphabet stresses overlapping matches (RLE-ish input).
func TestQuickSmallAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 60; iter++ {
		n := rng.Intn(3000)
		data := make([]byte, n)
		for i := range data {
			data[i] = "ab"[rng.Intn(2)]
		}
		for _, level := range []int{1, 6} {
			p, _ := NewParser(level)
			if !bytes.Equal(reconstruct(p.ParseAll(data)), data) {
				t.Fatalf("iter %d level %d: mismatch", iter, level)
			}
		}
	}
}

func TestTokenString(t *testing.T) {
	if s := NewLiteral('A').String(); s != `lit('A')` {
		t.Fatalf("got %s", s)
	}
	if s := NewMatch(5, 100).String(); s != "match(len=5,dist=100)" {
		t.Fatalf("got %s", s)
	}
}
