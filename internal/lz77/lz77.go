// Package lz77 implements the LZ77 parsing stage of DEFLATE with
// zlib's exact per-level policy: levels 1–3 use greedy parsing
// (deflate_fast), levels 4–9 use lazy / non-greedy parsing
// (deflate_slow, Algorithm 3 in the paper). The distinction is the
// heart of Section V: greedy parsing of random DNA emits essentially
// zero literals after the first window (making random access
// impossible), while lazy parsing keeps emitting ~4 % literals,
// which is what lets undetermined contexts resolve.
package lz77

import "fmt"

const (
	// WindowSize is the DEFLATE history window.
	WindowSize = 32 * 1024
	// MinMatch / MaxMatch bound match lengths.
	MinMatch = 3
	MaxMatch = 258
	// tooFar: zlib discards length-3 matches at distances beyond this,
	// because a far 3-byte match costs more bits than 3 literals.
	tooFar = 4096

	hashBits = 15
	hashSize = 1 << hashBits
	hashMask = hashSize - 1
	// hashShift distributes three input bytes across hashBits.
	hashShift = (hashBits + MinMatch - 1) / MinMatch

	windowMask = WindowSize - 1
)

// Token is one parse element. Literals have Len == 0; matches carry
// Len in [3,258] and Dist in [1,32768].
type Token struct {
	Lit  byte
	Len  uint16
	Dist uint16 // Dist-1 is stored so 32768 fits; use Distance()
}

// NewLiteral builds a literal token.
func NewLiteral(b byte) Token { return Token{Lit: b} }

// NewMatch builds a match token.
func NewMatch(length, dist int) Token {
	return Token{Len: uint16(length), Dist: uint16(dist - 1)}
}

// IsLiteral reports whether the token is a literal.
func (t Token) IsLiteral() bool { return t.Len == 0 }

// Length returns the match length (0 for literals).
func (t Token) Length() int { return int(t.Len) }

// Distance returns the match distance in [1,32768]; undefined for
// literals.
func (t Token) Distance() int { return int(t.Dist) + 1 }

func (t Token) String() string {
	if t.IsLiteral() {
		return fmt.Sprintf("lit(%q)", t.Lit)
	}
	return fmt.Sprintf("match(len=%d,dist=%d)", t.Len, t.Distance())
}

// config mirrors zlib's configuration_table.
type config struct {
	good, lazy, nice, chain int
	lazyParse               bool
}

var levels = [10]config{
	0: {},                    // stored only, handled by caller
	1: {4, 4, 8, 4, false},   // deflate_fast
	2: {4, 5, 16, 8, false},  // deflate_fast
	3: {4, 6, 32, 32, false}, // deflate_fast
	4: {4, 4, 16, 16, true},  // deflate_slow from here on
	5: {8, 16, 32, 32, true},
	6: {8, 16, 128, 128, true}, // gzip default
	7: {8, 32, 128, 256, true},
	8: {32, 128, 258, 1024, true},
	9: {32, 258, 258, 4096, true}, // gzip --best
}

// LazyAtLevel reports whether gzip uses non-greedy parsing at level
// (true for 4..9, matching "always used except -1, -2, -3").
func LazyAtLevel(level int) bool {
	return level >= 4 && level <= 9
}

// Parser carries the hash-chain state. One Parser per goroutine.
type Parser struct {
	head [hashSize]int32
	prev [WindowSize]int32
	cfg  config
}

// NewParser returns a Parser for the given compression level (1..9).
func NewParser(level int) (*Parser, error) {
	if level < 1 || level > 9 {
		return nil, fmt.Errorf("lz77: level %d out of range [1,9]", level)
	}
	p := &Parser{cfg: levels[level]}
	p.reset()
	return p, nil
}

func (p *Parser) reset() {
	for i := range p.head {
		p.head[i] = -1
	}
	for i := range p.prev {
		p.prev[i] = -1
	}
}

func hash3(a, b, c byte) uint32 {
	h := uint32(a)
	h = (h<<hashShift ^ uint32(b)) & hashMask
	h = (h<<hashShift ^ uint32(c)) & hashMask
	return h
}

// insert records position pos (which must have 3 readable bytes) in
// the hash chains.
func (p *Parser) insert(data []byte, pos int) {
	h := hash3(data[pos], data[pos+1], data[pos+2])
	p.prev[pos&windowMask] = p.head[h]
	p.head[h] = int32(pos)
}

// longestMatch searches the chain for the longest match at pos,
// mirroring zlib's longest_match: bounded chain walk, good_match chain
// reduction, nice_match early exit, and window-distance limits.
// prevLength is the length of the match found at pos-1 (lazy parsing);
// only strictly longer matches are interesting then.
func (p *Parser) longestMatch(data []byte, pos, prevLength int) (length, dist int) {
	cfg := p.cfg
	chainLen := cfg.chain
	if prevLength >= cfg.good {
		chainLen >>= 2
	}
	limit := pos - WindowSize // matches must start after this
	maxLen := len(data) - pos
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	if maxLen < MinMatch {
		return 0, 0
	}
	nice := cfg.nice
	if nice > maxLen {
		nice = maxLen
	}

	bestLen := prevLength // only improvements count
	if bestLen < MinMatch-1 {
		bestLen = MinMatch - 1
	}
	bestPos := -1

	h := hash3(data[pos], data[pos+1], data[pos+2])
	cand := int(p.head[h])
	for cand >= 0 && cand > limit && chainLen > 0 {
		chainLen--
		// Quick reject: compare the byte that would extend bestLen.
		if cand+bestLen < len(data) && pos+bestLen < len(data) &&
			data[cand+bestLen] != data[pos+bestLen] {
			cand = int(p.prev[cand&windowMask])
			continue
		}
		l := matchLen(data, cand, pos, maxLen)
		if l > bestLen {
			bestLen = l
			bestPos = cand
			if l >= nice {
				break
			}
		}
		cand = int(p.prev[cand&windowMask])
	}
	if bestPos < 0 || bestLen < MinMatch {
		return 0, 0
	}
	return bestLen, pos - bestPos
}

// matchLen counts equal bytes at a vs b, up to maxLen.
func matchLen(data []byte, a, b, maxLen int) int {
	n := 0
	for n < maxLen && data[a+n] == data[b+n] {
		n++
	}
	return n
}

// Parse tokenises data. The emit callback receives each token in
// stream order; returning a non-nil error aborts parsing.
func (p *Parser) Parse(data []byte, emit func(Token) error) error {
	if p.cfg.lazyParse {
		return p.parseLazy(data, emit)
	}
	return p.parseGreedy(data, emit)
}

// ParseAll is Parse collecting into a slice.
func (p *Parser) ParseAll(data []byte) []Token {
	est := len(data) / 4
	if est < 16 {
		est = 16
	}
	out := make([]Token, 0, est)
	_ = p.Parse(data, func(t Token) error { out = append(out, t); return nil })
	return out
}

// parseGreedy is zlib's deflate_fast: take the first acceptable
// longest match at each position.
func (p *Parser) parseGreedy(data []byte, emit func(Token) error) error {
	p.reset()
	pos := 0
	for pos < len(data) {
		length, dist := 0, 0
		if pos+MinMatch <= len(data) {
			length, dist = p.longestMatch(data, pos, 0)
			if length == MinMatch && dist > tooFar {
				length, dist = 0, 0
			}
		}
		if length >= MinMatch {
			if err := emit(NewMatch(length, dist)); err != nil {
				return err
			}
			// Insert hash entries for covered positions when the match
			// is short enough (zlib: length <= max_insert == lazy).
			if length <= p.cfg.lazy && pos+length+MinMatch <= len(data) {
				for i := 0; i < length; i++ {
					if pos+i+MinMatch <= len(data) {
						p.insert(data, pos+i)
					}
				}
			} else if pos+MinMatch <= len(data) {
				p.insert(data, pos)
			}
			pos += length
		} else {
			if err := emit(NewLiteral(data[pos])); err != nil {
				return err
			}
			if pos+MinMatch <= len(data) {
				p.insert(data, pos)
			}
			pos++
		}
	}
	return nil
}

// parseLazy is zlib's deflate_slow / the paper's Algorithm 3
// (non-greedy parsing): a match at pos is only emitted if the match at
// pos+1 is not strictly longer; otherwise the byte at pos becomes a
// literal and parsing re-decides at pos+1. These extra literals are
// exactly the E_l of Section V-C.
func (p *Parser) parseLazy(data []byte, emit func(Token) error) error {
	p.reset()
	pos := 0
	prevLength := 0
	prevDist := 0
	matchAvailable := false // a pending byte at pos-1 not yet emitted

	for pos < len(data) {
		length, dist := 0, 0
		// zlib only attempts the lazy search while the pending match is
		// shorter than max_lazy; beyond that the pending match is
		// emitted without looking for a better one.
		if pos+MinMatch <= len(data) && prevLength < p.cfg.lazy {
			length, dist = p.longestMatch(data, pos, prevLength)
			if length == MinMatch && dist > tooFar {
				// Too-far 3-byte matches are not worth it.
				length, dist = 0, 0
			}
		}
		if pos+MinMatch <= len(data) {
			p.insert(data, pos)
		}

		if prevLength >= MinMatch && length <= prevLength {
			// The previous position's match wins: emit it now.
			if err := emit(NewMatch(prevLength, prevDist)); err != nil {
				return err
			}
			// Insert hash entries for the remaining covered positions
			// (pos itself was inserted above; cover pos+1 .. end-1).
			end := pos - 1 + prevLength // last covered position + 1... see below
			for i := pos + 1; i < end; i++ {
				if i+MinMatch <= len(data) {
					p.insert(data, i)
				}
			}
			pos = end
			prevLength = 0
			matchAvailable = false
			continue
		}

		if matchAvailable {
			// No previous match to honour; the byte at pos-1 is a
			// literal (this is the "+1 literal" of non-greedy parsing).
			if err := emit(NewLiteral(data[pos-1])); err != nil {
				return err
			}
		}
		prevLength, prevDist = length, dist
		matchAvailable = true
		pos++
	}
	if matchAvailable {
		if err := emit(NewLiteral(data[len(data)-1])); err != nil {
			return err
		}
	}
	return nil
}
