package dna

import (
	"bytes"
	"math"
	"testing"
)

func TestRandomDeterministicAndUniform(t *testing.T) {
	a := Random(100_000, 1)
	b := Random(100_000, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed differs")
	}
	counts := map[byte]int{}
	for _, c := range a {
		counts[c]++
	}
	if len(counts) != 4 {
		t.Fatalf("alphabet size %d", len(counts))
	}
	for base, n := range counts {
		frac := float64(n) / 100_000
		if frac < 0.23 || frac > 0.27 {
			t.Fatalf("base %q fraction %.3f not ≈0.25", base, frac)
		}
	}
}

func TestFASTQLikeStructure(t *testing.T) {
	data := FASTQLike(4500, 150, 300, 2)
	if len(data) != 4500 {
		t.Fatalf("length %d", len(data))
	}
	// Periods of 450: 150 DNA then 300 'x'.
	for p := 0; p+450 <= len(data); p += 450 {
		for i := 0; i < 150; i++ {
			if !IsNucleotide(data[p+i]) {
				t.Fatalf("pos %d: %q not DNA", p+i, data[p+i])
			}
		}
		for i := 150; i < 450; i++ {
			if data[p+i] != 'x' {
				t.Fatalf("pos %d: %q not filler", p+i, data[p+i])
			}
		}
	}
}

func TestPaperFASTQLike(t *testing.T) {
	data := PaperFASTQLike(900, 3)
	if len(data) != 900 {
		t.Fatal("length")
	}
	if data[150] != 'x' || data[449] != 'x' || !IsNucleotide(data[0]) {
		t.Fatal("shape")
	}
}

func TestOrder0Entropy(t *testing.T) {
	if h := Order0Entropy(nil); h != 0 {
		t.Fatal("empty entropy")
	}
	if h := Order0Entropy(bytes.Repeat([]byte{'A'}, 1000)); h != 0 {
		t.Fatalf("constant entropy %f", h)
	}
	h := Order0Entropy(Random(200_000, 4))
	if math.Abs(h-2.0) > 0.01 {
		t.Fatalf("random DNA order-0 entropy %f, want ≈2", h)
	}
	// Uniform bytes approach 8 bits.
	uni := make([]byte, 1<<16)
	for i := range uni {
		uni[i] = byte(i)
	}
	if h := Order0Entropy(uni); math.Abs(h-8) > 0.001 {
		t.Fatalf("uniform byte entropy %f", h)
	}
}

func TestOrderKEntropy(t *testing.T) {
	rnd := Random(300_000, 5)
	h2 := OrderKEntropy(rnd, 2)
	if math.Abs(h2-2.0) > 0.02 {
		t.Fatalf("random DNA order-2 entropy %f, want ≈2", h2)
	}
	// A deterministic periodic sequence has (near) zero conditional
	// entropy at order >= period length context.
	per := bytes.Repeat([]byte("ACGT"), 10_000)
	if h := OrderKEntropy(per, 2); h > 0.01 {
		t.Fatalf("periodic order-2 entropy %f", h)
	}
	// k=0 falls back to order-0.
	if OrderKEntropy(rnd, 0) != Order0Entropy(rnd) {
		t.Fatal("k=0 fallback")
	}
	// Degenerate inputs.
	if OrderKEntropy([]byte("A"), 5) != 0 {
		t.Fatal("short input")
	}
}

func TestLooksRandom(t *testing.T) {
	if !LooksRandom(Random(100_000, 6), 1.95) {
		t.Fatal("random DNA failed randomness test")
	}
	if LooksRandom(bytes.Repeat([]byte("ACGT"), 25_000), 1.95) {
		t.Fatal("periodic DNA passed randomness test")
	}
}

func TestGC(t *testing.T) {
	cases := []struct {
		seq  string
		want float64
	}{
		{"GGCC", 1}, {"AATT", 0}, {"ACGT", 0.5}, {"acgt", 0.5},
		{"NNNN", 0}, {"", 0}, {"GCNA", 2.0 / 3.0},
	}
	for _, c := range cases {
		if got := GC([]byte(c.seq)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GC(%q) = %f, want %f", c.seq, got, c.want)
		}
	}
}

func TestIsNucleotide(t *testing.T) {
	for _, b := range []byte("ACGTN") {
		if !IsNucleotide(b) {
			t.Fatalf("%q", b)
		}
	}
	for _, b := range []byte("acgtUX? \n@") {
		if IsNucleotide(b) {
			t.Fatalf("%q accepted", b)
		}
	}
}
