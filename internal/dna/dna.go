// Package dna generates the synthetic corpora of Sections IV-C and
// IV-D — uniform random DNA and the FASTQ-like periodic string — and
// provides the randomness check (entropy estimation) standing in for
// the paper's bzip2-based test of footnote 4.
package dna

import (
	"math"
	"math/rand"
)

// Alphabet is the nucleotide alphabet used for random DNA.
const Alphabet = "ACGT"

// NewRNG returns the repository's deterministic random source. All
// corpora derive from explicit seeds so experiments are reproducible.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Random returns n bases of uniform random DNA.
func Random(n int, seed int64) []byte {
	rng := NewRNG(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = Alphabet[rng.Intn(4)]
	}
	return out
}

// FASTQLike builds the paper's Section IV-D synthetic string: blocks
// of dnaLen random DNA characters followed by fillLen 'x' characters,
// repeated until n bytes. The paper uses dnaLen=150, fillLen=300.
func FASTQLike(n int, dnaLen, fillLen int, seed int64) []byte {
	rng := NewRNG(seed)
	out := make([]byte, 0, n)
	fill := make([]byte, fillLen)
	for i := range fill {
		fill[i] = 'x'
	}
	for len(out) < n {
		for i := 0; i < dnaLen && len(out) < n; i++ {
			out = append(out, Alphabet[rng.Intn(4)])
		}
		remaining := n - len(out)
		if remaining < len(fill) {
			out = append(out, fill[:remaining]...)
		} else {
			out = append(out, fill...)
		}
	}
	return out
}

// PaperFASTQLike is FASTQLike with the paper's exact 150/300 shape.
func PaperFASTQLike(n int, seed int64) []byte {
	return FASTQLike(n, 150, 300, seed)
}

// Order0Entropy returns the empirical order-0 entropy of data in bits
// per byte.
func Order0Entropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// OrderKEntropy returns the empirical conditional entropy
// H(X_i | X_{i-k}..X_{i-1}) in bits per byte, estimated from context
// counts. This is the randomness test standing in for the paper's
// "compress with bzip2 -9 and compare against 2 bits/char": random
// DNA has conditional entropy ~2 bits at every order, while structured
// sequence data drops well below.
func OrderKEntropy(data []byte, k int) float64 {
	if len(data) <= k || k < 0 {
		return 0
	}
	if k == 0 {
		return Order0Entropy(data)
	}
	// context -> symbol -> count
	ctxCounts := make(map[string]*[256]int)
	for i := k; i < len(data); i++ {
		ctx := string(data[i-k : i])
		m := ctxCounts[ctx]
		if m == nil {
			m = new([256]int)
			ctxCounts[ctx] = m
		}
		m[data[i]]++
	}
	total := float64(len(data) - k)
	h := 0.0
	for _, m := range ctxCounts {
		ctxTotal := 0
		for _, c := range m {
			ctxTotal += c
		}
		for _, c := range m {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(ctxTotal)
			h -= float64(c) / total * math.Log2(p)
		}
	}
	return h
}

// LooksRandom applies the footnote-4 criterion: a DNA window is
// "random-like" when its order-2 conditional entropy exceeds
// thresholdBits (the paper uses 2.1 bits/char on bzip2 output; with a
// direct entropy estimate the natural threshold is just below 2).
func LooksRandom(window []byte, thresholdBits float64) bool {
	return OrderKEntropy(window, 2) >= thresholdBits
}

// GC returns the GC fraction of a DNA sequence (N and other bytes are
// ignored in the denominator).
func GC(seq []byte) float64 {
	gc, acgt := 0, 0
	for _, b := range seq {
		switch b {
		case 'G', 'C', 'g', 'c':
			gc++
			acgt++
		case 'A', 'T', 'a', 't':
			acgt++
		}
	}
	if acgt == 0 {
		return 0
	}
	return float64(gc) / float64(acgt)
}

// IsNucleotide reports whether b is one of A, C, G, T, N (upper case),
// the alphabet D of the Appendix X-B grammar.
func IsNucleotide(b byte) bool {
	switch b {
	case 'A', 'C', 'G', 'T', 'N':
		return true
	}
	return false
}
