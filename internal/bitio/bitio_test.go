package bitio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReaderSequentialBits(t *testing.T) {
	// 0b10110100, 0b01100011 -> LSB-first bit sequence
	data := []byte{0xb4, 0x63}
	r := NewReader(data)
	want := []uint32{0, 0, 1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0}
	for i, wb := range want {
		got, err := r.Take(1)
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != wb {
			t.Fatalf("bit %d: got %d want %d", i, got, wb)
		}
	}
	if _, err := r.Take(1); !errors.Is(err, ErrUnderflow) {
		t.Fatal("expected underflow at end")
	}
}

func TestReaderMultiBitChunks(t *testing.T) {
	data := []byte{0xb4, 0x63}
	r := NewReader(data)
	v, err := r.Take(4)
	if err != nil || v != 0x4 {
		t.Fatalf("low nibble: %x err %v", v, err)
	}
	v, err = r.Take(4)
	if err != nil || v != 0xb {
		t.Fatalf("high nibble: %x err %v", v, err)
	}
	v, err = r.Take(8)
	if err != nil || v != 0x63 {
		t.Fatalf("second byte: %x err %v", v, err)
	}
}

func TestNewReaderAtOffsets(t *testing.T) {
	data := []byte{0xff, 0x00, 0xff}
	for off := int64(0); off <= 24; off++ {
		r, err := NewReaderAt(data, off)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if got := r.BitPos(); got != off {
			t.Fatalf("offset %d: BitPos %d", off, got)
		}
		if got := r.Len(); got != 24-off {
			t.Fatalf("offset %d: Len %d", off, got)
		}
	}
	if _, err := NewReaderAt(data, 25); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := NewReaderAt(data, -1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestReaderAtMidByte(t *testing.T) {
	data := []byte{0b1010_1100}
	r, err := NewReaderAt(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Take(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b011 { // bits 2,3,4 LSB-first: 1,1,0
		t.Fatalf("got %03b", v)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	r := NewReader([]byte{0xa5})
	if r.Peek(4) != 0x5 {
		t.Fatal("peek low nibble")
	}
	if r.Peek(8) != 0xa5 {
		t.Fatal("peek full byte")
	}
	if r.BitPos() != 0 {
		t.Fatal("peek consumed bits")
	}
	if err := r.Drop(4); err != nil {
		t.Fatal(err)
	}
	if r.Peek(4) != 0xa {
		t.Fatal("after drop")
	}
}

func TestAlignByte(t *testing.T) {
	r := NewReader([]byte{0xff, 0x12})
	if _, err := r.Take(3); err != nil {
		t.Fatal(err)
	}
	if skip := r.AlignByte(); skip != 5 {
		t.Fatalf("skip %d, want 5", skip)
	}
	v, err := r.Take(8)
	if err != nil || v != 0x12 {
		t.Fatalf("aligned byte %x err %v", v, err)
	}
	// Aligning when already aligned is a no-op.
	if skip := r.AlignByte(); skip != 0 {
		t.Fatalf("second align skipped %d", skip)
	}
}

func TestReadBytes(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	r := NewReader(src)
	dst := make([]byte, 5)
	if err := r.ReadBytes(dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("mismatch")
	}
	// Unaligned read must fail.
	r = NewReader(src)
	if _, err := r.Take(1); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadBytes(dst[:1]); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("want ErrUnaligned, got %v", err)
	}
	// Reading past the end must fail.
	r = NewReader(src)
	if err := r.ReadBytes(make([]byte, 6)); !errors.Is(err, ErrUnderflow) {
		t.Fatalf("want ErrUnderflow, got %v", err)
	}
}

func TestReset(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56}
	r := NewReader(data)
	if _, err := r.Take(13); err != nil {
		t.Fatal(err)
	}
	if err := r.Reset(4); err != nil {
		t.Fatal(err)
	}
	v, err := r.Take(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x41 { // bits 4..11 LSB-first: high nibble of 0x12 is 1, low nibble of 0x34 is 4
		t.Fatalf("got %#x want 0x41", v)
	}
	if err := r.Reset(100); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	type op struct {
		v uint32
		n uint
	}
	rng := rand.New(rand.NewSource(7))
	var ops []op
	w := NewWriter(64)
	for i := 0; i < 10_000; i++ {
		n := uint(1 + rng.Intn(24))
		v := rng.Uint32() & (1<<n - 1)
		ops = append(ops, op{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, o := range ops {
		got, err := r.Take(o.n)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got != o.v {
			t.Fatalf("op %d: got %#x want %#x (n=%d)", i, got, o.v, o.n)
		}
	}
}

func TestWriterAlignAndBytes(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	if pad := w.AlignByte(); pad != 5 {
		t.Fatalf("pad %d", pad)
	}
	if err := w.WriteBytes([]byte{0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	want := []byte{0b0000_0101, 0xAB, 0xCD}
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x want % x", got, want)
	}
	if w.BitLen() != 24 {
		t.Fatalf("BitLen %d", w.BitLen())
	}
}

func TestWriterUnalignedBytesRejected(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 1)
	if err := w.WriteBytes([]byte{1}); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("want ErrUnaligned, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xff, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteBits(0x1, 1)
	if got := w.Bytes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("got % x", got)
	}
}

// Property: writing any sequence of (value,width) pairs and reading it
// back yields the same values, regardless of widths.
func TestQuickRoundTrip(t *testing.T) {
	f := func(words []uint32, widths []uint8, startPad uint8) bool {
		if len(words) == 0 {
			return true
		}
		w := NewWriter(64)
		pad := uint(startPad % 8)
		w.WriteBits(0, pad) // stress non-zero phase
		type op struct {
			v uint32
			n uint
		}
		var ops []op
		for i, word := range words {
			n := uint(7) // default width when no widths provided
			if len(widths) > 0 {
				n = uint(widths[i%len(widths)]%32) + 1
			}
			v := word & (1<<n - 1)
			ops = append(ops, op{v, n})
			w.WriteBits(v, n)
		}
		r, err := NewReaderAt(w.Bytes(), int64(pad))
		if err != nil {
			return false
		}
		for _, o := range ops {
			got, err := r.Take(o.n)
			if err != nil || got != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRefillNearEOF pins the tail behavior of the bulk refill: for
// every start offset within the last 10 bytes of a buffer — including
// every mid-byte bit phase — BitPos/Len must stay exact, Peek must
// zero-fill past the end without over-reading, and the bit sequence
// must match a bit-at-a-time reference read. blockfind candidate
// confirmation near the end of a member depends on exactly this.
func TestRefillNearEOF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 64)
	rng.Read(data)
	total := int64(len(data)) * 8
	for off := total - 10*8; off <= total; off++ {
		r, err := NewReaderAt(data, off)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if got := r.BitPos(); got != off {
			t.Fatalf("offset %d: BitPos %d", off, got)
		}
		// Reference: extract bits directly from the byte slice.
		ref := func(pos int64) uint32 {
			if pos >= total {
				return 0
			}
			return uint32(data[pos/8]>>(pos%8)) & 1
		}
		// Peek in every width up to 32 at this position: high bits past
		// EOF must read as zero, and the position must not move.
		for w := uint(1); w <= 32; w++ {
			want := uint32(0)
			for b := uint(0); b < w; b++ {
				want |= ref(off+int64(b)) << b
			}
			if got := r.Peek(w); got != want {
				t.Fatalf("offset %d width %d: Peek %#x want %#x", off, w, got, want)
			}
			if got := r.BitPos(); got != off {
				t.Fatalf("offset %d width %d: Peek moved BitPos to %d", off, w, got)
			}
		}
		// Drain the tail with mixed-width Takes and verify each value
		// and every intermediate BitPos.
		pos := off
		for r.Len() > 0 {
			n := uint(1 + rng.Intn(13))
			if int64(n) > r.Len() {
				n = uint(r.Len())
			}
			want := uint32(0)
			for b := uint(0); b < n; b++ {
				want |= ref(pos+int64(b)) << b
			}
			got, err := r.Take(n)
			if err != nil {
				t.Fatalf("offset %d pos %d: Take(%d): %v", off, pos, n, err)
			}
			if got != want {
				t.Fatalf("offset %d pos %d: Take(%d) = %#x want %#x", off, pos, n, got, want)
			}
			pos += int64(n)
			if got := r.BitPos(); got != pos {
				t.Fatalf("offset %d: BitPos %d want %d", off, got, pos)
			}
		}
		if _, err := r.Take(1); !errors.Is(err, ErrUnderflow) {
			t.Fatalf("offset %d: want underflow at end, got %v", off, err)
		}
	}
}

// TestRefillPrimitives checks the fast-loop contract: after Refill,
// Bits() >= 56 away from EOF (and exactly the remaining count near
// it), Acc() exposes the same bits Peek reports, and Consume moves
// BitPos exactly like Drop.
func TestRefillPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 256)
	rng.Read(data)
	r := NewReader(data)
	total := int64(len(data)) * 8
	for r.Len() > 0 {
		r.Refill()
		remaining := total - r.BitPos()
		if remaining >= 56 && r.Bits() < 56 {
			t.Fatalf("BitPos %d: Refill left only %d bits", r.BitPos(), r.Bits())
		}
		if remaining < 56 && int64(r.Bits()) != remaining {
			t.Fatalf("BitPos %d: Bits %d want %d at tail", r.BitPos(), r.Bits(), remaining)
		}
		if got, want := uint32(r.Acc())&0xffff, r.Peek(16); got != want {
			t.Fatalf("BitPos %d: Acc low bits %#x, Peek %#x", r.BitPos(), got, want)
		}
		n := uint(1 + rng.Intn(48))
		if n > r.Bits() {
			n = r.Bits()
		}
		before := r.BitPos()
		r.Consume(n)
		if got := r.BitPos(); got != before+int64(n) {
			t.Fatalf("Consume(%d) moved BitPos %d -> %d", n, before, got)
		}
	}
}

// TestRefillIdempotentTail covers the accumulator invariant the bulk
// load depends on: bits above Bits() are re-ORed by later refills, so
// interleaving Refill with byte-granular reads must stay exact right
// through the last 8 bytes.
func TestRefillIdempotentTail(t *testing.T) {
	data := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x10, 0x32}
	r := NewReader(data)
	r.Refill()
	// Consume down into the tail in 4-bit nibbles, refilling eagerly.
	want := []uint32{0x1, 0x0, 0x3, 0x2, 0x5, 0x4, 0x7, 0x6, 0x9, 0x8, 0xb, 0xa, 0xd, 0xc, 0xf, 0xe, 0x0, 0x1, 0x2, 0x3}
	for i, wv := range want {
		r.Refill()
		got, err := r.Take(4)
		if err != nil {
			t.Fatalf("nibble %d: %v", i, err)
		}
		if got != wv {
			t.Fatalf("nibble %d: got %#x want %#x", i, got, wv)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("expected exhausted reader, Len=%d", r.Len())
	}
}

func TestQuickReaderAtConsistency(t *testing.T) {
	// Reading k bits from offset o equals reading o+k bits from 0 and
	// discarding the first o.
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (int64(len(data)) * 8)
		r1, err := NewReaderAt(data, o)
		if err != nil {
			return false
		}
		r2 := NewReader(data)
		if err := r2.Drop(0); err != nil {
			return false
		}
		// Discard o bits one at a time (exercises refill paths).
		for i := int64(0); i < o; i++ {
			if _, err := r2.Take(1); err != nil {
				return false
			}
		}
		for r1.Len() > 0 {
			n := uint(7)
			if int64(n) > r1.Len() {
				n = uint(r1.Len())
			}
			a, err1 := r1.Take(n)
			b, err2 := r2.Take(n)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
