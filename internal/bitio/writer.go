package bitio

// Writer accumulates bits LSB-first and flushes them to an in-memory
// buffer. It is the output side of the DEFLATE bit order: the first bit
// written becomes the least-significant bit of the first output byte.
//
// The zero value is ready to use.
type Writer struct {
	buf []byte
	acc uint64
	n   uint
}

// NewWriter returns a Writer whose internal buffer has the given
// initial capacity in bytes.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// WriteBits appends the count low bits of v, LSB first. count must be
// in [0,32] and v must not have bits set above count (callers in this
// module always mask).
func (w *Writer) WriteBits(v uint32, count uint) {
	w.acc |= uint64(v) << w.n
	w.n += count
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.n -= 8
	}
}

// AlignByte pads with zero bits to the next byte boundary and returns
// the number of padding bits added (0..7).
func (w *Writer) AlignByte() uint {
	pad := (8 - w.n%8) % 8
	if pad > 0 {
		w.WriteBits(0, pad)
	}
	return pad
}

// WriteBytes appends whole bytes; the writer must be byte-aligned.
func (w *Writer) WriteBytes(p []byte) error {
	if w.n%8 != 0 {
		return ErrUnaligned
	}
	// Drain any whole buffered bytes first (n can only be 0 here since
	// WriteBits flushes whole bytes eagerly, but keep it robust).
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.n -= 8
	}
	w.buf = append(w.buf, p...)
	return nil
}

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int64 {
	return int64(len(w.buf))*8 + int64(w.n)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The returned slice aliases the Writer's storage.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset discards all written data, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
}
