// Package bitio provides bit-granular readers and writers over byte
// slices, in the LSB-first bit order used by DEFLATE (RFC 1951).
//
// The Reader supports starting at an arbitrary *bit* offset, which is
// the capability that makes brute-force DEFLATE block detection
// (internal/blockfind) possible: candidate block headers can begin at
// any of the 8 bit positions within any byte of a gzip member.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnderflow is returned when more bits are requested than remain in
// the underlying buffer.
var ErrUnderflow = errors.New("bitio: read past end of input")

// Reader reads bits LSB-first from a byte slice. The zero value is not
// usable; construct with NewReader or NewReaderAt.
//
// Reader keeps up to 64 bits buffered in an accumulator. All Peek/Take
// calls for n <= 32 are safe as long as Refill has been called since the
// last 32 bits were consumed; the exported methods handle refilling
// internally, so callers never need to think about the accumulator.
type Reader struct {
	data []byte // entire input
	pos  int    // index of next byte to load into acc
	acc  uint64 // bit accumulator, next bit is LSB
	n    uint   // number of valid bits in acc
}

// NewReader returns a Reader positioned at bit 0 of data.
func NewReader(data []byte) *Reader {
	r := &Reader{data: data}
	r.refill()
	return r
}

// NewReaderAt returns a Reader positioned at the given absolute bit
// offset. It returns an error if bitOffset is negative or beyond the
// end of data. A reader positioned exactly at the end is valid but any
// read returns ErrUnderflow.
func NewReaderAt(data []byte, bitOffset int64) (*Reader, error) {
	total := int64(len(data)) * 8
	if bitOffset < 0 || bitOffset > total {
		return nil, fmt.Errorf("bitio: bit offset %d out of range [0,%d]", bitOffset, total)
	}
	r := &Reader{data: data, pos: int(bitOffset / 8)}
	r.refill()
	// Discard the intra-byte bits.
	if rem := uint(bitOffset % 8); rem > 0 {
		r.acc >>= rem
		r.n -= rem
	}
	return r, nil
}

// Reset repositions the reader at the given absolute bit offset without
// allocating. It is equivalent to NewReaderAt on the same data.
func (r *Reader) Reset(bitOffset int64) error {
	total := int64(len(r.data)) * 8
	if bitOffset < 0 || bitOffset > total {
		return fmt.Errorf("bitio: bit offset %d out of range [0,%d]", bitOffset, total)
	}
	r.pos = int(bitOffset / 8)
	r.acc = 0
	r.n = 0
	r.refill()
	if rem := uint(bitOffset % 8); rem > 0 {
		r.acc >>= rem
		r.n -= rem
	}
	return nil
}

// refill tops up the accumulator with whole bytes. Away from the end
// of the input it loads eight bytes at once and advances the byte
// cursor by however many whole bytes fit: with n valid bits the load
// contributes bits n..63, of which floor((64-n)/8) = (63-n)>>3 whole
// bytes are newly accounted, leaving n' = n|56 (n mod 8 is preserved,
// so byte alignment and BitPos are bit-exact). The bits above n' in
// the accumulator are the correct continuation of the stream — the
// next refill re-ORs the same values, so they are harmless and every
// consumer masks to the bits it asked for.
//
// Within 8 bytes of the end the slow byte-at-a-time loop takes over,
// so the reader never loads past len(data).
func (r *Reader) refill() {
	if r.n >= 56 {
		return
	}
	if r.pos+8 <= len(r.data) {
		r.acc |= binary.LittleEndian.Uint64(r.data[r.pos:]) << r.n
		r.pos += int((63 - r.n) >> 3)
		r.n |= 56
		return
	}
	r.refillSlow()
}

func (r *Reader) refillSlow() {
	for r.n <= 56 && r.pos < len(r.data) {
		r.acc |= uint64(r.data[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
}

// Refill tops up the accumulator. After the call, Bits() >= 56 unless
// fewer bits than that remain in the input. This is the fast-loop
// entry point: one Refill covers a worst-case DEFLATE token
// (litlen code + extra + dist code + extra <= 48 bits).
func (r *Reader) Refill() { r.refill() }

// Bits returns the number of valid buffered bits in the accumulator.
func (r *Reader) Bits() uint { return r.n }

// Acc returns the accumulator: the next Bits() unread bits of the
// stream, LSB-first. Bits at positions >= Bits() are either zero or
// the correct continuation of the stream (never garbage), so callers
// that mask to at most Bits() bits are exact.
func (r *Reader) Acc() uint64 { return r.acc }

// Consume discards count buffered bits with no underflow check. The
// caller must guarantee count <= Bits(); the fast decode loops do so
// by requiring Bits() >= 48 before decoding a token.
func (r *Reader) Consume(count uint) {
	r.acc >>= count
	r.n -= count
}

// BitPos returns the absolute bit offset of the next unread bit.
func (r *Reader) BitPos() int64 {
	return int64(r.pos)*8 - int64(r.n)
}

// Len returns the number of unread bits remaining.
func (r *Reader) Len() int64 {
	return int64(len(r.data))*8 - r.BitPos()
}

// Peek returns the next count bits without consuming them. count must
// be in [0,32]. If fewer than count bits remain, the missing high bits
// are zero and ok is false only when *no* bits remain at all and
// count > 0; callers that need exact boundary checking should compare
// Len() themselves (the DEFLATE decoder does).
func (r *Reader) Peek(count uint) uint32 {
	if r.n < count {
		r.refill()
	}
	return uint32(r.acc) & ((1 << count) - 1)
}

// Take consumes and returns count bits (count in [0,32]). It returns
// ErrUnderflow if fewer than count bits remain.
func (r *Reader) Take(count uint) (uint32, error) {
	if r.n < count {
		r.refill()
		if r.n < count {
			return 0, ErrUnderflow
		}
	}
	v := uint32(r.acc) & ((1 << count) - 1)
	r.acc >>= count
	r.n -= count
	return v, nil
}

// Drop consumes count bits that were previously Peeked. It must not be
// called for more bits than Peek made available; in debug terms this is
// a programmer error and is reported as ErrUnderflow.
func (r *Reader) Drop(count uint) error {
	if r.n < count {
		r.refill()
		if r.n < count {
			return ErrUnderflow
		}
	}
	r.acc >>= count
	r.n -= count
	return nil
}

// AlignByte discards bits up to the next byte boundary and returns the
// number of bits skipped (0..7).
func (r *Reader) AlignByte() uint {
	skip := r.n % 8
	r.acc >>= skip
	r.n -= skip
	return skip
}

// ReadBytes copies count whole bytes into dst after aligning to a byte
// boundary is NOT performed; the reader must already be byte-aligned
// (DEFLATE stored blocks guarantee this). It returns ErrUnderflow when
// not enough input remains and ErrUnaligned when mid-byte.
func (r *Reader) ReadBytes(dst []byte) error {
	if r.n%8 != 0 {
		return ErrUnaligned
	}
	for i := range dst {
		if r.n == 0 {
			r.refill()
			if r.n == 0 {
				return ErrUnderflow
			}
		}
		dst[i] = byte(r.acc)
		r.acc >>= 8
		r.n -= 8
	}
	return nil
}

// ErrUnaligned is returned by ReadBytes when the reader is not at a
// byte boundary.
var ErrUnaligned = errors.New("bitio: byte read at non-byte boundary")

// Data returns the underlying buffer (shared, not copied).
func (r *Reader) Data() []byte { return r.data }
