package bgzf

import (
	"bytes"
	stdgzip "compress/gzip"
	"io"
	"math/rand"
	"testing"

	"repro/internal/fastq"
	"repro/internal/gzipx"
)

func corpus(t *testing.T, reads int) []byte {
	t.Helper()
	return fastq.Generate(fastq.GenOptions{Reads: reads, Seed: 61})
}

func TestRoundTrip(t *testing.T) {
	data := corpus(t, 10000)
	for _, level := range []int{1, 6, 9} {
		bz, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(bz)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("level %d: mismatch", level)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	bz, err := Compress(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(bz)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d bytes", len(out))
	}
}

// TestStdlibCompatible: every BGZF file is a valid multi-member gzip
// file, so both the standard library and this repo's gzip reader must
// inflate it.
func TestStdlibCompatible(t *testing.T) {
	data := corpus(t, 5000)
	bz, err := Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := stdgzip.NewReader(bytes.NewReader(bz))
	if err != nil {
		t.Fatal(err)
	}
	zr.Multistream(true)
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("stdlib mismatch")
	}
	out2, err := gzipx.Decompress(bz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, data) {
		t.Fatal("gzipx mismatch")
	}
}

func TestScan(t *testing.T) {
	data := corpus(t, 10000)
	bz, err := Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Scan(bz)
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := (len(data) + MaxBlockInput - 1) / MaxBlockInput
	if len(blocks) != wantBlocks {
		t.Fatalf("%d blocks, want %d", len(blocks), wantBlocks)
	}
	var out int64
	for i, b := range blocks {
		if b.OutOff != out {
			t.Fatalf("block %d: OutOff %d, want %d", i, b.OutOff, out)
		}
		out += b.OutSize
	}
	if out != int64(len(data)) {
		t.Fatalf("blocks cover %d, want %d", out, len(data))
	}
}

func TestMissingEOFDetected(t *testing.T) {
	data := corpus(t, 1000)
	bz, _ := Compress(data, 6)
	noEOF := bz[:len(bz)-28]
	if _, err := Scan(noEOF); err != ErrNoEOF {
		t.Fatalf("want ErrNoEOF, got %v", err)
	}
}

func TestPlainGzipRejected(t *testing.T) {
	data := corpus(t, 1000)
	gz, err := gzipx.Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(gz); err == nil {
		t.Fatal("plain gzip accepted as BGZF")
	}
}

func TestDecompressParallel(t *testing.T) {
	data := corpus(t, 20000)
	bz, _ := Compress(data, 6)
	for _, threads := range []int{1, 2, 4, 8} {
		out, err := DecompressParallel(bz, threads)
		if err != nil {
			t.Fatalf("threads %d: %v", threads, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("threads %d: mismatch", threads)
		}
	}
}

func TestReadAt(t *testing.T) {
	data := corpus(t, 20000)
	bz, _ := Compress(data, 6)
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 3000)
	for trial := 0; trial < 30; trial++ {
		off := rng.Int63n(int64(len(data)) - int64(len(buf)))
		n, err := ReadAt(bz, buf, off)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(buf) || !bytes.Equal(buf, data[off:off+int64(n)]) {
			t.Fatalf("trial %d off %d: mismatch (n=%d)", trial, off, n)
		}
	}
	// Out-of-range offsets.
	if _, err := ReadAt(bz, buf, int64(len(data))); err == nil {
		t.Fatal("past-end accepted")
	}
	if _, err := ReadAt(bz, buf, -1); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := corpus(t, 3000)
	bz, _ := Compress(data, 6)
	blocks, err := Scan(bz)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle block's payload.
	mid := blocks[len(blocks)/2]
	bz[mid.Off+mid.Size/2] ^= 0xff
	if _, err := Decompress(bz); err == nil {
		t.Fatal("corruption not detected")
	}
}

// TestCompressionRatioTradeoff documents the paper's Section II point:
// blocked files compress worse than plain gzip because every block
// restarts the window.
func TestCompressionRatioTradeoff(t *testing.T) {
	data := corpus(t, 20000)
	bz, _ := Compress(data, 6)
	gz, _ := gzipx.Compress(data, 6)
	if len(bz) <= len(gz) {
		t.Fatalf("BGZF (%d) unexpectedly at least as small as plain gzip (%d)", len(bz), len(gz))
	}
	// But not catastrophically worse (sanity bound).
	if float64(len(bz)) > 1.5*float64(len(gz)) {
		t.Fatalf("BGZF overhead implausibly high: %d vs %d", len(bz), len(gz))
	}
}
