// Package bgzf implements the blocked-gzip baseline of the paper's
// Section II (reference [12], SAMtools/HTSlib): the BGZF format used
// by bgzip/tabix. A BGZF file is a sequence of small *independent*
// gzip members, each carrying its compressed size in a BC extra
// subfield, terminated by a fixed EOF member. Independence makes
// random access and parallel decompression trivial — at the cost of a
// worse compression ratio (every 64 KiB block restarts the LZ window
// and Huffman tables) and of requiring files to be *created* this way;
// the paper notes most SRA uploads are not.
//
// The experiments use this package to quantify both sides of that
// trade-off against pugz, which needs no special file preparation.
package bgzf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/deflate"
	"repro/internal/flate"
)

// MaxBlockInput is the maximum uncompressed payload per BGZF block
// (the format caps BSIZE at 64 KiB; 0xff00 leaves header room, as in
// htslib).
const MaxBlockInput = 0xff00

// eofMarker is the standardised 28-byte empty final block.
var eofMarker = []byte{
	0x1f, 0x8b, 0x08, 0x04, 0, 0, 0, 0, 0, 0xff,
	0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1b, 0x00,
	0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
}

// Errors.
var (
	ErrNotBGZF   = errors.New("bgzf: missing BC extra subfield (not a BGZF file)")
	ErrTruncated = errors.New("bgzf: truncated block")
	ErrNoEOF     = errors.New("bgzf: missing EOF marker")
	ErrBadCRC    = errors.New("bgzf: CRC-32 mismatch")
)

// Compress writes data as a BGZF file at the given DEFLATE level.
func Compress(data []byte, level int) ([]byte, error) {
	var out []byte
	for start := 0; start < len(data) || start == 0; start += MaxBlockInput {
		end := start + MaxBlockInput
		if end > len(data) {
			end = len(data)
		}
		block, err := compressBlock(data[start:end], level)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
		if end == len(data) {
			break
		}
	}
	out = append(out, eofMarker...)
	return out, nil
}

// compressBlock emits one BGZF member for chunk.
func compressBlock(chunk []byte, level int) ([]byte, error) {
	payload, err := deflate.Compress(chunk, level)
	if err != nil {
		return nil, err
	}
	// Header: 12 fixed bytes + 6-byte BC subfield; BSIZE = total block
	// size - 1.
	total := 12 + 6 + len(payload) + 8
	if total > 0x10000 {
		return nil, fmt.Errorf("bgzf: block of %d input bytes compressed to %d (incompressible data should use level 0)", len(chunk), total)
	}
	out := make([]byte, 0, total)
	out = append(out, 0x1f, 0x8b, 0x08, 0x04, // magic, CM, FLG=FEXTRA
		0, 0, 0, 0, // MTIME
		0, 0xff) // XFL, OS
	out = binary.LittleEndian.AppendUint16(out, 6) // XLEN
	out = append(out, 'B', 'C')
	out = binary.LittleEndian.AppendUint16(out, 2) // subfield length
	out = binary.LittleEndian.AppendUint16(out, uint16(total-1))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(chunk))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(chunk)))
	return out, nil
}

// Block describes one member's location.
type Block struct {
	// Off is the byte offset of the member in the file; Size its total
	// compressed size.
	Off, Size int64
	// OutOff is the decompressed offset of the block's first byte.
	OutOff int64
	// OutSize is the decompressed size (from ISIZE).
	OutSize int64
}

// Scan walks the chain of BC size fields — no decompression — and
// returns every block (excluding the EOF marker). This O(blocks)
// header walk is exactly why blocked files solve random access: the
// index is implicit.
func Scan(data []byte) ([]Block, error) {
	var blocks []Block
	var off, outOff int64
	sawEOF := false
	for off < int64(len(data)) {
		bsize, err := blockSize(data[off:])
		if err != nil {
			return nil, fmt.Errorf("bgzf: at offset %d: %w", off, err)
		}
		if off+bsize > int64(len(data)) {
			return nil, ErrTruncated
		}
		isize := int64(binary.LittleEndian.Uint32(data[off+bsize-4:]))
		if isize == 0 && bsize == int64(len(eofMarker)) {
			sawEOF = true
			off += bsize
			continue
		}
		blocks = append(blocks, Block{Off: off, Size: bsize, OutOff: outOff, OutSize: isize})
		outOff += isize
		off += bsize
	}
	if !sawEOF {
		return nil, ErrNoEOF
	}
	return blocks, nil
}

// blockSize reads BSIZE from the BC subfield of the member at data.
func blockSize(data []byte) (int64, error) {
	if len(data) < 18 {
		return 0, ErrTruncated
	}
	if data[0] != 0x1f || data[1] != 0x8b || data[2] != 8 {
		return 0, errors.New("bgzf: bad member magic")
	}
	if data[3]&0x04 == 0 {
		return 0, ErrNotBGZF
	}
	xlen := int(binary.LittleEndian.Uint16(data[10:]))
	if len(data) < 12+xlen {
		return 0, ErrTruncated
	}
	extra := data[12 : 12+xlen]
	for len(extra) >= 4 {
		si1, si2 := extra[0], extra[1]
		slen := int(binary.LittleEndian.Uint16(extra[2:]))
		if len(extra) < 4+slen {
			return 0, ErrTruncated
		}
		if si1 == 'B' && si2 == 'C' && slen == 2 {
			return int64(binary.LittleEndian.Uint16(extra[4:])) + 1, nil
		}
		extra = extra[4+slen:]
	}
	return 0, ErrNotBGZF
}

// decompressBlock inflates one member into dst (which must have the
// block's OutSize capacity).
func decompressBlock(data []byte, b Block, dst []byte) error {
	hdrEnd := b.Off + 18 // fixed header + 6-byte BC subfield
	payload := data[hdrEnd : b.Off+b.Size-8]
	out, err := flate.DecompressAll(payload, 0)
	if err != nil {
		return err
	}
	if int64(len(out)) != b.OutSize {
		return fmt.Errorf("bgzf: block at %d inflated to %d, ISIZE %d", b.Off, len(out), b.OutSize)
	}
	wantCRC := binary.LittleEndian.Uint32(data[b.Off+b.Size-8:])
	if crc32.ChecksumIEEE(out) != wantCRC {
		return ErrBadCRC
	}
	copy(dst, out)
	return nil
}

// Decompress inflates a whole BGZF file sequentially.
func Decompress(data []byte) ([]byte, error) {
	return DecompressParallel(data, 1)
}

// DecompressParallel inflates all blocks with the given number of
// goroutines. Unlike pugz, no block synchronisation or context
// propagation is needed — that is the format's whole point.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	blocks, err := Scan(data)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, b := range blocks {
		total += b.OutSize
	}
	out := make([]byte, total)
	if threads < 1 {
		threads = 1
	}
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := t; i < len(blocks); i += threads {
				b := blocks[i]
				if err := decompressBlock(data, b, out[b.OutOff:b.OutOff+b.OutSize]); err != nil {
					errs[t] = err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// ReadAt fills p from decompressed offset off: binary-search the block
// chain, inflate only the touched blocks.
func ReadAt(data []byte, p []byte, off int64) (int, error) {
	blocks, err := Scan(data)
	if err != nil {
		return 0, err
	}
	return readAtBlocks(data, blocks, p, off)
}

// readAtBlocks serves a positional read given a pre-scanned chain.
func readAtBlocks(data []byte, blocks []Block, p []byte, off int64) (int, error) {
	if len(blocks) == 0 {
		return 0, errors.New("bgzf: empty file")
	}
	total := blocks[len(blocks)-1].OutOff + blocks[len(blocks)-1].OutSize
	if off < 0 || off >= total {
		return 0, fmt.Errorf("bgzf: offset %d out of range [0,%d)", off, total)
	}
	// Binary search for the block containing off.
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].OutOff+blocks[mid].OutSize <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n := 0
	buf := make([]byte, MaxBlockInput)
	for n < len(p) && lo < len(blocks) {
		b := blocks[lo]
		if err := decompressBlock(data, b, buf[:b.OutSize]); err != nil {
			return n, err
		}
		start := off + int64(n) - b.OutOff
		n += copy(p[n:], buf[start:b.OutSize])
		lo++
	}
	return n, nil
}
