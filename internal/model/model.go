// Package model implements the analytical models of Section V: the
// match-probability model for random DNA (V-A), the literal-emission
// model under non-greedy parsing (V-C), and the arithmetic-progression
// model for context resolution across blocks (the "model" line in
// Figure 2).
package model

import "math"

// DefaultWindow is W, the DEFLATE context size used throughout the
// paper's models.
const DefaultWindow = 32768

// PMatch returns p_k: the probability that a match of length k occurs
// at a given position of a W-sized block of uniform random DNA,
// against an independent W-sized predecessor block, via the Poisson
// approximation of Section V-A:
//
//	p_k = 1 - (1 - 4^-k)^(W-k+1) ≈ 1 - exp(-4^-k (W-k+1))
func PMatch(k int, w int) float64 {
	if k <= 0 || k > w {
		return 0
	}
	lambda := math.Pow(4, -float64(k)) * float64(w-k+1)
	return 1 - math.Exp(-lambda)
}

// PAllPositionsMatch returns p_k^(W-k+1): the probability every
// position of the second block has a length-k match. For k=3 and
// W=2^15 this is 1 to within 10^-220 — the Section V-A argument that
// greedy parsing can encode random DNA with zero literals.
func PAllPositionsMatch(k int, w int) float64 {
	return math.Pow(PMatch(k, w), float64(w-k+1))
}

// PLiteral returns p_l: the probability that non-greedy parsing emits
// a literal at a given position (Section V-C):
//
//	p_l = Σ_{k≥3} p_k (1 - p_{k+1}) p_{k+1}
//
// where p_k(1-p_{k+1}) is the probability the current position's
// maximal match has length exactly k, and the trailing p_{k+1} is the
// probability the *next* position has a strictly longer match
// (triggering the literal of Algorithm 3). The sum converges after a
// few dozen terms; we cut off when terms vanish.
func PLiteral(w int) float64 {
	sum := 0.0
	for k := 3; k <= 64; k++ {
		pk := PMatch(k, w)
		pk1 := PMatch(k+1, w)
		term := pk * (1 - pk1) * pk1
		sum += term
		if pk < 1e-12 {
			break
		}
	}
	return sum
}

// ExpectedLiterals returns E_l, the expected number of literals per
// W-block of random DNA under non-greedy parsing, given the average
// match length l_a (experimentally ~7.6 for W=2^15):
//
//	E_l = p_l * W / (l_a + 2)
//
// Intuition (paper): only about one in l_a+1 positions starts a new
// parse decision, and each non-greedy literal displaces one more.
func ExpectedLiterals(w int, la float64) float64 {
	return PLiteral(w) * float64(w) / (la + 2)
}

// L1 returns the first-block literal fraction L_1 = E_l / W.
func L1(w int, la float64) float64 {
	return ExpectedLiterals(w, la) / float64(w)
}

// LBlock returns L_i, the fraction of block i (1-based) consisting of
// literals or copies of literals, under the arithmetic progression of
// Section V-C:
//
//	L_{i+1} = (E_l + (W - E_l) L_i)/W  =>  L_i = 1 - (1 - L_1)^i
func LBlock(i int, l1 float64) float64 {
	if i <= 0 {
		return 0
	}
	return 1 - math.Pow(1-l1, float64(i))
}

// UndeterminedFrac returns 1 - L_i: the expected fraction of
// undetermined characters remaining in window i after a random-access
// decompression of random DNA — the "model" curve of Figure 2 (top).
func UndeterminedFrac(i int, l1 float64) float64 {
	return 1 - LBlock(i, l1)
}

// ModelCurve evaluates UndeterminedFrac for windows 1..n.
func ModelCurve(n int, l1 float64) []float64 {
	out := make([]float64, n)
	for i := 1; i <= n; i++ {
		out[i-1] = UndeterminedFrac(i, l1)
	}
	return out
}
