package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPMatchKnownValues(t *testing.T) {
	// For k=3, W=2^15: p_k should be astronomically close to 1
	// (the paper: >= 1 - 10^-225).
	if p := PMatch(3, DefaultWindow); p != 1.0 {
		t.Fatalf("p_3 = %v (float should round to exactly 1)", p)
	}
	// Large k: essentially zero.
	if p := PMatch(30, DefaultWindow); p > 1e-9 {
		t.Fatalf("p_30 = %v", p)
	}
	// Out-of-range arguments.
	if PMatch(0, DefaultWindow) != 0 || PMatch(-1, DefaultWindow) != 0 {
		t.Fatal("k<=0 must give 0")
	}
	if PMatch(DefaultWindow+1, DefaultWindow) != 0 {
		t.Fatal("k>W must give 0")
	}
}

func TestPMatchMonotonicInK(t *testing.T) {
	prev := 1.1
	for k := 1; k <= 30; k++ {
		p := PMatch(k, DefaultWindow)
		if p > prev {
			t.Fatalf("p_k not non-increasing at k=%d: %v > %v", k, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p_%d = %v out of [0,1]", k, p)
		}
		prev = p
	}
}

func TestPMatchGrowsWithWindow(t *testing.T) {
	if PMatch(8, 1<<15) <= PMatch(8, 1<<12) {
		t.Fatal("larger window must raise match probability")
	}
}

func TestPLiteralValue(t *testing.T) {
	// The paper's chain: p_l ~ 0.37 for W=2^15 (so that
	// E_l = p_l*W/(7.6+2) ≈ 1283 => p_l ≈ 1283*9.6/32768 ≈ 0.376).
	pl := PLiteral(DefaultWindow)
	if pl < 0.30 || pl < 0 || pl > 0.45 {
		t.Fatalf("p_l = %v, want ≈0.37", pl)
	}
}

func TestExpectedLiteralsPaperValue(t *testing.T) {
	// Paper: W=2^15, l_a=7.6 => E_l ≈ 1283 and L_1 ≈ 4%.
	el := ExpectedLiterals(DefaultWindow, 7.6)
	if el < 1100 || el > 1400 {
		t.Fatalf("E_l = %v, paper says ≈1283", el)
	}
	l1 := L1(DefaultWindow, 7.6)
	if l1 < 0.034 || l1 > 0.043 {
		t.Fatalf("L_1 = %v, paper says ≈4%%", l1)
	}
}

func TestLBlockProgression(t *testing.T) {
	// L_i must satisfy the recurrence L_{i+1} = L_1 + (1-L_1) L_i and
	// the closed form 1-(1-L_1)^i.
	l1 := 0.04
	for i := 1; i < 100; i++ {
		li := LBlock(i, l1)
		next := LBlock(i+1, l1)
		rec := l1 + (1-l1)*li
		if math.Abs(next-rec) > 1e-12 {
			t.Fatalf("recurrence violated at i=%d: %v vs %v", i, next, rec)
		}
	}
	if LBlock(0, l1) != 0 || LBlock(-3, l1) != 0 {
		t.Fatal("i<=0 must give 0")
	}
	if got := LBlock(1, l1); math.Abs(got-l1) > 1e-12 {
		t.Fatalf("L_1 = %v, want %v", got, l1)
	}
}

func TestUndeterminedFracDecaysExponentially(t *testing.T) {
	l1 := L1(DefaultWindow, 7.6)
	// After ~150 windows at L1≈4%, the undetermined fraction should be
	// essentially gone — matching Figure 2's "vanishes around 150
	// windows" observation.
	if f := UndeterminedFrac(150, l1); f > 0.01 {
		t.Fatalf("fraction at window 150 = %v, expected < 1%%", f)
	}
	if f := UndeterminedFrac(1, l1); f < 0.9 {
		t.Fatalf("fraction at window 1 = %v, expected ≈0.96", f)
	}
}

func TestModelCurve(t *testing.T) {
	c := ModelCurve(10, 0.1)
	if len(c) != 10 {
		t.Fatal("length")
	}
	for i := 1; i < len(c); i++ {
		if c[i] >= c[i-1] {
			t.Fatal("curve must be strictly decreasing")
		}
	}
	if math.Abs(c[0]-0.9) > 1e-12 {
		t.Fatalf("first point %v", c[0])
	}
}

func TestPAllPositionsMatch(t *testing.T) {
	// k=3: probability all positions match is ~1 (the Section V-A
	// claim that greedy needs no literals).
	if p := PAllPositionsMatch(3, DefaultWindow); p < 0.999999 {
		t.Fatalf("P(all match, k=3) = %v", p)
	}
	// Long k: essentially 0.
	if p := PAllPositionsMatch(12, DefaultWindow); p > 1e-6 {
		t.Fatalf("P(all match, k=12) = %v", p)
	}
}

func TestQuickProbabilityBounds(t *testing.T) {
	f := func(k uint8, l1Raw uint16, i uint8) bool {
		kk := int(k%40) + 1
		p := PMatch(kk, DefaultWindow)
		if p < 0 || p > 1 {
			return false
		}
		l1 := float64(l1Raw) / 65536 // [0,1)
		li := LBlock(int(i%200)+1, l1)
		return li >= 0 && li <= 1 && UndeterminedFrac(int(i%200)+1, l1) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
