// Package sentinelwrap enforces the error-contract conventions of the
// module: package sentinel errors (exported or not, spelled Err*) are
// part of a package's API through errors.Is, so
//
//   - comparing a module sentinel from another package with == or !=
//     breaks as soon as any layer wraps the error — use errors.Is;
//   - fmt.Errorf with an error argument and no %w verb severs the
//     chain that errors.Is and the HTTP error mapper in internal/serve
//     walk — wrap with %w.
//
// The rule is module-scoped: comparisons against stdlib contract
// errors (io.EOF, sql.ErrNoRows) follow those packages' documented
// semantics and stay untouched, as do same-package comparisons in the
// package that owns the sentinel (it controls wrapping on its own
// paths).
package sentinelwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the sentinelwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc: "require errors.Is for cross-package sentinel comparisons and " +
		"%w when fmt.Errorf carries an error",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, x)
			case *ast.CallExpr:
				checkErrorf(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkCompare flags err == pkg.ErrFoo / != where ErrFoo is a
// package-level error variable from another package of this module.
func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		s := sentinelOf(pass, side)
		if s == nil {
			continue
		}
		op := "=="
		if be.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(be.OpPos, "sentinel %s.%s compared with %s: use errors.Is so wrapped errors still match",
			s.Pkg().Name(), s.Name(), op)
		return
	}
}

// sentinelOf returns the sentinel-error object e names when the
// comparison is cross-package within the module, else nil.
func sentinelOf(pass *analysis.Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level error variable named like a sentinel.
	if v.Parent() != v.Pkg().Scope() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !analysis.IsErrorValue(v.Type()) {
		return nil
	}
	// Module-scoped, cross-package only.
	if !analysis.InModule(v.Pkg()) || v.Pkg() == pass.Pkg {
		return nil
	}
	return v
}

// checkErrorf flags fmt.Errorf calls that pass an error value but
// format it with something other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps := analysis.CountWrapVerbs(format)
	errArgs := 0
	var firstErr ast.Expr
	for _, a := range call.Args[1:] {
		if analysis.IsErrorValue(pass.TypesInfo.TypeOf(a)) {
			if firstErr == nil {
				firstErr = a
			}
			errArgs++
		}
	}
	if errArgs > wraps {
		pass.Reportf(firstErr.Pos(), "error formatted without %%w: the cause is severed from errors.Is/errors.As chains")
	}
}
