// Package sent is the sentinelwrap fixture: cross-package sentinel
// comparisons and fmt.Errorf wrapping, with the stdlib-contract and
// errors.Is negatives the rule must leave alone.
package sent

import (
	"errors"
	"fmt"
	"io"

	"sent/inner"
)

// --- true positives ---------------------------------------------------

func badCompare(err error) bool {
	return err == inner.ErrCorrupt // want `compared with ==: use errors.Is`
}

func badNotEqual(err error) bool {
	return err != inner.ErrSymbolRange // want `compared with !=: use errors.Is`
}

// Severs the chain: callers can no longer errors.Is the cause.
func badWrap(off int64) error {
	if err := inner.Decode(false); err != nil {
		return fmt.Errorf("decode at %d: %v", off, err) // want `error formatted without %w`
	}
	return nil
}

// --- realistic negatives ---------------------------------------------

func goodCompare(err error) bool {
	return errors.Is(err, inner.ErrCorrupt)
}

// io.EOF documents identity comparison; stdlib contracts are out of
// the module-scoped rule.
func stdlibContract(err error) bool {
	return err == io.EOF
}

func goodWrap(off int64) error {
	if err := inner.Decode(false); err != nil {
		return fmt.Errorf("decode at %d: %w", off, err)
	}
	return nil
}

// Nil checks are not sentinel comparisons.
func nilCheck(err error) bool {
	return err != nil
}

// Errorf without an error argument carries no chain to preserve.
func plainErrorf(n int) error {
	return fmt.Errorf("short read: %d bytes", n)
}

// Regression (sweep of internal/flate): sentinel plus cause, both
// wrapped — the double-%w idiom decoder.go uses after the sweep.
func doubleWrap(err error) error {
	return fmt.Errorf("%w: code-length tree: %w", inner.ErrCorrupt, err)
}
