// Package inner exports the sentinels the outer fixture package
// compares against — the internal/flate / internal/tracked roles.
package inner

import "errors"

// ErrSymbolRange mirrors tracked.ErrSymbolRange: a cross-package
// contract error that layers above wrap with context.
var ErrSymbolRange = errors.New("symbol index out of range")

// ErrCorrupt mirrors flate.ErrCorrupt.
var ErrCorrupt = errors.New("corrupt deflate stream")

// Decode fails with a wrapped sentinel, as the real decoders do.
func Decode(ok bool) error {
	if !ok {
		return ErrCorrupt
	}
	return nil
}
