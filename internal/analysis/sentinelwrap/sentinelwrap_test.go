package sentinelwrap_test

import (
	"testing"

	"repro/internal/analysis/checktest"
	"repro/internal/analysis/sentinelwrap"
)

func TestSentinelwrap(t *testing.T) {
	checktest.Run(t, sentinelwrap.Analyzer, "sent")
}
