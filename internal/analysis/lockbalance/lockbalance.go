// Package lockbalance checks that every mutex acquired in a function
// is released in that same function: a <path>.Lock() (or RLock) with
// no matching <path>.Unlock() (or RUnlock) anywhere in the scope —
// inline, deferred, or inside a deferred closure — is almost always a
// leaked lock on an early-return path.
//
// Matching is by the lexical path of the mutex expression ("c.mu",
// "f.cursors.mu"), so two locks on different receivers never satisfy
// each other. The check is existence-based, not path-sensitive: it
// will not catch an early return between Lock and a non-deferred
// Unlock, but it never flags correct code, which is what a zero-
// suppression gate needs. Functions that intentionally return with
// the lock held follow the repo's *Locked naming convention and are
// exempt.
package lockbalance

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockbalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "check that each mutex Lock/RLock has a matching Unlock/RUnlock " +
		"in the same function scope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.ForEachFunc(pass, func(fs analysis.FuncScope) {
		if strings.HasSuffix(strings.TrimSuffix(fs.Name, "/func"), "Locked") {
			return
		}
		checkScope(pass, fs)
	})
	return nil
}

type lockUse struct {
	pos  token.Pos
	path string
	name string // Lock, RLock, Unlock, RUnlock
}

func checkScope(pass *analysis.Pass, fs analysis.FuncScope) {
	var uses []lockUse
	record := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		path, ok := analysis.PathString(sel.X)
		if !ok {
			return true
		}
		uses = append(uses, lockUse{pos: call.Pos(), path: path, name: sel.Sel.Name})
		return true
	}
	// An Unlock inside a deferred closure releases on behalf of this
	// frame, so deferred literals count toward balance here — unlike
	// plain nested literals, which are their own scope.
	analysis.WalkShallow(fs.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, record)
				return false
			}
		}
		return record(n)
	})
	for _, u := range uses {
		var want string
		switch u.name {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		if !hasRelease(uses, u.path, want) {
			pass.Reportf(u.pos, "%s.%s() has no matching %s in this function: an early return leaves the mutex held (or rename the function *Locked if the caller releases it)",
				u.path, u.name, want)
		}
	}
}

func hasRelease(uses []lockUse, path, want string) bool {
	for _, u := range uses {
		if u.path == path && u.name == want {
			return true
		}
	}
	return false
}
