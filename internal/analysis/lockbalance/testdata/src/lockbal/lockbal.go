// Package lockbal is the lockbalance fixture, shaped after the serve
// cache and the cursor pool: deferred unlocks, inline unlock pairs,
// deferred-closure unlocks, RWMutex read paths, and the *Locked
// naming convention for functions that run under the caller's lock.
package lockbal

import "sync"

type cache struct {
	mu sync.Mutex
	n  int
}

type index struct {
	mu sync.RWMutex
	v  int
}

// --- true positives ---------------------------------------------------

func (c *cache) leak() int {
	c.mu.Lock() // want `no matching Unlock`
	return c.n
}

func (ix *index) readLeak() int {
	ix.mu.RLock() // want `no matching RUnlock`
	return ix.v
}

// Mismatched flavors do not balance: RLock needs RUnlock.
func (ix *index) flavorMismatch() int {
	ix.mu.RLock() // want `no matching RUnlock`
	defer ix.mu.Unlock()
	return ix.v
}

// --- realistic negatives ---------------------------------------------

func (c *cache) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *cache) inline() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Unlock inside a deferred closure releases for this frame (the
// serve handler pattern).
func (c *cache) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

func (ix *index) read() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.v
}

// Two different mutexes each balance independently.
func transfer(a, b *cache) {
	a.mu.Lock()
	b.mu.Lock()
	a.n, b.n = b.n, a.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// evictLocked runs under the caller's lock: exempt by convention.
func (c *cache) evictLocked() {
	c.n = 0
}

// claimLocked intentionally returns holding the lock; the *Locked
// suffix exempts it (the unexported cursor-claim pattern).
func (c *cache) claimLocked() *cache {
	c.mu.Lock()
	return c
}
