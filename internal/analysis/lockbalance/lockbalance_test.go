package lockbalance_test

import (
	"testing"

	"repro/internal/analysis/checktest"
	"repro/internal/analysis/lockbalance"
)

func TestLockbalance(t *testing.T) {
	checktest.Run(t, lockbalance.Analyzer, "lockbal")
}
