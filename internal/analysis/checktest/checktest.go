// Package checktest runs analyzers over testdata fixtures, in the
// shape of golang.org/x/tools/go/analysis/analysistest but built on
// the stdlib source importer so the module needs no dependency.
//
// Fixtures live under testdata/src/<importpath>/ in the analyzer's
// package directory. Expected findings are `// want "regexp"` line
// comments: each must be matched by a diagnostic on that line, and
// every diagnostic must be claimed by a want — unexpected findings
// fail the test, which keeps the analyzers honest about false
// positives on the negative fixtures.
//
// Fixture packages may import sibling fixture packages by path
// (testdata/src/sent/inner); anything else resolves through the
// source importer (stdlib). The module path for module-scoped rules
// (sentinelwrap) is the first segment of the fixture import path.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run checks analyzer a against each fixture package in pkgPaths.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			runOne(t, a, path)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		base:     filepath.Join("testdata", "src"),
		pkgs:     make(map[string]*pkgResult),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	analysis.SetModule(strings.SplitN(pkgPath, "/", 2)[0])
	defer analysis.SetModule("")

	res, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     res.files,
		Pkg:       res.pkg,
		TypesInfo: res.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, res.files)
	matchDiagnostics(t, fset, wants, diags)
}

// --- fixture loading --------------------------------------------------

type pkgResult struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset     *token.FileSet
	base     string
	pkgs     map[string]*pkgResult
	fallback types.Importer
	loading  []string
}

// Import implements types.Importer: fixture-local packages first,
// stdlib through the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if res, ok := l.pkgs[path]; ok {
		return res.pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.base, path)); err == nil && fi.IsDir() {
		for _, p := range l.loading {
			if p == path {
				return nil, fmt.Errorf("fixture import cycle through %s", path)
			}
		}
		res, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return res.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*pkgResult, error) {
	dir := filepath.Join(l.base, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	l.loading = append(l.loading, path)
	pkg, err := conf.Check(path, l.fset, files, info)
	l.loading = l.loading[:len(l.loading)-1]
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	res := &pkgResult{pkg: pkg, files: files, info: info}
	l.pkgs[path] = res
	return res, nil
}

// --- want matching ----------------------------------------------------

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the sequence of Go-quoted strings after `want`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want expects quoted patterns, got %q", pos, s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: unparsable want pattern in %q: %v", pos, s, err)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s: unquoting %q: %v", pos, prefix, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}

func matchDiagnostics(t *testing.T, fset *token.FileSet, wants []*want, diags []analysis.Diagnostic) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
