// Package unit implements the cmd/go vet-tool protocol (the role of
// golang.org/x/tools/go/analysis/unitchecker) on the standard library
// alone, so cmd/pugzvet can run as
//
//	go vet -vettool=$(pwd)/.tmp/pugzvet ./...
//
// The protocol, reverse-engineered from cmd/go and the x/tools
// unitchecker:
//
//  1. `tool -V=full` prints a version line cmd/go hashes into its
//     build cache key ("name version devel ... buildID=<hex>").
//  2. `tool -flags` prints a JSON description of supported flags
//     (none here).
//  3. For each package, cmd/go writes a JSON "vet config" describing
//     the unit — file list, import map, export-data files for every
//     dependency — and invokes `tool <cfg>.cfg`. The tool typechecks
//     from export data (no go/packages, no network), runs its
//     analyzers, prints findings to stderr as "file:line:col: msg",
//     writes the (possibly empty) facts file named by VetxOutput, and
//     exits 2 when it found anything.
//
// Analyzers in this suite exchange no facts, so dependency runs
// (VetxOnly) just write an empty facts file and return.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the JSON vet configuration cmd/go writes; field names
// must match (they are part of the cmd/go <-> vettool contract).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary running analyzers.
// It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	for i, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || (a == "-V" && i+1 < len(args) && args[i+1] == "full"):
			printVersion(progname)
			os.Exit(0)
		case a == "-V" || a == "--V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: an empty JSON flag list.
			fmt.Println("[]")
			os.Exit(0)
		case a == "-help" || a == "--help" || a == "-h":
			usage(progname, analyzers)
			os.Exit(0)
		}
	}

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage(progname, analyzers)
		os.Exit(1)
	}
	os.Exit(run(args[0], analyzers))
}

// printVersion emits the version line cmd/go fingerprints for its
// build cache: "name version devel ... buildID=<content hash>".
func printVersion(progname string) {
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		// Still print a parseable line; the hash of nothing is stable.
		data = nil
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h[:]))
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: static-analysis suite for this repository.\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...\n\nanalyzers:\n", progname)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

func run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reading vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exchanges no facts across packages, so a facts-only
	// invocation (a dependency of the packages under analysis) has
	// nothing to compute.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files, info, pkg, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if werr := writeVetx(cfg); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				return 1
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck: %v\n", cfg.ImportPath, err)
		return 1
	}

	analysis.SetModule(cfg.ModulePath)
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "%s: analyzer %s: %v\n", cfg.ImportPath, a.Name, err)
			return 1
		}
	}

	if err := writeVetx(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// writeVetx writes the (empty) facts file cmd/go caches for this unit.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		return fmt.Errorf("writing facts output: %w", err)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func typecheck(fset *token.FileSet, cfg *Config) ([]*ast.File, *types.Info, *types.Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	// Dependencies typecheck from compiler export data: cmd/go tells us
	// the file for each resolved package path in PackageFile, and the
	// source-level import path to resolved path mapping in ImportMap.
	compilerImporter := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: langVersion(cfg.GoVersion),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, info, pkg, nil
}

func compilerOf(cfg *Config) string {
	if cfg.Compiler == "" {
		return "gc"
	}
	return cfg.Compiler
}

var langRe = regexp.MustCompile(`^go\d+\.\d+`)

// langVersion trims a toolchain version ("go1.22.5") to the language
// version go/types accepts ("go1.22").
func langVersion(v string) string {
	if m := langRe.FindString(v); m != "" {
		return m
	}
	return ""
}
