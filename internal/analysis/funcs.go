package analysis

import "go/ast"

// FuncScope is one function-shaped body: a declaration or a literal.
// Literals are their own scope because their body may run on another
// goroutine or after the enclosing frame returned (go, defer), so
// lexical facts about the enclosing function (a held lock, an
// unconsumed bit budget) do not extend into them.
type FuncScope struct {
	// Name is the declared name, with "/func" appended per level of
	// literal nesting (diagnostic labels only).
	Name string
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Body is the function body (never nil).
	Body *ast.BlockStmt
	// Decl is the enclosing top-level declaration (for receiver
	// lookups); equal to Node for declarations.
	Decl *ast.FuncDecl
}

// ForEachFunc invokes fn for every function declaration and every
// function literal in the pass's files, each as its own scope.
func ForEachFunc(pass *Pass, fn func(FuncScope)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(FuncScope{Name: fd.Name.Name, Node: fd, Body: fd.Body, Decl: fd})
			collectLits(fd, fd.Name.Name, fd.Body, fn)
		}
	}
}

func collectLits(decl *ast.FuncDecl, name string, root ast.Node, fn func(FuncScope)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(FuncScope{Name: name + "/func", Node: lit, Body: lit.Body, Decl: decl})
			collectLits(decl, name+"/func", lit.Body, fn)
			return false
		}
		return true
	})
}

// WalkShallow inspects node but does not descend into function
// literals: the caller analyzes those as separate scopes.
func WalkShallow(node ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != node {
			return false
		}
		return visit(n)
	})
}
