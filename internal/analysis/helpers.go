package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the object a call expression invokes: a function, a
// method, or nil for dynamic calls (function-typed variables, builtins
// resolve to nil too — use BuiltinName for those).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := info.Uses[fn]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj() // method value or expression
		}
		// Qualified identifier (pkg.Func).
		if o := info.Uses[fn.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// BuiltinName returns the name of the builtin a call invokes ("len",
// "copy", ...) or "" when the callee is not a builtin.
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// RootIdent unwraps selectors, indexing, slicing, dereferences,
// parens, and type assertions down to the base identifier of an
// expression, or nil when the base is not a plain identifier (a call
// result, a literal, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// PathString renders a pure identifier/selector chain as a dotted
// path ("f.cursors.mu"). The second result is false when the
// expression contains anything else (calls, indexing, literals).
func PathString(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := PathString(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// Terminates reports whether stmt never lets control flow past it:
// returns, branches, panics, and blocks/ifs that end in one of those.
// It is deliberately syntactic (no reachability solving); analyzers
// use it to skip subtrees whose effects cannot reach a statement
// after them.
func Terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true // break, continue, goto, fallthrough all leave
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(x.List); n > 0 {
			return Terminates(x.List[n-1])
		}
	case *ast.IfStmt:
		if x.Else == nil {
			return false
		}
		return Terminates(x.Body) && Terminates(x.Else)
	case *ast.LabeledStmt:
		return Terminates(x.Stmt)
	}
	return false
}

// syncPrimitive reports whether t itself is a sync or sync/atomic
// type that must not be copied (Mutex, WaitGroup, atomic.Int64,
// atomic.Pointer[T], ...).
func syncPrimitive(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
			return true
		}
	case "sync/atomic":
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
			return true
		}
	}
	return false
}

// HoldsSyncPrimitive reports whether a value of type t embeds (by
// value, transitively, through structs and arrays) a sync primitive
// or an atomic — i.e. whether copying t silently forks a lock or a
// published cell. Pointers, slices, maps, channels, and interfaces
// break the chain: sharing through them is the correct discipline.
func HoldsSyncPrimitive(t types.Type) bool {
	return holdsSync(t, make(map[types.Type]bool))
}

func holdsSync(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if syncPrimitive(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsSync(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsSync(u.Elem(), seen)
	}
	return false
}

// IsAtomicType reports whether t is a sync/atomic cell type, and if
// so returns its name ("Pointer", "Int64", ...).
func IsAtomicType(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// IsErrorValue reports whether t is assignable to the error interface
// (and is not the untyped nil).
func IsErrorValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.AssignableTo(t, errorType)
}

// CountWrapVerbs counts %w conversion verbs in a fmt format string,
// skipping flags, width, precision, and argument indexes, and
// ignoring %%.
func CountWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision, index ([n]).
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}
