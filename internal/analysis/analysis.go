// Package analysis is a self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built only on the
// standard library (go/ast, go/types, go/importer) so the repository
// needs no external dependency to machine-check its own invariants.
//
// The repo encodes several correctness contracts the compiler cannot
// see: pooled-buffer hygiene (GetWindow/PutWindow, Result.Release,
// tail-pool vs full-pool separation), the immutable/atomic snapshot
// discipline of pugz.File (atomic.Pointer publish, copy-on-write under
// cpMu), and the fast-decode bail contract (decodeFastBytes must
// return on invalid input without consuming bits). The analyzers in
// the subpackages turn those comments into build gates; cmd/pugzvet
// packages them as a `go vet -vettool` binary (see internal/
// analysis/unit for the driver protocol).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by -help and README.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// modulePath scopes cross-package rules (sentinelwrap) to packages of
// the module under analysis: stdlib sentinels like io.EOF keep their
// contract-bare comparisons, module sentinels must go through
// errors.Is. Drivers set it from the vet config's ModulePath (or the
// fixture namespace in tests).
var modulePath string

// SetModule declares the module path the current driver is analyzing.
func SetModule(path string) { modulePath = path }

// InModule reports whether pkg belongs to the module under analysis.
func InModule(pkg *types.Package) bool {
	if pkg == nil || modulePath == "" {
		return false
	}
	p := pkg.Path()
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}
