// Package bitbail is the bitbail fixture: a miniature of the
// decodeFastBytes kernel in internal/flate. The good kernel follows
// the contract — bail returns happen before any Consume for the
// failing token, the split-literal budget path consumes and continues
// (its token was emitted), EOB consumes its own code. The bad kernel
// consumes speculatively before validating.
package bitbail

type reader struct{ bits int }

func (r *reader) Refill()       {}
func (r *reader) Bits() int     { return r.bits }
func (r *reader) Consume(n int) { r.bits -= n }
func (r *reader) Acc() uint64   { return 0 }

type status uint8

const (
	statusMore status = iota
	statusEOB
	fastBail
)

// decodeFastGood mirrors the real kernel's shape: every fastBail
// return precedes the token's Consume.
func decodeFastGood(r *reader, out []byte, w, maxW int) (int, status) {
	for {
		r.Refill()
		if r.Bits() < 48 {
			return w, statusMore
		}
		if w >= maxW {
			return w, statusMore
		}
		x := r.Acc()
		switch x & 3 {
		case 0: // two-literal pack with a budget split
			if w+2 > maxW {
				out[w] = byte(x)
				w++
				r.Consume(8) // token emitted; continue is not a bail
				continue
			}
			out[w] = byte(x)
			out[w+1] = byte(x >> 8)
			w += 2
			r.Consume(16)
		case 1: // match with validation before consume
			if x&4 != 0 {
				return w, fastBail // nothing consumed for this token
			}
			r.Consume(24)
		case 2: // end of block consumes its own code
			r.Consume(8)
			return w, statusEOB
		default:
			return w, fastBail // invalid code: reader still at token start
		}
	}
}

// decodeFastBad consumes before validating the back-reference: the
// scalar loop would re-decode from the wrong bit position.
func decodeFastBad(r *reader, w int) (int, status) {
	for {
		r.Refill()
		if r.Bits() < 48 {
			return w, statusMore
		}
		used := 8
		r.Consume(used)
		if r.Acc()&1 != 0 {
			return w, fastBail // want `bail return after bits were consumed`
		}
		w++
	}
}

// decodeFastBadCond hides the Consume in the branch condition chain.
func decodeFastBadCond(r *reader, w int) (int, status) {
	for {
		r.Refill()
		if r.Bits() < 48 {
			return w, statusMore
		}
		if r.Consume(8); r.Acc()&1 != 0 {
			return w, fastBail // want `bail return after bits were consumed`
		}
		w++
	}
}

// notAKernel is out of scope: only decodeFast* functions carry the
// bail contract (the scalar loop consumes per symbol by design).
func notAKernel(r *reader) status {
	r.Consume(8)
	if r.Acc()&1 != 0 {
		return fastBail
	}
	return statusMore
}
