// Package bitbail proves the fast-decode bail contract: in the
// multi-symbol kernels (decodeFast* in internal/flate and
// internal/tracked), a fastBail return must leave the bit reader
// positioned at the start of the offending token so the scalar loop
// re-decodes it canonically. That means no Consume call may execute
// for the current token before a bail return.
//
// The check walks backward from each bail return through the
// statements that must have executed before it, stopping at the
// enclosing loop boundary (statements from previous iterations
// consumed bits for previous, fully emitted tokens — that is legal).
// A preceding statement only counts if bits it consumes can reach the
// bail return: a branch that consumes and then continues the loop
// (the split-literal budget path) emitted its token and never flows
// into a bail.
package bitbail

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the bitbail pass.
var Analyzer = &analysis.Analyzer{
	Name: "bitbail",
	Doc: "check that fast-kernel bail returns precede any bit Consume " +
		"for the failing token, so the scalar loop can re-decode it",
	Run: run,
}

// run checks every function whose name marks it as a fast kernel.
func run(pass *analysis.Pass) error {
	analysis.ForEachFunc(pass, func(fs analysis.FuncScope) {
		if !strings.HasPrefix(fs.Name, "decodeFast") {
			return
		}
		checkKernel(pass, fs)
	})
	return nil
}

// isBailReturn reports whether ret's results mention a bail status
// (an identifier named fastBail, FastInvalid, or any *Bail constant).
func isBailReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			if id.Name == "FastInvalid" || strings.HasSuffix(id.Name, "Bail") || strings.HasSuffix(id.Name, "bail") {
				return true
			}
		}
	}
	return false
}

// isConsumeCall matches <reader>.Consume(...) calls.
func isConsumeCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Consume"
}

func containsConsume(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isConsumeCall(call) {
			found = true
		}
		return !found
	})
	return found
}

func checkKernel(pass *analysis.Pass, fs analysis.FuncScope) {
	// Walk with an explicit ancestor stack so each bail return can see
	// the statements guaranteed to have run before it.
	var stack []ast.Node
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if ret, ok := n.(*ast.ReturnStmt); ok && isBailReturn(ret) {
			checkBail(pass, fs, stack, ret)
		}
		return true
	})
}

// checkBail walks outward from the bail return. At each enclosing
// statement list it scans the preceding siblings for a reachable
// Consume; it stops when the list is a loop body, because everything
// before the loop iteration belongs to previous tokens.
func checkBail(pass *analysis.Pass, fs analysis.FuncScope, stack []ast.Node, ret *ast.ReturnStmt) {
	child := ast.Node(ret)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.BlockStmt:
			// A switch/select body block holds the other CaseClauses:
			// those are alternatives, not predecessors.
			isCaseList := false
			if i > 0 {
				switch stack[i-1].(type) {
				case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					isCaseList = true
				}
			}
			if !isCaseList && scanSiblings(pass, p.List, child, ret) {
				return
			}
			// The loop body block: previous iterations are fair game.
			if i > 0 {
				switch stack[i-1].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					return
				}
			}
		case *ast.CaseClause:
			if scanSiblings(pass, p.Body, child, ret) {
				return
			}
		case *ast.CommClause:
			if scanSiblings(pass, p.Body, child, ret) {
				return
			}
		case *ast.IfStmt:
			// Init statement and condition run before the branch body.
			if p.Init != nil && containsConsume(p.Init) {
				report(pass, ret)
				return
			}
			if p.Cond != nil && containsConsume(p.Cond) {
				report(pass, ret)
				return
			}
		case *ast.SwitchStmt:
			if p.Init != nil && containsConsume(p.Init) || p.Tag != nil && containsConsume(p.Tag) {
				report(pass, ret)
				return
			}
		}
		child = stack[i]
	}
}

// scanSiblings checks the statements before child in list; it returns
// true when a reachable Consume was found and reported.
func scanSiblings(pass *analysis.Pass, list []ast.Stmt, child ast.Node, ret *ast.ReturnStmt) bool {
	for _, s := range list {
		if s == child {
			return false
		}
		if consumeLeaks(s) {
			report(pass, ret)
			return true
		}
	}
	return false
}

func report(pass *analysis.Pass, ret *ast.ReturnStmt) {
	pass.Reportf(ret.Pos(), "bail return after bits were consumed for this token: the scalar loop would re-decode from the wrong bit position")
}

// consumeLeaks reports whether executing s can consume bits AND then
// exit s normally (so the consumed bits reach a statement after s). A
// branch that consumes and then terminates — like the split-literal
// path that Consumes and continues the loop — emitted its token and
// never flows into a bail return.
func consumeLeaks(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false // never exits normally
	case *ast.IfStmt:
		if x.Init != nil && containsConsume(x.Init) || containsConsume(x.Cond) {
			return true
		}
		if blockLeaks(x.Body.List) {
			return true
		}
		if x.Else != nil {
			return consumeLeaks(x.Else)
		}
		return false
	case *ast.BlockStmt:
		return blockLeaks(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil && containsConsume(x.Init) || x.Tag != nil && containsConsume(x.Tag) {
			return true
		}
		for _, cs := range x.Body.List {
			if clause, ok := cs.(*ast.CaseClause); ok && blockLeaks(clause.Body) {
				return true
			}
		}
		return false
	case *ast.ForStmt, *ast.RangeStmt, *ast.LabeledStmt, *ast.SelectStmt, *ast.TypeSwitchStmt:
		// A loop (or anything with complex control flow) that contains a
		// Consume may consume and still exit: conservative.
		return containsConsume(s)
	default:
		return containsConsume(s)
	}
}

// blockLeaks scans a statement list in order: a consuming statement
// marks a potential leak, a terminating statement before the end means
// the list never exits normally.
func blockLeaks(list []ast.Stmt) bool {
	leak := false
	for _, s := range list {
		if consumeLeaks(s) {
			leak = true
		}
		if analysis.Terminates(s) {
			return false
		}
	}
	return leak
}
