package bitbail_test

import (
	"testing"

	"repro/internal/analysis/bitbail"
	"repro/internal/analysis/checktest"
)

func TestBitbail(t *testing.T) {
	checktest.Run(t, bitbail.Analyzer, "bitbail")
}
