package atomicsnapshot_test

import (
	"testing"

	"repro/internal/analysis/atomicsnapshot"
	"repro/internal/analysis/checktest"
)

func TestAtomicsnapshot(t *testing.T) {
	checktest.Run(t, atomicsnapshot.Analyzer, "atomicsnap")
}
