// Package atomicsnap is the atomicsnapshot fixture, shaped after
// pugz.File: a position field under a plain mutex, a checkpoint slice
// published through atomic.Pointer with writes serialized by cpMu, and
// a freelist guarded by an embedded mutex (internal/tracked's
// resolveTabs).
package atomicsnap

import (
	"sync"
	"sync/atomic"
)

type file struct {
	mu   sync.Mutex
	cpMu sync.Mutex

	pos int64                 // guarded by mu
	cps atomic.Pointer[[]int] // Store guarded by cpMu (Load is lock-free)
}

// Construction before the value is shared needs no lock: composite
// literal keys are not access sites.
func newFile() *file {
	return &file{}
}

// --- true positives ---------------------------------------------------

func (f *file) badRead() int64 {
	return f.pos // want `read pos without holding mu`
}

func (f *file) badWrite(v int64) {
	f.pos = v // want `write to pos without holding mu`
}

func (f *file) badPublish(p *[]int) {
	f.cps.Store(p) // want `atomic publish of cps without holding cpMu`
}

// The regression shape from PR 6: append to a loaded snapshot can
// write the shared backing array in place when capacity allows.
func (f *file) badAppend(c int) {
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	cur := f.cps.Load()
	next := append(*cur, c) // want `append to atomic.Pointer snapshot`
	f.cps.Store(&next)
}

func (f *file) badInPlace(i, v int) {
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	p := f.cps.Load()
	(*p)[i] = v // want `write through atomic.Pointer snapshot`
	f.cps.Store(p)
}

// --- realistic negatives ---------------------------------------------

func (f *file) advance(n int64) {
	f.mu.Lock()
	f.pos += n
	f.mu.Unlock()
}

func (f *file) tell() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pos
}

// posLocked follows the *Locked convention: the caller holds mu.
func (f *file) posLocked() int64 {
	return f.pos
}

// Lock-free snapshot read: Load needs no lock by design.
func (f *file) snapshot() []int {
	p := f.cps.Load()
	if p == nil {
		return nil
	}
	return *p
}

// The copy-on-write publish path mirrors File.retainCheckpoint:
// clone under cpMu, mutate the clone, Store the clone.
func (f *file) retain(c int) {
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	cur := f.cps.Load()
	var next []int
	if cur != nil {
		next = make([]int, len(*cur), len(*cur)+1)
		copy(next, *cur)
	}
	next = append(next, c)
	f.cps.Store(&next)
}

// Embedded mutex: the promoted Lock counts for `guarded by Mutex`.
type tabs struct {
	sync.Mutex
	free []int // guarded by Mutex
}

func (t *tabs) get() int {
	t.Lock()
	defer t.Unlock()
	if n := len(t.free); n > 0 {
		v := t.free[n-1]
		t.free = t.free[:n-1]
		return v
	}
	return 0
}

func (t *tabs) put(v int) {
	t.Lock()
	t.free = append(t.free, v)
	t.Unlock()
}
