// Package atomicsnapshot enforces the snapshot-publication discipline
// of pugz.File and the serving layer: shared fields are annotated with
// a `// guarded by <mu>` comment, and every access must either hold
// that mutex (a lexical <mu>.Lock()/RLock() earlier in the same
// function) or live in a function whose name ends in "Locked" — the
// repo's convention for "caller holds the lock".
//
// For fields of sync/atomic cell types the rule is asymmetric, matching
// how File publishes snapshots: Load and CompareAndSwap are lock-free
// by design and never need the guard; Store and Swap are publication
// and must hold it (the writer mutex serializes the read-copy-update,
// the atomic makes the publish visible).
//
// The second rule is copy-on-write hygiene: a slice obtained from an
// atomic.Pointer Load is a shared immutable snapshot. Writing through
// it ((*p)[i] = ..., append(*p, ...), *p = ...) mutates data concurrent
// readers hold; the checkpoint path must clone into a fresh slice and
// Store that instead.
package atomicsnapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicsnapshot pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsnapshot",
	Doc: "enforce `// guarded by <mu>` field annotations and " +
		"copy-on-write for slices published through atomic.Pointer",
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// access classification.
type accessKind uint8

const (
	accRead accessKind = iota
	accWrite
	accAtomicLoad  // Load, CompareAndSwap: lock-free by design
	accAtomicStore // Store, Swap: publication, needs the guard
	accInit        // composite-literal key: pre-publication, exempt
)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) > 0 {
		analysis.ForEachFunc(pass, func(fs analysis.FuncScope) {
			checkGuards(pass, fs, guards)
		})
	}
	analysis.ForEachFunc(pass, func(fs analysis.FuncScope) {
		checkCOW(pass, fs)
	})
	return nil
}

// collectGuards maps annotated struct-field objects to their guard
// name. The annotation is the field's doc or trailing line comment:
//
//	entries map[string]*entry // guarded by mu
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardFromComments(field.Doc, field.Comment)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if o := pass.TypesInfo.Defs[name]; o != nil {
						guards[o] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardFromComments(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(g.Text()); m != nil {
			// Annotations name the mutex by its field name; a dotted
			// path keeps only the final component for suffix matching.
			guard := m[1]
			if i := strings.LastIndexByte(guard, '.'); i >= 0 {
				guard = guard[i+1:]
			}
			return guard
		}
	}
	return ""
}

// checkGuards verifies every annotated-field access in one function
// scope against the locks that scope demonstrably takes.
func checkGuards(pass *analysis.Pass, fs analysis.FuncScope, guards map[types.Object]string) {
	if strings.HasSuffix(strings.TrimSuffix(fs.Name, "/func"), "Locked") {
		return // caller holds the lock by convention
	}
	locks := collectLocks(pass, fs)
	for _, acc := range collectAccesses(pass, fs, guards) {
		if acc.kind == accInit || acc.kind == accAtomicLoad {
			continue
		}
		need := "Lock"
		if acc.kind == accRead {
			need = "RLock"
		}
		if heldAt(locks, acc.guard, acc.pos, need) {
			continue
		}
		verb := map[accessKind]string{
			accRead:        "read",
			accWrite:       "write to",
			accAtomicStore: "atomic publish of",
		}[acc.kind]
		pass.Reportf(acc.pos, "%s %s without holding %s (field is marked `guarded by %s`)",
			verb, acc.name, acc.guard, acc.guard)
	}
}

type guardedAccess struct {
	pos   token.Pos
	name  string // field name, for the message
	guard string
	kind  accessKind
}

type lockEvent struct {
	pos   token.Pos
	guard string // final path component of the mutex
	read  bool   // RLock rather than Lock
}

// collectLocks finds <path>.Lock() / <path>.RLock() calls in the scope
// (not descending into nested function literals — a lock taken by a
// closure does not cover the enclosing frame). A lock promoted from an
// embedded mutex (tabs.Lock() on struct{ sync.Mutex; ... }) also
// counts under the embedded field's name, so `// guarded by Mutex`
// annotations match.
func collectLocks(pass *analysis.Pass, fs analysis.FuncScope) []lockEvent {
	var locks []lockEvent
	analysis.WalkShallow(fs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		read := false
		switch sel.Sel.Name {
		case "Lock":
		case "RLock":
			read = true
		default:
			return true
		}
		path, ok := analysis.PathString(sel.X)
		if !ok {
			return true
		}
		if i := strings.LastIndexByte(path, '.'); i >= 0 {
			path = path[i+1:]
		}
		locks = append(locks, lockEvent{pos: call.Pos(), guard: path, read: read})
		if em := promotedField(pass, sel); em != "" && em != path {
			locks = append(locks, lockEvent{pos: call.Pos(), guard: em, read: read})
		}
		return true
	})
	return locks
}

// promotedField returns the name of the embedded field a method
// selection reaches through ("Mutex" for tabs.Lock() on a struct
// embedding sync.Mutex), or "" for direct calls.
func promotedField(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return ""
	}
	idx := s.Index()
	if len(idx) < 2 {
		return ""
	}
	t := s.Recv()
	name := ""
	for _, i := range idx[:len(idx)-1] {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		f := st.Field(i)
		name = f.Name()
		t = f.Type()
	}
	return name
}

// heldAt reports whether a lock on guard appears lexically before pos.
// need == "RLock" accepts either flavor; "Lock" requires the writer
// lock. The check is deliberately lexical (no unlock tracking): it
// under-reports hand-over-hand unlocking but never flags correctly
// guarded code.
func heldAt(locks []lockEvent, guard string, pos token.Pos, need string) bool {
	for _, l := range locks {
		if l.guard != guard || l.pos >= pos {
			continue
		}
		if l.read && need == "Lock" {
			continue
		}
		return true
	}
	return false
}

// collectAccesses finds annotated-field uses in the scope and
// classifies them by how the surrounding syntax treats the field.
func collectAccesses(pass *analysis.Pass, fs analysis.FuncScope, guards map[types.Object]string) []guardedAccess {
	var out []guardedAccess
	var stack []ast.Node
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != fs.Body {
			return false // separate scope
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		guard, tracked := guards[obj]
		if !tracked {
			return true
		}
		out = append(out, guardedAccess{
			pos:   sel.Sel.Pos(),
			name:  sel.Sel.Name,
			guard: guard,
			kind:  classify(pass, stack, sel, obj),
		})
		return true
	})
	// Composite-literal field keys (struct construction before the
	// value is shared) appear as bare idents, not selectors: mark them
	// exempt by never collecting them. Nothing to do here — Inspect
	// above only matches selector uses.
	return out
}

// classify determines how the field selector at the top of stack is
// being used. stack[len(stack)-1] == sel.
func classify(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr, obj types.Object) accessKind {
	_, isAtomic := analysis.IsAtomicType(obj.Type())
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr:
			// f.field.Method(...): for atomics, split by method.
			if isAtomic && p.X == stack[i+1] {
				switch p.Sel.Name {
				case "Load", "CompareAndSwap":
					return accAtomicLoad
				case "Store", "Swap", "Add", "And", "Or":
					return accAtomicStore
				}
			}
			continue // deeper selection: keep looking outward
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if containsNode(l, sel) {
					return accWrite
				}
			}
			return accRead
		case *ast.IncDecStmt:
			return accWrite
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				// Address taken: the alias can write.
				return accWrite
			}
			return accRead
		case *ast.KeyValueExpr:
			if id, ok := p.Key.(*ast.Ident); ok && id == sel.Sel {
				return accInit
			}
			return accRead
		case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.ParenExpr:
			continue // derived view: classification comes from its use
		case *ast.CallExpr:
			// delete(m, k) and clear(m) mutate; anything else reads the
			// field value (a map/slice passed onward shares structure,
			// but flagging every pass-through drowns the signal).
			switch analysis.BuiltinName(pass.TypesInfo, p) {
			case "delete", "clear":
				return accWrite
			}
			return accRead
		default:
			return accRead
		}
	}
	return accRead
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// --- copy-on-write rule ----------------------------------------------

// checkCOW flags mutations through locals bound to an atomic.Pointer
// Load: the pointee is a published snapshot shared with readers.
func checkCOW(pass *analysis.Pass, fs analysis.FuncScope) {
	// snapshot locals: p := x.Load() where x is an atomic.Pointer.
	snaps := make(map[types.Object]bool)
	analysis.WalkShallow(fs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, r := range as.Rhs {
			if !isAtomicPointerLoad(pass, r) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if o := pass.TypesInfo.Defs[id]; o != nil {
					snaps[o] = true
				}
			}
		}
		return true
	})
	if len(snaps) == 0 {
		return
	}
	isSnap := func(e ast.Expr) bool {
		id := analysis.RootIdent(e)
		if id == nil {
			return false
		}
		return snaps[pass.TypesInfo.Uses[id]]
	}
	analysis.WalkShallow(fs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				// (*p)[i] = v, p.f = v, *p = v: writes through the
				// snapshot pointer.
				if _, plain := l.(*ast.Ident); !plain && isSnap(l) {
					pass.Reportf(l.Pos(), "write through atomic.Pointer snapshot: clone the slice before mutating (copy-on-write)")
				}
			}
		case *ast.CallExpr:
			if analysis.BuiltinName(pass.TypesInfo, x) == "append" && len(x.Args) > 0 && isSnap(x.Args[0]) {
				pass.Reportf(x.Pos(), "append to atomic.Pointer snapshot may write the shared backing array: clone into a fresh slice first")
			}
		case *ast.IncDecStmt:
			if _, plain := x.X.(*ast.Ident); !plain && isSnap(x.X) {
				pass.Reportf(x.X.Pos(), "write through atomic.Pointer snapshot: clone the slice before mutating (copy-on-write)")
			}
		}
		return true
	})
}

func isAtomicPointerLoad(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	name, ok := analysis.IsAtomicType(t)
	return ok && name == "Pointer"
}
