package nolockcopy_test

import (
	"testing"

	"repro/internal/analysis/checktest"
	"repro/internal/analysis/nolockcopy"
)

func TestNolockcopy(t *testing.T) {
	checktest.Run(t, nolockcopy.Analyzer, "lockcopy")
}
