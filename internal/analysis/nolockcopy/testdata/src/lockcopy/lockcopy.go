// Package lockcopy is the nolockcopy fixture. counter is the class
// the stock vet copylocks check misses: no Lock method anywhere, just
// an embedded atomic cell (the shape of metrics.Counter, pugz.File's
// usize, handleCache's gauges) — copying it forks the published value.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits atomic.Int64
}

type registry struct {
	mu    sync.Mutex
	names []string
}

// aliased hides the atomic one struct deeper, like File embedding its
// cursor pool.
type aliased struct {
	inner counter
	n     int
}

// --- true positives ---------------------------------------------------

func byValue(c counter) int64 { // want `parameter passes counter by value`
	return c.hits.Load()
}

func returnsValue() aliased { // want `result passes aliased by value`
	return aliased{}
}

func (r registry) size() int { // want `receiver passes registry by value`
	return len(r.names)
}

func derefCopy(c *counter) int64 {
	snap := *c // want `dereference copies counter by value`
	return snap.hits.Load()
}

func rangeCopy(cs []aliased) int {
	n := 0
	for _, c := range cs { // want `range copies aliased elements by value`
		n += c.n
	}
	return n
}

// --- realistic negatives ---------------------------------------------

func byPointer(c *counter) int64 {
	return c.hits.Load()
}

func newRegistry() *registry {
	return &registry{}
}

func (r *registry) add(name string) {
	r.mu.Lock()
	r.names = append(r.names, name)
	r.mu.Unlock()
}

// Slices, maps, and channels of pointers share correctly.
func sum(cs []*counter) int64 {
	var n int64
	for _, c := range cs {
		n += c.hits.Load()
	}
	return n
}

// Indexing instead of copying element values.
func bump(cs []counter) {
	for i := range cs {
		cs[i].hits.Add(1)
	}
}
