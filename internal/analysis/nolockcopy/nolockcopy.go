// Package nolockcopy flags by-value movement of types that
// transitively hold sync primitives or sync/atomic cells. The stock
// `go vet` copylocks check keys on the Lock/Unlock method set, so a
// struct whose only synchronization is an embedded atomic.Int64 or
// atomic.Pointer — pugz.File, serve's handleCache, the metrics
// Registry — slips through: copying it silently forks the published
// cell, and the copy's loads never see the original's stores.
//
// The rule: such types cross function boundaries only by pointer.
// Flagged sites are by-value parameters, results, and receivers, and
// copies made by dereferencing a pointer to such a type.
package nolockcopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the nolockcopy pass.
var Analyzer = &analysis.Analyzer{
	Name: "nolockcopy",
	Doc: "flag by-value transfer of types holding sync primitives or " +
		"atomics (including embedded atomics vet's copylocks misses)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					checkFieldList(pass, x.Recv, "receiver")
				}
				checkSignature(pass, x.Type)
			case *ast.FuncLit:
				checkSignature(pass, x.Type)
			case *ast.AssignStmt:
				for _, r := range x.Rhs {
					checkDerefCopy(pass, r)
				}
			case *ast.GenDecl:
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							checkDerefCopy(pass, v)
						}
					}
				}
			case *ast.RangeStmt:
				checkRangeValue(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	checkFieldList(pass, ft.Params, "parameter")
	if ft.Results != nil {
		checkFieldList(pass, ft.Results, "result")
	}
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, what string) {
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if name, bad := holding(t); bad {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value: it holds %s, so the copy forks the synchronization state — pass a pointer",
				what, types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
		}
	}
}

// checkDerefCopy flags x := *p where *p holds sync state.
func checkDerefCopy(pass *analysis.Pass, e ast.Expr) {
	star, ok := ast.Unparen(e).(*ast.StarExpr)
	if !ok {
		return
	}
	t := pass.TypesInfo.TypeOf(star)
	if t == nil {
		return
	}
	if name, bad := holding(t); bad {
		pass.Reportf(star.Pos(), "dereference copies %s by value: it holds %s — keep the pointer",
			types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
	}
}

func checkRangeValue(pass *analysis.Pass, r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(r.Value)
	if t == nil {
		return
	}
	if name, bad := holding(t); bad {
		pass.Reportf(r.Value.Pos(), "range copies %s elements by value: each holds %s — range over indexes or pointers",
			types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
	}
}

// holding reports whether t (not a pointer/slice/map/chan/interface)
// transitively holds a sync primitive, and names one for the message.
func holding(t types.Type) (string, bool) {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return "", false
	}
	if !analysis.HoldsSyncPrimitive(t) {
		return "", false
	}
	return syncName(t), true
}

// syncName finds the name of one sync primitive inside t for the
// diagnostic ("sync.Mutex", "atomic.Pointer", ...).
func syncName(t types.Type) string {
	return findSync(t, make(map[types.Type]bool))
}

func findSync(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				return "sync." + obj.Name()
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := findSync(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return findSync(u.Elem(), seen)
	}
	return ""
}
