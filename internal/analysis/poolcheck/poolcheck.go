// Package poolcheck enforces the repo's pooled-buffer hygiene: every
// pooled acquire (GetWindow, GetDecoder, getSymBuf, NewTailSink, ...)
// is released on all return paths, released values are not used
// afterwards, and values never flow into the Put of a different pool
// (the tail-pool vs full-pool separation of internal/tracked).
//
// The analysis is a path-sensitive walk of each function body with a
// three-state ownership lattice per acquired local:
//
//	Clean    — acquired, this path has not released it
//	Released — handed back to its pool on every path reaching here
//	Escaped  — ownership transferred (stored, returned, passed on)
//
// A return reachable while a value is Clean is a leak; any use while
// Released is a use-after-release; a second release while Released is
// a double release. Escapes are deliberate: the engine stores windows
// into propagation chains and Results transfer buffers to callers, so
// any transfer (field store, call argument, composite literal,
// closure capture, channel send) ends tracking for that path. The
// checker therefore under-reports rather than second-guessing
// ownership transfers — every report is actionable.
//
// A release deferred at any point in the function (directly or inside
// a deferred closure) covers all paths and exempts the value.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the poolcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "check that pooled acquires are released on every path, " +
		"never used after release, and returned to the pool they came from",
	Run: run,
}

// pairs maps each pooled acquire to the releases allowed for its
// value. The pairing is by name — the convention the repo holds to —
// so the analyzer needs no import-graph facts and the testdata
// fixtures stay self-contained. A method call named Release on the
// acquired value is always an allowed release.
var pairs = map[string][]string{
	"GetWindow":     {"PutWindow"},
	"ResolveWindow": {"PutWindow"},
	"GetDecoder":    {"PutDecoder"},
	"getPlainBuf":   {"putPlainBuf"},
	"getSymBuf":     {"putSymBuf"},
	"getResolveTab": {"putResolveTab"},
	"NewSink":       {"Release", "putSymBuf"},
	"NewTailSink":   {"Release", "putTailBuf"},
}

// releaseNames is every known release function, for wrong-pool
// detection: releasing a tracked value through a name in this set
// that is not allowed for its acquire is a pool-mixing bug.
var releaseNames = func() map[string]bool {
	m := map[string]bool{"Release": true}
	for _, rs := range pairs {
		for _, r := range rs {
			m[r] = true
		}
	}
	return m
}()

type status uint8

const (
	clean status = iota
	released
	escaped
)

// tracked is one acquired local under analysis.
type tracked struct {
	name    string // variable name
	acquire string // acquire function name
	pos     token.Pos
	allowed []string // release names valid for this acquire
}

func (t *tracked) allows(name string) bool {
	if name == "Release" {
		return true
	}
	for _, a := range t.allowed {
		if a == name {
			return true
		}
	}
	return false
}

// owned is the per-path fact about one acquired object.
type owned struct {
	t *tracked
	s status
}

// state is the per-path ownership map, keyed by the variable's object
// so re-acquiring into the same variable (loop hand-off) replaces the
// old fact. Absent objects are untracked.
type state struct {
	vals       map[types.Object]owned
	terminated bool
}

func newState() *state { return &state{vals: make(map[types.Object]owned)} }

func (s *state) clone() *state {
	n := newState()
	for k, v := range s.vals {
		n.vals[k] = v
	}
	n.terminated = s.terminated
	return n
}

// merge folds other into s as the join of two incoming paths: Clean
// dominates (a may-leak on either path is a may-leak), then Escaped,
// then Released.
func (s *state) merge(other *state) {
	if other == nil || other.terminated {
		return
	}
	if s.terminated {
		s.vals, s.terminated = other.vals, false
		return
	}
	for k, v := range other.vals {
		cur, ok := s.vals[k]
		if !ok {
			s.vals[k] = v
			continue
		}
		s.vals[k] = owned{t: cur.t, s: joinStatus(cur.s, v.s)}
	}
}

func joinStatus(a, b status) status {
	if a == clean || b == clean {
		return clean
	}
	if a == escaped || b == escaped {
		return escaped
	}
	return released
}

func run(pass *analysis.Pass) error {
	analysis.ForEachFunc(pass, func(fs analysis.FuncScope) {
		newChecker(pass, fs).check()
	})
	return nil
}

// loopFrame accumulates the states of break statements targeting one
// loop (or switch/select, which consume unlabeled breaks).
type loopFrame struct {
	label     string
	isLoop    bool
	breaks    *state
	continues *state
}

type checker struct {
	pass   *analysis.Pass
	fn     analysis.FuncScope
	defers map[types.Object]bool // objects released by a defer
	// errFor maps the error object of a two-value acquire (w, err :=
	// ResolveWindow(...)) to the value object: on the err != nil branch
	// the value is nil by contract (released inside the acquire), so it
	// carries no obligation there.
	errFor  map[types.Object]types.Object
	frames  []*loopFrame
	abort   bool   // goto seen: give up on this function
	pending string // label attached to the next loop statement
}

func newChecker(pass *analysis.Pass, fs analysis.FuncScope) *checker {
	return &checker{
		pass:   pass,
		fn:     fs,
		defers: map[types.Object]bool{},
		errFor: map[types.Object]types.Object{},
	}
}

func (c *checker) check() {
	c.collectDefers()
	st := newState()
	c.walkList(c.fn.Body.List, st)
	if !c.abort && !st.terminated {
		// Falling off the end of the body is an implicit return.
		c.reportLeaks(st, c.fn.Body.End())
	}
}

// collectDefers records every object released by a defer statement —
// directly (defer PutWindow(w)) or inside a deferred closure (defer
// func() { tracked.PutWindow(ctx) }()). Deferred releases cover all
// return paths, so such objects are exempt from leak tracking.
func (c *checker) collectDefers() {
	analysis.WalkShallow(c.fn.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		c.markDeferredReleases(d.Call)
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					c.markDeferredReleases(call)
				}
				return true
			})
		}
		return true
	})
}

func (c *checker) markDeferredReleases(call *ast.CallExpr) {
	name, recv := c.releaseCall(call)
	if name == "" {
		return
	}
	for _, e := range call.Args {
		if id := analysis.RootIdent(e); id != nil {
			if o := c.pass.TypesInfo.Uses[id]; o != nil {
				c.defers[o] = true
			}
		}
	}
	if recv != nil {
		if o := c.pass.TypesInfo.Uses[recv]; o != nil {
			c.defers[o] = true
		}
	}
}

// releaseCall classifies call as a pool release. It returns the
// release name ("" when not a release) and, for method-form releases
// (x.Release(), pool.Put(v)), the root identifier of the receiver.
func (c *checker) releaseCall(call *ast.CallExpr) (string, *ast.Ident) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if releaseNames[fun.Name] && fun.Name != "Release" {
			return fun.Name, nil
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Release" && len(call.Args) == 0 {
			return "Release", analysis.RootIdent(fun.X)
		}
		if releaseNames[fun.Sel.Name] && fun.Sel.Name != "Release" {
			// Qualified call: tracked.PutWindow(w), flate.PutDecoder(d).
			if _, ok := c.pass.TypesInfo.Selections[fun]; !ok {
				return fun.Sel.Name, nil
			}
		}
		if fun.Sel.Name == "Put" && len(call.Args) == 1 && c.isSyncPool(fun.X) {
			return "Put", nil
		}
	}
	return "", nil
}

func (c *checker) isSyncPool(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// acquireName returns the pooled-acquire name of call, or "".
func (c *checker) acquireName(call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return ""
	}
	if _, ok := pairs[name]; ok {
		return name
	}
	return ""
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) lookup(st *state, id *ast.Ident) (types.Object, owned, bool) {
	o := c.objOf(id)
	if o == nil {
		return nil, owned{}, false
	}
	ow, ok := st.vals[o]
	return o, ow, ok
}

func (c *checker) reportLeaks(st *state, pos token.Pos) {
	var leaks []*tracked
	for _, ow := range st.vals {
		if ow.s == clean {
			leaks = append(leaks, ow.t)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, t := range leaks {
		c.pass.Reportf(pos, "pooled value %s (from %s, acquired at %s) may not be released on this return path",
			t.name, t.acquire, c.pass.Fset.Position(t.pos))
	}
}

// --- statement walk ---------------------------------------------------

func (c *checker) walkList(list []ast.Stmt, st *state) {
	for i := 0; i < len(list); i++ {
		if c.abort || st.terminated {
			return
		}
		c.walkStmt(list[i], st)
	}
}

func (c *checker) walkStmt(s ast.Stmt, st *state) {
	if c.abort {
		return
	}
	switch x := s.(type) {
	case *ast.AssignStmt:
		c.walkAssign(x, st)
	case *ast.DeclStmt:
		c.walkDecl(x, st)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if name := c.acquireName(call); name != "" {
				c.scanExprs(call.Args, st, true)
				c.pass.Reportf(call.Pos(), "result of %s is discarded: the pooled value can never be released", name)
				return
			}
		}
		c.scanExpr(x.X, st, false)
	case *ast.ReturnStmt:
		// Returning a value transfers ownership to the caller.
		c.scanExprs(x.Results, st, true)
		c.reportLeaks(st, x.Pos())
		st.terminated = true
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Cond, st, false)
		thenSt := st.clone()
		elseSt := st.clone()
		// Error-contract refinement: after v, err := Acquire(), the
		// branch where err is non-nil has v == nil (the acquire
		// released it), so it carries no obligation there.
		if vo, errOnThen, ok := c.errNilBranch(x.Cond); ok {
			if errOnThen {
				delete(thenSt.vals, vo)
			} else {
				delete(elseSt.vals, vo)
			}
		}
		c.walkStmt(x.Body, thenSt)
		if x.Else != nil {
			c.walkStmt(x.Else, elseSt)
		}
		*st = *thenSt
		st.merge(elseSt)
	case *ast.BlockStmt:
		c.walkList(x.List, st)
	case *ast.ForStmt:
		c.walkFor(x, st)
	case *ast.RangeStmt:
		c.walkRange(x, st)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			c.scanExpr(x.Tag, st, false)
		}
		c.walkCases(x.Body, st, nil)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.walkStmt(x.Assign, st)
		c.walkCases(x.Body, st, nil)
	case *ast.SelectStmt:
		c.walkSelect(x, st)
	case *ast.BranchStmt:
		c.walkBranch(x, st)
	case *ast.LabeledStmt:
		c.pending = x.Label.Name
		c.walkStmt(x.Stmt, st)
		c.pending = ""
	case *ast.DeferStmt:
		// Deferred releases were credited in the prepass; anything else
		// a defer touches is treated as captured.
		if name, _ := c.releaseCall(x.Call); name == "" {
			c.scanExpr(x.Call, st, true)
		}
	case *ast.GoStmt:
		c.scanExpr(x.Call, st, true)
	case *ast.SendStmt:
		c.scanExpr(x.Chan, st, false)
		c.scanExpr(x.Value, st, true)
	case *ast.IncDecStmt:
		c.scanExpr(x.X, st, false)
	case *ast.EmptyStmt:
	default:
		// goto (or anything unrecognized): results would be unsound.
		if b, ok := s.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			c.abort = true
			return
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanExpr(e, st, true)
				return false
			}
			return true
		})
	}
}

func (c *checker) walkAssign(x *ast.AssignStmt, st *state) {
	// Acquire form: v := Acquire(...) or v, err := Acquire(...).
	if len(x.Rhs) == 1 {
		if call, ok := ast.Unparen(stripAssert(x.Rhs[0])).(*ast.CallExpr); ok {
			if name := c.acquireName(call); name != "" {
				c.scanExprs(call.Args, st, true)
				c.killOverwritten(x.Lhs, st)
				switch lhs := x.Lhs[0].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						c.pass.Reportf(call.Pos(), "result of %s is discarded: the pooled value can never be released", name)
					} else {
						c.trackAcquire(lhs, name, st)
						if len(x.Lhs) >= 2 {
							if errID, ok := x.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
								if eo, vo := c.objOf(errID), c.objOf(lhs); eo != nil && vo != nil {
									c.errFor[eo] = vo
								}
							}
						}
					}
				default:
					// Field or element assignment: ownership transfers
					// into the owning structure (sink buffers, chunk
					// tails) whose release path returns it.
					c.scanExpr(x.Lhs[0], st, false)
				}
				c.scanExprs(x.Lhs[1:], st, false)
				return
			}
		}
	}
	c.scanExprs(x.Rhs, st, true)
	c.killOverwritten(x.Lhs, st)
	for _, l := range x.Lhs {
		if _, ok := l.(*ast.Ident); !ok {
			c.scanExpr(l, st, false)
		}
	}
}

func (c *checker) walkDecl(x *ast.DeclStmt, st *state) {
	gd, ok := x.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) == 1 && len(vs.Values) == 1 {
			if call, ok := ast.Unparen(stripAssert(vs.Values[0])).(*ast.CallExpr); ok {
				if name := c.acquireName(call); name != "" {
					c.scanExprs(call.Args, st, true)
					c.trackAcquire(vs.Names[0], name, st)
					continue
				}
			}
		}
		c.scanExprs(vs.Values, st, true)
	}
}

// errNilBranch recognizes `err != nil` / `err == nil` conditions for
// an error bound by a two-value acquire. It returns the acquired value
// object and whether the error-is-non-nil case is the then-branch.
func (c *checker) errNilBranch(cond ast.Expr) (types.Object, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		nilID, ok := ast.Unparen(pair[1]).(*ast.Ident)
		if !ok || nilID.Name != "nil" {
			continue
		}
		eo := c.objOf(id)
		if eo == nil {
			continue
		}
		if vo, ok := c.errFor[eo]; ok {
			return vo, be.Op == token.NEQ, true
		}
	}
	return nil, false, false
}

func stripAssert(e ast.Expr) ast.Expr {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return stripAssert(ta.X)
	}
	return e
}

func (c *checker) trackAcquire(id *ast.Ident, acquire string, st *state) {
	o := c.objOf(id)
	if o == nil || c.defers[o] {
		return
	}
	st.vals[o] = owned{
		t: &tracked{name: id.Name, acquire: acquire, pos: id.Pos(), allowed: pairs[acquire]},
		s: clean,
	}
}

// killOverwritten handles assignment targets: overwriting a Clean
// pooled local loses the only reference (a leak, reported here);
// overwriting a Released or Escaped one just ends its tracking.
func (c *checker) killOverwritten(lhs []ast.Expr, st *state) {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if o, ow, ok := c.lookup(st, id); ok {
			if ow.s == clean {
				c.pass.Reportf(id.Pos(), "pooled value %s (from %s) overwritten before release: the value leaks", ow.t.name, ow.t.acquire)
			}
			delete(st.vals, o)
		}
	}
}

func (c *checker) walkFor(x *ast.ForStmt, st *state) {
	if x.Init != nil {
		c.walkStmt(x.Init, st)
	}
	if x.Cond != nil {
		c.scanExpr(x.Cond, st, false)
	}
	frame := c.pushFrame(true)
	// Two passes approximate the loop fixpoint: values acquired or
	// released on a previous iteration are visible on the next.
	body := st.clone()
	for i := 0; i < 2; i++ {
		it := body.clone()
		c.walkStmt(x.Body, it)
		if x.Post != nil && !it.terminated {
			c.walkStmt(x.Post, it)
		}
		it.merge(frame.continues)
		body.merge(it)
	}
	c.popFrame()
	after := newState()
	after.terminated = true
	if x.Cond != nil {
		// The loop may run zero or more times: body already joins the
		// entry state with every iteration's exit.
		after.merge(body)
	}
	after.merge(frame.breaks)
	*st = *after
}

func (c *checker) walkRange(x *ast.RangeStmt, st *state) {
	c.scanExpr(x.X, st, false)
	if x.Key != nil {
		c.scanExpr(x.Key, st, false)
	}
	if x.Value != nil {
		c.scanExpr(x.Value, st, false)
	}
	frame := c.pushFrame(true)
	body := st.clone()
	for i := 0; i < 2; i++ {
		it := body.clone()
		c.walkStmt(x.Body, it)
		it.merge(frame.continues)
		body.merge(it)
	}
	c.popFrame()
	after := st.clone() // a range may run zero times
	after.merge(frame.breaks)
	after.merge(body)
	*st = *after
}

// walkCases analyzes a switch (or type switch) body: each clause
// starts from the entry state; fallthrough carries one clause's exit
// into the next; the statement's exit is the join of all clause exits
// plus, when there is no default clause, the entry itself.
func (c *checker) walkCases(body *ast.BlockStmt, st *state, _ *loopFrame) {
	frame := c.pushFrame(false)
	exit := newState()
	exit.terminated = true
	hasDefault := false
	var carry *state
	for _, cs := range body.List {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		in := st.clone()
		if carry != nil {
			in.merge(carry)
			carry = nil
		}
		for _, e := range clause.List {
			c.scanExpr(e, in, false)
		}
		fallsThrough := false
		if n := len(clause.Body); n > 0 {
			if b, ok := clause.Body[n-1].(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		c.walkList(clause.Body, in)
		if fallsThrough {
			carry = in
			continue
		}
		exit.merge(in)
	}
	c.popFrame()
	exit.merge(frame.breaks)
	if !hasDefault {
		exit.merge(st)
	}
	*st = *exit
}

func (c *checker) walkSelect(x *ast.SelectStmt, st *state) {
	frame := c.pushFrame(false)
	exit := newState()
	exit.terminated = true
	for _, cs := range x.Body.List {
		clause, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		in := st.clone()
		if clause.Comm != nil {
			c.walkStmt(clause.Comm, in)
		}
		c.walkList(clause.Body, in)
		exit.merge(in)
	}
	c.popFrame()
	exit.merge(frame.breaks)
	*st = *exit
}

func (c *checker) walkBranch(x *ast.BranchStmt, st *state) {
	switch x.Tok {
	case token.GOTO:
		c.abort = true
	case token.BREAK:
		if f := c.findFrame(x.Label, false); f != nil {
			f.breaks.merge(st)
		}
		st.terminated = true
	case token.CONTINUE:
		if f := c.findFrame(x.Label, true); f != nil {
			f.continues.merge(st)
		}
		st.terminated = true
	case token.FALLTHROUGH:
		// Handled by walkCases; reaching here means a stray fallthrough.
		st.terminated = true
	}
}

func (c *checker) pushFrame(isLoop bool) *loopFrame {
	breaks := newState()
	breaks.terminated = true
	continues := newState()
	continues.terminated = true
	f := &loopFrame{label: c.pending, isLoop: isLoop, breaks: breaks, continues: continues}
	c.pending = ""
	c.frames = append(c.frames, f)
	return f
}

func (c *checker) popFrame() {
	c.frames = c.frames[:len(c.frames)-1]
}

func (c *checker) findFrame(label *ast.Ident, loopOnly bool) *loopFrame {
	for i := len(c.frames) - 1; i >= 0; i-- {
		f := c.frames[i]
		if loopOnly && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// --- expression scan --------------------------------------------------

func (c *checker) scanExprs(list []ast.Expr, st *state, transfer bool) {
	for _, e := range list {
		c.scanExpr(e, st, transfer)
	}
}

// scanExpr applies an expression's effects on tracked values.
// transfer reports whether the expression's value flows somewhere the
// checker cannot follow (a call argument, a stored value, a returned
// value): a Clean tracked value in transfer position becomes Escaped,
// a Released one is a use-after-release. Pure reads (conditions,
// indexes, len/cap/copy) touch nothing.
func (c *checker) scanExpr(e ast.Expr, st *state, transfer bool) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		c.useIdent(x, st, transfer)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.ParenExpr, *ast.TypeAssertExpr:
		// Derived views carry their base's ownership: passing w[:n] or
		// sink.buf onward transfers w or sink.
		if id := analysis.RootIdent(e); id != nil {
			c.useIdent(id, st, transfer)
		}
		c.scanInner(e, st, transfer)
	case *ast.CallExpr:
		c.scanCall(x, st)
	case *ast.BinaryExpr:
		c.scanExpr(x.X, st, false)
		c.scanExpr(x.Y, st, false)
	case *ast.UnaryExpr:
		c.scanExpr(x.X, st, x.Op == token.AND || transfer)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.scanExpr(kv.Value, st, true)
				continue
			}
			c.scanExpr(el, st, true)
		}
	case *ast.KeyValueExpr:
		c.scanExpr(x.Key, st, false)
		c.scanExpr(x.Value, st, true)
	case *ast.FuncLit:
		// Captured by a closure whose schedule is unknown.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				c.useIdent(id, st, true)
			}
			return true
		})
	}
}

// scanInner descends into the sub-expressions of derived views
// (indexes, slice bounds) as pure reads.
func (c *checker) scanInner(e ast.Expr, st *state, transfer bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
	case *ast.IndexExpr:
		c.scanExpr(x.Index, st, false)
	case *ast.SliceExpr:
		c.scanExpr(x.Low, st, false)
		c.scanExpr(x.High, st, false)
		c.scanExpr(x.Max, st, false)
	case *ast.StarExpr:
	case *ast.ParenExpr:
		c.scanExpr(x.X, st, transfer)
	case *ast.TypeAssertExpr:
	}
}

func (c *checker) scanCall(call *ast.CallExpr, st *state) {
	// Release call: kill the released value, checking pool identity.
	if name, recv := c.releaseCall(call); name != "" {
		if name == "Release" && recv != nil {
			c.releaseIdent(recv, name, call, st)
			return
		}
		handled := false
		for _, a := range call.Args {
			if id := analysis.RootIdent(a); id != nil {
				if c.releaseIdent(id, name, call, st) {
					handled = true
				}
			}
		}
		if handled {
			return
		}
		// A release of something we don't track (a field, a parameter):
		// its arguments are still plain reads.
		c.scanExprs(call.Args, st, false)
		return
	}
	// Acquire in expression position (a composite-literal value, a call
	// argument, a return): the result transfers into whatever consumes
	// it. Only a bare statement-level acquire (handled at ExprStmt) or
	// an assignment to _ truly discards the value.
	if c.acquireName(call) != "" {
		c.scanExprs(call.Args, st, true)
		return
	}
	switch analysis.BuiltinName(c.pass.TypesInfo, call) {
	case "len", "cap", "copy", "print", "println", "clear", "min", "max":
		c.scanExprs(call.Args, st, false)
		return
	}
	// Unknown call: arguments (including a method receiver) may be
	// retained by the callee.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := c.pass.TypesInfo.Selections[sel]; isMethod {
			c.scanExpr(sel.X, st, true)
		}
	}
	c.scanExprs(call.Args, st, true)
}

// releaseIdent applies a release of the value named by id through
// release function name. Reports wrong-pool releases and double
// releases. Returns false when id is not tracked.
func (c *checker) releaseIdent(id *ast.Ident, name string, call *ast.CallExpr, st *state) bool {
	o, ow, ok := c.lookup(st, id)
	if !ok {
		return false
	}
	switch ow.s {
	case released:
		c.pass.Reportf(call.Pos(), "pooled value %s (from %s) released again: double release corrupts the pool", ow.t.name, ow.t.acquire)
	case clean:
		if !ow.t.allows(name) {
			c.pass.Reportf(call.Pos(), "value from %s released via %s: wrong pool (want %s)",
				ow.t.acquire, name, strings.Join(ow.t.allowed, " or "))
		}
	}
	st.vals[o] = owned{t: ow.t, s: released}
	return true
}

func (c *checker) useIdent(id *ast.Ident, st *state, transfer bool) {
	o, ow, ok := c.lookup(st, id)
	if !ok {
		return
	}
	switch ow.s {
	case released:
		c.pass.Reportf(id.Pos(), "use of %s after it was released to its pool", ow.t.name)
	case clean:
		if transfer {
			st.vals[o] = owned{t: ow.t, s: escaped}
		}
	}
}
