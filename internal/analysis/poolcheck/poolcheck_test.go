package poolcheck_test

import (
	"testing"

	"repro/internal/analysis/checktest"
	"repro/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	checktest.Run(t, poolcheck.Analyzer, "pool")
}
