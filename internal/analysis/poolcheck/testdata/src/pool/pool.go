// Package pool is the poolcheck fixture. The acquire/release names
// mirror internal/tracked and internal/flate; the negative cases are
// shaped after the real hot paths (engine window hand-off, sink
// buffer transfer, Result ownership) so the analyzer is proven quiet
// on the idioms the repo actually uses.
package pool

import "errors"

var errStub = errors.New("stub")

func GetWindow() []byte   { return make([]byte, 8) }
func PutWindow(w []byte)  { _ = w }
func getSymBuf() []byte   { return make([]byte, 8) }
func putSymBuf(b []byte)  { _ = b }
func putTailBuf(b []byte) { _ = b }
func use(b []byte)        { _ = b }

type tailSink struct{ buf []byte }

func NewTailSink() *tailSink     { return &tailSink{} }
func (s *tailSink) Release()     { s.buf = nil }
func (s *tailSink) write(b byte) { s.buf = append(s.buf, b) }

// --- true positives ---------------------------------------------------

// Regression shape for the class PR 2/5 reviews kept catching: an
// early error return that forgets the window.
func leakOnError(fail bool) error {
	w := GetWindow()
	if fail {
		return errStub // want `pooled value w \(from GetWindow.*may not be released`
	}
	PutWindow(w)
	return nil
}

func leakAtEnd() {
	b := getSymBuf()
	_ = len(b)
} // want `pooled value b \(from getSymBuf.*may not be released`

func discarded() {
	GetWindow() // want `result of GetWindow is discarded`
}

func discardedBlank() {
	_ = getSymBuf() // want `result of getSymBuf is discarded`
}

// Tail-pool values must never flow into the full-symbol pool: the
// pools hold different capacity classes (PR 5).
func mixedPools() {
	sink := NewTailSink()
	putSymBuf(sink.buf) // want `released via putSymBuf: wrong pool`
}

func wrongPool() {
	w := GetWindow()
	putTailBuf(w) // want `released via putTailBuf: wrong pool`
}

func doubleRelease() {
	w := GetWindow()
	PutWindow(w)
	PutWindow(w) // want `double release`
}

func useAfterRelease() byte {
	w := GetWindow()
	PutWindow(w)
	return w[0] // want `use of w after it was released`
}

func overwriteLeaks() {
	w := GetWindow()
	w = GetWindow() // want `overwritten before release`
	PutWindow(w)
}

// --- realistic negatives ---------------------------------------------

// Mirrors engine.ResolveWindow: released on the failure path,
// ownership transferred to the caller on success.
func releaseOrTransfer(fail bool) ([]byte, error) {
	w := GetWindow()
	if fail {
		PutWindow(w)
		return nil, errStub
	}
	return w, nil
}

func ResolveWindow(n int) ([]byte, error) {
	if n < 0 {
		return nil, errStub
	}
	return GetWindow(), nil
}

// Regression (sweep of tracked_test.go): a two-value acquire returns
// nil and releases internally on error, so the err != nil branch
// carries no release obligation.
func errorContract(n int) error {
	w, err := ResolveWindow(n)
	if err != nil {
		return err
	}
	PutWindow(w)
	return nil
}

// The inverted condition: only the success branch owns the window.
func errorContractInverted(n int) {
	if w, err := ResolveWindow(n); err == nil {
		PutWindow(w)
	}
}

// Mirrors DecodeFrom: deferred release covers every return.
func deferredRelease(n int) int {
	b := getSymBuf()
	defer putSymBuf(b)
	if n < 0 {
		return 0
	}
	return len(b)
}

// Deferred closure release (the engine's cleanup closures).
func deferredClosure() {
	w := GetWindow()
	defer func() {
		PutWindow(w)
	}()
	use(w)
}

// Mirrors sink construction: the buffer escapes into the struct that
// owns it from then on (its Release returns it to the pool).
func escapeToOwner(s *tailSink) {
	b := getSymBuf()
	s.buf = b
}

// Mirrors the sequential window hand-off in the engine: each
// iteration releases the previous window and adopts the next.
func windowHandoff(n int) {
	w := GetWindow()
	for i := 0; i < n; i++ {
		next := GetWindow()
		PutWindow(w)
		w = next
	}
	PutWindow(w)
}

// TailSink round trip: Release is the allowed release for the
// tail-pool acquire; reads of the value do not escape it.
func tailRoundTrip(fail bool) error {
	sink := NewTailSink()
	sink.write(1)
	if fail {
		sink.Release()
		return errStub
	}
	if len(sink.buf) == 0 {
		sink.Release()
		return nil
	}
	sink.Release()
	return nil
}

// len/cap/copy are reads, not ownership transfers.
func pureReads(dst []byte) int {
	w := GetWindow()
	n := copy(dst, w)
	n += len(w) + cap(w)
	PutWindow(w)
	return n
}

// Passing the value to an unknown function transfers ownership for
// analysis purposes (the engine hands windows to resolve workers);
// a later release through the original name is still fine.
func passThenRelease(dst []byte) {
	w := GetWindow()
	use(w)
	PutWindow(w)
	_ = dst
}

// Regression (sweep of internal/core, internal/tracked): an acquire
// feeding a composite literal or a field assignment transfers
// ownership into the owning structure — ByteSink{Out: getPlainBuf()},
// chunk.plainTail = GetWindow() — and must not count as discarded.
type chunk struct{ tail []byte }

func acquireIntoOwner(c *chunk) *tailSink {
	c.tail = GetWindow()
	return &tailSink{buf: getSymBuf()}
}

// Conditional release in a switch with a default: every path settles
// ownership.
func switchPaths(mode int) []byte {
	b := getSymBuf()
	switch mode {
	case 0:
		putSymBuf(b)
		return nil
	case 1:
		return b // transfer
	default:
		putSymBuf(b)
		return nil
	}
}
