// Package suite registers the full pugzvet analyzer set. cmd/pugzvet
// and the smoke tests consume this one list so a new analyzer added
// here is automatically wired into `make lint`, CI, and -help output.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicsnapshot"
	"repro/internal/analysis/bitbail"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/nolockcopy"
	"repro/internal/analysis/poolcheck"
	"repro/internal/analysis/sentinelwrap"
)

// All returns the analyzers pugzvet runs, in reporting order.
//
// The stock x/tools passes the issue sketch mentions (nilness,
// unusedwrite) need golang.org/x/tools, which this module deliberately
// does not depend on (the build must work offline from a bare
// toolchain); lockbalance and the use-after-release half of poolcheck
// cover the overlapping ground natively.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		poolcheck.Analyzer,
		atomicsnapshot.Analyzer,
		bitbail.Analyzer,
		sentinelwrap.Analyzer,
		nolockcopy.Analyzer,
		lockbalance.Analyzer,
	}
}
