package tracked

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/deflate"
	"repro/internal/dna"
	"repro/internal/flate"
)

// fixture compresses data and returns payload plus true block spans
// and the reference decode.
func fixture(t *testing.T, data []byte, level int) ([]byte, []flate.BlockSpan) {
	t.Helper()
	payload, err := deflate.Compress(data, level)
	if err != nil {
		t.Fatal(err)
	}
	ref, spans, err := flate.DecompressRecorded(payload, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, data) {
		t.Fatal("reference decode mismatch")
	}
	return payload, spans
}

// TestResolveAgainstTruth is the central exactness property of the
// symbolic context: decoding from block k with unique symbols and then
// resolving with the *true* preceding window must reproduce the true
// suffix byte-for-byte.
func TestResolveAgainstTruth(t *testing.T) {
	data := dna.Random(600_000, 21)
	for _, level := range []int{1, 6, 9} {
		payload, spans := fixture(t, data, level)
		if len(spans) < 4 {
			t.Fatalf("level %d: want >=4 blocks", level)
		}
		for _, k := range []int{1, 2, len(spans) / 2} {
			start := spans[k]
			res, err := DecodeFrom(payload, start.Event.StartBit, DecodeOptions{})
			if err != nil {
				t.Fatalf("level %d block %d: %v", level, k, err)
			}
			suffix := data[start.OutStart:]
			if len(res.Out) != len(suffix) {
				t.Fatalf("level %d block %d: length %d vs %d", level, k, len(res.Out), len(suffix))
			}
			// True context: the WindowSize bytes before the block.
			ctx := make([]byte, WindowSize)
			if start.OutStart >= WindowSize {
				copy(ctx, data[start.OutStart-WindowSize:start.OutStart])
			} else {
				copy(ctx[WindowSize-start.OutStart:], data[:start.OutStart])
			}
			got, err := Resolve(res.Out, ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, suffix) {
				t.Fatalf("level %d block %d: resolved suffix mismatch", level, k)
			}
			if !res.Final {
				t.Fatalf("level %d block %d: expected decode to reach final block", level, k)
			}
		}
	}
}

// TestNarrowMatchesResolvedPositions: every non-'?' in the narrow view
// must equal the true byte.
func TestNarrowMatchesResolvedPositions(t *testing.T) {
	data := dna.Random(400_000, 22)
	payload, spans := fixture(t, data, 6)
	start := spans[1]
	res, err := DecodeFrom(payload, start.Event.StartBit, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	narrow := Narrow(res.Out)
	truth := data[start.OutStart:]
	for i, b := range narrow {
		if b != UndeterminedByte && b != truth[i] {
			t.Fatalf("position %d: resolved %q but truth %q", i, b, truth[i])
		}
	}
}

// TestSymbolsReferenceContextFaithfully: symbol SymBase+j in the
// output must equal context byte j under any context (not just the
// true one) — the substitution property pass 2 relies on.
func TestSymbolsReferenceContextFaithfully(t *testing.T) {
	data := dna.Random(300_000, 23)
	payload, spans := fixture(t, data, 6)
	start := spans[1]
	res, err := DecodeFrom(payload, start.Event.StartBit, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Resolve with an arbitrary synthetic context; then decoding
	// plainly with that context prepended must agree wherever the
	// narrow view was undetermined.
	fake := make([]byte, WindowSize)
	for j := range fake {
		fake[j] = byte('a' + j%26)
	}
	resolved, err := Resolve(res.Out, fake, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Out {
		if v >= SymBase {
			if resolved[i] != fake[v-SymBase] {
				t.Fatalf("position %d: symbol %d resolved to %q, want %q",
					i, v-SymBase, resolved[i], fake[v-SymBase])
			}
		}
	}
}

func TestResolveWindowLongChunk(t *testing.T) {
	data := dna.Random(200_000, 24)
	payload, spans := fixture(t, data, 6)
	start := spans[1]
	res, err := DecodeFrom(payload, start.Event.StartBit, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, WindowSize)
	copy(ctx, data[start.OutStart-WindowSize:start.OutStart])
	w, err := ResolveWindow(res.Out, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, data[len(data)-WindowSize:]) {
		t.Fatal("final window mismatch")
	}
}

func TestResolveWindowShortChunk(t *testing.T) {
	// Output shorter than a window: the window must borrow the tail of
	// the context.
	out := []uint16{'A', 'B', uint16(SymBase + 5)}
	ctx := make([]byte, WindowSize)
	for j := range ctx {
		ctx[j] = byte(j % 251)
	}
	w, err := ResolveWindow(out, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer PutWindow(w)
	if len(w) != WindowSize {
		t.Fatalf("window size %d", len(w))
	}
	// Last 3 entries: A, B, ctx[5].
	if w[WindowSize-3] != 'A' || w[WindowSize-2] != 'B' || w[WindowSize-1] != ctx[5] {
		t.Fatal("tail of short-chunk window wrong")
	}
	// Front: ctx shifted by 3.
	if w[0] != ctx[3] || w[WindowSize-4] != ctx[WindowSize-1] {
		t.Fatal("front of short-chunk window wrong")
	}
}

func TestResolveBadContext(t *testing.T) {
	if _, err := Resolve([]uint16{1}, make([]byte, 100), nil); err == nil {
		t.Fatal("short context accepted")
	}
	if w, err := ResolveWindow([]uint16{1}, make([]byte, 100)); err == nil {
		PutWindow(w)
		t.Fatal("short context accepted")
	}
}

func TestCountAndWindows(t *testing.T) {
	out := []uint16{'A', SymBase, 'C', SymBase + 1, 'G', 'T', SymBase + 2, 'A'}
	if got := CountUndetermined(out); got != 3 {
		t.Fatalf("count %d", got)
	}
	fr := UndeterminedPerWindow(out, 4)
	if len(fr) != 2 || fr[0] != 0.5 || fr[1] != 0.25 {
		t.Fatalf("fractions %v", fr)
	}
	if UndeterminedPerWindow(out, 0) != nil {
		t.Fatal("zero window must yield nil")
	}
	// Trailing partial window below half size is dropped.
	fr = UndeterminedPerWindow(out[:5], 4)
	if len(fr) != 1 {
		t.Fatalf("partial window handling: %v", fr)
	}
}

func TestMaxOutputLimit(t *testing.T) {
	data := dna.Random(300_000, 25)
	payload, spans := fixture(t, data, 6)
	res, err := DecodeFrom(payload, spans[1].Event.StartBit, DecodeOptions{MaxOutput: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) < 10_000 || len(res.Out) > 10_000+258 {
		t.Fatalf("limit overshoot: %d", len(res.Out))
	}
	if res.Final {
		t.Fatal("must not have reached final block")
	}
}

func TestStopBit(t *testing.T) {
	data := dna.Random(300_000, 26)
	payload, spans := fixture(t, data, 6)
	if len(spans) < 4 {
		t.Skip("few blocks")
	}
	res, err := DecodeFrom(payload, spans[1].Event.StartBit, DecodeOptions{
		StopBit:     spans[3].Event.StartBit,
		RecordSpans: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EndBit != spans[3].Event.StartBit {
		t.Fatalf("EndBit %d, want %d", res.EndBit, spans[3].Event.StartBit)
	}
	if int64(len(res.Out)) != spans[3].OutStart-spans[1].OutStart {
		t.Fatalf("output %d bytes, want %d", len(res.Out), spans[3].OutStart-spans[1].OutStart)
	}
	if len(res.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(res.Spans))
	}
}

func TestBadStartBit(t *testing.T) {
	data := dna.Random(100_000, 27)
	payload, _ := fixture(t, data, 6)
	if _, err := DecodeFrom(payload, -1, DecodeOptions{}); err == nil {
		t.Fatal("negative bit accepted")
	}
	if _, err := DecodeFrom(payload, int64(len(payload))*8+1, DecodeOptions{}); err == nil {
		t.Fatal("past-end bit accepted")
	}
}

// Property: Narrow and Resolve agree on determined positions for
// arbitrary symbolic content.
func TestQuickNarrowResolveAgree(t *testing.T) {
	ctx := make([]byte, WindowSize)
	for j := range ctx {
		ctx[j] = byte(j*7 + 3)
	}
	f := func(raw []uint16) bool {
		out := make([]uint16, len(raw))
		for i, v := range raw {
			out[i] = v % (SymBase + WindowSize)
		}
		narrow := Narrow(out)
		resolved, err := Resolve(out, ctx, nil)
		if err != nil {
			return false
		}
		for i := range out {
			if out[i] < SymBase {
				if narrow[i] != byte(out[i]) || resolved[i] != byte(out[i]) {
					return false
				}
			} else {
				if narrow[i] != UndeterminedByte || resolved[i] != ctx[out[i]-SymBase] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
