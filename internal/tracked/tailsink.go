package tracked

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/flate"
)

// TailSink is the skip-mode counterpart of Sink: a flate.Visitor that
// decodes with a fully undetermined context but materialises only a
// running output count plus the trailing WindowSize symbols — the one
// part of a skipped chunk's output that pass 2 ever touches (the
// window propagated to the successor, w_{i+1} = resolve(tail(D_i),
// w_i)). Memory per chunk is O(WindowSize) instead of O(chunk output),
// which is what makes deep seeks, Size() passes, and streaming index
// builds cheap on the memory side.
//
// The backing buffer is a sliding window: the symbolic initial context
// occupies the first WindowSize entries, appends accumulate behind it,
// and once the buffer reaches tailSlide entries the trailing
// WindowSize are copied to the front. Back-references reach at most
// WindowSize entries behind the write position, so the retained tail
// always covers them.
type TailSink struct {
	buf   []uint16
	total int64 // output entries produced
	// Spans records per-block output extents (offsets are produced-
	// output offsets, i.e. exclude the context prefix).
	Spans     []flate.BlockSpan
	recording bool
	// Limit, when > 0, stops decoding (with flate.Stop) once the
	// output reaches this many entries.
	Limit int
	// StopBit, when > 0, stops cleanly before decoding a block whose
	// start bit is >= StopBit.
	StopBit int64
	// StoppedAt records the start bit of the block that triggered the
	// StopBit halt (-1 when no halt occurred).
	StoppedAt int64
}

// tailSlide is the buffer length at which the sink compacts: the
// trailing WindowSize entries slide to the front. Keeping one extra
// window of slack amortises the copy to ~2 bytes per output byte while
// the whole buffer stays small enough to live in cache.
const tailSlide = 2 * WindowSize

// tailBufPool recycles the fixed-size sliding buffers of tail sinks.
// It is deliberately separate from symBufPool: tail buffers never
// grow, while full-decode buffers grow to a chunk's whole output —
// mixing them would hand a small tail buffer to a full decode and pay
// the complete append-growth chain again (and again) instead of
// reusing an already-grown buffer.
var tailBufPool = sync.Pool{
	New: func() any { return make([]uint16, 0, tailSlide+flate.MaxMatch) },
}

func putTailBuf(b []uint16) {
	if cap(b) == 0 {
		return
	}
	tailBufPool.Put(b[:0]) //nolint:staticcheck
}

// NewTailSink returns a TailSink with a fully undetermined initial
// context. Its buffer comes from the tail pool; hand it back via
// Release (or the owning Result's Release).
func NewTailSink() *TailSink {
	s := &TailSink{buf: tailBufPool.Get().([]uint16), StoppedAt: -1}
	s.buf = s.buf[:WindowSize]
	for j := 0; j < WindowSize; j++ {
		s.buf[j] = uint16(SymBase + j)
	}
	return s
}

// Release returns the sliding buffer to the tail pool. The sink (and
// any Tail slice taken from it) must not be used afterwards.
func (s *TailSink) Release() {
	putTailBuf(s.buf)
	s.buf = nil
}

// RecordSpans enables per-block span recording.
func (s *TailSink) RecordSpans() { s.recording = true }

// Len returns the number of output entries decoded so far.
func (s *TailSink) Len() int64 { return s.total }

// Tail returns the trailing min(Len, WindowSize) output entries — the
// exact slice ResolveWindowInto needs to propagate a context window
// past this chunk. The slice aliases the sink's pooled buffer.
func (s *TailSink) Tail() []uint16 {
	if s.total >= WindowSize {
		return s.buf[len(s.buf)-WindowSize:]
	}
	return s.buf[int64(len(s.buf))-s.total:]
}

// slide compacts the buffer so the next append of up to n entries fits
// without growing past the slide threshold.
func (s *TailSink) slide(n int) {
	if len(s.buf)+n <= tailSlide {
		return
	}
	copy(s.buf, s.buf[len(s.buf)-WindowSize:])
	s.buf = s.buf[:WindowSize]
}

func (s *TailSink) BlockStart(ev flate.BlockEvent) error {
	if s.StopBit > 0 && ev.StartBit >= s.StopBit {
		s.StoppedAt = ev.StartBit
		return flate.Stop
	}
	if s.recording {
		s.Spans = append(s.Spans, flate.BlockSpan{Event: ev, OutStart: s.total})
	}
	return nil
}

func (s *TailSink) Literal(b byte) error {
	s.slide(1)
	s.buf = append(s.buf, uint16(b))
	s.total++
	if s.Limit > 0 && s.total >= int64(s.Limit) {
		return flate.Stop
	}
	return nil
}

func (s *TailSink) Match(length, dist int) error {
	s.slide(length)
	n := len(s.buf)
	src := n - dist // >= 0: at least WindowSize entries are always retained
	if dist >= length {
		s.buf = append(s.buf, s.buf[src:src+length]...)
	} else {
		for i := 0; i < length; i++ {
			s.buf = append(s.buf, s.buf[src+i])
		}
	}
	s.total += int64(length)
	if s.Limit > 0 && s.total >= int64(s.Limit) {
		return flate.Stop
	}
	return nil
}

func (s *TailSink) BlockEnd(nextBit int64) error {
	if s.recording && len(s.Spans) > 0 {
		last := &s.Spans[len(s.Spans)-1]
		last.EndBit = nextBit
		last.OutEnd = s.total
	}
	return nil
}

// DecodeTailFrom is DecodeFrom in tail-only mode: same decode, same
// spans and stop conditions, but the Result carries only the output
// length and the trailing window (Result.Out holds the trailing
// min(OutLen, WindowSize) symbols; Result.OutLen the true length).
// Memory stays O(WindowSize) regardless of the chunk's output size.
func DecodeTailFrom(data []byte, startBit int64, opts DecodeOptions) (*Result, error) {
	r, err := bitio.NewReaderAt(data, startBit)
	if err != nil {
		return nil, err
	}
	sink := NewTailSink()
	sink.Limit = opts.MaxOutput
	sink.StopBit = opts.StopBit
	if opts.RecordSpans {
		sink.RecordSpans()
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)

	final := false
	for {
		f, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			sink.Release()
			return nil, fmt.Errorf("tracked: tail decode at bit %d: %w", startBit, err)
		}
		if f {
			final = true
			break
		}
	}
	res := &Result{Out: sink.Tail(), OutLen: sink.total, Spans: sink.Spans, Final: final, buf: sink.buf, tailBuf: true}
	switch {
	case sink.StoppedAt >= 0:
		res.EndBit = sink.StoppedAt
	case len(sink.Spans) > 0 && sink.Spans[len(sink.Spans)-1].EndBit != 0:
		res.EndBit = sink.Spans[len(sink.Spans)-1].EndBit
	default:
		res.EndBit = r.BitPos()
	}
	return res, nil
}
