package tracked

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dna"
	"repro/internal/flate"
)

// TestTailDecodeMatchesFullDecode: the tail-only decode must agree
// with the full symbolic decode on everything pass 2 consumes from a
// skipped chunk — output length, trailing window, block spans, end
// bit — across compression levels and start blocks.
func TestTailDecodeMatchesFullDecode(t *testing.T) {
	data := dna.Random(500_000, 31)
	for _, level := range []int{1, 6, 9} {
		payload, spans := fixture(t, data, level)
		if len(spans) < 4 {
			t.Fatalf("level %d: want >=4 blocks", level)
		}
		for _, k := range []int{0, 1, len(spans) / 2} {
			start := spans[k].Event.StartBit
			full, err := DecodeFrom(payload, start, DecodeOptions{RecordSpans: true})
			if err != nil {
				t.Fatalf("level %d block %d: full: %v", level, k, err)
			}
			tail, err := DecodeTailFrom(payload, start, DecodeOptions{RecordSpans: true})
			if err != nil {
				t.Fatalf("level %d block %d: tail: %v", level, k, err)
			}
			if tail.OutLen != full.OutLen || tail.OutLen != int64(len(full.Out)) {
				t.Fatalf("level %d block %d: OutLen %d vs %d", level, k, tail.OutLen, full.OutLen)
			}
			want := full.Out
			if len(want) > WindowSize {
				want = want[len(want)-WindowSize:]
			}
			if !equalU16(tail.Out, want) {
				t.Fatalf("level %d block %d: trailing window differs", level, k)
			}
			if tail.EndBit != full.EndBit || tail.Final != full.Final {
				t.Fatalf("level %d block %d: end %d/%v vs %d/%v",
					level, k, tail.EndBit, tail.Final, full.EndBit, full.Final)
			}
			if len(tail.Spans) != len(full.Spans) {
				t.Fatalf("level %d block %d: %d spans vs %d", level, k, len(tail.Spans), len(full.Spans))
			}
			for i := range tail.Spans {
				if tail.Spans[i] != full.Spans[i] {
					t.Fatalf("level %d block %d: span %d differs: %+v vs %+v",
						level, k, i, tail.Spans[i], full.Spans[i])
				}
			}
			// And the propagated window — the thing skip mode exists to
			// produce — must be bit-identical.
			ctx := make([]byte, WindowSize)
			for j := range ctx {
				ctx[j] = byte(j * 7)
			}
			wFull, wTail := make([]byte, WindowSize), make([]byte, WindowSize)
			if err := ResolveWindowInto(wFull, full.Out, ctx); err != nil {
				t.Fatal(err)
			}
			if err := ResolveWindowInto(wTail, tail.Out, ctx); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wFull, wTail) {
				t.Fatalf("level %d block %d: resolved windows differ", level, k)
			}
			tail.Release()
			full.Release()
		}
	}
}

func equalU16(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTailDecodeStopBit: the StopBit halt must report the same
// boundary as the full sink's.
func TestTailDecodeStopBit(t *testing.T) {
	data := dna.Random(300_000, 32)
	payload, spans := fixture(t, data, 6)
	if len(spans) < 3 {
		t.Fatal("want >=3 blocks")
	}
	stop := spans[2].Event.StartBit
	full, err := DecodeFrom(payload, spans[1].Event.StartBit, DecodeOptions{StopBit: stop})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := DecodeTailFrom(payload, spans[1].Event.StartBit, DecodeOptions{StopBit: stop})
	if err != nil {
		t.Fatal(err)
	}
	if tail.EndBit != full.EndBit || tail.OutLen != full.OutLen {
		t.Fatalf("stop: end %d len %d vs end %d len %d", tail.EndBit, tail.OutLen, full.EndBit, full.OutLen)
	}
	tail.Release()
	full.Release()
}

// TestResolveCorruptSymbol: a symbolic value >= SymBase+WindowSize
// (corrupt buffer, or one paired with the wrong alphabet) must surface
// as ErrSymbolRange from every translation entry point — it used to
// panic with an index-out-of-range. Regression for the PR-5 bugfix.
func TestResolveCorruptSymbol(t *testing.T) {
	ctx := make([]byte, WindowSize)
	// Sizes straddle the 8-wide fast path and (at 128K) the table path.
	for _, n := range []int{1, 7, 8, 9, 300, 128 << 10} {
		out := make([]uint16, n)
		for i := range out {
			out[i] = 'A'
		}
		out[n-1] = SymBase + WindowSize // one past the last valid symbol
		if _, err := Resolve(out, ctx, nil); !errors.Is(err, ErrSymbolRange) {
			t.Fatalf("n=%d: Resolve err = %v, want ErrSymbolRange", n, err)
		}
		w := make([]byte, WindowSize)
		if err := ResolveWindowInto(w, out, ctx); !errors.Is(err, ErrSymbolRange) {
			t.Fatalf("n=%d: ResolveWindowInto err = %v, want ErrSymbolRange", n, err)
		}
	}
	// Maximum representable value as well.
	out := []uint16{0xffff}
	if _, err := Resolve(out, ctx, nil); !errors.Is(err, ErrSymbolRange) {
		t.Fatalf("max value: err = %v, want ErrSymbolRange", err)
	}
}

// TestResolveBatchedMatchesScalar: the 8-wide batched translation must
// agree with a straightforward per-entry loop at every alignment and
// symbol density.
func TestResolveBatchedMatchesScalar(t *testing.T) {
	ctx := make([]byte, WindowSize)
	for i := range ctx {
		ctx[i] = byte(255 - i%251)
	}
	scalar := func(out []uint16) []byte {
		dst := make([]byte, len(out))
		for i, v := range out {
			if v < SymBase {
				dst[i] = byte(v)
			} else {
				dst[i] = ctx[v-SymBase]
			}
		}
		return dst
	}
	// 1000 exercises the scalar region path, 200_000 the table path
	// (len >= resolveTabMin).
	for _, n := range []int{0, 1, 5, 8, 9, 16, 17, 1000, 200_000} {
		for _, density := range []int{0, 1, 3, 100} {
			out := make([]uint16, n)
			for i := range out {
				if density > 0 && i%100 < density {
					out[i] = uint16(SymBase + (i*31)%WindowSize)
				} else {
					out[i] = uint16('a' + i%26)
				}
			}
			got, err := Resolve(out, ctx, nil)
			if err != nil {
				t.Fatalf("n=%d density=%d: %v", n, density, err)
			}
			if !bytes.Equal(got, scalar(out)) {
				t.Fatalf("n=%d density=%d: batched translation differs", n, density)
			}
		}
	}
}

// TestSinkBlockEndWithoutStart: both symbolic sinks must treat a
// BlockEnd with no recorded span as a no-op (visitor misuse must not
// panic).
func TestSinkBlockEndWithoutStart(t *testing.T) {
	s := NewSink(0)
	s.RecordSpans()
	if err := s.BlockEnd(99); err != nil {
		t.Fatalf("Sink.BlockEnd: %v", err)
	}
	if len(s.Spans) != 0 {
		t.Fatalf("Sink recorded %d spans", len(s.Spans))
	}
	ts := NewTailSink()
	defer ts.Release()
	ts.RecordSpans()
	if err := ts.BlockEnd(99); err != nil {
		t.Fatalf("TailSink.BlockEnd: %v", err)
	}
	if len(ts.Spans) != 0 {
		t.Fatalf("TailSink recorded %d spans", len(ts.Spans))
	}
}

// TestTailSinkSlide: outputs far larger than the slide threshold keep
// the buffer bounded while the tail stays correct.
func TestTailSinkSlide(t *testing.T) {
	s := NewTailSink()
	defer s.Release()
	var want []uint16
	push := func(v uint16) {
		want = append(want, v)
	}
	// A long literal run, then overlapping matches (RLE), then a
	// max-distance match — together they cross several slides.
	for i := 0; i < 3*WindowSize; i++ {
		b := byte(i % 251)
		if err := s.Literal(b); err != nil {
			t.Fatal(err)
		}
		push(uint16(b))
	}
	if err := s.Match(flate.MaxMatch, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flate.MaxMatch; i++ {
		push(want[len(want)-1])
	}
	if err := s.Match(100, WindowSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		push(want[len(want)-WindowSize])
	}
	if got, total := s.Tail(), s.Len(); total != int64(len(want)) {
		t.Fatalf("total %d, want %d", total, len(want))
	} else if !equalU16(got, want[len(want)-WindowSize:]) {
		t.Fatal("tail mismatch after slides")
	}
	if len(s.buf) > tailSlide+flate.MaxMatch {
		t.Fatalf("buffer grew to %d entries", len(s.buf))
	}
}
