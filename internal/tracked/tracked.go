// Package tracked implements decompression with an undetermined
// context (Sections IV-B and VI-C of the paper).
//
// When decoding starts mid-stream, the 32 KiB history window that
// back-references reach into is unknown. Instead of a plain '?'
// character, the window is seeded with 32768 *unique* symbols
// U_0..U_32767 (the paper's ŵ). Decoding then proceeds normally:
// literals append resolved bytes, matches copy whatever the window
// holds — possibly symbols. The output is a sequence over the alphabet
// bytes ∪ {U_j}; every occurrence of U_j records precisely that "this
// output byte equals byte j of the unknown initial context", which is
// what makes the exact two-pass parallel algorithm possible.
package tracked

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/flate"
)

const (
	// WindowSize is the DEFLATE context size being tracked.
	WindowSize = flate.WindowSize

	// SymBase is the first symbolic value: cell value SymBase+j means
	// U_j. Values below SymBase are resolved bytes.
	SymBase = 256

	// UndeterminedByte is the narrow rendering of any unresolved
	// symbol, used for display and by the FASTQ heuristics ('?' in the
	// paper's figures).
	UndeterminedByte = '?'
)

// Sink is a flate.Visitor decoding into a symbolic stream. The
// backing buffer is prefixed with the 32768-symbol initial context so
// back-references resolve with plain slice indexing.
type Sink struct {
	buf []uint16 // [initial context | decoded output]
	// Spans records per-block output extents (offsets are into Out(),
	// i.e. exclude the context prefix).
	Spans     []flate.BlockSpan
	recording bool
	// Limit, when > 0, stops decoding (with flate.Stop) once the
	// output reaches this many entries.
	Limit int
	// StopBit, when > 0, stops cleanly before decoding a block whose
	// start bit is >= StopBit. Used by the parallel engine to decode
	// exactly one chunk.
	StopBit int64
	// StoppedAt records the start bit of the block that triggered the
	// StopBit halt (-1 when no halt occurred).
	StoppedAt int64
}

// NewSink returns a Sink with a fully undetermined initial context and
// capacity for sizeHint output entries.
func NewSink(sizeHint int) *Sink {
	s := &Sink{buf: getSymBuf(WindowSize + sizeHint), StoppedAt: -1}
	s.buf = s.buf[:WindowSize]
	for j := 0; j < WindowSize; j++ {
		s.buf[j] = uint16(SymBase + j)
	}
	return s
}

// --- Buffer pools -----------------------------------------------------
//
// The parallel engine decodes one symbolic buffer per chunk per batch
// and one resolved 32 KiB window per chunk; at streaming rates that is
// thousands of multi-megabyte allocations per file. The pools below let
// the hot path recycle both: symbolic buffers return via
// Result.Release once pass-2 translation has consumed them, windows via
// PutWindow once the propagation chain moves past them.

var symBufPool = sync.Pool{
	New: func() any { return make([]uint16, 0, WindowSize+64<<10) },
}

func getSymBuf(capHint int) []uint16 {
	b := symBufPool.Get().([]uint16)
	if cap(b) < capHint {
		symBufPool.Put(b[:0]) //nolint:staticcheck
		b = make([]uint16, 0, capHint)
	}
	return b[:0]
}

func putSymBuf(b []uint16) {
	if cap(b) == 0 {
		return
	}
	symBufPool.Put(b[:0]) //nolint:staticcheck
}

var windowPool = sync.Pool{
	New: func() any { return make([]byte, WindowSize) },
}

// GetWindow returns a zeroed WindowSize context buffer from the pool.
func GetWindow() []byte {
	w := windowPool.Get().([]byte)
	clear(w)
	return w
}

// PutWindow returns a window obtained from GetWindow (or ResolveWindow)
// to the pool. Putting nil is a no-op.
func PutWindow(w []byte) {
	if cap(w) < WindowSize {
		return
	}
	windowPool.Put(w[:WindowSize]) //nolint:staticcheck
}

// RecordSpans enables per-block span recording.
func (s *Sink) RecordSpans() { s.recording = true }

// Out returns the decoded symbolic stream (excluding the context
// prefix). The slice aliases the sink's buffer.
func (s *Sink) Out() []uint16 { return s.buf[WindowSize:] }

// Len returns the number of output entries decoded so far.
func (s *Sink) Len() int { return len(s.buf) - WindowSize }

func (s *Sink) BlockStart(ev flate.BlockEvent) error {
	if s.StopBit > 0 && ev.StartBit >= s.StopBit {
		s.StoppedAt = ev.StartBit
		return flate.Stop
	}
	if s.recording {
		s.Spans = append(s.Spans, flate.BlockSpan{Event: ev, OutStart: int64(s.Len())})
	}
	return nil
}

func (s *Sink) Literal(b byte) error {
	s.buf = append(s.buf, uint16(b))
	if s.Limit > 0 && s.Len() >= s.Limit {
		return flate.Stop
	}
	return nil
}

func (s *Sink) Match(length, dist int) error {
	n := len(s.buf)
	src := n - dist // always >= 0: the context prefix absorbs any distance
	if dist >= length {
		s.buf = append(s.buf, s.buf[src:src+length]...)
	} else {
		for i := 0; i < length; i++ {
			s.buf = append(s.buf, s.buf[src+i])
		}
	}
	if s.Limit > 0 && s.Len() >= s.Limit {
		return flate.Stop
	}
	return nil
}

func (s *Sink) BlockEnd(nextBit int64) error {
	if s.recording && len(s.Spans) > 0 {
		last := &s.Spans[len(s.Spans)-1]
		last.EndBit = nextBit
		last.OutEnd = int64(s.Len())
	}
	return nil
}

// Result bundles a tracked decode.
type Result struct {
	Out    []uint16
	Spans  []flate.BlockSpan
	EndBit int64 // bit offset after the last fully decoded block
	Final  bool  // whether the stream's final block was reached

	buf []uint16 // pooled backing of Out (context prefix included)
}

// Release returns the decode buffer backing Out to the package pool.
// Out (and any slice aliasing it) must not be used afterwards; Spans
// remain valid. Calling Release twice, or on a Result that owns no
// pooled buffer, is a no-op.
func (r *Result) Release() {
	putSymBuf(r.buf)
	r.buf, r.Out = nil, nil
}

// DecodeOptions tunes DecodeFrom.
type DecodeOptions struct {
	// MaxOutput stops decoding after this many output bytes (0 = no
	// limit).
	MaxOutput int
	// StopBit stops before any block starting at or beyond this bit.
	StopBit int64
	// RecordSpans toggles per-block span collection.
	RecordSpans bool
	// SizeHint pre-sizes the output buffer.
	SizeHint int
}

// DecodeFrom decompresses a DEFLATE stream starting at startBit of
// data with a fully undetermined context. The start must be a true
// block boundary (use internal/blockfind to locate one). Decoding ends
// at the stream's final block, at opts.StopBit, or after
// opts.MaxOutput bytes, whichever comes first.
func DecodeFrom(data []byte, startBit int64, opts DecodeOptions) (*Result, error) {
	r, err := bitio.NewReaderAt(data, startBit)
	if err != nil {
		return nil, err
	}
	sink := NewSink(opts.SizeHint)
	sink.Limit = opts.MaxOutput
	sink.StopBit = opts.StopBit
	if opts.RecordSpans {
		sink.RecordSpans()
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)

	final := false
	for {
		f, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			putSymBuf(sink.buf)
			return nil, fmt.Errorf("tracked: decode at bit %d: %w", startBit, err)
		}
		if f {
			final = true
			break
		}
	}
	res := &Result{Out: sink.Out(), Spans: sink.Spans, Final: final, buf: sink.buf}
	switch {
	case sink.StoppedAt >= 0:
		// Halted at a successor's block start: the decoder had already
		// consumed part of that block's header, so report the true
		// boundary.
		res.EndBit = sink.StoppedAt
	case len(sink.Spans) > 0 && sink.Spans[len(sink.Spans)-1].EndBit != 0:
		res.EndBit = sink.Spans[len(sink.Spans)-1].EndBit
	default:
		res.EndBit = r.BitPos()
	}
	return res, nil
}

// Resolve replaces every symbolic entry of out with the corresponding
// byte of ctx (the true initial context, len == WindowSize), writing
// bytes into dst (allocated when nil). It is the pass-2 translation of
// Figure 3: out[i] == SymBase+j  =>  dst[i] = ctx[j].
func Resolve(out []uint16, ctx []byte, dst []byte) ([]byte, error) {
	if len(ctx) != WindowSize {
		return nil, fmt.Errorf("tracked: context must be %d bytes, got %d", WindowSize, len(ctx))
	}
	if cap(dst) < len(out) {
		dst = make([]byte, len(out))
	}
	dst = dst[:len(out)]
	for i, v := range out {
		if v < SymBase {
			dst[i] = byte(v)
		} else {
			dst[i] = ctx[v-SymBase]
		}
	}
	return dst, nil
}

// ResolveWindow computes the resolved last-32-KiB window of a chunk's
// output given that chunk's (resolved) initial context. This is the
// cheap sequential step of pass 2: w_{i+1} = resolve(tail(D_i), w_i).
// When the output is shorter than a window, the leading part of the
// result comes from the tail of the context itself. The returned
// window comes from the package pool; hand it back with PutWindow when
// the propagation chain moves past it.
func ResolveWindow(out []uint16, ctx []byte) ([]byte, error) {
	w := windowPool.Get().([]byte)
	if err := ResolveWindowInto(w, out, ctx); err != nil {
		PutWindow(w)
		return nil, err
	}
	return w, nil
}

// ResolveWindowInto is ResolveWindow writing into a caller-provided
// WindowSize buffer (every byte is overwritten).
func ResolveWindowInto(w []byte, out []uint16, ctx []byte) error {
	if len(ctx) != WindowSize {
		return fmt.Errorf("tracked: context must be %d bytes, got %d", WindowSize, len(ctx))
	}
	if len(w) != WindowSize {
		return fmt.Errorf("tracked: window buffer must be %d bytes, got %d", WindowSize, len(w))
	}
	n := len(out)
	if n >= WindowSize {
		_, err := resolveInto(w, out[n-WindowSize:], ctx)
		return err
	}
	// Short chunk: window = last (WindowSize-n) bytes of ctx ++ resolved out.
	copy(w, ctx[n:])
	_, err := resolveInto(w[WindowSize-n:], out, ctx)
	return err
}

func resolveInto(dst []byte, out []uint16, ctx []byte) ([]byte, error) {
	for i, v := range out {
		if v < SymBase {
			dst[i] = byte(v)
		} else {
			dst[i] = ctx[v-SymBase]
		}
	}
	return dst, nil
}

// Narrow renders a symbolic stream as bytes with every unresolved
// symbol shown as UndeterminedByte ('?'): the representation used by
// the paper's figures and the FASTQ heuristic parser.
func Narrow(out []uint16) []byte {
	dst := make([]byte, len(out))
	for i, v := range out {
		if v < SymBase {
			dst[i] = byte(v)
		} else {
			dst[i] = UndeterminedByte
		}
	}
	return dst
}

// CountUndetermined returns the number of symbolic entries in out.
func CountUndetermined(out []uint16) int {
	n := 0
	for _, v := range out {
		if v >= SymBase {
			n++
		}
	}
	return n
}

// UndeterminedPerWindow partitions out into consecutive non-overlapping
// windows of size w and returns the fraction of undetermined entries
// in each (the y-axis of Figure 2). A trailing partial window is
// included when at least half full.
func UndeterminedPerWindow(out []uint16, w int) []float64 {
	if w <= 0 {
		return nil
	}
	var fracs []float64
	for start := 0; start < len(out); start += w {
		end := start + w
		if end > len(out) {
			if len(out)-start < w/2 {
				break
			}
			end = len(out)
		}
		u := CountUndetermined(out[start:end])
		fracs = append(fracs, float64(u)/float64(end-start))
	}
	return fracs
}
