// Package tracked implements decompression with an undetermined
// context (Sections IV-B and VI-C of the paper).
//
// When decoding starts mid-stream, the 32 KiB history window that
// back-references reach into is unknown. Instead of a plain '?'
// character, the window is seeded with 32768 *unique* symbols
// U_0..U_32767 (the paper's ŵ). Decoding then proceeds normally:
// literals append resolved bytes, matches copy whatever the window
// holds — possibly symbols. The output is a sequence over the alphabet
// bytes ∪ {U_j}; every occurrence of U_j records precisely that "this
// output byte equals byte j of the unknown initial context", which is
// what makes the exact two-pass parallel algorithm possible.
package tracked

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/flate"
)

const (
	// WindowSize is the DEFLATE context size being tracked.
	WindowSize = flate.WindowSize

	// SymBase is the first symbolic value: cell value SymBase+j means
	// U_j. Values below SymBase are resolved bytes.
	SymBase = 256

	// UndeterminedByte is the narrow rendering of any unresolved
	// symbol, used for display and by the FASTQ heuristics ('?' in the
	// paper's figures).
	UndeterminedByte = '?'
)

// Sink is a flate.Visitor decoding into a symbolic stream. The
// backing buffer is prefixed with the 32768-symbol initial context so
// back-references resolve with plain slice indexing.
type Sink struct {
	buf []uint16 // [initial context | decoded output]
	// Spans records per-block output extents (offsets are into Out(),
	// i.e. exclude the context prefix).
	Spans     []flate.BlockSpan
	recording bool
	// Limit, when > 0, stops decoding (with flate.Stop) once the
	// output reaches this many entries.
	Limit int
	// StopBit, when > 0, stops cleanly before decoding a block whose
	// start bit is >= StopBit. Used by the parallel engine to decode
	// exactly one chunk.
	StopBit int64
	// StoppedAt records the start bit of the block that triggered the
	// StopBit halt (-1 when no halt occurred).
	StoppedAt int64
}

// NewSink returns a Sink with a fully undetermined initial context and
// capacity for sizeHint output entries.
func NewSink(sizeHint int) *Sink {
	s := &Sink{buf: getSymBuf(WindowSize + sizeHint), StoppedAt: -1}
	s.buf = s.buf[:WindowSize]
	for j := 0; j < WindowSize; j++ {
		s.buf[j] = uint16(SymBase + j)
	}
	return s
}

// --- Buffer pools -----------------------------------------------------
//
// The parallel engine decodes one symbolic buffer per chunk per batch
// and one resolved 32 KiB window per chunk; at streaming rates that is
// thousands of multi-megabyte allocations per file. The pools below let
// the hot path recycle both: symbolic buffers return via
// Result.Release once pass-2 translation has consumed them, windows via
// PutWindow once the propagation chain moves past them.

var symBufPool = sync.Pool{
	New: func() any { return make([]uint16, 0, WindowSize+64<<10) },
}

func getSymBuf(capHint int) []uint16 {
	b := symBufPool.Get().([]uint16)
	if cap(b) < capHint {
		symBufPool.Put(b[:0]) //nolint:staticcheck
		b = make([]uint16, 0, capHint)
	}
	return b[:0]
}

func putSymBuf(b []uint16) {
	if cap(b) == 0 {
		return
	}
	symBufPool.Put(b[:0]) //nolint:staticcheck
}

var windowPool = sync.Pool{
	New: func() any { return make([]byte, WindowSize) },
}

// GetWindow returns a zeroed WindowSize context buffer from the pool.
func GetWindow() []byte {
	w := windowPool.Get().([]byte)
	clear(w)
	return w
}

// PutWindow returns a window obtained from GetWindow (or ResolveWindow)
// to the pool. Putting nil is a no-op.
func PutWindow(w []byte) {
	if cap(w) < WindowSize {
		return
	}
	windowPool.Put(w[:WindowSize]) //nolint:staticcheck
}

// RecordSpans enables per-block span recording.
func (s *Sink) RecordSpans() { s.recording = true }

// Out returns the decoded symbolic stream (excluding the context
// prefix). The slice aliases the sink's buffer.
func (s *Sink) Out() []uint16 { return s.buf[WindowSize:] }

// Len returns the number of output entries decoded so far.
func (s *Sink) Len() int { return len(s.buf) - WindowSize }

func (s *Sink) BlockStart(ev flate.BlockEvent) error {
	if s.StopBit > 0 && ev.StartBit >= s.StopBit {
		s.StoppedAt = ev.StartBit
		return flate.Stop
	}
	if s.recording {
		s.Spans = append(s.Spans, flate.BlockSpan{Event: ev, OutStart: int64(s.Len())})
	}
	return nil
}

func (s *Sink) Literal(b byte) error {
	s.buf = append(s.buf, uint16(b))
	if s.Limit > 0 && s.Len() >= s.Limit {
		return flate.Stop
	}
	return nil
}

func (s *Sink) Match(length, dist int) error {
	n := len(s.buf)
	src := n - dist // always >= 0: the context prefix absorbs any distance
	if dist >= length {
		s.buf = append(s.buf, s.buf[src:src+length]...)
	} else {
		for i := 0; i < length; i++ {
			s.buf = append(s.buf, s.buf[src+i])
		}
	}
	if s.Limit > 0 && s.Len() >= s.Limit {
		return flate.Stop
	}
	return nil
}

func (s *Sink) BlockEnd(nextBit int64) error {
	if s.recording && len(s.Spans) > 0 {
		last := &s.Spans[len(s.Spans)-1]
		last.EndBit = nextBit
		last.OutEnd = int64(s.Len())
	}
	return nil
}

// Result bundles a tracked decode.
type Result struct {
	// Out is the decoded symbolic stream. After DecodeFrom it is the
	// full output; after DecodeTailFrom only the trailing
	// min(OutLen, WindowSize) entries survive.
	Out []uint16
	// OutLen is the total number of output entries decoded — equal to
	// len(Out) for a full decode, and the true (possibly much larger)
	// output length for a tail-only decode.
	OutLen int64
	Spans  []flate.BlockSpan
	EndBit int64 // bit offset after the last fully decoded block
	Final  bool  // whether the stream's final block was reached

	buf     []uint16 // pooled backing of Out (context prefix included)
	tailBuf bool     // buf belongs to the tail pool, not the full-size pool
}

// Release returns the decode buffer backing Out to its package pool.
// Out (and any slice aliasing it) must not be used afterwards; Spans
// remain valid. Calling Release twice, or on a Result that owns no
// pooled buffer, is a no-op.
func (r *Result) Release() {
	if r.tailBuf {
		putTailBuf(r.buf)
	} else {
		putSymBuf(r.buf)
	}
	r.buf, r.Out = nil, nil
}

// DecodeOptions tunes DecodeFrom.
type DecodeOptions struct {
	// MaxOutput stops decoding after this many output bytes (0 = no
	// limit).
	MaxOutput int
	// StopBit stops before any block starting at or beyond this bit.
	StopBit int64
	// RecordSpans toggles per-block span collection.
	RecordSpans bool
	// SizeHint pre-sizes the output buffer.
	SizeHint int
}

// DecodeFrom decompresses a DEFLATE stream starting at startBit of
// data with a fully undetermined context. The start must be a true
// block boundary (use internal/blockfind to locate one). Decoding ends
// at the stream's final block, at opts.StopBit, or after
// opts.MaxOutput bytes, whichever comes first.
func DecodeFrom(data []byte, startBit int64, opts DecodeOptions) (*Result, error) {
	r, err := bitio.NewReaderAt(data, startBit)
	if err != nil {
		return nil, err
	}
	sink := NewSink(opts.SizeHint)
	sink.Limit = opts.MaxOutput
	sink.StopBit = opts.StopBit
	if opts.RecordSpans {
		sink.RecordSpans()
	}
	dec := flate.GetDecoder(flate.Options{})
	defer flate.PutDecoder(dec)

	final := false
	for {
		f, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			putSymBuf(sink.buf)
			return nil, fmt.Errorf("tracked: decode at bit %d: %w", startBit, err)
		}
		if f {
			final = true
			break
		}
	}
	res := &Result{Out: sink.Out(), OutLen: int64(sink.Len()), Spans: sink.Spans, Final: final, buf: sink.buf}
	switch {
	case sink.StoppedAt >= 0:
		// Halted at a successor's block start: the decoder had already
		// consumed part of that block's header, so report the true
		// boundary.
		res.EndBit = sink.StoppedAt
	case len(sink.Spans) > 0 && sink.Spans[len(sink.Spans)-1].EndBit != 0:
		res.EndBit = sink.Spans[len(sink.Spans)-1].EndBit
	default:
		res.EndBit = r.BitPos()
	}
	return res, nil
}

// ErrSymbolRange reports a symbolic entry >= SymBase+WindowSize: no
// decode ever produces one, so the buffer is corrupt or was paired
// with the wrong alphabet. The translation loops below surface it as
// an error instead of indexing out of the context.
var ErrSymbolRange = errors.New("tracked: symbolic value out of context range")

// Resolve replaces every symbolic entry of out with the corresponding
// byte of ctx (the true initial context, len == WindowSize), writing
// bytes into dst (allocated when nil). It is the pass-2 translation of
// Figure 3: out[i] == SymBase+j  =>  dst[i] = ctx[j].
func Resolve(out []uint16, ctx []byte, dst []byte) ([]byte, error) {
	if len(ctx) != WindowSize {
		return nil, fmt.Errorf("tracked: context must be %d bytes, got %d", WindowSize, len(ctx))
	}
	if cap(dst) < len(out) {
		dst = make([]byte, len(out))
	}
	dst = dst[:len(out)]
	return resolveInto(dst, out, ctx)
}

// ResolveWindow computes the resolved last-32-KiB window of a chunk's
// output given that chunk's (resolved) initial context. This is the
// cheap sequential step of pass 2: w_{i+1} = resolve(tail(D_i), w_i).
// When the output is shorter than a window, the leading part of the
// result comes from the tail of the context itself. The returned
// window comes from the package pool; hand it back with PutWindow when
// the propagation chain moves past it.
func ResolveWindow(out []uint16, ctx []byte) ([]byte, error) {
	w := windowPool.Get().([]byte)
	if err := ResolveWindowInto(w, out, ctx); err != nil {
		PutWindow(w)
		return nil, err
	}
	return w, nil
}

// ResolveWindowInto is ResolveWindow writing into a caller-provided
// WindowSize buffer (every byte is overwritten).
func ResolveWindowInto(w []byte, out []uint16, ctx []byte) error {
	if len(ctx) != WindowSize {
		return fmt.Errorf("tracked: context must be %d bytes, got %d", WindowSize, len(ctx))
	}
	if len(w) != WindowSize {
		return fmt.Errorf("tracked: window buffer must be %d bytes, got %d", WindowSize, len(w))
	}
	n := len(out)
	if n >= WindowSize {
		_, err := resolveInto(w, out[n-WindowSize:], ctx)
		return err
	}
	// Short chunk: window = last (WindowSize-n) bytes of ctx ++ resolved out.
	copy(w, ctx[n:])
	_, err := resolveInto(w[WindowSize-n:], out, ctx)
	return err
}

// resolveInto is the translation hot loop. Symbolic entries cluster
// near the start of a chunk (the reach of its unknown context), so for
// realistic streams the bulk of the buffer is all-literal runs. Both
// kernels alternate between a packed mode — eight entries checked with
// one OR, clean groups narrowed with a single 64-bit store — and a
// symbolic-region mode: large buffers take one branch-free table load
// per entry in 4096-entry blocks (resolveSpanTab), window-sized ones a
// scalar per-entry loop in 256-entry blocks (resolveSpanScalar). In
// both, symbols are bounds-checked so a value >= SymBase+WindowSize
// (corrupt or mis-paired buffer) surfaces as ErrSymbolRange rather
// than a panic.
func resolveInto(dst []byte, out []uint16, ctx []byte) ([]byte, error) {
	var bad int
	if len(out) >= resolveTabMin {
		// Large buffers translate symbolic regions branchlessly through
		// a prepended-literal lookup table (33 KiB build, amortised).
		t := getResolveTab(ctx)
		bad = resolveSpanTab(dst, out, t[:])
		putResolveTab(t)
	} else {
		bad = resolveSpanScalar(dst, out, ctx)
	}
	if bad >= 0 {
		return nil, fmt.Errorf("%w: entry %d = %d", ErrSymbolRange, bad, out[bad])
	}
	return dst, nil
}

// resolveTabMin is the output size from which building a lookup table
// pays for itself. Window-sized resolves (<= WindowSize entries) stay
// on the scalar path.
const resolveTabMin = 64 << 10

// resolveTab is a translation table: 256 identity bytes (the literals)
// followed by the 32 KiB context, so tab[v] resolves every valid entry
// with a single load — no data-dependent branch. Recycled through a
// small mutex-guarded freelist rather than a sync.Pool: pools are
// emptied at every GC cycle, and the translation runs right where the
// engine churns multi-megabyte buffers, so a pool would re-allocate
// the table on exactly the hot path it serves.
type resolveTab [256 + WindowSize]byte

var resolveTabs struct {
	sync.Mutex
	free []*resolveTab // guarded by Mutex
}

const resolveTabKeep = 16 // bounded retention: at most ~528 KiB parked

func getResolveTab(ctx []byte) *resolveTab {
	resolveTabs.Lock()
	var t *resolveTab
	if n := len(resolveTabs.free); n > 0 {
		t = resolveTabs.free[n-1]
		resolveTabs.free = resolveTabs.free[:n-1]
	}
	resolveTabs.Unlock()
	if t == nil {
		t = new(resolveTab)
	}
	for i := 0; i < 256; i++ {
		t[i] = byte(i)
	}
	copy(t[256:], ctx)
	return t
}

func putResolveTab(t *resolveTab) {
	resolveTabs.Lock()
	if len(resolveTabs.free) < resolveTabKeep {
		resolveTabs.free = append(resolveTabs.free, t)
	}
	resolveTabs.Unlock()
}

// The two translation kernels below are call-free (errors are reported
// as an index so the hot loops stay leaf code): the return value is
// the index of the first out-of-range symbol, or -1 on success.

// resolveSpanTab translates with the prepended-literal lookup table:
// packed 8-wide stores through all-literal runs, and one branch-free
// table load per entry inside symbolic regions (a large block each,
// with packed mode re-probing between blocks — a failed probe costs a
// single group check, so no exit bookkeeping is needed).
func resolveSpanTab(dst []byte, out []uint16, tab []byte) int {
	n := len(out)
	i := 0
	for i < n {
		for i+8 <= n {
			v0, v1, v2, v3 := out[i], out[i+1], out[i+2], out[i+3]
			v4, v5, v6, v7 := out[i+4], out[i+5], out[i+6], out[i+7]
			if v0|v1|v2|v3|v4|v5|v6|v7 >= SymBase {
				break
			}
			// All-literal group: one packed store (values are < 256, so
			// each entry's low byte is the byte).
			u := uint64(v0) | uint64(v1)<<8 | uint64(v2)<<16 | uint64(v3)<<24 |
				uint64(v4)<<32 | uint64(v5)<<40 | uint64(v6)<<48 | uint64(v7)<<56
			binary.LittleEndian.PutUint64(dst[i:i+8], u)
			i += 8
		}
		if i >= n {
			break
		}
		end := i + 4096
		if end > n {
			end = n
		}
		o := out[i:end]
		d := dst[i:end]
		d = d[:len(o)] // one explicit bound so the loop stays check-free
		for j, v := range o {
			if int(v) >= len(tab) {
				return i + j
			}
			d[j] = tab[v]
		}
		i = end
	}
	return -1
}

// resolveSpanScalar is the table-free kernel for small inputs (window
// resolves): packed mode through literal runs, scalar 256-entry blocks
// inside symbolic regions, returning to packed mode after a
// symbol-free block.
func resolveSpanScalar(dst []byte, out []uint16, ctx []byte) int {
	n := len(out)
	i := 0
	for i < n {
		for i+8 <= n {
			v0, v1, v2, v3 := out[i], out[i+1], out[i+2], out[i+3]
			v4, v5, v6, v7 := out[i+4], out[i+5], out[i+6], out[i+7]
			if v0|v1|v2|v3|v4|v5|v6|v7 >= SymBase {
				break
			}
			u := uint64(v0) | uint64(v1)<<8 | uint64(v2)<<16 | uint64(v3)<<24 |
				uint64(v4)<<32 | uint64(v5)<<40 | uint64(v6)<<48 | uint64(v7)<<56
			binary.LittleEndian.PutUint64(dst[i:i+8], u)
			i += 8
		}
		if i >= n {
			break
		}
		for i < n {
			end := i + 256
			if end > n {
				end = n
			}
			o := out[i:end]
			d := dst[i:end]
			d = d[:len(o)]
			syms := 0
			for j, v := range o {
				if v < SymBase {
					d[j] = byte(v)
					continue
				}
				k := int(v) - SymBase
				if k >= len(ctx) {
					return i + j
				}
				d[j] = ctx[k]
				syms++
			}
			i = end
			if syms == 0 {
				break // clean block: the symbolic run has ended
			}
		}
	}
	return -1
}

// Narrow renders a symbolic stream as bytes with every unresolved
// symbol shown as UndeterminedByte ('?'): the representation used by
// the paper's figures and the FASTQ heuristic parser.
func Narrow(out []uint16) []byte {
	dst := make([]byte, len(out))
	for i, v := range out {
		if v < SymBase {
			dst[i] = byte(v)
		} else {
			dst[i] = UndeterminedByte
		}
	}
	return dst
}

// CountUndetermined returns the number of symbolic entries in out.
func CountUndetermined(out []uint16) int {
	n := 0
	for _, v := range out {
		if v >= SymBase {
			n++
		}
	}
	return n
}

// UndeterminedPerWindow partitions out into consecutive non-overlapping
// windows of size w and returns the fraction of undetermined entries
// in each (the y-axis of Figure 2). A trailing partial window is
// included when at least half full.
func UndeterminedPerWindow(out []uint16, w int) []float64 {
	if w <= 0 {
		return nil
	}
	var fracs []float64
	for start := 0; start < len(out); start += w {
		end := start + w
		if end > len(out) {
			if len(out)-start < w/2 {
				break
			}
			end = len(out)
		}
		u := CountUndetermined(out[start:end])
		fracs = append(fracs, float64(u)/float64(end-start))
	}
	return fracs
}
