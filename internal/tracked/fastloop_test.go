package tracked

import (
	"errors"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dna"
	"repro/internal/flate"
)

// decodeSinkWith drives a Sink through a decoder with the fast loop
// toggled, mirroring DecodeFrom but exposing NoFast.
func decodeSinkWith(t *testing.T, payload []byte, startBit int64, limit int, noFast bool) *Sink {
	t.Helper()
	r, err := bitio.NewReaderAt(payload, startBit)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink(0)
	sink.Limit = limit
	sink.RecordSpans()
	dec := flate.NewDecoder(flate.Options{NoFast: noFast})
	for {
		f, err := dec.DecodeBlock(r, sink)
		if err != nil {
			if errors.Is(err, flate.Stop) {
				break
			}
			t.Fatalf("noFast=%v: %v", noFast, err)
		}
		if f {
			break
		}
	}
	return sink
}

// TestFastSymbolicParity pins the fast symbolic loop to the scalar
// one: mid-stream decodes with an undetermined context must produce
// identical symbol sequences (including U_j placement) and spans.
func TestFastSymbolicParity(t *testing.T) {
	data := dna.Random(400_000, 31)
	for _, level := range []int{1, 6, 9} {
		payload, spans := fixture(t, data, level)
		for _, k := range []int{0, 1, len(spans) / 2} {
			startBit := spans[k].Event.StartBit
			fast := decodeSinkWith(t, payload, startBit, 0, false)
			scalar := decodeSinkWith(t, payload, startBit, 0, true)
			fo, so := fast.Out(), scalar.Out()
			if len(fo) != len(so) {
				t.Fatalf("level %d block %d: length %d vs %d", level, k, len(fo), len(so))
			}
			for i := range fo {
				if fo[i] != so[i] {
					t.Fatalf("level %d block %d: symbol %d: %d vs %d", level, k, i, fo[i], so[i])
				}
			}
			if len(fast.Spans) != len(scalar.Spans) {
				t.Fatalf("level %d block %d: span count %d vs %d", level, k, len(fast.Spans), len(scalar.Spans))
			}
			for i := range fast.Spans {
				if fast.Spans[i] != scalar.Spans[i] {
					t.Fatalf("level %d block %d: span %d mismatch", level, k, i)
				}
			}
		}
	}
}

// TestFastSymbolicLimitParity checks Limit stops land on the same
// entry count on both paths, including limits inside packed pairs and
// matches.
func TestFastSymbolicLimitParity(t *testing.T) {
	data := dna.Random(200_000, 32)
	payload, spans := fixture(t, data, 6)
	startBit := spans[1].Event.StartBit
	for _, limit := range []int{1, 2, 3, 100, WindowSize, 150_000} {
		fast := decodeSinkWith(t, payload, startBit, limit, false)
		scalar := decodeSinkWith(t, payload, startBit, limit, true)
		if fast.Len() != scalar.Len() {
			t.Fatalf("limit %d: %d vs %d entries", limit, fast.Len(), scalar.Len())
		}
		fo, so := fast.Out(), scalar.Out()
		for i := range fo {
			if fo[i] != so[i] {
				t.Fatalf("limit %d: symbol %d mismatch", limit, i)
			}
		}
	}
}

// TestFastTailSymbolicParity pins the tail-only fast loop to scalar:
// same totals, same trailing window, through multiple slides.
func TestFastTailSymbolicParity(t *testing.T) {
	data := dna.Random(500_000, 33) // many windows of output
	payload, spans := fixture(t, data, 6)

	run := func(noFast bool, startBit int64, limit int) (int64, []uint16) {
		r, err := bitio.NewReaderAt(payload, startBit)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewTailSink()
		sink.Limit = limit
		dec := flate.NewDecoder(flate.Options{NoFast: noFast})
		for {
			f, err := dec.DecodeBlock(r, sink)
			if err != nil {
				if errors.Is(err, flate.Stop) {
					break
				}
				t.Fatalf("noFast=%v: %v", noFast, err)
			}
			if f {
				break
			}
		}
		tail := append([]uint16(nil), sink.Tail()...)
		total := sink.total
		sink.Release()
		return total, tail
	}

	for _, k := range []int{0, 1} {
		startBit := spans[k].Event.StartBit
		for _, limit := range []int{0, 7, WindowSize + 3, 400_000} {
			fn, ft := run(false, startBit, limit)
			sn, st := run(true, startBit, limit)
			if fn != sn {
				t.Fatalf("block %d limit %d: total %d vs %d", k, limit, fn, sn)
			}
			if len(ft) != len(st) {
				t.Fatalf("block %d limit %d: tail length %d vs %d", k, limit, len(ft), len(st))
			}
			for i := range ft {
				if ft[i] != st[i] {
					t.Fatalf("block %d limit %d: tail entry %d: %d vs %d", k, limit, i, ft[i], st[i])
				}
			}
		}
	}
}
