package tracked

import (
	"repro/internal/bitio"
	"repro/internal/flate"
	"repro/internal/huffman"
)

// This file mirrors internal/flate's multi-symbol fast loop for the
// symbolic pass-1 decoders: the same wide-table lookups and one
// 64-bit refill per token, but writing uint16 cells so back-references
// into the undetermined context copy symbols exactly like the scalar
// Sink.Match does. Both Sink and TailSink implement
// flate.FastTokenSink, so pass-1 chunk decodes take the fast path
// automatically.

const (
	// fastMinBits matches flate's floor: one refill covers a worst-case
	// litlen + extra + dist code + extra token (48 bits).
	fastMinBits = 48
	// fastSlack is the write headroom a round must keep beyond its
	// budget: one maximal match plus a packed literal pair.
	fastSlack = flate.MaxMatch + 2
)

type fastStatus uint8

const (
	fastMore fastStatus = iota // out of bits, room, or budget
	fastEOB                    // end-of-block code consumed
	fastBail                   // next token needs the scalar loop
)

// decodeFastSyms is the symbolic twin of flate's byte kernel: tokens
// decode from r into out[w:] until the bit buffer runs low, the write
// budget maxW is reached, end-of-block, or a token that needs the
// scalar loop (bits stay unconsumed on bail). Callers guarantee
// len(out) >= maxW-1+flate.MaxMatch and minSrc <= any legal source.
func decodeFastSyms(r *bitio.Reader, lit *huffman.LitLenFast, dist *huffman.DistFast, out []uint16, w, maxW, minSrc int) (int, fastStatus) {
	for {
		r.Refill()
		if r.Bits() < fastMinBits {
			return w, fastMore
		}
		if w >= maxW {
			return w, fastMore
		}
		x := r.Acc()
		e := lit.Lookup(x)
		if e.Kind() == huffman.FastSub {
			e = lit.SubLookup(e, x)
		}
		switch e.Kind() {
		case huffman.FastLit2:
			if w+2 > maxW {
				out[w] = uint16(e.Lit1())
				w++
				r.Consume(e.Lit1Bits())
				continue
			}
			out[w] = uint16(e.Lit1())
			out[w+1] = uint16(e.Lit2())
			w += 2
			r.Consume(e.NBits())
		case huffman.FastLit1:
			out[w] = uint16(e.Lit1())
			w++
			r.Consume(e.NBits())
		case huffman.FastLen:
			used := e.NBits()
			length := int(e.LenBase()) + (int(x>>used) & (1<<e.LenExtra() - 1))
			used += e.LenExtra()
			de := dist.Lookup(x >> used)
			if de.Sub() {
				de = dist.SubLookup(de, x>>used)
			}
			if !de.Direct() {
				return w, fastBail
			}
			dcb := de.NBits()
			dval := int(de.Base()) + (int(x>>(used+dcb)) & (1<<de.ExtraBits() - 1))
			used += dcb + de.ExtraBits()
			src := w - dval
			if src < minSrc {
				return w, fastBail
			}
			r.Consume(used)
			if dval >= length {
				copy(out[w:w+length], out[src:src+length])
				w += length
			} else {
				end := w + length
				for w < end {
					w += copy(out[w:end], out[src:w])
				}
			}
		case huffman.FastEOB:
			r.Consume(e.NBits())
			return w, fastEOB
		default: // huffman.FastInvalid
			return w, fastBail
		}
	}
}

// fastSymPad grows a sink's capacity via append without a temporary.
var fastSymPad [2048]uint16

// FastTokens implements flate.FastTokenSink for the full symbolic
// sink: tokens decode straight into the append buffer.
func (s *Sink) FastTokens(fc *flate.FastCtx) (int64, bool, error) {
	n0 := s.Len()
	eob := false
	var err error
	for {
		fc.R.Refill()
		if fc.R.Bits() < fastMinBits {
			break
		}
		if cap(s.buf)-len(s.buf) < fastSlack {
			n := len(s.buf)
			s.buf = append(s.buf, fastSymPad[:]...)[:n]
		}
		w0 := len(s.buf)
		minSrc := 0
		if fc.Track {
			// Tracked decodes never set Track (the symbolic context
			// absorbs any distance), but honour the contract anyway.
			if m := w0 - int(fc.Produced); m > 0 {
				minSrc = m
			}
		}
		maxW := cap(s.buf) - flate.MaxMatch
		if s.Limit > 0 {
			if lim := w0 + (s.Limit - s.Len()); lim < maxW {
				maxW = lim
			}
		}
		buf := s.buf[:cap(s.buf)]
		w, st := decodeFastSyms(fc.R, fc.Lit, fc.Dist, buf, w0, maxW, minSrc)
		s.buf = buf[:w]
		if s.Limit > 0 && s.Len() >= s.Limit {
			err = flate.Stop
			break
		}
		if st == fastEOB {
			eob = true
			break
		}
		if st == fastBail {
			break
		}
	}
	return int64(s.Len() - n0), eob, err
}

// FastTokens implements flate.FastTokenSink for the tail-only symbolic
// sink, running the kernel between slide compactions with the Limit
// budget translated into a write bound.
func (s *TailSink) FastTokens(fc *flate.FastCtx) (int64, bool, error) {
	t0 := s.total
	eob := false
	var err error
	for {
		fc.R.Refill()
		if fc.R.Bits() < fastMinBits {
			break
		}
		s.slide(fastSlack)
		w0 := len(s.buf)
		minSrc := 0
		if fc.Track {
			if m := w0 - int(s.total); m > 0 {
				minSrc = m
			}
		}
		maxW := tailSlide // cap is tailSlide+MaxMatch: within budget
		if s.Limit > 0 {
			if lim := w0 + s.Limit - int(s.total); lim < maxW {
				maxW = lim
			}
		}
		w, st := decodeFastSyms(fc.R, fc.Lit, fc.Dist, s.buf[:cap(s.buf)], w0, maxW, minSrc)
		s.total += int64(w - w0)
		s.buf = s.buf[:w]
		if s.Limit > 0 && s.total >= int64(s.Limit) {
			err = flate.Stop
			break
		}
		if st == fastEOB {
			eob = true
			break
		}
		if st == fastBail {
			break
		}
	}
	return s.total - t0, eob, err
}
