package framing

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func recStrings(text []byte, recs []Record) []string {
	var out []string
	for _, r := range recs {
		out = append(out, string(r.Bytes(text)))
	}
	return out
}

func wantRecords(t *testing.T, text []byte, got []Record, want ...string) {
	t.Helper()
	gs := recStrings(text, got)
	if len(gs) != len(want) {
		t.Fatalf("got %d records %q, want %d %q", len(gs), gs, len(want), want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, gs[i], want[i])
		}
	}
}

func TestNewlineSuffixSafety(t *testing.T) {
	f := Newline{}
	text := []byte("tail of a cut line\nalpha\nbeta\ngamma")

	// Neither the head fragment nor the unterminated tail is a record.
	wantRecords(t, text, f.Records(text, false, false), "alpha", "beta")
	// atStart admits the head, atEnd the tail.
	wantRecords(t, text, f.Records(text, true, true),
		"tail of a cut line", "alpha", "beta", "gamma")

	if b := f.NextBoundary(text, 0); b != bytes.IndexByte(text, '\n')+1 {
		t.Fatalf("NextBoundary = %d", b)
	}
	if b := f.NextBoundary([]byte("no newline here"), 0); b != -1 {
		t.Fatalf("NextBoundary without delimiter = %d, want -1", b)
	}
}

func TestNewlineHoles(t *testing.T) {
	f := Newline{}
	text := []byte("ok-one\nbro?ken\nok-two\n??\npartial-after-hole")
	recs := f.Records(text, true, true)
	// bro?ken overlaps a hole and the '??' line is all holes: both are
	// dropped. The tail is clean and its left '\n' is real, so with
	// atEnd=true it is admitted despite following a holed line.
	wantRecords(t, text, recs, "ok-one", "ok-two", "partial-after-hole")
	for _, r := range recs {
		if !r.Clean() {
			t.Fatalf("newline framer emitted a holed record %q", r.Bytes(text))
		}
	}
	wantRecords(t, text, f.Records(text, true, false), "ok-one", "ok-two")
}

func TestJSONLValidation(t *testing.T) {
	f := Newline{ValidateJSON: true}
	text := []byte("{\"ok\":1}\nnot json\n[1,2,3]\n{\"broken\":\n")
	wantRecords(t, text, f.Records(text, true, true), `{"ok":1}`, "[1,2,3]")
	if f.Name() != "jsonl" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestNewlineResolved(t *testing.T) {
	f := Newline{}
	clean := []byte("head\na\nbb\nccc\ndddd\neeee\n")
	if !f.Resolved(clean, 4) {
		t.Fatal("clean block with 5 records not resolved at threshold 4")
	}
	if f.Resolved(clean, 6) {
		t.Fatal("5 records resolved at threshold 6")
	}
	holed := []byte("head\na\nbb\nc?c\ndddd\neeee\n")
	if f.Resolved(holed, 4) {
		t.Fatal("block with interior hole counted as resolved")
	}
	if f.Resolved([]byte("no delimiters at all"), 1) {
		t.Fatal("boundary-free block resolved")
	}
}

func TestLengthPrefixed(t *testing.T) {
	f := LengthPrefixed{Magic: []byte("\xfeRC")}
	var corpus []byte
	recs := []string{"alpha", "bravo-bravo", "charlie"}
	for _, r := range recs {
		corpus = append(corpus, f.Magic...)
		corpus = binary.LittleEndian.AppendUint32(corpus, uint32(len(r)))
		corpus = append(corpus, r...)
	}
	wantRecords(t, corpus, f.Records(corpus, true, true), recs...)

	// Mid-stream suffix: the cut first record is skipped, magic re-syncs.
	suffix := corpus[3:]
	wantRecords(t, suffix, f.Records(suffix, false, true), recs[1:]...)

	// A hole inside a payload drops exactly that record.
	holed := append([]byte(nil), corpus...)
	holed[len(f.Magic)+4+1] = Hole
	wantRecords(t, holed, f.Records(holed, true, true), recs[1:]...)

	// Truncated final record is never emitted.
	wantRecords(t, corpus[:len(corpus)-2], f.Records(corpus[:len(corpus)-2], true, true), recs[:2]...)

	// Without a Magic there is no confirmable suffix boundary.
	bare := LengthPrefixed{}
	var raw []byte
	for _, r := range recs {
		raw = binary.LittleEndian.AppendUint32(raw, uint32(len(r)))
		raw = append(raw, r...)
	}
	wantRecords(t, raw, bare.Records(raw, true, true), recs...)
	if got := bare.Records(raw[2:], false, true); len(got) != 0 {
		t.Fatalf("bare length-prefix framing synced inside a suffix: %q", recStrings(raw[2:], got))
	}
	if b := bare.NextBoundary(raw, 0); b != -1 {
		t.Fatalf("bare NextBoundary = %d, want -1", b)
	}
}

func TestWARC(t *testing.T) {
	f := WARC{}
	corpus := GenWARC(6, 7)
	recs := f.Records(corpus, true, true)
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for _, r := range recs {
		if !bytes.HasPrefix(r.Bytes(corpus), []byte("WARC/1.0\r\n")) {
			t.Fatalf("record does not start at version line: %q", r.Bytes(corpus)[:20])
		}
	}

	// Suffix starting mid-record: sync to the next version line.
	cut := recs[1].Start + 10
	suffix := corpus[cut:]
	srecs := f.Records(suffix, false, true)
	if len(srecs) != 4 {
		t.Fatalf("suffix recovered %d records, want 4", len(srecs))
	}
	if string(srecs[0].Bytes(suffix)) != string(recs[2].Bytes(corpus)) {
		t.Fatal("suffix sync recovered the wrong record")
	}

	// A hole inside a body drops that record, later ones survive.
	holed := append([]byte(nil), corpus...)
	holed[recs[2].End-3] = Hole
	hrecs := f.Records(holed, true, true)
	if len(hrecs) != 5 {
		t.Fatalf("holed corpus recovered %d records, want 5", len(hrecs))
	}

	// Truncated final body is never emitted.
	trunc := corpus[:recs[5].End-1]
	if got := f.Records(trunc, true, true); len(got) != 5 {
		t.Fatalf("truncated corpus recovered %d records, want 5", len(got))
	}

	if !f.Resolved(corpus, 4) {
		t.Fatal("full WARC corpus not resolved")
	}
}

func TestFASTQFramerMatchesExtract(t *testing.T) {
	// The FASTQ framer must preserve the original pipeline's grammar,
	// including end-of-text acceptance and hole-carrying records.
	f := FASTQ{}
	text := []byte("@r1\nACGTACGTACGTACGTACGTACGTACGTACGTACGT\n+\n!!!!\n??ACGT??TTTT" +
		"ACGTACGTACGTACGTACGTACGTACGT")
	recs := f.Records(text, false, true)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	var holed bool
	for _, r := range recs {
		if r.Holes > 0 {
			holed = true
		}
	}
	if !holed {
		t.Fatal("FASTQ framer should carry holed records through")
	}
	// atStart admits a sequence at offset 0.
	seq := []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGT\nrest")
	if got := f.Records(seq, false, true); len(got) != 0 {
		t.Fatalf("unanchored start emitted %d records", len(got))
	}
	got := f.Records(seq, true, true)
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 36 {
		t.Fatalf("anchored start: %+v", got)
	}
}

func TestGenerators(t *testing.T) {
	if rs := (Newline{ValidateJSON: true}).Records(GenJSONL(50, 1), true, true); len(rs) != 50 {
		t.Fatalf("GenJSONL framed to %d records", len(rs))
	}
	if rs := (Newline{}).Records(GenLog(50, 1), true, true); len(rs) != 50 {
		t.Fatalf("GenLog framed to %d records", len(rs))
	}
	if rs := (WARC{}).Records(GenWARC(50, 1), true, true); len(rs) != 50 {
		t.Fatalf("GenWARC framed to %d records", len(rs))
	}
	// Determinism: same seed, same bytes.
	if !bytes.Equal(GenWARC(10, 3), GenWARC(10, 3)) {
		t.Fatal("GenWARC not deterministic")
	}
}
