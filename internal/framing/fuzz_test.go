package framing

import (
	"bytes"
	"testing"
)

// FuzzHoledText drives every framer's boundary finder, record parser
// and resolution judge over arbitrary hole-riddled text — the exact
// shape random-access output takes — asserting the structural
// invariants the record-access layer depends on.
func FuzzHoledText(f *testing.F) {
	f.Add([]byte("line one\nli?e two\nline three\n"), 0, true, true)
	f.Add([]byte("??????\n{\"id\":1}\n{\"id\":2}\n"), 3, false, true)
	f.Add(append(GenJSONL(4, 1)[7:], bytes.Repeat([]byte{Hole}, 9)...), 1, false, false)
	f.Add(GenWARC(3, 2)[11:], 2, false, true)
	f.Add([]byte("WARC/1.0\r\nContent-Length: 5\r\n\r\nab?de\r\n\r\n"), 0, true, true)
	f.Add([]byte("\xfeRC\x05\x00\x00\x00hello\xfeRC\xff\xff\xff\xffoops"), 0, true, true)
	f.Add([]byte("@r\nACGT?CGTACGTACGTACGTACGTACGTACGTACGT\n+\n!!!\n"), 0, false, true)

	framers := []Framer{
		FASTQ{}, FASTQ{MinLen: 4},
		Newline{}, Newline{ValidateJSON: true},
		WARC{}, WARC{MaxHeader: 64},
		LengthPrefixed{Magic: []byte("\xfeRC")},
		LengthPrefixed{Magic: []byte("\xfeRC"), PrefixLen: 2, BigEndian: true},
		LengthPrefixed{},
	}

	f.Fuzz(func(t *testing.T, text []byte, off int, atStart, atEnd bool) {
		for _, fr := range framers {
			if off < 0 {
				off = -off
			}
			if b := fr.NextBoundary(text, off%(len(text)+1)); b != -1 {
				if b <= 0 || b >= len(text) {
					t.Fatalf("%s: NextBoundary = %d outside (0, %d)", fr.Name(), b, len(text))
				}
			}
			recs := fr.Records(text, atStart, atEnd)
			prevEnd := 0
			for i, r := range recs {
				if r.Start < 0 || r.End > len(text) || r.Start > r.End {
					t.Fatalf("%s: record %d extent [%d,%d) outside text of %d", fr.Name(), i, r.Start, r.End, len(text))
				}
				if r.Start < prevEnd {
					t.Fatalf("%s: record %d at %d overlaps previous end %d", fr.Name(), i, r.Start, prevEnd)
				}
				prevEnd = r.End
				holes := holesIn(r.Bytes(text))
				if holes != r.Holes {
					t.Fatalf("%s: record %d claims %d holes, has %d", fr.Name(), i, r.Holes, holes)
				}
				if fr.Name() != "fastq" && holes != 0 {
					t.Fatalf("%s: emitted a record overlapping a hole: %q", fr.Name(), r.Bytes(text))
				}
			}
			fr.Resolved(text, 2)
		}
	})
}
