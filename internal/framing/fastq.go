package framing

import (
	"repro/internal/dna"
	"repro/internal/fastq"
)

// FASTQ frames DNA-like segments with the paper's Appendix X-B grammar
// (T D+ (U+ D+)* T over nucleotides, newlines and undetermined runs),
// delegating to internal/fastq so the output is byte-for-byte
// identical to the original fqgz pipeline. It is the one framer that
// emits records containing holes — a partially resolved read is still
// useful DNA, and Table I's "unambiguous sequences" statistic needs
// the ambiguous ones counted.
//
// One deliberate deviation from the suffix-safe contract: the grammar
// accepts end-of-text as a trailing terminator even when atEnd is
// false (sequences spanning into the next, unresolved block are
// reported). Callers that must not see truncated records — the exact
// record scanner — drop end-touching records themselves.
type FASTQ struct {
	// MinLen discards segments shorter than this many bases
	// (0 selects fastq.DefaultMinLen, 32).
	MinLen int
}

// Name implements Framer.
func (FASTQ) Name() string { return "fastq" }

// NextBoundary implements Framer: the first offset after a terminator
// (newline or undetermined byte) holding a nucleotide.
func (FASTQ) NextBoundary(text []byte, off int) int {
	if off < 1 {
		off = 1
	}
	for i := off; i < len(text); i++ {
		if (text[i-1] == '\n' || text[i-1] == Hole) && dna.IsNucleotide(text[i]) {
			return i
		}
	}
	return -1
}

// Records implements Framer.
func (f FASTQ) Records(text []byte, atStart, atEnd bool) []Record {
	segs := fastq.Extract(text, fastq.ExtractOptions{
		MinLen:      f.MinLen,
		AnchorStart: atStart,
	})
	out := make([]Record, 0, len(segs))
	for _, s := range segs {
		out = append(out, Record{Start: s.Start, End: s.End, Holes: s.Undetermined})
	}
	return out
}

// Resolved implements Framer via the paper's Section VI-B rule: at
// least threshold extracted sequences, all unambiguous.
func (f FASTQ) Resolved(blockText []byte, threshold int) bool {
	return fastq.BlockResolved(blockText, fastq.ExtractOptions{MinLen: f.MinLen},
		resolveThreshold(threshold))
}
