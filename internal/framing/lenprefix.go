package framing

import "bytes"

// LengthPrefixed frames binary records as an optional magic marker, a
// little- or big-endian length field, then that many payload bytes.
// Walking the framing requires a trusted starting boundary: a bare
// length prefix is just bytes, so inside holed text there is nothing
// to re-synchronise on and index-free random access is NOT viable —
// unless Magic is set, in which case each record announces itself and
// sync works like WARC's. Records are the payload bytes (marker and
// prefix excluded); any hole inside marker, prefix or payload drops
// the record.
type LengthPrefixed struct {
	// Magic, when non-empty, precedes every record's length field and
	// enables boundary finding in holed text.
	Magic []byte
	// PrefixLen is the width of the length field in bytes, 1-8
	// (0 selects 4).
	PrefixLen int
	// BigEndian selects big-endian length fields (default little).
	BigEndian bool
	// MaxRecord rejects implausibly long records — essential when
	// scanning for sync, where a corrupt length would swallow the rest
	// of the text (0 selects 1 MiB).
	MaxRecord int
}

// Name implements Framer.
func (LengthPrefixed) Name() string { return "lenprefix" }

func (f LengthPrefixed) prefixLen() int {
	if f.PrefixLen >= 1 && f.PrefixLen <= 8 {
		return f.PrefixLen
	}
	return 4
}

func (f LengthPrefixed) maxRecord() int {
	if f.MaxRecord > 0 {
		return f.MaxRecord
	}
	return 1 << 20
}

// length decodes the hole-free length field at off, reporting ok=false
// when the field is truncated, holed, or implausible.
func (f LengthPrefixed) length(text []byte, off int) (n int, ok bool) {
	w := f.prefixLen()
	if off+w > len(text) {
		return 0, false
	}
	var v uint64
	for i := 0; i < w; i++ {
		b := text[off+i]
		if b == Hole {
			return 0, false
		}
		if f.BigEndian {
			v = v<<8 | uint64(b)
		} else {
			v |= uint64(b) << (8 * i)
		}
	}
	if v > uint64(f.maxRecord()) {
		return 0, false
	}
	return int(v), true
}

// NextBoundary implements Framer. Without a Magic there is no
// confirmable boundary in suffix text and the result is always -1.
func (f LengthPrefixed) NextBoundary(text []byte, off int) int {
	if len(f.Magic) == 0 {
		return -1
	}
	if off < 1 {
		off = 1
	}
	for off < len(text) {
		i := bytes.Index(text[off:], f.Magic)
		if i < 0 {
			return -1
		}
		p := off + i
		if _, ok := f.length(text, p+len(f.Magic)); ok {
			return p
		}
		off = p + 1
	}
	return -1
}

// Records implements Framer: walk the framing from every trusted
// boundary (offset 0 when atStart, then each record's own end; after a
// parse failure, re-sync via Magic when possible).
func (f LengthPrefixed) Records(text []byte, atStart, atEnd bool) []Record {
	var out []Record
	pos := -1
	if atStart {
		pos = 0
	} else {
		pos = f.NextBoundary(text, 0)
	}
	for pos >= 0 && pos < len(text) {
		p := pos
		if len(f.Magic) > 0 {
			if p+len(f.Magic) > len(text) || !bytes.Equal(text[p:p+len(f.Magic)], f.Magic) {
				pos = f.NextBoundary(text, p+1)
				continue
			}
			p += len(f.Magic)
		}
		n, ok := f.length(text, p)
		if !ok {
			pos = f.NextBoundary(text, pos+1)
			continue
		}
		body := p + f.prefixLen()
		if body+n > len(text) {
			break // truncated final record: the length says more bytes exist
		}
		if holesIn(text[body:body+n]) == 0 {
			out = append(out, Record{Start: body, End: body + n})
		}
		pos = body + n
	}
	return out
}

// Resolved implements Framer: at least threshold complete records
// recovered (never true without a Magic — the framing cannot be
// confirmed inside a block reached by sync).
func (f LengthPrefixed) Resolved(blockText []byte, threshold int) bool {
	return len(f.Records(blockText, false, true)) >= resolveThreshold(threshold)
}
