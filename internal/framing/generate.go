package framing

import (
	"fmt"
	"math/rand"
)

// This file generates the synthetic log/JSONL/WARC corpora the
// differential suite and gzsynth compress into multi-member,
// stored-block-heavy gzip files. Every record carries a unique
// sequence number, so a test can map any recovered record back to its
// position in the oracle stream.

var logWords = []string{
	"accepted", "connection", "from", "peer", "request", "served",
	"cache", "miss", "hit", "retry", "timeout", "upstream", "shard",
	"rebalance", "checkpoint", "flushed", "index", "build", "complete",
	"range", "read", "bytes", "latency", "budget", "evicted",
}

func logLine(rng *rand.Rand, id int) string {
	n := 3 + rng.Intn(6)
	line := fmt.Sprintf("2026-08-%02dT%02d:%02d:%02d.%03dZ level=%s id=%d",
		1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), rng.Intn(1000),
		[]string{"info", "warn", "debug"}[rng.Intn(3)], id)
	for i := 0; i < n; i++ {
		line += " " + logWords[rng.Intn(len(logWords))]
	}
	return line
}

// GenLog produces records newline-delimited log lines with unique
// id=N fields.
func GenLog(records int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for i := 0; i < records; i++ {
		out = append(out, logLine(rng, i)...)
		out = append(out, '\n')
	}
	return out
}

// GenJSONL produces records newline-delimited JSON objects with unique
// "id" fields.
func GenJSONL(records int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for i := 0; i < records; i++ {
		out = append(out, fmt.Sprintf(
			`{"id":%d,"ts":%d,"level":%q,"msg":%q,"bytes":%d}`,
			i, 1754600000000+rng.Int63n(86_400_000),
			[]string{"info", "warn", "debug"}[rng.Intn(3)],
			logLine(rng, i), rng.Intn(1<<20))...)
		out = append(out, '\n')
	}
	return out
}

// GenWARC produces records WARC/1.0 records (a warcinfo record
// followed by response records with unique WARC-Record-ID numbers and
// log-like bodies).
func GenWARC(records int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for i := 0; i < records; i++ {
		kind := "response"
		if i == 0 {
			kind = "warcinfo"
		}
		var body []byte
		for j, n := 0, 1+rng.Intn(8); j < n; j++ {
			body = append(body, logLine(rng, i)...)
			body = append(body, '\r', '\n')
		}
		out = append(out, fmt.Sprintf(
			"WARC/1.0\r\nWARC-Type: %s\r\nWARC-Record-ID: <urn:uuid:%08x-%04x-%d>\r\n"+
				"WARC-Target-URI: https://example.org/page/%d\r\nContent-Length: %d\r\n\r\n",
			kind, rng.Uint32(), rng.Intn(1<<16), i, i, len(body))...)
		out = append(out, body...)
		out = append(out, "\r\n\r\n"...)
	}
	return out
}
