package framing

import "encoding/json"

// Newline frames newline-delimited records: log lines, JSONL / NDJSON.
// A record is the content between two confirmed '\n' delimiters; the
// leading delimiter may instead be the start of text (atStart) and the
// trailing one the end of text (atEnd). Records containing holes are
// never emitted — a log line with unresolved bytes is not a record,
// and a run of bytes reached after a hole is a line *tail* whose true
// start is unknown. Index-free random access is viable: the first real
// '\n' of the resolved suffix is a boundary.
type Newline struct {
	// ValidateJSON additionally requires each record to be a valid
	// JSON value (JSONL framing). Lines that do not parse are dropped,
	// which also filters delimiter look-alikes inside partially
	// resolved text.
	ValidateJSON bool
	// MinLen discards records shorter than this many bytes. The
	// default (0) still drops empty lines: an empty record carries no
	// evidence it is one.
	MinLen int
}

// Name implements Framer.
func (f Newline) Name() string {
	if f.ValidateJSON {
		return "jsonl"
	}
	return "newline"
}

// NextBoundary implements Framer: the offset just past the first '\n'
// at or after off (never 0 — the text's own start is unconfirmed).
func (Newline) NextBoundary(text []byte, off int) int {
	if off < 1 {
		off = 1
	}
	for i := off; i < len(text); i++ {
		if text[i-1] == '\n' {
			return i
		}
	}
	return -1
}

func (f Newline) minLen() int {
	if f.MinLen > 0 {
		return f.MinLen
	}
	return 1
}

// Records implements Framer.
func (f Newline) Records(text []byte, atStart, atEnd bool) []Record {
	var out []Record
	start, ok, clean := 0, atStart, true
	emit := func(start, end int) {
		if end-start < f.minLen() {
			return
		}
		if f.ValidateJSON && !json.Valid(text[start:end]) {
			return
		}
		out = append(out, Record{Start: start, End: end})
	}
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\n':
			if ok && clean {
				emit(start, i)
			}
			start, ok, clean = i+1, true, true
		case Hole:
			clean = false
		}
	}
	if atEnd && ok && clean {
		emit(start, len(text))
	}
	return out
}

// Resolved implements Framer: from the first confirmed boundary on,
// the text contains no holes at all (every byte of a newline-framed
// stream is record content, so any hole means some record is
// ambiguous) and at least threshold records are recovered.
func (f Newline) Resolved(blockText []byte, threshold int) bool {
	b := f.NextBoundary(blockText, 0)
	if b < 0 {
		return false
	}
	if holesIn(blockText[b:]) != 0 {
		return false
	}
	return len(f.Records(blockText, false, true)) >= resolveThreshold(threshold)
}
