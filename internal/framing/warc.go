package framing

import (
	"bytes"
	"strconv"
)

// WARC frames WARC/1.x web-archive records: a "WARC/1.x" version
// line, CRLF-delimited named header fields including Content-Length,
// a blank line, then exactly Content-Length body bytes, with a
// "\r\n\r\n" separator before the next record. The version magic
// makes records self-identifying, so index-free random access is
// viable: sync lands anywhere, and the next intact "WARC/1." line
// recovers the framing. A record — version line through body,
// trailing separator excluded — is emitted only when fully resolved.
type WARC struct {
	// MaxHeader bounds the version-line-plus-header block accepted
	// while parsing, so a holed or corrupt header cannot swallow the
	// text (0 selects 16 KiB).
	MaxHeader int
}

var (
	warcMagic = []byte("WARC/1.")
	crlfcrlf  = []byte("\r\n\r\n")
)

// Name implements Framer.
func (WARC) Name() string { return "warc" }

func (f WARC) maxHeader() int {
	if f.MaxHeader > 0 {
		return f.MaxHeader
	}
	return 16 << 10
}

// parse parses one record at pos, returning the end of its body and
// whether the record is intact (hole-free with a well-formed header
// carrying Content-Length). ok=false with end>pos means "skip to end
// and re-sync"; end<0 means the record runs past the text.
func (f WARC) parse(text []byte, pos int) (end int, ok bool) {
	rest := text[pos:]
	if !bytes.HasPrefix(rest, warcMagic) {
		return pos + 1, false
	}
	limit := f.maxHeader()
	if limit > len(rest) {
		limit = len(rest)
	}
	hdrEnd := bytes.Index(rest[:limit], crlfcrlf)
	if hdrEnd < 0 {
		if len(rest) <= f.maxHeader() {
			return -1, false // header may continue past the text
		}
		return pos + 1, false
	}
	header := rest[:hdrEnd]
	if holesIn(header) != 0 {
		return pos + 1, false
	}
	n, ok := contentLength(header)
	if !ok {
		return pos + 1, false
	}
	bodyStart := hdrEnd + len(crlfcrlf)
	if bodyStart+n > len(rest) {
		return -1, false // body runs past the text
	}
	end = pos + bodyStart + n
	return end, holesIn(rest[bodyStart:bodyStart+n]) == 0
}

// contentLength extracts the Content-Length field (case-insensitive
// name, as WARC permits) from a CRLF-delimited header block.
func contentLength(header []byte) (int, bool) {
	for _, line := range bytes.Split(header, []byte("\r\n")) {
		name, value, found := bytes.Cut(line, []byte(":"))
		if !found || !bytes.EqualFold(bytes.TrimSpace(name), []byte("Content-Length")) {
			continue
		}
		n, err := strconv.Atoi(string(bytes.TrimSpace(value)))
		if err != nil || n < 0 {
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// NextBoundary implements Framer: the first intact "WARC/1." magic at
// a line start (offset 0 excluded — suffix-safe).
func (f WARC) NextBoundary(text []byte, off int) int {
	if off < 1 {
		off = 1
	}
	for off < len(text) {
		i := bytes.Index(text[off:], warcMagic)
		if i < 0 {
			return -1
		}
		p := off + i
		if p > 0 && text[p-1] == '\n' {
			return p
		}
		off = p + 1
	}
	return -1
}

// Records implements Framer.
func (f WARC) Records(text []byte, atStart, atEnd bool) []Record {
	var out []Record
	pos := -1
	if atStart && bytes.HasPrefix(text, warcMagic) {
		pos = 0
	} else {
		pos = f.NextBoundary(text, 0)
	}
	for pos >= 0 && pos < len(text) {
		end, ok := f.parse(text, pos)
		if end < 0 {
			break // record runs past the text: incomplete
		}
		if !ok {
			pos = f.NextBoundary(text, end)
			continue
		}
		out = append(out, Record{Start: pos, End: end})
		// Step over the inter-record separator; tolerate its absence at
		// a true end of stream or ahead of a re-sync.
		if bytes.HasPrefix(text[end:], crlfcrlf) {
			pos = end + len(crlfcrlf)
			if pos < len(text) && !bytes.HasPrefix(text[pos:], warcMagic) {
				pos = f.NextBoundary(text, pos)
			}
		} else {
			pos = f.NextBoundary(text, end)
		}
	}
	return out
}

// Resolved implements Framer: at least threshold intact records
// recovered from the block.
func (f WARC) Resolved(blockText []byte, threshold int) bool {
	return len(f.Records(blockText, false, true)) >= resolveThreshold(threshold)
}
