// Package framing generalises the paper's "sync then extract" layer
// beyond FASTQ: given text decoded from an arbitrary position inside a
// gzip member — possibly holed with undetermined ('?') bytes where
// back-references reached before the synchronisation point — a Framer
// knows how to locate record boundaries, recover complete records, and
// judge when a block's output has become record-resolved.
//
// The package ships four framings:
//
//   - FASTQ: the paper's Appendix X-B DNA grammar (delegating to
//     internal/fastq, byte-for-byte identical to the original
//     pipeline).
//   - Newline: newline-delimited records (logs, JSONL with optional
//     JSON validation). Index-free access is viable: any real '\n' is
//     a boundary.
//   - LengthPrefixed: binary length-prefix framing. Index-free access
//     is viable only with a Magic marker; bare length prefixes cannot
//     be re-synchronised inside holed text.
//   - WARC: WARC/1.x records ("WARC/1.x" version line + header block
//   - Content-Length body). The version magic makes index-free
//     access viable.
//
// Boundary semantics are suffix-safe throughout: the start of scanned
// text is never assumed to be a record boundary (it is mid-stream
// after a block sync) unless the caller vouches for it with atStart,
// and the end of text terminates a record only when the caller knows
// it is a true end of stream (atEnd). The sole exception is FASTQ,
// whose published grammar accepts end-of-text as a terminator — see
// FASTQ for why that stays.
package framing

import "repro/internal/tracked"

// Hole is the byte standing in for an unresolved character in
// random-access output ('?' throughout the paper's figures).
const Hole = tracked.UndeterminedByte

// Record is one framed record located in scanned text. Start and End
// delimit the record's content (framing overhead — terminators, length
// prefixes, trailing separators — is excluded); Holes counts
// undetermined bytes inside [Start, End). Every framer except FASTQ
// emits only hole-free records (Holes == 0): a partially resolved log
// line or WARC record is garbage, whereas partially resolved DNA is
// still DNA.
type Record struct {
	Start, End int
	Holes      int
}

// Len returns the record's content length in bytes.
func (r Record) Len() int { return r.End - r.Start }

// Bytes materialises the record from the scanned text.
func (r Record) Bytes(text []byte) []byte { return text[r.Start:r.End] }

// Clean reports whether the record contains no undetermined bytes.
func (r Record) Clean() bool { return r.Holes == 0 }

// Framer is a pluggable record framing: how to find a record boundary
// inside possibly-holed text, how to split resolved text into records,
// and when a decoded block counts as record-resolved. Implementations
// must be usable concurrently (they are value types consulted by any
// number of readers; all state is configuration).
type Framer interface {
	// Name identifies the framing ("fastq", "newline", ...).
	Name() string

	// NextBoundary returns the smallest offset >= off at which a
	// record can begin — an offset immediately after a confirmed
	// terminator, or at a self-identifying record magic — or -1 when
	// no boundary is confirmed in text. Offset 0 is never returned
	// (suffix-safe: the text's own start is not a confirmed boundary).
	NextBoundary(text []byte, off int) int

	// Records parses complete records from text, in order,
	// non-overlapping. atStart marks offset 0 as a known record
	// boundary (the caller's scan position is record-aligned); atEnd
	// marks the end of text as a true end of stream, allowing a final
	// unterminated record.
	Records(text []byte, atStart, atEnd bool) []Record

	// Resolved reports whether blockText — one decoded block's output,
	// possibly holed — is record-resolved: it yields at least
	// threshold trustworthy records (threshold <= 0 selects a
	// framer-appropriate default). This is the Section VI-B
	// "sequence-resolved block" judgment, generalised.
	Resolved(blockText []byte, threshold int) bool
}

// DefaultResolvedThreshold is the default minimum record count for
// Resolved, shared by every framer (the paper's Section VI-B value).
const DefaultResolvedThreshold = 4

func resolveThreshold(threshold int) int {
	if threshold <= 0 {
		return DefaultResolvedThreshold
	}
	return threshold
}

// holesIn counts undetermined bytes in text.
func holesIn(text []byte) int {
	n := 0
	for _, b := range text {
		if b == Hole {
			n++
		}
	}
	return n
}
