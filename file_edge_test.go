package pugz_test

// Regression tests for the File.ReadAt / Size edge semantics the HTTP
// serving layer (internal/serve) leans on: reads starting exactly at
// EOF, zero-length reads, and reads overshooting the end must each map
// deterministically to (n, io.EOF)/(0, nil) — and must not wedge a
// pooled cursor, so later in-range reads still return oracle bytes.

import (
	"bytes"
	"io"
	"testing"

	pugz "repro"
)

// edgeFile opens the fixture in the three configurations the server
// uses: cold (no index), auto-indexed via deep seeks, and with an
// attached whole-file checkpoint index.
func edgeFiles(t *testing.T, gz []byte) map[string]*pugz.File {
	t.Helper()
	cold, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := indexed.BuildIndex(64 << 10); err != nil {
		t.Fatal(err)
	}
	return map[string]*pugz.File{"cold": cold, "indexed": indexed}
}

func TestFileReadAtEOFEdges(t *testing.T) {
	data, gz := fileFixture(t)
	size := int64(len(data))
	for name, f := range edgeFiles(t, gz) {
		f := f
		t.Run(name, func(t *testing.T) {
			defer f.Close()
			p := make([]byte, 64)

			// A read starting exactly at EOF: (0, io.EOF), repeatably —
			// three in a row must not wedge or poison a cursor.
			for i := 0; i < 3; i++ {
				if n, err := f.ReadAt(p, size); n != 0 || err != io.EOF {
					t.Fatalf("ReadAt(EOF) #%d: n=%d err=%v, want 0, io.EOF", i, n, err)
				}
			}
			// Past EOF: same contract.
			if n, err := f.ReadAt(p, size+100); n != 0 || err != io.EOF {
				t.Fatalf("ReadAt(EOF+100): n=%d err=%v, want 0, io.EOF", n, err)
			}

			// Zero-length reads return (0, nil) at any offset, including
			// at and past EOF (deterministic, no decode work).
			for _, off := range []int64{0, size / 2, size, size + 5} {
				if n, err := f.ReadAt(p[:0], off); n != 0 || err != nil {
					t.Fatalf("ReadAt(len=0, %d): n=%d err=%v, want 0, nil", off, n, err)
				}
			}

			// A read overshooting the end is short with io.EOF (the
			// "suffix range larger than the file" shape, pre-clamping).
			big := make([]byte, size+10)
			n, err := f.ReadAt(big, 0)
			if int64(n) != size || err != io.EOF {
				t.Fatalf("overshoot read: n=%d err=%v, want %d, io.EOF", n, err, size)
			}
			if !bytes.Equal(big[:n], data) {
				t.Fatal("overshoot read content mismatch")
			}

			// The at-EOF traffic above must not have wedged the pool:
			// in-range reads still serve oracle bytes.
			for _, off := range []int64{0, size / 3, size - 64} {
				if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
					t.Fatalf("post-edge ReadAt(%d): %v", off, err)
				}
				if !bytes.Equal(p, data[off:off+64]) {
					t.Fatalf("post-edge ReadAt(%d) content mismatch", off)
				}
			}

			// The EOF encountered above revealed (or confirmed) the true
			// size; Size must agree with the oracle either way.
			got, err := f.Size()
			if err != nil {
				t.Fatal(err)
			}
			if got != size {
				t.Fatalf("Size = %d, want %d", got, size)
			}
			if cached, ok := f.CachedSize(); !ok || cached != size {
				t.Fatalf("CachedSize = %d,%v after Size, want %d,true", cached, ok, size)
			}
		})
	}
}

// TestFileEmptyMember pins the degenerate blob the server must still
// answer deterministically: a gzip member with an empty payload.
func TestFileEmptyMember(t *testing.T) {
	gz, err := pugz.Compress(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p := make([]byte, 16)
	if n, err := f.ReadAt(p, 0); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt(0) on empty: n=%d err=%v, want 0, io.EOF", n, err)
	}
	if n, err := f.ReadAt(p[:0], 0); n != 0 || err != nil {
		t.Fatalf("ReadAt(len=0) on empty: n=%d err=%v, want 0, nil", n, err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 0 {
		t.Fatalf("Size = %d, want 0", size)
	}
}

// TestFileInflatedBytes sanity-checks the read-amplification counter:
// zero before any read, and at least the bytes returned after reads.
func TestFileInflatedBytes(t *testing.T) {
	data, gz := fileFixture(t)
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.InflatedBytes(); got != 0 {
		t.Fatalf("InflatedBytes before any read = %d", got)
	}
	p := make([]byte, 4096)
	off := int64(len(data)) / 2
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// A deep unindexed read decodes (or skips over) everything up to
	// the target plus the read itself.
	if got := f.InflatedBytes(); got < off+int64(len(p)) {
		t.Fatalf("InflatedBytes = %d after deep read at %d", got, off)
	}
}
