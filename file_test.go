package pugz_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	pugz "repro"
)

// trackingReaderAt counts the bytes read through it, so tests can
// assert that the windowed byte source does NOT load the whole file.
type trackingReaderAt struct {
	data []byte
	read int64
}

func (t *trackingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(t.data)) {
		return 0, io.EOF
	}
	n := copy(p, t.data[off:])
	t.read += int64(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func fileFixture(t *testing.T) (data, gz []byte) {
	t.Helper()
	return extFastq(12000, 99), extGz(t, 12000, 99, 6)
}

// TestFileReadAtMatchesGunzip is the acceptance property: positional
// reads over an io.ReaderAt return exactly the bytes gunzip would
// produce at those decompressed offsets.
func TestFileReadAtMatchesGunzip(t *testing.T) {
	data, gz := fileFixture(t)
	for _, mode := range []string{"slice", "readerat"} {
		t.Run(mode, func(t *testing.T) {
			var f *pugz.File
			var err error
			if mode == "slice" {
				f, err = pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 4, MinChunk: 16 << 10})
			} else {
				f, err = pugz.NewFile(&trackingReaderAt{data: gz}, int64(len(gz)),
					pugz.FileOptions{Threads: 4, MinChunk: 16 << 10})
			}
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			rng := rand.New(rand.NewSource(7))
			offs := []int64{0, 1, int64(len(data) / 2), int64(len(data)) - 100}
			for i := 0; i < 6; i++ {
				offs = append(offs, rng.Int63n(int64(len(data))))
			}
			for _, off := range offs {
				n := 4096
				if int64(n) > int64(len(data))-off {
					n = int(int64(len(data)) - off)
				}
				p := make([]byte, n)
				got, err := f.ReadAt(p, off)
				if err != nil && err != io.EOF {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
				if got != n {
					t.Fatalf("ReadAt(%d): %d of %d bytes", off, got, n)
				}
				if !bytes.Equal(p, data[off:off+int64(n)]) {
					t.Fatalf("ReadAt(%d): content mismatch", off)
				}
			}

			// Reads past the end: short with io.EOF.
			p := make([]byte, 128)
			n, err := f.ReadAt(p, int64(len(data))-10)
			if n != 10 || err != io.EOF {
				t.Fatalf("tail read: n=%d err=%v, want 10, io.EOF", n, err)
			}
			if _, err := f.ReadAt(p, int64(len(data))+5); err != io.EOF {
				t.Fatalf("past-end read: err=%v, want io.EOF", err)
			}
		})
	}
}

// TestFileReadAtIndexed checks the gzindex-accelerated path: with a
// checkpoint index attached, a read near the end of a large stream
// must not decode (or even load) the whole file.
func TestFileReadAtIndexed(t *testing.T) {
	data, gz := fileFixture(t)
	ix, err := pugz.BuildIndex(gz, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	src := &trackingReaderAt{data: gz}
	f, err := pugz.NewFile(src, int64(len(gz)), pugz.FileOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.SetIndex(blob); err != nil {
		t.Fatal(err)
	}

	off := int64(len(data)) - 64<<10
	p := make([]byte, 32<<10)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatal("indexed read mismatch")
	}
	// The checkpoint spacing bounds the decode to ~256 KiB of output,
	// roughly its compressed extent of input; reading a large fraction
	// of the compressed file would mean the index was not used.
	if src.read > int64(len(gz))/2 {
		t.Fatalf("indexed read loaded %d of %d compressed bytes", src.read, len(gz))
	}

	// Size is known from the index without a decode pass.
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", size, len(data))
	}
}

// TestFileReadSeek exercises the io.ReadSeeker surface.
func TestFileReadSeek(t *testing.T) {
	data, gz := fileFixture(t)
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.Seek(1000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 500)
	if _, err := io.ReadFull(f, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[1000:1500]) {
		t.Fatal("read after SeekStart mismatch")
	}

	// Relative seek continues from the cursor.
	if _, err := f.Seek(250, io.SeekCurrent); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(f, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[1750:2250]) {
		t.Fatal("read after SeekCurrent mismatch")
	}

	// SeekEnd needs the decompressed size (full scan, then cached).
	pos, err := f.Seek(-100, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	if pos != int64(len(data))-100 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, data[len(data)-100:]) {
		t.Fatal("tail read mismatch")
	}

	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", size, len(data))
	}
}

// TestFileMultiMember checks positional reads across a member
// boundary: the decompressed address space concatenates members,
// exactly like gunzip output.
func TestFileMultiMember(t *testing.T) {
	a, b := extFastq(3000, 1), extFastq(3000, 2)
	gzA, gzB := extGz(t, 3000, 1, 6), extGz(t, 3000, 2, 6)
	gz := append(append([]byte{}, gzA...), gzB...)
	want := append(append([]byte{}, a...), b...)

	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A read spanning the boundary.
	off := int64(len(a)) - 1000
	p := make([]byte, 2000)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(p, want[off:off+2000]) {
		t.Fatal("cross-member read mismatch")
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(want)) {
		t.Fatalf("Size = %d, want %d", size, len(want))
	}
}

// TestFileRandomAccessAt checks the compressed-offset access path over
// a true io.ReaderAt: same result as the slice-based RandomAccess, and
// only a bounded prefix of the compressed tail is ever loaded.
func TestFileRandomAccessAt(t *testing.T) {
	gz := extGz(t, 40000, 23, 6)
	from := int64(len(gz) / 3)
	const maxOut = 256 << 10

	wantRes, err := pugz.RandomAccess(gz, from, pugz.RandomAccessOptions{MaxOutput: maxOut})
	if err != nil {
		t.Fatal(err)
	}

	src := &trackingReaderAt{data: gz}
	f, err := pugz.NewFile(src, int64(len(gz)), pugz.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gotRes, err := f.RandomAccessAt(from, pugz.RandomAccessOptions{MaxOutput: maxOut})
	if err != nil {
		t.Fatal(err)
	}

	if gotRes.BlockBit != wantRes.BlockBit {
		t.Fatalf("BlockBit %d vs %d", gotRes.BlockBit, wantRes.BlockBit)
	}
	if !bytes.Equal(gotRes.Text, wantRes.Text) {
		t.Fatal("random-access text mismatch between slice and ReaderAt sources")
	}
	if len(gotRes.Blocks) != len(wantRes.Blocks) || len(gotRes.Sequences) != len(wantRes.Sequences) {
		t.Fatalf("structure mismatch: %d/%d blocks, %d/%d sequences",
			len(gotRes.Blocks), len(wantRes.Blocks), len(gotRes.Sequences), len(wantRes.Sequences))
	}
	for i := range gotRes.Blocks {
		if gotRes.Blocks[i] != wantRes.Blocks[i] {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, gotRes.Blocks[i], wantRes.Blocks[i])
		}
	}
	// A bounded read must load a bounded compressed extent: far less
	// than the tail from the sync point to EOF (what "decode to the
	// end" would need), let alone the whole file.
	if tail := int64(len(gz)) - from; src.read >= tail {
		t.Fatalf("random access loaded %d compressed bytes; naive tail read is %d", src.read, tail)
	}
}
