package pugz

import (
	"bytes"
	"testing"
)

func TestPublicIndexRoundTrip(t *testing.T) {
	data := genFastq(15000, 71)
	gz := gzCorpus(t, 15000, 71, 6)
	ix, err := BuildIndex(gz, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != int64(len(data)) {
		t.Fatalf("Size %d, want %d", ix.Size(), len(data))
	}
	if ix.Checkpoints() < 3 {
		t.Fatalf("checkpoints %d", ix.Checkpoints())
	}
	buf := make([]byte, 4096)
	off := int64(len(data)) / 2
	if _, err := ix.ReadAt(gz, buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+4096]) {
		t.Fatal("ReadAt mismatch")
	}

	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(gz, blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.ReadAt(gz, buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+4096]) {
		t.Fatal("ReadAt through loaded index mismatch")
	}
}

func TestPublicBGZF(t *testing.T) {
	data := genFastq(15000, 71)
	bz, err := CompressBGZF(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBGZF(bz) {
		t.Fatal("own BGZF output not recognised")
	}
	gz := gzCorpus(t, 15000, 71, 6)
	if IsBGZF(gz) {
		t.Fatal("plain gzip recognised as BGZF")
	}
	out, err := DecompressBGZF(bz, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("BGZF roundtrip mismatch")
	}
	buf := make([]byte, 2000)
	off := int64(len(data)) / 3
	if _, err := BGZFReadAt(bz, buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+2000]) {
		t.Fatal("BGZFReadAt mismatch")
	}
	// A BGZF file is also a valid plain (multi-member) gzip file: the
	// pugz engine itself must decompress it.
	out2, _, err := Decompress(bz, Options{Threads: 2, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, data) {
		t.Fatal("pugz on BGZF mismatch")
	}
}

func TestPublicGuesser(t *testing.T) {
	data := genFastq(500, 73)
	masked := append([]byte{}, data...)
	for i := 100; i < len(masked); i += 31 {
		if masked[i] != '\n' {
			masked[i] = Undetermined
		}
	}
	res := GuessUndetermined(masked, 7)
	if res.Guessed == 0 {
		t.Fatal("nothing guessed")
	}
	if len(res.Text) != len(masked) {
		t.Fatal("length changed")
	}
	// Input must be untouched.
	found := false
	for _, b := range masked {
		if b == Undetermined {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("input was modified")
	}
	if len(res.ByPhase) == 0 {
		t.Fatal("no phase breakdown")
	}
}
