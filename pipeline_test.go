package pugz

// Concurrency and memory-bound tests for the streaming io.Reader
// pipeline. All of these are meant to run under -race (the tier-1
// gate does): they exercise the reader goroutine, the batch workers,
// and the in-order emitter against hostile sources — 1-byte reads,
// mid-stream failures, early Close, and producers that never
// materialize the compressed stream.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"errors"
	"hash"
	"io"
	"sync"
	"testing"
)

// newStreamHash is the digest used to compare producer and consumer
// sides without either holding the decompressed stream.
func newStreamHash() hash.Hash { return sha256.New() }

// oneByteReader delivers a single byte per Read call.
type oneByteReader struct{ r io.Reader }

func (o *oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestStreamingReaderOneByteSource(t *testing.T) {
	data := genFastq(3000, 91)
	gz := gzCorpus(t, 3000, 91, 6)
	r, err := NewReader(&oneByteReader{bytes.NewReader(gz)}, StreamOptions{
		Threads:              2,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
		VerifyChecksums:      true,
		ReadSize:             1, // 1-byte source reads, 1-byte segments
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("one-byte source mismatch (%d vs %d bytes)", len(out), len(data))
	}
}

// failingReader returns some prefix of a valid stream, then a
// permanent error.
type failingReader struct {
	r    io.Reader
	left int
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, f.err
	}
	if len(p) > f.left {
		p = p[:f.left]
	}
	n, err := f.r.Read(p)
	f.left -= n
	if err != nil {
		return n, err
	}
	return n, nil
}

func TestStreamingReaderSourceErrorPropagates(t *testing.T) {
	gz := gzCorpus(t, 20000, 8, 6)
	boom := errors.New("the disk caught fire")
	r, err := NewReader(&failingReader{r: bytes.NewReader(gz), left: len(gz) / 2, err: boom}, StreamOptions{
		Threads:              3,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("want source error, got %v", err)
	}
	// The error is sticky.
	if _, err2 := r.Read(make([]byte, 10)); !errors.Is(err2, boom) {
		t.Fatalf("error not sticky: %v", err2)
	}
}

func TestStreamingReaderSourceErrorBeforeHeader(t *testing.T) {
	boom := errors.New("connection reset")
	if _, err := NewReader(&failingReader{r: bytes.NewReader(nil), left: 0, err: boom}, StreamOptions{}); !errors.Is(err, boom) {
		t.Fatalf("want source error from NewReader, got %v", err)
	}
}

// stallingReader yields a prefix, then blocks until released.
type stallingReader struct {
	r       io.Reader
	left    int
	release chan struct{}
}

func (s *stallingReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		<-s.release
		return 0, io.EOF
	}
	if len(p) > s.left {
		p = p[:s.left]
	}
	n, err := s.r.Read(p)
	s.left -= n
	return n, err
}

// TestStreamingReaderCloseUnblocksStalledSource: Close must return
// even while the pipeline is waiting on a source that has stopped
// delivering (e.g. a stalled socket) — the worker is parked inside the
// window fill, not on the batch channel.
func TestStreamingReaderCloseUnblocksStalledSource(t *testing.T) {
	gz := gzCorpus(t, 30000, 93, 6)
	release := make(chan struct{})
	defer close(release) // let the stalled background read finish
	src := &stallingReader{r: bytes.NewReader(gz), left: len(gz) / 3, release: release}
	r, err := NewReader(src, StreamOptions{
		Threads:              2,
		BatchCompressedBytes: 32 << 10,
		MinChunk:             8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Consume what the prefix yields until the pipeline stalls, from a
	// separate goroutine so Close races with an in-flight Read.
	started := make(chan struct{})
	go func() {
		close(started)
		buf := make([]byte, 32<<10)
		for {
			if _, err := r.Read(buf); err != nil {
				return
			}
		}
	}()
	<-started
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // double Close stays fine
		t.Fatal(err)
	}
}

// TestStreamingReaderEarlyCloseMidStream closes after one batch while
// batches are still flowing and asserts the worker pool winds down
// (no deadlock, no panic; -race catches leaks touching freed state).
func TestStreamingReaderEarlyCloseMidStream(t *testing.T) {
	gz := gzCorpus(t, 40000, 31, 1)
	for i := 0; i < 3; i++ {
		r, err := NewReader(bytes.NewReader(gz), StreamOptions{
			Threads:              4,
			BatchCompressedBytes: 32 << 10,
			MinChunk:             8 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		if _, err := r.Read(buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// Read after Close on a partially consumed stream must not
		// hang: it either serves buffered data or reports EOF.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, err := r.Read(buf); err != nil {
					return
				}
			}
		}()
		<-done
	}
}

// countingWriter tracks how many compressed bytes the producer emitted.
type countingWriter struct {
	mu sync.Mutex
	w  io.Writer
	n  int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.mu.Lock()
	c.n += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *countingWriter) total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestStreamingReaderBoundedMemory is the acceptance-criterion test:
// a large synthetic multi-member gzip stream is produced incrementally
// into a pipe — it never exists as one slice anywhere — and
// decompressed with Threads >= 4 byte-identically to what went in,
// while the pipeline's peak compressed residency stays a small
// fraction of the stream, bounded by batch size (not stream size).
func TestStreamingReaderBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	const members = 4
	pr, pw := io.Pipe()
	cw := &countingWriter{w: pw}

	var wantHash []byte
	var wantLen int64
	go func() {
		h := newStreamHash()
		for m := 0; m < members; m++ {
			data := genFastq(40000, int64(100+m))
			h.Write(data)
			wantLen += int64(len(data))
			zw, _ := gzip.NewWriterLevel(cw, 1+m*2)
			if _, err := zw.Write(data); err != nil {
				pw.CloseWithError(err)
				return
			}
			if err := zw.Close(); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		wantHash = h.Sum(nil)
		pw.Close()
	}()

	const batch = 256 << 10
	r, err := NewReader(pr, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: batch,
		MinChunk:             16 << 10,
		VerifyChecksums:      true,
		ReadSize:             64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	h := newStreamHash()
	var gotLen int64
	buf := make([]byte, 256<<10)
	for {
		n, err := r.Read(buf)
		h.Write(buf[:n])
		gotLen += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if gotLen != wantLen || !bytes.Equal(h.Sum(nil), wantHash) {
		t.Fatalf("stream mismatch: %d bytes (want %d)", gotLen, wantLen)
	}

	st := r.Stats()
	total := cw.total()
	if st.Members != members {
		t.Fatalf("members = %d, want %d", st.Members, members)
	}
	// The bound: batch + confirmation slack + source prefetch — and in
	// all cases far below the total compressed stream.
	const slack = 256<<10 + 3*64<<10 // pipeline batchSlack + prefetch reads
	if st.MaxBufferedCompressed > batch+slack {
		t.Fatalf("peak compressed residency %d exceeds batch-derived bound %d", st.MaxBufferedCompressed, batch+slack)
	}
	if st.MaxBufferedCompressed >= total/4 {
		t.Fatalf("peak compressed residency %d not << total stream %d", st.MaxBufferedCompressed, total)
	}
	t.Logf("stream: %d compressed bytes, peak resident %d (%.1f%%), %d batches",
		total, st.MaxBufferedCompressed, 100*float64(st.MaxBufferedCompressed)/float64(total), st.Batches)
}
