package pugz_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	pugz "repro"
	"repro/internal/serve"
)

// BenchmarkServeRange measures the serving daemon's request path over
// real HTTP: "hot" is a ranged GET against a resident handle with a
// checkpoint index attached (the steady state of a long-running
// pugzd), "cold" pays a fresh server's first deep request — handle
// open plus the unindexed forward scan to the offset — the worst-case
// first touch of a just-mounted blob.
func BenchmarkServeRange(b *testing.B) {
	loadFixtures(b)
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "reads.gz"), fixGz, 0o644); err != nil {
		b.Fatal(err)
	}
	ix, err := pugz.BuildIndex(fixGz, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	sidecar, err := ix.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reads.gz.gzx"), sidecar, 0o644); err != nil {
		b.Fatal(err)
	}
	cat, err := serve.ScanDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	// The cold benchmark mounts the same blob without its sidecar, so
	// the first deep request really pays the unindexed forward scan.
	coldDir := b.TempDir()
	if err := os.WriteFile(filepath.Join(coldDir, "reads.gz"), fixGz, 0o644); err != nil {
		b.Fatal(err)
	}
	coldCat, err := serve.ScanDir(coldDir)
	if err != nil {
		b.Fatal(err)
	}
	newServer := func(cat *serve.Catalog) (*serve.Server, *httptest.Server) {
		s, err := serve.New(serve.Options{
			Catalog:      cat,
			File:         pugz.FileOptions{Threads: 4},
			IndexSpacing: -1, // the sidecar is the index; no background builds
		})
		if err != nil {
			b.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	const readLen = 64 << 10
	size := ix.Size()

	getRange := func(client *http.Client, url string, off int64) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+readLen-1))
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusPartialContent || n != readLen {
			b.Fatalf("status %d, %d bytes, err %v", resp.StatusCode, n, err)
		}
	}

	b.Run("hot", func(b *testing.B) {
		s, ts := newServer(cat)
		defer func() { ts.Close(); s.Close() }()
		client := ts.Client()
		url := ts.URL + "/blobs/reads.gz"
		getRange(client, url, 0) // warm the handle cache
		span := size - readLen
		b.ReportAllocs()
		b.SetBytes(readLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			getRange(client, url, (int64(i)*2654435761)%span)
		}
	})

	b.Run("cold", func(b *testing.B) {
		off := size * 3 / 4
		b.ReportAllocs()
		b.SetBytes(readLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, ts := newServer(coldCat)
			client := ts.Client()
			b.StartTimer()
			getRange(client, ts.URL+"/blobs/reads.gz", off)
			b.StopTimer()
			ts.Close()
			s.Close()
			b.StartTimer()
		}
	})
}
