package pugz

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/gzipx"
	"repro/internal/srcbuf"
)

// Reader streams parallel-decompressed gzip content from an arbitrary
// io.Reader with bounded memory — the "further engineering efforts"
// lifting of the paper's whole-file-in-memory limitation (Section
// VIII), for both directions: neither the compressed input nor the
// decompressed output is ever materialized in full. A reader goroutine
// fills a bounded compressed window from the source, Threads workers
// decode each batch's chunks with symbolic contexts, and an in-order
// resolver emits batches to Read with back-pressure, so peak memory is
// O(batch x threads), independent of the stream size.
//
// Reader implements io.ReadCloser; the byte stream is identical to
// gunzip's output across all members of a multi-member file.
type Reader struct {
	opts StreamOptions
	cs   cursorState
	p    *core.Pipeline

	batches chan []byte
	errc    chan error
	cancel  chan struct{}

	cur     []byte // unread part of the current batch
	done    bool
	readErr error

	closeOnce sync.Once
	closed    atomic.Bool
	members   atomic.Int64
}

// cursorState is the package-internal configuration File uses when it
// opens a Reader as its forward cursor: a mid-member resume point, a
// translation-free skip bound, and a checkpoint side-channel feeding
// the File's auto-index. The zero value is a plain Reader.
type cursorState struct {
	// resume, when non-nil, starts the first member mid-stream at a
	// known block boundary instead of parsing a gzip header.
	resume *resumePoint
	// skipTo is a stream-relative decompressed offset: output below it
	// is decoded without pass-2 translation and never emitted.
	skipTo int64
	// spacing/onCheckpoint: emit first-member restart points (pipeline
	// source coordinates) at least spacing output bytes apart.
	// onCheckpoint runs on the Reader's worker goroutine.
	spacing      int64
	onCheckpoint func(core.Checkpoint)
}

// resumePoint pins a Reader's start to a checkpoint: the source handed
// to newCursorReader must begin at the byte containing the boundary.
type resumePoint struct {
	bit    int64  // bit offset of the block boundary within the source
	window []byte // resolved 32 KiB preceding it (not mutated)
	out    int64  // first-member decompressed offset at the boundary
}

// StreamOptions configures a Reader.
type StreamOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed bytes consumed per batch
	// (default 4 MiB x Threads).
	BatchCompressedBytes int
	// MinChunk: minimum compressed bytes per chunk.
	MinChunk int
	// VerifyChecksums verifies each member's CRC-32 and ISIZE as the
	// stream completes.
	VerifyChecksums bool
	// ReadSize is the capacity of a single read issued against the
	// source (default 512 KiB). Lower it to tighten the memory bound
	// for small batch sizes.
	ReadSize int
	// Prefetch is how many source reads may be buffered ahead of
	// decoding (default 2) — the source-side back-pressure bound.
	Prefetch int
	// MaxWindowBytes caps compressed-window growth while the pipeline
	// retries a batch that would not decode (corrupt or non-text
	// streams). Default max(64 MiB, 4 x batch).
	MaxWindowBytes int
}

// ReaderStats reports how a streaming run went. Snapshot via
// Reader.Stats; values are final once Read has returned io.EOF.
type ReaderStats struct {
	// Members is the number of gzip members completed.
	Members int
	// Batches is the number of decompressed batches emitted.
	Batches int
	// OutBytes is the total decompressed size so far.
	OutBytes int64
	// MaxBufferedCompressed is the high-water mark of compressed bytes
	// resident in the source window — the evidence that the compressed
	// stream was never slurped.
	MaxBufferedCompressed int64
}

// NewReader returns a streaming parallel decompressor over an
// arbitrary gzip source: a file, a pipe, a socket, or an in-memory
// slice via bytes.NewReader (see NewReaderBytes). The first member
// header is read (and validated) before NewReader returns, like
// compress/gzip's NewReader. Callers should Close the Reader to
// release the pipeline if they stop reading early.
func NewReader(src io.Reader, o StreamOptions) (*Reader, error) {
	return newCursorReader(src, o, cursorState{})
}

// newCursorReader is NewReader plus the cursor-only surface (resume,
// skip, checkpoint side-channel). A resumed Reader starts mid-member,
// so no gzip header is parsed at its source's start.
func newCursorReader(src io.Reader, o StreamOptions, cs cursorState) (*Reader, error) {
	p := core.NewPipeline(src, core.PipelineOptions{
		Threads:              o.Threads,
		BatchCompressedBytes: o.BatchCompressedBytes,
		MinChunk:             o.MinChunk,
		ReadSize:             o.ReadSize,
		Prefetch:             o.Prefetch,
		MaxWindowBytes:       o.MaxWindowBytes,
	})
	if cs.resume == nil {
		if _, err := gzipx.ReadHeader(p.Window()); err != nil {
			p.Close()
			return nil, err
		}
	}
	r := &Reader{
		opts:    o,
		cs:      cs,
		p:       p,
		batches: make(chan []byte, 2),
		errc:    make(chan error, 1),
		cancel:  make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// NewReaderBytes is NewReader over an in-memory gzip file.
func NewReaderBytes(gz []byte, o StreamOptions) (*Reader, error) {
	return NewReader(bytes.NewReader(gz), o)
}

var errStreamCancelled = errors.New("pugz: stream cancelled")

// ErrReaderClosed is returned by Reader.Read once Close has run
// without the stream having reached a terminal state first: the
// consumer tore the Reader down mid-stream, so what it read so far is
// a truncated prefix, not a complete stream (a complete stream keeps
// reporting io.EOF even after Close). It matches errors.Is against
// os.ErrClosed.
var ErrReaderClosed error = readerClosedError{}

type readerClosedError struct{}

func (readerClosedError) Error() string { return "pugz: read on closed reader" }

// Is makes errors.Is(err, os.ErrClosed) succeed, mirroring what a
// closed os.File reports.
func (readerClosedError) Is(target error) bool { return target == os.ErrClosed }

// run walks members in a worker goroutine: the header of the current
// member is always already consumed when the loop body starts (or, for
// a resumed cursor, the first member continues from its resume point).
func (r *Reader) run() {
	defer close(r.batches)
	win := r.p.Window()
	memberBase := int64(0) // stream offset of the current member's first output byte
	first := true
	for {
		var crc, isize uint32
		mr := core.MemberRun{Emit: func(b []byte) error {
			if r.opts.VerifyChecksums {
				crc = crc32.Update(crc, crc32.IEEETable, b)
				isize += uint32(len(b))
			}
			// Hand the batch to the consumer; the pipeline allocates a
			// fresh buffer per batch, so ownership transfer is safe.
			select {
			case r.batches <- b:
				return nil
			case <-r.cancel:
				return errStreamCancelled
			}
		}}
		if first {
			if rp := r.cs.resume; rp != nil {
				mr.StartBit = rp.bit
				mr.Context = rp.window
				mr.OutBase = rp.out
			}
			// Checkpoints carry first-member offsets only, matching the
			// Index surface; later members decode without the side-channel.
			if r.cs.onCheckpoint != nil && r.cs.spacing > 0 {
				mr.CheckpointSpacing = r.cs.spacing
				mr.OnCheckpoint = func(cp core.Checkpoint) error {
					r.cs.onCheckpoint(cp)
					return nil
				}
			}
		}
		if r.cs.skipTo > memberBase {
			mr.SkipTo = r.cs.skipTo - memberBase
		}
		res, err := r.p.RunMemberOpts(mr)
		endBit := res.EndBit
		if err != nil {
			r.fail(err)
			return
		}
		memberBase += res.Out
		first = false
		// The member's final block ends at endBit; the trailer begins
		// at the next byte boundary.
		win.DiscardTo((endBit + 7) / 8)
		wantCRC, wantISize, err := gzipx.ReadTrailer(win)
		if err != nil {
			r.fail(err)
			return
		}
		if r.opts.VerifyChecksums {
			if crc != wantCRC {
				r.fail(fmt.Errorf("%w: CRC-32", ErrChecksum))
				return
			}
			if isize != wantISize {
				r.fail(fmt.Errorf("%w: ISIZE", ErrChecksum))
				return
			}
		}
		r.members.Add(1)
		// Another member, or a clean end of stream?
		if err := win.Fill(1); err != nil {
			r.fail(err)
			return
		}
		if win.Len() == 0 {
			return // clean EOF
		}
		if _, err := gzipx.ReadHeader(win); err != nil {
			r.fail(err)
			return
		}
	}
}

// fail records a terminal error for Read to surface, swallowing the
// sentinels that only mean "the consumer closed us first" — Read
// reports those as ErrReaderClosed via the closed flag, never as a
// clean io.EOF.
func (r *Reader) fail(err error) {
	if errors.Is(err, errStreamCancelled) || errors.Is(err, srcbuf.ErrClosed) {
		return
	}
	r.errc <- err
}

// Stats returns a snapshot of the run's progress counters (sourced
// from the pipeline, which owns them). Values are final once Read has
// returned io.EOF or an error.
func (r *Reader) Stats() ReaderStats {
	return ReaderStats{
		Members:               int(r.members.Load()),
		Batches:               r.p.BatchCount(),
		OutBytes:              r.p.OutBytes(),
		MaxBufferedCompressed: r.p.Window().MaxBuffered(),
	}
}

// Read implements io.Reader. Once Close has been called before the
// stream reached EOF (or a decode error), Read reports ErrReaderClosed
// rather than a clean end of stream — a truncated-by-Close stream must
// not be mistaken for a complete one. A Reader that already returned
// io.EOF keeps returning io.EOF after Close.
func (r *Reader) Read(p []byte) (int, error) {
	if r.readErr != nil {
		return 0, r.readErr
	}
	if r.closed.Load() {
		r.readErr = ErrReaderClosed
		return 0, r.readErr
	}
	for len(r.cur) == 0 {
		if r.done {
			r.readErr = io.EOF
			return 0, io.EOF
		}
		b, ok := <-r.batches
		if !ok {
			// Worker finished: a pending error, a cancellation by Close,
			// or clean EOF.
			select {
			case err := <-r.errc:
				r.readErr = err
				return 0, err
			default:
			}
			if r.closed.Load() {
				r.readErr = ErrReaderClosed
				return 0, r.readErr
			}
			r.done = true
			r.readErr = io.EOF
			return 0, io.EOF
		}
		r.cur = b
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close stops the pipeline and its source-reader goroutine. It is safe
// to call multiple times and after EOF (idempotent). Close does not
// close the underlying source reader. A Read after an early Close
// returns ErrReaderClosed; a Reader that had already delivered its
// whole stream keeps returning io.EOF.
func (r *Reader) Close() error {
	// Signal both blocking points — the batch hand-off and the source
	// window — before draining, so the worker exits even while waiting
	// on a slow or stalled source. The closed flag is set first so a
	// racing Read that observes the channels shutting down attributes
	// it to Close, not to end of stream.
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.cancel)
	})
	r.p.Close()
	// Drain so the worker can exit if blocked on send.
	for range r.batches {
	}
	return nil
}
