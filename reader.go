package pugz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/gzipx"
)

// Reader streams parallel-decompressed gzip content with bounded
// memory — the "further engineering efforts" lifting of the paper's
// whole-file-in-memory limitation (Section VIII). The compressed file
// still resides in memory (as in the paper's benchmarks); the
// *decompressed* stream is produced batch by batch, so peak memory is
// O(batch) instead of O(output).
//
// Reader implements io.Reader; the byte stream is identical to
// gunzip's output across all members.
type Reader struct {
	opts    StreamOptions
	rest    []byte // unparsed remainder of the gzip file
	payload []byte // current member's payload
	crc     uint32 // running CRC of the current member
	isize   uint32

	batches chan streamBatch
	errc    chan error
	cancel  chan struct{}

	cur     []byte // unread part of the current batch
	done    bool
	readErr error
}

type streamBatch struct {
	data []byte
}

// StreamOptions configures a Reader.
type StreamOptions struct {
	// Threads is the number of parallel chunks per batch.
	Threads int
	// BatchCompressedBytes is the compressed bytes consumed per batch
	// (default 4 MiB x Threads).
	BatchCompressedBytes int
	// MinChunk: minimum compressed bytes per chunk.
	MinChunk int
	// VerifyChecksums verifies each member's CRC-32 and ISIZE as the
	// stream completes.
	VerifyChecksums bool
}

// NewReader returns a streaming parallel decompressor over a complete
// in-memory gzip file. Callers should Close it to release the worker
// if they stop reading early.
func NewReader(gz []byte, o StreamOptions) (*Reader, error) {
	if _, err := gzipx.ParseHeader(gz); err != nil {
		return nil, err
	}
	r := &Reader{
		opts:    o,
		rest:    gz,
		batches: make(chan streamBatch, 2),
		errc:    make(chan error, 1),
		cancel:  make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// run walks members and batches in a worker goroutine.
func (r *Reader) run() {
	defer close(r.batches)
	for len(r.rest) > 0 {
		member, err := gzipx.ParseHeader(r.rest)
		if err != nil {
			r.errc <- err
			return
		}
		payload := r.rest[member.HeaderLen:]
		r.crc = 0
		r.isize = 0
		res, err := core.DecompressStream(payload, core.StreamOptions{
			Threads:              r.opts.Threads,
			BatchCompressedBytes: r.opts.BatchCompressedBytes,
			MinChunk:             r.opts.MinChunk,
		}, func(p []byte) error {
			if r.opts.VerifyChecksums {
				r.crc = crc32.Update(r.crc, crc32.IEEETable, p)
				r.isize += uint32(len(p))
			}
			// Hand the batch to the consumer; the engine allocates a
			// fresh buffer per batch, so ownership transfer is safe.
			select {
			case r.batches <- streamBatch{data: p}:
				return nil
			case <-r.cancel:
				return errStreamCancelled
			}
		})
		if err != nil {
			if !errors.Is(err, errStreamCancelled) {
				r.errc <- err
			}
			return
		}
		endByte := int((res.PayloadEndBit + 7) / 8)
		if len(payload) < endByte+8 {
			r.errc <- gzipx.ErrTruncated
			return
		}
		if r.opts.VerifyChecksums {
			wantCRC := binary.LittleEndian.Uint32(payload[endByte:])
			wantISize := binary.LittleEndian.Uint32(payload[endByte+4:])
			if r.crc != wantCRC {
				r.errc <- fmt.Errorf("%w: CRC-32", ErrChecksum)
				return
			}
			if r.isize != wantISize {
				r.errc <- fmt.Errorf("%w: ISIZE", ErrChecksum)
				return
			}
		}
		r.rest = payload[endByte+8:]
	}
}

var errStreamCancelled = errors.New("pugz: stream cancelled")

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.readErr != nil {
		return 0, r.readErr
	}
	for len(r.cur) == 0 {
		if r.done {
			r.readErr = io.EOF
			return 0, io.EOF
		}
		b, ok := <-r.batches
		if !ok {
			// Worker finished: either clean EOF or a pending error.
			select {
			case err := <-r.errc:
				r.readErr = err
				return 0, err
			default:
				r.done = true
				r.readErr = io.EOF
				return 0, io.EOF
			}
		}
		r.cur = b.data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close stops the worker goroutine. It is safe to call multiple times
// and after EOF.
func (r *Reader) Close() error {
	select {
	case <-r.cancel:
	default:
		close(r.cancel)
	}
	// Drain so the worker can exit if blocked on send.
	for range r.batches {
	}
	return nil
}
