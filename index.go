package pugz

import (
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/gzindex"
	"repro/internal/gzipx"
)

// This file is the streaming construction path for the zran-style
// checkpoint Index: one bounded-memory parallel pass over any
// io.Reader, with checkpoints harvested as a side-channel of the normal
// pipeline decode. The whole-file BuildIndex in baselines.go is a thin
// wrapper over it, and pugz -mkindex streams through it, so index
// construction no longer slurps the compressed file or decodes on one
// goroutine.

// NewIndexFromReader builds a checkpoint index of the first gzip member
// of src in one parallel streaming pass: checkpoints are emitted every
// spacing output bytes (0 selects 1 MiB) while batches decode through
// the bounded-memory pipeline, so peak memory is O(batch x threads +
// index), independent of the stream size. The resulting index is
// byte-identical (post-Marshal) to BuildIndex's over the same file.
func NewIndexFromReader(src io.Reader, spacing int64, o StreamOptions) (*Index, error) {
	ix, _, err := buildIndexStream(src, spacing, o)
	return ix, err
}

// indexBuildStats reports how a streaming index build went; used by
// tests to assert the bounded-memory property.
type indexBuildStats struct {
	// MaxBufferedCompressed is the peak compressed residency of the
	// pipeline's source window.
	MaxBufferedCompressed int64
	// Batches is the number of pipeline batches decoded.
	Batches int
}

// buildIndexStream is NewIndexFromReader returning build statistics.
func buildIndexStream(src io.Reader, spacing int64, o StreamOptions) (*Index, *indexBuildStats, error) {
	if spacing <= 0 {
		spacing = gzindex.DefaultSpacing
	}
	p := core.NewPipeline(src, core.PipelineOptions{
		Threads:              o.Threads,
		BatchCompressedBytes: o.BatchCompressedBytes,
		MinChunk:             o.MinChunk,
		ReadSize:             o.ReadSize,
		Prefetch:             o.Prefetch,
		MaxWindowBytes:       o.MaxWindowBytes,
	})
	defer p.Close()
	m, err := gzipx.ReadHeader(p.Window())
	if err != nil {
		return nil, nil, err
	}
	payloadOff := int64(m.HeaderLen)
	inner := &gzindex.Index{}
	res, err := p.RunMemberOpts(core.MemberRun{
		// The output is never materialised at all: SkipTo past
		// everything makes each batch a tail-only measuring pass
		// (O(32 KiB) per chunk), and ExactCheckpoints re-derives the
		// spacing-exact boundary windows the zran contract requires, so
		// the built index still marshals byte-identically to the
		// sequential gzindex.Build.
		Emit:              func([]byte) error { return nil },
		SkipTo:            math.MaxInt64,
		ExactCheckpoints:  true,
		CheckpointSpacing: spacing,
		OnCheckpoint: func(cp core.Checkpoint) error {
			inner.Checkpoints = append(inner.Checkpoints, gzindex.Checkpoint{
				Bit:    cp.Bit - payloadOff*8,
				Out:    cp.Out,
				Window: cp.Window,
			})
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	inner.OutSize = res.Out
	inner.EndBit = res.EndBit - payloadOff*8
	st := &indexBuildStats{
		MaxBufferedCompressed: p.Window().MaxBuffered(),
		Batches:               p.BatchCount(),
	}
	return &Index{inner: inner, payloadOff: payloadOff}, st, nil
}

// BuildIndex builds the index of the File's first member in one
// parallel streaming pass over its source and attaches it, so
// subsequent ReadAt calls within the indexed extent decode from the
// nearest checkpoint. It returns the index (e.g. to Marshal into a
// side-car). Like SetIndex, the attach is atomic: reads in flight see
// either the previous index or the new one.
func (f *File) BuildIndex(spacing int64) (*Index, error) {
	ix, err := NewIndexFromReader(io.NewSectionReader(f.src, 0, f.size), spacing, f.streamOptions())
	if err != nil {
		return nil, err
	}
	f.setIndex(ix)
	return ix, nil
}
