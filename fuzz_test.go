package pugz

// Native fuzz targets locking the decompressors against the standard
// library: on any input, neither API may panic; on input the stdlib
// accepts, both APIs must succeed and agree byte-for-byte. The seed
// corpus (testdata/fuzz/...) holds valid single- and multi-member
// files at several levels plus truncated/corrupted variants, so
// mutation starts from meaningful gzip framing.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/gzipx"
)

// fuzzInputLimit caps the compressed input a fuzz iteration accepts:
// DEFLATE expands at most ~1032x, so this bounds decompressed memory.
const fuzzInputLimit = 64 << 10

// fuzzSeeds returns the shared seed corpus for both targets.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(b []byte) { seeds = append(seeds, b) }

	text := []byte("@read1\nACGTACGTACGTACGTACGTTGCA\n+\nIIIIIIIIIIIIIIIIIIIIIIII\n")
	var big []byte
	for i := 0; i < 64; i++ {
		big = append(big, text...)
	}
	for _, level := range []int{0, 1, 6, 9} {
		gz, err := Compress(big, level)
		if err != nil {
			f.Fatal(err)
		}
		add(gz)
	}
	empty, err := Compress(nil, 6)
	if err != nil {
		f.Fatal(err)
	}
	add(empty)
	named, err := CompressNamed(text, 6, "reads.fastq")
	if err != nil {
		f.Fatal(err)
	}
	add(named)
	m1, _ := Compress(text, 1)
	m2, _ := Compress(big, 9)
	multi := append(append(append([]byte{}, m1...), empty...), m2...)
	add(multi)
	// Skip-mode seed: large enough output (~44 KiB) that a deep
	// File.ReadAt exercises the tail-only translation-free skip, at the
	// stored-heavy level where block starts are padding-ambiguous.
	var wide []byte
	for i := 0; i < 768; i++ {
		wide = append(wide, text...)
	}
	skipSeed, err := Compress(wide, 0)
	if err != nil {
		f.Fatal(err)
	}
	add(skipSeed)
	// Fast-loop seed: a tiny skewed alphabet compresses to very short
	// literal codes (2-3 bits), the regime where the multi-symbol decode
	// packs two literals per table probe — mutations around this seed
	// stress the packed-pair and budget-trim paths of the fast kernel.
	dense := make([]byte, 48<<10)
	for i := range dense {
		dense[i] = "eetta o"[i*2654435761>>27%7]
	}
	denseSeed, err := Compress(dense, 9)
	if err != nil {
		f.Fatal(err)
	}
	add(denseSeed)
	// Damaged variants: truncation, a flipped payload byte, a flipped
	// trailer byte, garbage after a valid member.
	add(m2[:len(m2)/2])
	flipped := append([]byte{}, m2...)
	flipped[len(flipped)/2] ^= 0x40
	add(flipped)
	badCRC := append([]byte{}, m1...)
	badCRC[len(badCRC)-6] ^= 0xff
	add(badCRC)
	add(append(append([]byte{}, m1...), []byte("garbage tail")...))
	add([]byte("\x1f\x8b")) // magic only
	add(nil)
	return seeds
}

// fuzzCompare runs one decompressor against the stdlib oracle.
func fuzzCompare(t *testing.T, data []byte, name string, run func([]byte) ([]byte, error)) {
	t.Helper()
	if len(data) > fuzzInputLimit {
		t.Skip("oversized input")
	}
	want, stdErr := stdGunzip(data)
	got, err := run(data)
	if stdErr != nil {
		// The stdlib rejected it; we only require a clean error (no
		// panic, no hang). Our error may legitimately differ.
		return
	}
	if err != nil {
		// The stdlib accepted the input but we rejected it. The one
		// deliberate strictness gap is RFC 1952's reserved FLG bits,
		// which compress/gzip ignores and pugz rejects.
		if errors.Is(err, gzipx.ErrBadFlags) {
			return
		}
		t.Fatalf("%s rejected stdlib-valid input: %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output mismatch: got %d bytes, want %d", name, len(got), len(want))
	}
}

func FuzzDecompress(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCompare(t, data, "Decompress", func(gz []byte) ([]byte, error) {
			out, _, err := Decompress(gz, Options{
				Threads:         3,
				MinChunk:        4 << 10,
				VerifyChecksums: true,
			})
			return out, err
		})
		fuzzSkipMode(t, data)
	})
}

// fuzzSkipMode drives the tail-only skip path on stdlib-valid inputs:
// a deep ReadAt (translation-free skip to ~80% of the output) and a
// Size() measuring pass must agree with the oracle, and no input may
// panic the skip machinery.
func fuzzSkipMode(t *testing.T, data []byte) {
	if len(data) > fuzzInputLimit {
		return
	}
	want, err := stdGunzip(data)
	if err != nil || len(want) < 4096 {
		// Outputs below one read have nothing to skip: the deep-seek
		// path degenerates to the plain cursor already fuzzed above.
		return
	}
	f, err := NewFileBytes(data, FileOptions{
		Threads:              2,
		BatchCompressedBytes: 16 << 10,
		MinChunk:             4 << 10,
	})
	if err != nil {
		return // framing the stdlib tolerates but pugz rejects (flags)
	}
	defer f.Close()
	off := int64(len(want)) * 4 / 5
	p := make([]byte, min(4096, len(want)-int(off)))
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		if errors.Is(err, gzipx.ErrBadFlags) {
			return // a later member uses reserved flags pugz rejects
		}
		t.Fatalf("skip-mode ReadAt(%d): %v", off, err)
	}
	if !bytes.Equal(p, want[off:off+int64(len(p))]) {
		t.Fatalf("skip-mode ReadAt(%d): mismatch vs stdlib", off)
	}
	size, err := f.Size()
	if err != nil {
		if errors.Is(err, gzipx.ErrBadFlags) {
			return
		}
		t.Fatalf("skip-mode Size: %v", err)
	}
	if size != int64(len(want)) {
		t.Fatalf("skip-mode Size = %d, want %d", size, len(want))
	}
}

func FuzzNewReader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCompare(t, data, "NewReader", func(gz []byte) ([]byte, error) {
			// Odd source read size exercises segment-boundary handling.
			r, err := NewReader(iotest(gz), StreamOptions{
				Threads:              4,
				BatchCompressedBytes: 64 << 10,
				MinChunk:             4 << 10,
				VerifyChecksums:      true,
				ReadSize:             1031,
			})
			if err != nil {
				return nil, err
			}
			defer r.Close()
			return io.ReadAll(r)
		})
	})
}

// iotest wraps a slice in a plain io.Reader (bytes.NewReader would
// also satisfy io.ByteReader and friends; this keeps the source
// minimal, like a net.Conn).
func iotest(b []byte) io.Reader { return &onlyReader{bytes.NewReader(b)} }

type onlyReader struct{ r io.Reader }

func (o *onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }
