package pugz_test

// Concurrency stress for the File surface: many goroutines mixing
// ReadAt, Read/Seek, Size, Checkpoints and Close on the same File,
// asserting every delivered byte against the stdlib gzip oracle. Run
// under -race (race-rest group) this is the proof that the snapshot +
// cursor-pool refactor left no shared mutable state behind.

import (
	"bytes"
	stdgzip "compress/gzip"
	"io"
	"math/rand"
	"sync"
	"testing"

	pugz "repro"
)

// stdlibGunzip is the oracle: stdlib multistream decode of gz.
func stdlibGunzip(t *testing.T, gz []byte) []byte {
	t.Helper()
	zr, err := stdgzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFileConcurrentStress(t *testing.T) {
	gzSingle := extGz(t, 5000, 81, 6)
	gzA, gzB := extGz(t, 2500, 82, 6), extGz(t, 2500, 83, 1)
	gzMulti := append(append([]byte{}, gzA...), gzB...)

	type variant struct {
		name  string
		gz    []byte
		ops   int // per-goroutine op count: cursor reads are far costlier than indexed ones
		setup func(t *testing.T, f *pugz.File)
	}
	variants := []variant{
		{name: "cold", gz: gzSingle, ops: 8, setup: func(*testing.T, *pugz.File) {}},
		{name: "autoindexed", gz: gzSingle, ops: 8, setup: func(t *testing.T, f *pugz.File) {
			// Prime the auto-index: the measuring pass harvests restart
			// points that concurrent deep reads then share.
			if _, err := f.Size(); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "indexed", gz: gzSingle, ops: 32, setup: func(t *testing.T, f *pugz.File) {
			ix, err := pugz.BuildIndex(gzSingle, 128<<10)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := ix.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if err := f.SetIndex(blob); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "multimember", gz: gzMulti, ops: 8, setup: func(*testing.T, *pugz.File) {}},
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			want := stdlibGunzip(t, v.gz)
			f, err := pugz.NewFileBytes(v.gz, pugz.FileOptions{
				Threads:              2,
				MinChunk:             16 << 10,
				BatchCompressedBytes: 256 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			v.setup(t, f)

			const (
				readers = 4
				readLen = 4 << 10
			)
			opsEach := v.ops
			var wg sync.WaitGroup

			// Positional readers: random offsets, byte-identity required.
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)*1000 + 7))
					buf := make([]byte, readLen)
					for i := 0; i < opsEach; i++ {
						off := rng.Int63n(int64(len(want)))
						n, err := f.ReadAt(buf, off)
						if err != nil && err != io.EOF {
							t.Errorf("ReadAt(%d): %v", off, err)
							return
						}
						wantN := int64(readLen)
						if rest := int64(len(want)) - off; rest < wantN {
							wantN = rest
						}
						if int64(n) != wantN {
							t.Errorf("ReadAt(%d): n=%d, want %d", off, n, wantN)
							return
						}
						if !bytes.Equal(buf[:n], want[off:off+int64(n)]) {
							t.Errorf("ReadAt(%d): content mismatch", off)
							return
						}
					}
				}(g)
			}

			// One Seek/Read streamer: it is the only goroutine moving the
			// shared position, so its view must stay byte-identical even
			// while positional readers churn the cursor pool.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(4242))
				buf := make([]byte, readLen)
				for i := 0; i < opsEach; i++ {
					off := rng.Int63n(int64(len(want)) - readLen)
					if _, err := f.Seek(off, io.SeekStart); err != nil {
						t.Errorf("Seek(%d): %v", off, err)
						return
					}
					if _, err := io.ReadFull(f, buf); err != nil {
						t.Errorf("Read at %d: %v", off, err)
						return
					}
					if !bytes.Equal(buf, want[off:off+readLen]) {
						t.Errorf("Read at %d: content mismatch", off)
						return
					}
				}
			}()

			// Size/Checkpoints poller: the first Size calls race on the
			// singleflight; all must agree with the oracle.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsEach; i++ {
					size, err := f.Size()
					if err != nil {
						t.Errorf("Size: %v", err)
						return
					}
					if size != int64(len(want)) {
						t.Errorf("Size = %d, want %d", size, len(want))
						return
					}
					_ = f.Checkpoints()
				}
			}()

			// Closer: Close only drains idle cursors; the File must stay
			// fully usable for everyone else.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					if err := f.Close(); err != nil {
						t.Errorf("Close: %v", err)
						return
					}
				}
			}()

			wg.Wait()
		})
	}
}

// TestFileConcurrentSizeSingleflight: concurrent first Size calls on
// an unindexed File must share one measuring pass and agree.
func TestFileConcurrentSizeSingleflight(t *testing.T) {
	gz := extGz(t, 6000, 84, 6)
	want := stdlibGunzip(t, gz)
	src := &trackingReaderAt{data: gz}
	f, err := pugz.NewFile(src, int64(len(gz)), pugz.FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const callers = 8
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			size, err := f.Size()
			if err != nil {
				t.Errorf("Size: %v", err)
				return
			}
			if size != int64(len(want)) {
				t.Errorf("Size = %d, want %d", size, len(want))
			}
		}()
	}
	wg.Wait()
	// One measuring pass reads the compressed file once (plus pipeline
	// read-ahead slack); eight independent passes could not fit this.
	if src.read > 2*int64(len(gz)) {
		t.Fatalf("concurrent Size read %d compressed bytes (file is %d): measuring pass not shared",
			src.read, len(gz))
	}
}

// TestFileConcurrentDeepSeeksMergeAutoIndex: concurrent deep reads on
// a cold File must merge their harvested restart points into one
// bounded auto-index (no loss, no unbounded accretion) while staying
// byte-identical.
func TestFileConcurrentDeepSeeksMergeAutoIndex(t *testing.T) {
	gz := extGz(t, 8000, 85, 6)
	want := stdlibGunzip(t, gz)
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{
		Threads:          2,
		MinChunk:         16 << 10,
		AutoIndexSpacing: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const divers = 6
	var wg sync.WaitGroup
	for g := 0; g < divers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4<<10)
			off := int64(len(want)) * int64(g+2) / (divers + 2)
			n, err := f.ReadAt(buf, off)
			if err != nil && err != io.EOF {
				t.Errorf("deep ReadAt(%d): %v", off, err)
				return
			}
			if !bytes.Equal(buf[:n], want[off:off+int64(n)]) {
				t.Errorf("deep ReadAt(%d): content mismatch", off)
			}
		}(g)
	}
	wg.Wait()

	cps := f.Checkpoints()
	if cps == 0 {
		t.Fatal("concurrent deep seeks harvested no restart points")
	}
	// Overlapping harvests must converge (neighbour suppression), not
	// accrete one set per cursor: the retained points fit the spacing
	// grid with a small constant of slack.
	if max := int(int64(len(want))/(64<<10)) + divers; cps > max {
		t.Fatalf("auto-index accreted %d checkpoints (bound %d)", cps, max)
	}
}
