package pugz

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/framing"
)

// RecordOptions configures a File.Records scan.
type RecordOptions struct {
	// Framer selects the record framing. nil selects FASTQFraming{}.
	Framer Framer
	// Sync marks the scan's starting offset as possibly mid-record:
	// the scanner discards bytes up to the first confirmed record
	// boundary instead of treating the offset as record-aligned.
	Sync bool
	// To stops the scan before records beginning at or after this
	// decompressed offset (0 = scan to end of stream).
	To int64
	// MaxRecordBytes bounds the lookahead buffered for a single
	// record; a record longer than this aborts the scan with an error
	// (0 selects 16 MiB).
	MaxRecordBytes int
}

// ErrRecordTooLong is returned by RecordScanner.Err when a single
// record exceeds RecordOptions.MaxRecordBytes.
var ErrRecordTooLong = errors.New("pugz: record exceeds MaxRecordBytes")

// Records returns a scanner yielding the records of the decompressed
// stream from decompressed offset from, in order. Unlike
// RandomAccessAt this is the exact surface: bytes are decoded through
// the File's normal read paths — nearest index checkpoint, retained
// auto-index restart points, pooled forward-scan cursors — so an
// ascending record scan costs one sequential pass and never yields an
// undetermined byte. The offset must be record-aligned unless
// RecordOptions.Sync is set.
//
// The scanner reads through File.ReadAt, so any number of scanners
// (and other readers) may run concurrently over one File.
//
//	sc, _ := f.Records(0, pugz.RecordOptions{Framer: pugz.NewlineFraming{}})
//	for sc.Next() {
//		rec := sc.Record()
//		// rec.Offset is the record's absolute decompressed offset.
//	}
//	if err := sc.Err(); err != nil { ... }
func (f *File) Records(from int64, o RecordOptions) (*RecordScanner, error) {
	if from < 0 {
		return nil, fmt.Errorf("pugz: negative record scan offset %d", from)
	}
	fr := o.Framer
	if fr == nil {
		fr = FASTQFraming{}
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = defaultMaxRecordBytes
	}
	return &RecordScanner{f: f, fr: fr, opts: o, base: from, atStart: !o.Sync}, nil
}

const (
	defaultMaxRecordBytes = 16 << 20
	recordScanChunk       = 256 << 10
)

// RecordScanner iterates the records of a File's decompressed stream:
// call Next until it returns false, then check Err. It buffers one
// read chunk of lookahead plus any incomplete record tail, and is not
// safe for concurrent use by multiple goroutines (open one scanner
// per goroutine instead; they share the File's cursor pool).
type RecordScanner struct {
	f    *File
	fr   Framer
	opts RecordOptions

	base    int64  // decompressed offset of buf[0]
	buf     []byte // buffered decompressed lookahead
	pending []framing.Record
	pi      int
	atStart bool // buf[0] is a record boundary
	eof     bool // buf reaches the end of the stream

	cur  Record
	err  error
	done bool
}

// Next advances to the next record, reporting false at end of scan or
// on error. The record is available via Record until the following
// Next call.
func (s *RecordScanner) Next() bool {
	if s.done {
		return false
	}
	for {
		if s.pi < len(s.pending) {
			rec := s.pending[s.pi]
			s.pi++
			off := s.base + int64(rec.Start)
			if s.opts.To > 0 && off >= s.opts.To {
				s.done = true
				return false
			}
			s.cur = Record{Offset: off, Data: rec.Bytes(s.buf), Undetermined: rec.Holes}
			return true
		}
		if s.pending != nil {
			// Every framed record is consumed: drop the scanned prefix
			// (retaining the terminator-bearing tail, which keeps the
			// next window's leading boundary confirmable) before
			// buffering more.
			cut := s.pending[len(s.pending)-1].End
			s.buf = s.buf[:copy(s.buf, s.buf[cut:])]
			s.base += int64(cut)
			s.pending, s.pi = nil, 0
			s.atStart = false
		}
		if s.eof {
			s.done = true
			return false
		}
		if !s.fill() {
			return false
		}
		recs := s.fr.Records(s.buf, s.atStart, s.eof)
		if !s.eof {
			// A record touching the end of the lookahead may continue in
			// the next chunk; hold it back until more bytes arrive.
			for len(recs) > 0 && recs[len(recs)-1].End == len(s.buf) {
				recs = recs[:len(recs)-1]
			}
		}
		if len(recs) == 0 {
			if s.eof {
				s.done = true
				return false
			}
			if len(s.buf) > s.opts.MaxRecordBytes {
				s.err = fmt.Errorf("%w (%d buffered at offset %d)", ErrRecordTooLong, len(s.buf), s.base)
				s.done = true
				return false
			}
			continue // read more lookahead
		}
		s.pending, s.pi = recs, 0
	}
}

// fill appends one read chunk to the lookahead, reporting false when
// the scan must stop (read error).
func (s *RecordScanner) fill() bool {
	n := len(s.buf)
	s.buf = append(s.buf, make([]byte, recordScanChunk)...)
	m, err := s.f.ReadAt(s.buf[n:], s.base+int64(n))
	s.buf = s.buf[:n+m]
	switch {
	case err == nil:
	case errors.Is(err, io.EOF):
		s.eof = true
	default:
		s.err = err
		s.done = true
		return false
	}
	return true
}

// Record returns the record found by the latest Next. Its Data aliases
// the scanner's buffer and is valid until the next Next call.
func (s *RecordScanner) Record() Record { return s.cur }

// Err returns the first error encountered by the scan (nil after a
// clean end of stream).
func (s *RecordScanner) Err() error { return s.err }
