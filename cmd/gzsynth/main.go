// Command gzsynth generates the synthetic corpora used throughout the
// reproduction and compresses them with this repository's
// gzip-compatible compressor at any level 0-9:
//
//	gzsynth -kind fastq -reads 100000 -level 6 -o sample.fastq.gz
//	gzsynth -kind dna -bytes 1000000 -level 1 -o dna.gz
//	gzsynth -kind fastqlike -bytes 150000000 -level 1 -o fql.gz
//	gzsynth -kind fastq -reads 1000 -level 0 -plain -o tiny.fastq
//
// Beyond the paper's FASTQ/DNA corpora it generates the record
// workloads of the framing layer — JSONL, log lines, WARC records —
// and can write them as multi-member, stored-block-heavy archives
// (independent gzip members cycling through a level list), the shape
// real rotated-log and web-archive collections take:
//
//	gzsynth -kind jsonl -records 200000 -members 8 -levels 0,1,6,9 -o logs.jsonl.gz
//	gzsynth -kind warc -records 5000 -members 4 -levels 0,0,9 -o crawl.warc.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	pugz "repro"
	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/framing"
)

func main() {
	kind := flag.String("kind", "fastq", "corpus kind: fastq | dna | fastqlike | jsonl | log | warc")
	reads := flag.Int("reads", 50000, "number of reads (fastq)")
	readLen := flag.Int("readlen", 100, "read length (fastq)")
	bytes := flag.Int("bytes", 1_000_000, "corpus size in bytes (dna, fastqlike)")
	records := flag.Int("records", 10000, "number of records (jsonl, log, warc)")
	level := flag.Int("level", 6, "compression level 0-9")
	levels := flag.String("levels", "", "comma-separated level cycle for -members (overrides -level)")
	members := flag.Int("members", 1, "split the corpus into this many independent gzip members")
	seed := flag.Int64("seed", 1, "RNG seed")
	plain := flag.Bool("plain", false, "write uncompressed output")
	threads := flag.Int("threads", 1, "parallel compression threads (pigz-style chunking when > 1)")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gzsynth -kind fastq|dna|fastqlike|jsonl|log|warc [-reads N|-bytes N|-records N] [-members M -levels L,L,..] -level L -o FILE")
		os.Exit(2)
	}

	var data []byte
	switch *kind {
	case "fastq":
		data = fastq.Generate(fastq.GenOptions{Reads: *reads, ReadLen: *readLen, Seed: *seed})
	case "dna":
		data = dna.Random(*bytes, *seed)
	case "fastqlike":
		data = dna.PaperFASTQLike(*bytes, *seed)
	case "jsonl":
		data = framing.GenJSONL(*records, *seed)
	case "log":
		data = framing.GenLog(*records, *seed)
	case "warc":
		data = framing.GenWARC(*records, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gzsynth: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *plain {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gzsynth: wrote %d bytes (uncompressed)\n", len(data))
		return
	}

	cycle, err := parseLevels(*levels, *level)
	if err != nil {
		fatal(err)
	}

	var gz []byte
	switch {
	case *members > 1:
		gz, err = multiMember(data, *members, cycle)
	case *threads > 1:
		gz, err = pugz.CompressParallel(data, cycle[0], *threads)
	default:
		gz, err = pugz.CompressNamed(data, cycle[0], *out)
	}
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, gz, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gzsynth: %d -> %d bytes (%d member(s), levels %v, ratio %.2f)\n",
		len(data), len(gz), *members, cycle, float64(len(data))/float64(len(gz)))
}

// parseLevels resolves the member level cycle: the -levels list when
// given, else the single -level.
func parseLevels(list string, level int) ([]int, error) {
	if list == "" {
		return []int{level}, nil
	}
	var cycle []int
	for _, s := range strings.Split(list, ",") {
		l, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || l < 0 || l > 9 {
			return nil, fmt.Errorf("bad -levels entry %q", s)
		}
		cycle = append(cycle, l)
	}
	return cycle, nil
}

// multiMember splits data into n consecutive extents and compresses
// each as an independent gzip member, cycling through the level list —
// a level-0 entry makes that member all stored blocks, the
// stored-block-heavy shape the blockfind hardening targets.
func multiMember(data []byte, n int, cycle []int) ([]byte, error) {
	var out []byte
	per := (len(data) + n - 1) / n
	if per == 0 {
		per = 1
	}
	for i := 0; len(data) > 0; i++ {
		ext := per
		if ext > len(data) {
			ext = len(data)
		}
		gz, err := pugz.Compress(data[:ext], cycle[i%len(cycle)])
		if err != nil {
			return nil, err
		}
		out = append(out, gz...)
		data = data[ext:]
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gzsynth:", err)
	os.Exit(1)
}
