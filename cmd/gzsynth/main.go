// Command gzsynth generates the synthetic corpora used throughout the
// reproduction and compresses them with this repository's
// gzip-compatible compressor at any level 0-9:
//
//	gzsynth -kind fastq -reads 100000 -level 6 -o sample.fastq.gz
//	gzsynth -kind dna -bytes 1000000 -level 1 -o dna.gz
//	gzsynth -kind fastqlike -bytes 150000000 -level 1 -o fql.gz
//	gzsynth -kind fastq -reads 1000 -level 0 -plain -o tiny.fastq
package main

import (
	"flag"
	"fmt"
	"os"

	pugz "repro"
	"repro/internal/dna"
	"repro/internal/fastq"
)

func main() {
	kind := flag.String("kind", "fastq", "corpus kind: fastq | dna | fastqlike")
	reads := flag.Int("reads", 50000, "number of reads (fastq)")
	readLen := flag.Int("readlen", 100, "read length (fastq)")
	bytes := flag.Int("bytes", 1_000_000, "corpus size in bytes (dna, fastqlike)")
	level := flag.Int("level", 6, "compression level 0-9")
	seed := flag.Int64("seed", 1, "RNG seed")
	plain := flag.Bool("plain", false, "write uncompressed output")
	threads := flag.Int("threads", 1, "parallel compression threads (pigz-style chunking when > 1)")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gzsynth -kind fastq|dna|fastqlike [-reads N|-bytes N] -level L -o FILE")
		os.Exit(2)
	}

	var data []byte
	switch *kind {
	case "fastq":
		data = fastq.Generate(fastq.GenOptions{Reads: *reads, ReadLen: *readLen, Seed: *seed})
	case "dna":
		data = dna.Random(*bytes, *seed)
	case "fastqlike":
		data = dna.PaperFASTQLike(*bytes, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gzsynth: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *plain {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gzsynth: wrote %d bytes (uncompressed)\n", len(data))
		return
	}

	var gz []byte
	var err error
	if *threads > 1 {
		gz, err = pugz.CompressParallel(data, *level, *threads)
	} else {
		gz, err = pugz.CompressNamed(data, *level, *out)
	}
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, gz, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gzsynth: %d -> %d bytes (level %d, ratio %.2f)\n",
		len(data), len(gz), *level, float64(len(data))/float64(len(gz)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gzsynth:", err)
	os.Exit(1)
}
