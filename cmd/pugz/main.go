// Command pugz is a parallel gunzip: it decompresses gzip files using
// the two-pass algorithm of the paper, producing output byte-identical
// to gunzip's.
//
//	pugz -t 8 file.fastq.gz              # decompress to file.fastq
//	pugz -c -t 8 file.fastq.gz > out     # decompress to stdout
//	pugz -stats -t 8 file.fastq.gz       # print a phase breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	pugz "repro"
)

func main() {
	threads := flag.Int("t", runtime.NumCPU(), "number of decompression threads")
	stdout := flag.Bool("c", false, "write to standard output")
	output := flag.String("o", "", "output file (default: input without .gz)")
	verify := flag.Bool("check", false, "verify CRC-32 and ISIZE (pugz skips checksums by default, like the paper)")
	stats := flag.Bool("stats", false, "print phase timing to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pugz [-t N] [-c|-o out] [-check] [-stats] file.gz")
		os.Exit(2)
	}
	in := flag.Arg(0)
	gz, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	t0 := time.Now()
	out, st, err := pugz.Decompress(gz, pugz.Options{
		Threads:         *threads,
		VerifyChecksums: *verify,
	})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0)

	switch {
	case *stdout:
		if _, err := os.Stdout.Write(out); err != nil {
			fatal(err)
		}
	default:
		dst := *output
		if dst == "" {
			dst = strings.TrimSuffix(in, ".gz")
			if dst == in {
				dst = in + ".out"
			}
		}
		if err := os.WriteFile(dst, out, 0o644); err != nil {
			fatal(err)
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "pugz: %d -> %d bytes in %v (%.0f MB/s compressed)\n",
			len(gz), len(out), wall, float64(len(gz))/1e6/wall.Seconds())
		fmt.Fprintf(os.Stderr, "  members=%d chunks=%d sync=%v pass1=%v pass2(seq)=%v pass2(par)=%v\n",
			st.Members, len(st.Chunks), st.SyncWall, st.Pass1Wall, st.Pass2SeqWall, st.Pass2ParWall)
		for i, c := range st.Chunks {
			fmt.Fprintf(os.Stderr, "  chunk %2d: bits [%d,%d) out=%d unresolved=%d find=%v pass1=%v pass2=%v\n",
				i, c.StartBit, c.EndBit, c.OutBytes, c.SymbolsUnresolved, c.Find, c.Pass1, c.Pass2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pugz:", err)
	os.Exit(1)
}
