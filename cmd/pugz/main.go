// Command pugz is a parallel gunzip: it decompresses gzip files using
// the two-pass algorithm of the paper, producing output byte-identical
// to gunzip's.
//
// By default input is streamed through the bounded-memory pipeline
// (pugz.NewReader), so multi-GiB files and pipes decompress without
// the compressed or decompressed payload ever residing in memory:
//
//	pugz -t 8 file.fastq.gz              # decompress to file.fastq
//	pugz -c -t 8 file.fastq.gz > out     # decompress to stdout
//	cat file.fastq.gz | pugz -c - > out  # decompress from a pipe
//	pugz -stats -t 8 file.fastq.gz       # print a pipeline summary
//	pugz -slurp -stats file.fastq.gz     # whole-file mode, per-chunk stats
//
// With -offset (and optionally -length) pugz extracts a range of the
// *decompressed* stream through the seekable pugz.File surface instead
// of emitting everything — without loading the whole file:
//
//	pugz -c -offset 1000000 -length 4096 file.gz   # bytes [1000000, 1004096)
//	pugz -mkindex file.gz.gzx file.gz              # build a checkpoint index
//	pugz -c -index file.gz.gzx -offset 50% -length 4096 file.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	pugz "repro"
	"repro/internal/cliutil"
)

func main() {
	threads := cliutil.Threads()
	stdout := flag.Bool("c", false, "write to standard output")
	output := flag.String("o", "", "output file (default: input without .gz)")
	verify := flag.Bool("check", false, "verify CRC-32 and ISIZE (pugz skips checksums by default, like the paper)")
	stats := flag.Bool("stats", false, "print phase timing to stderr")
	batch := flag.Int("batch", 0, "compressed bytes per streaming batch (default 4 MiB x threads)")
	maxWindow := flag.Int("maxwindow", 0, "cap on the buffered compressed window; lower it to fail fast on corrupt or non-text streams (default max(64 MiB, 4 x batch))")
	slurp := flag.Bool("slurp", false, "read the whole file into memory and use the two-pass whole-file engine")
	offset := flag.String("offset", "", "extract starting at this decompressed offset (absolute or NN% of the decompressed size); requires a regular file")
	length := flag.Int64("length", 0, "with -offset: number of decompressed bytes to extract (0 = to end)")
	indexPath := flag.String("index", "", "sidecar checkpoint index (from -mkindex) accelerating -offset extraction")
	mkindex := flag.String("mkindex", "", "build a checkpoint index of the input and write it to this path, then exit")
	spacing := flag.Int64("spacing", 0, "with -mkindex: checkpoint spacing in decompressed bytes (default 1 MiB)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pugz [-t N] [-c|-o out] [-check] [-stats] [-batch N] [-maxwindow N] [-slurp] file.gz|-")
		fmt.Fprintln(os.Stderr, "       pugz [-t N] [-c|-o out] [-offset POS [-length N]] [-index file.gzx] file.gz")
		fmt.Fprintln(os.Stderr, "       pugz -mkindex file.gzx file.gz")
		os.Exit(2)
	}
	in := flag.Arg(0)

	if *mkindex != "" {
		runMkindex(in, *mkindex, *spacing, *threads, *batch, *maxWindow)
		return
	}
	if *offset != "" {
		runRange(in, *offset, *length, *indexPath, *threads, *stdout, *output)
		return
	}

	src, closeSrc, err := cliutil.OpenInput(in)
	if err != nil {
		fatal(err)
	}
	defer closeSrc()

	dst, commit, abort := openDst(in, *stdout, *output)

	if *slurp {
		runSlurped(src, dst, commit, abort, *threads, *verify, *stats)
		return
	}

	t0 := time.Now()
	r, err := pugz.NewReader(src, pugz.StreamOptions{
		Threads:              *threads,
		BatchCompressedBytes: *batch,
		VerifyChecksums:      *verify,
		MaxWindowBytes:       *maxWindow,
	})
	if err != nil {
		abort()
		fatal(err)
	}
	defer r.Close()
	w := bufio.NewWriterSize(dst, 1<<20)
	n, err := io.Copy(w, r)
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		abort()
		fatal(err)
	}
	if err := commit(); err != nil {
		fatal(err)
	}
	if *stats {
		wall := time.Since(t0)
		st := r.Stats()
		fmt.Fprintf(os.Stderr, "pugz: %d bytes out in %v (%.0f MB/s decompressed)\n",
			n, wall, float64(n)/1e6/wall.Seconds())
		fmt.Fprintf(os.Stderr, "  members=%d batches=%d peak compressed window=%d bytes\n",
			st.Members, st.Batches, st.MaxBufferedCompressed)
	}
}

// runRange extracts a decompressed byte range through the seekable
// pugz.File surface: indexed extraction decodes only from the nearest
// checkpoint; unindexed extraction scans forward with bounded memory.
func runRange(in, offsetSpec string, length int64, indexPath string, threads int, stdout bool, output string) {
	if in == "-" {
		fatal(fmt.Errorf("-offset needs a seekable file, not a pipe"))
	}
	src, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		fatal(err)
	}
	f, err := pugz.NewFile(src, fi.Size(), pugz.FileOptions{Threads: threads})
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if indexPath != "" {
		blob, err := os.ReadFile(indexPath)
		if err != nil {
			fatal(err)
		}
		if err := f.SetIndex(blob); err != nil {
			fatal(err)
		}
	}

	var off int64
	if strings.HasSuffix(offsetSpec, "%") {
		size, err := f.Size()
		if err != nil {
			fatal(err)
		}
		off, err = cliutil.ParseOffset(offsetSpec, size)
		if err != nil {
			fatal(err)
		}
	} else if off, err = cliutil.ParseOffset(offsetSpec, 0); err != nil {
		fatal(err)
	}

	dst, commit, abort := openDst(in, stdout, output)
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		abort()
		fatal(err)
	}
	var rd io.Reader = f
	if length > 0 {
		rd = io.LimitReader(f, length)
	}
	w := bufio.NewWriterSize(dst, 1<<20)
	// Large copy chunks matter when an index is attached: each indexed
	// read inflates from the nearest checkpoint, so amortise that over
	// a checkpoint-spacing-sized buffer rather than io.Copy's 32 KiB.
	if _, err := io.CopyBuffer(w, rd, make([]byte, 1<<20)); err != nil {
		abort()
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		abort()
		fatal(err)
	}
	if err := commit(); err != nil {
		fatal(err)
	}
}

// runMkindex builds the zran-style checkpoint index of the input and
// writes its serialised form next to the data, for later -index runs.
// The input streams through the parallel pipeline — nothing is slurped,
// so peak memory is bounded by the batch size, not the file size, and
// pipes work:
//
//	zcat-producing-process | pugz -mkindex big.gzx -
func runMkindex(in, out string, spacing int64, threads, batch, maxWindow int) {
	src, closeSrc, err := cliutil.OpenInput(in)
	if err != nil {
		fatal(err)
	}
	defer closeSrc()
	ix, err := pugz.NewIndexFromReader(src, spacing, pugz.StreamOptions{
		Threads:              threads,
		BatchCompressedBytes: batch,
		MaxWindowBytes:       maxWindow,
	})
	if err != nil {
		fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pugz: %d checkpoints over %d decompressed bytes -> %s (%d bytes)\n",
		ix.Checkpoints(), ix.Size(), out, len(blob))
}

// runSlurped is the pre-streaming path: the whole compressed file in
// memory, whole-file two-pass decompression, detailed per-chunk stats.
func runSlurped(src io.Reader, dst io.Writer, commit func() error, abort func(), threads int, verify, stats bool) {
	gz, err := io.ReadAll(src)
	if err != nil {
		abort()
		fatal(err)
	}
	t0 := time.Now()
	out, st, err := pugz.Decompress(gz, pugz.Options{
		Threads:         threads,
		VerifyChecksums: verify,
	})
	if err != nil {
		abort()
		fatal(err)
	}
	wall := time.Since(t0)
	if _, err := dst.Write(out); err != nil {
		abort()
		fatal(err)
	}
	if err := commit(); err != nil {
		fatal(err)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "pugz: %d -> %d bytes in %v (%.0f MB/s compressed)\n",
			len(gz), len(out), wall, float64(len(gz))/1e6/wall.Seconds())
		fmt.Fprintf(os.Stderr, "  members=%d chunks=%d sync=%v pass1=%v pass2(seq)=%v pass2(par)=%v\n",
			st.Members, len(st.Chunks), st.SyncWall, st.Pass1Wall, st.Pass2SeqWall, st.Pass2ParWall)
		for i, c := range st.Chunks {
			fmt.Fprintf(os.Stderr, "  chunk %2d: bits [%d,%d) out=%d unresolved=%d find=%v pass1=%v pass2=%v\n",
				i, c.StartBit, c.EndBit, c.OutBytes, c.SymbolsUnresolved, c.Find, c.Pass1, c.Pass2)
		}
	}
}

// openDst resolves the output target: stdout with -c (or stdin input),
// -o, or the input path with .gz stripped. File output goes to a
// temporary sibling that commit renames into place, so a failed run
// never truncates or replaces an existing good file with partial
// output.
func openDst(in string, stdout bool, output string) (w io.Writer, commit func() error, abort func()) {
	if stdout || (in == "-" && output == "") {
		return os.Stdout, func() error { return nil }, func() {}
	}
	dst := output
	if dst == "" {
		dst = strings.TrimSuffix(in, ".gz")
		if dst == in {
			dst = in + ".out"
		}
	}
	if fi, err := os.Stat(dst); err == nil && !fi.Mode().IsRegular() {
		// /dev/null, a FIFO, ...: write through directly; the
		// tmp+rename dance would replace the special file.
		f, err := os.OpenFile(dst, os.O_WRONLY, 0)
		if err != nil {
			fatal(err)
		}
		return f, f.Close, func() { f.Close() }
	}
	tmp := dst + ".pugz-tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fatal(err)
	}
	commit = func() error {
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, dst)
	}
	abort = func() {
		f.Close()
		os.Remove(tmp)
	}
	return f, commit, abort
}

func fatal(err error) {
	cliutil.Fatal("pugz", err)
}
