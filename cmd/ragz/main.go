// Command ragz performs index-free record access inside gzip
// compressed record streams — logs, JSONL, WARC archives, FASTQ — the
// paper's fqgz prototype generalised over pluggable record framings:
// it syncs to a DEFLATE block near the requested compressed offset,
// decompresses with an undetermined context, and prints the complete
// records the framing recovers from the resolved text.
//
//	ragz -framer jsonl -offset 25% crawl.jsonl.gz      # seek into logs
//	ragz -framer warc -offset 1000000 -max 8000000 crawl.warc.gz
//	ragz -framer fastq -offset 50% reads.fastq.gz      # fqgz equivalent
//	ragz -framer newline -summary -offset 50% app.log.gz
//
// With -scan the exact surface is used instead: records are decoded
// through the File's read paths (index checkpoints, auto-index restart
// points, pooled cursors) from a *decompressed* offset, never holed:
//
//	ragz -framer jsonl -scan -from 0 crawl.jsonl.gz    # every record
//	ragz -framer jsonl -scan -from 4000000 -sync -n 100 crawl.jsonl.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	pugz "repro"
	"repro/internal/cliutil"
)

func main() {
	framer := flag.String("framer", "newline", "record framing: newline | jsonl | warc | fastq")
	offsetFlag := flag.String("offset", "25%", "compressed byte offset (absolute or NN%) for random access")
	maxOut := flag.Int64("max", 0, "stop after this many decompressed bytes (0 = to end of member)")
	minLen := flag.Int("minlen", 0, "minimum record length (fastq default 32, newline 1)")
	scan := flag.Bool("scan", false, "exact record scan at decompressed offsets instead of random access")
	from := flag.Int64("from", 0, "decompressed start offset for -scan (record-aligned unless -sync)")
	sync := flag.Bool("sync", false, "with -scan: -from may be mid-record; skip to the first boundary")
	n := flag.Int("n", 0, "stop after this many records (0 = no limit)")
	summary := flag.Bool("summary", false, "print statistics instead of records")
	threads := cliutil.Threads()
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ragz -framer newline|jsonl|warc|fastq [-offset POS] [-max N] [-summary] file.gz\n       ragz -framer F -scan [-from N] [-sync] [-n N] file.gz")
		os.Exit(2)
	}

	var fr pugz.Framer
	switch *framer {
	case "newline":
		fr = pugz.NewlineFraming{MinLen: *minLen}
	case "jsonl":
		fr = pugz.NewlineFraming{ValidateJSON: true, MinLen: *minLen}
	case "warc":
		fr = pugz.WARCFraming{}
	case "fastq":
		fr = pugz.FASTQFraming{MinLen: *minLen}
	default:
		fmt.Fprintf(os.Stderr, "ragz: unknown framer %q\n", *framer)
		os.Exit(2)
	}

	src, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		fatal(err)
	}
	f, err := pugz.NewFile(src, fi.Size(), pugz.FileOptions{Threads: *threads})
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *scan {
		scanRecords(f, fr, *from, *sync, *n, *summary, w)
		return
	}

	offset, err := cliutil.ParseOffset(*offsetFlag, fi.Size())
	if err != nil {
		fatal(err)
	}
	res, err := f.RandomAccessAt(offset, pugz.RandomAccessOptions{
		MaxOutput: *maxOut,
		Framer:    fr,
	})
	if err != nil {
		fatal(err)
	}

	if *summary {
		clean := 0
		for _, r := range res.Records {
			if r.Unambiguous() {
				clean++
			}
		}
		fmt.Fprintf(w, "offset %d: synced to payload bit %d\n", offset, res.BlockBit)
		fmt.Fprintf(w, "decoded %d bytes across %d blocks (framer %q)\n", len(res.Text), len(res.Blocks), fr.Name())
		fmt.Fprintf(w, "records: %d recovered, %d unambiguous\n", len(res.Records), clean)
		if res.FirstResolvedBlock >= 0 {
			fmt.Fprintf(w, "first record-resolved block: #%d after %.2f MB\n",
				res.FirstResolvedBlock, float64(res.DelayBytes)/1e6)
		} else {
			fmt.Fprintln(w, "no record-resolved block found")
		}
		return
	}
	for i, r := range res.Records {
		if *n > 0 && i >= *n {
			break
		}
		printRecord(w, r)
	}
}

// scanRecords walks the exact record iterator.
func scanRecords(f *pugz.File, fr pugz.Framer, from int64, sync bool, n int, summary bool, w *bufio.Writer) {
	sc, err := f.Records(from, pugz.RecordOptions{Framer: fr, Sync: sync})
	if err != nil {
		fatal(err)
	}
	count, bytes := 0, int64(0)
	for sc.Next() {
		r := sc.Record()
		count++
		bytes += int64(len(r.Data))
		if !summary {
			printRecord(w, r)
		}
		if n > 0 && count >= n {
			break
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if summary {
		fmt.Fprintf(w, "scanned %d records, %d content bytes (framer %q, from offset %d)\n",
			count, bytes, fr.Name(), from)
	}
}

// printRecord writes one record's content followed by a newline (the
// framings strip their own delimiters, so this is lossless for
// line-oriented records and a readable separator for the rest).
func printRecord(w *bufio.Writer, r pugz.Record) {
	fmt.Fprintf(w, "%s\n", r.Data)
}

func fatal(err error) {
	cliutil.Fatal("ragz", err)
}
