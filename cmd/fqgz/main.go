// Command fqgz performs random access to DNA sequences inside a
// gzip-compressed FASTQ file (the paper's fqgz prototype): it syncs to
// a DEFLATE block near the requested compressed offset, decompresses
// with an undetermined context, and prints the DNA-like sequences the
// heuristic parser extracts — flagging those still containing
// undetermined ('?') characters.
//
//	fqgz -offset 50%  file.fastq.gz           # seek to half the file
//	fqgz -offset 1000000 -max 4000000 file.fastq.gz
//	fqgz -offset 25% -clean file.fastq.gz     # only unambiguous reads
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	pugz "repro"
)

func main() {
	offsetFlag := flag.String("offset", "25%", "compressed byte offset (absolute or NN%)")
	maxOut := flag.Int("max", 0, "stop after this many decompressed bytes (0 = to end)")
	minLen := flag.Int("minlen", 32, "minimum extracted sequence length")
	clean := flag.Bool("clean", false, "print only sequences without undetermined characters")
	summary := flag.Bool("summary", false, "print statistics instead of sequences")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fqgz [-offset POS] [-max N] [-clean|-summary] file.fastq.gz")
		os.Exit(2)
	}
	gz, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	offset, err := parseOffset(*offsetFlag, int64(len(gz)))
	if err != nil {
		fatal(err)
	}

	res, err := pugz.RandomAccess(gz, offset, pugz.RandomAccessOptions{
		MaxOutput: *maxOut,
		MinSeqLen: *minLen,
	})
	if err != nil {
		fatal(err)
	}

	if *summary {
		clean, dirty := 0, 0
		for _, s := range res.Sequences {
			if s.Unambiguous() {
				clean++
			} else {
				dirty++
			}
		}
		fmt.Printf("offset %d: synced to payload bit %d\n", offset, res.BlockBit)
		fmt.Printf("decoded %d bytes across %d blocks\n", len(res.Text), len(res.Blocks))
		fmt.Printf("sequences: %d total, %d unambiguous, %d with undetermined chars\n",
			len(res.Sequences), clean, dirty)
		if res.FirstResolvedBlock >= 0 {
			fmt.Printf("first sequence-resolved block: #%d after %.2f MB\n",
				res.FirstResolvedBlock, float64(res.DelayBytes)/1e6)
			if frac, ok := res.UnambiguousAfterResolved(); ok {
				fmt.Printf("unambiguous after resolved block: %.1f%%\n", frac*100)
			}
		} else {
			fmt.Println("no sequence-resolved block found")
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, s := range res.Sequences {
		if *clean && !s.Unambiguous() {
			continue
		}
		fmt.Fprintf(w, ">seq_%d offset=%d undetermined=%d\n%s\n", i, s.Offset, s.Undetermined, s.Seq)
	}
}

func parseOffset(s string, size int64) (int64, error) {
	if strings.HasSuffix(s, "%") {
		p, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad offset %q: %w", s, err)
		}
		return int64(p / 100 * float64(size)), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q: %w", s, err)
	}
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fqgz:", err)
	os.Exit(1)
}
