// Command fqgz performs random access to DNA sequences inside a
// gzip-compressed FASTQ file (the paper's fqgz prototype): it syncs to
// a DEFLATE block near the requested compressed offset, decompresses
// with an undetermined context, and prints the DNA-like sequences the
// heuristic parser extracts — flagging those still containing
// undetermined ('?') characters.
//
// With "-" (or -stream) the whole file is instead decompressed through
// the bounded-memory parallel pipeline and every read's sequence line
// is emitted — no random access, no slurping, works on pipes:
//
//	fqgz -offset 50%  file.fastq.gz           # seek to half the file
//	fqgz -offset 1000000 -max 4000000 file.fastq.gz
//	fqgz -offset 25% -clean file.fastq.gz     # only unambiguous reads
//	cat file.fastq.gz | fqgz -                # stream all sequences
//	fqgz -stream -summary file.fastq.gz       # stream + count only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pugz "repro"
	"repro/internal/cliutil"
)

func main() {
	offsetFlag := flag.String("offset", "25%", "compressed byte offset (absolute or NN%)")
	maxOut := flag.Int64("max", 0, "stop after this many decompressed bytes (0 = to end)")
	minLen := flag.Int("minlen", pugz.DefaultMinSeqLen, "minimum extracted sequence length")
	clean := flag.Bool("clean", false, "print only sequences without undetermined characters")
	summary := flag.Bool("summary", false, "print statistics instead of sequences")
	stream := flag.Bool("stream", false, "decompress the whole stream in parallel and emit every sequence")
	threads := cliutil.Threads()
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fqgz [-offset POS] [-max N] [-clean|-summary] file.fastq.gz\n       fqgz [-stream] [-t N] [-max N] [-summary] file.fastq.gz|-")
		os.Exit(2)
	}
	in := flag.Arg(0)
	if in == "-" || *stream {
		// Random-access-only flags are meaningless here; reject them
		// rather than silently answering a different query. (-clean is
		// allowed: streamed output is exact, so everything is clean.)
		offsetSet := false
		flag.Visit(func(f *flag.Flag) { offsetSet = offsetSet || f.Name == "offset" })
		if offsetSet {
			fmt.Fprintln(os.Stderr, "fqgz: -offset applies to random access only; streaming always starts at byte 0")
			os.Exit(2)
		}
		streamAll(in, *threads, *maxOut, *minLen, *summary)
		return
	}

	// Random access goes through the seekable pugz.File surface: only
	// the compressed extent actually decoded is read from disk, so a
	// huge file costs no more than the requested window.
	src, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		fatal(err)
	}
	offset, err := cliutil.ParseOffset(*offsetFlag, fi.Size())
	if err != nil {
		fatal(err)
	}
	f, err := pugz.NewFile(src, fi.Size(), pugz.FileOptions{Threads: *threads})
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	res, err := f.RandomAccessAt(offset, pugz.RandomAccessOptions{
		MaxOutput: *maxOut,
		MinSeqLen: *minLen,
	})
	if err != nil {
		fatal(err)
	}

	if *summary {
		clean, dirty := 0, 0
		for _, s := range res.Sequences {
			if s.Unambiguous() {
				clean++
			} else {
				dirty++
			}
		}
		fmt.Printf("offset %d: synced to payload bit %d\n", offset, res.BlockBit)
		fmt.Printf("decoded %d bytes across %d blocks\n", len(res.Text), len(res.Blocks))
		fmt.Printf("sequences: %d total, %d unambiguous, %d with undetermined chars\n",
			len(res.Sequences), clean, dirty)
		if res.FirstResolvedBlock >= 0 {
			fmt.Printf("first sequence-resolved block: #%d after %.2f MB\n",
				res.FirstResolvedBlock, float64(res.DelayBytes)/1e6)
			if frac, ok := res.UnambiguousAfterResolved(); ok {
				fmt.Printf("unambiguous after resolved block: %.1f%%\n", frac*100)
			}
		} else {
			fmt.Println("no sequence-resolved block found")
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, s := range res.Sequences {
		if *clean && !s.Unambiguous() {
			continue
		}
		fmt.Fprintf(w, ">seq_%d offset=%d undetermined=%d\n%s\n", i, s.Offset, s.Undetermined, s.Seq)
	}
}

// streamAll decompresses the entire file (or stdin) through the
// bounded-memory parallel pipeline and walks FASTQ records as they
// stream out — every sequence is fully resolved, so there is nothing
// undetermined to flag.
func streamAll(in string, threads int, maxOut int64, minLen int, summary bool) {
	src, closeSrc, err := cliutil.OpenInput(in)
	if err != nil {
		fatal(err)
	}
	defer closeSrc()
	r, err := pugz.NewReader(src, pugz.StreamOptions{Threads: threads})
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	var text io.Reader = r
	if maxOut > 0 {
		text = io.LimitReader(r, maxOut)
	}
	br := bufio.NewReaderSize(text, 1<<20)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var offset int64
	line, emitted := 0, 0
	for {
		// ReadString keeps the delimiter, so offsets count true
		// decompressed bytes even for CRLF input or a final line with
		// no newline.
		raw, err := br.ReadString('\n')
		if len(raw) > 0 {
			// FASTQ: header, sequence, separator, quality — sequence
			// is every 4th line starting from the second.
			seq := strings.TrimRight(raw, "\r\n")
			if line%4 == 1 && len(seq) >= minLen {
				if !summary {
					fmt.Fprintf(w, ">seq_%d offset=%d undetermined=0\n%s\n", emitted, offset, seq)
				}
				emitted++
			}
			offset += int64(len(raw))
			line++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
	}
	if summary {
		st := r.Stats()
		fmt.Printf("streamed %d bytes (%d members, %d batches, peak compressed window %d bytes)\n",
			offset, st.Members, st.Batches, st.MaxBufferedCompressed)
		fmt.Printf("sequences: %d total, all unambiguous (stream mode is exact)\n", emitted)
	}
}

func fatal(err error) {
	cliutil.Fatal("fqgz", err)
}
