// Command pugzvet is the repository's invariant checker: a go vet
// tool enforcing the contracts the compiler cannot see — pooled-buffer
// hygiene, atomic snapshot discipline, the fast-decode bail contract,
// sentinel-error wrapping, and lock-copy/lock-balance rules. See the
// README "Static analysis" section and the analyzer package docs under
// internal/analysis for the full rules.
//
// Run it through the go command so every package (tests included) is
// type-checked and analyzed with build-cache support:
//
//	make lint
//	# or directly:
//	go build -o .tmp/pugzvet ./cmd/pugzvet
//	go vet -vettool=$(pwd)/.tmp/pugzvet ./...
package main

import (
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unit"
)

func main() {
	unit.Main(suite.All()...)
}
