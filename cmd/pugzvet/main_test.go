package main

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestVetToolRunsClean is the end-to-end smoke for the vettool
// protocol: build the binary, hand it to the real `go vet` driver, and
// run it over the whole module. The tree must come back finding-free —
// the lint gate has no suppression syntax or baseline file, so any
// non-zero exit here is either a protocol regression in
// internal/analysis/unit or a genuine invariant violation.
func TestVetToolRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole tree; skipped in -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go command not on PATH")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "pugzvet")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/pugzvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pugzvet: %v\n%s", err, out)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=pugzvet ./... not clean: %v\n%s", err, out)
	}
}
