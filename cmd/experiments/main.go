// Command experiments regenerates the paper's tables and figures from
// seeded synthetic corpora. Run with no flags for the full suite, or
// select one experiment:
//
//	experiments -run table2 -scale 2 -threads 32
//
// Experiment IDs: fig1, fig2top, fig2bottom, model, table1, fig4,
// table2, fig5, blockdetect (see DESIGN.md section 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (or 'all' / 'list')")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	seed := flag.Int64("seed", 0, "seed offset for all corpora")
	threads := flag.Int("threads", 32, "maximum thread count for speed experiments")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Threads: *threads}

	if *run == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %-16s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -run list\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		t := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n", e.ID, time.Since(t).Seconds())
	}
}
