package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkTable2Pugz32-8   \t       5\t 226622895 ns/op\t  17.78 MB/s\t25166018 B/op\t    1953 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkTable2Pugz32" {
		t.Fatalf("name = %q", name)
	}
	for m, want := range map[string]float64{
		"ns/op": 226622895, "MB/s": 17.78, "B/op": 25166018, "allocs/op": 1953,
	} {
		if res[m] != want {
			t.Fatalf("%s = %g, want %g", m, res[m], want)
		}
	}

	// Sub-benchmarks keep their slash path.
	name, _, ok = parseBenchLine("BenchmarkFig5Threads/threads=4-16 \t 3\t 1000 ns/op")
	if !ok || name != "BenchmarkFig5Threads/threads=4" {
		t.Fatalf("sub-benchmark: ok=%v name=%q", ok, name)
	}

	// Non-result lines are ignored.
	for _, bad := range []string{
		"BenchmarkTable2Pugz32",      // run-start echo, no fields
		"goos: linux",                // preamble
		"BenchmarkX-8 \t notanumber", // malformed
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

func TestParseFileAndDiff(t *testing.T) {
	dir := t.TempDir()
	oldCap := `{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Output":"BenchmarkA-2 \t10\t1000 ns/op\t100 B/op\t5 allocs/op\n"}
{"Action":"output","Output":"BenchmarkA-2 \t10\t1200 ns/op\t100 B/op\t5 allocs/op\n"}
{"Action":"run","Test":"BenchmarkB"}
{"Action":"output","Output":"BenchmarkB-2 \t10\t2000 ns/op\t10 allocs/op\n"}
`
	newCap := `{"Action":"output","Output":"BenchmarkA-8 \t10\t1100 ns/op\t100 B/op\t5 allocs/op\n"}
{"Action":"output","Output":"BenchmarkB-8 \t10\t2100 ns/op\t20 allocs/op\n"}
`
	oldPath := filepath.Join(dir, "BENCH_PR2.json")
	newPath := filepath.Join(dir, "BENCH_PR4.json")
	if err := os.WriteFile(oldPath, []byte(oldCap), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newCap), 0o644); err != nil {
		t.Fatal(err)
	}

	oldSet, err := parseFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate runs keep the min; the -2 suffix is stripped.
	if oldSet["BenchmarkA"]["ns/op"] != 1000 {
		t.Fatalf("min-merge: ns/op = %g", oldSet["BenchmarkA"]["ns/op"])
	}
	newSet, err := parseFile(newPath)
	if err != nil {
		t.Fatal(err)
	}

	ds := diff(oldSet["BenchmarkA"], newSet["BenchmarkA"])
	if len(ds) != 2 {
		t.Fatalf("diff metrics = %d", len(ds))
	}
	for _, d := range ds {
		switch d.metric {
		case "ns/op":
			if d.pct < 9.9 || d.pct > 10.1 {
				t.Fatalf("ns/op delta = %g%%", d.pct)
			}
		case "allocs/op":
			if d.pct != 0 {
				t.Fatalf("allocs delta = %g%%", d.pct)
			}
		}
	}
	// B doubles its allocs: a 100% regression must be visible.
	found := false
	for _, d := range diff(oldSet["BenchmarkB"], newSet["BenchmarkB"]) {
		if d.metric == "allocs/op" && d.pct == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("allocs/op regression not reported")
	}

	// latestPair picks PR2 -> PR4.
	o, n, err := latestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if o != oldPath || n != newPath {
		t.Fatalf("latestPair = %s, %s", o, n)
	}
}
