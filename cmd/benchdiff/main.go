// Command benchdiff compares two benchmark captures produced by
// `make bench` (test2json event streams holding `go test -bench`
// output) and enforces the repository's performance trajectory: each
// perf-relevant PR checks in a BENCH_PRn.json, and CI diffs the two
// most recent captures, failing on a >30% ns/op or allocs/op
// regression on the gated hot-path benchmarks and warning on the rest
// (runner timings are noisy; allocation counts are not).
//
//	benchdiff OLD.json NEW.json          # explicit pair
//	benchdiff -auto .                    # two highest BENCH_PRn.json in a directory
//	benchdiff -gate 'Pugz32|Streaming' -max-regress 25 OLD NEW
//
// Exit status: 0 when every gated benchmark stays within the budget,
// 1 on a gated regression, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// defaultGate names the hot-path benchmarks whose regressions fail CI:
// the headline whole-file decompression, the bounded-memory streaming
// reader, the seekable-File read paths (including the tail-only Size
// measuring pass and the concurrent-reader scaling curve), the pass-2
// translation kernels, the skip-mode index build, the two inner
// token loops (exact and symbolic) behind the multi-symbol fast path,
// and the daemon's HTTP range-serving path (hot indexed handle and
// cold first touch). Everything else is warn-only.
const defaultGate = `^Benchmark(Table2Pugz32|StreamingReader|FileReadAt|FileConcurrentReadAt|FileDeepSeek|FileSize|Pass2Translate|ResolveDensity|BuildIndex|FlateDecodeTokens|TrackedPass1|ServeRange|RecordScan)`

func main() {
	gate := flag.String("gate", defaultGate, "regexp of benchmark names whose regressions fail (others warn)")
	maxRegress := flag.Float64("max-regress", 30, "max tolerated ns/op and allocs/op increase on gated benchmarks, percent")
	auto := flag.String("auto", "", "directory: compare the two highest-numbered BENCH_PRn.json files in it")
	flag.Parse()

	var oldPath, newPath string
	switch {
	case *auto != "":
		var err error
		oldPath, newPath, err = latestPair(*auto)
		if err != nil {
			fatalf("%v", err)
		}
	case flag.NArg() == 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate RE] [-max-regress PCT] OLD.json NEW.json")
		fmt.Fprintln(os.Stderr, "       benchdiff [-gate RE] [-max-regress PCT] -auto DIR")
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fatalf("bad -gate: %v", err)
	}

	oldSet, err := parseFile(oldPath)
	if err != nil {
		fatalf("%s: %v", oldPath, err)
	}
	newSet, err := parseFile(newPath)
	if err != nil {
		fatalf("%s: %v", newPath, err)
	}
	if len(oldSet) == 0 || len(newSet) == 0 {
		fatalf("no benchmark results parsed (%d old, %d new)", len(oldSet), len(newSet))
	}

	fmt.Printf("benchdiff: %s -> %s (gate %q, budget %.0f%%)\n", oldPath, newPath, *gate, *maxRegress)
	names := make([]string, 0, len(newSet))
	for name := range newSet {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		n := newSet[name]
		o, ok := oldSet[name]
		if !ok {
			fmt.Printf("  new      %-60s %s\n", name, n)
			continue
		}
		gated := gateRE.MatchString(name)
		for _, d := range diff(o, n) {
			over := d.pct > *maxRegress
			tag := "ok"
			switch {
			case over && gated:
				tag = "FAIL"
				failed++
			case over:
				tag = "warn"
			}
			fmt.Printf("  %-8s %-60s %-9s %s -> %s (%+.1f%%)\n",
				tag, name, d.metric, fmtVal(d.metric, d.old), fmtVal(d.metric, d.new), d.pct)
		}
	}
	for name := range oldSet {
		if _, ok := newSet[name]; !ok {
			fmt.Printf("  gone     %s\n", name)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d gated regression(s) beyond %.0f%%\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchdiff: pass")
}

// latestPair picks the two highest-numbered BENCH_PRn.json in dir.
func latestPair(dir string) (oldPath, newPath string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", "", err
	}
	type capture struct {
		pr   int
		path string
	}
	var caps []capture
	re := regexp.MustCompile(`BENCH_PR(\d+)\.json$`)
	for _, m := range matches {
		if g := re.FindStringSubmatch(m); g != nil {
			pr, _ := strconv.Atoi(g[1])
			caps = append(caps, capture{pr, m})
		}
	}
	if len(caps) < 2 {
		return "", "", fmt.Errorf("need two BENCH_PRn.json captures in %s, found %d", dir, len(caps))
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].pr < caps[j].pr })
	return caps[len(caps)-2].path, caps[len(caps)-1].path, nil
}

func fmtVal(metric string, v float64) string {
	if metric == "allocs/op" || metric == "B/op" {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
