package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark's metrics. Repeated runs of the same
// benchmark keep the best (minimum) value per metric, the conventional
// way to damp scheduler noise.
type result map[string]float64 // metric name ("ns/op", ...) -> value

func (r result) String() string {
	parts := make([]string, 0, len(r))
	for _, m := range []string{"ns/op", "MB/s", "B/op", "allocs/op"} {
		if v, ok := r[m]; ok {
			parts = append(parts, fmt.Sprintf("%g %s", v, m))
		}
	}
	return strings.Join(parts, "  ")
}

// regressionMetrics are the per-metric directions that count as
// regressions when they increase.
var regressionMetrics = []string{"ns/op", "allocs/op"}

type delta struct {
	metric   string
	old, new float64
	pct      float64 // increase in percent (positive = regression)
}

// diff returns the regression-relevant metric movements old -> new.
func diff(o, n result) []delta {
	var ds []delta
	for _, m := range regressionMetrics {
		ov, ok1 := o[m]
		nv, ok2 := n[m]
		if !ok1 || !ok2 {
			continue
		}
		pct := 0.0
		switch {
		case ov > 0:
			pct = (nv - ov) / ov * 100
		case nv > 0:
			pct = 100 // from zero to non-zero
		}
		ds = append(ds, delta{metric: m, old: ov, new: nv, pct: pct})
	}
	return ds
}

// event is the subset of a test2json line benchdiff needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// procSuffix strips the trailing -GOMAXPROCS from a benchmark name so
// captures from hosts with different core counts stay comparable.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseFile reads a test2json capture and returns the benchmark
// results keyed by name (GOMAXPROCS suffix stripped). A benchmark
// result is printed as `name \t` and `N \t metrics...\n` in separate
// output events, so the events' text is reassembled into lines (per
// package) before parsing.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	merge := func(text string) {
		name, res, ok := parseBenchLine(text)
		if !ok {
			return
		}
		prev, seen := out[name]
		if !seen {
			out[name] = res
			return
		}
		for m, v := range res {
			if old, ok := prev[m]; !ok || v < old {
				prev[m] = v
			}
		}
	}
	partial := map[string]string{} // per-package unterminated output text
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise in the capture
		}
		if ev.Action != "output" {
			continue
		}
		text := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			merge(text[:nl])
			text = text[nl+1:]
		}
		partial[ev.Package] = text
	}
	for _, text := range partial {
		merge(text)
	}
	return out, sc.Err()
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   	     100	  12345 ns/op	  67 MB/s	 89 B/op	  1 allocs/op
//
// The iteration count field is skipped; every later "value unit" pair
// becomes a metric.
func parseBenchLine(line string) (string, result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // e.g. a "BenchmarkX" run-start line
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	res := result{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		res[fields[i+1]] = v
	}
	if len(res) == 0 {
		return "", nil, false
	}
	return name, res, true
}
