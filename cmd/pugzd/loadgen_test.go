package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	pugz "repro"
	"repro/internal/fastq"
	"repro/internal/serve"
)

// TestRunLoadgen drives the generator end-to-end against an in-process
// serve.Server: discovery, warmup HEADs, the mixed trace, and the
// report — every replayed request must come back a correct 206.
func TestRunLoadgen(t *testing.T) {
	dir := t.TempDir()
	for i, seed := range []int64{21, 22} {
		data := fastq.Generate(fastq.GenOptions{Reads: 800, Seed: seed})
		gz, err := pugz.Compress(data, 6)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(dir, string(rune('a'+i))+".gz")
		if err := os.WriteFile(name, gz, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := serve.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Options{
		Catalog: cat,
		File:    pugz.FileOptions{Threads: 2, MinChunk: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var out bytes.Buffer
	rep, err := runLoadgen(ts.URL, loadOptions{
		Duration:   500 * time.Millisecond,
		Workers:    4,
		SeqFrac:    0.5,
		RangeBytes: 4096,
		Seed:       7,
	}, &out)
	if err != nil {
		t.Fatalf("runLoadgen: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen saw %d errors out of %d requests\n%s", rep.Errors, rep.Requests, out.String())
	}
	if rep.Requests == 0 || rep.Bytes == 0 {
		t.Fatalf("loadgen did no work: %+v", rep)
	}
	if !strings.Contains(out.String(), "latency p50=") {
		t.Fatalf("report missing percentiles:\n%s", out.String())
	}
}
