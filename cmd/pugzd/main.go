// Command pugzd is a long-running HTTP daemon serving a catalog of
// gzip blobs with random access at *decompressed* offsets, built on
// the seekable pugz.File surface. A Range request against a mounted
// .gz behaves exactly like one against the inflated file — 206s,
// suffix ranges, 416s — without the inflated file ever existing:
//
//	pugzd -t 8 -dir /data/blobs                 # serve every *.gz under the dir
//	pugzd -manifest blobs.txt -addr :8457       # serve an explicit blob list
//	curl -H 'Range: bytes=1000000-1003999' localhost:8457/blobs/reads.fastq.gz
//	curl localhost:8457/blobs                   # the catalog listing
//	curl localhost:8457/metrics                 # qps, cache traffic, build latency
//
// Open pugz.File handles (and their checkpoint indexes) are shared
// across requests through a byte-budgeted LRU; the first request for
// an un-indexed blob kicks exactly one background index build while
// requests keep serving through unindexed deep seeks. SIGINT/SIGTERM
// drains in-flight requests (up to -drain) and exits 0.
//
// With -loadtest, pugzd is its own load generator instead of a
// server: it replays a mixed sequential/random offset trace against a
// running daemon and reports latency percentiles:
//
//	pugzd -loadtest -duration 10s -c 16 -seqfrac 0.7 http://localhost:8457
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	pugz "repro"
	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	threads := cliutil.Threads()
	addr := flag.String("addr", ":8457", "listen address")
	dir := flag.String("dir", "", "serve every *.gz under this directory (with .gzx sidecar indexes when present)")
	manifest := flag.String("manifest", "", "serve the blobs listed in this manifest (one 'name path' or bare path per line)")
	cacheBytes := flag.Int64("cache-bytes", 0, "handle cache budget in bytes (default 256 MiB)")
	spacing := flag.Int64("spacing", 0, "background checkpoint-index spacing in decompressed bytes (default 1 MiB; negative disables builds)")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain timeout on shutdown")

	loadtest := flag.Bool("loadtest", false, "run as a load generator against a daemon URL instead of serving")
	duration := flag.Duration("duration", 5*time.Second, "with -loadtest: trace duration")
	conc := flag.Int("c", 8, "with -loadtest: concurrent clients")
	seqfrac := flag.Float64("seqfrac", 0.5, "with -loadtest: fraction of requests continuing a sequential cursor (rest seek randomly)")
	rangeBytes := flag.Int64("rangebytes", 64<<10, "with -loadtest: maximum bytes per ranged request")
	seed := flag.Int64("seed", 1, "with -loadtest: trace RNG seed")
	flag.Parse()

	if *loadtest {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pugzd -loadtest [-duration D] [-c N] [-seqfrac F] [-rangebytes N] [-seed N] http://host:port")
			os.Exit(2)
		}
		rep, err := runLoadgen(flag.Arg(0), loadOptions{
			Duration:   *duration,
			Workers:    *conc,
			SeqFrac:    *seqfrac,
			RangeBytes: *rangeBytes,
			Seed:       *seed,
		}, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if rep.Errors > 0 {
			fatal(fmt.Errorf("loadtest: %d of %d requests failed", rep.Errors, rep.Requests))
		}
		return
	}

	if (*dir == "") == (*manifest == "") {
		fmt.Fprintln(os.Stderr, "usage: pugzd [-t N] [-addr HOST:PORT] [-cache-bytes N] [-spacing N] [-drain D] -dir DIR | -manifest FILE")
		os.Exit(2)
	}
	var cat *serve.Catalog
	var err error
	if *dir != "" {
		cat, err = serve.ScanDir(*dir)
	} else {
		cat, err = serve.LoadManifest(*manifest)
	}
	if err != nil {
		fatal(err)
	}

	s, err := serve.New(serve.Options{
		Catalog:          cat,
		CacheBudgetBytes: *cacheBytes,
		IndexSpacing:     *spacing,
		File:             pugz.FileOptions{Threads: *threads},
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pugzd: serving %d blobs on %s\n", cat.Len(), ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pugzd: %v, draining (max %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		s.Close()
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Fprintln(os.Stderr, "pugzd: clean shutdown")
	case err := <-errc:
		s.Close()
		fatal(err)
	}
}

func fatal(err error) {
	cliutil.Fatal("pugzd", err)
}
