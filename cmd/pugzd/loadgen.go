package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The -loadtest mode: replay a mixed sequential/random decompressed-
// offset trace against a running pugzd and report latency percentiles.
// Each worker keeps one sequential cursor per blob; a SeqFrac coin
// decides between continuing that cursor (the FASTQ-scanning access
// pattern) and seeking to a uniformly random offset (the worst case
// for the checkpoint index). Every response must be a 206 with exactly
// the requested length — anything else counts as an error, and the
// caller exits nonzero.

type loadOptions struct {
	Duration   time.Duration
	Workers    int
	SeqFrac    float64
	RangeBytes int64
	Seed       int64
}

type loadReport struct {
	Requests int64
	Errors   int64
	Bytes    int64
	Elapsed  time.Duration

	P50, P90, P99, Max time.Duration
}

// loadBlob is one replay target: a catalog entry plus its decompressed
// size learned from a HEAD probe.
type loadBlob struct {
	name string
	size int64
}

// waitReady polls /healthz until the daemon answers, so `make
// loadtest`-style scripts can start the daemon and the generator
// back-to-back without racing the listen socket.
func waitReady(client *http.Client, base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("status %d from /healthz", resp.StatusCode)
			}
			return fmt.Errorf("daemon not ready after 10s: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// discoverBlobs fetches the catalog listing and HEADs every blob for
// its decompressed size (which warms the daemon's handle cache — the
// trace proper then measures serving, not first-touch sizing).
func discoverBlobs(client *http.Client, base string) ([]loadBlob, error) {
	resp, err := client.Get(base + "/blobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing /blobs: status %d", resp.StatusCode)
	}
	var listing []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("listing /blobs: %w", err)
	}

	var blobs []loadBlob
	for _, e := range listing {
		hresp, err := client.Head(base + "/blobs/" + e.Name)
		if err != nil {
			return nil, fmt.Errorf("HEAD %s: %w", e.Name, err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HEAD %s: status %d", e.Name, hresp.StatusCode)
		}
		if hresp.ContentLength > 0 {
			blobs = append(blobs, loadBlob{name: e.Name, size: hresp.ContentLength})
		}
	}
	if len(blobs) == 0 {
		return nil, fmt.Errorf("no non-empty blobs to replay against")
	}
	return blobs, nil
}

func runLoadgen(base string, o loadOptions, w io.Writer) (*loadReport, error) {
	base = strings.TrimSuffix(base, "/")
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.RangeBytes <= 0 {
		o.RangeBytes = 64 << 10
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if err := waitReady(client, base); err != nil {
		return nil, err
	}
	blobs, err := discoverBlobs(client, base)
	if err != nil {
		return nil, err
	}

	var requests, errs, bytesGot atomic.Int64
	latencies := make([][]time.Duration, o.Workers)
	stop := time.Now().Add(o.Duration)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < o.Workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			cursors := make([]int64, len(blobs))
			for time.Now().Before(stop) {
				bi := rng.Intn(len(blobs))
				b := blobs[bi]
				n := 1 + rng.Int63n(o.RangeBytes)
				var off int64
				if rng.Float64() < o.SeqFrac {
					off = cursors[bi]
					if off >= b.size {
						off = 0
					}
				} else {
					off = rng.Int63n(b.size)
				}
				if off+n > b.size {
					n = b.size - off
				}
				cursors[bi] = off + n

				req, err := http.NewRequest(http.MethodGet, base+"/blobs/"+b.name, nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
				start := time.Now()
				resp, err := client.Do(req)
				var got int64
				if err == nil {
					got, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				d := time.Since(start)
				requests.Add(1)
				switch {
				case err != nil,
					resp.StatusCode != http.StatusPartialContent,
					got != n:
					errs.Add(1)
				default:
					bytesGot.Add(got)
					latencies[i] = append(latencies[i], d)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	rep := &loadReport{
		Requests: requests.Load(),
		Errors:   errs.Load(),
		Bytes:    bytesGot.Load(),
		Elapsed:  elapsed,
	}
	if len(all) > 0 {
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(all)-1))
			return all[idx]
		}
		rep.P50, rep.P90, rep.P99, rep.Max = pct(0.50), pct(0.90), pct(0.99), all[len(all)-1]
	}

	fmt.Fprintf(w, "pugzd loadtest: %d requests in %v (%.0f req/s), %d errors, %d bytes\n",
		rep.Requests, elapsed.Round(time.Millisecond),
		float64(rep.Requests)/elapsed.Seconds(), rep.Errors, rep.Bytes)
	fmt.Fprintf(w, "  latency p50=%v p90=%v p99=%v max=%v (over %d x %d-byte-max ranges, seqfrac %.2f, %d clients)\n",
		rep.P50.Round(time.Microsecond), rep.P90.Round(time.Microsecond),
		rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond),
		len(all), o.RangeBytes, o.SeqFrac, o.Workers)
	return rep, nil
}
