package pugz

import (
	"bytes"
	"strings"
	"testing"
)

func TestDecompressRoundTrip(t *testing.T) {
	data := genFastq(6000, 1)
	for _, level := range []int{1, 6, 9} {
		gz, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4} {
			out, st, err := Decompress(gz, Options{
				Threads:         threads,
				MinChunk:        8 << 10,
				VerifyChecksums: true,
			})
			if err != nil {
				t.Fatalf("level %d threads %d: %v", level, threads, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("level %d threads %d: mismatch", level, threads)
			}
			if st.Members != 1 {
				t.Fatalf("want 1 member, got %d", st.Members)
			}
		}
	}
}

func TestDecompressMultiMember(t *testing.T) {
	a, b := genFastq(2000, 2), genFastq(2000, 3)
	ga, _ := Compress(a, 6)
	gb, _ := Compress(b, 1)
	gz := append(append([]byte{}, ga...), gb...)
	out, st, err := Decompress(gz, Options{Threads: 4, MinChunk: 8 << 10, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, a...), b...)
	if !bytes.Equal(out, want) {
		t.Fatal("multi-member mismatch")
	}
	if st.Members != 2 {
		t.Fatalf("want 2 members, got %d", st.Members)
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	data := genFastq(2000, 4)
	gz, _ := Compress(data, 6)
	// Flip a bit in the stored CRC (last 8 bytes are CRC+ISIZE).
	gz[len(gz)-6] ^= 0xff
	if _, _, err := Decompress(gz, Options{Threads: 2, VerifyChecksums: true}); err == nil {
		t.Fatal("expected checksum error")
	}
	// Without verification the (content-intact) stream still inflates.
	out, _, err := Decompress(gz, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("content mismatch")
	}
}

func TestScanBlocks(t *testing.T) {
	data := genFastq(6000, 5)
	gz, _ := Compress(data, 6)
	blocks, err := ScanBlocks(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("want multiple blocks, got %d", len(blocks))
	}
	if !blocks[len(blocks)-1].Final {
		t.Fatal("last block must be final")
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].StartBit != blocks[i-1].EndBit {
			t.Fatalf("block %d: gap %d -> %d", i, blocks[i-1].EndBit, blocks[i].StartBit)
		}
		if blocks[i].OutStart != blocks[i-1].OutEnd {
			t.Fatalf("block %d: output gap", i)
		}
	}
	if blocks[len(blocks)-1].OutEnd != int64(len(data)) {
		t.Fatal("blocks do not cover the output")
	}
}

func TestFindBlockAgainstScan(t *testing.T) {
	gz := gzCorpus(t, 8000, 6, 6)
	blocks, err := ScanBlocks(gz)
	if err != nil {
		t.Fatal(err)
	}
	// From the middle of the file, FindBlock must land exactly on a
	// scanned boundary.
	mid := int64(len(gz) / 2)
	bit, err := FindBlock(gz, mid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range blocks {
		if b.StartBit == bit {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("FindBlock bit %d not on the true block lattice", bit)
	}
}

func TestRandomAccessLowestLevelIsClean(t *testing.T) {
	// Section VII-A: at the lowest compression level, random access is
	// virtually exact — after the first sequence-resolved block,
	// essentially every extracted sequence is unambiguous. The delay to
	// resolution is a few MB (the paper reports 52 MB on real GB-scale
	// files), so the corpus must be tens of MB.
	gz := gzCorpus(t, 150000, 7, 1)
	res, err := RandomAccess(gz, int64(len(gz)/5), RandomAccessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstResolvedBlock < 0 {
		t.Fatal("no sequence-resolved block found at level 1")
	}
	frac, ok := res.UnambiguousAfterResolved()
	if !ok {
		t.Fatal("no sequences after resolved block")
	}
	if frac < 0.99 {
		t.Fatalf("level 1 unambiguous fraction %.4f, want ≥0.99", frac)
	}
}

func TestRandomAccessTextIsPlausible(t *testing.T) {
	data := genFastq(20000, 8)
	gz := gzCorpus(t, 20000, 8, 6)
	res, err := RandomAccess(gz, int64(len(gz)/2), RandomAccessOptions{MaxOutput: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Text) == 0 {
		t.Fatal("no text decoded")
	}
	// Every non-'?' character of the suffix must occur in the true
	// output at the same (aligned) position. Align by finding the
	// suffix start: the block's OutStart in the full decode.
	blocks, err := ScanBlocks(gz)
	if err != nil {
		t.Fatal(err)
	}
	var outStart int64 = -1
	for _, b := range blocks {
		if b.StartBit == res.BlockBit {
			outStart = b.OutStart
			break
		}
	}
	if outStart < 0 {
		t.Fatal("random-access block not on lattice")
	}
	truth := data[outStart:]
	n := len(res.Text)
	if n > len(truth) {
		t.Fatalf("suffix longer than truth: %d > %d", n, len(truth))
	}
	mismatches := 0
	for i := 0; i < n; i++ {
		if res.Text[i] != Undetermined && res.Text[i] != truth[i] {
			mismatches++
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d resolved characters disagree with the true stream", mismatches)
	}
}

func TestClassify(t *testing.T) {
	data := genFastq(500, 9)
	for level, want := range map[int]CompressionClass{1: ClassLowest, 6: ClassNormal, 9: ClassHighest} {
		gz, _ := Compress(data, level)
		got, err := Classify(gz)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("level %d: class %v, want %v", level, got, want)
		}
	}
}

// TestFullCircleParallel closes the loop the paper opens: compress in
// parallel (pigz-style, trivial) and decompress in parallel (pugz, the
// hard direction) — output must be exact, and the pugz block scanner
// must cope with the empty stored sync blocks between chunks (the
// "special case" the paper's prototype left unimplemented).
func TestFullCircleParallel(t *testing.T) {
	data := genFastq(20000, 77)
	gz, err := CompressParallel(data, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := Decompress(gz, Options{Threads: 4, MinChunk: 32 << 10, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("full-circle mismatch")
	}
	if len(st.Chunks) < 2 {
		t.Errorf("expected parallel chunks, got %d", len(st.Chunks))
	}
	// Random access works on pigz-style files too.
	res, err := RandomAccess(gz, int64(len(gz)/2), RandomAccessOptions{MaxOutput: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Text) == 0 {
		t.Fatal("no random-access output")
	}
}

func TestCompressNamed(t *testing.T) {
	gz, err := CompressNamed([]byte(strings.Repeat("read data ", 300)), 6, "sample.fastq")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(gz, Options{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3000 {
		t.Fatalf("got %d bytes", len(out))
	}
}
