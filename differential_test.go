package pugz

// Differential tests: every compression level, both directions,
// against the standard library's compress/gzip. These lock down the
// byte-exactness claims the paper makes (and that the streaming
// refactor must preserve): pugz.Compress output must be readable by
// any gzip, and any gzip's output must decompress byte-identically
// through both the slice API and the streaming API at any thread
// count.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"testing"
)

// stdGzip compresses with the standard library at the given level.
func stdGzip(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// stdGunzip decompresses all members with the standard library.
func stdGunzip(gz []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// streamDecompress runs the full streaming pipeline over gz.
func streamDecompress(t *testing.T, gz []byte, o StreamOptions) ([]byte, error) {
	t.Helper()
	r, err := NewReaderBytes(gz, o)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// TestDifferentialCompressVsStdlib: pugz.Compress at every level must
// be decodable by compress/gzip, byte-identically.
func TestDifferentialCompressVsStdlib(t *testing.T) {
	inputs := map[string][]byte{
		"empty": nil,
		"tiny":  []byte("hello, differential world\n"),
		"fastq": genFastq(4000, 71),
	}
	for name, data := range inputs {
		for level := 0; level <= 9; level++ {
			gz, err := Compress(data, level)
			if err != nil {
				t.Fatalf("%s level %d: compress: %v", name, level, err)
			}
			got, err := stdGunzip(gz)
			if err != nil {
				t.Fatalf("%s level %d: stdlib reject: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: stdlib decoded %d bytes, want %d", name, level, len(got), len(data))
			}
		}
	}
}

// TestDifferentialDecompressVsStdlib: stdlib-compressed data at every
// level must decompress byte-identically through the slice API and the
// streaming API across thread counts.
func TestDifferentialDecompressVsStdlib(t *testing.T) {
	data := genFastq(7000, 72)
	for level := 0; level <= 9; level++ {
		gz := stdGzip(t, data, level)
		want, err := stdGunzip(gz)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 2, 4, 8} {
			got, _, err := Decompress(gz, Options{
				Threads:         threads,
				MinChunk:        16 << 10,
				VerifyChecksums: true,
			})
			if err != nil {
				t.Fatalf("level %d threads %d: Decompress: %v", level, threads, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("level %d threads %d: Decompress mismatch", level, threads)
			}
			streamed, err := streamDecompress(t, gz, StreamOptions{
				Threads:              threads,
				BatchCompressedBytes: 128 << 10,
				MinChunk:             16 << 10,
				VerifyChecksums:      true,
			})
			if err != nil {
				t.Fatalf("level %d threads %d: NewReader: %v", level, threads, err)
			}
			if !bytes.Equal(streamed, want) {
				t.Fatalf("level %d threads %d: NewReader mismatch", level, threads)
			}
		}
	}
}

// TestDifferentialEmptyInput: an empty member roundtrips through every
// path, and a zero-length file behaves deterministically.
func TestDifferentialEmptyInput(t *testing.T) {
	gz := stdGzip(t, nil, 6)
	out, _, err := Decompress(gz, Options{Threads: 4, VerifyChecksums: true})
	if err != nil {
		t.Fatalf("empty member via Decompress: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty member decoded %d bytes", len(out))
	}
	streamed, err := streamDecompress(t, gz, StreamOptions{Threads: 4, VerifyChecksums: true})
	if err != nil {
		t.Fatalf("empty member via NewReader: %v", err)
	}
	if len(streamed) != 0 {
		t.Fatalf("empty member streamed %d bytes", len(streamed))
	}

	// A zero-byte file: the slice API decodes zero members; the
	// streaming API rejects it up front (like compress/gzip, which
	// returns an error from NewReader).
	out, _, err = Decompress(nil, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-byte file via Decompress: %v, %d bytes", err, len(out))
	}
	if _, err := NewReaderBytes(nil, StreamOptions{}); err == nil {
		t.Fatal("zero-byte file accepted by NewReader")
	}
}

// TestDifferentialMultiMember: members from both compressors, at
// different levels, concatenated — all readers must agree.
func TestDifferentialMultiMember(t *testing.T) {
	parts := [][]byte{
		genFastq(3000, 73),
		nil, // empty member in the middle
		genFastq(5000, 74),
		[]byte("trailing small member\n"),
	}
	var gz, want []byte
	for i, p := range parts {
		want = append(want, p...)
		if i%2 == 0 {
			m, err := Compress(p, 1+i*3) // pugz levels 1, 7
			if err != nil {
				t.Fatal(err)
			}
			gz = append(gz, m...)
		} else {
			gz = append(gz, stdGzip(t, p, 9)...)
		}
	}
	std, err := stdGunzip(gz)
	if err != nil {
		t.Fatalf("stdlib on concatenation: %v", err)
	}
	if !bytes.Equal(std, want) {
		t.Fatal("stdlib concatenation mismatch")
	}
	got, _, err := Decompress(gz, Options{Threads: 4, MinChunk: 16 << 10, VerifyChecksums: true})
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Decompress concatenation mismatch")
	}
	streamed, err := streamDecompress(t, gz, StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 64 << 10,
		MinChunk:             8 << 10,
		VerifyChecksums:      true,
	})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !bytes.Equal(streamed, want) {
		t.Fatal("NewReader concatenation mismatch")
	}
}

// TestDifferentialParallelCompress: CompressParallel output must be
// one ordinary member any gzip can read, independent of thread count.
func TestDifferentialParallelCompress(t *testing.T) {
	data := genFastq(8000, 75)
	var first []byte
	for _, threads := range []int{1, 2, 4, 7} {
		gz, err := CompressParallel(data, 6, threads)
		if err != nil {
			t.Fatalf("threads %d: %v", threads, err)
		}
		got, err := stdGunzip(gz)
		if err != nil {
			t.Fatalf("threads %d: stdlib reject: %v", threads, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("threads %d: mismatch", threads)
		}
		if first == nil {
			first = gz
		} else if !bytes.Equal(first, gz) {
			t.Fatalf("threads %d: output depends on thread count", threads)
		}
	}
}

// TestDifferentialRoundTripMatrix drives pugz.Compress straight into
// pugz's own readers across levels and thread counts, cross-checked
// with the stdlib — the full commutation square on one input.
func TestDifferentialRoundTripMatrix(t *testing.T) {
	data := genFastq(6000, 76)
	for level := 0; level <= 9; level++ {
		gz := gzCorpus(t, 6000, 76, level)
		std, err := stdGunzip(gz)
		if err != nil {
			t.Fatalf("level %d: stdlib: %v", level, err)
		}
		for _, threads := range []int{1, 3, 6} {
			name := fmt.Sprintf("level %d threads %d", level, threads)
			got, _, err := Decompress(gz, Options{Threads: threads, MinChunk: 16 << 10, VerifyChecksums: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !bytes.Equal(got, std) || !bytes.Equal(got, data) {
				t.Fatalf("%s: mismatch", name)
			}
			streamed, err := streamDecompress(t, gz, StreamOptions{
				Threads:              threads,
				BatchCompressedBytes: 96 << 10,
				MinChunk:             16 << 10,
				VerifyChecksums:      true,
			})
			if err != nil {
				t.Fatalf("%s: stream: %v", name, err)
			}
			if !bytes.Equal(streamed, data) {
				t.Fatalf("%s: stream mismatch", name)
			}
		}
	}
}
