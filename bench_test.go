// Benchmarks regenerating the paper's performance results. Each
// testing.B target corresponds to one table or figure (DESIGN.md §3);
// run with:
//
//	go test -bench=. -benchmem
//
// Throughput (MB/s of *compressed* input, the paper's metric) is
// reported via b.SetBytes on the compressed size.
package pugz_test

import (
	"bytes"
	stdgzip "compress/gzip"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	pugz "repro"
	"repro/internal/blockfind"
	"repro/internal/deflate"
	"repro/internal/dna"
	"repro/internal/experiments"
	"repro/internal/fastq"
	"repro/internal/flate"
	"repro/internal/framing"
	"repro/internal/gzipx"
	"repro/internal/tracked"
)

// fixtures are built once and shared across benchmarks.
var (
	fixOnce   sync.Once
	fixFastq  []byte // raw FASTQ (~10 MB)
	fixGz     []byte // level-6 gzip of fixFastq
	fixGzLow  []byte // level-1
	fixGzHigh []byte // level-9
	fixDNAGz  []byte // level-6 gzip of 1 Mbp random DNA
)

func loadFixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixFastq = fastq.Generate(fastq.GenOptions{Reads: 40_000, Seed: 1234})
		mk := func(level int) []byte {
			gz, err := pugz.Compress(fixFastq, level)
			if err != nil {
				panic(err)
			}
			return gz
		}
		fixGz = mk(6)
		fixGzLow = mk(1)
		fixGzHigh = mk(9)
		d := dna.Random(1_000_000, 77)
		gz, err := pugz.Compress(d, 6)
		if err != nil {
			panic(err)
		}
		fixDNAGz = gz
	})
}

// --- Table II: decompression speed -----------------------------------

// BenchmarkTable2GunzipRole is the exact sequential baseline with
// checksum verification (the "gunzip" column).
func BenchmarkTable2GunzipRole(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pugz.GunzipSequential(fixGz); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2LibdeflateRole is the optimized sequential baseline
// (Go stdlib inflate, the "libdeflate" column).
func BenchmarkTable2LibdeflateRole(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := stdgzip.NewReader(bytes.NewReader(fixGz))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, zr); err != nil {
			b.Fatal(err)
		}
		zr.Close()
	}
}

// BenchmarkTable2Pugz32 is the paper's headline configuration.
func BenchmarkTable2Pugz32(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pugz.Decompress(fixGz, pugz.Options{Threads: 32, MinChunk: 32 << 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: thread scaling ----------------------------------------

func BenchmarkFig5Threads(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(benchName(th), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(fixGz)))
			for i := 0; i < b.N; i++ {
				if _, _, err := pugz.Decompress(fixGz, pugz.Options{Threads: th, MinChunk: 32 << 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(th int) string {
	return "threads=" + itoa(th)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Table I / Figures 1+4: random access kernels ---------------------

// BenchmarkTable1RandomAccess measures one full random access: block
// sync + tracked decode of the remaining stream + sequence extraction.
func BenchmarkTable1RandomAccess(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	levels := map[string][]byte{"lowest": fixGzLow, "normal": fixGz, "highest": fixGzHigh}
	for name, gz := range levels {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(gz)))
			for i := 0; i < b.N; i++ {
				if _, err := pugz.RandomAccess(gz, int64(len(gz)/3), pugz.RandomAccessOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2TrackedDecode measures the undetermined-context decode
// kernel shared by Figures 1, 2 and 4 (decode with symbolic window).
func BenchmarkFig2TrackedDecode(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	m, err := gzipx.ParseHeader(fixDNAGz)
	if err != nil {
		b.Fatal(err)
	}
	payload := fixDNAGz[m.HeaderLen:]
	blocks, err := pugz.ScanBlocks(fixDNAGz)
	if err != nil {
		b.Fatal(err)
	}
	startBit := blocks[1].StartBit
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracked.DecodeFrom(payload, startBit, tracked.DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section VI-A: block detection ------------------------------------

// BenchmarkBlockDetect measures one brute-force block sync from a
// mid-file offset (the paper: 100-300 ms per detection).
func BenchmarkBlockDetect(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	m, err := gzipx.ParseHeader(fixGz)
	if err != nil {
		b.Fatal(err)
	}
	payload := fixGz[m.HeaderLen:]
	f := blockfind.New()
	from := int64(len(payload)) / 2 * 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Next(payload, from); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationConfirmations varies the number of confirmation
// blocks after a candidate sync (the paper uses 5): fewer
// confirmations are faster but riskier.
func BenchmarkAblationConfirmations(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	m, _ := gzipx.ParseHeader(fixGz)
	payload := fixGz[m.HeaderLen:]
	from := int64(len(payload)) / 2 * 8
	for _, conf := range []int{1, 3, 5, 10} {
		b.Run("confirm="+itoa(conf), func(b *testing.B) {
			b.ReportAllocs()
			f := blockfind.New()
			f.Confirmations = conf
			for i := 0; i < b.N; i++ {
				if _, err := f.Next(payload, from); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMinChunk varies the chunking granularity of the
// parallel engine: finer chunks parallelise better but pay more sync
// scans and more pass-2 windows.
func BenchmarkAblationMinChunk(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	for _, mc := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b.Run("minchunk="+itoa(mc>>10)+"KiB", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(fixGz)))
			for i := 0; i < b.N; i++ {
				if _, _, err := pugz.Decompress(fixGz, pugz.Options{Threads: 16, MinChunk: mc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressLevels measures our zlib-semantics compressor (the
// corpus generator for every experiment).
func BenchmarkCompressLevels(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	data := fixFastq[:4<<20]
	for _, level := range []int{1, 6, 9} {
		b.Run("level="+itoa(level), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := pugz.Compress(data, level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Related-work baselines (Section II) -------------------------------

// BenchmarkBaselineIndexReadAt measures exact random access through a
// zran-style checkpoint index (reference [11]); build cost excluded.
func BenchmarkBaselineIndexReadAt(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	ix, err := pugz.BuildIndex(fixGz, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	off := ix.Size() / 2
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReadAt(fixGz, buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineBGZF measures the blocked-file baseline (reference
// [12]): trivially parallel decompression of independent blocks.
func BenchmarkBaselineBGZF(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	bz, err := pugz.CompressBGZF(fixFastq, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []int{1, 4, 16} {
		b.Run(benchName(th), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(bz)))
			for i := 0; i < b.N; i++ {
				if _, err := pugz.DecompressBGZF(bz, th); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingReader measures the bounded-memory mode against
// whole-file decompression.
func BenchmarkStreamingReader(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := pugz.NewReaderBytes(fixGz, pugz.StreamOptions{Threads: 4, BatchCompressedBytes: 4 << 20, MinChunk: 512 << 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkFileReadAt measures one positional read through the
// seekable File surface with a checkpoint index attached: the
// gzindex-accelerated exact-random-access path.
func BenchmarkFileReadAt(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	ix, err := pugz.BuildIndex(fixGz, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.SetIndex(blob); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	off := ix.Size() / 2
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileDeepSeek measures one deep unindexed positional read —
// the worst case for a seekable File, since the whole prefix must be
// decoded. "twopass" is the parallel translation-free skip (a fresh
// File each iteration, so no auto-index survives between reads);
// "discard" replays the pre-skip cursor: a streaming reader whose
// prefix is translated and thrown away byte by byte.
func BenchmarkFileDeepSeek(b *testing.B) {
	loadFixtures(b)
	var usize int64
	{
		f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		if usize, err = f.Size(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	off := usize * 9 / 10
	buf := make([]byte, 64<<10)

	b.Run("twopass", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(fixGz)))
		for i := 0; i < b.N; i++ {
			f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("discard", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(fixGz)))
		for i := 0; i < b.N; i++ {
			r, err := pugz.NewReaderBytes(fixGz, pugz.StreamOptions{Threads: 4})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.CopyN(io.Discard, r, off); err != nil {
				b.Fatal(err)
			}
			if _, err := io.ReadFull(r, buf); err != nil {
				b.Fatal(err)
			}
			r.Close()
		}
	})
}

// BenchmarkBuildIndex measures streaming checkpoint-index construction
// (one parallel pass, output discarded batch by batch).
func BenchmarkBuildIndex(b *testing.B) {
	loadFixtures(b)
	for _, th := range []int{1, 4} {
		b.Run(benchName(th), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(fixGz)))
			for i := 0; i < b.N; i++ {
				if _, err := pugz.NewIndexFromReader(bytes.NewReader(fixGz), 1<<20,
					pugz.StreamOptions{Threads: th}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGuesser measures the undetermined-character guesser on
// masked FASTQ text.
func BenchmarkGuesser(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	masked := append([]byte{}, fixFastq[:4<<20]...)
	for i := 13; i < len(masked); i += 17 {
		if masked[i] != '\n' {
			masked[i] = '?'
		}
	}
	b.SetBytes(int64(len(masked)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pugz.GuessUndetermined(masked, int64(i))
	}
}

// BenchmarkCompressParallel measures pigz-style chunked compression
// (the introduction's "easy direction").
func BenchmarkCompressParallel(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	data := fixFastq[:8<<20]
	for _, th := range []int{1, 4, 16} {
		b.Run(benchName(th), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := pugz.CompressParallel(data, 6, th); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFileDeepSeekTail is the deep seek in the geometry where the
// tail-only sinks engage: many small batches, so the clearly-skippable
// middle segments decode with O(32 KiB)-per-chunk pass-1 state while
// only the first and boundary batches decode in full. (The companion
// BenchmarkFileDeepSeek keeps the default single-batch geometry for
// comparability with earlier captures.)
func BenchmarkFileDeepSeekTail(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	var usize int64
	{
		f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		if usize, err = f.Size(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	off := usize * 9 / 10
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{
			Threads:              4,
			BatchCompressedBytes: 128 << 10,
			AutoIndexSpacing:     -1, // isolate the skip itself
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkFileSize measures the tail-only measuring pass behind
// Size(): a translation-free, bounded-memory sweep whose pass-1 state
// is O(32 KiB) per chunk (PR 5's tail sink), with the default
// auto-index checkpoint harvest running as a side-channel.
func BenchmarkFileSize(b *testing.B) {
	b.ReportAllocs()
	loadFixtures(b)
	b.SetBytes(int64(len(fixGz)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Size(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkResolveDensity measures the batched pass-2 translation
// kernel at several symbolic densities: "none" is the pure-literal
// fast path (the overwhelmingly common case — symbols only survive in
// a chunk's first 32 KiB), "sparse" the realistic tail, and "half" the
// adversarial worst case for the 8-wide literal scan.
func BenchmarkResolveDensity(b *testing.B) {
	b.ReportAllocs()
	ctx := make([]byte, tracked.WindowSize)
	for i := range ctx {
		ctx[i] = byte(i)
	}
	out := make([]uint16, 8<<20)
	dst := make([]byte, len(out))
	for _, cfg := range []struct {
		name  string
		every int // one symbol per `every` entries; 0 = none
	}{{"none", 0}, {"sparse", 128}, {"half", 2}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := range out {
				if cfg.every > 0 && i%cfg.every == 0 {
					out[i] = uint16(tracked.SymBase + i%tracked.WindowSize)
				} else {
					out[i] = uint16('A' + i%4)
				}
			}
			b.SetBytes(int64(len(out)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tracked.Resolve(out, ctx, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPass2Translate isolates the pass-2 symbol translation scan.
func BenchmarkPass2Translate(b *testing.B) {
	b.ReportAllocs()
	out := make([]uint16, 8<<20)
	for i := range out {
		if i%13 == 0 {
			out[i] = uint16(tracked.SymBase + i%tracked.WindowSize)
		} else {
			out[i] = uint16('A' + i%4)
		}
	}
	ctx := make([]byte, tracked.WindowSize)
	dst := make([]byte, len(out))
	b.SetBytes(int64(len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracked.Resolve(out, ctx, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment smoke tests (fast configs) ----------------------------

// TestExperimentsSmoke runs every experiment at a tiny scale so the
// harness itself stays correct; full-scale runs happen via
// cmd/experiments (see EXPERIMENTS.md).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := experiments.Config{Scale: 0.2, Threads: 8}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sink bytes.Buffer
			if err := e.Run(cfg, &sink); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if sink.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

// BenchmarkFileConcurrentReadAt measures N goroutines hammering one
// indexed File with positional reads — the serving-layer workload
// (ROADMAP item 1). Before the cursor-pool refactor every reader
// serialised through one mutex, so throughput was flat in N; now
// indexed reads share nothing mutable and scale with cores. readers=1
// doubles as the no-regression guard for the serialized baseline.
func BenchmarkFileConcurrentReadAt(b *testing.B) {
	loadFixtures(b)
	ix, err := pugz.BuildIndex(fixGz, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	f, err := pugz.NewFileBytes(fixGz, pugz.FileOptions{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.SetIndex(blob); err != nil {
		b.Fatal(err)
	}
	const readLen = 64 << 10
	span := ix.Size() - readLen
	for _, readers := range []int{1, 4, 64, 1024} {
		b.Run("readers="+itoa(readers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(readLen)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]byte, readLen)
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						// Deterministic stride walk spreading reads across
						// the indexed extent.
						off := (i * 2654435761) % span
						if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// --- PR 7: multi-symbol token decode ---------------------------------

// rawDeflate strips fixGz down to its raw DEFLATE payload once.
var (
	rawOnce    sync.Once
	rawPayload []byte
	rawMidBit  int64 // a block boundary past the first window
)

func loadRawDeflate(b *testing.B) {
	b.Helper()
	loadFixtures(b)
	rawOnce.Do(func() {
		payload, err := deflate.Compress(fixFastq, 6)
		if err != nil {
			panic(err)
		}
		rawPayload = payload
		_, spans, err := flate.DecompressRecorded(payload, 0, true)
		if err != nil {
			panic(err)
		}
		for _, sp := range spans {
			if sp.OutStart > 32<<10 {
				rawMidBit = sp.Event.StartBit
				break
			}
		}
	})
}

// BenchmarkFlateDecodeTokens measures the exact sequential token loop
// in isolation — no gzip framing, no checksum, no chunking — so the
// multi-symbol fast path's effect on the inner decode is visible
// directly. Throughput is compressed MB/s like the paper's tables.
func BenchmarkFlateDecodeTokens(b *testing.B) {
	b.ReportAllocs()
	loadRawDeflate(b)
	b.SetBytes(int64(len(rawPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flate.DecompressAll(rawPayload, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackedPass1 measures the symbolic pass-1 decode from a
// mid-stream block boundary with a fully undetermined context — the
// per-chunk work of the paper's parallel first pass.
func BenchmarkTrackedPass1(b *testing.B) {
	b.ReportAllocs()
	loadRawDeflate(b)
	if rawMidBit == 0 {
		b.Fatal("no mid-stream block boundary found")
	}
	b.SetBytes(int64(len(rawPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tracked.DecodeFrom(rawPayload, rawMidBit, tracked.DecodeOptions{SizeHint: len(fixFastq)})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// BenchmarkRecordScan measures the exact record scanner (File.Records)
// over an unindexed file for each shipped framing — records decoded,
// framed and yielded per second, with throughput on the compressed
// input consumed.
func BenchmarkRecordScan(b *testing.B) {
	loadFixtures(b)
	jsonl := framing.GenJSONL(40_000, 99)
	warc := framing.GenWARC(4_000, 98)
	cases := []struct {
		name   string
		gz     []byte
		framer pugz.Framer
	}{
		{"fastq", fixGz, pugz.FASTQFraming{}},
		{"jsonl", mustCompress(b, jsonl, 6), pugz.NewlineFraming{ValidateJSON: true}},
		{"warc", mustCompress(b, warc, 6), pugz.WARCFraming{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(tc.gz)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := pugz.NewFileBytes(tc.gz, pugz.FileOptions{Threads: 4})
				if err != nil {
					b.Fatal(err)
				}
				sc, err := f.Records(0, pugz.RecordOptions{Framer: tc.framer})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for sc.Next() {
					n++
				}
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no records scanned")
				}
				b.ReportMetric(float64(n), "records/op")
			}
		})
	}
}

func mustCompress(b *testing.B, data []byte, level int) []byte {
	b.Helper()
	gz, err := pugz.Compress(data, level)
	if err != nil {
		b.Fatal(err)
	}
	return gz
}
