package pugz_test

// Cached corpora for the external (pugz_test) package — the same
// regenerate-once discipline as corpus_test.go in the internal
// package: fixtures are deterministic and read-only, so each (reads,
// seed) corpus and each (corpus, level) compression happens once per
// test binary instead of once per test.

import (
	"sync"
	"testing"

	pugz "repro"
	"repro/internal/fastq"
)

var (
	extCorpusMu  sync.Mutex
	extCorpusRaw = map[[2]int64][]byte{}
	extCorpusGz  = map[[3]int64][]byte{}
)

// extFastq returns the cached FASTQ corpus for (reads, seed).
func extFastq(reads int, seed int64) []byte {
	extCorpusMu.Lock()
	defer extCorpusMu.Unlock()
	key := [2]int64{int64(reads), seed}
	if b, ok := extCorpusRaw[key]; ok {
		return b
	}
	b := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: seed})
	extCorpusRaw[key] = b
	return b
}

// extGz returns the cached pugz.Compress of extFastq(reads, seed) at
// the given level. The slice is shared: callers must not mutate it.
func extGz(tb testing.TB, reads int, seed int64, level int) []byte {
	tb.Helper()
	data := extFastq(reads, seed)
	extCorpusMu.Lock()
	defer extCorpusMu.Unlock()
	key := [3]int64{int64(reads), seed, int64(level)}
	if gz, ok := extCorpusGz[key]; ok {
		return gz
	}
	gz, err := pugz.Compress(data, level)
	if err != nil {
		tb.Fatal(err)
	}
	extCorpusGz[key] = gz
	return gz
}
