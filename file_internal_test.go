package pugz

// White-box tests of the File cursor pool and the cursor/EOF
// bookkeeping: the skipPending lifecycle, the size cache fed by clean
// EOFs, and the index-vs-cursor heuristic's handling of presumptive
// positions. These reach into fileCursor/cursorPool directly to pin
// states that are hard to reach through the public surface alone.

import (
	"bytes"
	"io"
	"testing"
)

// TestReadAtEOFDuringDiscardCachesSize: a past-EOF ReadAt whose
// in-line discard copy hits clean end of stream on a cursor with an
// exact position must cache the decompressed size — otherwise every
// later past-EOF ReadAt pays a full measuring re-scan.
func TestReadAtEOFDuringDiscardCachesSize(t *testing.T) {
	data := genFastq(3000, 91)
	gz := gzCorpus(t, 3000, 91, 6)
	f, err := NewFileBytes(gz, FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// An exact-position cursor: opened at 0 (no skip), bytes delivered.
	p := make([]byte, 1000)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.usize.Load(); got != -1 {
		t.Fatalf("usize cached prematurely: %d", got)
	}

	// Past-EOF read within the reopen gap: the discard copy reaches the
	// true end of stream, which must populate the size cache.
	if _, err := f.ReadAt(p, int64(len(data))+5000); err != io.EOF {
		t.Fatalf("past-EOF ReadAt: err=%v, want io.EOF", err)
	}
	if got := f.usize.Load(); got != int64(len(data)) {
		t.Fatalf("usize after EOF during discard = %d, want %d", got, len(data))
	}
	// Size() is now a pure cache hit (no measuring pass): it must agree.
	size, err := f.Size()
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Size = %d, %v; want %d", size, err, len(data))
	}
}

// TestDiscardCopyClearsSkipPending: when the in-line discard copy
// moves bytes, the pipeline's skip target was provably reached, so the
// cursor's position is exact from then on — it must shed skipPending
// (and with it, become eligible to reveal the size at a clean EOF).
func TestDiscardCopyClearsSkipPending(t *testing.T) {
	data := genFastq(3000, 92)
	gz := gzCorpus(t, 3000, 92, 6)
	f, err := NewFileBytes(gz, FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A cursor opened mid-stream with a pipeline-level skip: its
	// position is presumptive until the first byte arrives.
	off1 := int64(len(data)) / 2
	cur, err := f.openCursor(off1)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.skipPending {
		t.Fatal("freshly skipped cursor should be skipPending")
	}
	f.cursors.release(cur)

	// A past-EOF ReadAt claims it; the discard copy streams from off1
	// to the true end — bytes flowed, so the position became exact, and
	// the clean EOF must cache the size.
	p := make([]byte, 64)
	if _, err := f.ReadAt(p, int64(len(data))+100); err != io.EOF {
		t.Fatalf("past-EOF ReadAt: err=%v, want io.EOF", err)
	}
	if cur.skipPending {
		t.Fatal("discard copy moved bytes but skipPending survived")
	}
	if got := f.usize.Load(); got != int64(len(data)) {
		t.Fatalf("usize = %d, want %d", got, len(data))
	}
}

// TestReadAtHeuristicIgnoresPresumptiveCursor: with an index attached,
// the cursor-vs-index choice must not prefer a cursor whose position
// is still a guess (skipPending) over a cheap checkpoint inflate; once
// the position is trusted, the near-below cursor wins again.
func TestReadAtHeuristicIgnoresPresumptiveCursor(t *testing.T) {
	data := genFastq(4000, 93)
	gz := gzCorpus(t, 4000, 93, 6)
	ix, err := BuildIndex(gz, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFileBytes(gz, FileOptions{Threads: 2, MinChunk: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.SetIndex(blob); err != nil {
		t.Fatal(err)
	}

	off1 := int64(len(data))/2 + 777
	cur, err := f.openCursor(off1)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.skipPending {
		t.Skip("cursor landed exactly on a restart point; scenario not reachable")
	}
	f.cursors.release(cur)

	// Just ahead of the presumptive cursor and within checkpoint
	// spacing: the old heuristic would continue the cursor; the index
	// must win, leaving the cursor idle and untouched.
	off := off1 + 1000
	p := make([]byte, 4096)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatal("indexed read mismatch")
	}
	if cur.pos != off1 || !cur.skipPending {
		t.Fatalf("presumptive cursor was used by an indexed read (pos=%d skipPending=%v)",
			cur.pos, cur.skipPending)
	}

	// Same read with the position trusted: the near-below cursor now
	// wins the proximity contest and advances.
	cur.skipPending = false
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data[off:off+int64(len(p))]) {
		t.Fatal("cursor read mismatch")
	}
	if want := off + int64(len(p)); cur.pos != want {
		t.Fatalf("trusted cursor not used: pos=%d, want %d", cur.pos, want)
	}
}

// TestCursorPoolClaimAndEvict pins the pool mechanics: claim picks the
// nearest-below qualifying cursor, trusted claims skip presumptive
// positions, and releases beyond maxIdle close the cursor instead of
// pooling it.
func TestCursorPoolClaimAndEvict(t *testing.T) {
	gz := gzCorpus(t, 2000, 94, 6)
	f, err := NewFileBytes(gz, FileOptions{Threads: 1, MinChunk: 16 << 10, MaxIdleCursors: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	mk := func(pos int64, pending bool) *fileCursor {
		cur, err := f.openCursor(0)
		if err != nil {
			t.Fatal(err)
		}
		cur.pos, cur.skipPending = pos, pending
		return cur
	}
	park := func(cs ...*fileCursor) {
		f.cursors.mu.Lock()
		f.cursors.idle = append(f.cursors.idle, cs...)
		f.cursors.mu.Unlock()
	}
	idleLen := func() int {
		f.cursors.mu.Lock()
		defer f.cursors.mu.Unlock()
		return len(f.cursors.idle)
	}
	c100, c500, c800 := mk(100, false), mk(500, true), mk(800, false)
	park(c100, c500, c800)

	if got := f.cursors.claim(600, 1<<20, false); got != c500 {
		t.Fatalf("claim(600) = pos %v, want the nearest-below cursor (500)", got)
	}
	park(c500)
	if got := f.cursors.claim(600, 1<<20, true); got != c100 {
		t.Fatalf("trusted claim(600) = %v, want the exact-position cursor at 100", got)
	}
	park(c100)
	if got := f.cursors.claim(600, 50, true); got != nil {
		t.Fatalf("claim with tight gap = %v, want nil", got)
	}
	if got := f.cursors.claim(90, 1<<20, false); got != nil {
		t.Fatalf("claim below every cursor = %v, want nil", got)
	}

	// Pool holds 3 with maxIdle 2: releasing a claimed cursor closes it.
	extra := mk(900, false)
	f.cursors.release(extra)
	if !extra.r.closed.Load() {
		t.Fatal("release beyond maxIdle did not close the cursor")
	}
	if n := idleLen(); n != 3 {
		t.Fatalf("idle = %d, want 3", n)
	}
	// Close drains every idle cursor.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*fileCursor{c100, c500, c800} {
		if !c.r.closed.Load() {
			t.Fatal("Close left an idle cursor open")
		}
	}
	if f.cursors.claim(1000, 1<<20, false) != nil {
		t.Fatal("claim after Close returned a drained cursor")
	}
}
