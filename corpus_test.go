package pugz

// Cached test corpora. Generating FASTQ data and compressing it with
// this repository's own DEFLATE writer is the most expensive fixed
// cost of the root test suite, and under -race on a small CI box the
// per-test regeneration used to dominate the split race groups'
// runtime. Corpora are deterministic in (reads, seed) and treated as
// read-only by every test, so each distinct shape is generated — and
// each (shape, level) pair compressed — exactly once per test binary.

import (
	"sync"
	"testing"

	"repro/internal/fastq"
)

var (
	corpusMu  sync.Mutex
	corpusRaw = map[[2]int64][]byte{}
	corpusGz  = map[[3]int64][]byte{}
)

// genFastq returns the cached FASTQ corpus for (reads, seed).
func genFastq(reads int, seed int64) []byte {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	key := [2]int64{int64(reads), seed}
	if b, ok := corpusRaw[key]; ok {
		return b
	}
	b := fastq.Generate(fastq.GenOptions{Reads: reads, Seed: seed})
	corpusRaw[key] = b
	return b
}

// gzCorpus returns the cached pugz.Compress result of genFastq(reads,
// seed) at the given level. The slice is shared: callers must not
// mutate it.
func gzCorpus(tb testing.TB, reads int, seed int64, level int) []byte {
	tb.Helper()
	data := genFastq(reads, seed)
	corpusMu.Lock()
	defer corpusMu.Unlock()
	key := [3]int64{int64(reads), seed, int64(level)}
	if gz, ok := corpusGz[key]; ok {
		return gz
	}
	gz, err := Compress(data, level)
	if err != nil {
		tb.Fatal(err)
	}
	corpusGz[key] = gz
	return gz
}
