package pugz

import (
	"bytes"
	"runtime"

	"repro/internal/bgzf"
	"repro/internal/guess"
	"repro/internal/gzindex"
	"repro/internal/gzipx"
)

// This file exposes the two related-work baselines the paper positions
// pugz against (Section II), plus the undetermined-character guesser
// its discussion leaves as future work (Section VIII). They let
// downstream users — and the experiment harness — compare the three
// ways of getting random access to gzip data:
//
//	pugz.RandomAccess  no preparation, approximate above level 1
//	pugz.Index         exact, but requires one prior full decompression
//	pugz BGZF          exact and parallel, but requires re-compression
//	                   into the blocked format (and most public data
//	                   is not stored that way)

// Index provides exact random access to a gzip file after one
// sequential indexing pass (the zran approach of reference [11]).
type Index struct {
	inner      *gzindex.Index
	payloadOff int64
}

// BuildIndex decompresses the first member of gz once, checkpointing
// the decoder state every spacing output bytes (0 selects 1 MiB). It is
// the whole-file framing of the streaming construction path: the decode
// runs through the parallel pipeline (NewIndexFromReader), and the
// result is byte-identical to the sequential zran build regardless of
// thread count.
func BuildIndex(gz []byte, spacing int64) (*Index, error) {
	return NewIndexFromReader(bytes.NewReader(gz), spacing, StreamOptions{
		Threads: runtime.GOMAXPROCS(0),
	})
}

// Size returns the decompressed size the index covers.
func (ix *Index) Size() int64 { return ix.inner.OutSize }

// Checkpoints returns the number of restart points.
func (ix *Index) Checkpoints() int { return len(ix.inner.Checkpoints) }

// spacing estimates the checkpoint interval in decompressed bytes —
// the cost of one checkpoint-to-offset inflate, used to decide when a
// forward-scanning cursor beats an indexed read.
func (ix *Index) spacing() int64 {
	n := len(ix.inner.Checkpoints)
	if n < 1 {
		n = 1
	}
	return ix.inner.OutSize/int64(n) + 1
}

// coversWholeFile reports whether the indexed member is the entire
// compressed file (payload + trailer reach exactly to csize): then the
// index's output size is the file's total decompressed size.
func (ix *Index) coversWholeFile(csize int64) bool {
	return ix.payloadOff+(ix.inner.EndBit+7)/8+8 == csize
}

// ReadAt fills p with decompressed bytes starting at offset off,
// inflating only from the nearest checkpoint.
func (ix *Index) ReadAt(gz []byte, p []byte, off int64) (int, error) {
	return ix.inner.ReadAt(gz[ix.payloadOff:], p, off)
}

// readAtSource is ReadAt over a File's byte source: the compressed
// window is loaded on demand starting at the governing checkpoint and
// grown geometrically until the read decodes (in-memory sources alias
// the slice and decode in one attempt). The index is never mutated and
// every window is private to the call, so any number of these may run
// concurrently — this is File.ReadAt's embarrassingly parallel path.
func (ix *Index) readAtSource(f *File, p []byte, off int64) (int, error) {
	cp, err := ix.inner.FindCheckpoint(off)
	if err != nil {
		return 0, err
	}
	winBase := ix.payloadOff + cp.Bit/8
	// First guess: compressed extent rarely exceeds the decompressed
	// need; pad for the checkpoint-to-offset gap and tree headers.
	need := (off - cp.Out) + int64(len(p))
	w, err := f.openWindow(winBase, need+256<<10)
	if err != nil {
		return 0, err
	}
	for {
		n, err := ix.inner.ReadAtWindow(w.data, winBase-ix.payloadOff, p, off)
		if err == nil {
			f.inflated.Add(off - cp.Out + int64(n))
			return n, nil
		}
		grown, gerr := w.grow()
		if gerr != nil {
			return 0, gerr
		}
		if !grown {
			return 0, err
		}
	}
}

// Marshal serialises the index to a compact side-car blob (windows
// deflate-compressed); LoadIndex restores it.
func (ix *Index) Marshal() ([]byte, error) { return ix.inner.Marshal() }

// LoadIndex restores an index serialised by Marshal for use with the
// same gzip file.
func LoadIndex(gz []byte, blob []byte) (*Index, error) {
	m, err := gzipx.ParseHeader(gz)
	if err != nil {
		return nil, err
	}
	inner, err := gzindex.Unmarshal(blob)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner, payloadOff: int64(m.HeaderLen)}, nil
}

// AttachIndex attaches an already-built (or loaded) checkpoint index
// for this same gzip file: subsequent ReadAt calls within the indexed
// extent decode from the nearest checkpoint instead of scanning from
// the start. A nil index detaches. The attach is atomic, so
// AttachIndex may run concurrently with reads.
func (f *File) AttachIndex(ix *Index) { f.setIndex(ix) }

// SetIndex is AttachIndex over a serialised blob (Index.Marshal): it
// unmarshals and attaches in one step.
//
// Deprecated: callers holding a *Index should AttachIndex it directly
// instead of round-tripping through the blob encoding; SetIndex
// survives as a thin wrapper for side-car loading.
func (f *File) SetIndex(blob []byte) error {
	inner, err := gzindex.Unmarshal(blob)
	if err != nil {
		return err
	}
	f.AttachIndex(&Index{inner: inner, payloadOff: f.hdrLen})
	return nil
}

// CompressBGZF compresses data into the blocked BGZF format
// (bgzip-compatible: independent <=64 KiB members with BC size
// fields). The output is a valid multi-member gzip file readable by
// any gunzip.
func CompressBGZF(data []byte, level int) ([]byte, error) {
	return bgzf.Compress(data, level)
}

// DecompressBGZF inflates a BGZF file with the given number of
// goroutines — trivially parallel because blocks are independent.
func DecompressBGZF(data []byte, threads int) ([]byte, error) {
	return bgzf.DecompressParallel(data, threads)
}

// BGZFReadAt serves an exact positional read from a BGZF file.
func BGZFReadAt(data []byte, p []byte, off int64) (int, error) {
	return bgzf.ReadAt(data, p, off)
}

// IsBGZF reports whether data begins with a BGZF block (a gzip member
// carrying the BC extra subfield).
func IsBGZF(data []byte) bool {
	_, err := bgzf.Scan(data)
	return err == nil
}

// GuessResult reports a guessing pass over random-access output.
type GuessResult struct {
	// Text is the input with undetermined characters replaced by
	// structure-aware guesses. Lossy: plausible, not exact.
	Text    []byte
	Guessed int
	// ByPhase counts guesses per FASTQ line phase
	// (header/dna/plus/quality/unknown).
	ByPhase map[string]int
}

// GuessUndetermined applies the FASTQ-structure-aware guesser to the
// narrowed text of a random access (the future-work direction of the
// paper's Section VIII). The input is not modified.
func GuessUndetermined(text []byte, seed int64) *GuessResult {
	r := guess.Undetermined(text, seed)
	out := &GuessResult{Text: r.Text, Guessed: r.Guessed, ByPhase: map[string]int{}}
	for p, n := range r.GuessedByPhase {
		if n > 0 {
			out.ByPhase[guess.Phase(p).String()] = n
		}
	}
	return out
}
