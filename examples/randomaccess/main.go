// Random access: extract DNA sequences from the middle of a
// gzip-compressed FASTQ file without decompressing the prefix — the
// paper's fqgz use case, including the undetermined-context view of
// Figure 1.
//
//	go run ./examples/randomaccess
package main

import (
	"fmt"
	"log"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	// A low-compression FASTQ file: the case the paper shows is
	// virtually exact for random access (Table I, "lowest" row).
	data := fastq.Generate(fastq.GenOptions{Reads: 40_000, Seed: 7})
	gz, err := pugz.Compress(data, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Jump to the middle of the *compressed* file.
	offset := int64(len(gz) / 2)
	res, err := pugz.RandomAccess(gz, offset, pugz.RandomAccessOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requested compressed offset %d; synced to a DEFLATE block at payload bit %d\n",
		offset, res.BlockBit)
	fmt.Printf("decoded %d bytes in %d blocks\n", len(res.Text), len(res.Blocks))

	// The first decoded bytes still carry '?' where back-references
	// reached the unknown initial context (Figure 1's left columns).
	fmt.Printf("\nfirst 128 bytes of block 0:\n%q\n", res.Text[:128])

	if res.FirstResolvedBlock >= 0 {
		fmt.Printf("\nfirst sequence-resolved block: #%d, after %.2f MB of decompression\n",
			res.FirstResolvedBlock, float64(res.DelayBytes)/1e6)
	}

	clean := 0
	for _, s := range res.Sequences {
		if s.Unambiguous() {
			clean++
		}
	}
	fmt.Printf("extracted %d DNA-like sequences, %d unambiguous (%.1f%%)\n",
		len(res.Sequences), clean, 100*float64(clean)/float64(len(res.Sequences)))

	if frac, ok := res.UnambiguousAfterResolved(); ok {
		fmt.Printf("after the first sequence-resolved block: %.1f%% unambiguous\n", frac*100)
	}

	// Show a few fully resolved reads.
	fmt.Println("\nsample extracted sequences:")
	shown := 0
	for _, s := range res.Sequences {
		if s.Unambiguous() && len(s.Seq) >= 60 {
			fmt.Printf("  %s...\n", s.Seq[:60])
			shown++
			if shown == 3 {
				break
			}
		}
	}
}
