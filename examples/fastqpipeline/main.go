// FASTQ pipeline: the paper's motivating scenario — a bioinformatics
// tool whose first step is reading a large .fastq.gz. Here the
// parallel decompressor feeds a GC-content and quality profile
// computation, and we compare against feeding the same pipeline from
// the sequential baseline.
//
//	go run ./examples/fastqpipeline
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	pugz "repro"
	"repro/internal/dna"
	"repro/internal/fastq"
)

func main() {
	// ~25 MB of reads, gzipped at the default level.
	data := fastq.Generate(fastq.GenOptions{Reads: 100_000, Seed: 11})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d reads, %d compressed bytes\n", 100_000, len(gz))

	run := func(name string, inflate func() ([]byte, error)) {
		t := time.Now()
		out, err := inflate()
		if err != nil {
			log.Fatal(err)
		}
		inflateTime := time.Since(t)

		t = time.Now()
		recs, err := fastq.Parse(out)
		if err != nil {
			log.Fatal(err)
		}
		var gcSum float64
		var qSum, qN int64
		for _, r := range recs {
			gcSum += dna.GC(r.Seq)
			for _, q := range r.Qual {
				qSum += int64(q - 33)
				qN++
			}
		}
		analyse := time.Since(t)
		fmt.Printf("%-28s inflate=%-12v analyse=%-12v reads=%d meanGC=%.4f meanQ=%.1f\n",
			name, inflateTime, analyse, len(recs), gcSum/float64(len(recs)), float64(qSum)/float64(qN))
	}

	run("sequential (gunzip role)", func() ([]byte, error) {
		return pugz.GunzipSequential(gz)
	})
	run(fmt.Sprintf("pugz (%d threads)", runtime.NumCPU()*4), func() ([]byte, error) {
		out, _, err := pugz.Decompress(gz, pugz.Options{Threads: runtime.NumCPU() * 4})
		return out, err
	})
	if runtime.NumCPU() == 1 {
		fmt.Println("\nnote: on a single-core host pugz does strictly more total work than the")
		fmt.Println("sequential decoder, so its wall time is higher here; with one core per chunk")
		fmt.Println("the chunks run concurrently (see the Figure 5 experiment's simulated makespan).")
	}
}
