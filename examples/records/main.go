// Record framing: the generalised record-access surface. One synthetic
// rotated-log corpus (multi-member gzip, stored-block-heavy) is read
// three ways:
//
//  1. index-free random access with a JSONL framer — sync to a DEFLATE
//     block near a *compressed* offset, frame complete records out of
//     the partially resolved text;
//
//  2. an exact record scan (File.Records) from a *decompressed*
//     offset — every record, byte-perfect, via the File read paths;
//
//  3. a mid-stream synced scan — start inside a record, skip to the
//     next boundary.
//
//     go run ./examples/records
package main

import (
	"fmt"
	"log"

	pugz "repro"
	"repro/internal/framing"
)

func main() {
	// A rotated-log shape: four gzip members at mixed levels, the first
	// stored (level 0) — exactly what log rotation with bursty
	// compression settings produces.
	data := framing.GenJSONL(20_000, 7)
	var gz []byte
	per := (len(data) + 3) / 4
	for i, level := range []int{0, 1, 6, 9} {
		lo := i * per
		hi := min(lo+per, len(data))
		m, err := pugz.Compress(data[lo:hi], level)
		if err != nil {
			log.Fatal(err)
		}
		gz = append(gz, m...)
	}
	fmt.Printf("corpus: %d JSONL bytes -> %d compressed, 4 members (levels 0,1,6,9)\n",
		len(data), len(gz))

	// 1. Index-free random access. The framer decides what a record is;
	// only records free of undetermined bytes are emitted.
	fr := pugz.NewlineFraming{ValidateJSON: true}
	offset := int64(len(gz) / 8) // inside the stored member
	res, err := pugz.RandomAccess(gz, offset, pugz.RandomAccessOptions{Framer: fr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom access at compressed offset %d (framer %q):\n", offset, fr.Name())
	fmt.Printf("  decoded %d bytes, recovered %d complete records\n",
		len(res.Text), len(res.Records))
	for _, r := range res.Records[:3] {
		fmt.Printf("  @%-8d %s\n", r.Offset, r.Data)
	}

	// 2. Exact scan of every record through the seekable File surface.
	f, err := pugz.NewFileBytes(gz, pugz.FileOptions{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc, err := f.Records(0, pugz.RecordOptions{Framer: fr})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact scan: %d records (oracle wrote 20000)\n", n)

	// 3. Synced scan from the middle of a record: Sync skips to the
	// first confirmable boundary at or after the offset.
	from := int64(len(data) / 2)
	sc, err = f.Records(from, pugz.RecordOptions{Framer: fr, Sync: true})
	if err != nil {
		log.Fatal(err)
	}
	if sc.Next() {
		r := sc.Record()
		fmt.Printf("\nsynced scan from decompressed offset %d: first record @%d:\n  %s\n",
			from, r.Offset, r.Data)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
