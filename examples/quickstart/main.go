// Quickstart: compress a synthetic FASTQ file, decompress it in
// parallel with pugz, and verify the roundtrip.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	// 1. Make a FASTQ file (50k reads, ~12 MB) and gzip it at the
	// default level — the exact shape of real sequencing data inputs.
	data := fastq.Generate(fastq.GenOptions{Reads: 50_000, Seed: 1})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d -> %d bytes (%.2fx)\n",
		len(data), len(gz), float64(len(data))/float64(len(gz)))

	// 2. Decompress in parallel. Output is byte-identical to gunzip.
	out, st, err := pugz.Decompress(gz, pugz.Options{
		Threads:         runtime.NumCPU() * 4, // chunks, not OS threads
		VerifyChecksums: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		log.Fatal("roundtrip mismatch!")
	}

	// 3. Inspect how the two passes spent their time.
	fmt.Printf("decompressed with %d chunks in %v\n", len(st.Chunks), st.TotalWall)
	fmt.Printf("  block sync:          %v\n", st.SyncWall)
	fmt.Printf("  pass 1 (parallel):   %v\n", st.Pass1Wall)
	fmt.Printf("  pass 2 (sequential): %v\n", st.Pass2SeqWall)
	fmt.Printf("  pass 2 (parallel):   %v\n", st.Pass2ParWall)
	for i, c := range st.Chunks {
		fmt.Printf("  chunk %d: %d bytes out, %d context symbols before resolution\n",
			i, c.OutBytes, c.SymbolsUnresolved)
	}
	fmt.Println("roundtrip OK")
}
