// Quickstart: compress a synthetic FASTQ file, decompress it in
// parallel with pugz — first whole-file (the slice API), then through
// the bounded-memory streaming pipeline (the io.Reader API) — and
// verify both roundtrips.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"runtime"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	// 1. Make a FASTQ file (50k reads, ~12 MB) and gzip it at the
	// default level — the exact shape of real sequencing data inputs.
	data := fastq.Generate(fastq.GenOptions{Reads: 50_000, Seed: 1})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d -> %d bytes (%.2fx)\n",
		len(data), len(gz), float64(len(data))/float64(len(gz)))

	// 2. The slice API: whole-file two-pass parallel decompression.
	// Output is byte-identical to gunzip.
	out, st, err := pugz.Decompress(gz, pugz.Options{
		Threads:         runtime.NumCPU() * 4, // chunks, not OS threads
		VerifyChecksums: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		log.Fatal("roundtrip mismatch!")
	}

	// 3. Inspect how the two passes spent their time.
	fmt.Printf("decompressed with %d chunks in %v\n", len(st.Chunks), st.TotalWall)
	fmt.Printf("  block sync:          %v\n", st.SyncWall)
	fmt.Printf("  pass 1 (parallel):   %v\n", st.Pass1Wall)
	fmt.Printf("  pass 2 (sequential): %v\n", st.Pass2SeqWall)
	fmt.Printf("  pass 2 (parallel):   %v\n", st.Pass2ParWall)
	for i, c := range st.Chunks {
		fmt.Printf("  chunk %d: %d bytes out, %d context symbols before resolution\n",
			i, c.OutBytes, c.SymbolsUnresolved)
	}

	// 4. The streaming API: the same parallel engine behind an
	// io.ReadCloser. The source here is an in-memory reader, but any
	// io.Reader works — a file, a pipe, a socket — and neither the
	// compressed nor the decompressed payload is ever held in full
	// (see examples/streaming for a pipe-fed run).
	r, err := pugz.NewReader(bytes.NewReader(gz), pugz.StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 512 << 10,
		VerifyChecksums:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	streamed, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(streamed, data) {
		log.Fatal("streaming roundtrip mismatch!")
	}
	rs := r.Stats()
	fmt.Printf("streamed the same file in %d batches, peak compressed window %d bytes (file is %d)\n",
		rs.Batches, rs.MaxBufferedCompressed, len(gz))
	fmt.Println("roundtrip OK")
}
