// Server walkthrough: mount a directory of gzip blobs under the
// serving subsystem (the library behind cmd/pugzd) and exercise the
// whole request surface in-process — full GETs, ranged 206s at
// decompressed offsets, an unsatisfiable 416, the catalog listing,
// and the metrics snapshot after the traffic.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	pugz "repro"
	"repro/internal/fastq"
	"repro/internal/serve"
)

func main() {
	// A blob directory: two gzip members, one with a sidecar
	// checkpoint index (as `pugz -mkindex` would leave next to it).
	dir, err := os.MkdirTemp("", "pugzd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reads := fastq.Generate(fastq.GenOptions{Reads: 20_000, Seed: 1})
	gz, err := pugz.Compress(reads, 6)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reads.fastq.gz"), gz, 0o644); err != nil {
		log.Fatal(err)
	}
	ix, err := pugz.BuildIndex(gz, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reads.fastq.gz.gzx"), blob, 0o644); err != nil {
		log.Fatal(err)
	}

	// Mount it. ScanDir picks up every *.gz and its .gzx sidecars;
	// serve.New wires the handle cache, singleflight opens, background
	// index builds, and the metrics registry.
	cat, err := serve.ScanDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	s, err := serve.New(serve.Options{
		Catalog: cat,
		File:    pugz.FileOptions{Threads: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(rangeHdr string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/blobs/reads.fastq.gz", nil)
		if rangeHdr != "" {
			req.Header.Set("Range", rangeHdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			log.Fatal(err)
		}
		return resp
	}

	// A ranged read at a decompressed offset: the response is the same
	// bytes a range request against the *inflated* file would return.
	resp := get("bytes=1000000-1000063")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("%s %s -> %d %s\n", "GET", "bytes=1000000-1000063",
		resp.StatusCode, resp.Header.Get("Content-Range"))
	fmt.Printf("  body: %q...\n", body[:32])

	// A suffix range (the last 64 bytes of the decompressed stream).
	resp = get("bytes=-64")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("GET bytes=-64 -> %d %s\n", resp.StatusCode, resp.Header.Get("Content-Range"))

	// Past EOF: a syntactically valid but unsatisfiable range is a 416
	// carrying the representation size.
	resp = get(fmt.Sprintf("bytes=%d-", int64(len(reads))))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("GET past EOF -> %d %s\n", resp.StatusCode, resp.Header.Get("Content-Range"))

	// The catalog listing and the metrics registry reflect the traffic.
	resp, err = ts.Client().Get(ts.URL + "/blobs")
	if err != nil {
		log.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("listing: %s", listing)

	m := s.Metrics().Snapshot()
	fmt.Printf("metrics: requests=%d 206s=%d cache_hits=%d bytes_served=%d bytes_inflated=%d\n",
		m["requests_total"], m["status_206"], m["cache_hits"],
		m["bytes_served"], m["bytes_inflated"])
}
