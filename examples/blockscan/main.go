// Block scan: locate DEFLATE block boundaries in a gzip file, both
// exhaustively (sequential decode) and by brute-force bit scanning
// from an arbitrary offset (Section VI-A), then compare.
//
//	go run ./examples/blockscan
package main

import (
	"fmt"
	"log"
	"time"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	data := fastq.Generate(fastq.GenOptions{Reads: 30_000, Seed: 3})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Exhaustive index from a full sequential decode.
	blocks, err := pugz.ScanBlocks(gz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d blocks in %d compressed bytes:\n", len(blocks), len(gz))
	for i, b := range blocks {
		if i > 4 && i < len(blocks)-2 {
			if i == 5 {
				fmt.Println("  ...")
			}
			continue
		}
		fmt.Printf("  block %3d: %-7s bits [%d,%d) -> output bytes [%d,%d)%s\n",
			i, b.Type, b.StartBit, b.EndBit, b.OutStart, b.OutEnd,
			map[bool]string{true: " (final)"}[b.Final])
	}

	// Now pretend we only have a byte offset: sync by brute force.
	probe := int64(len(gz)) / 2
	t := time.Now()
	bit, err := pugz.FindBlock(gz, probe)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t)

	// Verify it is a true boundary.
	onLattice := false
	for _, b := range blocks {
		if b.StartBit == bit {
			onLattice = true
			break
		}
	}
	fmt.Printf("\nbrute-force sync from byte %d: found block start at bit %d in %v (on true lattice: %v)\n",
		probe, bit, elapsed, onLattice)
}
