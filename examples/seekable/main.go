// Example: random access to decompressed content over an io.ReaderAt
// through the seekable pugz.File surface — with and without a
// checkpoint index.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	// A ~12 MB synthetic FASTQ corpus, gzip level 6.
	data := fastq.Generate(fastq.GenOptions{Reads: 50000, Seed: 7})
	gz, err := pugz.Compress(data, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Any io.ReaderAt works: an os.File, an mmap, a remote blob
	// adapter. bytes.Reader stands in for one here.
	f, err := pugz.NewFile(bytes.NewReader(gz), int64(len(gz)), pugz.FileOptions{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Positional read at a decompressed offset: exact gunzip bytes.
	// A deep unindexed seek like this runs as a parallel two-pass skip
	// (nothing before the target is translated or materialised), and
	// the restart points it discovers are retained, so a second deep
	// seek resumes near its target instead of re-decoding the file.
	p := make([]byte, 80)
	off := int64(len(data) / 2)
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("ReadAt(%d) without index: %q (%d restart points retained)\n",
		off, p[:40], f.Checkpoints())

	// io.ReadSeeker over the decompressed stream.
	if _, err := f.Seek(-200, io.SeekEnd); err != nil {
		log.Fatal(err)
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("last 200 decompressed bytes end with: %q\n", tail[len(tail)-20:])

	// With a checkpoint index, ReadAt inflates only from the nearest
	// checkpoint — the zran baseline the paper compares against.
	// BuildIndex streams over the File's own source in one parallel
	// bounded-memory pass and attaches the result; Marshal produces the
	// side-car blob a later process would load with SetIndex.
	ix, err := f.BuildIndex(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := ix.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.ReadAt(p, off); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("ReadAt(%d) with %d-checkpoint index (%d-byte side-car): %q\n",
		off, ix.Checkpoints(), len(blob), p[:40])

	// The paper's index-free path on the same File: sync to a block
	// near a *compressed* offset and decode with an undetermined
	// context — immediate, approximate, no prior pass.
	res, err := f.RandomAccessAt(int64(len(gz)/2), pugz.RandomAccessOptions{MaxOutput: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	clean := 0
	for _, s := range res.Sequences {
		if s.Unambiguous() {
			clean++
		}
	}
	fmt.Printf("RandomAccessAt(50%% compressed): %d sequences, %d fully resolved\n",
		len(res.Sequences), clean)
}
