// Streaming: decompress a multi-member gzip stream from a pipe with
// bounded memory. A producer goroutine generates FASTQ text and
// gzip-compresses it member by member straight into an io.Pipe; the
// consumer decompresses through pugz.NewReader as bytes arrive. At no
// point does either side hold the whole compressed (or decompressed)
// stream — the high-water marks printed at the end prove it.
//
//	go run ./examples/streaming
package main

import (
	"compress/gzip"
	"fmt"
	"hash/crc32"
	"io"
	"log"

	pugz "repro"
	"repro/internal/fastq"
)

func main() {
	const members = 3
	pr, pw := io.Pipe()

	// Producer: three gzip members, each ~7 MB of FASTQ, written
	// incrementally. Checksum what went in so the consumer can verify
	// without either side keeping the text around.
	var wantCRC uint32
	var wantLen int64
	go func() {
		for m := 0; m < members; m++ {
			data := fastq.Generate(fastq.GenOptions{Reads: 30_000, Seed: int64(m + 1)})
			wantCRC = crc32.Update(wantCRC, crc32.IEEETable, data)
			wantLen += int64(len(data))
			zw := gzip.NewWriter(pw)
			if _, err := zw.Write(data); err != nil {
				pw.CloseWithError(err)
				return
			}
			if err := zw.Close(); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	// Consumer: parallel streaming decompression off the pipe.
	r, err := pugz.NewReader(pr, pugz.StreamOptions{
		Threads:              4,
		BatchCompressedBytes: 1 << 20,
		VerifyChecksums:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	gotCRC := uint32(0)
	var gotLen int64
	buf := make([]byte, 1<<20)
	for {
		n, err := r.Read(buf)
		gotCRC = crc32.Update(gotCRC, crc32.IEEETable, buf[:n])
		gotLen += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if gotCRC != wantCRC || gotLen != wantLen {
		log.Fatalf("stream mismatch: crc %08x/%08x len %d/%d", gotCRC, wantCRC, gotLen, wantLen)
	}

	st := r.Stats()
	fmt.Printf("decompressed %d bytes from %d members in %d batches\n",
		gotLen, st.Members, st.Batches)
	fmt.Printf("peak compressed bytes resident: %d (the stream never existed in one slice)\n",
		st.MaxBufferedCompressed)
	fmt.Println("pipe-fed parallel decompression OK")
}
