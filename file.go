package pugz

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gzindex"
	"repro/internal/gzipx"
)

// FileOptions configures a File.
type FileOptions struct {
	// Threads is the number of parallel chunks used by sequential-scan
	// reads (values < 1 select 1... runtime.NumCPU is a good choice).
	Threads int
	// BatchCompressedBytes is the compressed bytes consumed per batch
	// during sequential-scan reads (default 4 MiB x Threads).
	BatchCompressedBytes int
	// MinChunk is the minimum compressed bytes per chunk.
	MinChunk int
	// Index, when set, accelerates ReadAt within the first member to
	// one checkpoint-to-offset inflate (the zran baseline) instead of a
	// scan from the start. It must have been built (or loaded) for this
	// same gzip file.
	Index *Index
	// AutoIndexSpacing tunes the restart points a File retains as a
	// side-channel of its own reads: deep unindexed seeks harvest
	// checkpoints (32 KiB of memory each) at least this many output
	// bytes apart, so repeated deep seeks into the same File stop
	// re-decoding from the start. 0 selects 1 MiB; negative disables
	// auto-indexing.
	AutoIndexSpacing int64
}

// File provides random access to decompressed content over any
// io.ReaderAt — an os.File, an mmap, a bytes.Reader, a remote blob
// adapter — without ever materialising the whole compressed or
// decompressed stream. It is the seekable surface of the unified
// engine:
//
//   - ReadAt / Read / Seek address *decompressed* offsets exactly
//     (output is byte-identical to gunzip's). With an Index, reads
//     within the first member inflate only from the nearest
//     checkpoint; without one, reads decode forward from the start
//     through the bounded-memory parallel pipeline, and a cached
//     cursor makes ascending reads (the scan pattern) cost one pass
//     total.
//
//   - RandomAccessAt addresses *compressed* offsets the paper's way:
//     no index, no decode-from-start — sync to a block by brute-force
//     bit scanning and decode with an undetermined context
//     (Sections IV and VI), yielding partially resolved text
//     immediately.
//
// ReadAt, Read, Seek and Size are safe for concurrent use (reads on
// the shared cursor are serialised); the remaining methods are not.
type File struct {
	src  io.ReaderAt
	size int64  // compressed size
	raw  []byte // non-nil for in-memory sources: zero-copy windows
	opts FileOptions

	hdrLen int64 // first member's header length

	mu    sync.Mutex
	cur   *fileCursor
	pos   int64 // Read/Seek cursor (decompressed)
	usize int64 // cached decompressed size, -1 = not yet known

	// Auto-index: restart points within the first member, harvested as
	// a side-channel of deep seeks (and Size passes) and consulted when
	// a cursor must be (re)opened. Guarded by its own lock because the
	// pipeline worker inserts while a read is in flight under mu.
	cpMu sync.Mutex
	cps  []fileCheckpoint // sorted by out
}

// fileCheckpoint is one retained restart point of the first member.
type fileCheckpoint struct {
	bit int64  // block-boundary bit offset within the member's payload
	out int64  // decompressed offset at the boundary
	win []byte // resolved 32 KiB preceding it (immutable once stored)
}

// fileCursor is the forward-scan state for unindexed reads: a
// streaming Reader over the compressed file plus the decompressed
// offset it has reached. skipPending marks a cursor opened with a
// pipeline-level skip whose target has not been confirmed reachable
// yet: until the first byte arrives, pos is presumptive (the stream
// may end before it), so it must not be trusted as a size measurement.
type fileCursor struct {
	r           *Reader
	pos         int64
	skipPending bool
}

// NewFile opens a gzip file over an arbitrary io.ReaderAt of the given
// compressed size. The first member header is parsed (and validated)
// before returning.
func NewFile(src io.ReaderAt, size int64, o FileOptions) (*File, error) {
	f := &File{src: src, size: size, opts: o, usize: -1}
	br := bufio.NewReader(io.NewSectionReader(src, 0, size))
	m, err := gzipx.ReadHeader(br)
	if err != nil {
		return nil, err
	}
	f.hdrLen = int64(m.HeaderLen)
	return f, nil
}

// NewFileBytes is NewFile over an in-memory gzip file. Byte-source
// windows alias the slice directly (no copying), so the slice must not
// be mutated while the File is in use.
func NewFileBytes(gz []byte, o FileOptions) (*File, error) {
	f, err := NewFile(bytes.NewReader(gz), int64(len(gz)), o)
	if err != nil {
		return nil, err
	}
	f.raw = gz
	return f, nil
}

// streamOptions assembles the cursor's Reader configuration.
func (f *File) streamOptions() StreamOptions {
	return StreamOptions{
		Threads:              f.opts.Threads,
		BatchCompressedBytes: f.opts.BatchCompressedBytes,
		MinChunk:             f.opts.MinChunk,
	}
}

// ReadAt fills p with decompressed bytes starting at decompressed
// offset off, implementing io.ReaderAt over the *output* stream. Reads
// that land inside the indexed extent are served from the nearest
// checkpoint; everything else decodes forward from the member start on
// a cached cursor, so a sequence of ascending ReadAt calls costs one
// sequential pass in total. Short reads at end of stream return io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pugz: negative read offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readAtLocked(p, off)
}

// readAtLocked serves a positional read (f.mu held), choosing between
// the checkpoint index and the forward-scan cursor: the cursor wins
// only when it is already at (or within one checkpoint spacing behind)
// the target, where continuing the scan costs less than a
// checkpoint-to-offset inflate.
func (f *File) readAtLocked(p []byte, off int64) (int, error) {
	if ix := f.opts.Index; ix != nil && off+int64(len(p)) <= ix.Size() {
		useCursor := false
		if f.cur != nil && off >= f.cur.pos {
			useCursor = off-f.cur.pos <= ix.spacing()
		}
		if !useCursor {
			n, err := ix.readAtSource(f, p, off)
			if err == nil && n < len(p) {
				err = io.EOF
			}
			return n, err
		}
	}
	return f.readAtCursor(p, off)
}

// cursorReopenGap is how far ahead of the live cursor a target may lie
// before continuing the translate-and-discard scan loses to reopening
// the cursor with a pipeline-level skip: a reopened cursor restarts
// from the nearest retained checkpoint and covers the gap without
// pass-2 translation (the parallel two-pass skip).
const cursorReopenGap = 4 << 20

// readAtCursor serves a positional read by scanning forward on the
// shared cursor (f.mu held). Targets behind the cursor or far ahead of
// it reopen the cursor at the best restart point; small forward gaps
// are discarded in-line, which keeps ascending reads on one pass.
func (f *File) readAtCursor(p []byte, off int64) (int, error) {
	if f.cur == nil || off < f.cur.pos || off-f.cur.pos > cursorReopenGap {
		if err := f.openCursorFor(off); err != nil {
			return 0, err
		}
	}
	if skip := off - f.cur.pos; skip > 0 {
		n, err := io.CopyN(io.Discard, f.cur.r, skip)
		f.cur.pos += n
		if err != nil {
			if errors.Is(err, io.EOF) {
				return 0, io.EOF // offset past end of stream
			}
			return 0, err
		}
	}
	n, err := io.ReadFull(f.cur.r, p)
	if n > 0 {
		// The stream reached the cursor's skip target: pos is exact again.
		f.cur.skipPending = false
	}
	f.cur.pos += int64(n)
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		err = io.EOF
		if f.usize < 0 && !f.cur.skipPending {
			f.usize = f.cur.pos // end reached: size now known
		}
	}
	return n, err
}

// openCursorFor (re)opens the streaming cursor so its next byte is the
// one at decompressed offset off (f.mu held). The cursor starts at the
// best restart point at or before off — a retained auto-index
// checkpoint, an attached Index checkpoint, or the file start — and
// covers the remaining gap with the pipeline's translation-free skip;
// restart points discovered while skipping are retained, so repeated
// deep seeks into the same File stop re-decoding from the start.
func (f *File) openCursorFor(off int64) error {
	f.closeCursor()
	var (
		secBase  int64
		cs       cursorState
		startOut int64
	)
	if cp := f.bestRestart(off); cp != nil {
		secBase = f.hdrLen + cp.bit/8
		cs.resume = &resumePoint{bit: cp.bit % 8, window: cp.win, out: cp.out}
		startOut = cp.out
	}
	cs.skipTo = off
	if sp := f.autoIndexSpacing(); sp > 0 && f.Checkpoints() < maxAutoCheckpoints {
		// Once the retention cap is hit the side-channel is not wired at
		// all: each checkpoint costs a 32 KiB window copy in the
		// pipeline, pure waste when retainCheckpoint would drop it.
		cs.spacing = sp
		cs.onCheckpoint = func(cp core.Checkpoint) { f.retainCheckpoint(cp, secBase) }
	}
	r, err := newCursorReader(io.NewSectionReader(f.src, secBase, f.size-secBase), f.streamOptions(), cs)
	if err != nil {
		return err
	}
	f.cur = &fileCursor{r: r, pos: off, skipPending: off > startOut}
	return nil
}

// bestRestart returns the restart point closest below off: the best of
// the retained auto-index checkpoints and the attached Index's
// checkpoints (both first-member surfaces), or nil to start from the
// beginning of the file. A checkpoint at output offset 0 is never
// returned: resuming there with its zeroed window would seed the
// decoder's context and silently soften the strict member-start rule
// (back-references before the stream start must be rejected, not read
// as zeros) — starting from scratch costs the same and keeps it.
func (f *File) bestRestart(off int64) *fileCheckpoint {
	var best *fileCheckpoint
	f.cpMu.Lock()
	if i := sort.Search(len(f.cps), func(i int) bool { return f.cps[i].out > off }); i > 0 {
		cp := f.cps[i-1]
		best = &cp
	}
	f.cpMu.Unlock()
	if ix := f.opts.Index; ix != nil && ix.Size() > 0 {
		// Past the indexed extent the index's last checkpoint is still
		// the best first-member restart (the cursor handles the trailer
		// and any following members from there).
		lookup := off
		if lookup >= ix.Size() {
			lookup = ix.Size() - 1
		}
		if cp, err := ix.inner.FindCheckpoint(lookup); err == nil {
			if best == nil || cp.Out > best.out {
				best = &fileCheckpoint{bit: cp.Bit, out: cp.Out, win: cp.Window}
			}
		}
	}
	if best != nil && best.out == 0 {
		return nil
	}
	return best
}

// autoIndexSpacing resolves FileOptions.AutoIndexSpacing (0 means the
// zran default, negative disables).
func (f *File) autoIndexSpacing() int64 {
	switch {
	case f.opts.AutoIndexSpacing < 0:
		return 0
	case f.opts.AutoIndexSpacing == 0:
		return gzindex.DefaultSpacing
	}
	return f.opts.AutoIndexSpacing
}

// maxAutoCheckpoints caps the auto-index so its windows never dominate
// memory regardless of file size: 1024 x 32 KiB = 32 MiB at most. Past
// the cap new restart points are dropped; the retained set keeps
// serving (callers wanting denser coverage of huge files attach a real
// Index, whose windows live in one marshalled blob instead).
const maxAutoCheckpoints = 1024

// retainCheckpoint files a restart point discovered by a cursor whose
// source section began at compressed offset secBase. Runs on the
// cursor's worker goroutine, concurrent with reads — hence its own
// lock. Neighbours closer than half the spacing are not duplicated, so
// overlapping skip passes converge instead of accreting.
func (f *File) retainCheckpoint(cp core.Checkpoint, secBase int64) {
	bit := (secBase-f.hdrLen)*8 + cp.Bit
	if bit < 0 || cp.Out == 0 {
		// Pre-payload artifacts cannot happen for well-formed runs; the
		// member-start boundary is useless as a restart point (see
		// bestRestart) and would only occupy a retention slot.
		return
	}
	gap := f.autoIndexSpacing() / 2
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	if len(f.cps) >= maxAutoCheckpoints {
		return
	}
	i := sort.Search(len(f.cps), func(i int) bool { return f.cps[i].out >= cp.Out })
	if i < len(f.cps) && f.cps[i].out-cp.Out < gap {
		return
	}
	if i > 0 && cp.Out-f.cps[i-1].out < gap {
		return
	}
	f.cps = append(f.cps, fileCheckpoint{})
	copy(f.cps[i+1:], f.cps[i:])
	f.cps[i] = fileCheckpoint{bit: bit, out: cp.Out, win: cp.Window}
}

// Checkpoints returns the number of auto-index restart points the File
// has retained so far (diagnostics; safe for concurrent use).
func (f *File) Checkpoints() int {
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	return len(f.cps)
}

func (f *File) closeCursor() {
	if f.cur != nil {
		f.cur.r.Close()
		f.cur = nil
	}
}

// Read implements io.Reader at the Seek cursor. Like ReadAt it uses
// the checkpoint index when one is attached and the forward-scan
// cursor is not already close to the position, so a Seek deep into an
// indexed file does not trigger a decode-from-start.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.readAtLocked(p, f.pos)
	f.pos += int64(n)
	if n > 0 && errors.Is(err, io.EOF) {
		err = nil // io.Reader convention: report EOF on the next call
	}
	return n, err
}

// Seek implements io.Seeker over the decompressed stream. Seeking
// relative to io.SeekEnd requires the decompressed size (see Size).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		f.mu.Lock()
		base = f.pos
		f.mu.Unlock()
	case io.SeekEnd:
		size, err := f.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, fmt.Errorf("pugz: invalid seek whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("pugz: negative seek position %d", pos)
	}
	f.mu.Lock()
	f.pos = pos
	f.mu.Unlock()
	return pos, nil
}

// Size returns the total decompressed size across all members. Without
// an index covering the whole file this requires one measuring pass the
// first time it is called — bounded-memory, parallel, and translation-
// free (the pipeline counts exact output without materialising it) —
// and the result is cached. Checkpoints discovered along the way feed
// the auto-index, so a Size call also primes later deep seeks. Note a
// gzip trailer's ISIZE field is modulo 2^32 and per-member, so it is
// not used.
func (f *File) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.usize >= 0 {
		return f.usize, nil
	}
	// A single-member file with an attached index needs no decode pass:
	// the index already measured the whole output.
	if ix := f.opts.Index; ix != nil && ix.coversWholeFile(f.size) {
		f.usize = ix.Size()
		return f.usize, nil
	}
	cs := cursorState{skipTo: math.MaxInt64}
	if sp := f.autoIndexSpacing(); sp > 0 && f.Checkpoints() < maxAutoCheckpoints {
		cs.spacing = sp
		cs.onCheckpoint = func(cp core.Checkpoint) { f.retainCheckpoint(cp, 0) }
	}
	r, err := newCursorReader(io.NewSectionReader(f.src, 0, f.size), f.streamOptions(), cs)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		return 0, err
	}
	f.usize = r.Stats().OutBytes
	return f.usize, nil
}

// Close releases the forward-scan cursor (if any). The underlying
// source is not closed. The File remains usable; a later read simply
// opens a fresh cursor.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeCursor()
	return nil
}

// --- Byte-source windows ----------------------------------------------

// srcWindow is a loaded extent of the compressed file: the byte-source
// abstraction the compressed-offset surfaces (RandomAccessAt,
// ScanBlocks, FindBlockAt — and the index fast path) decode through
// instead of whole-file slices. For in-memory sources a window aliases
// the original slice (zero copy, always extends to EOF); for true
// io.ReaderAt sources it is filled on demand and grown geometrically
// when a decode runs off its end.
type srcWindow struct {
	src   io.ReaderAt
	size  int64 // total source size
	base  int64 // source offset of data[0]
	data  []byte
	atEOF bool // data reaches the end of the source
	owned bool // data is a private buffer (false: aliases a raw slice)
}

// openWindow loads [base, base+n) of the compressed file (n is clamped
// to the file size; in-memory sources always map through to EOF).
func (f *File) openWindow(base, n int64) (*srcWindow, error) {
	if base > f.size {
		base = f.size
	}
	w := &srcWindow{src: f.src, size: f.size, base: base}
	if f.raw != nil {
		w.data = f.raw[base:]
		w.atEOF = true
		return w, nil
	}
	w.owned = true
	return w, w.extend(n)
}

// extend grows the window by reading n more source bytes after the
// currently loaded extent.
func (w *srcWindow) extend(n int64) error {
	if w.atEOF {
		return nil
	}
	end := w.base + int64(len(w.data)) + n
	if end >= w.size {
		end = w.size
		w.atEOF = true
	}
	need := int(end - w.base - int64(len(w.data)))
	if need <= 0 {
		return nil
	}
	ext := make([]byte, need)
	m, err := w.src.ReadAt(ext, w.base+int64(len(w.data)))
	w.data = append(w.data, ext[:m]...)
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	if errors.Is(err, io.EOF) {
		w.atEOF = true
	}
	return nil
}

// grow doubles the loaded extent. It reports whether the window
// actually got bigger (false once EOF is reached: retrying a failed
// decode cannot help any more).
func (w *srcWindow) grow() (bool, error) {
	if w.atEOF {
		return false, nil
	}
	before := len(w.data)
	n := int64(before)
	if n < minWindowLoad {
		n = minWindowLoad
	}
	if err := w.extend(n); err != nil {
		return false, err
	}
	return len(w.data) > before, nil
}

// discardTo drops the window prefix before source offset off, bounding
// residency for long forward walks (ScanBlocks). A no-op for raw-slice
// windows (they alias the caller's memory) and below the compaction
// threshold (slicing alone would pin the full backing array).
func (w *srcWindow) discardTo(off int64) {
	if !w.owned || off <= w.base {
		return
	}
	k := off - w.base
	if k < minWindowLoad {
		return
	}
	w.data = append([]byte(nil), w.data[k:]...)
	w.base = off
}

// minWindowLoad is the smallest extent loaded from a true io.ReaderAt
// source (in-memory sources alias the slice and never load). Block
// detection confirms a start within tens of KiB in practice, so half a
// MiB serves most finds in one load while growth stays geometric.
const minWindowLoad = 512 << 10
