package pugz

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/gzindex"
	"repro/internal/gzipx"
)

// FileOptions configures a File.
type FileOptions struct {
	// Threads is the number of parallel chunks used by sequential-scan
	// reads (values < 1 select 1... runtime.NumCPU is a good choice).
	Threads int
	// BatchCompressedBytes is the compressed bytes consumed per batch
	// during sequential-scan reads (default 4 MiB x Threads).
	BatchCompressedBytes int
	// MinChunk is the minimum compressed bytes per chunk.
	MinChunk int
	// Index, when set, accelerates ReadAt within the first member to
	// one checkpoint-to-offset inflate (the zran baseline) instead of a
	// scan from the start. It must have been built (or loaded) for this
	// same gzip file.
	Index *Index
	// AutoIndexSpacing tunes the restart points a File retains as a
	// side-channel of its own reads: deep unindexed seeks harvest
	// checkpoints (32 KiB of memory each) at least this many output
	// bytes apart, so repeated deep seeks into the same File stop
	// re-decoding from the start. 0 selects 1 MiB; negative disables
	// auto-indexing.
	AutoIndexSpacing int64
	// MaxIdleCursors bounds how many forward-scan cursors the File
	// retains between reads. Each idle cursor holds a paused streaming
	// pipeline (O(batch x threads) memory), so this is the File's idle
	// memory bound; concurrent readers beyond it still run in parallel
	// on their own transient cursors, which are closed on release
	// instead of pooled. 0 selects 4; negative retains none.
	MaxIdleCursors int
}

// File provides random access to decompressed content over any
// io.ReaderAt — an os.File, an mmap, a bytes.Reader, a remote blob
// adapter — without ever materialising the whole compressed or
// decompressed stream. It is the seekable surface of the unified
// engine:
//
//   - ReadAt / Read / Seek address *decompressed* offsets exactly
//     (output is byte-identical to gunzip's). With an Index, reads
//     within the first member inflate only from the nearest
//     checkpoint; without one, reads decode forward from the start
//     through the bounded-memory parallel pipeline, and pooled
//     cursors make ascending reads (the scan pattern) cost one pass
//     total.
//
//   - RandomAccessAt addresses *compressed* offsets the paper's way:
//     no index, no decode-from-start — sync to a block by brute-force
//     bit scanning and decode with an undetermined context
//     (Sections IV and VI), yielding partially resolved text
//     immediately.
//
// # Concurrency
//
// ReadAt, Size, Checkpoints, RandomAccessAt, FindBlockAt and Close are
// safe for concurrent use and scale with the number of callers: the
// shared state (source, header, attached index, cached size, harvested
// restart points) is immutable or behind atomic/copy-on-write
// pointers, and each ReadAt claims its own cursor from a pool instead
// of contending on one lock. Indexed reads share nothing mutable at
// all; unindexed reads each hold one streaming cursor (O(batch x
// threads) memory) for the duration of the call, of which at most
// MaxIdleCursors are retained between calls. Concurrent deep seeks
// merge the restart points they harvest into one auto-index. The first
// Size call on an unindexed File runs a single measuring pass that
// concurrent callers share (singleflight). Read and Seek are also safe
// for concurrent use, but they address one shared stream position, so
// concurrent Read calls serialise on it — use ReadAt to scale.
// SetIndex and BuildIndex may run concurrently with reads; ScanBlocks
// is a long sequential walk and safe alongside any of the above.
type File struct {
	src  io.ReaderAt
	size int64  // compressed size
	raw  []byte // non-nil for in-memory sources: zero-copy windows
	opts FileOptions

	hdrLen int64 // first member's header length

	// Shared snapshot state: everything a concurrent read consults is
	// immutable (src, size, raw, hdrLen, opts sans Index) or atomic.
	ix     atomic.Pointer[Index] // attached checkpoint index
	usize  atomic.Int64          // cached decompressed size, -1 = not yet known
	sizeMu sync.Mutex            // singleflight for the Size measuring pass

	posMu sync.Mutex
	pos   int64 // Read/Seek cursor (decompressed); guarded by posMu

	// inflated counts the decompressed bytes this File has decoded or
	// skipped over on behalf of its reads (see InflatedBytes).
	inflated atomic.Int64

	cursors cursorPool

	// Auto-index: restart points within the first member, harvested as
	// a side-channel of deep seeks (and Size passes) and consulted when
	// a cursor must be opened. Readers load the sorted set via one
	// atomic pointer (RCU-style: the slice is never mutated in place);
	// writers — pipeline workers of concurrent cursors — merge their
	// insertions under cpMu via copy-on-write.
	cpMu sync.Mutex
	cps  atomic.Pointer[[]fileCheckpoint] // sorted by out; Store guarded by cpMu (Load is lock-free)
}

// fileCheckpoint is one retained restart point of the first member.
type fileCheckpoint struct {
	bit int64  // block-boundary bit offset within the member's payload
	out int64  // decompressed offset at the boundary
	win []byte // resolved 32 KiB preceding it (immutable once stored)
}

// fileCursor is the forward-scan state for unindexed reads: a
// streaming Reader over the compressed file plus the decompressed
// offset it has reached. skipPending marks a cursor opened with a
// pipeline-level skip whose target has not been confirmed reachable
// yet: until the first byte arrives, pos is presumptive (the stream
// may end before it), so it must not be trusted as a size measurement
// or as a proximity signal against a checkpoint inflate.
//
// A cursor is owned by exactly one goroutine between claim and
// release, so its fields need no lock.
type fileCursor struct {
	r           *Reader
	pos         int64
	skipPending bool
}

// cursorPool holds the File's idle forward-scan cursors. Claiming
// picks the cursor nearest below the target offset so ascending scans
// keep their one-pass cost and concurrent scans at different depths
// each keep their own cursor; releasing beyond maxIdle closes the
// cursor instead, bounding idle memory.
type cursorPool struct {
	mu      sync.Mutex
	idle    []*fileCursor // guarded by mu
	maxIdle int
}

// claim removes and returns the idle cursor that can serve offset off
// most cheaply: position at or below off, within maxGap of it, and —
// when trusted is set — not skipPending (a presumptive position must
// not win a proximity contest; see fileCursor). Returns nil when no
// idle cursor qualifies.
func (cp *cursorPool) claim(off, maxGap int64, trusted bool) *fileCursor {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	best := -1
	for i, c := range cp.idle {
		if c.pos > off || off-c.pos > maxGap {
			continue
		}
		if trusted && c.skipPending {
			continue
		}
		if best < 0 || c.pos > cp.idle[best].pos ||
			(c.pos == cp.idle[best].pos && cp.idle[best].skipPending && !c.skipPending) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	c := cp.idle[best]
	cp.idle = append(cp.idle[:best], cp.idle[best+1:]...)
	return c
}

// release returns a claimed cursor to the pool, or closes it when the
// pool is full (or disabled).
func (cp *cursorPool) release(c *fileCursor) {
	cp.mu.Lock()
	if len(cp.idle) < cp.maxIdle {
		cp.idle = append(cp.idle, c)
		cp.mu.Unlock()
		return
	}
	cp.mu.Unlock()
	c.r.Close()
}

// drain closes every idle cursor.
func (cp *cursorPool) drain() {
	cp.mu.Lock()
	idle := cp.idle
	cp.idle = nil
	cp.mu.Unlock()
	for _, c := range idle {
		c.r.Close()
	}
}

// defaultMaxIdleCursors is the default cursor-pool size: enough for a
// handful of interleaved ascending scans without letting idle
// pipelines dominate memory.
const defaultMaxIdleCursors = 4

// NewFile opens a gzip file over an arbitrary io.ReaderAt of the given
// compressed size. The first member header is parsed (and validated)
// before returning.
func NewFile(src io.ReaderAt, size int64, o FileOptions) (*File, error) {
	f := &File{src: src, size: size, opts: o}
	f.usize.Store(-1)
	f.ix.Store(o.Index)
	switch {
	case o.MaxIdleCursors > 0:
		f.cursors.maxIdle = o.MaxIdleCursors
	case o.MaxIdleCursors == 0:
		f.cursors.maxIdle = defaultMaxIdleCursors
	}
	br := bufio.NewReader(io.NewSectionReader(src, 0, size))
	m, err := gzipx.ReadHeader(br)
	if err != nil {
		return nil, err
	}
	f.hdrLen = int64(m.HeaderLen)
	return f, nil
}

// NewFileBytes is NewFile over an in-memory gzip file. Byte-source
// windows alias the slice directly (no copying), so the slice must not
// be mutated while the File is in use.
func NewFileBytes(gz []byte, o FileOptions) (*File, error) {
	f, err := NewFile(bytes.NewReader(gz), int64(len(gz)), o)
	if err != nil {
		return nil, err
	}
	f.raw = gz
	return f, nil
}

// index returns the currently attached checkpoint index, if any.
func (f *File) index() *Index { return f.ix.Load() }

// setIndex atomically attaches ix (SetIndex, BuildIndex) so in-flight
// reads see either the old or the new index, never a torn one.
func (f *File) setIndex(ix *Index) {
	f.ix.Store(ix)
	if ix != nil && ix.coversWholeFile(f.size) {
		f.usize.CompareAndSwap(-1, ix.Size())
	}
}

// streamOptions assembles the cursor's Reader configuration.
func (f *File) streamOptions() StreamOptions {
	return StreamOptions{
		Threads:              f.opts.Threads,
		BatchCompressedBytes: f.opts.BatchCompressedBytes,
		MinChunk:             f.opts.MinChunk,
	}
}

// ReadAt fills p with decompressed bytes starting at decompressed
// offset off, implementing io.ReaderAt over the *output* stream. Reads
// that land inside the indexed extent are served from the nearest
// checkpoint; everything else decodes forward from the member start on
// a pooled cursor, so a sequence of ascending ReadAt calls costs one
// sequential pass in total. Short reads at end of stream return io.EOF.
//
// ReadAt is safe for concurrent use and does not serialise callers:
// each call claims its own cursor (or decodes directly from a
// checkpoint) against the File's immutable snapshot state.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pugz: negative read offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	return f.readAt(p, off)
}

// readAt serves a positional read, choosing between the checkpoint
// index and a pooled forward-scan cursor: a cursor wins only when one
// is already at (or within one checkpoint spacing behind) the target
// with a trusted position, where continuing the scan costs less than a
// checkpoint-to-offset inflate. A skipPending cursor never wins here:
// its position is presumptive, so preferring it over a cheap
// checkpoint inflate would be betting on a guess.
func (f *File) readAt(p []byte, off int64) (int, error) {
	if ix := f.index(); ix != nil && off+int64(len(p)) <= ix.Size() {
		cur := f.cursors.claim(off, ix.spacing(), true)
		if cur == nil {
			n, err := ix.readAtSource(f, p, off)
			if err == nil && n < len(p) {
				err = io.EOF
			}
			return n, err
		}
		return f.readAtCursor(cur, p, off)
	}
	cur := f.cursors.claim(off, cursorReopenGap, false)
	if cur == nil {
		var err error
		cur, err = f.openCursor(off)
		if err != nil {
			return 0, err
		}
	}
	return f.readAtCursor(cur, p, off)
}

// cursorReopenGap is how far ahead of a live cursor a target may lie
// before continuing the translate-and-discard scan loses to opening a
// cursor with a pipeline-level skip: a fresh cursor restarts from the
// nearest retained checkpoint and covers the gap without pass-2
// translation (the parallel two-pass skip).
const cursorReopenGap = 4 << 20

// readAtCursor serves a positional read by scanning forward on a
// claimed cursor (owned by this call). Small forward gaps are
// discarded in-line, which keeps ascending reads on one pass; the
// cursor returns to the pool on success and is closed on a stream
// error (its decode state is unusable past a failure).
func (f *File) readAtCursor(cur *fileCursor, p []byte, off int64) (n int, err error) {
	defer func() {
		if err != nil && err != io.EOF {
			cur.r.Close()
			return
		}
		f.cursors.release(cur)
	}()
	if skip := off - cur.pos; skip > 0 {
		m, cerr := io.CopyN(io.Discard, cur.r, skip)
		f.inflated.Add(m)
		if m > 0 {
			// Bytes flowed out of the pipeline, which proves its skip
			// target was reached: pos is exact from here on.
			cur.skipPending = false
		}
		cur.pos += m
		if cerr != nil {
			if errors.Is(cerr, io.EOF) {
				// Clean end of stream during the discard: with an exact
				// position this reveals the true decompressed size, so
				// cache it — otherwise every later past-EOF ReadAt pays
				// a full measuring re-scan.
				f.cacheSizeFromCursor(cur)
				return 0, io.EOF // offset past end of stream
			}
			err = cerr
			return 0, cerr
		}
	}
	n, err = io.ReadFull(cur.r, p)
	f.inflated.Add(int64(n))
	if n > 0 {
		// The stream reached the cursor's skip target: pos is exact again.
		cur.skipPending = false
	}
	cur.pos += int64(n)
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		err = io.EOF
		f.cacheSizeFromCursor(cur)
	}
	return n, err
}

// cacheSizeFromCursor records the decompressed size revealed by a
// cursor reaching clean end of stream — but only when its position is
// exact (a skipPending position is presumptive and must never be
// trusted as a size measurement).
func (f *File) cacheSizeFromCursor(cur *fileCursor) {
	if !cur.skipPending {
		f.usize.CompareAndSwap(-1, cur.pos)
	}
}

// openCursor opens a streaming cursor whose next byte is the one at
// decompressed offset off. The cursor starts at the best restart point
// at or before off — a retained auto-index checkpoint, an attached
// Index checkpoint, or the file start — and covers the remaining gap
// with the pipeline's translation-free skip; restart points discovered
// while skipping are retained (merged across concurrent cursors), so
// repeated deep seeks into the same File stop re-decoding from the
// start.
func (f *File) openCursor(off int64) (*fileCursor, error) {
	var (
		secBase  int64
		cs       cursorState
		startOut int64
	)
	if cp := f.bestRestart(off); cp != nil {
		secBase = f.hdrLen + cp.bit/8
		cs.resume = &resumePoint{bit: cp.bit % 8, window: cp.win, out: cp.out}
		startOut = cp.out
	}
	cs.skipTo = off
	if sp := f.autoIndexSpacing(); sp > 0 && f.Checkpoints() < maxAutoCheckpoints {
		// Once the retention cap is hit the side-channel is not wired at
		// all: each checkpoint costs a 32 KiB window copy in the
		// pipeline, pure waste when retainCheckpoint would drop it.
		cs.spacing = sp
		cs.onCheckpoint = func(cp core.Checkpoint) { f.retainCheckpoint(cp, secBase) }
	}
	r, err := newCursorReader(io.NewSectionReader(f.src, secBase, f.size-secBase), f.streamOptions(), cs)
	if err != nil {
		return nil, err
	}
	// The pipeline-level skip decodes (without translating) the whole
	// restart-to-target gap; count it as inflation up front. For skips
	// past the end of the stream this over-counts by the unreachable
	// part, which is fine for a diagnostic (see InflatedBytes).
	f.inflated.Add(off - startOut)
	return &fileCursor{r: r, pos: off, skipPending: off > startOut}, nil
}

// bestRestart returns the restart point closest below off: the best of
// the retained auto-index checkpoints and the attached Index's
// checkpoints (both first-member surfaces), or nil to start from the
// beginning of the file. A checkpoint at output offset 0 is never
// returned: resuming there with its zeroed window would seed the
// decoder's context and silently soften the strict member-start rule
// (back-references before the stream start must be rejected, not read
// as zeros) — starting from scratch costs the same and keeps it.
func (f *File) bestRestart(off int64) *fileCheckpoint {
	var best *fileCheckpoint
	if p := f.cps.Load(); p != nil {
		cps := *p
		if i := sort.Search(len(cps), func(i int) bool { return cps[i].out > off }); i > 0 {
			cp := cps[i-1]
			best = &cp
		}
	}
	if ix := f.index(); ix != nil && ix.Size() > 0 {
		// Past the indexed extent the index's last checkpoint is still
		// the best first-member restart (the cursor handles the trailer
		// and any following members from there).
		lookup := off
		if lookup >= ix.Size() {
			lookup = ix.Size() - 1
		}
		if cp, err := ix.inner.FindCheckpoint(lookup); err == nil {
			if best == nil || cp.Out > best.out {
				best = &fileCheckpoint{bit: cp.Bit, out: cp.Out, win: cp.Window}
			}
		}
	}
	if best != nil && best.out == 0 {
		return nil
	}
	return best
}

// autoIndexSpacing resolves FileOptions.AutoIndexSpacing (0 means the
// zran default, negative disables).
func (f *File) autoIndexSpacing() int64 {
	switch {
	case f.opts.AutoIndexSpacing < 0:
		return 0
	case f.opts.AutoIndexSpacing == 0:
		return gzindex.DefaultSpacing
	}
	return f.opts.AutoIndexSpacing
}

// maxAutoCheckpoints caps the auto-index so its windows never dominate
// memory regardless of file size: 1024 x 32 KiB = 32 MiB at most. Past
// the cap new restart points are dropped; the retained set keeps
// serving (callers wanting denser coverage of huge files attach a real
// Index, whose windows live in one marshalled blob instead).
const maxAutoCheckpoints = 1024

// retainCheckpoint files a restart point discovered by a cursor whose
// source section began at compressed offset secBase. Runs on the
// cursor's worker goroutine, concurrent with reads and with other
// cursors' harvests — writers merge under cpMu by publishing a fresh
// sorted slice (copy-on-write), so bestRestart readers never lock.
// Neighbours closer than half the spacing are not duplicated, so
// overlapping skip passes converge instead of accreting.
func (f *File) retainCheckpoint(cp core.Checkpoint, secBase int64) {
	bit := (secBase-f.hdrLen)*8 + cp.Bit
	if bit < 0 || cp.Out == 0 {
		// Pre-payload artifacts cannot happen for well-formed runs; the
		// member-start boundary is useless as a restart point (see
		// bestRestart) and would only occupy a retention slot.
		return
	}
	gap := f.autoIndexSpacing() / 2
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	var cps []fileCheckpoint
	if p := f.cps.Load(); p != nil {
		cps = *p
	}
	if len(cps) >= maxAutoCheckpoints {
		return
	}
	i := sort.Search(len(cps), func(i int) bool { return cps[i].out >= cp.Out })
	if i < len(cps) && cps[i].out-cp.Out < gap {
		return
	}
	if i > 0 && cp.Out-cps[i-1].out < gap {
		return
	}
	next := make([]fileCheckpoint, len(cps)+1)
	copy(next, cps[:i])
	next[i] = fileCheckpoint{bit: bit, out: cp.Out, win: cp.Window}
	copy(next[i+1:], cps[i:])
	f.cps.Store(&next)
}

// Checkpoints returns the number of auto-index restart points the File
// has retained so far (diagnostics; safe for concurrent use).
func (f *File) Checkpoints() int {
	if p := f.cps.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// InflatedBytes reports the total decompressed bytes this File has
// decoded or skipped over to serve its reads so far: checkpoint-to-
// offset inflates, forward-scan discards, pipeline-level skips and
// Size measuring passes all count, so InflatedBytes/bytes-returned is
// the File's read amplification. The value is a monotonic diagnostic,
// approximate at the margins (a skip aimed past the end of the stream
// counts its full intended distance) and safe for concurrent use.
func (f *File) InflatedBytes() int64 { return f.inflated.Load() }

// CachedSize returns the total decompressed size if it is already
// known — measured by an earlier pass, revealed by a cursor reaching
// clean EOF, or derived from an attached whole-file index — without
// triggering the measuring pass Size would run. Safe for concurrent
// use.
func (f *File) CachedSize() (int64, bool) {
	if u := f.usize.Load(); u >= 0 {
		return u, true
	}
	if ix := f.index(); ix != nil && ix.coversWholeFile(f.size) {
		return ix.Size(), true
	}
	return 0, false
}

// Read implements io.Reader at the Seek cursor. Like ReadAt it uses
// the checkpoint index when one is attached and no pooled cursor is
// already close to the position, so a Seek deep into an indexed file
// does not trigger a decode-from-start. Concurrent Read calls are safe
// but serialise on the shared stream position; use ReadAt for reads
// that should scale.
func (f *File) Read(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	if len(p) == 0 {
		return 0, nil
	}
	n, err := f.readAt(p, f.pos)
	f.pos += int64(n)
	if n > 0 && errors.Is(err, io.EOF) {
		err = nil // io.Reader convention: report EOF on the next call
	}
	return n, err
}

// Seek implements io.Seeker over the decompressed stream. Seeking
// relative to io.SeekEnd requires the decompressed size (see Size).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		f.posMu.Lock()
		base = f.pos
		f.posMu.Unlock()
	case io.SeekEnd:
		size, err := f.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, fmt.Errorf("pugz: invalid seek whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("pugz: negative seek position %d", pos)
	}
	f.posMu.Lock()
	f.pos = pos
	f.posMu.Unlock()
	return pos, nil
}

// Size returns the total decompressed size across all members. Without
// an index covering the whole file this requires one measuring pass the
// first time it is called — bounded-memory, parallel, and translation-
// free (the pipeline counts exact output without materialising it) —
// and the result is cached. Concurrent first calls share a single
// measuring pass (singleflight); once cached, Size is a lock-free
// load. Checkpoints discovered along the way feed the auto-index, so a
// Size call also primes later deep seeks. Note a gzip trailer's ISIZE
// field is modulo 2^32 and per-member, so it is not used.
func (f *File) Size() (int64, error) {
	if u := f.usize.Load(); u >= 0 {
		return u, nil
	}
	// A single-member file with an attached index needs no decode pass:
	// the index already measured the whole output.
	if ix := f.index(); ix != nil && ix.coversWholeFile(f.size) {
		f.usize.CompareAndSwap(-1, ix.Size())
		return ix.Size(), nil
	}
	f.sizeMu.Lock()
	defer f.sizeMu.Unlock()
	if u := f.usize.Load(); u >= 0 {
		return u, nil // another caller measured while we waited
	}
	cs := cursorState{skipTo: math.MaxInt64}
	if sp := f.autoIndexSpacing(); sp > 0 && f.Checkpoints() < maxAutoCheckpoints {
		cs.spacing = sp
		cs.onCheckpoint = func(cp core.Checkpoint) { f.retainCheckpoint(cp, 0) }
	}
	r, err := newCursorReader(io.NewSectionReader(f.src, 0, f.size), f.streamOptions(), cs)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		return 0, err
	}
	size := r.Stats().OutBytes
	f.inflated.Add(size)
	f.usize.Store(size)
	return size, nil
}

// Close releases the File's idle forward-scan cursors. The underlying
// source is not closed. The File remains usable; a later read simply
// opens a fresh cursor. Safe to call concurrently with reads: cursors
// claimed by in-flight reads are unaffected (they return to the pool
// when their read completes).
func (f *File) Close() error {
	f.cursors.drain()
	return nil
}

// --- Byte-source windows ----------------------------------------------

// srcWindow is a loaded extent of the compressed file: the byte-source
// abstraction the compressed-offset surfaces (RandomAccessAt,
// ScanBlocks, FindBlockAt — and the index fast path) decode through
// instead of whole-file slices. For in-memory sources a window aliases
// the original slice (zero copy, always extends to EOF); for true
// io.ReaderAt sources it is filled on demand and grown geometrically
// when a decode runs off its end. Each window is private to one call,
// so decoding through windows is safe for any number of concurrent
// readers (io.ReaderAt sources must tolerate concurrent ReadAt, per
// that interface's contract).
type srcWindow struct {
	src   io.ReaderAt
	size  int64 // total source size
	base  int64 // source offset of data[0]
	data  []byte
	atEOF bool // data reaches the end of the source
	owned bool // data is a private buffer (false: aliases a raw slice)
}

// openWindow loads [base, base+n) of the compressed file (n is clamped
// to the file size; in-memory sources always map through to EOF).
// Touches only the File's immutable snapshot (src, size, raw), so it
// is safe for concurrent use.
func (f *File) openWindow(base, n int64) (*srcWindow, error) {
	if base > f.size {
		base = f.size
	}
	w := &srcWindow{src: f.src, size: f.size, base: base}
	if f.raw != nil {
		w.data = f.raw[base:]
		w.atEOF = true
		return w, nil
	}
	w.owned = true
	return w, w.extend(n)
}

// extend grows the window by reading n more source bytes after the
// currently loaded extent.
func (w *srcWindow) extend(n int64) error {
	if w.atEOF {
		return nil
	}
	end := w.base + int64(len(w.data)) + n
	if end >= w.size {
		end = w.size
		w.atEOF = true
	}
	need := int(end - w.base - int64(len(w.data)))
	if need <= 0 {
		return nil
	}
	ext := make([]byte, need)
	m, err := w.src.ReadAt(ext, w.base+int64(len(w.data)))
	w.data = append(w.data, ext[:m]...)
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	if errors.Is(err, io.EOF) {
		w.atEOF = true
	}
	return nil
}

// grow doubles the loaded extent. It reports whether the window
// actually got bigger (false once EOF is reached: retrying a failed
// decode cannot help any more).
func (w *srcWindow) grow() (bool, error) {
	if w.atEOF {
		return false, nil
	}
	before := len(w.data)
	n := int64(before)
	if n < minWindowLoad {
		n = minWindowLoad
	}
	if err := w.extend(n); err != nil {
		return false, err
	}
	return len(w.data) > before, nil
}

// discardTo drops the window prefix before source offset off, bounding
// residency for long forward walks (ScanBlocks). A no-op for raw-slice
// windows (they alias the caller's memory) and below the compaction
// threshold (slicing alone would pin the full backing array).
func (w *srcWindow) discardTo(off int64) {
	if !w.owned || off <= w.base {
		return
	}
	k := off - w.base
	if k < minWindowLoad {
		return
	}
	w.data = append([]byte(nil), w.data[k:]...)
	w.base = off
}

// minWindowLoad is the smallest extent loaded from a true io.ReaderAt
// source (in-memory sources alias the slice and never load). Block
// detection confirms a start within tens of KiB in practice, so half a
// MiB serves most finds in one load while growth stays geometric.
const minWindowLoad = 512 << 10
